// Odometry: estimate a vehicle trajectory by streaming consecutive LiDAR
// frames through the long-running odometry engine — the paper's §2.2
// ego-motion use case run the way a live sensor feeds it. Each frame's
// front-end (normals, key-points, descriptors, search indexes) is
// computed once and reused when the frame becomes the next pair's
// target, and frame N's front-end overlaps frame N−1's fine-tuning on
// the engine's two-stage pipeline. The trajectory is bit-identical to
// registering each pair from scratch; the throughput is not.
//
//	go run ./examples/odometry [-frames N] [-pipelined=false]
package main

import (
	"flag"
	"fmt"
	"time"

	"tigris"
)

func main() {
	frames := flag.Int("frames", 5, "number of LiDAR frames to drive")
	pipelined := flag.Bool("pipelined", true, "overlap frame N's front-end with frame N-1's fine-tuning")
	flag.Parse()

	seq := tigris.GenerateSequence(tigris.EvalSequenceConfig(*frames, 7))
	cfg := tigris.DefaultPipelineConfig()

	fmt.Printf("streaming %d frames (%d points each), pipelined=%v\n\n",
		seq.Len(), seq.Frames[0].Len(), *pipelined)

	eng := tigris.NewStream(tigris.StreamConfig{Pipeline: cfg, Pipelined: *pipelined})
	start := time.Now()
	for _, f := range seq.Frames {
		if _, err := eng.Push(f); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	wall := time.Since(start)
	eng.Close()
	traj := eng.Trajectory()
	stats := eng.Stats()

	fmt.Printf("%-6s %12s %12s %14s %10s %10s\n", "pair", "terr (%)", "rerr (°/m)", "est.step (m)", "prep", "align")
	var errs []tigris.FrameError
	for i := 1; i < traj.Len(); i++ {
		fr := traj.Frames[i]
		truth := seq.GroundTruthDelta(i - 1)
		e := tigris.EvaluatePair(fr.Delta, truth)
		errs = append(errs, e)
		fmt.Printf("%d->%d   %12.2f %12.4f %14.3f %10v %10v\n",
			i-1, i, e.TranslationalPct, e.RotationalDegPerM,
			fr.Delta.TranslationNorm(), fr.PrepTime.Round(1e6), fr.AlignTime.Round(1e6))
	}

	agg := tigris.AggregateErrors(errs)
	// The engine anchors frame 0 at identity; compare accumulated motion
	// against ground truth expressed relative to the first pose.
	finalTruth := seq.Poses[0].Inverse().Compose(seq.Poses[seq.Len()-1])
	drift := traj.Poses[traj.Len()-1].Inverse().Compose(finalTruth).TranslationNorm()
	traveled := 0.0
	for i := 0; i+1 < seq.Len(); i++ {
		traveled += seq.GroundTruthDelta(i).TranslationNorm()
	}

	fmt.Printf("\nmean translational error: %.2f%% ± %.2f\n",
		agg.MeanTranslationalPct, agg.StdevTranslationalPct)
	fmt.Printf("mean rotational error:    %.4f °/m ± %.4f\n",
		agg.MeanRotationalDegPerM, agg.StdevRotationalDegPerM)
	fmt.Printf("accumulated drift:        %.3f m over %.1f m traveled (%.2f%%)\n",
		drift, traveled, 100*drift/traveled)
	fmt.Printf("throughput:               %.2f frames/sec (%v wall for %d frames)\n",
		float64(traj.Len())/wall.Seconds(), wall.Round(1e6), traj.Len())
	fmt.Printf("work:                     %d front-end preps, %d tree builds, %d descriptor builds "+
		"(a per-pair loop would prepare %d clouds)\n",
		stats.FramesPrepared, stats.TreeBuilds, stats.DescriptorBuilds, 2*(traj.Len()-1))
}
