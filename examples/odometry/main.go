// Odometry: estimate a vehicle trajectory by registering consecutive
// LiDAR frames and chaining the estimated deltas — the paper's §2.2
// ego-motion use case. Reports per-frame KITTI errors and the final
// accumulated drift.
//
//	go run ./examples/odometry [-frames N]
package main

import (
	"flag"
	"fmt"

	"tigris"
)

func main() {
	frames := flag.Int("frames", 5, "number of LiDAR frames to drive")
	flag.Parse()

	seq := tigris.GenerateSequence(tigris.EvalSequenceConfig(*frames, 7))
	cfg := tigris.DefaultPipelineConfig()

	fmt.Printf("driving %d frames (%d points each)\n\n", seq.Len(), seq.Frames[0].Len())
	fmt.Printf("%-6s %12s %12s %14s %12s\n", "pair", "terr (%)", "rerr (°/m)", "est.step (m)", "time")

	// Chain estimated deltas into an absolute pose and compare with the
	// ground-truth trajectory at the end.
	pose := seq.Poses[0]
	var errs []tigris.FrameError
	for i := 0; i+1 < seq.Len(); i++ {
		res := tigris.Register(seq.Frames[i+1], seq.Frames[i], cfg)
		truth := seq.GroundTruthDelta(i)
		e := tigris.EvaluatePair(res.Transform, truth)
		errs = append(errs, e)
		pose = pose.Compose(res.Transform)
		fmt.Printf("%d->%d   %12.2f %12.4f %14.3f %12v\n",
			i, i+1, e.TranslationalPct, e.RotationalDegPerM,
			res.Transform.TranslationNorm(), res.Total.Round(1e6))
	}

	agg := tigris.AggregateErrors(errs)
	final := seq.Poses[seq.Len()-1]
	drift := pose.Inverse().Compose(final).TranslationNorm()
	traveled := 0.0
	for i := 0; i+1 < seq.Len(); i++ {
		traveled += seq.GroundTruthDelta(i).TranslationNorm()
	}

	fmt.Printf("\nmean translational error: %.2f%% ± %.2f\n",
		agg.MeanTranslationalPct, agg.StdevTranslationalPct)
	fmt.Printf("mean rotational error:    %.4f °/m ± %.4f\n",
		agg.MeanRotationalDegPerM, agg.StdevRotationalDegPerM)
	fmt.Printf("accumulated drift:        %.3f m over %.1f m traveled (%.2f%%)\n",
		drift, traveled, 100*drift/traveled)
}
