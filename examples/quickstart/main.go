// Quickstart: generate two synthetic LiDAR frames, register them with the
// default pipeline, and compare the estimated motion against ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"tigris"
)

func main() {
	// A two-frame synthetic drive; the vehicle moves ~1 m between frames.
	seq := tigris.GenerateSequence(tigris.EvalSequenceConfig(2, 42))
	fmt.Printf("generated %d frames of %d points\n", seq.Len(), seq.Frames[0].Len())

	// Register frame 1 onto frame 0: the result is the 6-DoF odometry
	// step (paper §2.2).
	res := tigris.Register(seq.Frames[1], seq.Frames[0], tigris.DefaultPipelineConfig())

	truth := seq.GroundTruthDelta(0)
	err := tigris.EvaluatePair(res.Transform, truth)

	fmt.Printf("estimated translation: %v (truth %v)\n", res.Transform.T, truth.T)
	fmt.Printf("translational error:   %.2f%%\n", err.TranslationalPct)
	fmt.Printf("rotational error:      %.4f deg/m\n", err.RotationalDegPerM)
	fmt.Printf("total time:            %v\n", res.Total.Round(1e6))
	fmt.Printf("KD-tree search share:  %.0f%%  (the paper's §3 bottleneck)\n",
		100*float64(res.KDSearchTime)/float64(res.Total))
	fmt.Printf("ICP iterations:        %d (converged: %v)\n", res.ICP.Iterations, res.ICP.Converged)
}
