// Mapping: build a global 3D reconstruction by registering each frame
// onto its predecessor, transforming every frame into the first frame's
// coordinate system, and fusing the result with a voxel grid — the
// paper's §2.2 3D-reconstruction use case. The fused map is written to a
// TIGRIS-CLOUD file.
//
//	go run ./examples/mapping [-frames N] [-out map.cloud]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tigris"
)

func main() {
	frames := flag.Int("frames", 4, "number of LiDAR frames to fuse")
	out := flag.String("out", "map.cloud", "output map file (TIGRIS-CLOUD format)")
	leaf := flag.Float64("leaf", 0.2, "fusion voxel size in meters")
	flag.Parse()

	seq := tigris.GenerateSequence(tigris.EvalSequenceConfig(*frames, 99))
	cfg := tigris.DefaultPipelineConfig()

	fmt.Printf("fusing %d frames into a global map\n", seq.Len())

	// Pose of each frame relative to frame 0, chained from pairwise
	// registration.
	global := tigris.NewCloud(seq.Frames[0].Len() * seq.Len())
	global.Points = append(global.Points, seq.Frames[0].Points...)
	toWorld := tigris.IdentityTransform()
	for i := 1; i < seq.Len(); i++ {
		res := tigris.Register(seq.Frames[i], seq.Frames[i-1], cfg)
		toWorld = toWorld.Compose(res.Transform)
		moved := seq.Frames[i].Transform(toWorld)
		global.Points = append(global.Points, moved.Points...)
		fmt.Printf("  frame %d registered (step %.2f m, %v)\n",
			i, res.Transform.TranslationNorm(), res.Total.Round(1e6))
	}

	fused := tigris.VoxelDownsample(global, *leaf)
	fmt.Printf("raw map: %d points; fused at %.2f m: %d points\n",
		global.Len(), *leaf, fused.Len())

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("create %s: %v", *out, err)
	}
	defer f.Close()
	if err := tigris.WriteCloud(f, fused); err != nil {
		log.Fatalf("write map: %v", err)
	}
	fmt.Printf("map written to %s\n", *out)

	b := fused.Bounds()
	fmt.Printf("map extent: %.1f x %.1f x %.1f m\n",
		b.Size().X, b.Size().Y, b.Size().Z)
}
