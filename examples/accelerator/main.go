// Accelerator: run a KD-tree search workload through the Tigris
// accelerator model and compare it against the GPU and CPU baselines —
// a miniature version of the paper's Fig. 11 experiment exercising the
// public API end to end.
//
//	go run ./examples/accelerator
package main

import (
	"fmt"

	"tigris"
)

func main() {
	seq := tigris.GenerateSequence(tigris.EvalSequenceConfig(2, 5))
	target := seq.Frames[0].Points
	queries := seq.Frames[1].Points
	fmt.Printf("workload: %d NN queries against a %d-point frame\n\n",
		len(queries), len(target))

	w := tigris.SimWorkload{Kind: tigris.NNSearch, Queries: queries}

	// The paper's two-stage structure: height 10 on 130k-point KITTI
	// frames means ~128-point leaf sets, so target that leaf size here.
	tree := tigris.BuildTwoStageTreeWithLeafSize(target, 128)
	rep, err := tigris.Simulate(tree, w, tigris.DefaultAccelConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("Tigris accelerator (Acc-2SKD):\n")
	fmt.Printf("  cycles %d  time %v  power %.1f W\n", rep.Cycles, rep.Time, rep.PowerWatts)
	fmt.Printf("  RU utilization %.0f%%, SU utilization %.0f%%\n\n",
		100*rep.RUUtilization, 100*rep.SUUtilization)

	// GPU and CPU baselines on the same searches.
	canon := tigris.BuildKDTree(target)
	gpuP := tigris.ProfileCanonicalSearch(canon, w)
	gpu := tigris.GPUBaseline()
	cpu := tigris.CPUBaseline()
	fmt.Printf("%s: %v  (%.0f W)\n", gpu.Name, gpu.Time(gpuP), gpu.PowerWatts)
	fmt.Printf("%s: %v  (%.0f W)\n\n", cpu.Name, cpu.Time(gpuP), cpu.PowerWatts)

	fmt.Printf("speedup vs GPU: %.1fx   power reduction: %.1fx\n",
		gpu.Time(gpuP).Seconds()/rep.Time.Seconds(), gpu.PowerWatts/rep.PowerWatts)

	// Approximate search (paper §4.3): same workload with the
	// leader/follower algorithm at the paper's 1.2 m threshold.
	approxCfg := tigris.DefaultAccelConfig()
	approxCfg.Approx = 1.2
	apx, err := tigris.Simulate(tree, w, approxCfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("approximate search: %.1f%% fewer distance ops, %+.1f%% time\n",
		100*(1-float64(apx.Counts.PEDistanceOps)/float64(rep.Counts.PEDistanceOps)),
		100*(float64(apx.Cycles)/float64(rep.Cycles)-1))

	// The functional results are real: spot-check one query against the
	// software search.
	nb, _ := tree.Nearest(queries[0], nil)
	fmt.Printf("\nfunctional check: query 0 -> point %d (sim) vs %d (software)\n",
		rep.NNResults[0].Index, nb.Index)
}
