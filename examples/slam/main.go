// SLAM: turn pairwise odometry into a globally consistent trajectory.
// A vehicle drives a closed circuit, the streaming engine's loop-closure
// stage recognizes the revisit (frame signatures through the pluggable
// search-backend registry, verified with the full registration
// pipeline), and pose-graph optimization pulls a drift-corrupted
// odometry chain back onto the ground truth. This is the walkthrough
// behind cmd/tigris-slam; every step uses the public tigris API.
//
//	go run ./examples/slam [-frames N] [-lap N]
package main

import (
	"flag"
	"fmt"
	"math"

	"tigris"
)

func main() {
	lap := flag.Int("lap", 40, "frames per circuit lap")
	frames := flag.Int("frames", 46, "total frames (one lap + revisits)")
	flag.Parse()

	// A closed circuit: frame lap+k re-observes frame k's pose.
	seqCfg := tigris.QuickSequenceConfig(*frames, 77)
	seqCfg.Trajectory = tigris.CircuitTrajectory{Radius: 3, FramesPerLap: *lap}
	seq := tigris.GenerateSequence(seqCfg)

	// The accuracy-oriented design point suits the sparse synthetic
	// frames; the loop stage indexes frame signatures with the two-stage
	// backend and verifies candidates with the same pipeline.
	cfg := tigris.NamedDesignPoints()[6].Config // DP7
	eng := tigris.NewStream(tigris.StreamConfig{
		Pipeline:  cfg,
		Pipelined: true,
		Loop: &tigris.LoopConfig{
			Backend:       tigris.BackendTwoStage,
			MinSeparation: *lap - 2,
			MaxCandidates: 2,
			Cooldown:      1,
		},
	})
	fmt.Printf("streaming %d frames around a %d-frame circuit...\n", seq.Len(), *lap)
	for _, f := range seq.Frames {
		if _, err := eng.Push(f.Clone()); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	defer eng.Close()

	traj := eng.Trajectory()
	for _, cl := range eng.Closures() {
		fmt.Printf("loop closed: frame %d revisits frame %d (rmse %.3f m, signature dist %.2f)\n",
			cl.From, cl.To, cl.RMSE, cl.SigDist)
	}

	// Corrupt the measured odometry with a deterministic calibration-style
	// drift, then let the pose graph repair it with the loop edges.
	deltas := make([]tigris.Transform, 0, traj.Len()-1)
	for _, fr := range traj.Frames[1:] {
		deltas = append(deltas, fr.Delta)
	}
	drifted := tigris.DriftOdometry(deltas, 0.6*math.Pi/180, 1.06)
	g := tigris.PoseGraphFromOdometry(tigris.IdentityTransform(), drifted)
	for _, cl := range eng.Closures() {
		g.AddEdge(tigris.PoseGraphEdge{I: cl.To, J: cl.From, Z: cl.Delta,
			TransWeight: 10, RotWeight: 10, Robust: true})
	}
	before := tigris.ATE(g.Poses, seq.Poses)
	opt, res, err := g.Optimize(tigris.PoseGraphOptions{})
	if err != nil {
		panic(err)
	}
	after := tigris.ATE(opt, seq.Poses)

	fmt.Printf("\npose graph: %d nodes, %d edges, %d iterations (cost %.3g -> %.3g)\n",
		len(g.Poses), len(g.Edges), res.Iterations, res.InitialCost, res.FinalCost)
	fmt.Printf("ATE RMSE: drifted odometry %.3f m -> optimized %.3f m (%.1fx better)\n",
		before.RMSE, after.RMSE, before.RMSE/after.RMSE)
}
