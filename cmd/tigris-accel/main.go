// Command tigris-accel reproduces the paper's accelerator evaluation
// (§6.2–§6.5) on KD-tree search workloads extracted from the DP4
// (performance-oriented) and DP7 (accuracy-oriented) design points:
//
//	-fig 11 — KD-tree speedup & power reduction of Base-KD, Base-2SKD,
//	          Acc-KD, Acc-2SKD (Fig. 11a/11b), plus end-to-end estimates,
//	          approximate-search gains, and the energy breakdown (§6.3).
//	-fig 12 — RU/issue ablation: No-Opt, Bypass, +Forward, MQMN (Fig. 12).
//	-fig 13 — memory traffic distribution, Acc-2SKD vs Acc-KD (Fig. 13).
//	-fig 14 — RU/SU/PE sensitivity sweep, 64 configurations (Fig. 14).
//	-fig 15 — search time & energy vs top-tree height (Fig. 15).
//	-area   — the §6.2 area table.
//
// Usage:
//
//	tigris-accel [-fig N | -area | -all] [-seed S] [-quick] [-trace]
//
// By default the figures run on synthesized stage workloads
// (dse.StageWorkloads re-derives the NE radius batch and the first RPCE
// NN batch). With -trace they instead replay the *real* pipeline query
// stream: a full end-to-end registration runs with the "trace" search
// backend (front-end on the raw clouds, the experiments' full-density
// regime), every stage's batches (both frames' front-ends, every ICP
// iteration) are captured into sim.Workloads, and the simulator and
// baseline models time them against the target-frame trees.
package main

import (
	"flag"
	"fmt"
	"time"

	"tigris/internal/baseline"
	"tigris/internal/dse"
	"tigris/internal/kdtree"
	"tigris/internal/registration"
	"tigris/internal/search"
	"tigris/internal/sim"
	"tigris/internal/synth"
	"tigris/internal/twostage"
)

// experiment bundles everything the figures need for one design point.
// Prepared traces are cached per (tree, approximation) pair because the
// trace is configuration-independent (see sim.Prepare): Fig. 12/14's
// parameter sweeps re-time the same trace dozens of times.
type experiment struct {
	name      string
	workloads []sim.Workload // NE radius + RPCE NN (dse.StageWorkloads)
	canonical *kdtree.Tree
	twoStage  *twostage.Tree // paper default: top height 10
	approxNN  float64        // 1.2 m (§6.3)
	approxRad float64        // 40%% of radius (§6.3)

	prepExact  []*sim.Prepared // twoStage, no approximation
	prepApprox []*sim.Prepared // twoStage, leader/follower enabled
	prepTall   []*sim.Prepared // leaf-size-1 tree (Acc-KD)
}

// approxConfigFor returns cfg with the experiment's approximation knobs
// set for the workload kind.
func (e *experiment) approxConfigFor(cfg sim.Config, w sim.Workload) sim.Config {
	cfg.Approx = e.approxNN
	if w.Kind == sim.RadiusSearch {
		cfg.ApproxRadiusFrac = e.approxRad
	}
	return cfg
}

// prepared returns (building on first use) the trace set for the given
// tree/approx combination.
func (e *experiment) prepared(which string) []*sim.Prepared {
	build := func(tree *twostage.Tree, approx bool) []*sim.Prepared {
		out := make([]*sim.Prepared, len(e.workloads))
		for i, w := range e.workloads {
			cfg := sim.DefaultConfig()
			if approx {
				cfg = e.approxConfigFor(cfg, w)
			}
			p, err := sim.Prepare(tree, w, cfg)
			if err != nil {
				panic(err)
			}
			out[i] = p
		}
		return out
	}
	switch which {
	case "approx":
		if e.prepApprox == nil {
			e.prepApprox = build(e.twoStage, true)
		}
		return e.prepApprox
	case "tall":
		if e.prepTall == nil {
			tall := twostage.BuildWithLeafSize(e.twoStage.Points(), 1)
			e.prepTall = build(tall, false)
		}
		return e.prepTall
	default:
		if e.prepExact == nil {
			e.prepExact = build(e.twoStage, false)
		}
		return e.prepExact
	}
}

// simulate times the prepared set under cfg and sums the reports.
func (e *experiment) simulate(which string, cfg sim.Config) (time.Duration, float64, uint64) {
	var total time.Duration
	var energy float64
	var cycles uint64
	for i, p := range e.prepared(which) {
		c := cfg
		if which == "approx" {
			c = e.approxConfigFor(c, e.workloads[i])
		}
		rep, err := p.Simulate(c)
		if err != nil {
			panic(err)
		}
		total += rep.Time
		energy += rep.Energy.Total()
		cycles += rep.Cycles
	}
	return total, energy, cycles
}

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce (11, 12, 13, 14, 15)")
	area := flag.Bool("area", false, "print the §6.2 area analysis")
	all := flag.Bool("all", false, "run every experiment")
	seed := flag.Int64("seed", 2019, "dataset seed")
	quick := flag.Bool("quick", false, "use small test-scale frames")
	full := flag.Bool("full", false, "use KITTI-scale ~130k-point frames (the paper's regime; slower)")
	topHeight := flag.Int("height", -1, "two-stage top-tree height; <0 targets 128-point leaf sets (the paper: height 10 on 130k-point frames = 128-point leaves)")
	trace := flag.Bool("trace", false, "capture workloads from a real end-to-end registration (trace backend) instead of re-deriving stage workloads")
	flag.Parse()

	if !*area && *fig == 0 && !*all {
		*all = true
	}

	cfg := synth.EvalSequenceConfig(2, *seed)
	if *quick {
		cfg = synth.QuickSequenceConfig(2, *seed)
	}
	if *full {
		// HDL-64E class: 64 beams at ~0.18 degree azimuth resolution.
		cfg.Lidar.Beams = 64
		cfg.Lidar.AzimuthSteps = 2000
	}
	seq := synth.GenerateSequence(cfg)
	fmt.Printf("dataset: %d-point frames (seed %d)\n\n", seq.Frames[0].Len(), *seed)

	build := func(dp dse.DesignPoint) *experiment {
		target := seq.Frames[0].Points
		var two *twostage.Tree
		if *topHeight < 0 {
			two = twostage.BuildWithLeafSize(target, 128)
		} else {
			two = twostage.Build(target, *topHeight)
		}
		workloads := dse.StageWorkloads(seq, dp)
		if *trace {
			workloads = traceWorkloads(seq, dp)
		}
		return &experiment{
			name:      dp.Name,
			workloads: workloads,
			canonical: kdtree.Build(target),
			twoStage:  two,
			approxNN:  twostage.DefaultNNThreshold,
			approxRad: twostage.DefaultRadiusThresholdFrac,
		}
	}
	dp7 := build(dse.DP7())
	dp4 := build(dse.DP4())

	if *area || *all {
		printArea()
	}
	if *fig == 11 || *all {
		fig11(dp7, "accuracy-oriented DP7")
		fig11(dp4, "performance-oriented DP4")
		energyBreakdown(dp4)
	}
	if *fig == 12 || *all {
		fig12(dp7)
	}
	if *fig == 13 || *all {
		fig13(dp7)
	}
	if *fig == 14 || *all {
		fig14(dp7)
	}
	if *fig == 15 || *all {
		fig15(seq, dp7)
	}
}

// traceWorkloads captures the design point's real query stream: one
// end-to-end registration of the sequence's first pair runs with the
// trace backend (wrapping the canonical tree — exact backends issue
// identical queries, so the capture is backend-independent), and every
// recorded stage batch becomes one accelerator workload. The front-end
// runs on the raw clouds (FrontEndOnRaw) so the captured queries match
// the full-density regime the experiment trees are built in — the same
// convention dse.StageWorkloads uses. Replay then follows the figures'
// isolation-mode rule: every batch (both frames' front-ends, every ICP
// iteration) is timed as a query stream against the target-frame trees.
// Clouds are cloned because the pipeline writes normals into its inputs.
func traceWorkloads(seq *synth.Sequence, dp dse.DesignPoint) []sim.Workload {
	sink := &search.TraceLog{}
	cfg := dp.Config
	cfg.FrontEndOnRaw = true
	cfg.Searcher = registration.SearcherConfig{
		Backend: search.BackendTrace,
		Options: search.Options{
			search.OptTraceInner: search.BackendCanonical,
			search.OptTraceSink:  sink,
		},
	}
	registration.Register(seq.Frames[1].Clone(), seq.Frames[0].Clone(), cfg)
	batches := sink.Batches()
	workloads := sim.WorkloadsFromTrace(batches)
	var queries int64
	for _, w := range workloads {
		queries += int64(len(w.Queries))
	}
	fmt.Printf("%s trace: %d stage batches, %d queries captured from the live pipeline\n",
		dp.Name, len(workloads), queries)
	// Per-stage attribution (the Fig. 6-style weights), in a fixed order.
	counts := sim.StageQueryCounts(batches)
	for _, stage := range []string{search.StageNormals, search.StageKeypoints, search.StageDescriptors, search.StageRPCE} {
		if n := counts[stage]; n > 0 {
			fmt.Printf("  %-22s %8d queries\n", stage, n)
		}
	}
	return workloads
}

// runBaseline sums the baseline model's time/energy over the workloads.
func runBaseline(e *experiment, m baseline.Model, twoStage bool) (time.Duration, float64) {
	var total time.Duration
	var energy float64
	for _, w := range e.workloads {
		var p baseline.Profile
		if twoStage {
			p = baseline.ProfileTwoStage(e.twoStage, w)
		} else {
			p = baseline.ProfileCanonical(e.canonical, w)
		}
		total += m.Time(p)
		energy += m.Energy(p)
	}
	return total, energy
}

func fig11(e *experiment, label string) {
	fmt.Printf("=== Fig. 11 (%s): KD-tree speedup & power vs GPU Base-KD ===\n", label)
	gpu := baseline.RTX2080Ti
	cpu := baseline.Xeon4110

	baseKDTime, baseKDEnergy := runBaseline(e, gpu, false)
	base2STime, base2SEnergy := runBaseline(e, gpu, true)
	cpuTime, _ := runBaseline(e, cpu, false)

	cfg := sim.DefaultConfig()
	accKDTime, accKDEnergy, _ := e.simulate("tall", cfg)
	acc2STime, acc2SEnergy, _ := e.simulate("exact", cfg)
	apxTime, apxEnergy, _ := e.simulate("approx", cfg)

	power := func(energy float64, t time.Duration) float64 {
		if t <= 0 {
			return 0
		}
		return energy / t.Seconds()
	}
	row := func(name string, t time.Duration, energy float64) {
		fmt.Printf("  %-12s %10.3fms  speedup %7.1fx  power %6.1fW  power-red %5.1fx\n",
			name, t.Seconds()*1e3, baseKDTime.Seconds()/t.Seconds(),
			power(energy, t), power(baseKDEnergy, baseKDTime)/power(energy, t))
	}
	fmt.Printf("  %-12s %10.3fms  (CPU reference: %.1fms, GPU is %.1fx faster)\n",
		"Base-KD", baseKDTime.Seconds()*1e3, cpuTime.Seconds()*1e3,
		cpuTime.Seconds()/baseKDTime.Seconds())
	row("Base-2SKD", base2STime, base2SEnergy)
	row("Acc-KD", accKDTime, accKDEnergy)
	row("Acc-2SKD", acc2STime, acc2SEnergy)
	row("Acc-2SKD+apx", apxTime, apxEnergy)
	fmt.Printf("  CPU/Acc-2SKD speedup: %.1fx\n", cpuTime.Seconds()/acc2STime.Seconds())
	fmt.Println("  paper: Acc-2SKD 77.2x over Base-KD (DP7) / 21x over Base-2SKD (DP4);")
	fmt.Println("         Base-2SKD 1.28x over Base-KD; approx +11.1x on DP7; 392x over CPU")
	fmt.Println()
}

func energyBreakdown(e *experiment) {
	fmt.Println("=== §6.3: Acc-2SKD energy breakdown (DP4) ===")
	cfg := sim.DefaultConfig()
	var sum sim.Energy
	for _, w := range e.workloads {
		rep, err := sim.Run(e.twoStage, w, cfg)
		if err != nil {
			panic(err)
		}
		sum.PE += rep.Energy.PE
		sum.SRAMRead += rep.Energy.SRAMRead
		sum.SRAMWrite += rep.Energy.SRAMWrite
		sum.Leakage += rep.Energy.Leakage
		sum.DRAM += rep.Energy.DRAM
	}
	total := sum.Total()
	fmt.Printf("  PE         %5.1f%%   (paper 53.7%%)\n", 100*sum.PE/total)
	fmt.Printf("  SRAM read  %5.1f%%   (paper 34.8%%)\n", 100*sum.SRAMRead/total)
	fmt.Printf("  SRAM write %5.1f%%   (paper  8.0%%)\n", 100*sum.SRAMWrite/total)
	fmt.Printf("  leakage    %5.1f%%   (paper  3.3%%)\n", 100*sum.Leakage/total)
	fmt.Printf("  DRAM       %5.1f%%   (paper  0.2%%)\n", 100*sum.DRAM/total)
	fmt.Println()
}

func fig12(e *experiment) {
	fmt.Println("=== Fig. 12: architectural optimizations (Acc-2SKD on DP7) ===")
	gpuTime, gpuEnergy := runBaseline(e, baseline.RTX2080Ti, false)
	gpuPower := gpuEnergy / gpuTime.Seconds()

	variant := func(name string, fwd, byp bool, issue sim.IssuePolicy) {
		cfg := sim.DefaultConfig()
		cfg.Forwarding = fwd
		cfg.Bypassing = byp
		cfg.Issue = issue
		t, energy, _ := e.simulate("exact", cfg)
		fmt.Printf("  %-10s speedup %6.1fx  power-red %5.2fx\n",
			name, gpuTime.Seconds()/t.Seconds(), gpuPower/(energy/t.Seconds()))
	}
	variant("No-Opt", false, false, sim.MQSN)
	variant("Bypass", false, true, sim.MQSN)
	variant("+Forward", true, true, sim.MQSN)
	variant("MQMN", true, true, sim.MQMN)
	fmt.Println("  paper: Bypass +13.1%, +Forward +10.5%, MQMN 2x speed at ~4x power")
	fmt.Println()
}

func fig13(e *experiment) {
	fmt.Println("=== Fig. 13: memory traffic distribution (%) ===")
	traffic := func(tree *twostage.Tree, label string) {
		var sum sim.Traffic
		for _, w := range e.workloads {
			rep, err := sim.Run(tree, w, sim.DefaultConfig())
			if err != nil {
				panic(err)
			}
			sum.FEQueryQueue += rep.Traffic.FEQueryQueue
			sum.QueryBuf += rep.Traffic.QueryBuf
			sum.QueryStacks += rep.Traffic.QueryStacks
			sum.ResultBuf += rep.Traffic.ResultBuf
			sum.BEQueryQueue += rep.Traffic.BEQueryQueue
			sum.NodeCache += rep.Traffic.NodeCache
			sum.PointsBuf += rep.Traffic.PointsBuf
		}
		total := float64(sum.Total())
		fmt.Printf("  %-10s FQQ %4.1f%%  QryBuf %4.1f%%  Stacks %4.1f%%  ResBuf %4.1f%%  BQB %4.1f%%  NodeCache %4.1f%%  PointsBuf %4.1f%%\n",
			label,
			100*float64(sum.FEQueryQueue)/total, 100*float64(sum.QueryBuf)/total,
			100*float64(sum.QueryStacks)/total, 100*float64(sum.ResultBuf)/total,
			100*float64(sum.BEQueryQueue)/total, 100*float64(sum.NodeCache)/total,
			100*float64(sum.PointsBuf)/total)
	}
	traffic(e.twoStage, "Acc-2SKD")
	tall := twostage.BuildWithLeafSize(e.twoStage.Points(), 1)
	traffic(tall, "Acc-KD")
	fmt.Println("  paper: node cache cuts Acc-2SKD PointsBuf traffic from 53% to 35%")
	fmt.Println()
}

func fig14(e *experiment) {
	fmt.Println("=== Fig. 14: sensitivity to RU / SU / PE counts ===")
	fmt.Printf("  %-18s %12s %10s\n", "config (RU,SU,PE)", "time (ms)", "power (W)")
	counts := []int{16, 32, 64, 128}
	for _, ru := range counts {
		for _, su := range counts {
			for _, pe := range counts {
				cfg := sim.DefaultConfig()
				cfg.NumRU = ru
				cfg.NumSU = su
				cfg.PEsPerSU = pe
				t, energy, _ := e.simulate("exact", cfg)
				fmt.Printf("  %4d,%4d,%4d      %10.3f %10.1f\n",
					ru, su, pe, t.Seconds()*1e3, energy/t.Seconds())
			}
		}
	}
	fmt.Println("  paper: 64 RU / 32 SU / 32 PE sits at the knee of the curve")
	fmt.Println()
}

func fig15(seq *synth.Sequence, e *experiment) {
	fmt.Println("=== Fig. 15: search time & energy vs top-tree height ===")
	fmt.Printf("  %-8s %12s %12s\n", "height", "time (ms)", "energy (J)")
	pts := seq.Frames[0].Points
	for h := 4; h <= 15; h++ {
		tree := twostage.Build(pts, h)
		var t time.Duration
		var energy float64
		for _, w := range e.workloads {
			rep, err := sim.Run(tree, w, sim.DefaultConfig())
			if err != nil {
				panic(err)
			}
			t += rep.Time
			energy += rep.Energy.Total()
		}
		fmt.Printf("  %-8d %12.3f %12.4f\n", h, t.Seconds()*1e3, energy)
	}
	fmt.Println("  paper: performance peaks around height 10, then declines")
	fmt.Println()
}

func printArea() {
	fmt.Println("=== §6.2: area analysis (16 nm) ===")
	cfg := sim.DefaultConfig()
	area := cfg.EstimateArea()
	fmt.Printf("  SRAM:  %6.2f mm²  (%5.1f%%)   [paper 8.38 mm², 53.8%%]\n",
		area.SRAMmm2, 100*area.SRAMmm2/area.Total())
	fmt.Printf("  logic: %6.2f mm²  (%5.1f%%)   [paper 7.19 mm², 46.2%%]\n",
		area.LogicMm2, 100*area.LogicMm2/area.Total())
	fmt.Printf("  total: %6.2f mm²  (%d RU, %d SU x %d PE, %.1f KB SRAM)\n",
		area.Total(), cfg.NumRU, cfg.NumSU, cfg.PEsPerSU, float64(area.SRAMBytes)/1024)
	fmt.Println()
}
