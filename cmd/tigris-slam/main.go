// Command tigris-slam runs the full SLAM stack end to end on a
// synthetic drift sequence: a closed LiDAR circuit streams through the
// odometry engine with the loop-closure stage enabled, the verified
// closures and the odometry chain build a pose graph, and Gauss–Newton
// optimization produces the globally consistent trajectory. The report
// quantifies what the back-end buys: ATE/RPE of the raw (drifted)
// odometry versus the optimized trajectory, against the generator's
// ground truth.
//
// Drift model: pairwise odometry drifts unboundedly; to make that
// failure mode visible on short synthetic sequences, the measured
// odometry deltas are corrupted with a deterministic calibration-style
// bias (-drift-yaw degrees and -drift-scale translation scaling per
// frame) before graph construction. Loop edges come from the real
// verified registrations and are never biased.
//
// Usage:
//
//	tigris-slam [-frames N] [-lap N] [-radius R] [-beams N] [-azimuth N]
//	            [-dp DPn] [-backend NAME] [-loop-backend NAME] [-parallel N]
//	            [-drift-yaw DEG] [-drift-scale S] [-pipelined]
//	            [-out FILE] [-tag NAME] [-trace-out FILE]
//	tigris-slam -selftest
//
// -trace-out writes the run's span tree (whole-frame spans with their
// per-stage children, plus loop and pose-graph spans) as Chrome
// trace-event JSON loadable in Perfetto.
//
// The JSON report is committed as BENCH_<tag>.json alongside the
// tigris-bench reports; CI runs a small configuration, validates the
// shape, and checks the loop was found and ATE improved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	"tigris/internal/dse"
	"tigris/internal/geom"
	"tigris/internal/loop"
	"tigris/internal/memstat"
	"tigris/internal/obs"
	"tigris/internal/posegraph"
	"tigris/internal/registration"
	"tigris/internal/stream"
	"tigris/internal/synth"
)

// LatencyPercentiles is one stage's tail-latency digest in milliseconds
// from the run's internal/obs histograms — the same shape tigris-bench
// emits, so the two reports' latency columns line up.
type LatencyPercentiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// latencyPercentiles renders a recorder's summaries in milliseconds,
// keyed by obs stage name.
func latencyPercentiles(rec *obs.Recorder) map[string]LatencyPercentiles {
	sums := rec.Summaries()
	out := make(map[string]LatencyPercentiles, len(sums))
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	for stage, sum := range sums {
		out[stage] = LatencyPercentiles{
			Count: sum.Count,
			P50:   ms(sum.P50),
			P95:   ms(sum.P95),
			P99:   ms(sum.P99),
			Max:   ms(sum.Max),
		}
	}
	return out
}

// ClosureReport is one verified loop closure in the JSON report.
type ClosureReport struct {
	From            int     `json:"from"`
	To              int     `json:"to"`
	Inliers         int     `json:"inliers"`
	Correspondences int     `json:"correspondences"`
	RMSE            float64 `json:"rmse"`
	// DeltaErrM is the closure transform's translational distance from
	// the ground-truth relative pose (the verification quality).
	DeltaErrM float64 `json:"delta_err_m"`
}

// TrajectoryReport is one trajectory's accuracy against ground truth.
type TrajectoryReport struct {
	ATERmseM     float64 `json:"ate_rmse_m"`
	ATEMaxM      float64 `json:"ate_max_m"`
	RPETransM    float64 `json:"rpe_trans_m"`
	RPERotDeg    float64 `json:"rpe_rot_deg"`
	FramesScored int     `json:"frames_scored"`
}

// Report is the full tigris-slam output.
type Report struct {
	Name         string  `json:"name"`
	Tag          string  `json:"tag"`
	GoVersion    string  `json:"go_version"`
	NumCPU       int     `json:"num_cpu"`
	DesignPoint  string  `json:"design_point"`
	Backend      string  `json:"backend"`
	Parallelism  int     `json:"parallelism"`
	Pipelined    bool    `json:"pipelined"`
	Frames       int     `json:"frames"`
	FramesPerLap int     `json:"frames_per_lap"`
	DriftYawDeg  float64 `json:"drift_yaw_deg"`
	DriftScale   float64 `json:"drift_scale"`

	// Point-storage and process-memory columns, matching tigris-bench:
	// the SoA slab bytes one prepared frame retains vs its AoS float64
	// price, plus Go heap-in-use and peak RSS after the run.
	PointStorageBytesPerFrame    int64  `json:"point_storage_bytes_per_frame"`
	AosPointStorageBytesPerFrame int64  `json:"aos_point_storage_bytes_per_frame"`
	HeapInuseBytes               uint64 `json:"heap_inuse_bytes"`
	PeakRSSBytes                 int64  `json:"peak_rss_bytes"`

	// LatencyPercentiles is the per-stage tail-latency digest (p50, p95,
	// p99, max in milliseconds) for the streaming run, including the SLAM
	// stages (loop_observe, loop_verify, posegraph_solve).
	LatencyPercentiles map[string]LatencyPercentiles `json:"latency_percentiles"`

	Closures  []ClosureReport `json:"closures"`
	LoopStats struct {
		Observed int64 `json:"observed"`
		Proposed int64 `json:"proposed"`
		Verified int64 `json:"verified"`
		Accepted int64 `json:"accepted"`
	} `json:"loop_stats"`

	// Odometry is the engine's raw trajectory; Drifted the bias-corrupted
	// chain; Optimized the pose-graph output over the drifted chain plus
	// the loop edges.
	Odometry  TrajectoryReport `json:"odometry"`
	Drifted   TrajectoryReport `json:"drifted"`
	Optimized TrajectoryReport `json:"optimized"`
	// ATEImprovement is Drifted.ATERmseM / Optimized.ATERmseM.
	ATEImprovement float64 `json:"ate_improvement"`
	Optimization   struct {
		InitialCost float64 `json:"initial_cost"`
		FinalCost   float64 `json:"final_cost"`
		Iterations  int     `json:"iterations"`
		Converged   bool    `json:"converged"`
	} `json:"optimization"`
}

func main() {
	frames := flag.Int("frames", 46, "sequence length (one lap plus revisit frames)")
	perLap := flag.Int("lap", 40, "frames per circuit lap")
	radius := flag.Float64("radius", 3, "circuit radius in meters")
	beams := flag.Int("beams", 16, "LiDAR beams per frame")
	azimuth := flag.Int("azimuth", 300, "LiDAR azimuth steps per revolution")
	seed := flag.Int64("seed", 77, "scene/sensor seed")
	designPoint := flag.String("dp", "DP7", "design point (DP1..DP8; the accuracy-oriented DP7 suits sparse synthetic frames)")
	backend := flag.String("backend", "", "search backend registry name (empty keeps the design point's)")
	loopBackend := flag.String("loop-backend", "twostage", "search backend for the loop-closure signature index")
	parallel := flag.Int("parallel", 0, "batch search worker count (0 = all CPUs, 1 = sequential)")
	pipelined := flag.Bool("pipelined", true, "overlap front-end, alignment, and loop verification")
	driftYaw := flag.Float64("drift-yaw", 0.6, "injected odometry yaw bias in degrees per frame")
	driftScale := flag.Float64("drift-scale", 1.06, "injected odometry translation scale per frame")
	minSep := flag.Int("min-separation", 0, "loop temporal gate in frames (0 = lap length - 2)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	tag := flag.String("tag", "local", "report tag (e.g. pr5) recorded in the JSON")
	traceOut := flag.String("trace-out", "", "write the run's span tree as Chrome trace-event JSON here (Perfetto-loadable)")
	selftest := flag.Bool("selftest", false, "run a small configuration, assert the loop is found and ATE improves, exit non-zero on failure")
	flag.Parse()

	cfg, ok := findDesignPoint(*designPoint)
	if !ok {
		log.Fatalf("unknown design point %q (want DP1..DP8)", *designPoint)
	}
	if *backend != "" {
		cfg.Searcher.Backend = *backend
		cfg.Searcher.TopHeight = -1
	}
	cfg.Searcher.Parallelism = *parallel
	if err := cfg.Searcher.Validate(); err != nil {
		log.Fatalf("%v", err)
	}

	sep := *minSep
	if sep == 0 {
		sep = *perLap - 2
	}
	loopCfg := &loop.Config{
		Backend:       *loopBackend,
		MinSeparation: sep,
		MaxCandidates: 2,
		Cooldown:      1,
	}
	if err := loopCfg.Validate(); err != nil {
		log.Fatalf("%v", err)
	}

	seq := synth.GenerateSequence(synth.SequenceConfig{
		Scene:      synth.SceneConfig{Seed: *seed, Length: 120},
		Lidar:      synth.LidarConfig{Beams: *beams, AzimuthSteps: *azimuth, Seed: *seed},
		NumFrames:  *frames,
		Trajectory: synth.CircuitTrajectory{Radius: *radius, FramesPerLap: *perLap},
	})

	var flight *obs.FlightRecorder
	if *traceOut != "" {
		flight = obs.NewFlightRecorder(4096, 4)
	}

	rep := run(seq, cfg, loopCfg, *pipelined, *parallel, *driftYaw, *driftScale, flight)
	rep.Tag = *tag
	rep.DesignPoint = *designPoint
	rep.FramesPerLap = *perLap

	if *selftest {
		if err := check(rep); err != nil {
			log.Fatalf("selftest FAILED: %v", err)
		}
		fmt.Println("selftest ok")
	}

	if flight != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		meta := map[string]any{"tool": "tigris-slam", "frames": rep.Frames}
		if err := obs.WriteChromeTrace(f, flight.Export(), meta); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

// run streams the sequence through a loop-enabled engine, builds the
// drifted pose graph, optimizes, and scores all three trajectories.
func run(seq *synth.Sequence, cfg registration.PipelineConfig, loopCfg *loop.Config, pipelined bool, parallel int, driftYawDeg, driftScale float64, flight *obs.FlightRecorder) Report {
	var rep Report
	rep.Name = "tigris-slam"
	rep.GoVersion = runtime.Version()
	rep.NumCPU = runtime.NumCPU()
	rep.Backend = cfg.Searcher.BackendName()
	rep.Parallelism = parallel
	rep.Pipelined = pipelined
	rep.Frames = seq.Len()
	rep.DriftYawDeg = driftYawDeg
	rep.DriftScale = driftScale

	rec := obs.NewRecorder()
	eng := stream.New(stream.Config{Pipeline: cfg, Pipelined: pipelined, Loop: loopCfg, Obs: rec, Flight: flight})
	for _, f := range seq.Frames {
		if _, err := eng.Push(f.Clone()); err != nil {
			log.Fatalf("push: %v", err)
		}
	}
	eng.Drain()
	traj := eng.Trajectory()
	closures := eng.Closures()
	st := eng.Stats()
	eng.Close()

	rep.LoopStats.Observed = st.Loop.Observed
	rep.LoopStats.Proposed = st.Loop.Proposed
	rep.LoopStats.Verified = st.Loop.Verified
	rep.LoopStats.Accepted = st.Loop.Accepted
	for _, cl := range closures {
		truth := seq.Poses[cl.To].Inverse().Compose(seq.Poses[cl.From])
		rep.Closures = append(rep.Closures, ClosureReport{
			From:            cl.From,
			To:              cl.To,
			Inliers:         cl.Inliers,
			Correspondences: cl.Correspondences,
			RMSE:            cl.RMSE,
			DeltaErrM:       cl.Delta.Inverse().Compose(truth).TranslationNorm(),
		})
	}

	// Drift the measured odometry, then optimize with the loop edges.
	deltas := make([]geom.Transform, 0, traj.Len()-1)
	for _, fr := range traj.Frames[1:] {
		deltas = append(deltas, fr.Delta)
	}
	drifted := synth.DriftDeltas(deltas, driftYawDeg*math.Pi/180, driftScale)
	g := posegraph.FromOdometry(geom.IdentityTransform(), drifted)
	for _, cl := range closures {
		g.AddEdge(posegraph.Edge{I: cl.To, J: cl.From, Z: cl.Delta, TransWeight: 10, RotWeight: 10, Robust: true})
	}
	driftedPoses := append([]geom.Transform(nil), g.Poses...)
	optPoses, res, err := g.Optimize(posegraph.Options{Parallelism: parallel})
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}
	rec.Observe(obs.StagePoseGraph, res.SolveTime)
	if flight != nil {
		// The back-end solve runs outside the engine; give it a root span
		// of its own so the trace covers the whole SLAM run.
		flight.Record(obs.SpanEvent{
			Trace: eng.TraceID(),
			Frame: -1,
			Stage: obs.StagePoseGraph,
			Start: time.Now().Add(-res.SolveTime).UnixNano(),
			Dur:   int64(res.SolveTime),
		})
	}
	rep.Optimization.InitialCost = res.InitialCost
	rep.Optimization.FinalCost = res.FinalCost
	rep.Optimization.Iterations = res.Iterations
	rep.Optimization.Converged = res.Converged

	pf := registration.PrepareFrame(seq.Frames[0].Clone(), cfg)
	rep.PointStorageBytesPerFrame = pf.StorageBytes()
	rep.AosPointStorageBytesPerFrame = pf.AosStorageBytes()
	pf.Release()
	runtime.GC()
	rep.HeapInuseBytes = memstat.HeapInuseBytes()
	rep.PeakRSSBytes = memstat.PeakRSSBytes()

	rep.LatencyPercentiles = latencyPercentiles(rec)
	rep.Odometry = score(traj.Poses, seq.Poses)
	rep.Drifted = score(driftedPoses, seq.Poses)
	rep.Optimized = score(optPoses, seq.Poses)
	if rep.Optimized.ATERmseM > 0 {
		rep.ATEImprovement = rep.Drifted.ATERmseM / rep.Optimized.ATERmseM
	}

	fmt.Fprintf(os.Stderr, "closures %d/%d verified  ATE drifted %.3f m -> optimized %.3f m (%.2fx)\n",
		st.Loop.Accepted, st.Loop.Verified, rep.Drifted.ATERmseM, rep.Optimized.ATERmseM, rep.ATEImprovement)
	return rep
}

func score(est, truth []geom.Transform) TrajectoryReport {
	ate := posegraph.ATE(est, truth)
	rpe := posegraph.RPE(est, truth)
	return TrajectoryReport{
		ATERmseM:     ate.RMSE,
		ATEMaxM:      ate.Max,
		RPETransM:    rpe.TransRMSE,
		RPERotDeg:    rpe.RotRMSE * 180 / math.Pi,
		FramesScored: ate.Frames,
	}
}

// check asserts the selftest contract: the loop is detected with an
// accurate relative transform, and optimization reduces the drifted
// trajectory's ATE by a real margin.
func check(rep Report) error {
	if len(rep.Closures) == 0 {
		return fmt.Errorf("no loop closure detected")
	}
	for _, cl := range rep.Closures {
		if cl.DeltaErrM > 0.1 {
			return fmt.Errorf("closure %d->%d delta is %.3f m from ground truth", cl.From, cl.To, cl.DeltaErrM)
		}
	}
	if !rep.Optimization.Converged {
		return fmt.Errorf("pose-graph optimization did not converge")
	}
	if rep.Optimized.ATERmseM >= 0.75*rep.Drifted.ATERmseM {
		return fmt.Errorf("ATE %.3f m -> %.3f m: want at least a 25%% reduction",
			rep.Drifted.ATERmseM, rep.Optimized.ATERmseM)
	}
	return nil
}

func findDesignPoint(name string) (registration.PipelineConfig, bool) {
	for _, dp := range dse.NamedDesignPoints() {
		if dp.Name == name {
			return dp.Config, true
		}
	}
	return registration.PipelineConfig{}, false
}
