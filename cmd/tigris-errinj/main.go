// Command tigris-errinj reproduces the paper's §4.2 error-tolerance study
// (Fig. 7): errors are injected into KD-tree search and the end-to-end
// registration error is measured.
//
//	Fig. 7a — NN search returns the k-th neighbor instead of the nearest,
//	          injected into dense RPCE and into sparse KPCE.
//	Fig. 7b — radius search returns a shell <r1, r2> instead of the ball,
//	          injected into Normal Estimation.
//
// Usage:
//
//	tigris-errinj [-mode knn|shell|all] [-frames N] [-seed S] [-backend NAME] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"tigris/internal/dse"
	"tigris/internal/registration"
	"tigris/internal/synth"
)

func main() {
	mode := flag.String("mode", "all", "knn (Fig. 7a), shell (Fig. 7b), or all")
	frames := flag.Int("frames", 3, "frames in the synthetic sequence")
	seed := flag.Int64("seed", 2019, "dataset seed")
	backend := flag.String("backend", "", "search backend registry name the errors are injected around (\"\" = the design point's own)")
	quick := flag.Bool("quick", false, "use small test-scale frames")
	flag.Parse()

	cfg := synth.EvalSequenceConfig(*frames, *seed)
	if *quick {
		cfg = synth.QuickSequenceConfig(*frames, *seed)
	}
	seq := synth.GenerateSequence(cfg)
	fmt.Printf("sequence: %d frames of %d points\n\n", seq.Len(), seq.Frames[0].Len())

	base := dse.DP7().Config // accuracy-oriented point, as in §4.2's study
	base.ICP.MaxIterations = 25
	if *backend != "" {
		base.Searcher.Backend = *backend
		base.Searcher.TopHeight = -1
		if err := base.Searcher.Validate(); err != nil {
			log.Fatalf("%v", err)
		}
	}

	evaluate := func(inject registration.Injection, trustFrontEnd bool) registration.SequenceError {
		var errs []registration.FrameError
		cfgI := base
		cfgI.Inject = inject
		if trustFrontEnd {
			// The sparse-KPCE arm measures how front-end corruption
			// propagates, so the robustness guards that would mask it
			// (RANSAC verification, the inter-frame motion prior) are
			// swapped for the paper-era configuration: threshold
			// rejection and an uncapped initial estimate.
			cfgI.Rejection.Method = registration.RejectThreshold
			cfgI.MaxInitialTranslation = -1
			cfgI.MaxInitialRotation = -1
		}
		for i := 0; i+1 < seq.Len(); i++ {
			res := registration.Register(seq.Frames[i+1], seq.Frames[i], cfgI)
			errs = append(errs, registration.EvaluatePair(res.Transform, seq.GroundTruthDelta(i)))
		}
		return registration.Aggregate(errs)
	}

	if *mode == "knn" || *mode == "all" {
		fmt.Println("=== Fig. 7a: k-th NN injection (translational error %) ===")
		fmt.Printf("%-4s %18s %18s\n", "k", "RPCE (dense)", "KPCE (sparse)")
		for _, k := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9} {
			dense := evaluate(registration.Injection{RPCEKthNN: k}, false)
			sparse := evaluate(registration.Injection{KPCEKthNN: k}, true)
			fmt.Printf("%-4d %11.2f ±%5.2f %11.2f ±%5.2f\n",
				k,
				dense.MeanTranslationalPct, dense.StdevTranslationalPct,
				sparse.MeanTranslationalPct, sparse.StdevTranslationalPct)
		}
		fmt.Println("\npaper reference: dense RPCE tolerates large k; sparse KPCE degrades")
		fmt.Println("sharply (≈40% accuracy loss already at k=2).")
		fmt.Println()
	}

	if *mode == "shell" || *mode == "all" {
		// The paper sweeps <r1, 75cm> against an exact radius of 60 cm; our
		// DP7 NE radius is 0.75 m, so the shell outer radius is fixed at
		// 0.95 m and r1 sweeps upward.
		r := base.Normal.SearchRadius
		outer := r + 0.2
		fmt.Printf("=== Fig. 7b: radius-shell injection into NE (exact r = %.2f m) ===\n", r)
		fmt.Printf("%-14s %18s\n", "<r1,r2> (m)", "NE (dense)")
		for _, r1 := range []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60} {
			res := evaluate(registration.Injection{NEShell: &[2]float64{r1, outer}}, false)
			fmt.Printf("<%.2f,%.2f>   %11.2f ±%5.2f\n",
				r1, outer, res.MeanTranslationalPct, res.StdevTranslationalPct)
		}
		fmt.Println("\npaper reference: registration error is statistically flat until the")
		fmt.Println("shell excludes most of the true neighborhood.")
	}
}
