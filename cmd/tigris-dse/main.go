// Command tigris-dse reproduces the paper's design-space exploration:
//
//	Fig. 3a/3b — accuracy vs time scatter with Pareto-front annotation
//	Fig. 4a    — per-stage time distribution of the named points DP1–DP8
//	Fig. 4b    — KD-tree search / construction / other split
//
// Usage:
//
//	tigris-dse [-frames N] [-seed S] [-parallel N] [-backend NAME] [-grid] [-stages] [-quick]
//
// With -grid the full Tbl. 1 knob grid (48 points) is evaluated; with
// -stages the named DP1–DP8 breakdowns are printed. Default runs both.
// -backend swaps every design point's search backend for the named
// registry backend (e.g. twostage-approx), exploring how the structure
// choice shifts the whole frontier.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"tigris/internal/dse"
	"tigris/internal/registration"
	"tigris/internal/synth"
)

func main() {
	frames := flag.Int("frames", 3, "frames in the synthetic sequence (pairs = frames-1)")
	seed := flag.Int64("seed", 2019, "dataset seed")
	parallel := flag.Int("parallel", 0, "batch search worker count (0 = all CPUs, 1 = sequential)")
	backend := flag.String("backend", "", "search backend registry name for every design point (\"\" keeps each point's own)")
	gridOnly := flag.Bool("grid", false, "run only the Fig. 3 grid DSE")
	stagesOnly := flag.Bool("stages", false, "run only the Fig. 4 stage breakdowns")
	quick := flag.Bool("quick", false, "use small test-scale frames")
	flag.Parse()

	if *backend != "" {
		probe := registration.SearcherConfig{Backend: *backend, TopHeight: -1}
		if err := probe.Validate(); err != nil {
			log.Fatalf("%v", err)
		}
	}

	var cfg synth.SequenceConfig
	if *quick {
		cfg = synth.QuickSequenceConfig(*frames, *seed)
	} else {
		cfg = synth.EvalSequenceConfig(*frames, *seed)
	}
	fmt.Printf("generating %d synthetic LiDAR frames (seed %d)...\n", *frames, *seed)
	seq := synth.GenerateSequence(cfg)
	fmt.Printf("frame size: %d points\n\n", seq.Frames[0].Len())

	if !*stagesOnly {
		runGrid(seq, *parallel, *backend)
	}
	if !*gridOnly {
		runStages(seq, *parallel, *backend)
	}
	_ = os.Stdout
}

// applySearcher overlays the CLI searcher knobs on a design point.
func applySearcher(cfg *registration.PipelineConfig, parallel int, backend string) {
	cfg.Searcher.Parallelism = parallel
	if backend != "" {
		cfg.Searcher.Backend = backend
		cfg.Searcher.TopHeight = -1
	}
}

// runGrid evaluates the Tbl. 1 grid and prints the Fig. 3 scatter plus
// Pareto fronts.
func runGrid(seq *synth.Sequence, parallel int, backend string) {
	fmt.Println("=== Fig. 3: design-space exploration (error vs time) ===")
	grid := dse.Grid()
	evals := make([]dse.Evaluated, 0, len(grid))
	start := time.Now()
	for i, dp := range grid {
		applySearcher(&dp.Config, parallel, backend)
		ev := dse.Evaluate(seq, dp)
		evals = append(evals, ev)
		fmt.Printf("  [%2d/%d] %-42s terr %6.2f%%  rerr %7.4f°/m  time %8.1fms\n",
			i+1, len(grid), dp.Name, ev.Error.MeanTranslationalPct,
			ev.Error.MeanRotationalDegPerM, ev.MeanTime.Seconds()*1e3)
	}
	fmt.Printf("grid evaluated in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Normalized time as in Fig. 3 (normalized to the slowest point).
	var maxT time.Duration
	for i := range evals {
		if evals[i].MeanTime > maxT {
			maxT = evals[i].MeanTime
		}
	}
	printFront := func(title string, errOf func(*dse.Evaluated) float64, unit string) {
		front := dse.ParetoFront(evals, errOf)
		sort.Slice(front, func(a, b int) bool { return errOf(&front[a]) < errOf(&front[b]) })
		fmt.Printf("%s (error → normalized time):\n", title)
		for _, e := range front {
			fmt.Printf("  %-42s %8.4f%s  %6.3f\n",
				e.Point.Name, errOf(&e), unit, float64(e.MeanTime)/float64(maxT))
		}
		fmt.Println()
	}
	printFront("Fig. 3a Pareto front, translational", dse.TranslationalError, "%")
	printFront("Fig. 3b Pareto front, rotational", dse.RotationalError, "°/m")
}

// runStages prints the Fig. 4a/4b breakdowns for DP1–DP8.
func runStages(seq *synth.Sequence, parallel int, backend string) {
	fmt.Println("=== Fig. 4a: per-stage time distribution of DP1-DP8 (%) ===")
	fmt.Printf("%-5s %7s %7s %7s %7s %7s %7s %7s\n",
		"DP", "NE", "KeyPt", "Desc", "KPCE", "Reject", "RPCE", "ErrMin")
	type row struct {
		ev dse.Evaluated
	}
	var rows []row
	for _, dp := range dse.NamedDesignPoints() {
		applySearcher(&dp.Config, parallel, backend)
		ev := dse.Evaluate(seq, dp)
		rows = append(rows, row{ev: ev})
		total := float64(ev.Stage.Total())
		pct := func(d time.Duration) float64 {
			if total == 0 {
				return 0
			}
			return 100 * float64(d) / total
		}
		fmt.Printf("%-5s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
			dp.Name,
			pct(ev.Stage.NormalEstimation), pct(ev.Stage.KeypointDetection),
			pct(ev.Stage.DescriptorCalculation), pct(ev.Stage.KPCE),
			pct(ev.Stage.Rejection), pct(ev.Stage.RPCE), pct(ev.Stage.ErrorMinimization))
	}

	fmt.Println("\n=== Fig. 4b: KD-tree search vs construction vs other (%) ===")
	fmt.Printf("%-5s %10s %14s %8s   (terr, time)\n", "DP", "KD-search", "KD-construct", "other")
	for i, dp := range dse.NamedDesignPoints() {
		ev := rows[i].ev
		total := float64(ev.KDSearch + ev.KDBuild + ev.Other)
		if total == 0 {
			total = 1
		}
		fmt.Printf("%-5s %9.1f%% %13.1f%% %7.1f%%   (%.2f%%, %.0fms)\n",
			dp.Name,
			100*float64(ev.KDSearch)/total,
			100*float64(ev.KDBuild)/total,
			100*float64(ev.Other)/total,
			ev.Error.MeanTranslationalPct,
			ev.MeanTime.Seconds()*1e3)
	}
	fmt.Println("\npaper reference: KD-tree search is 50-85% of time on every DP (Fig. 4b)")
}
