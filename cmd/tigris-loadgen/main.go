// Command tigris-loadgen drives open-loop multi-client traffic against
// a tigris-serve worker or a tigris-gateway fleet and writes a
// BENCH_serve.json record of what the clients observed: sessions/sec,
// per-frame latency percentiles, admission rejections, and the
// per-worker load split.
//
// Usage:
//
//	tigris-loadgen -url http://gateway:8088 -sessions 100 -rate 5
//	tigris-loadgen -fleet 2 -sessions 20 -rate 10 -policy least-loaded
//
// -url targets a running worker or gateway. -fleet N instead stands up
// a self-contained fleet in-process — N workers plus a gateway wired
// with -policy and -admit-rate — runs the load through it, and tears it
// down; CI uses this for a hermetic smoke test.
//
// -sessions is the total session count and -rate the mean arrival rate
// per second; arrivals are open loop (scheduled up front from a seeded
// -arrival poisson or gamma process — gamma takes -cv), so overload
// shows up as latency and rejections, not as a politely slowed
// client. -mix runs the built-in weighted scenario mix (compact/dense/
// loop-closure sessions); otherwise one profile built from -frames,
// -beams, -azimuth, and -loop is used. The same -seed reproduces the
// same schedule, mix, and synthetic frames.
//
// The JSON record lands at -out (default BENCH_serve.json; "-" for
// stdout only) tagged with -tag. -rate-ladder "2,5,10" sweeps the run
// across ascending arrival rates instead of the single -rate; the
// output is then a JSON array with one record per step (the saturation
// curve in one invocation). Each record carries per-profile latency
// splits and trace-id exemplars: the slowest observations of each
// family with the X-Tigris-Trace id the fleet answered with, chaseable
// via /gateway/trace/{id}. -trace-out FILE additionally probes one
// traced session after the run and writes its stitched gateway trace
// (Chrome trace-event JSON, Perfetto-loadable). -version prints build
// info and exits. Exit status is nonzero if any session failed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/gateway"
	"tigris/internal/loadgen"
	"tigris/internal/serve"
	"tigris/internal/synth"
)

func main() {
	url := flag.String("url", "", "target worker or gateway base URL")
	fleet := flag.Int("fleet", 0, "stand up N in-process workers behind an in-process gateway instead of -url")
	policy := flag.String("policy", "round-robin", "fleet-mode gateway routing policy")
	admitRate := flag.Float64("admit-rate", 0, "fleet-mode gateway per-client admission rate (0 = off)")
	sessions := flag.Int("sessions", 10, "total sessions to run")
	rate := flag.Float64("rate", 5, "mean session arrival rate per second")
	arrival := flag.String("arrival", "poisson", "inter-arrival process: poisson or gamma")
	cv := flag.Float64("cv", 1, "gamma arrivals: coefficient of variation")
	seed := flag.Int64("seed", 1, "deterministic seed for schedule, mix, and frames")
	frames := flag.Int("frames", 4, "frames per session (single-profile mode)")
	beams := flag.Int("beams", 16, "lidar beams per frame (single-profile mode)")
	azimuth := flag.Int("azimuth", 300, "lidar azimuth steps per frame (single-profile mode)")
	loop := flag.Bool("loop", false, "enable loop closure (single-profile mode)")
	parallelism := flag.Int("parallelism", 1, "per-session pipeline parallelism (0 = server default)")
	mix := flag.Bool("mix", false, "run the built-in weighted scenario mix instead of the single profile")
	authToken := flag.String("auth-token", "", "bearer token presented on every request")
	out := flag.String("out", "BENCH_serve.json", "output JSON path (\"-\" = stdout only)")
	tag := flag.String("tag", "", "tag recorded in the output")
	rateLadder := flag.String("rate-ladder", "", "comma-separated arrival rates to sweep instead of -rate; the output becomes a JSON array with one record per step")
	traceOut := flag.String("trace-out", "", "after the run, probe one traced session through the target and write its stitched gateway trace (Chrome trace-event JSON) here")
	version := flag.Bool("version", false, "print build info (module, go toolchain, VCS revision) and exit")
	flag.Parse()

	if *version {
		b, _ := json.MarshalIndent(serve.BuildInfo(), "", "  ")
		fmt.Println(string(b))
		return
	}

	if (*url == "") == (*fleet <= 0) {
		fmt.Fprintln(os.Stderr, "exactly one of -url or -fleet is required")
		os.Exit(2)
	}

	target := *url
	if *fleet > 0 {
		var stop func()
		var err error
		target, stop, err = startFleet(*fleet, *policy, *admitRate, *parallelism)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}

	profiles := []loadgen.Profile{{
		Name:         "cli",
		Frames:       *frames,
		Beams:        *beams,
		AzimuthSteps: *azimuth,
		Loop:         *loop,
		Parallelism:  *parallelism,
	}}
	if *mix {
		profiles = loadgen.DefaultProfiles()
	}

	cfg := loadgen.Config{
		Target:    target,
		Sessions:  *sessions,
		Rate:      *rate,
		Arrival:   *arrival,
		CV:        *cv,
		Seed:      *seed,
		Profiles:  profiles,
		AuthToken: *authToken,
	}

	var results []*loadgen.Result
	if *rateLadder != "" {
		rates, err := parseRates(*rateLadder)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		results, err = loadgen.RunLadder(cfg, rates)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		res, err := loadgen.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = []*loadgen.Result{res}
	}
	failed := false
	for _, res := range results {
		res.Tag = *tag
		printSummary(res)
		failed = failed || res.SessionsFailed > 0
	}

	// A single run keeps the historical one-object BENCH_serve.json
	// shape; a ladder is a JSON array, one record per rate step.
	var outDoc any = results[0]
	if *rateLadder != "" {
		outDoc = results
	}
	b, _ := json.MarshalIndent(outDoc, "", "  ")
	if *out != "-" {
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		fmt.Println(string(b))
	}

	if *traceOut != "" {
		if err := traceProbe(target, *authToken, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "trace probe:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *traceOut)
	}
	if failed {
		os.Exit(1)
	}
}

// parseRates parses the -rate-ladder list.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		r, err := strconv.ParseFloat(p, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("-rate-ladder: bad rate %q", p)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-rate-ladder: no rates")
	}
	return rates, nil
}

// traceProbe drives one fresh session through the target — create, two
// tiny frames with ?wait=1, trajectory — and saves the trace the fleet
// recorded for it: the gateway's stitched /gateway/trace/{id} document
// when the target is a gateway, or the worker's /debug/trace/{id} when
// it is a bare worker. The session is left alive so its flight recorder
// stays queryable; CI validates the written file as Chrome trace JSON.
func traceProbe(target, authToken, path string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	do := func(method, p, contentType string, body []byte) (*http.Response, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, target+p, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if authToken != "" {
			req.Header.Set("Authorization", "Bearer "+authToken)
		}
		return client.Do(req)
	}

	resp, err := do(http.MethodPost, "/v1/sessions", "application/json", []byte(`{"parallelism":1}`))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("create: status %d: %s", resp.StatusCode, body)
	}
	var created struct {
		ID    string `json:"id"`
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal(body, &created); err != nil || created.ID == "" {
		return fmt.Errorf("create: bad response %s", body)
	}

	seq := synth.GenerateSequence(synth.SequenceConfig{
		Scene:     synth.SceneConfig{Seed: 42, Length: 120},
		Lidar:     synth.LidarConfig{Beams: 8, AzimuthSteps: 90, Seed: 42},
		NumFrames: 2,
	})
	for _, c := range seq.Frames {
		var buf bytes.Buffer
		if err := cloud.Write(&buf, c); err != nil {
			return err
		}
		resp, err := do(http.MethodPost, "/v1/sessions/"+created.ID+"/frames?wait=1", "application/octet-stream", buf.Bytes())
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("push: status %d", resp.StatusCode)
		}
	}

	// Gateway ids start "g", worker ids "s" — pick the matching surface.
	tracePath := "/gateway/trace/" + created.ID
	if !strings.HasPrefix(created.ID, "g") {
		tracePath = "/debug/trace/" + created.ID
	}
	resp, err = do(http.MethodGet, tracePath, "", nil)
	if err != nil {
		return err
	}
	doc, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", tracePath, resp.StatusCode, doc)
	}
	return os.WriteFile(path, append(doc, '\n'), 0o644)
}

// startFleet stands up n in-process workers behind an in-process
// gateway on loopback listeners, returning the gateway URL and a
// teardown function.
func startFleet(n int, policy string, admitRate float64, parallelism int) (string, func(), error) {
	pol, err := gateway.ParsePolicy(policy)
	if err != nil {
		return "", nil, err
	}
	var stops []func()
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	var urls []string
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{Parallelism: parallelism})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return "", nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		stops = append(stops, func() { hs.Close(); srv.Close() })
		urls = append(urls, "http://"+ln.Addr().String())
	}
	gw, err := gateway.New(gateway.Config{
		Workers:        urls,
		Policy:         pol,
		AdmitRate:      admitRate,
		HealthInterval: 500 * time.Millisecond,
	})
	if err != nil {
		stop()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stop()
		return "", nil, err
	}
	hs := &http.Server{Handler: gw}
	go hs.Serve(ln)
	stops = append(stops, func() { hs.Close(); gw.Close() })
	fmt.Printf("fleet: %d workers behind gateway %s (policy %s)\n", n, ln.Addr(), pol)
	return "http://" + ln.Addr().String(), stop, nil
}

// printSummary writes the human-readable digest to stdout.
func printSummary(res *loadgen.Result) {
	fmt.Printf("target %s  arrival %s  rate %.3g/s  seed %d\n",
		res.Target, res.Arrival, res.RatePerSec, res.Seed)
	fmt.Printf("sessions %d ok %d failed %d  frames %d  %.2f sessions/s over %.2fs\n",
		res.Sessions, res.SessionsOK, res.SessionsFailed, res.FramesPushed,
		res.SessionsPerSec, res.DurationSeconds)
	if res.Rejected429+res.Rejected503 > 0 {
		fmt.Printf("rejected: %d x 429, %d x 503\n", res.Rejected429, res.Rejected503)
	}
	stages := make([]string, 0, len(res.Latency))
	for s := range res.Latency {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		d := res.Latency[s]
		fmt.Printf("%-12s n=%-5d p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
			s, d.Count, d.P50Ms, d.P95Ms, d.P99Ms, d.MaxMs)
	}
	workers := make([]string, 0, len(res.PerWorker))
	for w := range res.PerWorker {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	for _, w := range workers {
		fmt.Printf("worker %-28s %d sessions\n", w, res.PerWorker[w])
	}
}
