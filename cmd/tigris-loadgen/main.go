// Command tigris-loadgen drives open-loop multi-client traffic against
// a tigris-serve worker or a tigris-gateway fleet and writes a
// BENCH_serve.json record of what the clients observed: sessions/sec,
// per-frame latency percentiles, admission rejections, and the
// per-worker load split.
//
// Usage:
//
//	tigris-loadgen -url http://gateway:8088 -sessions 100 -rate 5
//	tigris-loadgen -fleet 2 -sessions 20 -rate 10 -policy least-loaded
//
// -url targets a running worker or gateway. -fleet N instead stands up
// a self-contained fleet in-process — N workers plus a gateway wired
// with -policy and -admit-rate — runs the load through it, and tears it
// down; CI uses this for a hermetic smoke test.
//
// -sessions is the total session count and -rate the mean arrival rate
// per second; arrivals are open loop (scheduled up front from a seeded
// -arrival poisson or gamma process — gamma takes -cv), so overload
// shows up as latency and rejections, not as a politely slowed
// client. -mix runs the built-in weighted scenario mix (compact/dense/
// loop-closure sessions); otherwise one profile built from -frames,
// -beams, -azimuth, and -loop is used. The same -seed reproduces the
// same schedule, mix, and synthetic frames.
//
// The JSON record lands at -out (default BENCH_serve.json; "-" for
// stdout only) tagged with -tag. Exit status is nonzero if any session
// failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"tigris/internal/gateway"
	"tigris/internal/loadgen"
	"tigris/internal/serve"
)

func main() {
	url := flag.String("url", "", "target worker or gateway base URL")
	fleet := flag.Int("fleet", 0, "stand up N in-process workers behind an in-process gateway instead of -url")
	policy := flag.String("policy", "round-robin", "fleet-mode gateway routing policy")
	admitRate := flag.Float64("admit-rate", 0, "fleet-mode gateway per-client admission rate (0 = off)")
	sessions := flag.Int("sessions", 10, "total sessions to run")
	rate := flag.Float64("rate", 5, "mean session arrival rate per second")
	arrival := flag.String("arrival", "poisson", "inter-arrival process: poisson or gamma")
	cv := flag.Float64("cv", 1, "gamma arrivals: coefficient of variation")
	seed := flag.Int64("seed", 1, "deterministic seed for schedule, mix, and frames")
	frames := flag.Int("frames", 4, "frames per session (single-profile mode)")
	beams := flag.Int("beams", 16, "lidar beams per frame (single-profile mode)")
	azimuth := flag.Int("azimuth", 300, "lidar azimuth steps per frame (single-profile mode)")
	loop := flag.Bool("loop", false, "enable loop closure (single-profile mode)")
	parallelism := flag.Int("parallelism", 1, "per-session pipeline parallelism (0 = server default)")
	mix := flag.Bool("mix", false, "run the built-in weighted scenario mix instead of the single profile")
	authToken := flag.String("auth-token", "", "bearer token presented on every request")
	out := flag.String("out", "BENCH_serve.json", "output JSON path (\"-\" = stdout only)")
	tag := flag.String("tag", "", "tag recorded in the output")
	flag.Parse()

	if (*url == "") == (*fleet <= 0) {
		fmt.Fprintln(os.Stderr, "exactly one of -url or -fleet is required")
		os.Exit(2)
	}

	target := *url
	if *fleet > 0 {
		var stop func()
		var err error
		target, stop, err = startFleet(*fleet, *policy, *admitRate, *parallelism)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}

	profiles := []loadgen.Profile{{
		Name:         "cli",
		Frames:       *frames,
		Beams:        *beams,
		AzimuthSteps: *azimuth,
		Loop:         *loop,
		Parallelism:  *parallelism,
	}}
	if *mix {
		profiles = loadgen.DefaultProfiles()
	}

	res, err := loadgen.Run(loadgen.Config{
		Target:    target,
		Sessions:  *sessions,
		Rate:      *rate,
		Arrival:   *arrival,
		CV:        *cv,
		Seed:      *seed,
		Profiles:  profiles,
		AuthToken: *authToken,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res.Tag = *tag

	printSummary(res)
	if *out != "-" {
		b, _ := json.MarshalIndent(res, "", "  ")
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		b, _ := json.MarshalIndent(res, "", "  ")
		fmt.Println(string(b))
	}
	if res.SessionsFailed > 0 {
		os.Exit(1)
	}
}

// startFleet stands up n in-process workers behind an in-process
// gateway on loopback listeners, returning the gateway URL and a
// teardown function.
func startFleet(n int, policy string, admitRate float64, parallelism int) (string, func(), error) {
	pol, err := gateway.ParsePolicy(policy)
	if err != nil {
		return "", nil, err
	}
	var stops []func()
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	var urls []string
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{Parallelism: parallelism})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return "", nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		stops = append(stops, func() { hs.Close(); srv.Close() })
		urls = append(urls, "http://"+ln.Addr().String())
	}
	gw, err := gateway.New(gateway.Config{
		Workers:        urls,
		Policy:         pol,
		AdmitRate:      admitRate,
		HealthInterval: 500 * time.Millisecond,
	})
	if err != nil {
		stop()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stop()
		return "", nil, err
	}
	hs := &http.Server{Handler: gw}
	go hs.Serve(ln)
	stops = append(stops, func() { hs.Close(); gw.Close() })
	fmt.Printf("fleet: %d workers behind gateway %s (policy %s)\n", n, ln.Addr(), pol)
	return "http://" + ln.Addr().String(), stop, nil
}

// printSummary writes the human-readable digest to stdout.
func printSummary(res *loadgen.Result) {
	fmt.Printf("target %s  arrival %s  rate %.3g/s  seed %d\n",
		res.Target, res.Arrival, res.RatePerSec, res.Seed)
	fmt.Printf("sessions %d ok %d failed %d  frames %d  %.2f sessions/s over %.2fs\n",
		res.Sessions, res.SessionsOK, res.SessionsFailed, res.FramesPushed,
		res.SessionsPerSec, res.DurationSeconds)
	if res.Rejected429+res.Rejected503 > 0 {
		fmt.Printf("rejected: %d x 429, %d x 503\n", res.Rejected429, res.Rejected503)
	}
	stages := make([]string, 0, len(res.Latency))
	for s := range res.Latency {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		d := res.Latency[s]
		fmt.Printf("%-12s n=%-5d p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
			s, d.Count, d.P50Ms, d.P95Ms, d.P99Ms, d.MaxMs)
	}
	workers := make([]string, 0, len(res.PerWorker))
	for w := range res.PerWorker {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	for _, w := range workers {
		fmt.Printf("worker %-28s %d sessions\n", w, res.PerWorker[w])
	}
}
