// Command tigris-synth generates a synthetic LiDAR sequence (the KITTI
// substitute, DESIGN.md substitution 1) and writes each frame as a
// TIGRIS-CLOUD file plus a poses.txt with the ground-truth trajectory in
// KITTI's 3×4 row-major format. The output feeds tigris-register or any
// external tool.
//
// Usage:
//
//	tigris-synth [-frames N] [-seed S] [-beams B] [-azimuth A] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tigris/internal/cloud"
	"tigris/internal/synth"
)

func main() {
	frames := flag.Int("frames", 5, "number of frames")
	seed := flag.Int64("seed", 1, "scene + noise seed")
	beams := flag.Int("beams", 32, "vertical beams (64 = HDL-64E class)")
	azimuth := flag.Int("azimuth", 600, "azimuth steps per revolution")
	outDir := flag.String("out", "synth-out", "output directory")
	flag.Parse()

	cfg := synth.SequenceConfig{
		Scene:     synth.SceneConfig{Seed: *seed},
		Lidar:     synth.LidarConfig{Beams: *beams, AzimuthSteps: *azimuth, Seed: *seed},
		NumFrames: *frames,
	}
	seq := synth.GenerateSequence(cfg)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	poses, err := os.Create(filepath.Join(*outDir, "poses.txt"))
	if err != nil {
		log.Fatal(err)
	}
	defer poses.Close()

	for i, frame := range seq.Frames {
		name := filepath.Join(*outDir, fmt.Sprintf("%06d.cloud", i))
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := cloud.Write(f, frame); err != nil {
			log.Fatal(err)
		}
		f.Close()

		// KITTI pose format: the first 3 rows of the 4x4 vehicle->world
		// matrix, row-major on one line.
		m := seq.Poses[i].Mat4()
		for r := 0; r < 3; r++ {
			for c := 0; c < 4; c++ {
				if r+c > 0 {
					fmt.Fprint(poses, " ")
				}
				fmt.Fprintf(poses, "%.9f", m.At(r, c))
			}
		}
		fmt.Fprintln(poses)
		fmt.Printf("wrote %s (%d points)\n", name, frame.Len())
	}
	fmt.Printf("wrote %s\n", filepath.Join(*outDir, "poses.txt"))
}
