// Command tigris-register registers two point cloud files (TIGRIS-CLOUD
// format, see internal/cloud) and prints the estimated 4×4 transformation
// matrix that maps the source cloud onto the target cloud — the paper's
// Eq. 1 output. This is the downstream-user entry point: feed it two
// LiDAR frames, get the odometry step.
//
// Usage:
//
//	tigris-register [-searcher canonical|twostage|approx] [-parallel N] [-profile] source.cloud target.cloud
//
// Generate sample inputs with `go run ./examples/mapping` or via
// tigris.WriteCloud.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tigris/internal/cloud"
	"tigris/internal/dse"
	"tigris/internal/registration"
)

func main() {
	searcher := flag.String("searcher", "canonical", "search backend: canonical, twostage, or approx")
	parallel := flag.Int("parallel", 0, "batch search worker count (0 = all CPUs, 1 = sequential)")
	profile := flag.Bool("profile", false, "print stage timing and KD-tree search breakdown")
	designPoint := flag.String("dp", "DP5", "design point to run (DP1..DP8)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tigris-register [flags] source.cloud target.cloud")
		os.Exit(2)
	}

	src := mustLoad(flag.Arg(0))
	dst := mustLoad(flag.Arg(1))
	fmt.Fprintf(os.Stderr, "source: %d points, target: %d points\n", src.Len(), dst.Len())

	cfg, ok := findDesignPoint(*designPoint)
	if !ok {
		log.Fatalf("unknown design point %q (want DP1..DP8)", *designPoint)
	}
	switch *searcher {
	case "canonical":
		cfg.Searcher.Kind = registration.SearchCanonical
	case "twostage":
		cfg.Searcher.Kind = registration.SearchTwoStage
		cfg.Searcher.TopHeight = -1
	case "approx":
		cfg.Searcher.Kind = registration.SearchTwoStageApprox
		cfg.Searcher.TopHeight = -1
	default:
		log.Fatalf("unknown searcher %q", *searcher)
	}
	cfg.Searcher.Parallelism = *parallel

	res := registration.Register(src, dst, cfg)

	// The 4×4 homogeneous matrix, row per line (paper Eq. 1).
	m := res.Transform.Mat4()
	for r := 0; r < 4; r++ {
		fmt.Printf("% .9f % .9f % .9f % .9f\n", m.At(r, 0), m.At(r, 1), m.At(r, 2), m.At(r, 3))
	}

	if *profile {
		fmt.Fprintf(os.Stderr, "\ntotal: %v (ICP iterations %d, converged %v)\n",
			res.Total.Round(1e6), res.ICP.Iterations, res.ICP.Converged)
		fmt.Fprintf(os.Stderr, "stages: NE %v | keypt %v | desc %v | KPCE %v | reject %v | RPCE %v | solve %v\n",
			res.Stage.NormalEstimation.Round(1e6), res.Stage.KeypointDetection.Round(1e6),
			res.Stage.DescriptorCalculation.Round(1e6), res.Stage.KPCE.Round(1e6),
			res.Stage.Rejection.Round(1e6), res.Stage.RPCE.Round(1e6),
			res.Stage.ErrorMinimization.Round(1e6))
		fmt.Fprintf(os.Stderr, "KD-tree: search %v (%.0f%%), construction %v, other %v\n",
			res.KDSearchTime.Round(1e6),
			100*float64(res.KDSearchTime)/float64(res.Total),
			res.KDBuildTime.Round(1e6), res.OtherTime().Round(1e6))
		fmt.Fprintf(os.Stderr, "keypoints %d/%d, correspondences %d, inliers %d\n",
			res.SrcKeypoints, res.DstKeypoints, res.Correspondences, res.Inliers)
	}
}

func mustLoad(path string) *cloud.Cloud {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	c, err := cloud.Read(f)
	if err != nil {
		log.Fatalf("parse %s: %v", path, err)
	}
	return c
}

func findDesignPoint(name string) (registration.PipelineConfig, bool) {
	for _, dp := range dse.NamedDesignPoints() {
		if dp.Name == name {
			return dp.Config, true
		}
	}
	return registration.PipelineConfig{}, false
}
