// Command tigris-register registers two point cloud files (TIGRIS-CLOUD
// format, see internal/cloud) and prints the estimated 4×4 transformation
// matrix that maps the source cloud onto the target cloud — the paper's
// Eq. 1 output. This is the downstream-user entry point: feed it two
// LiDAR frames, get the odometry step.
//
// Usage:
//
//	tigris-register [-backend NAME] [-opt key=value]... [-parallel N] [-profile]
//	                [-cpuprofile FILE] [-memprofile FILE] source.cloud target.cloud
//
// -backend selects any registered search backend by name (canonical,
// twostage, twostage-approx, bruteforce, ...); -opt passes
// backend-specific options, e.g. `-backend twostage -opt top_height=8`.
// The deprecated -searcher flag (canonical|twostage|approx) keeps
// working. Generate sample inputs with `go run ./examples/mapping` or via
// tigris.WriteCloud.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"tigris/internal/cloud"
	"tigris/internal/dse"
	"tigris/internal/registration"
	"tigris/internal/search"
)

// optFlag collects repeated -opt key=value pairs into a backend option
// bag, parsing values as bool, int, or float before falling back to
// string.
type optFlag struct{ opts search.Options }

func (f *optFlag) String() string { return fmt.Sprintf("%v", f.opts) }

func (f *optFlag) Set(v string) error {
	key, val, ok := strings.Cut(v, "=")
	if !ok || key == "" {
		return fmt.Errorf("want key=value, got %q", v)
	}
	if f.opts == nil {
		f.opts = search.Options{}
	}
	switch {
	case val == "true" || val == "false":
		f.opts[key] = val == "true"
	default:
		if n, err := strconv.Atoi(val); err == nil {
			f.opts[key] = n
		} else if x, err := strconv.ParseFloat(val, 64); err == nil {
			f.opts[key] = x
		} else {
			f.opts[key] = val
		}
	}
	return nil
}

func main() {
	backend := flag.String("backend", "", "search backend registry name (overrides -searcher; see internal/search)")
	var opts optFlag
	flag.Var(&opts, "opt", "backend option as key=value (repeatable)")
	searcher := flag.String("searcher", "canonical", "deprecated alias: canonical, twostage, or approx")
	parallel := flag.Int("parallel", 0, "batch search worker count (0 = all CPUs, 1 = sequential)")
	profile := flag.Bool("profile", false, "print stage timing and KD-tree search breakdown")
	designPoint := flag.String("dp", "DP5", "design point to run (DP1..DP8)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tigris-register [flags] source.cloud target.cloud")
		os.Exit(2)
	}

	src := mustLoad(flag.Arg(0))
	dst := mustLoad(flag.Arg(1))
	fmt.Fprintf(os.Stderr, "source: %d points, target: %d points\n", src.Len(), dst.Len())

	cfg, ok := findDesignPoint(*designPoint)
	if !ok {
		log.Fatalf("unknown design point %q (want DP1..DP8)", *designPoint)
	}
	name := *backend
	if name == "" {
		var ok bool
		if name, ok = registration.LegacySearcherName(*searcher); !ok {
			log.Fatalf("unknown searcher %q (use -backend for registry names: %s)",
				*searcher, strings.Join(search.Backends(), ", "))
		}
	}
	cfg.Searcher.Backend = name
	cfg.Searcher.TopHeight = -1 // full frames: size two-stage leaves to ~128 points
	cfg.Searcher.Options = opts.opts
	cfg.Searcher.Parallelism = *parallel
	if err := cfg.Searcher.Validate(); err != nil {
		log.Fatalf("%v", err)
	}

	// Profiling brackets only the registration itself, and every fatal
	// exit path (bad flags, unreadable clouds, profile-file creation) is
	// behind us or handled before StartCPUProfile, so a written profile
	// is always complete — log.Fatal's os.Exit would otherwise skip the
	// deferred flushes and leave a truncated file.
	var memFile *os.File
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		memFile = f
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	res := registration.Register(src, dst, cfg)

	if memFile != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(memFile); err != nil {
			log.Printf("memprofile: %v", err)
		}
		memFile.Close()
	}

	// The 4×4 homogeneous matrix, row per line (paper Eq. 1).
	m := res.Transform.Mat4()
	for r := 0; r < 4; r++ {
		fmt.Printf("% .9f % .9f % .9f % .9f\n", m.At(r, 0), m.At(r, 1), m.At(r, 2), m.At(r, 3))
	}

	if *profile {
		fmt.Fprintf(os.Stderr, "\nbackend: %s\n", cfg.Searcher.BackendName())
		fmt.Fprintf(os.Stderr, "total: %v (ICP iterations %d, converged %v)\n",
			res.Total.Round(1e6), res.ICP.Iterations, res.ICP.Converged)
		fmt.Fprintf(os.Stderr, "stages: NE %v | keypt %v | desc %v | KPCE %v | reject %v | RPCE %v | solve %v\n",
			res.Stage.NormalEstimation.Round(1e6), res.Stage.KeypointDetection.Round(1e6),
			res.Stage.DescriptorCalculation.Round(1e6), res.Stage.KPCE.Round(1e6),
			res.Stage.Rejection.Round(1e6), res.Stage.RPCE.Round(1e6),
			res.Stage.ErrorMinimization.Round(1e6))
		fmt.Fprintf(os.Stderr, "KD-tree: search %v (%.0f%%), construction %v, other %v\n",
			res.KDSearchTime.Round(1e6),
			100*float64(res.KDSearchTime)/float64(res.Total),
			res.KDBuildTime.Round(1e6), res.OtherTime().Round(1e6))
		fmt.Fprintf(os.Stderr, "keypoints %d/%d, correspondences %d, inliers %d\n",
			res.SrcKeypoints, res.DstKeypoints, res.Correspondences, res.Inliers)
	}
}

func mustLoad(path string) *cloud.Cloud {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	c, err := cloud.Read(f)
	if err != nil {
		log.Fatalf("parse %s: %v", path, err)
	}
	return c
}

func findDesignPoint(name string) (registration.PipelineConfig, bool) {
	for _, dp := range dse.NamedDesignPoints() {
		if dp.Name == name {
			return dp.Config, true
		}
	}
	return registration.PipelineConfig{}, false
}
