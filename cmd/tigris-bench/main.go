// Command tigris-bench runs the synthetic registration pipeline end to
// end and emits a machine-readable JSON report (pairs/sec, per-stage
// milliseconds, allocations per pair), so every PR's hot-path claims are
// measured against the same yardstick. Commit the output as
// BENCH_<tag>.json to extend the measured performance trajectory; CI runs
// a tiny configuration and validates the JSON shape.
//
// Usage:
//
//	tigris-bench [-frames N] [-beams N] [-azimuth N] [-dp DPn]
//	             [-backend NAME] [-parallel N] [-mode all|perpair|unpipelined|pipelined]
//	             [-out FILE] [-tag NAME] [-cpuprofile FILE] [-memprofile FILE]
//
// With -parallel 0 (the default) every mode is swept at parallelism 1
// and NumCPU in one invocation (deduplicated on single-core hosts), so
// one report carries both the sequential floor and the multi-core
// number; an explicit -parallel N pins a single setting. Each run also
// reports the SoA point-storage bytes per prepared frame against the
// AoS float64 equivalent, Go heap-in-use, and the process peak RSS.
//
// Modes:
//
//	perpair     the classic loop: full Register (both front-ends) per pair
//	unpipelined streaming engine, front-end reuse, stages run back to back
//	pipelined   streaming engine with the two-stage overlap and the
//	            adaptive worker-pool split between the stages
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/dse"
	"tigris/internal/memstat"
	"tigris/internal/obs"
	"tigris/internal/registration"
	"tigris/internal/stream"
	"tigris/internal/synth"
)

// LatencyPercentiles is one stage's tail-latency digest in milliseconds,
// extracted from the run's internal/obs histograms. StageMs carries the
// per-pair averages; these carry the distribution — p99/max against p50
// is the pipelining jitter a mean hides.
type LatencyPercentiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// latencyPercentiles renders a recorder's summaries in milliseconds,
// keyed by obs stage name.
func latencyPercentiles(rec *obs.Recorder) map[string]LatencyPercentiles {
	sums := rec.Summaries()
	out := make(map[string]LatencyPercentiles, len(sums))
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	for stage, sum := range sums {
		out[stage] = LatencyPercentiles{
			Count: sum.Count,
			P50:   ms(sum.P50),
			P95:   ms(sum.P95),
			P99:   ms(sum.P99),
			Max:   ms(sum.Max),
		}
	}
	return out
}

// RunReport is one mode's measured outcome at one parallelism setting.
type RunReport struct {
	Mode          string  `json:"mode"`
	Parallelism   int     `json:"parallelism"`
	Frames        int     `json:"frames"`
	Pairs         int     `json:"pairs"`
	PairsPerSec   float64 `json:"pairs_per_sec"`
	MsPerFrame    float64 `json:"ms_per_frame"`
	AllocsPerPair float64 `json:"allocs_per_pair"`
	BytesPerPair  float64 `json:"bytes_per_pair"`
	// PointStorageBytesPerFrame is one prepared frame's retained SoA
	// float32 point storage (raw + downsampled slabs);
	// AosPointStorageBytesPerFrame is the same content priced at the
	// pre-slab AoS []geom.Vec3 layout. The ratio is the PR's data-layout
	// reduction claim, measured rather than asserted.
	PointStorageBytesPerFrame    int64 `json:"point_storage_bytes_per_frame"`
	AosPointStorageBytesPerFrame int64 `json:"aos_point_storage_bytes_per_frame"`
	// HeapInuseBytes is the Go heap occupancy right after the timed run
	// (post-GC); PeakRSSBytes is the kernel's process high-water mark
	// (VmHWM; 0 on non-Linux).
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	PeakRSSBytes   int64  `json:"peak_rss_bytes"`
	// StageMs is the average per-pair stage breakdown in milliseconds
	// (the Fig. 4a rows plus the streaming engine's prep/align shares).
	StageMs map[string]float64 `json:"stage_ms"`
	// LatencyPercentiles is the per-stage tail-latency digest (p50, p95,
	// p99, max in milliseconds) from the same obs histograms a serving
	// deployment scrapes, keyed by obs stage name.
	LatencyPercentiles map[string]LatencyPercentiles `json:"latency_percentiles"`
}

// Report is the full benchmark output.
type Report struct {
	Name        string `json:"name"`
	Tag         string `json:"tag"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	DesignPoint string `json:"design_point"`
	Backend     string `json:"backend"`
	Parallelism int    `json:"parallelism"`
	// ParallelismSweep lists the worker counts each mode ran at.
	ParallelismSweep []int       `json:"parallelism_sweep"`
	Frames           int         `json:"frames"`
	Beams            int         `json:"beams"`
	Azimuth          int         `json:"azimuth_steps"`
	Runs             []RunReport `json:"runs"`
}

func main() {
	frames := flag.Int("frames", 6, "synthetic sequence length")
	beams := flag.Int("beams", 24, "LiDAR beams per frame")
	azimuth := flag.Int("azimuth", 450, "LiDAR azimuth steps per revolution")
	seed := flag.Int64("seed", 2019, "scene/sensor seed")
	designPoint := flag.String("dp", "DP4", "design point to run (DP1..DP8)")
	backend := flag.String("backend", "", "search backend registry name (empty keeps the design point's)")
	parallel := flag.Int("parallel", 0, "batch search worker count (0 = all CPUs, 1 = sequential)")
	mode := flag.String("mode", "all", "perpair, unpipelined, pipelined, or all")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	tag := flag.String("tag", "local", "report tag (e.g. pr4) recorded in the JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut := flag.String("trace-out", "", "write the streaming runs' span trees as Chrome trace-event JSON here (Perfetto-loadable)")
	flag.Parse()

	cfg, ok := findDesignPoint(*designPoint)
	if !ok {
		log.Fatalf("unknown design point %q (want DP1..DP8)", *designPoint)
	}
	if *backend != "" {
		cfg.Searcher.Backend = *backend
		cfg.Searcher.TopHeight = -1
	}
	cfg.Searcher.Parallelism = *parallel
	if err := cfg.Searcher.Validate(); err != nil {
		log.Fatalf("%v", err)
	}

	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr,
			"WARNING: GOMAXPROCS=1 — parallel stages run sequentially; multi-core speedups are not measurable on this host")
	}
	sweep := []int{*parallel}
	if *parallel == 0 {
		sweep = []int{1, runtime.NumCPU()}
		if sweep[1] == sweep[0] {
			sweep = sweep[:1] // single-core host: one setting covers both
		}
	}

	seq := synth.GenerateSequence(synth.SequenceConfig{
		Scene:     synth.SceneConfig{Seed: *seed, Length: 120},
		Lidar:     synth.LidarConfig{Beams: *beams, AzimuthSteps: *azimuth, Seed: *seed},
		NumFrames: *frames,
	})
	if seq.Len() < 2 {
		log.Fatal("need at least 2 frames")
	}

	// Open every profile file before profiling starts: a late create
	// failure would log.Fatal past the deferred CPU-profile flush and
	// truncate it.
	var memFile *os.File
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		memFile = f
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		Name:             "tigris-bench",
		Tag:              *tag,
		GoVersion:        runtime.Version(),
		NumCPU:           runtime.NumCPU(),
		DesignPoint:      *designPoint,
		Backend:          cfg.Searcher.BackendName(),
		Parallelism:      *parallel,
		ParallelismSweep: sweep,
		Frames:           seq.Len(),
		Beams:            *beams,
		Azimuth:          *azimuth,
	}
	// One flight recorder across every streaming run: each engine mints
	// its own trace id, so runs stay distinguishable inside the one file.
	var flight *obs.FlightRecorder
	if *traceOut != "" {
		flight = obs.NewFlightRecorder(8192, 4)
	}

	modes := []string{"perpair", "unpipelined", "pipelined"}
	if *mode != "all" {
		modes = []string{*mode}
	}
	for _, par := range sweep {
		runCfg := cfg
		runCfg.Searcher.Parallelism = par
		for _, m := range modes {
			r, err := runMode(m, par, seq, runCfg, flight)
			if err != nil {
				log.Fatalf("%v", err)
			}
			rep.Runs = append(rep.Runs, r)
			fmt.Fprintf(os.Stderr, "%-12s p=%-3d %6.2f pairs/sec  %7.1f ms/frame  %8.0f allocs/pair  %5.1f MB frame storage (AoS %5.1f)\n",
				m, par, r.PairsPerSec, r.MsPerFrame, r.AllocsPerPair,
				float64(r.PointStorageBytesPerFrame)/(1<<20), float64(r.AosPointStorageBytesPerFrame)/(1<<20))
		}
	}

	if memFile != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(memFile); err != nil {
			log.Printf("memprofile: %v", err)
		}
		memFile.Close()
	}

	if flight != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		meta := map[string]any{"tool": "tigris-bench", "frames": seq.Len()}
		if err := obs.WriteChromeTrace(f, flight.Export(), meta); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

// runMode executes one execution mode over the sequence, measuring wall
// time, allocation deltas, and the per-stage breakdown. Each mode clones
// the frames (the pipeline writes normals into its inputs) and warms up
// with one pair so steady-state pools are populated before measuring.
func runMode(mode string, parallelism int, seq *synth.Sequence, cfg registration.PipelineConfig, flight *obs.FlightRecorder) (RunReport, error) {
	warm := cloneFrames(seq)
	registration.Register(warm[1], warm[0], cfg)

	// Recording starts after warm-up so the digest reflects steady state.
	// The same recorder serves every mode: registration's per-stage taps
	// fire through cfg.Obs, whole-frame samples through obs.StageFrame.
	rec := obs.NewRecorder()
	cfg.Obs = rec

	frames := cloneFrames(seq)
	pairs := len(frames) - 1
	r := RunReport{Mode: mode, Parallelism: parallelism, Frames: len(frames), Pairs: pairs, StageMs: map[string]float64{}}

	// Point-storage accounting on a representative prepared frame (every
	// frame in the synthetic sequence has the same point budget). Runs
	// outside the timed region, so detach the recorder: the digest must
	// hold only measured samples.
	probeCfg := cfg
	probeCfg.Obs = nil
	pf := registration.PrepareFrame(frames[0].Clone(), probeCfg)
	r.PointStorageBytesPerFrame = pf.StorageBytes()
	r.AosPointStorageBytesPerFrame = pf.AosStorageBytes()
	pf.Release()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()

	var stage registration.StageTimes
	var prepTotal, alignTotal time.Duration
	switch mode {
	case "perpair":
		for i := 0; i+1 < len(frames); i++ {
			res := registration.Register(frames[i+1], frames[i], cfg)
			rec.Observe(obs.StageFrame, res.Total)
			stage = addStages(stage, res.Stage)
			prepTotal += res.Stage.NormalEstimation + res.Stage.KeypointDetection + res.Stage.DescriptorCalculation
			alignTotal += res.Stage.KPCE + res.Stage.Rejection + res.Stage.RPCE + res.Stage.ErrorMinimization
		}
	case "unpipelined", "pipelined":
		eng := stream.New(stream.Config{Pipeline: cfg, Pipelined: mode == "pipelined", Obs: rec, Flight: flight})
		for _, f := range frames {
			if _, err := eng.Push(f); err != nil {
				return r, err
			}
		}
		eng.Close()
		traj := eng.Trajectory()
		if traj.Len() != len(frames) {
			return r, fmt.Errorf("%s: trajectory has %d of %d frames", mode, traj.Len(), len(frames))
		}
		for _, fr := range traj.Frames {
			stage = addStages(stage, fr.Reg.Stage)
			prepTotal += fr.PrepTime
			alignTotal += fr.AlignTime
		}
	default:
		return r, fmt.Errorf("unknown mode %q", mode)
	}

	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	runtime.GC()
	r.HeapInuseBytes = memstat.HeapInuseBytes()
	r.PeakRSSBytes = memstat.PeakRSSBytes()

	r.PairsPerSec = float64(pairs) / elapsed.Seconds()
	r.MsPerFrame = elapsed.Seconds() * 1e3 / float64(len(frames))
	r.AllocsPerPair = float64(after.Mallocs-before.Mallocs) / float64(pairs)
	r.BytesPerPair = float64(after.TotalAlloc-before.TotalAlloc) / float64(pairs)
	ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 / float64(pairs) }
	r.StageMs["prep"] = ms(prepTotal)
	r.StageMs["align"] = ms(alignTotal)
	r.StageMs["normal_estimation"] = ms(stage.NormalEstimation)
	r.StageMs["keypoint_detection"] = ms(stage.KeypointDetection)
	r.StageMs["descriptor_calculation"] = ms(stage.DescriptorCalculation)
	r.StageMs["kpce"] = ms(stage.KPCE)
	r.StageMs["rejection"] = ms(stage.Rejection)
	r.StageMs["rpce"] = ms(stage.RPCE)
	r.StageMs["error_minimization"] = ms(stage.ErrorMinimization)
	r.LatencyPercentiles = latencyPercentiles(rec)
	return r, nil
}

func addStages(a, b registration.StageTimes) registration.StageTimes {
	a.NormalEstimation += b.NormalEstimation
	a.KeypointDetection += b.KeypointDetection
	a.DescriptorCalculation += b.DescriptorCalculation
	a.KPCE += b.KPCE
	a.Rejection += b.Rejection
	a.RPCE += b.RPCE
	a.ErrorMinimization += b.ErrorMinimization
	return a
}

func cloneFrames(seq *synth.Sequence) []*cloud.Cloud {
	out := make([]*cloud.Cloud, seq.Len())
	for i, f := range seq.Frames {
		out[i] = f.Clone()
	}
	return out
}

func findDesignPoint(name string) (registration.PipelineConfig, bool) {
	for _, dp := range dse.NamedDesignPoints() {
		if dp.Name == name {
			return dp.Config, true
		}
	}
	return registration.PipelineConfig{}, false
}
