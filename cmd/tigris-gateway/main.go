// Command tigris-gateway runs the fleet front door: a reverse proxy
// that spreads tigris-serve sessions across N worker processes with
// pluggable routing policies, per-client token-bucket admission
// control, worker health checking with graceful drain/re-shard, and
// TLS termination.
//
// Usage:
//
//	tigris-gateway -workers URL[,URL...] [-addr :8088]
//	               [-policy round-robin|least-loaded|affinity]
//	               [-admit-rate R] [-admit-burst B]
//	               [-health-interval D] [-auth-token TOKEN]
//	               [-worker-auth-token TOKEN]
//	               [-tls-cert CERT.pem -tls-key KEY.pem]
//	               [-log-format text|json]
//
// -workers lists the worker base URLs (comma-separated; at least one).
// -policy picks session placement (see internal/gateway). -admit-rate
// grants each client that many session-creates/frame-pushes per second
// (token bucket of capacity -admit-burst); refusals are 429 with
// Retry-After. -auth-token gates the mutating /gateway/* admin surface;
// client bearer tokens for /v1/* pass through to the workers, and
// -worker-auth-token is what the gateway itself presents on migration
// traffic when workers run with -auth-token. -tls-cert/-tls-key
// terminate TLS at the gateway, so plain-HTTP workers can stay on a
// private network behind an encrypted front door.
//
// Operations:
//
//	curl localhost:8088/gateway/workers          # fleet status
//	curl -X POST 'localhost:8088/gateway/drain?worker=0'
//	                                             # migrate sessions off worker 0
//	curl localhost:8088/metrics                  # gateway telemetry
//	curl localhost:8088/gateway/decisions        # routing-decision trace
//	curl localhost:8088/gateway/trace/g1         # stitched session trace (Chrome JSON)
//	curl localhost:8088/gateway/buildinfo        # gateway build identity
//
// -version prints the same build info to stdout and exits. On
// SIGTERM/SIGINT the gateway shuts its listener down gracefully;
// sessions keep living on the workers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tigris/internal/gateway"
	"tigris/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8088", "listen address")
	workers := flag.String("workers", "", "comma-separated worker base URLs (required)")
	policy := flag.String("policy", "round-robin", "session routing policy: round-robin, least-loaded, or affinity")
	admitRate := flag.Float64("admit-rate", 0, "per-client admitted requests/sec (token bucket; 0 = admission off)")
	admitBurst := flag.Int("admit-burst", 0, "admission bucket capacity (0 = max(1, ceil(rate)))")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "worker health-check and load-poll period (0 = off)")
	authToken := flag.String("auth-token", "", "require this bearer token on the /gateway/* admin surface")
	workerAuthToken := flag.String("worker-auth-token", "", "bearer token the gateway presents to workers on migration traffic")
	tlsCert := flag.String("tls-cert", "", "PEM server certificate; terminate TLS at the gateway (requires -tls-key)")
	tlsKey := flag.String("tls-key", "", "PEM private key matching -tls-cert")
	logFormat := flag.String("log-format", "text", "request log encoding on stderr: text or json")
	version := flag.Bool("version", false, "print build info (module, go toolchain, VCS revision) and exit")
	flag.Parse()

	if *version {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(serve.BuildInfo())
		return
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *workers == "" {
		fatal(logger, "missing -workers", fmt.Errorf("at least one worker URL is required"))
	}
	pol, err := gateway.ParsePolicy(*policy)
	if err != nil {
		fatal(logger, "invalid -policy", err)
	}
	tlsCfg := serve.TLSConfig{CertFile: *tlsCert, KeyFile: *tlsKey}
	if err := tlsCfg.Validate(); err != nil {
		fatal(logger, "invalid TLS config", err)
	}

	gw, err := gateway.New(gateway.Config{
		Workers:         splitList(*workers),
		Policy:          pol,
		AdmitRate:       *admitRate,
		AdmitBurst:      *admitBurst,
		HealthInterval:  *healthInterval,
		AuthToken:       *authToken,
		WorkerAuthToken: *workerAuthToken,
		Logger:          logger,
	})
	if err != nil {
		fatal(logger, "gateway config", err)
	}
	defer gw.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: gw}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
		sig := <-sigc
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("listener shutdown", "error", err)
		}
	}()

	logger.Info("gateway listening",
		"addr", *addr, "workers", splitList(*workers), "policy", string(pol), "tls", tlsCfg.Enabled())
	if tlsCfg.Enabled() {
		err = httpSrv.ListenAndServeTLS(tlsCfg.CertFile, tlsCfg.KeyFile)
	} else {
		err = httpSrv.ListenAndServe()
	}
	if err != nil && err != http.ErrServerClosed {
		fatal(logger, "gateway exited", err)
	}
	<-done
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "error", err)
	os.Exit(1)
}
