// Command tigris-redundancy reproduces Fig. 6: the redundancy the
// two-stage KD-tree introduces relative to the canonical tree, as a
// function of the leaf-set size, for both NN search and radius search.
//
//	Fig. 6a — redundancy ratio (two-stage visits / canonical visits)
//	Fig. 6b — absolute node visits
//
// Usage:
//
//	tigris-redundancy [-seed S] [-radius R] [-quick]
package main

import (
	"flag"
	"fmt"

	"tigris/internal/kdtree"
	"tigris/internal/synth"
	"tigris/internal/twostage"
)

func main() {
	seed := flag.Int64("seed", 2019, "dataset seed")
	radius := flag.Float64("radius", 0.5, "radius-search radius in meters")
	quick := flag.Bool("quick", false, "use small test-scale frames")
	flag.Parse()

	cfg := synth.EvalSequenceConfig(2, *seed)
	if *quick {
		cfg = synth.QuickSequenceConfig(2, *seed)
	}
	seq := synth.GenerateSequence(cfg)
	target := seq.Frames[0]
	queries := seq.Frames[1].Points
	fmt.Printf("target frame: %d points; %d queries (radius %.2f m)\n\n",
		target.Len(), len(queries), *radius)

	canon := kdtree.Build(target.Points)
	var nnStats, radStats kdtree.Stats
	for _, q := range queries {
		canon.Nearest(q, &nnStats)
		canon.Radius(q, *radius, &radStats)
	}
	fmt.Printf("canonical KD-tree: NN visits %d, radius visits %d\n\n",
		nnStats.NodesVisited, radStats.NodesVisited)

	fmt.Println("=== Fig. 6a/6b: redundancy and node visits vs leaf-set size ===")
	fmt.Printf("%-10s %14s %14s %14s %14s\n",
		"leaf-set", "NN visits", "NN redund.", "rad visits", "rad redund.")
	for _, leafSize := range []int{1, 2, 4, 8, 16, 32} {
		tree := twostage.BuildWithLeafSize(target.Points, leafSize)
		var nn2, rad2 twostage.Stats
		for _, q := range queries {
			tree.Nearest(q, &nn2)
			tree.Radius(q, *radius, &rad2)
		}
		fmt.Printf("%-10d %14d %13.1fx %14d %13.1fx\n",
			leafSize,
			nn2.TotalVisited(), float64(nn2.TotalVisited())/float64(nnStats.NodesVisited),
			rad2.TotalVisited(), float64(rad2.TotalVisited())/float64(radStats.NodesVisited))
	}
	fmt.Println("\npaper reference (Fig. 6a): at leaf-set 32, NN redundancy ~35x, radius ~3x;")
	fmt.Println("radius search visits far more nodes in absolute terms (Fig. 6b).")
}
