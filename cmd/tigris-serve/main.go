// Command tigris-serve runs the streaming registration service: a
// net/http server hosting concurrent multi-user odometry sessions. Each
// session owns a long-running engine (internal/stream) that prepares
// every pushed frame's front-end exactly once and pipelines it against
// the previous pair's fine-tuning; a server-level limiter caps total
// concurrency across sessions.
//
// Usage:
//
//	tigris-serve [-addr :8089] [-parallel N] [-max-concurrent N]
//	             [-backend NAME] [-session-ttl D] [-auth-token TOKEN]
//	             [-max-pending N]
//	             [-tls-cert CERT.pem -tls-key KEY.pem]
//	             [-log-format text|json] [-pprof-addr ADDR]
//	tigris-serve -selftest [-backend NAME]
//	tigris-serve -version
//
// -backend sets the default search backend (a registry name, see GET
// /v1/backends) for sessions that do not pick their own; -session-ttl
// evicts sessions idle longer than the given duration (e.g. 30m; 0 keeps
// sessions forever); -auth-token requires `Authorization: Bearer TOKEN`
// on every /v1/* endpoint (/healthz and /metrics stay open for probes
// and scrapers); -max-pending refuses frame pushes with 503 Service
// Unavailable (Retry-After header + JSON body) once that many frames
// are queued across all sessions, so fleet gateways and load generators
// get a principled backoff signal instead of unbounded queueing;
// -tls-cert and -tls-key (both required together) serve HTTPS with the
// given PEM material — the pair is validated before the socket binds.
//
// On SIGTERM or SIGINT the server shuts down gracefully: the listener
// stops accepting requests, in-flight requests finish, every session's
// queued frames are drained to committed trajectory state, and only
// then do the engines stop — the worker lifecycle a fleet gateway's
// drain/re-shard path depends on.
//
// Observability: Prometheus metrics are always on at GET /metrics
// (per-stage latency histograms, request/session/frame counters,
// limiter gauges — see internal/serve). -log-format selects the
// structured request-log encoding on stderr (text by default; json for
// log shippers). -pprof-addr mounts net/http/pprof on a separate
// listener so profiling stays off the service port (and outside its
// auth/TLS story); leave it empty to keep profiling off. -version
// prints the binary's embedded build/VCS identity (also served at GET
// /v1/buildinfo) and exits.
//
// Session lifecycle (see internal/serve for the endpoint contract):
//
//	curl localhost:8089/v1/backends
//	curl -X POST localhost:8089/v1/sessions -d '{"backend":"twostage-approx"}'
//	curl -X POST --data-binary @frame0.cloud localhost:8089/v1/sessions/s1/frames
//	curl -X POST --data-binary @frame1.cloud localhost:8089/v1/sessions/s1/frames
//	curl 'localhost:8089/v1/sessions/s1/trajectory?wait=1'
//	curl -X DELETE localhost:8089/v1/sessions/s1
//
// -selftest starts the server on a loopback port, streams two synthetic
// LiDAR frames through the real HTTP surface — through the configured
// -backend (default: the non-default "twostage", so the registry path is
// always smoked) — verifies the trajectory and the legacy searcher
// aliases, and exits non-zero on any failure (the CI smoke test).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/serve"
	"tigris/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8089", "listen address")
	parallel := flag.Int("parallel", 0, "default per-stage batch worker count for sessions (0 = all CPUs)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent heavy stages across all sessions (0 = CPU count)")
	backend := flag.String("backend", "", "default search backend for sessions (registry name; \"\" = canonical)")
	sessionTTL := flag.Duration("session-ttl", 0, "evict sessions idle longer than this (0 = never)")
	maxPending := flag.Int("max-pending", 0, "refuse frame pushes with 503 + Retry-After when this many frames are already pending (0 = never refuse)")
	authToken := flag.String("auth-token", "", "require this bearer token on every /v1/* endpoint (\"\" = open access)")
	tlsCert := flag.String("tls-cert", "", "PEM server certificate; serve HTTPS (requires -tls-key)")
	tlsKey := flag.String("tls-key", "", "PEM private key matching -tls-cert")
	logFormat := flag.String("log-format", "text", "request log encoding on stderr: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (\"\" = profiling off)")
	version := flag.Bool("version", false, "print build info (module, go toolchain, VCS revision) and exit")
	selftest := flag.Bool("selftest", false, "start on a loopback port, stream two synthetic frames over HTTP, verify, exit")
	flag.Parse()

	if *version {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(serve.BuildInfo())
		return
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tlsCfg := serve.TLSConfig{CertFile: *tlsCert, KeyFile: *tlsKey}
	if err := tlsCfg.Validate(); err != nil {
		fatal(logger, "invalid TLS config", err)
	}

	srv := serve.New(serve.Config{
		MaxConcurrent:  *maxConcurrent,
		Parallelism:    *parallel,
		DefaultBackend: *backend,
		SessionTTL:     *sessionTTL,
		AuthToken:      *authToken,
		MaxPending:     *maxPending,
		Logger:         logger,
	})

	if *selftest {
		name := *backend
		if name == "" {
			name = "twostage" // smoke a non-default backend through the registry
		}
		if err := runSelftest(srv, name); err != nil {
			fatal(logger, "selftest FAILED", err)
		}
		fmt.Println("selftest ok")
		return
	}

	if *pprofAddr != "" {
		go servePprof(logger, *pprofAddr)
	}

	// Graceful shutdown: SIGTERM/SIGINT stops the listener (in-flight
	// requests finish), then drains every session's queued frames before
	// tearing the engines down — so a gateway draining this worker sees
	// all committed state land, never an abrupt kill.
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
		sig := <-sigc
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("listener shutdown", "error", err)
		}
		logger.Info("draining sessions")
		srv.Drain()
		srv.Close()
		logger.Info("drained, exiting")
	}()

	logger.Info("listening", "addr", *addr, "tls", tlsCfg.Enabled())
	if tlsCfg.Enabled() {
		err = httpSrv.ListenAndServeTLS(tlsCfg.CertFile, tlsCfg.KeyFile)
	} else {
		err = httpSrv.ListenAndServe()
	}
	if err != nil && err != http.ErrServerClosed {
		fatal(logger, "server exited", err)
	}
	<-done
}

// newLogger builds the process logger in the requested encoding.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "error", err)
	os.Exit(1)
}

// servePprof mounts net/http/pprof on its own listener, keeping the
// profiling surface off the service port (and outside its auth story).
func servePprof(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("pprof listener exited", "error", err)
	}
}

// runSelftest exercises the service end to end over a real socket,
// streaming through the named search backend.
func runSelftest(srv *serve.Server, backend string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = http.Serve(ln, srv) }()
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	// Health.
	if err := expectStatus(http.Get(base + "/healthz")); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// The registry must advertise the requested backend.
	resp, err := http.Get(base + "/v1/backends")
	if err != nil {
		return err
	}
	var reg struct {
		Backends []string `json:"backends"`
	}
	if err := decodeAndClose(resp, &reg); err != nil {
		return fmt.Errorf("backends: %w", err)
	}
	found := false
	for _, b := range reg.Backends {
		found = found || b == backend
	}
	if !found {
		return fmt.Errorf("backend %q not in registry %v", backend, reg.Backends)
	}
	fmt.Fprintf(os.Stderr, "backends: %v\n", reg.Backends)

	// The deprecated searcher aliases must still resolve.
	if err := createAndDelete(base, `{"searcher":"approx"}`); err != nil {
		return fmt.Errorf("legacy searcher alias: %w", err)
	}

	// Create the streaming session on the requested backend.
	resp, err = http.Post(base+"/v1/sessions", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"backend":%q,"pipelined":true}`, backend))))
	if err != nil {
		return err
	}
	var created struct {
		ID      string `json:"id"`
		Backend string `json:"backend"`
	}
	if err := decodeAndClose(resp, &created); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	if created.ID == "" {
		return fmt.Errorf("create session: empty id")
	}
	if created.Backend != backend {
		return fmt.Errorf("session backend = %q, want %q", created.Backend, backend)
	}
	fmt.Fprintf(os.Stderr, "session %s created (backend %s)\n", created.ID, created.Backend)

	// Push two synthetic frames at the experiment scale (the quick test
	// scale is too sparse for a meaningful accuracy check).
	seq := synth.GenerateSequence(synth.EvalSequenceConfig(2, 2019))
	for i, f := range seq.Frames {
		var buf bytes.Buffer
		if err := cloud.Write(&buf, f); err != nil {
			return err
		}
		resp, err := http.Post(fmt.Sprintf("%s/v1/sessions/%s/frames", base, created.ID), "text/plain", &buf)
		if err != nil {
			return err
		}
		var pushed struct {
			Frame  int `json:"frame"`
			Points int `json:"points"`
		}
		if err := decodeAndClose(resp, &pushed); err != nil {
			return fmt.Errorf("push frame %d: %w", i, err)
		}
		if pushed.Frame != i || pushed.Points != f.Len() {
			return fmt.Errorf("push frame %d: got frame=%d points=%d", i, pushed.Frame, pushed.Points)
		}
		fmt.Fprintf(os.Stderr, "frame %d pushed (%d points)\n", pushed.Frame, pushed.Points)
	}

	// Trajectory must hold both frames with a finite, non-degenerate
	// odometry step close to the ground-truth motion.
	resp, err = http.Get(fmt.Sprintf("%s/v1/sessions/%s/trajectory?wait=1", base, created.ID))
	if err != nil {
		return err
	}
	var traj struct {
		Frames     int `json:"frames"`
		Trajectory []struct {
			Delta struct {
				R [9]float64 `json:"r"`
				T [3]float64 `json:"t"`
			} `json:"delta"`
		} `json:"trajectory"`
	}
	if err := decodeAndClose(resp, &traj); err != nil {
		return fmt.Errorf("trajectory: %w", err)
	}
	if traj.Frames != 2 || len(traj.Trajectory) != 2 {
		return fmt.Errorf("trajectory has %d frames, want 2", traj.Frames)
	}
	d := traj.Trajectory[1].Delta
	truth := seq.GroundTruthDelta(0)
	stepErr := 0.0
	for k, v := range [3]float64{truth.T.X, truth.T.Y, truth.T.Z} {
		diff := d.T[k] - v
		stepErr += diff * diff
	}
	if stepErr > 0.5*0.5 {
		return fmt.Errorf("odometry step %v is >0.5 m from ground truth %v", d.T, truth.T)
	}
	fmt.Fprintf(os.Stderr, "odometry step %.3f m (truth %.3f m)\n",
		vecNorm(d.T), truth.TranslationNorm())

	// The stats endpoint must carry the per-stage latency digest for the
	// frames just pushed.
	resp, err = http.Get(fmt.Sprintf("%s/v1/sessions/%s/stats", base, created.ID))
	if err != nil {
		return err
	}
	var stats struct {
		FramesPushed int `json:"frames_pushed"`
		Latency      map[string]struct {
			Count int     `json:"count"`
			P99   float64 `json:"p99"`
		} `json:"latency_ms"`
	}
	if err := decodeAndClose(resp, &stats); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if stats.FramesPushed != 2 {
		return fmt.Errorf("stats frames_pushed = %d, want 2", stats.FramesPushed)
	}
	if fl, ok := stats.Latency["frame"]; !ok || fl.Count != 2 {
		return fmt.Errorf("stats latency_ms missing frame digest (got %v)", stats.Latency)
	}
	fmt.Fprintf(os.Stderr, "stats: frame p99 %.3f ms over %d stages\n",
		stats.Latency["frame"].P99, len(stats.Latency))

	// The scrape surface must expose the same activity as Prometheus
	// series: counters, scrape-time gauges, and per-stage histograms.
	body, err := fetchText(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		"tigris_frames_pushed_total 2",
		"tigris_sessions_active 1",
		`tigris_stage_latency_seconds_bucket{stage="frame",le="+Inf"} 2`,
		`tigris_http_requests_total{route="/v1/sessions/{id}/frames",code="202"} 2`,
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
	fmt.Fprintf(os.Stderr, "metrics: %d lines\n", strings.Count(body, "\n"))

	// Build identity must round-trip.
	resp, err = http.Get(base + "/v1/buildinfo")
	if err != nil {
		return err
	}
	var bi struct {
		Go string `json:"go"`
	}
	if err := decodeAndClose(resp, &bi); err != nil {
		return fmt.Errorf("buildinfo: %w", err)
	}
	if bi.Go == "" {
		return fmt.Errorf("buildinfo: empty go toolchain")
	}
	fmt.Fprintf(os.Stderr, "buildinfo: %s\n", bi.Go)

	// Delete the session.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/sessions/%s", base, created.ID), nil)
	if err := expectStatus(http.DefaultClient.Do(req)); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	return nil
}

// createAndDelete creates a session from the given JSON body and
// immediately deletes it, verifying both round trips succeed.
func createAndDelete(base, body string) error {
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := decodeAndClose(resp, &created); err != nil {
		return err
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/sessions/%s", base, created.ID), nil)
	return expectStatus(http.DefaultClient.Do(req))
}

// fetchText GETs a URL and returns its body as a string.
func fetchText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return "", err
	}
	return buf.String(), nil
}

func vecNorm(v [3]float64) float64 {
	return math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
}

func expectStatus(resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func decodeAndClose(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
