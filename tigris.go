// Package tigris is the public API of the Tigris reproduction: point
// cloud registration (the paper's configurable two-phase pipeline),
// acceleration-amenable KD-tree search (two-stage trees and the
// approximate leader/follower algorithm), the cycle-level accelerator
// model, CPU/GPU baseline models, a synthetic LiDAR dataset generator,
// and the design-space-exploration harness.
//
// # Quick start
//
//	seq := tigris.GenerateSequence(tigris.EvalSequenceConfig(2, 42))
//	res := tigris.Register(seq.Frames[1], seq.Frames[0], tigris.DefaultPipelineConfig())
//	err := tigris.EvaluatePair(res.Transform, seq.GroundTruthDelta(0))
//	fmt.Printf("terr %.2f%%  rerr %.4f deg/m\n", err.TranslationalPct, err.RotationalDegPerM)
//
// Every query-dominated stage issues its neighbor searches through the
// batched parallel Searcher API, spreading the millions of per-frame
// queries over a worker pool — the software counterpart of the
// query-level parallelism the paper's two-stage tree exposes to hardware.
// PipelineConfig.Searcher.Parallelism pins the pool size (0 = all CPUs,
// 1 = the sequential path); exact backends return bit-identical results
// at any setting.
//
// # Layout
//
// The implementation lives in internal/ packages; this package re-exports
// the stable surface via type aliases, so all documented methods of the
// aliased types are part of the public API:
//
//   - geometry: Vec3, Mat3, Transform (internal/geom)
//   - containers: Cloud (internal/cloud)
//   - search: KDTree, TwoStageTree, approximate sessions (internal/kdtree,
//     internal/twostage, internal/search)
//   - registration: PipelineConfig, Register, the reusable
//     PrepareFrame/AlignFrames stages, ICP, metrics
//     (internal/registration)
//   - streaming: Stream, StreamConfig, Trajectory — the long-running
//     odometry engine behind cmd/tigris-serve (internal/stream)
//   - SLAM: LoopConfig/LoopClosure (place recognition + verification,
//     internal/loop) and PoseGraph/OptimizePoseGraph with ATE/RPE
//     metrics (internal/posegraph), the back-end behind cmd/tigris-slam
//   - accelerator: AccelConfig, SimWorkload, Simulate (internal/sim)
//   - baselines: GPUModel/CPUModel (internal/baseline)
//   - dataset: GenerateSequence (internal/synth)
//   - experiments: design points and Pareto tools (internal/dse)
package tigris

import (
	"io"

	"tigris/internal/baseline"
	"tigris/internal/cloud"
	"tigris/internal/dse"
	"tigris/internal/features"
	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/loop"
	"tigris/internal/posegraph"
	"tigris/internal/registration"
	"tigris/internal/search"
	"tigris/internal/sim"
	"tigris/internal/stream"
	"tigris/internal/synth"
	"tigris/internal/twostage"
)

// Geometry.
type (
	// Vec3 is a 3D point or direction.
	Vec3 = geom.Vec3
	// Transform is a rigid-body transform (rotation + translation).
	Transform = geom.Transform
	// Mat3 is a 3×3 row-major matrix.
	Mat3 = geom.Mat3
)

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return geom.V3(x, y, z) }

// IdentityTransform returns the identity rigid transform.
func IdentityTransform() Transform { return geom.IdentityTransform() }

// Point clouds.
type (
	// Cloud is a point cloud frame (points plus optional normals).
	Cloud = cloud.Cloud
)

// NewCloud returns an empty cloud with capacity for n points.
func NewCloud(n int) *Cloud { return cloud.New(n) }

// CloudFromPoints wraps a point slice without copying.
func CloudFromPoints(pts []Vec3) *Cloud { return cloud.FromPoints(pts) }

// VoxelDownsample reduces a cloud to one centroid per voxel cell.
func VoxelDownsample(c *Cloud, leaf float64) *Cloud { return cloud.VoxelDownsample(c, leaf) }

// WriteCloud serializes a cloud in the ASCII TIGRIS-CLOUD format.
func WriteCloud(w io.Writer, c *Cloud) error { return cloud.Write(w, c) }

// ReadCloud parses a cloud previously produced by WriteCloud.
func ReadCloud(r io.Reader) (*Cloud, error) { return cloud.Read(r) }

// KD-tree search.
type (
	// Neighbor is one search result (point index + squared distance).
	Neighbor = kdtree.Neighbor
	// KDTree is the canonical KD-tree (paper §4.1).
	KDTree = kdtree.Tree
	// KDStats instruments canonical searches.
	KDStats = kdtree.Stats
	// TwoStageTree is the paper's parallelism-exposing structure (§4.1).
	TwoStageTree = twostage.Tree
	// TwoStageStats instruments two-stage searches.
	TwoStageStats = twostage.Stats
	// ApproxOptions configures the leader/follower algorithm (§4.3).
	ApproxOptions = twostage.ApproxOptions
)

// BuildKDTree constructs a canonical KD-tree.
func BuildKDTree(pts []Vec3) *KDTree { return kdtree.Build(pts) }

// BuildTwoStageTree constructs a two-stage tree with the given top height.
func BuildTwoStageTree(pts []Vec3, topHeight int) *TwoStageTree {
	return twostage.Build(pts, topHeight)
}

// BuildTwoStageTreeWithLeafSize constructs a two-stage tree whose leaf
// sets hold roughly targetLeafSize points (the Fig. 6 knob).
func BuildTwoStageTreeWithLeafSize(pts []Vec3, targetLeafSize int) *TwoStageTree {
	return twostage.BuildWithLeafSize(pts, targetLeafSize)
}

// Batched search backends.
type (
	// Searcher is the neighbor-search abstraction every pipeline stage
	// queries through. Alongside the one-at-a-time methods it answers
	// NearestBatch/KNearestBatch/RadiusBatch on a worker pool sized by
	// SetParallelism; exact backends return bit-identical results at any
	// parallelism.
	Searcher = search.Searcher
	// KDSearcher is the canonical KD-tree backend.
	KDSearcher = search.KDSearcher
	// TwoStageSearcher is the two-stage backend, optionally approximate.
	TwoStageSearcher = search.TwoStageSearcher
	// TwoStageSearcherConfig configures a TwoStageSearcher.
	TwoStageSearcherConfig = search.TwoStageConfig
	// BruteSearcher is the linear-scan backend: zero build cost, the
	// correctness oracle, registered as "bruteforce".
	BruteSearcher = search.BruteSearcher
	// TraceSearcher decorates any backend, recording every query batch
	// into a TraceLog; registered as "trace".
	TraceSearcher = search.TraceSearcher
	// SearchMetrics is the per-searcher instrumentation.
	SearchMetrics = search.Metrics
)

// NewKDSearcher builds the canonical KD-tree backend over pts.
func NewKDSearcher(pts []Vec3) *KDSearcher { return search.NewKDSearcher(pts) }

// NewTwoStageSearcher builds the two-stage backend over pts.
func NewTwoStageSearcher(pts []Vec3, cfg TwoStageSearcherConfig) *TwoStageSearcher {
	return search.NewTwoStageSearcher(pts, cfg)
}

// NewBruteSearcher builds the linear-scan backend over pts.
func NewBruteSearcher(pts []Vec3) *BruteSearcher { return search.NewBruteSearcher(pts) }

// Search-backend registry. Backends are selected by name everywhere a
// SearcherConfig travels — the pipeline, the streaming engine, the HTTP
// service session JSON, the DSE harness, and every cmd's -backend flag —
// and extensions registered here are immediately selectable in all of
// them.
type (
	// SearchBackend is a named searcher factory, the registry's unit of
	// registration.
	SearchBackend = search.Backend
	// SearchOptions is the generic backend option bag (see the
	// search.Opt* keys); values may come from JSON, CLI flags, or Go
	// code.
	SearchOptions = search.Options
	// TraceLog accumulates the query batches a TraceSearcher records;
	// feed it to WorkloadsFromTrace for accelerator replay.
	TraceLog = search.TraceLog
	// TraceBatch is one recorded stage batch.
	TraceBatch = search.TraceBatch
)

// Registered backend names (see also SearchBackends for the live set).
const (
	BackendCanonical      = search.BackendCanonical
	BackendTwoStage       = search.BackendTwoStage
	BackendTwoStageApprox = search.BackendTwoStageApprox
	BackendBruteForce     = search.BackendBruteForce
	BackendTrace          = search.BackendTrace
)

// RegisterSearchBackend adds a backend to the registry; duplicate names
// are an error.
func RegisterSearchBackend(b SearchBackend) error { return search.RegisterBackend(b) }

// NewSearchBackend wraps a factory function as a registrable backend.
func NewSearchBackend(name string, fn func(pts []Vec3, opts SearchOptions) (Searcher, error)) SearchBackend {
	return search.NewBackend(name, fn)
}

// SearchBackends returns the registered backend names, sorted.
func SearchBackends() []string { return search.Backends() }

// NewSearcherByName builds a searcher through the registry; unknown
// names report the registered set.
func NewSearcherByName(name string, pts []Vec3, opts SearchOptions) (Searcher, error) {
	return search.NewByName(name, pts, opts)
}

// WorkloadsFromTrace converts a trace-backend capture into accelerator
// workloads, one per recorded stage batch (exact k-NN batches are
// skipped: the modeled datapath serves NN and radius search).
func WorkloadsFromTrace(batches []TraceBatch) []SimWorkload {
	return sim.WorkloadsFromTrace(batches)
}

// Feature stages.
type (
	// NormalConfig parameterizes normal estimation.
	NormalConfig = features.NormalConfig
	// KeypointConfig parameterizes key-point detection.
	KeypointConfig = features.KeypointConfig
	// DescriptorConfig parameterizes descriptor computation.
	DescriptorConfig = features.DescriptorConfig
)

// Registration pipeline.
type (
	// PipelineConfig is the full Tbl. 1 knob set.
	PipelineConfig = registration.PipelineConfig
	// SearcherConfig selects the search backend — by registry name
	// (Backend + Options) — and its Parallelism (the batch worker count
	// every query-dominated stage runs with; 0 = NumCPU, 1 = sequential).
	// Validate checks a boundary-supplied config before it reaches the
	// pipeline.
	SearcherConfig = registration.SearcherConfig
	// SearcherKind enumerates the built-in search backends.
	//
	// Deprecated: select backends by registry name via
	// SearcherConfig.Backend; the enum remains as a bit-identical alias.
	SearcherKind = registration.SearcherKind
	// Result is the registration outcome with instrumentation.
	Result = registration.Result
	// ICPConfig parameterizes fine-tuning.
	ICPConfig = registration.ICPConfig
	// FrameError is the KITTI-style per-pair error.
	FrameError = registration.FrameError
	// SequenceError aggregates frame errors.
	SequenceError = registration.SequenceError
)

// Search backend kinds for SearcherConfig.
//
// Deprecated: use the Backend* name constants (or any registered name)
// with SearcherConfig.Backend; these enum values map onto the same
// backends and produce bit-identical results.
const (
	SearchCanonical      = registration.SearchCanonical
	SearchTwoStage       = registration.SearchTwoStage
	SearchTwoStageApprox = registration.SearchTwoStageApprox
)

// Register estimates the transform mapping src onto dst.
func Register(src, dst *Cloud, cfg PipelineConfig) Result {
	return registration.Register(src, dst, cfg)
}

// Reusable registration stages. Register is PrepareFrame×2 + AlignFrames;
// streaming callers prepare each cloud once and reuse the state across
// consecutive pairs.
type (
	// PreparedFrame is one cloud's reusable front-end state (normals,
	// key-points, descriptors, search indexes).
	PreparedFrame = registration.PreparedFrame
)

// PrepareFrame runs the per-cloud front-end once, for reuse across pairs.
func PrepareFrame(c *Cloud, cfg PipelineConfig) *PreparedFrame {
	return registration.PrepareFrame(c, cfg)
}

// AlignFrames runs the pair-level back end (KPCE → rejection → ICP) on
// two prepared frames, estimating the transform mapping src onto dst.
func AlignFrames(src, dst *PreparedFrame, cfg PipelineConfig) Result {
	return registration.Align(src, dst, cfg)
}

// Streaming odometry engine.
type (
	// Stream is a long-running odometry session: frames are pushed one at
	// a time, each frame's front-end is computed once and reused when the
	// frame becomes the next pair's target, and (when pipelined) frame
	// N's front-end overlaps frame N−1's fine-tuning. For exact search
	// backends the trajectory is bit-identical to a per-pair Register
	// loop.
	Stream = stream.Engine
	// StreamConfig parameterizes a streaming session.
	StreamConfig = stream.Config
	// Trajectory is a session's accumulated poses and per-frame records.
	Trajectory = stream.Trajectory
	// StreamFrameResult is one frame's trajectory record.
	StreamFrameResult = stream.FrameResult
	// StreamStats counts a session's work (the build-once counters).
	StreamStats = stream.Stats
	// StreamLimiter caps concurrent heavy stages across sessions.
	StreamLimiter = stream.Limiter
)

// NewStream starts a streaming odometry session. Close it to stop the
// pipeline workers and release the last frame's state.
func NewStream(cfg StreamConfig) *Stream { return stream.New(cfg) }

// SLAM layer: loop closure + pose-graph optimization. A streaming
// session with StreamConfig.Loop set detects and verifies revisits
// (Stream.Closures) and serves the globally optimized trajectory
// (Stream.OptimizedPoses); the pieces are public for custom back-ends.
type (
	// LoopConfig parameterizes place recognition: the signature-index
	// search backend, temporal gating, and verification thresholds.
	LoopConfig = loop.Config
	// LoopCandidate is a proposed (unverified) loop pair.
	LoopCandidate = loop.Candidate
	// LoopClosure is a verified loop constraint: Delta registers frame
	// From onto frame To.
	LoopClosure = loop.Closure
	// LoopDetector aggregates frame signatures and proposes/verifies
	// loop candidates.
	LoopDetector = loop.Detector
	// LoopStats counts a detector's work.
	LoopStats = loop.Stats
	// PoseGraph is an SE(3) pose graph: node poses plus relative-pose
	// edges (odometry and loop closures).
	PoseGraph = posegraph.Graph
	// PoseGraphEdge is one relative-pose constraint X_I⁻¹∘X_J = Z.
	PoseGraphEdge = posegraph.Edge
	// PoseGraphOptions configures the Gauss–Newton/LM optimizer.
	PoseGraphOptions = posegraph.Options
	// PoseGraphResult reports an optimization run.
	PoseGraphResult = posegraph.Result
	// ATEResult is the absolute-trajectory-error summary.
	ATEResult = posegraph.ATEResult
	// RPEResult is the relative-pose-error summary.
	RPEResult = posegraph.RPEResult
)

// NewLoopDetector validates the configured signature backend and
// returns an empty place-recognition detector.
func NewLoopDetector(cfg LoopConfig) (*LoopDetector, error) { return loop.NewDetector(cfg) }

// NewPoseGraph starts a pose graph from initial absolute poses.
func NewPoseGraph(poses []Transform) *PoseGraph { return posegraph.NewGraph(poses) }

// PoseGraphFromOdometry builds a graph whose initial poses compose the
// odometry chain from origin, with one edge per step.
func PoseGraphFromOdometry(origin Transform, deltas []Transform) *PoseGraph {
	return posegraph.FromOdometry(origin, deltas)
}

// ATE computes the absolute trajectory error of est against ref after
// first-pose anchoring.
func ATE(est, ref []Transform) ATEResult { return posegraph.ATE(est, ref) }

// RPE computes the per-step relative pose error of est against ref.
func RPE(est, ref []Transform) RPEResult { return posegraph.RPE(est, ref) }

// NewStreamLimiter returns a limiter admitting n concurrent heavy stages
// (n <= 0: unlimited), shared across sessions via StreamConfig.Limiter.
func NewStreamLimiter(n int) StreamLimiter { return stream.NewLimiter(n) }

// EvaluatePair scores an estimated transform against ground truth.
func EvaluatePair(estimated, truth Transform) FrameError {
	return registration.EvaluatePair(estimated, truth)
}

// AggregateErrors summarizes per-frame errors.
func AggregateErrors(errs []FrameError) SequenceError {
	return registration.Aggregate(errs)
}

// DefaultPipelineConfig returns a balanced design point (the DSE base
// configuration) suitable for the synthetic LiDAR frames.
func DefaultPipelineConfig() PipelineConfig {
	dps := dse.NamedDesignPoints()
	return dps[4].Config // DP5: the balanced middle of the frontier
}

// Dataset generation.
type (
	// SequenceConfig configures synthetic sequence generation.
	SequenceConfig = synth.SequenceConfig
	// Sequence is a generated dataset (frames + ground-truth poses).
	Sequence = synth.Sequence
	// LidarConfig models the spinning multi-beam sensor.
	LidarConfig = synth.LidarConfig
	// SceneConfig controls procedural street generation.
	SceneConfig = synth.SceneConfig
	// CircuitTrajectory drives a closed circular lap — the ground-truth
	// loop the SLAM layer closes.
	CircuitTrajectory = synth.CircuitTrajectory
)

// DriftOdometry corrupts odometry deltas with a deterministic
// calibration-style bias (yaw radians and translation scale per frame),
// the synthetic drift model the SLAM benchmarks repair.
func DriftOdometry(deltas []Transform, yawRad, scale float64) []Transform {
	return synth.DriftDeltas(deltas, yawRad, scale)
}

// GenerateSequence renders LiDAR frames along a trajectory.
func GenerateSequence(cfg SequenceConfig) *Sequence { return synth.GenerateSequence(cfg) }

// QuickSequenceConfig returns a small, fast test-scale dataset config.
func QuickSequenceConfig(frames int, seed int64) SequenceConfig {
	return synth.QuickSequenceConfig(frames, seed)
}

// EvalSequenceConfig returns the experiment-scale dataset config
// (~18k points/frame).
func EvalSequenceConfig(frames int, seed int64) SequenceConfig {
	return synth.EvalSequenceConfig(frames, seed)
}

// Accelerator model.
type (
	// AccelConfig describes one accelerator instance (§5, §6.2).
	AccelConfig = sim.Config
	// AccelReport is a simulation outcome.
	AccelReport = sim.Report
	// SimWorkload is a batch of same-kind search queries.
	SimWorkload = sim.Workload
)

// Search kinds for SimWorkload.
const (
	NNSearch     = sim.NNSearch
	RadiusSearch = sim.RadiusSearch
)

// DefaultAccelConfig returns the paper's evaluated configuration (64 RUs,
// 32 SUs, 32 PEs/SU at 500 MHz).
func DefaultAccelConfig() AccelConfig { return sim.DefaultConfig() }

// Simulate executes the workload on the modeled accelerator.
func Simulate(tree *TwoStageTree, w SimWorkload, cfg AccelConfig) (*AccelReport, error) {
	return sim.Run(tree, w, cfg)
}

// Baselines.
type (
	// BaselineModel is a CPU/GPU throughput+power model.
	BaselineModel = baseline.Model
	// BaselineProfile summarizes a workload as visit counts.
	BaselineProfile = baseline.Profile
)

// GPUBaseline returns the RTX 2080 Ti model (paper §6.1).
func GPUBaseline() BaselineModel { return baseline.RTX2080Ti }

// CPUBaseline returns the Xeon 4110 model (paper §6.1).
func CPUBaseline() BaselineModel { return baseline.Xeon4110 }

// ProfileCanonicalSearch replays the workload on a canonical KD-tree.
func ProfileCanonicalSearch(t *KDTree, w SimWorkload) BaselineProfile {
	return baseline.ProfileCanonical(t, w)
}

// ProfileCanonicalSearchParallel replays the workload on a canonical
// KD-tree over a worker pool (<= 0 selects NumCPU); the profile is
// identical to the sequential replay.
func ProfileCanonicalSearchParallel(t *KDTree, w SimWorkload, parallelism int) BaselineProfile {
	return baseline.ProfileCanonicalParallel(t, w, parallelism)
}

// ProfileTwoStageSearch replays the workload on a two-stage tree.
func ProfileTwoStageSearch(t *TwoStageTree, w SimWorkload) BaselineProfile {
	return baseline.ProfileTwoStage(t, w)
}

// ProfileTwoStageSearchParallel replays the workload on a two-stage tree
// over a worker pool (<= 0 selects NumCPU).
func ProfileTwoStageSearchParallel(t *TwoStageTree, w SimWorkload, parallelism int) BaselineProfile {
	return baseline.ProfileTwoStageParallel(t, w, parallelism)
}

// Design-space exploration.
type (
	// DesignPoint names one pipeline configuration.
	DesignPoint = dse.DesignPoint
	// EvaluatedDesignPoint is one design point's measured outcome.
	EvaluatedDesignPoint = dse.Evaluated
)

// NamedDesignPoints returns the paper's Pareto points DP1–DP8.
func NamedDesignPoints() []DesignPoint { return dse.NamedDesignPoints() }

// EvaluateDesignPoint runs a design point over a sequence.
func EvaluateDesignPoint(seq *Sequence, dp DesignPoint) EvaluatedDesignPoint {
	return dse.Evaluate(seq, dp)
}
