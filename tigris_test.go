package tigris_test

import (
	"bytes"
	"math"
	"testing"

	"tigris"
)

// TestPublicAPIEndToEnd drives the whole public surface the way the
// quickstart example does: dataset → registration → evaluation →
// accelerator simulation → baseline comparison.
func TestPublicAPIEndToEnd(t *testing.T) {
	seq := tigris.GenerateSequence(tigris.QuickSequenceConfig(2, 8))
	if seq.Len() != 2 || seq.Frames[0].Len() == 0 {
		t.Fatal("sequence generation failed")
	}

	cfg := tigris.DefaultPipelineConfig()
	res := tigris.Register(seq.Frames[1], seq.Frames[0], cfg)
	e := tigris.EvaluatePair(res.Transform, seq.GroundTruthDelta(0))
	if math.IsNaN(e.TranslationalPct) || e.TranslationalPct < 0 {
		t.Fatalf("bad error metric: %+v", e)
	}
	if res.Total <= 0 || res.KDSearchTime <= 0 {
		t.Fatal("instrumentation missing")
	}

	agg := tigris.AggregateErrors([]tigris.FrameError{e, e})
	if agg.Frames != 2 {
		t.Fatal("aggregation broken")
	}

	// Search structures.
	pts := seq.Frames[0].Points
	kd := tigris.BuildKDTree(pts)
	two := tigris.BuildTwoStageTreeWithLeafSize(pts, 64)
	q := pts[0]
	a, _ := kd.Nearest(q, nil)
	b, _ := two.Nearest(q, nil)
	if a.Index != b.Index {
		t.Fatal("tree variants disagree")
	}

	// Accelerator + baselines. The workload must be frame-scale for the
	// GPU's throughput to beat its kernel-launch overhead.
	w := tigris.SimWorkload{Kind: tigris.NNSearch, Queries: pts}
	rep, err := tigris.Simulate(two, w, tigris.DefaultAccelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles == 0 || len(rep.NNResults) != len(pts) {
		t.Fatal("simulation empty")
	}
	prof := tigris.ProfileCanonicalSearch(kd, w)
	if tigris.GPUBaseline().Time(prof) <= 0 || tigris.CPUBaseline().Time(prof) <= 0 {
		t.Fatal("baseline models broken")
	}
	if tigris.GPUBaseline().Time(prof) >= tigris.CPUBaseline().Time(prof) {
		t.Fatal("GPU should beat CPU at this workload size")
	}
}

func TestPublicAPICloudHelpers(t *testing.T) {
	c := tigris.CloudFromPoints([]tigris.Vec3{
		tigris.V3(0.1, 0.1, 0), tigris.V3(0.2, 0.2, 0), tigris.V3(5, 5, 0),
	})
	d := tigris.VoxelDownsample(c, 1.0)
	if d.Len() != 2 {
		t.Fatalf("downsample = %d cells", d.Len())
	}
	var buf bytes.Buffer
	if err := tigris.WriteCloud(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := tigris.ReadCloud(&buf)
	if err != nil || back.Len() != d.Len() {
		t.Fatalf("cloud IO round trip: %v", err)
	}
}

func TestPublicAPIDesignPoints(t *testing.T) {
	dps := tigris.NamedDesignPoints()
	if len(dps) != 8 {
		t.Fatalf("expected DP1..DP8, got %d", len(dps))
	}
	seq := tigris.GenerateSequence(tigris.QuickSequenceConfig(2, 9))
	ev := tigris.EvaluateDesignPoint(seq, dps[3]) // DP4
	if ev.MeanTime <= 0 {
		t.Fatal("design point evaluation produced no timing")
	}
}

// TestPublicAPIStream drives the streaming engine surface: push a short
// synthetic sequence, drain, and check the trajectory matches both the
// per-pair Register loop (bit-identical for the exact backend) and the
// split PrepareFrame/AlignFrames stages.
func TestPublicAPIStream(t *testing.T) {
	const frames = 3
	seq := tigris.GenerateSequence(tigris.QuickSequenceConfig(frames, 12))
	cfg := tigris.DefaultPipelineConfig()

	ref := make([]*tigris.Cloud, frames)
	for i, f := range seq.Frames {
		ref[i] = f.Clone()
	}

	eng := tigris.NewStream(tigris.StreamConfig{
		Pipeline:  cfg,
		Pipelined: true,
		Limiter:   tigris.NewStreamLimiter(2),
	})
	for _, f := range seq.Frames {
		if _, err := eng.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	eng.Close()
	traj := eng.Trajectory()
	if traj.Len() != frames {
		t.Fatalf("trajectory has %d frames, want %d", traj.Len(), frames)
	}
	for i := 1; i < frames; i++ {
		want := tigris.Register(ref[i].Clone(), ref[i-1].Clone(), cfg).Transform
		if traj.Frames[i].Delta != want {
			t.Fatalf("frame %d: streamed delta differs from per-pair Register", i)
		}
	}
	if st := eng.Stats(); st.FramesPrepared != frames || st.DescriptorBuilds != frames {
		t.Fatalf("front-end not build-once: %+v", st)
	}

	// The split stages compose to the same pair result.
	ps := tigris.PrepareFrame(ref[1].Clone(), cfg)
	pd := tigris.PrepareFrame(ref[0].Clone(), cfg)
	if got := tigris.AlignFrames(ps, pd, cfg).Transform; got != traj.Frames[1].Delta {
		t.Fatal("PrepareFrame+AlignFrames differs from the streamed pair")
	}
}

func TestPublicAPITransforms(t *testing.T) {
	tr := tigris.IdentityTransform()
	if !tr.NearlyEqual(tr.Compose(tr), 1e-12) {
		t.Fatal("identity compose broken")
	}
	v := tigris.V3(1, 2, 3)
	if tr.Apply(v) != v {
		t.Fatal("identity apply broken")
	}
}
