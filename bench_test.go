// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkFigNN/BenchmarkTableNN target runs the
// corresponding experiment and reports the headline quantities as custom
// benchmark metrics, so `go test -bench=. -benchmem` prints the same rows
// the paper's figures plot. The cmd/ drivers run the same experiments at
// full scale with complete tables; benchmarks use test-scale data so the
// whole suite completes in minutes.
package tigris

import (
	"sync"
	"testing"

	"tigris/internal/baseline"
	"tigris/internal/dse"
	"tigris/internal/kdtree"
	"tigris/internal/registration"
	"tigris/internal/search"
	"tigris/internal/sim"
	"tigris/internal/stream"
	"tigris/internal/synth"
	"tigris/internal/twostage"
)

// benchData lazily generates the shared benchmark datasets: a light one
// for the pipeline-heavy DSE/injection benches and an eval-scale one for
// the accelerator benches (whose claims need LiDAR-scale point density).
var benchData struct {
	once     sync.Once
	seq      *synth.Sequence
	onceEval sync.Once
	seqEval  *synth.Sequence
}

func benchSeq() *synth.Sequence {
	benchData.once.Do(func() {
		cfg := synth.SequenceConfig{
			Scene:     synth.SceneConfig{Seed: 2019, Length: 120},
			Lidar:     synth.LidarConfig{Beams: 24, AzimuthSteps: 450, Seed: 2019},
			NumFrames: 2,
		}
		benchData.seq = synth.GenerateSequence(cfg)
	})
	return benchData.seq
}

func benchSeqEval() *synth.Sequence {
	benchData.onceEval.Do(func() {
		benchData.seqEval = synth.GenerateSequence(synth.EvalSequenceConfig(2, 2019))
	})
	return benchData.seqEval
}

// BenchmarkFig3_DSE evaluates representative design points of the Tbl. 1
// grid (error-vs-time scatter, Fig. 3). The cmd/tigris-dse driver runs the
// full 48-point grid.
func BenchmarkFig3_DSE(b *testing.B) {
	seq := benchSeq()
	grid := dse.Grid()
	// A spread of grid corners: fastest, middle, most accurate knobs.
	picks := []int{0, len(grid) / 2, len(grid) - 1}
	for i := 0; i < b.N; i++ {
		for _, g := range picks {
			ev := dse.Evaluate(seq, grid[g])
			b.ReportMetric(ev.Error.MeanTranslationalPct, "terr_pct_"+grid[g].Name[:3])
		}
	}
}

// BenchmarkFig4a_StageBreakdown reports the per-stage shares of the
// accuracy anchor DP7 (Fig. 4a).
func BenchmarkFig4a_StageBreakdown(b *testing.B) {
	seq := benchSeq()
	for i := 0; i < b.N; i++ {
		ev := dse.Evaluate(seq, dse.DP7())
		total := float64(ev.Stage.Total())
		b.ReportMetric(100*float64(ev.Stage.NormalEstimation)/total, "NE_pct")
		b.ReportMetric(100*float64(ev.Stage.DescriptorCalculation)/total, "Desc_pct")
		b.ReportMetric(100*float64(ev.Stage.RPCE)/total, "RPCE_pct")
	}
}

// BenchmarkFig4b_KDTreeShare reports the KD-search share of total time
// for the two anchor points; the paper reports 50–85% across all DPs.
func BenchmarkFig4b_KDTreeShare(b *testing.B) {
	seq := benchSeq()
	for i := 0; i < b.N; i++ {
		ev4 := dse.Evaluate(seq, dse.DP4())
		ev7 := dse.Evaluate(seq, dse.DP7())
		b.ReportMetric(100*ev4.KDSearchFrac(), "DP4_kdsearch_pct")
		b.ReportMetric(100*ev7.KDSearchFrac(), "DP7_kdsearch_pct")
	}
}

// BenchmarkFig6_Redundancy reports the two-stage redundancy ratio at
// leaf-set sizes 8 and 32 for NN and radius search (Fig. 6a) and the
// absolute visit counts (Fig. 6b).
func BenchmarkFig6_Redundancy(b *testing.B) {
	seq := benchSeq()
	target := seq.Frames[0].Points
	queries := seq.Frames[1].Points[:len(seq.Frames[1].Points)/4]
	canon := kdtree.Build(target)
	var nnBase, radBase kdtree.Stats
	for _, q := range queries {
		canon.Nearest(q, &nnBase)
		canon.Radius(q, 0.5, &radBase)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, leaf := range []int{8, 32} {
			tree := twostage.BuildWithLeafSize(target, leaf)
			var nn, rad twostage.Stats
			for _, q := range queries {
				tree.Nearest(q, &nn)
				tree.Radius(q, 0.5, &rad)
			}
			suffix := "8"
			if leaf == 32 {
				suffix = "32"
			}
			b.ReportMetric(float64(nn.TotalVisited())/float64(nnBase.NodesVisited), "NN_redundancy_leaf"+suffix)
			b.ReportMetric(float64(rad.TotalVisited())/float64(radBase.NodesVisited), "radius_redundancy_leaf"+suffix)
		}
	}
}

// BenchmarkFig7a_KNNInjection reports end-to-end translational error with
// k-th-NN substitution in dense RPCE vs sparse KPCE (Fig. 7a).
func BenchmarkFig7a_KNNInjection(b *testing.B) {
	seq := benchSeq()
	cfg := dse.DP4().Config
	for i := 0; i < b.N; i++ {
		run := func(inj registration.Injection) float64 {
			c := cfg
			c.Inject = inj
			res := registration.Register(seq.Frames[1], seq.Frames[0], c)
			return registration.EvaluatePair(res.Transform, seq.GroundTruthDelta(0)).TranslationalPct
		}
		b.ReportMetric(run(registration.Injection{}), "terr_clean_pct")
		b.ReportMetric(run(registration.Injection{RPCEKthNN: 5}), "terr_denseK5_pct")
		// The sparse arm exposes front-end sensitivity with the robustness
		// guards disabled, as in cmd/tigris-errinj.
		sparse := cfg
		sparse.Rejection.Method = registration.RejectThreshold
		sparse.MaxInitialTranslation = -1
		sparse.MaxInitialRotation = -1
		sparse.Inject = registration.Injection{KPCEKthNN: 2}
		res := registration.Register(seq.Frames[1], seq.Frames[0], sparse)
		b.ReportMetric(registration.EvaluatePair(res.Transform, seq.GroundTruthDelta(0)).TranslationalPct, "terr_sparseK2_pct")
	}
}

// BenchmarkFig7b_ShellInjection reports translational error with the
// radius-shell substitution in Normal Estimation (Fig. 7b).
func BenchmarkFig7b_ShellInjection(b *testing.B) {
	seq := benchSeq()
	cfg := dse.DP4().Config
	for i := 0; i < b.N; i++ {
		run := func(r1 float64) float64 {
			c := cfg
			shell := [2]float64{r1, c.Normal.SearchRadius + 0.2}
			c.Inject = registration.Injection{NEShell: &shell}
			res := registration.Register(seq.Frames[1], seq.Frames[0], c)
			return registration.EvaluatePair(res.Transform, seq.GroundTruthDelta(0)).TranslationalPct
		}
		b.ReportMetric(run(0.10), "terr_shell10cm_pct")
		b.ReportMetric(run(0.25), "terr_shell25cm_pct")
	}
}

// accelWorkloads extracts the DP7 stage workloads once.
var accelWL struct {
	once     sync.Once
	wl       []sim.Workload
	canon    *kdtree.Tree
	twoStage *twostage.Tree
}

func benchAccelSetup() {
	accelWL.once.Do(func() {
		seq := benchSeqEval()
		accelWL.wl = dse.StageWorkloads(seq, dse.DP7())
		accelWL.canon = kdtree.Build(seq.Frames[0].Points)
		// 128-point leaf sets: the paper's height-10 configuration at its
		// 130k-point frame size, scaled to ours.
		accelWL.twoStage = twostage.BuildWithLeafSize(seq.Frames[0].Points, 128)
	})
}

func accelRun(b *testing.B, cfg sim.Config, approx bool) (secs float64, energy float64) {
	for _, w := range accelWL.wl {
		c := cfg
		if approx {
			c.Approx = twostage.DefaultNNThreshold
			if w.Kind == sim.RadiusSearch {
				c.ApproxRadiusFrac = twostage.DefaultRadiusThresholdFrac
			}
		}
		rep, err := sim.Run(accelWL.twoStage, w, c)
		if err != nil {
			b.Fatal(err)
		}
		secs += rep.Time.Seconds()
		energy += rep.Energy.Total()
	}
	return secs, energy
}

// BenchmarkFig11_SpeedupPower reports KD-tree search speedup and power
// reduction of Acc-2SKD over the GPU Base-KD baseline (Fig. 11a/11b).
func BenchmarkFig11_SpeedupPower(b *testing.B) {
	benchAccelSetup()
	for i := 0; i < b.N; i++ {
		var gpuSecs, gpuEnergy float64
		for _, w := range accelWL.wl {
			p := baseline.ProfileCanonical(accelWL.canon, w)
			gpuSecs += baseline.RTX2080Ti.Time(p).Seconds()
			gpuEnergy += baseline.RTX2080Ti.Energy(p)
		}
		accSecs, accEnergy := accelRun(b, sim.DefaultConfig(), false)
		b.ReportMetric(gpuSecs/accSecs, "speedup_vs_BaseKD_x")
		b.ReportMetric((gpuEnergy/gpuSecs)/(accEnergy/accSecs), "power_reduction_x")
	}
}

// BenchmarkFig11_EndToEnd estimates the end-to-end registration speedup
// when KD-tree search is accelerated, with the §6.3 methodology: the
// measured KD-search share of registration time shrinks by the modeled
// accelerator-vs-GPU speedup while the rest of the pipeline is unchanged:
// improvement = share × (1 − t_acc/t_gpu). The paper reports 41.7% on DP7.
func BenchmarkFig11_EndToEnd(b *testing.B) {
	seq := benchSeq()
	benchAccelSetup()
	for i := 0; i < b.N; i++ {
		ev := dse.Evaluate(seq, dse.DP7())
		accSecs, _ := accelRun(b, sim.DefaultConfig(), false)
		var gpuSecs float64
		for _, w := range accelWL.wl {
			p := baseline.ProfileCanonical(accelWL.canon, w)
			gpuSecs += baseline.RTX2080Ti.Time(p).Seconds()
		}
		share := ev.KDSearchFrac()
		b.ReportMetric(100*share*(1-accSecs/gpuSecs), "e2e_improvement_pct")
	}
}

// BenchmarkApproxSearch reports the §6.3 approximate-search gains: node
// visit reduction and speedup over exact Acc-2SKD.
func BenchmarkApproxSearch(b *testing.B) {
	benchAccelSetup()
	for i := 0; i < b.N; i++ {
		exactSecs, _ := accelRun(b, sim.DefaultConfig(), false)
		apxSecs, _ := accelRun(b, sim.DefaultConfig(), true)
		var exactOps, apxOps int64
		for _, w := range accelWL.wl {
			repE, _ := sim.Run(accelWL.twoStage, w, sim.DefaultConfig())
			ca := sim.DefaultConfig()
			ca.Approx = twostage.DefaultNNThreshold
			if w.Kind == sim.RadiusSearch {
				ca.ApproxRadiusFrac = twostage.DefaultRadiusThresholdFrac
			}
			repA, _ := sim.Run(accelWL.twoStage, w, ca)
			exactOps += repE.Counts.PEDistanceOps
			apxOps += repA.Counts.PEDistanceOps
		}
		b.ReportMetric(100*(1-float64(apxOps)/float64(exactOps)), "op_reduction_pct")
		b.ReportMetric(exactSecs/apxSecs, "speedup_x")
	}
}

// BenchmarkFig12_Ablation reports the RU/issue optimization ablation
// (No-Opt, Bypass, +Forward, MQMN) as speedups over No-Opt.
func BenchmarkFig12_Ablation(b *testing.B) {
	benchAccelSetup()
	for i := 0; i < b.N; i++ {
		mk := func(fwd, byp bool, issue sim.IssuePolicy) float64 {
			cfg := sim.DefaultConfig()
			cfg.Forwarding = fwd
			cfg.Bypassing = byp
			cfg.Issue = issue
			secs, _ := accelRun(b, cfg, false)
			return secs
		}
		noOpt := mk(false, false, sim.MQSN)
		b.ReportMetric(noOpt/mk(false, true, sim.MQSN), "bypass_speedup_x")
		b.ReportMetric(noOpt/mk(true, true, sim.MQSN), "forward_speedup_x")
		b.ReportMetric(noOpt/mk(true, true, sim.MQMN), "mqmn_speedup_x")
	}
}

// BenchmarkFig13_Traffic reports the memory traffic split of Acc-2SKD
// (Fig. 13): Points Buffer share with the node cache active.
func BenchmarkFig13_Traffic(b *testing.B) {
	benchAccelSetup()
	for i := 0; i < b.N; i++ {
		var with, without sim.Traffic
		for _, w := range accelWL.wl {
			rep, _ := sim.Run(accelWL.twoStage, w, sim.DefaultConfig())
			with.PointsBuf += rep.Traffic.PointsBuf
			with.NodeCache += rep.Traffic.NodeCache
			cfg := sim.DefaultConfig()
			cfg.NodeCacheSets = 0
			rep2, _ := sim.Run(accelWL.twoStage, w, cfg)
			without.PointsBuf += rep2.Traffic.PointsBuf
		}
		b.ReportMetric(float64(with.PointsBuf)/float64(without.PointsBuf), "pointsbuf_traffic_ratio")
	}
}

// BenchmarkFig14_Sensitivity sweeps the RU count (the Fig. 14 bottleneck
// dimension) and reports search time for 16 vs 64 RUs.
func BenchmarkFig14_Sensitivity(b *testing.B) {
	benchAccelSetup()
	for i := 0; i < b.N; i++ {
		for _, ru := range []int{16, 64, 128} {
			cfg := sim.DefaultConfig()
			cfg.NumRU = ru
			secs, _ := accelRun(b, cfg, false)
			switch ru {
			case 16:
				b.ReportMetric(secs*1e3, "time_16RU_ms")
			case 64:
				b.ReportMetric(secs*1e3, "time_64RU_ms")
			default:
				b.ReportMetric(secs*1e3, "time_128RU_ms")
			}
		}
	}
}

// BenchmarkFig15_TopTreeHeight reports search time at three top-tree
// heights, exposing the Fig. 15 U-shape.
func BenchmarkFig15_TopTreeHeight(b *testing.B) {
	benchAccelSetup()
	seq := benchSeq()
	pts := seq.Frames[0].Points
	for i := 0; i < b.N; i++ {
		for _, h := range []int{4, 10, 15} {
			tree := twostage.Build(pts, h)
			var secs float64
			for _, w := range accelWL.wl {
				rep, err := sim.Run(tree, w, sim.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				secs += rep.Time.Seconds()
			}
			switch h {
			case 4:
				b.ReportMetric(secs*1e3, "time_h4_ms")
			case 10:
				b.ReportMetric(secs*1e3, "time_h10_ms")
			default:
				b.ReportMetric(secs*1e3, "time_h15_ms")
			}
		}
	}
}

// --- Serial vs parallel batched search ----------------------------------
//
// The batched Searcher API spreads each stage's queries over a worker
// pool; these pairs measure the end-to-end and per-query-kind speedup on
// the current machine (compare the Serial/Parallel ns/op in BENCH_*.json
// runs). Exact search results are bit-identical between the variants.

func benchmarkRegister(b *testing.B, parallelism int) {
	seq := benchSeq()
	cfg := dse.DP4().Config
	cfg.Searcher.Parallelism = parallelism
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := registration.Register(seq.Frames[1], seq.Frames[0], cfg)
		if res.Stage.Total() <= 0 {
			b.Fatal("per-stage StageTimes not populated")
		}
	}
}

// BenchmarkRegisterSerial pins every search batch to one worker.
func BenchmarkRegisterSerial(b *testing.B) { benchmarkRegister(b, 1) }

// BenchmarkRegisterParallel uses one worker per CPU (the default).
func BenchmarkRegisterParallel(b *testing.B) { benchmarkRegister(b, 0) }

// searchBench lazily builds the shared micro-benchmark data: a KD-tree
// over frame 0 and the full frame-1 point set as the query batch.
var searchBench struct {
	once    sync.Once
	target  []Vec3
	queries []Vec3
}

func searchBenchData() ([]Vec3, []Vec3) {
	searchBench.once.Do(func() {
		seq := benchSeq()
		searchBench.target = seq.Frames[0].Points
		searchBench.queries = seq.Frames[1].Points
	})
	return searchBench.target, searchBench.queries
}

func benchmarkRadiusBatch(b *testing.B, parallelism int) {
	target, queries := searchBenchData()
	s := search.NewKDSearcher(target)
	s.SetParallelism(parallelism)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.RadiusBatch(queries, 0.5)
		if len(res) != len(queries) {
			b.Fatal("batch size mismatch")
		}
	}
}

// BenchmarkRadiusBatchSerial / Parallel: the NE-stage query shape.
func BenchmarkRadiusBatchSerial(b *testing.B)   { benchmarkRadiusBatch(b, 1) }
func BenchmarkRadiusBatchParallel(b *testing.B) { benchmarkRadiusBatch(b, 0) }

func benchmarkKNearestBatch(b *testing.B, parallelism int) {
	target, queries := searchBenchData()
	s := search.NewKDSearcher(target)
	s.SetParallelism(parallelism)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.KNearestBatch(queries, 10)
		if len(res) != len(queries) {
			b.Fatal("batch size mismatch")
		}
	}
}

// BenchmarkKNearestBatchSerial / Parallel: the k-NN support-region shape.
func BenchmarkKNearestBatchSerial(b *testing.B)   { benchmarkKNearestBatch(b, 1) }
func BenchmarkKNearestBatchParallel(b *testing.B) { benchmarkKNearestBatch(b, 0) }

func benchmarkNearestBatchTwoStage(b *testing.B, parallelism int) {
	target, queries := searchBenchData()
	s := search.NewTwoStageSearcher(target, search.TwoStageConfig{TopHeight: -1, Parallelism: parallelism})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.NearestBatch(queries)
		if len(res) != len(queries) {
			b.Fatal("batch size mismatch")
		}
	}
}

// BenchmarkNearestBatchTwoStageSerial / Parallel: the RPCE query shape on
// the parallelism-exposing tree.
func BenchmarkNearestBatchTwoStageSerial(b *testing.B)   { benchmarkNearestBatchTwoStage(b, 1) }
func BenchmarkNearestBatchTwoStageParallel(b *testing.B) { benchmarkNearestBatchTwoStage(b, 0) }

// --- Streaming service mode ---------------------------------------------
//
// These pairs measure what the odometry engine buys over the per-pair
// Register loop on the same frame sequence: front-end reuse (each frame
// prepared once instead of twice) and two-stage pipelining (frame N's
// front-end overlapping frame N−1's fine-tuning). The custom metrics are
// registered pairs per second and milliseconds per frame, so BENCH_*.json
// runs track service-mode throughput. Exact backends make all three
// variants produce bit-identical trajectories.

var streamBenchData struct {
	once sync.Once
	seq  *synth.Sequence
}

func streamBenchSeq() *synth.Sequence {
	streamBenchData.once.Do(func() {
		cfg := synth.SequenceConfig{
			Scene:     synth.SceneConfig{Seed: 2019, Length: 120},
			Lidar:     synth.LidarConfig{Beams: 24, AzimuthSteps: 450, Seed: 2019},
			NumFrames: 5,
		}
		streamBenchData.seq = synth.GenerateSequence(cfg)
	})
	return streamBenchData.seq
}

func reportStreamThroughput(b *testing.B, frames int) {
	secsPerIter := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(frames-1)/secsPerIter, "pairs/sec")
	b.ReportMetric(1e3*secsPerIter/float64(frames), "ms/frame")
}

func benchmarkStream(b *testing.B, pipelined bool) {
	seq := streamBenchSeq()
	cfg := dse.DP4().Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := stream.New(stream.Config{Pipeline: cfg, Pipelined: pipelined})
		for _, f := range seq.Frames {
			if _, err := eng.Push(f); err != nil {
				b.Fatal(err)
			}
		}
		eng.Drain()
		eng.Close()
		if eng.Trajectory().Len() != seq.Len() {
			b.Fatal("trajectory incomplete")
		}
	}
	reportStreamThroughput(b, seq.Len())
}

// BenchmarkStreamPipelined: front-end reuse + two-stage overlap.
func BenchmarkStreamPipelined(b *testing.B) { benchmarkStream(b, true) }

// BenchmarkStreamUnpipelined: front-end reuse only (each Push runs both
// stages synchronously).
func BenchmarkStreamUnpipelined(b *testing.B) { benchmarkStream(b, false) }

// BenchmarkStreamPerPair is the no-reuse baseline: the classic loop that
// re-runs the full Register pipeline — both clouds' front-ends — per
// consecutive pair.
func BenchmarkStreamPerPair(b *testing.B) {
	seq := streamBenchSeq()
	cfg := dse.DP4().Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j+1 < seq.Len(); j++ {
			res := registration.Register(seq.Frames[j+1], seq.Frames[j], cfg)
			if res.Total <= 0 {
				b.Fatal("missing instrumentation")
			}
		}
	}
	reportStreamThroughput(b, seq.Len())
}

// BenchmarkTableArea reports the §6.2 area model outputs.
func BenchmarkTableArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		area := cfg.EstimateArea()
		b.ReportMetric(area.SRAMmm2, "sram_mm2")
		b.ReportMetric(area.LogicMm2, "logic_mm2")
		b.ReportMetric(100*area.SRAMmm2/area.Total(), "sram_pct")
	}
}

// BenchmarkEnergyBreakdown reports the §6.3 energy component shares of
// Acc-2SKD on the DP7 workloads.
func BenchmarkEnergyBreakdown(b *testing.B) {
	benchAccelSetup()
	for i := 0; i < b.N; i++ {
		var e sim.Energy
		for _, w := range accelWL.wl {
			rep, err := sim.Run(accelWL.twoStage, w, sim.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			e.PE += rep.Energy.PE
			e.SRAMRead += rep.Energy.SRAMRead
			e.SRAMWrite += rep.Energy.SRAMWrite
			e.Leakage += rep.Energy.Leakage
			e.DRAM += rep.Energy.DRAM
		}
		total := e.Total()
		b.ReportMetric(100*e.PE/total, "PE_pct")
		b.ReportMetric(100*e.SRAMRead/total, "sram_read_pct")
		b.ReportMetric(100*e.SRAMWrite/total, "sram_write_pct")
		b.ReportMetric(100*e.Leakage/total, "leakage_pct")
		b.ReportMetric(100*e.DRAM/total, "dram_pct")
	}
}
