module tigris

go 1.24
