// Package memstat reports process-level memory figures for the bench
// CLIs: Go heap occupancy from runtime.MemStats and the OS-observed peak
// resident set, so JSON reports carry both the allocator's view and the
// kernel's.
package memstat

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// HeapInuseBytes returns the bytes in in-use heap spans right now (after
// a GC, a close proxy for live heap).
func HeapInuseBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// PeakRSSBytes returns the process's high-water resident set size
// (VmHWM) from /proc/self/status, or 0 where the proc file is
// unavailable (non-Linux). The peak covers the whole process lifetime,
// not one benchmark interval.
func PeakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
