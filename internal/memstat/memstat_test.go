package memstat

import (
	"runtime"
	"testing"
)

func TestHeapInuseBytesNonZero(t *testing.T) {
	if HeapInuseBytes() == 0 {
		t.Error("HeapInuse reported 0 for a running process")
	}
}

func TestPeakRSSBytes(t *testing.T) {
	got := PeakRSSBytes()
	if runtime.GOOS == "linux" {
		// Any Go process has multi-megabyte peak RSS; the parse must not
		// come back empty or in the wrong unit.
		if got < 1<<20 {
			t.Errorf("VmHWM = %d B, implausibly small", got)
		}
	} else if got != 0 {
		t.Errorf("non-Linux peak RSS should be 0, got %d", got)
	}
}
