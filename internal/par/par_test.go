package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int64, n)
		For(n, workers, func(_, i int) {
			atomic.AddInt64(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForWorkerIDsAreDisjoint(t *testing.T) {
	const n, workers = 500, 4
	// Each index records its worker; per-worker shards written without
	// synchronization must not race (go test -race guards this).
	shards := make([][]int, workers)
	For(n, workers, func(w, i int) {
		shards[w] = append(shards[w], i)
	})
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != n {
		t.Fatalf("shards cover %d indices, want %d", total, n)
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	ran := 0
	For(0, 8, func(_, _ int) { ran++ })
	if ran != 0 {
		t.Error("For(0) ran work")
	}
	For(1, 8, func(w, i int) {
		if w != 0 || i != 0 {
			t.Errorf("For(1) gave worker=%d i=%d", w, i)
		}
		ran++
	})
	if ran != 1 {
		t.Errorf("For(1) ran %d times", ran)
	}
}

func TestForChunksBoundariesIndependentOfWorkers(t *testing.T) {
	const n, c = 1003, 256
	var want [][2]int
	ForChunks(n, 1, c, func(_, lo, hi int) {
		want = append(want, [2]int{lo, hi})
	})
	for _, workers := range []int{2, 5, 16} {
		seen := make(map[[2]int]bool)
		var mu atomic.Int64
		ForChunks(n, workers, c, func(_, lo, hi int) {
			for !mu.CompareAndSwap(0, 1) {
			}
			seen[[2]int{lo, hi}] = true
			mu.Store(0)
		})
		if len(seen) != len(want) {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(seen), len(want))
		}
		for _, ch := range want {
			if !seen[ch] {
				t.Fatalf("workers=%d: missing chunk %v", workers, ch)
			}
		}
	}
}

func TestForChunksDistributesAcrossWorkers(t *testing.T) {
	// Chunks must be claimed one at a time, not in grain-sized blocks: a
	// typical batch block is only a few dozen chunks, and block-claiming
	// would hand them all to the first worker, silently serializing the
	// batch. The sleep forces overlap so multiple workers get to claim
	// even on a single-CPU machine.
	const chunks, c, workers = 8, 256, 4
	var used [workers]atomic.Int64
	ForChunks(chunks*c, workers, c, func(w, lo, hi int) {
		used[w].Add(1)
		time.Sleep(2 * time.Millisecond)
	})
	distinct := 0
	for i := range used {
		if used[i].Load() > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		t.Errorf("all %d chunks ran on one worker", chunks)
	}
}

func TestForChunksZeroChunkSizeIsOneChunk(t *testing.T) {
	calls := 0
	ForChunks(10, 4, 0, func(_, lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
}
