package par

import "testing"

func poolWorkers(subs []*Pool) []int {
	out := make([]int, len(subs))
	for i, p := range subs {
		out[i] = p.Workers()
	}
	return out
}

func TestPoolSplitProportional(t *testing.T) {
	cases := []struct {
		total   int
		weights []float64
		want    []int
	}{
		{8, []float64{1, 1}, []int{4, 4}},
		{8, []float64{3, 1}, []int{6, 2}},
		{7, []float64{1, 1}, []int{4, 3}}, // remainder to the lowest index on ties
		{8, []float64{1, 1, 2}, []int{2, 2, 4}},
		{5, []float64{0.7, 0.3}, []int{3, 2}},
		{8, []float64{1, 0}, []int{7, 1}}, // zero weight keeps its 1-worker floor
		{8, []float64{0, 0}, []int{4, 4}}, // all-zero weights split evenly
		{2, []float64{0.9, 0.1}, []int{1, 1}},
		{1, []float64{1, 1}, []int{1, 1}}, // narrower than the weight count: floors only
	}
	for _, tc := range cases {
		subs := (&Pool{workers: tc.total}).Split(append([]float64(nil), tc.weights...)...)
		got := poolWorkers(subs)
		if len(got) != len(tc.want) {
			t.Fatalf("Split(%v) of %d: got %v", tc.weights, tc.total, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Split(%v) of %d = %v, want %v", tc.weights, tc.total, got, tc.want)
				break
			}
		}
	}
}

func TestPoolSplitInvariants(t *testing.T) {
	// Every split hands out at least one worker per sub-pool, and — when
	// the pool is wide enough for that floor — exactly the pool's budget
	// in total.
	for total := 1; total <= 16; total++ {
		for _, weights := range [][]float64{{1, 1}, {5, 1}, {1, 2, 3}, {0.9, 0.1}} {
			subs := (&Pool{workers: total}).Split(append([]float64(nil), weights...)...)
			sum := 0
			for _, p := range subs {
				if p.Workers() < 1 {
					t.Fatalf("total %d weights %v: sub-pool with %d workers", total, weights, p.Workers())
				}
				sum += p.Workers()
			}
			if total >= len(weights) && sum != total {
				t.Errorf("total %d weights %v: shares sum to %d", total, weights, sum)
			}
		}
	}
}

func TestPoolSplitDeterministic(t *testing.T) {
	a := poolWorkers(NewPool(12).Split(0.37, 0.63))
	for i := 0; i < 50; i++ {
		b := poolWorkers(NewPool(12).Split(0.37, 0.63))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("split not deterministic: %v vs %v", a, b)
			}
		}
	}
}

func TestPoolSplitRejectsBadWeights(t *testing.T) {
	// NaN and negative weights are treated as zero instead of poisoning
	// the apportionment.
	subs := (&Pool{workers: 8}).Split(nan(), -3, 1)
	got := poolWorkers(subs)
	if got[2] != 6 || got[0] != 1 || got[1] != 1 {
		t.Fatalf("bad weights not neutralized: %v", got)
	}
}

func nan() float64 {
	var z float64
	return z / z
}
