// Package par provides the small worker-pool primitives the batched
// neighbor-search layer is built on. The paper's central argument is that
// KD-tree search exposes massive query-level parallelism; par.For is the
// software analogue of the accelerator's query dispatch: a fixed worker
// pool pulls index blocks off a shared counter, and every item of work is
// identified by its index so results can be written positionally, keeping
// parallel output bit-identical to sequential output.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// grain is the number of consecutive indices a worker claims per atomic
// fetch. Neighbor queries are microseconds each, so claiming single
// indices would serialize on the counter; blocks of 32 amortize it while
// still load-balancing across skewed query costs.
const grain = 32

// Workers resolves a requested parallelism: n > 0 selects n workers,
// anything else selects runtime.NumCPU(). This is the shared default for
// every Parallelism knob in the search and registration layers.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// For runs fn(worker, i) for every i in [0, n), distributing indices over
// at most workers goroutines. worker is in [0, workers) and is stable for
// the lifetime of one call, so callers can give each worker private state
// (stats shards, scratch buffers, approximate-search sessions) without
// locking. Indices are claimed in blocks, so fn must not assume any
// ordering between indices run by different workers; fn must write results
// positionally (by i) for the output to be deterministic.
//
// workers <= 1 (or n <= 1) degenerates to a plain sequential loop on the
// calling goroutine with worker == 0, making the sequential path the
// exact specialization of the parallel one.
func For(n, workers int, fn func(worker, i int)) {
	forGrain(n, workers, grain, fn)
}

// forGrain is For with an explicit claim-block size: each atomic fetch
// claims g consecutive indices. For uses the default grain; ForChunks
// claims single indices because each of its indices is already a whole
// chunk of work.
func forGrain(n, workers, g int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	// Never spawn more workers than there are claimable blocks: the rest
	// would start only to lose one atomic claim and exit, and small
	// batches recur in hot loops (one NearestBatch per ICP iteration).
	if blocks := (n + g - 1) / g; workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	g64 := int64(g)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				lo := int(next.Add(g64)) - g
				if lo >= n {
					return
				}
				hi := lo + g
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// Sharded executes n work items over the worker pool with one shard of
// per-worker state of type St each, then hands every shard to merge (in
// worker order). It is the scheduling primitive behind every batched
// search method: shards carry instrumentation (stats counters) that must
// stay exact without atomics on the query fast path.
func Sharded[St any](n, workers int, run func(shard *St, i int), merge func(*St)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([]St, workers)
	For(n, workers, func(w, i int) {
		run(&shards[w], i)
	})
	for w := range shards {
		merge(&shards[w])
	}
}

// ForChunks runs fn(worker, lo, hi) over the half-open chunks
// [0,c), [c,2c), ... of [0, n) with chunk size c, distributing whole
// chunks over the worker pool. Chunk boundaries depend only on n and c —
// never on the worker count — so per-chunk state (e.g. the approximate
// searcher's leader sessions) yields results that are invariant under the
// Parallelism knob.
func ForChunks(n, workers, c int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if c <= 0 {
		c = n
	}
	chunks := (n + c - 1) / c
	// Claim chunks one at a time: a chunk is already a large unit of work
	// (e.g. 256 queries), so grain-1 claiming amortizes the counter fine —
	// and block-claiming would hand a whole small batch to one worker.
	forGrain(chunks, workers, 1, func(worker, chunk int) {
		lo := chunk * c
		hi := lo + c
		if hi > n {
			hi = n
		}
		fn(worker, lo, hi)
	})
}
