// Package par provides the small worker-pool primitives the batched
// neighbor-search layer is built on. The paper's central argument is that
// KD-tree search exposes massive query-level parallelism; par.For is the
// software analogue of the accelerator's query dispatch: a fixed worker
// pool pulls index blocks off a shared counter, and every item of work is
// identified by its index so results can be written positionally, keeping
// parallel output bit-identical to sequential output.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// grain is the number of consecutive indices a worker claims per atomic
// fetch. Neighbor queries are microseconds each, so claiming single
// indices would serialize on the counter; blocks of 32 amortize it while
// still load-balancing across skewed query costs.
const grain = 32

// Workers resolves a requested parallelism: n > 0 selects n workers,
// anything else selects runtime.NumCPU(). This is the shared default for
// every Parallelism knob in the search and registration layers.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// For runs fn(worker, i) for every i in [0, n), distributing indices over
// at most workers goroutines. worker is in [0, workers) and is stable for
// the lifetime of one call, so callers can give each worker private state
// (stats shards, scratch buffers, approximate-search sessions) without
// locking. Indices are claimed in blocks, so fn must not assume any
// ordering between indices run by different workers; fn must write results
// positionally (by i) for the output to be deterministic.
//
// workers <= 1 (or n <= 1) degenerates to a plain sequential loop on the
// calling goroutine with worker == 0, making the sequential path the
// exact specialization of the parallel one.
func For(n, workers int, fn func(worker, i int)) {
	forGrain(n, workers, grain, fn)
}

// forGrain is For with an explicit claim-block size: each atomic fetch
// claims g consecutive indices. For uses the default grain; ForChunks
// claims single indices because each of its indices is already a whole
// chunk of work.
func forGrain(n, workers, g int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	// Never spawn more workers than there are claimable blocks: the rest
	// would start only to lose one atomic claim and exit, and small
	// batches recur in hot loops (one NearestBatch per ICP iteration).
	if blocks := (n + g - 1) / g; workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	g64 := int64(g)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				lo := int(next.Add(g64)) - g
				if lo >= n {
					return
				}
				hi := lo + g
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// Sharded executes n work items over the worker pool with one shard of
// per-worker state of type St each, then hands every shard to merge (in
// worker order). It is the scheduling primitive behind every batched
// search method: shards carry instrumentation (stats counters) that must
// stay exact without atomics on the query fast path.
func Sharded[St any](n, workers int, run func(shard *St, i int), merge func(*St)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Sequential specialization: one stack shard instead of a
		// heap-allocated shard slice. Hot loops issue one small batch per
		// iteration (ICP's per-iteration NearestBatch), so this keeps the
		// single-worker batch path allocation-free.
		if n <= 0 {
			return
		}
		var shard St
		for i := 0; i < n; i++ {
			run(&shard, i)
		}
		merge(&shard)
		return
	}
	shards := make([]St, workers)
	For(n, workers, func(w, i int) {
		run(&shards[w], i)
	})
	for w := range shards {
		merge(&shards[w])
	}
}

// Pool is a worker budget that can be divided between concurrently
// running stages. A pipeline whose stages each size their batches with
// Workers(0) oversubscribes the machine (every stage spawns NumCPU
// goroutines); carving one Pool into weighted sub-pools gives each stage
// a dedicated share so concurrent stages together use exactly the
// machine's width. A Pool carries no goroutines of its own — it is an
// accounting object whose Workers() count callers feed to For/Sharded or
// a Parallelism knob.
type Pool struct {
	workers int
}

// NewPool returns a pool of Workers(n) workers (n <= 0 selects NumCPU).
func NewPool(n int) *Pool {
	return &Pool{workers: Workers(n)}
}

// Workers returns the pool's worker budget.
func (p *Pool) Workers() int { return p.workers }

// Split divides the pool into one sub-pool per weight. Every sub-pool is
// reserved one worker first — no stage may starve — and the remaining
// workers are apportioned proportionally to the weights (largest
// remainder, ties to the lowest index, so the split is deterministic).
// Whenever the pool is at least as wide as the weight count, the shares
// sum exactly to the pool's budget; a narrower pool hands every sub-pool
// its floor of one and oversubscribes instead. Negative or non-finite
// weights count as zero; if all weights are zero the split is even.
func (p *Pool) Split(weights ...float64) []*Pool {
	k := len(weights)
	if k == 0 {
		return nil
	}
	out := make([]*Pool, k)
	if p.workers <= k {
		for i := range out {
			out[i] = &Pool{workers: 1}
		}
		return out
	}
	// Sanitize into a local copy: callers may retain the slice they
	// expanded into the variadic.
	ws := make([]float64, k)
	var total float64
	for i, w := range weights {
		if w < 0 || w != w || w > 1e300 {
			continue
		}
		ws[i] = w
		total += w
	}
	weights = ws
	extra := p.workers - k
	shares := make([]int, k)
	fracs := make([]float64, k)
	assigned := 0
	for i, w := range weights {
		frac := 1 / float64(k)
		if total > 0 {
			frac = w / total
		}
		exact := frac * float64(extra)
		shares[i] = int(exact)
		fracs[i] = exact - float64(shares[i])
		assigned += shares[i]
	}
	// Hand the leftover workers to the largest remainders, lowest index
	// first on ties.
	for assigned < extra {
		best := 0
		for i := 1; i < len(fracs); i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		shares[best]++
		fracs[best] = -1
		assigned++
	}
	for i, s := range shares {
		out[i] = &Pool{workers: s + 1}
	}
	return out
}

// ForChunks runs fn(worker, lo, hi) over the half-open chunks
// [0,c), [c,2c), ... of [0, n) with chunk size c, distributing whole
// chunks over the worker pool. Chunk boundaries depend only on n and c —
// never on the worker count — so per-chunk state (e.g. the approximate
// searcher's leader sessions) yields results that are invariant under the
// Parallelism knob.
func ForChunks(n, workers, c int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if c <= 0 {
		c = n
	}
	chunks := (n + c - 1) / c
	// Claim chunks one at a time: a chunk is already a large unit of work
	// (e.g. 256 queries), so grain-1 claiming amortizes the counter fine —
	// and block-claiming would hand a whole small batch to one worker.
	forGrain(chunks, workers, 1, func(worker, chunk int) {
		lo := chunk * c
		hi := lo + c
		if hi > n {
			hi = n
		}
		fn(worker, lo, hi)
	})
}
