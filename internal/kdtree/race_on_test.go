//go:build race

package kdtree

// raceEnabled: see race_off_test.go.
const raceEnabled = true
