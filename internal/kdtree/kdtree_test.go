package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"tigris/internal/geom"
)

// randPoints generates test points pre-snapped to float32 (the slab
// quantization convention): the tree stores exactly these coordinates,
// so float64 brute-force oracles over the same slice stay bit-identical.
func randPoints(r *rand.Rand, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.Vec3{
			X: r.Float64()*100 - 50,
			Y: r.Float64()*100 - 50,
			Z: r.Float64()*10 - 5,
		}.Quantize32()
	}
	return pts
}

func TestNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		pts := randPoints(r, 50+r.Intn(500))
		tree := Build(pts)
		for i := 0; i < 50; i++ {
			q := geom.Vec3{X: r.Float64()*120 - 60, Y: r.Float64()*120 - 60, Z: r.Float64()*12 - 6}
			got, ok := tree.Nearest(q, nil)
			want, _ := BruteNearest(pts, q)
			if !ok {
				t.Fatal("nearest returned !ok on non-empty tree")
			}
			if math.Abs(got.Dist2-want.Dist2) > 1e-12 {
				t.Fatalf("nearest dist² %v, brute %v", got.Dist2, want.Dist2)
			}
		}
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 400)
	tree := Build(pts)
	for i := 0; i < 50; i++ {
		q := randPoints(r, 1)[0]
		k := 1 + r.Intn(20)
		got := tree.KNearest(q, k, nil)
		want := BruteKNearest(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("k-NN count %d, want %d", len(got), len(want))
		}
		for j := range got {
			if math.Abs(got[j].Dist2-want[j].Dist2) > 1e-12 {
				t.Fatalf("k-NN[%d] dist² %v, brute %v", j, got[j].Dist2, want[j].Dist2)
			}
		}
	}
}

func TestKNearestOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 300)
	tree := Build(pts)
	for i := 0; i < 20; i++ {
		res := tree.KNearest(randPoints(r, 1)[0], 15, nil)
		for j := 1; j < len(res); j++ {
			if res[j].Dist2 < res[j-1].Dist2 {
				t.Fatal("k-NN results not ascending")
			}
		}
	}
}

func TestKNearestMoreThanTree(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(4)), 5)
	tree := Build(pts)
	res := tree.KNearest(geom.Vec3{}, 10, nil)
	if len(res) != 5 {
		t.Fatalf("k > n should return n results, got %d", len(res))
	}
}

func TestRadiusMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 500)
	tree := Build(pts)
	for i := 0; i < 50; i++ {
		q := randPoints(r, 1)[0]
		radius := r.Float64() * 15
		got := tree.Radius(q, radius, nil)
		want := BruteRadius(pts, q, radius)
		if len(got) != len(want) {
			t.Fatalf("radius count %d, want %d", len(got), len(want))
		}
		for j := range got {
			if got[j].Index != want[j].Index {
				t.Fatalf("radius[%d] = %d, want %d", j, got[j].Index, want[j].Index)
			}
		}
	}
}

func TestRadiusInclusive(t *testing.T) {
	pts := []geom.Vec3{{X: 1}, {X: 2}, {X: 3}}
	tree := Build(pts)
	res := tree.Radius(geom.Vec3{}, 2, nil)
	if len(res) != 2 {
		t.Fatalf("radius should be inclusive of boundary: got %d results", len(res))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	empty := Build(nil)
	if _, ok := empty.Nearest(geom.Vec3{}, nil); ok {
		t.Error("empty tree returned a neighbor")
	}
	if res := empty.Radius(geom.Vec3{}, 5, nil); len(res) != 0 {
		t.Error("empty tree radius returned results")
	}
	if res := empty.KNearest(geom.Vec3{}, 3, nil); len(res) != 0 {
		t.Error("empty tree k-NN returned results")
	}

	single := Build([]geom.Vec3{{X: 7}})
	nb, ok := single.Nearest(geom.Vec3{}, nil)
	if !ok || nb.Index != 0 || math.Abs(nb.Dist2-49) > 1e-12 {
		t.Errorf("singleton nearest = %+v", nb)
	}
	if single.Height() != 0 {
		t.Errorf("singleton height = %d", single.Height())
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []geom.Vec3{{X: 1}, {X: 1}, {X: 1}, {X: 2}}
	tree := Build(pts)
	res := tree.Radius(geom.Vec3{X: 1}, 0.5, nil)
	if len(res) != 3 {
		t.Fatalf("expected 3 duplicate hits, got %d", len(res))
	}
	nb, _ := tree.Nearest(geom.Vec3{X: 0.9}, nil)
	if math.Abs(nb.Dist2-0.01) > 1e-12 {
		t.Errorf("nearest among duplicates: %+v", nb)
	}
}

func TestTreeBalanced(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, n := range []int{100, 1000, 5000} {
		tree := Build(randPoints(r, n))
		maxH := int(1.2*math.Log2(float64(n))) + 2
		if h := tree.Height(); h > maxH {
			t.Errorf("n=%d: height %d exceeds balanced bound %d", n, h, maxH)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 1000)
	tree := Build(pts)
	var stats Stats
	for i := 0; i < 10; i++ {
		tree.Nearest(randPoints(r, 1)[0], &stats)
	}
	if stats.Queries != 10 {
		t.Errorf("Queries = %d", stats.Queries)
	}
	if stats.NodesVisited <= 0 || stats.NodesVisited > 10*1000 {
		t.Errorf("NodesVisited = %d out of range", stats.NodesVisited)
	}
	// Pruning must make the search visit far fewer nodes than brute force.
	if stats.NodesVisited > 10*400 {
		t.Errorf("NodesVisited = %d; pruning seems ineffective", stats.NodesVisited)
	}
	if stats.NodesPruned == 0 {
		t.Error("expected some pruned sub-trees")
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{NodesVisited: 5, NodesPruned: 2, Queries: 1}
	b := Stats{NodesVisited: 7, NodesPruned: 3, Queries: 2}
	a.Merge(b)
	if a.NodesVisited != 12 || a.NodesPruned != 5 || a.Queries != 3 {
		t.Errorf("merged = %+v", a)
	}
}

func TestNNVisitsLogarithmic(t *testing.T) {
	// The paper's premise: KD-tree NN search has average O(log n) visits.
	// Verify visits grow far slower than n.
	r := rand.New(rand.NewSource(8))
	visitsAt := func(n int) float64 {
		pts := randPoints(r, n)
		tree := Build(pts)
		var stats Stats
		const q = 200
		for i := 0; i < q; i++ {
			tree.Nearest(randPoints(r, 1)[0], &stats)
		}
		return float64(stats.NodesVisited) / q
	}
	small := visitsAt(1000)
	large := visitsAt(16000)
	if large > small*4 {
		t.Errorf("visit growth %0.1f -> %0.1f is superlogarithmic", small, large)
	}
}

func TestBruteEmpty(t *testing.T) {
	if _, ok := BruteNearest(nil, geom.Vec3{}); ok {
		t.Error("brute nearest on empty should be !ok")
	}
	if res := BruteRadius(nil, geom.Vec3{}, 1); len(res) != 0 {
		t.Error("brute radius on empty should be empty")
	}
	if res := BruteKNearest(nil, geom.Vec3{}, 0); res != nil {
		t.Error("brute k-NN with k=0 should be nil")
	}
}

func BenchmarkBuild(b *testing.B) {
	pts := randPoints(rand.New(rand.NewSource(1)), 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkNearest(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 50000)
	tree := Build(pts)
	queries := randPoints(r, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Nearest(queries[i%len(queries)], nil)
	}
}

func BenchmarkRadius(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 50000)
	tree := Build(pts)
	queries := randPoints(r, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Radius(queries[i%len(queries)], 1.0, nil)
	}
}
