package kdtree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tigris/internal/geom"
)

// genCloudAndQuery produces a random bounded point set and a query for
// quick checks.
type cloudAndQuery struct {
	Pts   []geom.Vec3
	Query geom.Vec3
	R     float64
}

// Generate implements quick.Generator.
func (cloudAndQuery) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(200)
	pts := make([]geom.Vec3, n)
	for i := range pts {
		// Pre-snapped to float32 so the tree stores exactly these values
		// and the AoS property checks stay bit-identical.
		pts[i] = geom.Vec3{
			X: r.Float64()*40 - 20,
			Y: r.Float64()*40 - 20,
			Z: r.Float64()*8 - 4,
		}.Quantize32()
	}
	return reflect.ValueOf(cloudAndQuery{
		Pts:   pts,
		Query: geom.Vec3{X: r.Float64()*50 - 25, Y: r.Float64()*50 - 25, Z: r.Float64()*10 - 5},
		R:     r.Float64() * 10,
	})
}

func TestQuickNearestIsGlobalMinimum(t *testing.T) {
	f := func(cq cloudAndQuery) bool {
		tree := Build(cq.Pts)
		nb, ok := tree.Nearest(cq.Query, nil)
		if !ok {
			return false
		}
		for _, p := range cq.Pts {
			if cq.Query.Dist2(p) < nb.Dist2-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickRadiusSoundAndComplete(t *testing.T) {
	f := func(cq cloudAndQuery) bool {
		tree := Build(cq.Pts)
		res := tree.Radius(cq.Query, cq.R, nil)
		got := make(map[int]bool, len(res))
		for _, nb := range res {
			// Soundness: every result is genuinely within R.
			if math.Sqrt(nb.Dist2) > cq.R+1e-9 {
				return false
			}
			got[nb.Index] = true
		}
		// Completeness: every point within R is reported.
		for i, p := range cq.Pts {
			if cq.Query.Dist(p) <= cq.R-1e-9 && !got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickKNNPrefixProperty(t *testing.T) {
	// k-NN results must be a prefix-consistent family: the (k)-NN set is
	// contained in the (k+1)-NN set.
	f := func(cq cloudAndQuery) bool {
		tree := Build(cq.Pts)
		k := 1 + len(cq.Pts)/4
		a := tree.KNearest(cq.Query, k, nil)
		b := tree.KNearest(cq.Query, k+1, nil)
		if len(b) < len(a) {
			return false
		}
		for i := range a {
			if a[i].Index != b[i].Index {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickTreeContainsAllPoints(t *testing.T) {
	// Searching with an enormous radius must return every point exactly
	// once (the tree is a permutation of the input, no loss/duplication).
	f := func(cq cloudAndQuery) bool {
		tree := Build(cq.Pts)
		res := tree.Radius(cq.Query, 1e6, nil)
		if len(res) != len(cq.Pts) {
			return false
		}
		seen := make(map[int]bool, len(res))
		for _, nb := range res {
			if seen[nb.Index] {
				return false
			}
			seen[nb.Index] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
