// Package kdtree implements the canonical KD-tree of the paper (§4.1): a
// binary search tree over k-dimensional points (k=3 here) in which every
// node stores one point and implicitly defines a splitting hyperplane.
// Search prunes any sub-tree whose bounding half-space cannot contain a
// better answer than the current one.
//
// Point cloud registration uses two search kinds (paper §4.1): radius
// search (all points within r of the query) and nearest-neighbor search.
// Both are provided, plus k-nearest-neighbors, which the feature stages
// (normal estimation with a fixed neighbor count, descriptor support
// regions) use.
//
// Every search can report how many tree nodes it visited via Stats; those
// counts drive the redundancy analysis of Fig. 6 and the baseline cost
// models in internal/baseline.
package kdtree

import (
	"runtime"
	"sort"
	"sync"

	"tigris/internal/cloud"
	"tigris/internal/geom"
)

// Neighbor is one search result: the index of a point in the tree's
// backing slice and its squared distance to the query.
type Neighbor struct {
	Index int
	Dist2 float64
}

// Stats accumulates instrumentation across searches. Not safe for
// concurrent use; give each goroutine its own and merge.
type Stats struct {
	// NodesVisited counts tree nodes whose point-to-query distance was
	// computed.
	NodesVisited int64
	// NodesPruned counts sub-trees skipped by the bounding-plane test.
	NodesPruned int64
	// Queries counts search calls.
	Queries int64
}

// Merge adds other's counts into s.
func (s *Stats) Merge(other Stats) {
	s.NodesVisited += other.NodesVisited
	s.NodesPruned += other.NodesPruned
	s.Queries += other.Queries
}

// node is one tree node. Children are indices into the flat node slice,
// -1 when absent.
type node struct {
	point       int32 // index into the point slice
	left, right int32
	axis        int8
	split       float64 // coordinate of the point along axis
}

// Tree is an immutable KD-tree over an SoA float32 point slab
// (internal/cloud.Slab). The tree keeps a reference to the slab; callers
// must not mutate it afterwards. Coordinates are quantized to float32 on
// ingest and all distance arithmetic runs in float64 on the dequantized
// values, so search results are a deterministic function of the slab and
// the query alone (see the Slab precision contract).
type Tree struct {
	slab       *cloud.Slab
	xs, ys, zs []float32 // the slab's axis slices, cached for traversal
	nodes      []node
	root       int32
}

// dist2 is the traversal kernel: squared float64 distance from q to
// point i, streamed from the per-axis slabs.
func (t *Tree) dist2(q geom.Vec3, i int32) float64 {
	dx := q.X - float64(t.xs[i])
	dy := q.Y - float64(t.ys[i])
	dz := q.Z - float64(t.zs[i])
	return dx*dx + dy*dy + dz*dz
}

// component returns point i's coordinate along axis as float64.
func (t *Tree) component(i int32, axis int) float64 {
	switch axis {
	case 0:
		return float64(t.xs[i])
	case 1:
		return float64(t.ys[i])
	default:
		return float64(t.zs[i])
	}
}

// buildSpawnMin is the smallest subtree worth a fresh goroutine during
// construction: below it the per-level sort is cheaper than scheduling.
const buildSpawnMin = 4096

// buildSpawnDepth bounds how many recursion levels may fork: 2^depth
// concurrent subtree builds saturate the machine without goroutine
// explosion on deep trees.
func buildSpawnDepth() int {
	w := runtime.NumCPU()
	d := 0
	for 1<<d < w {
		d++
	}
	return d + 1
}

// Build constructs a balanced KD-tree by recursive median split along the
// widest-spread axis, the strategy FLANN and PCL use for point clouds.
// Build is O(n log² n) from the per-level sorts.
//
// Construction parallelizes: sibling subtrees sort disjoint index ranges
// and are built concurrently to a bounded spawn depth. Because a KD
// subtree over n points holds exactly n nodes, every recursion's slot
// range in the preorder node array is known up front, so workers write
// disjoint, deterministic slots — the resulting tree is bit-identical to
// a sequential build (the Fig. 4b "construction" bar shrinks with cores,
// nothing else changes).
// Build quantizes pts into a fresh slab and
// builds over it; BuildSlab builds zero-copy over an existing slab.
func Build(pts []geom.Vec3) *Tree {
	return BuildSlab(cloud.SlabFromPoints(pts))
}

// BuildSlab constructs the tree directly over an SoA slab without
// copying the coordinates. The slab must not be mutated afterwards.
func BuildSlab(s *cloud.Slab) *Tree {
	t := &Tree{slab: s, xs: s.Xs, ys: s.Ys, zs: s.Zs, root: -1}
	n := s.Len()
	if n == 0 {
		return t
	}
	t.nodes = make([]node, n)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	t.root = 0
	t.buildAt(idx, 0, buildSpawnDepth())
	return t
}

// buildAt constructs the subtree over idx (non-empty) into the preorder
// slot range [at, at+len(idx)): the median at `at`, the left subtree in
// the next mid slots, the right subtree after it. spawn > 0 allows
// forking the left child onto its own goroutine.
func (t *Tree) buildAt(idx []int32, at int32, spawn int) {
	axis := widestAxis(t.xs, t.ys, t.zs, idx)
	// Median split: sort by the chosen axis (a contiguous float32 load
	// per comparison — the SoA layout's construction win); ties are
	// broken by index so construction is deterministic. Comparing the
	// float32 values directly orders identically to comparing their
	// float64 dequantizations.
	ax := axisSlice(t.xs, t.ys, t.zs, axis)
	sort.Slice(idx, func(a, b int) bool {
		pa := ax[idx[a]]
		pb := ax[idx[b]]
		if pa != pb {
			return pa < pb
		}
		return idx[a] < idx[b]
	})
	mid := len(idx) / 2
	n := node{
		point: idx[mid],
		axis:  int8(axis),
		split: float64(ax[idx[mid]]),
		left:  -1,
		right: -1,
	}
	if mid > 0 {
		n.left = at + 1
	}
	if len(idx)-mid-1 > 0 {
		n.right = at + 1 + int32(mid)
	}
	t.nodes[at] = n
	left, right := idx[:mid], idx[mid+1:]
	if spawn > 0 && len(idx) >= buildSpawnMin && n.left >= 0 && n.right >= 0 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.buildAt(left, n.left, spawn-1)
		}()
		t.buildAt(right, n.right, spawn-1)
		wg.Wait()
		return
	}
	if n.left >= 0 {
		t.buildAt(left, n.left, spawn)
	}
	if n.right >= 0 {
		t.buildAt(right, n.right, spawn)
	}
}

// axisSlice selects the per-axis coordinate slab.
func axisSlice(xs, ys, zs []float32, axis int) []float32 {
	switch axis {
	case 0:
		return xs
	case 1:
		return ys
	default:
		return zs
	}
}

// widestAxis returns the axis with the largest coordinate spread over
// the indexed points, scanning each axis slab independently (three
// sequential float32 streams instead of one strided struct walk).
func widestAxis(xs, ys, zs []float32, idx []int32) int {
	lox, hix := xs[idx[0]], xs[idx[0]]
	loy, hiy := ys[idx[0]], ys[idx[0]]
	loz, hiz := zs[idx[0]], zs[idx[0]]
	for _, i := range idx[1:] {
		if v := xs[i]; v < lox {
			lox = v
		} else if v > hix {
			hix = v
		}
		if v := ys[i]; v < loy {
			loy = v
		} else if v > hiy {
			hiy = v
		}
		if v := zs[i]; v < loz {
			loz = v
		} else if v > hiz {
			hiz = v
		}
	}
	sx, sy, sz := hix-lox, hiy-loy, hiz-loz
	switch {
	case sx >= sy && sx >= sz:
		return 0
	case sy >= sz:
		return 1
	default:
		return 2
	}
}

// Len returns the number of points in the tree.
func (t *Tree) Len() int { return len(t.xs) }

// Slab exposes the backing SoA point slab (read-only by convention).
func (t *Tree) Slab() *cloud.Slab { return t.slab }

// At dequantizes point i (the value every search distance was computed
// against).
func (t *Tree) At(i int) geom.Vec3 { return t.slab.At(i) }

// Points materializes the dequantized points as a fresh AoS slice — an
// O(n) copy for diagnostics and tests; hot paths use Slab or At.
func (t *Tree) Points() []geom.Vec3 { return t.slab.Points() }

// Height returns the height of the tree (0 for a single node, -1 empty).
func (t *Tree) Height() int { return t.height(t.root) }

func (t *Tree) height(n int32) int {
	if n < 0 {
		return -1
	}
	hl := t.height(t.nodes[n].left)
	hr := t.height(t.nodes[n].right)
	if hl > hr {
		return hl + 1
	}
	return hr + 1
}

// Nearest returns the nearest neighbor to q, or ok=false for an empty
// tree. stats may be nil.
func (t *Tree) Nearest(q geom.Vec3, stats *Stats) (Neighbor, bool) {
	if t.root < 0 {
		return Neighbor{}, false
	}
	if stats != nil {
		stats.Queries++
	}
	best := Neighbor{Index: -1, Dist2: 1e308}
	t.nearest(t.root, q, &best, stats)
	return best, best.Index >= 0
}

func (t *Tree) nearest(ni int32, q geom.Vec3, best *Neighbor, stats *Stats) {
	n := &t.nodes[ni]
	if stats != nil {
		stats.NodesVisited++
	}
	d2 := t.dist2(q, n.point)
	if d2 < best.Dist2 {
		*best = Neighbor{Index: int(n.point), Dist2: d2}
	}
	diff := q.Component(int(n.axis)) - n.split
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	if near >= 0 {
		t.nearest(near, q, best, stats)
	}
	if far >= 0 {
		// The far half-space can only help if the splitting plane is closer
		// than the current best.
		if diff*diff < best.Dist2 {
			t.nearest(far, q, best, stats)
		} else if stats != nil {
			stats.NodesPruned++
		}
	}
}

// KNearest returns the k nearest neighbors to q ordered by increasing
// distance. Fewer than k are returned when the tree is smaller than k.
func (t *Tree) KNearest(q geom.Vec3, k int, stats *Stats) []Neighbor {
	return t.KNearestInto(q, k, nil, stats)
}

// KNearestInto is KNearest answering into buf (reset to length 0), so
// callers that recycle result slabs avoid a fresh allocation per query.
// The slab doubles as the candidate heap and is drained in place into
// ascending order, so the returned slice (possibly a regrown replacement
// for buf) carries results identical to KNearest.
func (t *Tree) KNearestInto(q geom.Vec3, k int, buf []Neighbor, stats *Stats) []Neighbor {
	if t.root < 0 || k <= 0 {
		return nil
	}
	if stats != nil {
		stats.Queries++
	}
	h := maxHeap(buf[:0])
	if cap(h) < k && k <= len(t.xs) {
		h = make(maxHeap, 0, k)
	}
	t.kNearest(t.root, q, k, &h, stats)
	return drainHeapAscending(h)
}

func (t *Tree) kNearest(ni int32, q geom.Vec3, k int, h *maxHeap, stats *Stats) {
	n := &t.nodes[ni]
	if stats != nil {
		stats.NodesVisited++
	}
	d2 := t.dist2(q, n.point)
	if len(*h) < k {
		h.push(Neighbor{Index: int(n.point), Dist2: d2})
	} else if d2 < (*h)[0].Dist2 {
		h.replaceTop(Neighbor{Index: int(n.point), Dist2: d2})
	}
	diff := q.Component(int(n.axis)) - n.split
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	if near >= 0 {
		t.kNearest(near, q, k, h, stats)
	}
	if far >= 0 {
		if len(*h) < k || diff*diff < (*h)[0].Dist2 {
			t.kNearest(far, q, k, h, stats)
		} else if stats != nil {
			stats.NodesPruned++
		}
	}
}

// Radius returns all points within radius r of q (inclusive), ordered by
// increasing distance.
func (t *Tree) Radius(q geom.Vec3, r float64, stats *Stats) []Neighbor {
	return t.RadiusInto(q, r, nil, stats)
}

// RadiusInto is Radius appending into buf (reset to length 0), so callers
// that recycle result slabs avoid a fresh allocation per query. The
// returned slice may be a regrown replacement for buf; results are
// identical to Radius.
func (t *Tree) RadiusInto(q geom.Vec3, r float64, buf []Neighbor, stats *Stats) []Neighbor {
	if t.root < 0 || r < 0 {
		return nil
	}
	if stats != nil {
		stats.Queries++
	}
	res := buf[:0]
	t.radius(t.root, q, r*r, &res, stats)
	SortNeighbors(res)
	return res
}

func (t *Tree) radius(ni int32, q geom.Vec3, r2 float64, res *[]Neighbor, stats *Stats) {
	n := &t.nodes[ni]
	if stats != nil {
		stats.NodesVisited++
	}
	d2 := t.dist2(q, n.point)
	if d2 <= r2 {
		*res = append(*res, Neighbor{Index: int(n.point), Dist2: d2})
	}
	diff := q.Component(int(n.axis)) - n.split
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	if near >= 0 {
		t.radius(near, q, r2, res, stats)
	}
	if far >= 0 {
		if diff*diff <= r2 {
			t.radius(far, q, r2, res, stats)
		} else if stats != nil {
			stats.NodesPruned++
		}
	}
}

// SortNeighbors orders neighbors by ascending (Dist2, Index) — the result
// order every radius search promises. It replaces sort.Slice on the query
// hot path: sort.Slice allocates (an interface header and a closure) on
// every call, and radius search issues millions of calls per streaming
// frame, so an allocation-free dedicated sort is what keeps steady-state
// traversal at zero allocations. The (Dist2, Index) key is a strict total
// order over a result set (each tree point appears at most once), so any
// correct sort yields the identical, deterministic order sort.Slice did.
func SortNeighbors(res []Neighbor) {
	// Quicksort with median-of-three pivoting, recursing into the smaller
	// partition and looping on the larger so stack depth stays O(log n).
	for len(res) > 12 {
		p := partitionNeighbors(res)
		if p < len(res)-p-1 {
			SortNeighbors(res[:p])
			res = res[p+1:]
		} else {
			SortNeighbors(res[p+1:])
			res = res[:p]
		}
	}
	// Insertion sort finishes the small runs.
	for i := 1; i < len(res); i++ {
		for j := i; j > 0 && neighborLess(res[j], res[j-1]); j-- {
			res[j], res[j-1] = res[j-1], res[j]
		}
	}
}

func neighborLess(a, b Neighbor) bool {
	if a.Dist2 != b.Dist2 {
		return a.Dist2 < b.Dist2
	}
	return a.Index < b.Index
}

// partitionNeighbors Hoare-style partitions res around a median-of-three
// pivot moved to the end, returning the pivot's final position.
func partitionNeighbors(res []Neighbor) int {
	hi := len(res) - 1
	mid := hi / 2
	if neighborLess(res[mid], res[0]) {
		res[mid], res[0] = res[0], res[mid]
	}
	if neighborLess(res[hi], res[0]) {
		res[hi], res[0] = res[0], res[hi]
	}
	if neighborLess(res[hi], res[mid]) {
		res[hi], res[mid] = res[mid], res[hi]
	}
	res[mid], res[hi] = res[hi], res[mid]
	pivot := res[hi]
	at := 0
	for i := 0; i < hi; i++ {
		if neighborLess(res[i], pivot) {
			res[i], res[at] = res[at], res[i]
			at++
		}
	}
	res[at], res[hi] = res[hi], res[at]
	return at
}

// maxHeap is a binary max-heap by Dist2, used as the bounded candidate set
// for k-NN.
type maxHeap []Neighbor

func (h *maxHeap) push(n Neighbor) {
	*h = append(*h, n)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].Dist2 >= (*h)[i].Dist2 {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *maxHeap) replaceTop(n Neighbor) {
	(*h)[0] = n
	h.siftDown(0)
}

func (h *maxHeap) pop() Neighbor {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h maxHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h[l].Dist2 > h[largest].Dist2 {
			largest = l
		}
		if r < n && h[r].Dist2 > h[largest].Dist2 {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
