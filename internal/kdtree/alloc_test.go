package kdtree

import (
	"math/rand"
	"testing"

	"tigris/internal/geom"
)

// The traversal hot path must not allocate: a streaming session issues
// millions of queries per frame forever, so any per-query allocation is a
// steady-state leak of GC bandwidth. These assertions pin the
// zero-allocation property for every query kind when the caller recycles
// its result slab (the pipeline stages do, through the search-layer slab
// pool).

func allocTree(n int, seed int64) (*Tree, []geom.Vec3) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.Vec3{X: rng.Float64() * 20, Y: rng.Float64() * 20, Z: rng.Float64() * 5}
	}
	return Build(pts), pts
}

func TestNearestZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	tree, pts := allocTree(4000, 11)
	var stats Stats
	q := pts[17]
	allocs := testing.AllocsPerRun(200, func() {
		tree.Nearest(q, &stats)
	})
	if allocs != 0 {
		t.Errorf("Nearest allocates %.1f times per query, want 0", allocs)
	}
}

func TestRadiusIntoZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	tree, pts := allocTree(4000, 12)
	var stats Stats
	q := pts[42]
	// Warm the slab to the neighborhood size once; afterwards RadiusInto
	// (including its result sort) must be allocation-free.
	buf := tree.RadiusInto(q, 2.0, nil, &stats)
	allocs := testing.AllocsPerRun(200, func() {
		buf = tree.RadiusInto(q, 2.0, buf[:0], &stats)
	})
	if allocs != 0 {
		t.Errorf("RadiusInto allocates %.1f times per query, want 0", allocs)
	}
	if len(buf) == 0 {
		t.Fatal("radius query found nothing; the assertion exercised no work")
	}
}

func TestKNearestIntoZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	tree, pts := allocTree(4000, 13)
	var stats Stats
	q := pts[99]
	buf := tree.KNearestInto(q, 16, nil, &stats)
	allocs := testing.AllocsPerRun(200, func() {
		buf = tree.KNearestInto(q, 16, buf[:0], &stats)
	})
	if allocs != 0 {
		t.Errorf("KNearestInto allocates %.1f times per query, want 0", allocs)
	}
	if len(buf) != 16 {
		t.Fatalf("k-NN returned %d results, want 16", len(buf))
	}
}

func TestBruteRadiusIntoZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	_, pts := allocTree(2000, 14)
	q := pts[7]
	buf := BruteRadiusInto(pts, q, 2.0, nil)
	allocs := testing.AllocsPerRun(100, func() {
		buf = BruteRadiusInto(pts, q, 2.0, buf[:0])
	})
	if allocs != 0 {
		t.Errorf("BruteRadiusInto allocates %.1f times per query, want 0", allocs)
	}
}

// TestSortNeighborsMatchesReference: the dedicated allocation-free sort
// must order exactly like the sort.Slice call it replaced — ascending
// (Dist2, Index) — across sizes covering the insertion-sort cutoff, the
// quicksort path, and heavy Dist2 ties.
func TestSortNeighborsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 3, 12, 13, 64, 257, 1000} {
		for trial := 0; trial < 20; trial++ {
			res := make([]Neighbor, n)
			for i := range res {
				// Coarse distances force Index tie-breaks.
				res[i] = Neighbor{Index: i, Dist2: float64(rng.Intn(8))}
			}
			rng.Shuffle(n, func(i, j int) { res[i], res[j] = res[j], res[i] })
			SortNeighbors(res)
			for i := 1; i < n; i++ {
				if neighborLess(res[i], res[i-1]) {
					t.Fatalf("n=%d: out of order at %d: %v after %v", n, i, res[i], res[i-1])
				}
				if res[i] == res[i-1] {
					t.Fatalf("n=%d: duplicate entry at %d", n, i)
				}
			}
		}
	}
}

// skipUnderRace skips allocation-budget tests when the race detector's
// shadow allocations would break AllocsPerRun.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under -race")
	}
}
