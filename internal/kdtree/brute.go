package kdtree

import (
	"sort"

	"tigris/internal/geom"
)

// The brute-force searches are the ground truth the tree is tested
// against, the degenerate two-stage configuration (top-tree height 0,
// paper §4.1), and the kernel the accelerator back-end runs over leaf
// node-sets.

// BruteNearest scans pts linearly for the nearest neighbor of q.
func BruteNearest(pts []geom.Vec3, q geom.Vec3) (Neighbor, bool) {
	best := Neighbor{Index: -1, Dist2: 1e308}
	for i, p := range pts {
		if d2 := q.Dist2(p); d2 < best.Dist2 {
			best = Neighbor{Index: i, Dist2: d2}
		}
	}
	return best, best.Index >= 0
}

// BruteKNearest scans pts linearly for the k nearest neighbors of q,
// returned in ascending distance order.
func BruteKNearest(pts []geom.Vec3, q geom.Vec3, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := make(maxHeap, 0, k)
	for i, p := range pts {
		d2 := q.Dist2(p)
		if len(h) < k {
			h.push(Neighbor{Index: i, Dist2: d2})
		} else if d2 < h[0].Dist2 {
			h.replaceTop(Neighbor{Index: i, Dist2: d2})
		}
	}
	res := make([]Neighbor, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		res[i] = h.pop()
	}
	return res
}

// BruteRadius scans pts linearly for all points within r of q, returned in
// ascending distance order.
func BruteRadius(pts []geom.Vec3, q geom.Vec3, r float64) []Neighbor {
	r2 := r * r
	var res []Neighbor
	for i, p := range pts {
		if d2 := q.Dist2(p); d2 <= r2 {
			res = append(res, Neighbor{Index: i, Dist2: d2})
		}
	}
	sort.Slice(res, func(a, b int) bool {
		if res[a].Dist2 != res[b].Dist2 {
			return res[a].Dist2 < res[b].Dist2
		}
		return res[a].Index < res[b].Index
	})
	return res
}
