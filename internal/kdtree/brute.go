package kdtree

import (
	"tigris/internal/cloud"
	"tigris/internal/geom"
)

// The brute-force searches are the ground truth the tree is tested
// against, the degenerate two-stage configuration (top-tree height 0,
// paper §4.1), and the kernel the accelerator back-end runs over leaf
// node-sets.
//
// The AoS variants scan a []geom.Vec3 in full float64; to act as an
// oracle for the float32 trees, feed them points snapped with
// geom.Vec3.Quantize32 (then the dequantized arithmetic is
// bit-identical). The slab variants scan an SoA slab directly with the
// same float64-on-dequantized kernel the trees use.

// BruteNearestSlab scans the slab linearly for the nearest neighbor of q.
func BruteNearestSlab(s *cloud.Slab, q geom.Vec3) (Neighbor, bool) {
	best := Neighbor{Index: -1, Dist2: 1e308}
	for i := 0; i < s.Len(); i++ {
		if d2 := s.Dist2(q, i); d2 < best.Dist2 {
			best = Neighbor{Index: i, Dist2: d2}
		}
	}
	return best, best.Index >= 0
}

// BruteKNearestIntoSlab is BruteKNearestInto over an SoA slab.
func BruteKNearestIntoSlab(s *cloud.Slab, q geom.Vec3, k int, buf []Neighbor) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := maxHeap(buf[:0])
	if cap(h) < k && k <= s.Len() {
		h = make(maxHeap, 0, k)
	}
	for i := 0; i < s.Len(); i++ {
		d2 := s.Dist2(q, i)
		if len(h) < k {
			h.push(Neighbor{Index: i, Dist2: d2})
		} else if d2 < h[0].Dist2 {
			h.replaceTop(Neighbor{Index: i, Dist2: d2})
		}
	}
	return drainHeapAscending(h)
}

// BruteRadiusIntoSlab is BruteRadiusInto over an SoA slab.
func BruteRadiusIntoSlab(s *cloud.Slab, q geom.Vec3, r float64, buf []Neighbor) []Neighbor {
	if r < 0 {
		return nil
	}
	r2 := r * r
	res := buf[:0]
	for i := 0; i < s.Len(); i++ {
		if d2 := s.Dist2(q, i); d2 <= r2 {
			res = append(res, Neighbor{Index: i, Dist2: d2})
		}
	}
	SortNeighbors(res)
	return res
}

// BruteNearest scans pts linearly for the nearest neighbor of q.
func BruteNearest(pts []geom.Vec3, q geom.Vec3) (Neighbor, bool) {
	best := Neighbor{Index: -1, Dist2: 1e308}
	for i, p := range pts {
		if d2 := q.Dist2(p); d2 < best.Dist2 {
			best = Neighbor{Index: i, Dist2: d2}
		}
	}
	return best, best.Index >= 0
}

// BruteKNearest scans pts linearly for the k nearest neighbors of q,
// returned in ascending distance order.
func BruteKNearest(pts []geom.Vec3, q geom.Vec3, k int) []Neighbor {
	return BruteKNearestInto(pts, q, k, nil)
}

// BruteKNearestInto is BruteKNearest answering into buf (reset to length
// 0), so callers that recycle result slabs avoid a fresh allocation per
// query. The returned slice may be a regrown replacement for buf; results
// are identical to BruteKNearest.
func BruteKNearestInto(pts []geom.Vec3, q geom.Vec3, k int, buf []Neighbor) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := maxHeap(buf[:0])
	if cap(h) < k && k <= len(pts) {
		h = make(maxHeap, 0, k)
	}
	for i, p := range pts {
		d2 := q.Dist2(p)
		if len(h) < k {
			h.push(Neighbor{Index: i, Dist2: d2})
		} else if d2 < h[0].Dist2 {
			h.replaceTop(Neighbor{Index: i, Dist2: d2})
		}
	}
	return drainHeapAscending(h)
}

// drainHeapAscending empties a max-heap into ascending order in place:
// each pop shrinks the heap to length i, freeing slot i of the shared
// backing array for the popped (i-th largest) element.
func drainHeapAscending(h maxHeap) []Neighbor {
	res := []Neighbor(h)
	for i := len(h) - 1; i >= 0; i-- {
		nb := h.pop()
		res[i] = nb
	}
	return res
}

// BruteRadius scans pts linearly for all points within r of q, returned in
// ascending distance order.
func BruteRadius(pts []geom.Vec3, q geom.Vec3, r float64) []Neighbor {
	return BruteRadiusInto(pts, q, r, nil)
}

// BruteRadiusInto is BruteRadius appending into buf (reset to length 0);
// see RadiusInto for the slab-recycling contract.
func BruteRadiusInto(pts []geom.Vec3, q geom.Vec3, r float64, buf []Neighbor) []Neighbor {
	if r < 0 {
		return nil
	}
	r2 := r * r
	res := buf[:0]
	for i, p := range pts {
		if d2 := q.Dist2(p); d2 <= r2 {
			res = append(res, Neighbor{Index: i, Dist2: d2})
		}
	}
	SortNeighbors(res)
	return res
}
