package kdtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/geom"
)

// seqBuild is the original sequential append-order construction, kept as
// the layout oracle for the parallel builder.
func seqBuild(pts []geom.Vec3) *Tree {
	s := cloud.SlabFromPoints(pts)
	t := &Tree{slab: s, xs: s.Xs, ys: s.Ys, zs: s.Zs}
	if len(pts) > 0 {
		t.nodes = make([]node, 0, len(pts))
	}
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.root = seqBuildRec(t, idx)
	return t
}

func seqBuildRec(t *Tree, idx []int32) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := widestAxis(t.xs, t.ys, t.zs, idx)
	ax := axisSlice(t.xs, t.ys, t.zs, axis)
	sort.Slice(idx, func(a, b int) bool {
		pa := ax[idx[a]]
		pb := ax[idx[b]]
		if pa != pb {
			return pa < pb
		}
		return idx[a] < idx[b]
	})
	mid := len(idx) / 2
	n := node{
		point: idx[mid],
		axis:  int8(axis),
		split: float64(ax[idx[mid]]),
		left:  -1,
		right: -1,
	}
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	left := seqBuildRec(t, idx[:mid])
	right := seqBuildRec(t, idx[mid+1:])
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

func randomPoints(n int, seed int64) []geom.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V3(rng.Float64()*50, rng.Float64()*50, rng.Float64()*5)
	}
	return pts
}

// TestParallelBuildLayoutIdentical asserts the parallel Build produces
// the exact preorder node array of the sequential construction, at sizes
// both below and well above the spawn threshold.
func TestParallelBuildLayoutIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 1000, buildSpawnMin * 4} {
		pts := randomPoints(n, int64(n)+3)
		got := Build(pts)
		want := seqBuild(append([]geom.Vec3(nil), pts...))
		if got.root != want.root {
			t.Fatalf("n=%d: root %d != %d", n, got.root, want.root)
		}
		if !reflect.DeepEqual(got.nodes, want.nodes) {
			t.Fatalf("n=%d: parallel build layout differs from sequential", n)
		}
	}
}

// TestParallelBuildSearchEquivalence cross-checks search results between
// parallel-built and sequential-built trees, including visit counts —
// the instrumentation the baseline models consume must not shift.
func TestParallelBuildSearchEquivalence(t *testing.T) {
	pts := randomPoints(buildSpawnMin*2, 9)
	queries := randomPoints(200, 10)
	par := Build(pts)
	seq := seqBuild(append([]geom.Vec3(nil), pts...))
	var sp, ss Stats
	for _, q := range queries {
		a, _ := par.Nearest(q, &sp)
		b, _ := seq.Nearest(q, &ss)
		if a != b {
			t.Fatalf("nearest mismatch: %+v vs %+v", a, b)
		}
		ra := par.Radius(q, 1.5, &sp)
		rb := seq.Radius(q, 1.5, &ss)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("radius mismatch at %v", q)
		}
	}
	if sp != ss {
		t.Fatalf("stats diverged: %+v vs %+v", sp, ss)
	}
}
