package features

import (
	"sync"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/par"
	"tigris/internal/search"
)

// batchBlockSize bounds how many neighborhoods a full-cloud stage
// materializes at once: queries stream through the searcher in blocks,
// each answered by one batch call and consumed by one parallel sweep, so
// peak memory is O(block × neighbors) instead of O(cloud × neighbors)
// on million-point frames. The size is a multiple of
// search.ApproxBatchChunk so the approximate backend's session-chunk
// boundaries — and therefore its results — are identical whether the
// stage issues one big batch or streams blocks.
const batchBlockSize = 32 * search.ApproxBatchChunk

// blockBufs pools the dequantized query block each full-cloud stage
// streams slab points through; one buffer serves a whole stage call, so a
// streaming session's stages run without a per-frame block allocation.
var blockBufs = sync.Pool{
	New: func() any {
		s := make([]geom.Vec3, batchBlockSize)
		return &s
	},
}

// forBlocks streams the slab's points through batch in bounded blocks and
// hands every query's neighbors to fn on the worker pool. Queries are
// dequantized slab coordinates (float64 of the stored float32), so every
// stage queries exactly the values the search structures index. fn
// receives the worker id (stable within one call, for per-worker
// tallies), the global query index, and that query's neighbor list; it
// must write results positionally, which keeps the output bit-identical
// to the sequential per-query loop.
func forBlocks(workers int, s *cloud.Slab, batch func(block []geom.Vec3) [][]kdtree.Neighbor, fn func(worker, i int, nbs []kdtree.Neighbor)) {
	bufp := blockBufs.Get().(*[]geom.Vec3)
	buf := *bufp
	n := s.Len()
	for lo := 0; lo < n; lo += batchBlockSize {
		hi := lo + batchBlockSize
		if hi > n {
			hi = n
		}
		block := buf[:hi-lo]
		for j := range block {
			block[j] = s.At(lo + j)
		}
		nbs := batch(block)
		par.For(hi-lo, workers, func(w, j int) {
			fn(w, lo+j, nbs[j])
		})
		// The sweep consumed every neighbor list; hand the slabs back so
		// the next block (and the next frame of a streaming session)
		// reuses them instead of re-allocating.
		search.RecycleBatch(nbs)
	}
	blockBufs.Put(bufp)
}

// forPointBlocks is forBlocks for callers that already hold an AoS query
// slice (sparse sets like the FPFH support points).
func forPointBlocks(workers int, pts []geom.Vec3, batch func(block []geom.Vec3) [][]kdtree.Neighbor, fn func(worker, i int, nbs []kdtree.Neighbor)) {
	for lo := 0; lo < len(pts); lo += batchBlockSize {
		hi := lo + batchBlockSize
		if hi > len(pts) {
			hi = len(pts)
		}
		nbs := batch(pts[lo:hi])
		par.For(hi-lo, workers, func(w, j int) {
			fn(w, lo+j, nbs[j])
		})
		search.RecycleBatch(nbs)
	}
}

// forRadiusBlocks is forBlocks for the common radius-search shape.
func forRadiusBlocks(s search.Searcher, c *cloud.Slab, r float64, fn func(worker, i int, nbs []kdtree.Neighbor)) {
	forBlocks(s.Parallelism(), c, func(block []geom.Vec3) [][]kdtree.Neighbor {
		return s.RadiusBatch(block, r)
	}, fn)
}

// forRadiusPointBlocks is forPointBlocks for the radius-search shape.
func forRadiusPointBlocks(s search.Searcher, pts []geom.Vec3, r float64, fn func(worker, i int, nbs []kdtree.Neighbor)) {
	forPointBlocks(s.Parallelism(), pts, func(block []geom.Vec3) [][]kdtree.Neighbor {
		return s.RadiusBatch(block, r)
	}, fn)
}
