package features

import "sync"

// descSlabs pools descriptor data slabs (Descriptors.Data). A streaming
// session computes one descriptor matrix per frame and frees it a frame
// later; without pooling that is hundreds of KB of fresh allocation per
// frame for the lifetime of the session (ROADMAP "pool allocations").
var descSlabs = sync.Pool{
	New: func() any {
		s := make([]float64, 0, 4096)
		return &s
	},
}

// newDescriptorData returns a zeroed slab of length n, reusing pooled
// capacity when available. Zeroing is required: the descriptor kernels
// accumulate into their rows with +=.
func newDescriptorData(n int) []float64 {
	p := descSlabs.Get().(*[]float64)
	s := *p
	if cap(s) < n {
		// Keep the pointer box in the pool for its next Get; the backing
		// array is abandoned for a larger one.
		*p = s
		descSlabs.Put(p)
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// RecycleDescriptors hands a descriptor matrix's slab back to the pool.
// The caller must not use d (or any Row view of it) afterwards. Nil or
// empty descriptors are ignored.
func RecycleDescriptors(d *Descriptors) {
	if d == nil || cap(d.Data) == 0 {
		return
	}
	s := d.Data[:0]
	descSlabs.Put(&s)
	d.Data = nil
}

// matchSlabs pools FeatureMatch result slices for FeatureTree's batched
// queries. KPCE issues one (reciprocal: two) NearestBatch per pair
// forever in a streaming session; pooling the result slab closes the
// last per-pair allocation proportional to the key-point count (the PR 4
// follow-up).
var matchSlabs = sync.Pool{
	New: func() any {
		s := make([]FeatureMatch, 0, 256)
		return &s
	},
}

// newMatchSlab returns a length-n FeatureMatch slice from the pool
// (contents unspecified; batch queries overwrite every entry).
func newMatchSlab(n int) []FeatureMatch {
	p := matchSlabs.Get().(*[]FeatureMatch)
	s := *p
	if cap(s) < n {
		*p = s
		matchSlabs.Put(p)
		return make([]FeatureMatch, n)
	}
	return s[:n]
}

// RecycleMatches hands a fully consumed NearestBatch result back to the
// pool. The caller must not use the slice afterwards.
func RecycleMatches(ms []FeatureMatch) {
	if cap(ms) == 0 {
		return
	}
	s := ms[:0]
	matchSlabs.Put(&s)
}
