package features

import (
	"math/rand"
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/search"
)

// cloneSlab copies points (not normals) so two stage runs never share
// normal storage.
func cloneSlab(s *cloud.Slab) *cloud.Slab {
	return cloud.SlabFromPoints(s.Points())
}

// TestEstimateNormalsParallelMatchesSequential: the batched two-sweep
// normal estimation must be bit-identical to the sequential loop for any
// worker count, including the degenerate-point tally.
func TestEstimateNormalsParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	base := boxEdgeCloud(r, 2000)
	for _, method := range []NormalMethod{PlaneSVD, AreaWeighted} {
		ref := cloneSlab(base)
		refS := search.NewKDSearcherSlab(ref)
		refS.SetParallelism(1)
		refDegen := EstimateNormals(ref, refS, NormalConfig{Method: method, SearchRadius: 0.8})

		for _, workers := range []int{2, 8} {
			c := cloneSlab(base)
			s := search.NewKDSearcherSlab(c)
			s.SetParallelism(workers)
			degen := EstimateNormals(c, s, NormalConfig{Method: method, SearchRadius: 0.8})
			if degen != refDegen {
				t.Errorf("%v/p%d: degenerate count %d, want %d", method, workers, degen, refDegen)
			}
			for i := 0; i < c.Len(); i++ {
				if c.NormalAt(i) != ref.NormalAt(i) {
					t.Fatalf("%v/p%d: normal[%d] = %v, want %v", method, workers, i, c.NormalAt(i), ref.NormalAt(i))
				}
			}
		}
	}
}

// TestComputeDescriptorsParallelMatchesSequential: every descriptor's
// batched fan-out (including FPFH's precomputed SPFH table replacing the
// sequential memoization cache) must reproduce the sequential rows.
func TestComputeDescriptorsParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	c, s := descriptorTestCloud(r)
	kps := DetectKeypoints(c, s, KeypointConfig{Method: Harris3D, Radius: 1.0, MaxKeypoints: 60})
	if len(kps) == 0 {
		t.Fatal("no keypoints detected")
	}
	for _, method := range []DescriptorMethod{FPFH, SHOT, SC3D} {
		cfg := DescriptorConfig{Method: method, SearchRadius: 1.2}
		s.SetParallelism(1)
		ref := ComputeDescriptors(c, s, kps, cfg)
		for _, workers := range []int{2, 8} {
			s.SetParallelism(workers)
			got := ComputeDescriptors(c, s, kps, cfg)
			if got.Count() != ref.Count() || got.Dim != ref.Dim {
				t.Fatalf("%v/p%d: shape %dx%d, want %dx%d", method, workers, got.Count(), got.Dim, ref.Count(), ref.Dim)
			}
			for i := range got.Data {
				if got.Data[i] != ref.Data[i] {
					t.Fatalf("%v/p%d: data[%d] = %v, want %v", method, workers, i, got.Data[i], ref.Data[i])
				}
			}
		}
	}
}

// TestDetectKeypointsParallelMatchesSequential: the batched response
// computation must leave the detected key-point list unchanged.
func TestDetectKeypointsParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	c, s := descriptorTestCloud(r)
	for _, method := range []KeypointMethod{Harris3D, SIFT3D} {
		cfg := KeypointConfig{Method: method, Radius: 1.0, Scale: 0.5, MaxKeypoints: 100}
		s.SetParallelism(1)
		ref := DetectKeypoints(c, s, cfg)
		s.SetParallelism(8)
		got := DetectKeypoints(c, s, cfg)
		if len(got) != len(ref) {
			t.Fatalf("%v: %d keypoints, want %d", method, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%v: keypoint[%d] = %d, want %d", method, i, got[i], ref[i])
			}
		}
	}
}

// TestFeatureTreeNearestBatchMatchesSequential covers the KPCE-side batch
// path and its merged metrics.
func TestFeatureTreeNearestBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	c, s := descriptorTestCloud(r)
	kps := DetectKeypoints(c, s, KeypointConfig{Method: Harris3D, Radius: 1.0, MaxKeypoints: 80})
	desc := ComputeDescriptors(c, s, kps, DescriptorConfig{Method: FPFH, SearchRadius: 1.2})
	if desc.Count() < 10 {
		t.Skip("not enough descriptors")
	}
	half := desc.Count() / 2
	index := &Descriptors{Dim: desc.Dim, Data: desc.Data[:half*desc.Dim]}
	queries := make([][]float64, desc.Count()-half)
	for i := range queries {
		queries[i] = desc.Row(half + i)
	}

	ref := NewFeatureTree(index)
	want := make([]FeatureMatch, len(queries))
	for i, q := range queries {
		want[i], _ = ref.Nearest(q)
	}
	for _, workers := range []int{1, 4} {
		tree := NewFeatureTree(index)
		got := tree.NearestBatch(queries, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("p%d: match[%d] = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
		if tree.Queries != int64(len(queries)) {
			t.Errorf("p%d: queries = %d, want %d", workers, tree.Queries, len(queries))
		}
		if tree.Visited != ref.Visited {
			t.Errorf("p%d: visited = %d, want %d", workers, tree.Visited, ref.Visited)
		}
	}
}
