//go:build !race

package features

// raceEnabled reports whether the race detector is active: its shadow
// allocations break AllocsPerRun budgets, so the allocation tests skip
// themselves under -race.
const raceEnabled = false
