package features

import (
	"math"
	"sort"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/linalg"
	"tigris/internal/par"
	"tigris/internal/search"
)

// KeypointMethod selects the key-point detector (Tbl. 1, Key-point
// Detection row). NARF is substituted by the SIFT-style detector; see
// DESIGN.md.
type KeypointMethod int

const (
	// Harris3D extends the Harris corner detector to 3D using the
	// covariance of surface normals in a support region.
	Harris3D KeypointMethod = iota
	// SIFT3D detects blobs as extrema of a difference-of-densities scale
	// space, the point cloud analog of SIFT's difference of Gaussians.
	SIFT3D
)

// String implements fmt.Stringer.
func (m KeypointMethod) String() string {
	switch m {
	case Harris3D:
		return "Harris3D"
	case SIFT3D:
		return "SIFT3D"
	default:
		return "UnknownKeypointMethod"
	}
}

// KeypointConfig parameterizes key-point detection. Scale (SIFT) and
// Radius (Harris) are the Tbl. 1 knobs.
type KeypointConfig struct {
	Method KeypointMethod
	// Radius is the Harris support radius in meters (default 1.0).
	Radius float64
	// HarrisK is the Harris response trace weight (default 0.04).
	HarrisK float64
	// Scale is the SIFT base scale in meters (default 0.5).
	Scale float64
	// Octaves is the number of SIFT octaves (default 3).
	Octaves int
	// ResponseQuantile keeps points whose response exceeds this quantile
	// of all responses (default 0.90); the non-max suppression radius is
	// the detector's support radius.
	ResponseQuantile float64
	// MaxKeypoints truncates the final list (0 = unlimited).
	MaxKeypoints int
}

func (c *KeypointConfig) defaults() {
	if c.Radius == 0 {
		c.Radius = 1.0
	}
	if c.HarrisK == 0 {
		c.HarrisK = 0.04
	}
	if c.Scale == 0 {
		c.Scale = 0.5
	}
	if c.Octaves == 0 {
		c.Octaves = 3
	}
	if c.ResponseQuantile == 0 {
		c.ResponseQuantile = 0.90
	}
}

// DetectKeypoints returns indices into c of the detected key-points,
// ordered by decreasing response. The slab must have normals when the
// Harris detector is selected.
func DetectKeypoints(c *cloud.Slab, s search.Searcher, cfg KeypointConfig) []int {
	cfg.defaults()
	var responses []float64
	var suppressRadius float64
	switch cfg.Method {
	case SIFT3D:
		responses = siftResponses(c, s, cfg)
		suppressRadius = cfg.Scale * 2
	default:
		responses = harrisResponses(c, s, cfg)
		suppressRadius = cfg.Radius
	}
	return selectKeypoints(c, s, responses, suppressRadius, cfg)
}

// harrisResponses computes a Harris3D response over the covariance C of
// surface normals in each point's support region. The classic
// det(C) − k·trace(C)² response is degenerate on low-noise data (an edge's
// normal covariance is exactly rank 1, so det = 0 and the response is
// non-positive everywhere); we therefore use the trace-dominant variant
// trace(C) + det(C)/k', which ranks edges and corners above planes using
// the same covariance statistic. PCL's Harris3D offers equivalent
// alternative response functions (NOBLE, CURVATURE) for the same reason.
func harrisResponses(c *cloud.Slab, s search.Searcher, cfg KeypointConfig) []float64 {
	res := make([]float64, c.Len())
	forRadiusBlocks(s, c, cfg.Radius, func(_, i int, nbs []kdtree.Neighbor) {
		if len(nbs) < 5 {
			return
		}
		var mean geom.Vec3
		for _, nb := range nbs {
			mean = mean.Add(c.NormalAt(nb.Index))
		}
		mean = mean.Scale(1 / float64(len(nbs)))
		var cov geom.Mat3
		for _, nb := range nbs {
			d := c.NormalAt(nb.Index).Sub(mean)
			cov = cov.Add(geom.OuterProduct(d, d))
		}
		cov = cov.Scale(1 / float64(len(nbs)))
		res[i] = cov.Trace() + cov.Det()/cfg.HarrisK
	})
	return res
}

// siftResponses builds a difference-of-densities scale space: at each
// scale σ, the Gaussian-weighted neighbor density is computed, and the
// response is the maximum absolute difference between adjacent scales.
// Blob-like structure (curbs, poles, car corners) produces large
// differences; flat regions produce nearly scale-invariant densities.
func siftResponses(c *cloud.Slab, s search.Searcher, cfg KeypointConfig) []float64 {
	res := make([]float64, c.Len())
	scales := make([]float64, cfg.Octaves+1)
	for o := range scales {
		scales[o] = cfg.Scale * math.Pow(2, float64(o)*0.5)
	}
	// One scratch density buffer per worker: the worker id is stable
	// within each parallel sweep, so reuse is race-free without the
	// per-point allocation a closure-local buffer would cost.
	scratch := make([][]float64, par.Workers(s.Parallelism()))
	for w := range scratch {
		scratch[w] = make([]float64, len(scales))
	}
	// One search at the largest scale serves every smaller scale.
	forRadiusBlocks(s, c, scales[len(scales)-1], func(w, i int, nbs []kdtree.Neighbor) {
		density := scratch[w]
		for si, sigma := range scales {
			var d float64
			inv := 1 / (2 * sigma * sigma)
			for _, nb := range nbs {
				d += math.Exp(-nb.Dist2 * inv)
			}
			density[si] = d / (sigma * sigma * sigma) // scale normalization
		}
		best := 0.0
		for si := 1; si < len(density); si++ {
			if diff := math.Abs(density[si] - density[si-1]); diff > best {
				best = diff
			}
		}
		res[i] = best
	})
	return res
}

// selectKeypoints thresholds responses at the configured quantile and
// applies non-maximum suppression within suppressRadius.
func selectKeypoints(c *cloud.Slab, s search.Searcher, responses []float64, suppressRadius float64, cfg KeypointConfig) []int {
	positive := make([]float64, 0, len(responses))
	for _, r := range responses {
		if r > 0 {
			positive = append(positive, r)
		}
	}
	if len(positive) == 0 {
		return nil
	}
	sort.Float64s(positive)
	qIdx := int(cfg.ResponseQuantile * float64(len(positive)))
	if qIdx >= len(positive) {
		qIdx = len(positive) - 1
	}
	threshold := positive[qIdx]

	// Candidates above threshold, strongest first.
	cand := make([]int, 0, len(responses)/8)
	for i, r := range responses {
		if r >= threshold && r > 0 {
			cand = append(cand, i)
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if responses[cand[a]] != responses[cand[b]] {
			return responses[cand[a]] > responses[cand[b]]
		}
		return cand[a] < cand[b]
	})

	suppressed := make([]bool, len(responses))
	var out []int
	for _, i := range cand {
		if suppressed[i] {
			continue
		}
		out = append(out, i)
		if cfg.MaxKeypoints > 0 && len(out) >= cfg.MaxKeypoints {
			break
		}
		for _, nb := range s.Radius(c.At(i), suppressRadius) {
			suppressed[nb.Index] = true
		}
	}
	return out
}

// Curvature returns the surface-variation measure λ0/(λ0+λ1+λ2) for each
// point, a cheap edge/cornerness signal exposed for diagnostics and
// examples.
func Curvature(c *cloud.Slab, s search.Searcher, radius float64) []float64 {
	out := make([]float64, c.Len())
	forRadiusBlocks(s, c, radius, func(_, i int, nbs []kdtree.Neighbor) {
		if len(nbs) < 4 {
			return
		}
		var centroid geom.Vec3
		for _, nb := range nbs {
			centroid = centroid.Add(c.At(nb.Index))
		}
		centroid = centroid.Scale(1 / float64(len(nbs)))
		var cov geom.Mat3
		for _, nb := range nbs {
			d := c.At(nb.Index).Sub(centroid)
			cov = cov.Add(geom.OuterProduct(d, d))
		}
		eig := linalg.EigenSym3(cov)
		sum := eig.Values[0] + eig.Values[1] + eig.Values[2]
		if sum > 0 {
			out[i] = eig.Values[0] / sum
		}
	})
	return out
}
