package features

import (
	"math"
	"math/rand"
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/search"
)

// planeCloud samples a noisy plane patch with the given unit normal.
func planeCloud(r *rand.Rand, n int, normal geom.Vec3, noise float64) *cloud.Slab {
	normal = normal.Normalize()
	u, v := normal.OrthoBasis()
	pts := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		p := u.Scale(r.Float64()*10 - 5).
			Add(v.Scale(r.Float64()*10 - 5)).
			Add(normal.Scale(r.NormFloat64() * noise))
		pts = append(pts, p)
	}
	return cloud.SlabFromPoints(pts)
}

// boxEdgeCloud samples two perpendicular faces meeting at an edge, plus
// flat surroundings; the edge points are the expected key-points.
func boxEdgeCloud(r *rand.Rand, n int) *cloud.Slab {
	pts := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		t := r.Float64()
		switch {
		case t < 0.45: // floor z=0
			pts = append(pts, geom.Vec3{X: r.Float64()*10 - 5, Y: r.Float64()*10 - 5, Z: 0})
		case t < 0.9: // wall x=2
			pts = append(pts, geom.Vec3{X: 2, Y: r.Float64()*10 - 5, Z: r.Float64() * 3})
		default: // edge line x=2, z=0
			pts = append(pts, geom.Vec3{X: 2, Y: r.Float64()*10 - 5, Z: 0})
		}
	}
	return cloud.SlabFromPoints(pts)
}

func TestPlaneSVDNormalsOnPlane(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, want := range []geom.Vec3{{Z: 1}, {X: 1}, {X: 1, Y: 1, Z: 1}} {
		want = want.Normalize()
		c := planeCloud(r, 600, want, 0.005)
		s := search.NewKDSearcherSlab(c)
		cfg := NormalConfig{Method: PlaneSVD, SearchRadius: 1.2, Viewpoint: want.Scale(100)}
		deg := EstimateNormals(c, s, cfg)
		if deg > 30 {
			t.Fatalf("too many degenerate normals: %d", deg)
		}
		good := 0
		for i := 0; i < c.Len(); i++ {
			if math.Abs(c.NormalAt(i).Dot(want)) > 0.99 {
				good++
			}
		}
		if frac := float64(good) / float64(c.Len()); frac < 0.9 {
			t.Errorf("normal %v: only %.2f aligned with plane", want, frac)
		}
	}
}

func TestAreaWeightedNormalsOnPlane(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	want := geom.Vec3{Z: 1}
	c := planeCloud(r, 500, want, 0.005)
	s := search.NewKDSearcherSlab(c)
	cfg := NormalConfig{Method: AreaWeighted, SearchRadius: 1.2, Viewpoint: geom.Vec3{Z: 100}}
	EstimateNormals(c, s, cfg)
	good := 0
	for i := 0; i < c.Len(); i++ {
		if c.NormalAt(i).Dot(want) > 0.98 {
			good++
		}
	}
	if frac := float64(good) / float64(c.Len()); frac < 0.85 {
		t.Errorf("only %.2f area-weighted normals aligned", frac)
	}
}

func TestNormalsOrientedTowardViewpoint(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := planeCloud(r, 300, geom.Vec3{Z: 1}, 0.002)
	s := search.NewKDSearcherSlab(c)
	viewpoint := geom.Vec3{Z: 50}
	EstimateNormals(c, s, NormalConfig{SearchRadius: 1.2, Viewpoint: viewpoint})
	for i := 0; i < c.Len(); i++ {
		if c.NormalAt(i).Dot(viewpoint.Sub(c.At(i))) < 0 {
			t.Fatalf("normal %d points away from viewpoint", i)
		}
	}
}

func TestNormalsUnitLength(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	c := planeCloud(r, 200, geom.Vec3{X: 1, Z: 2}, 0.01)
	s := search.NewKDSearcherSlab(c)
	for _, method := range []NormalMethod{PlaneSVD, AreaWeighted} {
		EstimateNormals(c, s, NormalConfig{Method: method, SearchRadius: 1.5})
		for i := 0; i < c.Len(); i++ {
			if math.Abs(c.NormalAt(i).Norm()-1) > 1e-6 {
				t.Fatalf("%v: normal %d not unit: %v", method, i, c.NormalAt(i).Norm())
			}
		}
	}
}

func TestSparseNormalsDegenerate(t *testing.T) {
	c := cloud.SlabFromPoints([]geom.Vec3{{X: 0}, {X: 100}, {X: 200}})
	s := search.NewKDSearcherSlab(c)
	deg := EstimateNormals(c, s, NormalConfig{SearchRadius: 0.5})
	if deg != 3 {
		t.Errorf("expected 3 degenerate normals, got %d", deg)
	}
	for i := 0; i < c.Len(); i++ {
		if c.NormalAt(i) != (geom.Vec3{Z: 1}) {
			t.Error("degenerate normal should default to +Z")
		}
	}
}

func TestHarrisDetectsEdges(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := boxEdgeCloud(r, 3000)
	s := search.NewKDSearcherSlab(c)
	EstimateNormals(c, s, NormalConfig{SearchRadius: 0.8})
	kps := DetectKeypoints(c, s, KeypointConfig{Method: Harris3D, Radius: 0.8, ResponseQuantile: 0.95})
	if len(kps) == 0 {
		t.Fatal("no keypoints detected")
	}
	// Keypoints should concentrate near the edge x=2 (where normals vary).
	nearEdge := 0
	for _, i := range kps {
		p := c.At(i)
		if math.Abs(p.X-2) < 1.0 {
			nearEdge++
		}
	}
	if frac := float64(nearEdge) / float64(len(kps)); frac < 0.7 {
		t.Errorf("only %.2f of Harris keypoints near the edge", frac)
	}
}

func TestSIFTProducesKeypoints(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	c := boxEdgeCloud(r, 2000)
	s := search.NewKDSearcherSlab(c)
	EstimateNormals(c, s, NormalConfig{SearchRadius: 0.8})
	kps := DetectKeypoints(c, s, KeypointConfig{Method: SIFT3D, Scale: 0.4, ResponseQuantile: 0.9})
	if len(kps) == 0 {
		t.Fatal("SIFT detected nothing")
	}
	if len(kps) > c.Len()/2 {
		t.Errorf("SIFT selected %d of %d points; not sparse", len(kps), c.Len())
	}
}

func TestKeypointNonMaxSuppression(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := boxEdgeCloud(r, 2000)
	s := search.NewKDSearcherSlab(c)
	EstimateNormals(c, s, NormalConfig{SearchRadius: 0.8})
	const radius = 1.0
	kps := DetectKeypoints(c, s, KeypointConfig{Method: Harris3D, Radius: radius, ResponseQuantile: 0.9})
	// No two keypoints may be within the suppression radius; the edge
	// is a line so Y separation is what matters.
	for i := 0; i < len(kps); i++ {
		for j := i + 1; j < len(kps); j++ {
			if c.At(kps[i]).Dist(c.At(kps[j])) < radius-1e-9 {
				t.Fatalf("keypoints %d and %d within suppression radius", kps[i], kps[j])
			}
		}
	}
}

func TestMaxKeypointsHonored(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	c := boxEdgeCloud(r, 1500)
	s := search.NewKDSearcherSlab(c)
	EstimateNormals(c, s, NormalConfig{SearchRadius: 0.8})
	kps := DetectKeypoints(c, s, KeypointConfig{Method: Harris3D, MaxKeypoints: 5})
	if len(kps) > 5 {
		t.Errorf("MaxKeypoints ignored: %d", len(kps))
	}
}

func TestDescriptorDims(t *testing.T) {
	if FPFH.Dim() != 33 {
		t.Errorf("FPFH dim = %d", FPFH.Dim())
	}
	if SHOT.Dim() != 352 {
		t.Errorf("SHOT dim = %d", SHOT.Dim())
	}
	if SC3D.Dim() != 160 {
		t.Errorf("3DSC dim = %d", SC3D.Dim())
	}
}

// descriptorTestCloud builds a structured cloud with normals for
// descriptor tests.
func descriptorTestCloud(r *rand.Rand) (*cloud.Slab, *search.KDSearcher) {
	c := boxEdgeCloud(r, 2500)
	s := search.NewKDSearcherSlab(c)
	EstimateNormals(c, s, NormalConfig{SearchRadius: 0.8})
	return c, s
}

func TestDescriptorsFiniteAndNonzero(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	c, s := descriptorTestCloud(r)
	kps := []int{10, 100, 500, 900}
	for _, method := range []DescriptorMethod{FPFH, SHOT, SC3D} {
		d := ComputeDescriptors(c, s, kps, DescriptorConfig{Method: method, SearchRadius: 1.2})
		if d.Count() != len(kps) {
			t.Fatalf("%v: count = %d", method, d.Count())
		}
		for i := 0; i < d.Count(); i++ {
			var sum float64
			for _, v := range d.Row(i) {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%v: non-finite descriptor entry", method)
				}
				sum += math.Abs(v)
			}
			if sum == 0 {
				t.Fatalf("%v: zero descriptor for keypoint %d", method, i)
			}
		}
	}
}

func TestFPFHInvariantToRigidTransform(t *testing.T) {
	// Darboux angles are relative quantities, so FPFH must be (nearly)
	// invariant under a rigid transform of the whole cloud.
	r := rand.New(rand.NewSource(10))
	c, s := descriptorTestCloud(r)
	kps := []int{50, 400, 800}
	d1 := ComputeDescriptors(c, s, kps, DescriptorConfig{Method: FPFH, SearchRadius: 1.2})

	tr := geom.Transform{R: geom.RotZ(0.6).Mul(geom.RotX(0.2)), T: geom.Vec3{X: 5, Y: -3, Z: 2}}
	moved := c.Clone()
	moved.TransformInPlace(tr)
	s2 := search.NewKDSearcherSlab(moved)
	d2 := ComputeDescriptors(moved, s2, kps, DescriptorConfig{Method: FPFH, SearchRadius: 1.2})

	for i := range kps {
		var diff, norm float64
		for j := 0; j < d1.Dim; j++ {
			diff += math.Abs(d1.Row(i)[j] - d2.Row(i)[j])
			norm += math.Abs(d1.Row(i)[j])
		}
		if diff/norm > 0.05 {
			t.Errorf("FPFH changed by %.1f%% under rigid transform", 100*diff/norm)
		}
	}
}

func TestDescriptorsDiscriminative(t *testing.T) {
	// A point on the flat floor and a point on the edge must have clearly
	// different descriptors; two nearby points on the same flat floor must
	// be similar. Use FPFH (the most standard choice).
	r := rand.New(rand.NewSource(11))
	c, s := descriptorTestCloud(r)
	var floorA, floorB, edge int = -1, -1, -1
	for i := 0; i < c.Len(); i++ {
		p := c.At(i)
		switch {
		case floorA < 0 && p.Z == 0 && p.X < -2:
			floorA = i
		case floorB < 0 && p.Z == 0 && p.X < -1 && p.X > -2:
			floorB = i
		case edge < 0 && p.Z == 0 && p.X == 2:
			edge = i
		}
	}
	if floorA < 0 || floorB < 0 || edge < 0 {
		t.Skip("cloud did not produce the required sample points")
	}
	d := ComputeDescriptors(c, s, []int{floorA, floorB, edge}, DescriptorConfig{Method: FPFH, SearchRadius: 1.0})
	dFloor := l2dist2(d.Row(0), d.Row(1))
	dEdge := l2dist2(d.Row(0), d.Row(2))
	if dEdge < dFloor*2 {
		t.Errorf("edge descriptor not discriminative: floor-floor %v, floor-edge %v", dFloor, dEdge)
	}
}

func TestFeatureTreeMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, dim := range []int{8, 33} {
		d := &Descriptors{Dim: dim, Data: make([]float64, dim*300)}
		for i := range d.Data {
			d.Data[i] = r.Float64()
		}
		tree := NewFeatureTree(d)
		for trial := 0; trial < 30; trial++ {
			q := make([]float64, dim)
			for i := range q {
				q[i] = r.Float64()
			}
			got, ok := tree.Nearest(q)
			want, _ := BruteNearestFeature(d, q)
			if !ok || math.Abs(got.Dist2-want.Dist2) > 1e-12 {
				t.Fatalf("dim %d: tree %v vs brute %v", dim, got, want)
			}
		}
	}
}

func TestFeatureTreeEmpty(t *testing.T) {
	tree := NewFeatureTree(&Descriptors{Dim: 4})
	if _, ok := tree.Nearest([]float64{0, 0, 0, 0}); ok {
		t.Error("empty feature tree returned match")
	}
}

func TestCurvatureFlatVsEdge(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	c := boxEdgeCloud(r, 2000)
	s := search.NewKDSearcherSlab(c)
	curv := Curvature(c, s, 0.8)
	var flatSum, flatN, edgeSum, edgeN float64
	for i := 0; i < c.Len(); i++ {
		p := c.At(i)
		if p.Z == 0 && p.X < 0 {
			flatSum += curv[i]
			flatN++
		}
		if p.X == 2 && p.Z == 0 {
			edgeSum += curv[i]
			edgeN++
		}
	}
	if flatN == 0 || edgeN == 0 {
		t.Skip("insufficient samples")
	}
	if edgeSum/edgeN <= flatSum/flatN {
		t.Errorf("edge curvature %.4f not above flat %.4f", edgeSum/edgeN, flatSum/flatN)
	}
}

func TestKNeighborNormals(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	want := geom.Vec3{Z: 1}
	c := planeCloud(r, 400, want, 0.005)
	s := search.NewKDSearcherSlab(c)
	deg := EstimateNormals(c, s, NormalConfig{KNeighbors: 12, Viewpoint: geom.Vec3{Z: 100}})
	if deg != 0 {
		t.Errorf("k-NN neighborhoods should never be degenerate on a dense plane: %d", deg)
	}
	good := 0
	for i := 0; i < c.Len(); i++ {
		if c.NormalAt(i).Dot(want) > 0.99 {
			good++
		}
	}
	if frac := float64(good) / float64(c.Len()); frac < 0.9 {
		t.Errorf("only %.2f k-NN normals aligned with plane", frac)
	}
}

func TestKNeighborNormalsSparseRobust(t *testing.T) {
	// The adaptive property: points far apart still get plausible normals
	// with k-NN support, where a fixed radius finds nothing.
	c := cloud.SlabFromPoints([]geom.Vec3{
		{X: 0}, {X: 10}, {X: 20}, {X: 0, Y: 10}, {X: 10, Y: 10}, {X: 20, Y: 10},
	})
	s := search.NewKDSearcherSlab(c)
	deg := EstimateNormals(c, s, NormalConfig{KNeighbors: 4, MinNeighbors: 3})
	if deg != 0 {
		t.Errorf("k-NN normals degenerate on sparse plane: %d", deg)
	}
	for i := 0; i < c.Len(); i++ {
		if n := c.NormalAt(i); math.Abs(n.Dot(geom.Vec3{Z: 1})) < 0.99 {
			t.Errorf("sparse point %d normal %v not plane-aligned", i, n)
		}
	}
}

func BenchmarkEstimateNormals(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	c := boxEdgeCloud(r, 3000)
	s := search.NewKDSearcherSlab(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateNormals(c, s, NormalConfig{SearchRadius: 0.8})
	}
}

func BenchmarkFPFHDescriptors(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	c := boxEdgeCloud(r, 3000)
	s := search.NewKDSearcherSlab(c)
	EstimateNormals(c, s, NormalConfig{SearchRadius: 0.8})
	kps := make([]int, 64)
	for i := range kps {
		kps[i] = i * 40
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeDescriptors(c, s, kps, DescriptorConfig{Method: FPFH, SearchRadius: 1.0})
	}
}

func BenchmarkHarrisKeypoints(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	c := boxEdgeCloud(r, 3000)
	s := search.NewKDSearcherSlab(c)
	EstimateNormals(c, s, NormalConfig{SearchRadius: 0.8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectKeypoints(c, s, KeypointConfig{Method: Harris3D, Radius: 0.8})
	}
}
