package features

import (
	"math"
	"sort"
	"time"

	"tigris/internal/par"
)

// FeatureTree is a KD-tree over high-dimensional descriptor vectors, used
// by the Key-Point Correspondence Estimation stage to find feature-space
// nearest neighbors (paper Fig. 2: KPCE "establishes the correspondence
// ... if t's feature is the nearest neighbor of s' feature in the feature
// space"). KPCE counts toward the pipeline's KD-tree search time just like
// the 3D searches.
//
// In high dimensions KD-tree pruning weakens and search degenerates toward
// a linear scan; that is the realistic behavior of the reference pipelines
// too and is why the paper calls KPCE sparse-data search.
//
// A FeatureTree is not safe for concurrent use; NearestBatch parallelizes
// internally with per-worker visit shards, like the search.Searcher batch
// methods.
type FeatureTree struct {
	desc  *Descriptors
	nodes []ftNode
	root  int32
	// Metrics
	BuildTime  time.Duration
	SearchTime time.Duration
	Visited    int64
	Queries    int64
}

type ftNode struct {
	row         int32
	left, right int32
	axis        int32
	split       float64
}

// NewFeatureTree indexes the given descriptors.
func NewFeatureTree(d *Descriptors) *FeatureTree {
	start := time.Now()
	t := &FeatureTree{desc: d, root: -1}
	n := d.Count()
	if n > 0 {
		rows := make([]int32, n)
		for i := range rows {
			rows[i] = int32(i)
		}
		t.nodes = make([]ftNode, 0, n)
		t.root = t.build(rows, 0)
	}
	t.BuildTime = time.Since(start)
	return t
}

// build recursively splits on the axis with the widest spread, cycling
// through a bounded prefix of dimensions for speed (high-dim trees gain
// nothing from scanning all 352 dims for spread).
func (t *FeatureTree) build(rows []int32, depth int) int32 {
	if len(rows) == 0 {
		return -1
	}
	axis := t.widestAxis(rows)
	sort.Slice(rows, func(a, b int) bool {
		va := t.desc.Row(int(rows[a]))[axis]
		vb := t.desc.Row(int(rows[b]))[axis]
		if va != vb {
			return va < vb
		}
		return rows[a] < rows[b]
	})
	mid := len(rows) / 2
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, ftNode{
		row:   rows[mid],
		axis:  int32(axis),
		split: t.desc.Row(int(rows[mid]))[axis],
		left:  -1,
		right: -1,
	})
	left := t.build(rows[:mid], depth+1)
	right := t.build(rows[mid+1:], depth+1)
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// widestAxis samples up to 16 candidate axes for the widest spread.
func (t *FeatureTree) widestAxis(rows []int32) int {
	dim := t.desc.Dim
	stride := dim / 16
	if stride == 0 {
		stride = 1
	}
	bestAxis, bestSpread := 0, -1.0
	for axis := 0; axis < dim; axis += stride {
		lo, hi := math.Inf(1), math.Inf(-1)
		// Sample rows for large sets.
		step := len(rows)/64 + 1
		for i := 0; i < len(rows); i += step {
			v := t.desc.Row(int(rows[i]))[axis]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestSpread = spread
			bestAxis = axis
		}
	}
	return bestAxis
}

// FeatureMatch is a feature-space nearest neighbor result.
type FeatureMatch struct {
	Row   int
	Dist2 float64
}

// Nearest returns the descriptor row nearest to the query vector in L2.
func (t *FeatureTree) Nearest(q []float64) (FeatureMatch, bool) {
	if t.root < 0 {
		return FeatureMatch{}, false
	}
	start := time.Now()
	t.Queries++
	best := FeatureMatch{Row: -1, Dist2: math.MaxFloat64}
	t.nearest(t.root, q, &best, &t.Visited)
	t.SearchTime += time.Since(start)
	return best, best.Row >= 0
}

// NearestBatch answers Nearest for every query row on a worker pool of
// the given size (<= 0 selects NumCPU). Results are positionally aligned
// with qs; a miss (empty tree) has Row -1. Each worker counts visits into
// its own shard, merged after the batch, and SearchTime accumulates the
// batch's wall time — so the tree's metrics stay exact while the queries
// run concurrently. Results are bit-identical to per-query Nearest calls.
//
// The result lives in a pooled slab: callers that fully consume it may
// hand it back with RecycleMatches so steady-state batches allocate
// nothing (KPCE does exactly that).
func (t *FeatureTree) NearestBatch(qs [][]float64, parallelism int) []FeatureMatch {
	out := newMatchSlab(len(qs))
	if t.root < 0 {
		for i := range out {
			out[i] = FeatureMatch{Row: -1}
		}
		return out
	}
	start := time.Now()
	par.Sharded(len(qs), par.Workers(parallelism),
		func(visited *int64, i int) {
			best := FeatureMatch{Row: -1, Dist2: math.MaxFloat64}
			t.nearest(t.root, qs[i], &best, visited)
			out[i] = best
		},
		func(visited *int64) { t.Visited += *visited })
	t.Queries += int64(len(qs))
	t.SearchTime += time.Since(start)
	return out
}

func (t *FeatureTree) nearest(ni int32, q []float64, best *FeatureMatch, visited *int64) {
	n := &t.nodes[ni]
	*visited++
	if d2 := l2dist2(q, t.desc.Row(int(n.row))); d2 < best.Dist2 {
		*best = FeatureMatch{Row: int(n.row), Dist2: d2}
	}
	diff := q[n.axis] - n.split
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	if near >= 0 {
		t.nearest(near, q, best, visited)
	}
	if far >= 0 && diff*diff < best.Dist2 {
		t.nearest(far, q, best, visited)
	}
}

// l2dist2 returns the squared Euclidean distance between two equal-length
// vectors.
func l2dist2(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// BruteNearestFeature scans all descriptors for the nearest row; the
// testing oracle for FeatureTree.
func BruteNearestFeature(d *Descriptors, q []float64) (FeatureMatch, bool) {
	best := FeatureMatch{Row: -1, Dist2: math.MaxFloat64}
	for i := 0; i < d.Count(); i++ {
		if d2 := l2dist2(q, d.Row(i)); d2 < best.Dist2 {
			best = FeatureMatch{Row: i, Dist2: d2}
		}
	}
	return best, best.Row >= 0
}
