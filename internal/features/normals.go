// Package features implements the registration front-end's geometric
// feature stages (paper Fig. 2 and Tbl. 1):
//
//   - Normal estimation: PlaneSVD and AreaWeighted [35].
//   - Key-point detection: Harris3D [27,61] and a SIFT-style
//     difference-of-densities detector [40,59] (substituting NARF, see
//     DESIGN.md).
//   - Feature descriptors: FPFH [56], SHOT [64], and 3DSC [20].
//
// All stages take a search.Searcher so neighbor lookups route through
// whichever KD-tree variant (and instrumentation) the pipeline selects —
// the property the paper exploits when it attributes >50% of registration
// time to KD-tree search regardless of the chosen algorithms. The
// query-dominated stages issue their lookups through the Searcher's
// batched API and fan the pure per-point math over internal/par, so the
// stage wall times reflect the query-level parallelism the paper's
// two-stage tree is designed to expose.
//
// The stages operate on the SoA float32 slab (cloud.Slab) the pipeline
// shares with its search indexes: neighbor coordinates and normals are
// dequantized per read and all accumulation runs in float64, so results
// are deterministic at any parallelism for the float32-quantized inputs.
package features

import (
	"math"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/linalg"
	"tigris/internal/par"
	"tigris/internal/search"
)

// NormalMethod selects the surface normal estimator (Tbl. 1, Normal
// Estimation row).
type NormalMethod int

const (
	// PlaneSVD fits a plane to the neighborhood by taking the smallest
	// eigenvector of the neighborhood covariance (the PCL default).
	PlaneSVD NormalMethod = iota
	// AreaWeighted averages triangle-fan cross products, weighting each
	// face by its area (Klasing et al.'s AreaWeighted variant).
	AreaWeighted
)

// String implements fmt.Stringer.
func (m NormalMethod) String() string {
	switch m {
	case PlaneSVD:
		return "PlaneSVD"
	case AreaWeighted:
		return "AreaWeighted"
	default:
		return "UnknownNormalMethod"
	}
}

// NormalConfig parameterizes normal estimation. SearchRadius is the knob
// the paper sweeps (Tbl. 1) and the one that controls how much radius
// search the stage issues — DP4 uses 0.30 m, DP7 uses 0.75 m (§6.3).
type NormalConfig struct {
	Method NormalMethod
	// SearchRadius is the neighborhood radius in meters (default 0.5).
	SearchRadius float64
	// KNeighbors, when positive, selects k-nearest-neighbor support
	// regions instead of radius regions (the PCL setKSearch mode). The
	// neighborhood then adapts to local density: dense regions get tight
	// fits, sparse regions still find support.
	KNeighbors int
	// Viewpoint orients normals to point toward the sensor. The zero value
	// (origin) is correct for sensor-frame clouds.
	Viewpoint geom.Vec3
	// MinNeighbors below which a point's normal is left as +Z (default 3).
	MinNeighbors int
}

func (c *NormalConfig) defaults() {
	if c.SearchRadius == 0 {
		c.SearchRadius = 0.5
	}
	if c.MinNeighbors == 0 {
		c.MinNeighbors = 3
	}
}

// EstimateNormals fills c's normal slabs for every point using
// neighborhoods from s (which must index the same points). It returns the
// number of points that had too few neighbors for a stable fit.
//
// The queries stream through the searcher's batch API in bounded blocks
// (see forBlocks), each consumed by a parallel sweep fitting the
// per-point normals. Every sweep writes positionally, so the output is
// bit-identical to the sequential per-point loop.
func EstimateNormals(c *cloud.Slab, s search.Searcher, cfg NormalConfig) int {
	cfg.defaults()
	c.EnsureNormals()
	workers := s.Parallelism()
	batch := func(block []geom.Vec3) [][]kdtree.Neighbor {
		if cfg.KNeighbors > 0 {
			return s.KNearestBatch(block, cfg.KNeighbors)
		}
		return s.RadiusBatch(block, cfg.SearchRadius)
	}
	degenerate := make([]int, par.Workers(workers))
	forBlocks(workers, c, batch, func(w, i int, nbs []kdtree.Neighbor) {
		p := c.At(i)
		if len(nbs) < cfg.MinNeighbors {
			c.SetNormal(i, geom.Vec3{Z: 1})
			degenerate[w]++
			return
		}
		var n geom.Vec3
		switch cfg.Method {
		case AreaWeighted:
			n = areaWeightedNormal(p, nbs, c)
		default:
			n = planeSVDNormal(p, nbs, c)
		}
		// Orient toward the viewpoint so normals are consistent across the
		// cloud (required by the Darboux-frame descriptors).
		if n.Dot(cfg.Viewpoint.Sub(p)) < 0 {
			n = n.Neg()
		}
		c.SetNormal(i, n)
	})
	total := 0
	for _, d := range degenerate {
		total += d
	}
	return total
}

// planeSVDNormal returns the smallest-eigenvalue eigenvector of the
// neighborhood covariance.
func planeSVDNormal(p geom.Vec3, nbs []kdtree.Neighbor, pts *cloud.Slab) geom.Vec3 {
	var centroid geom.Vec3
	for _, nb := range nbs {
		centroid = centroid.Add(pts.At(nb.Index))
	}
	centroid = centroid.Scale(1 / float64(len(nbs)))

	var cov geom.Mat3
	for _, nb := range nbs {
		d := pts.At(nb.Index).Sub(centroid)
		cov = cov.Add(geom.OuterProduct(d, d))
	}
	eig := linalg.EigenSym3(cov)
	return eig.Vectors[0] // smallest eigenvalue => plane normal
}

// areaWeightedNormal sums the cross products of a triangle fan around p.
// Each cross product's magnitude is twice the triangle area, so summing
// raw cross products weights faces by area, which is the essence of
// Klasing's AreaWeighted estimator.
func areaWeightedNormal(p geom.Vec3, nbs []kdtree.Neighbor, pts *cloud.Slab) geom.Vec3 {
	// Order neighbors by azimuth in a provisional tangent plane so the fan
	// is geometrically consistent.
	prov := planeSVDNormal(p, nbs, pts)
	u, v := prov.OrthoBasis()
	ordered := make([]polarEntry, 0, len(nbs))
	for _, nb := range nbs {
		d := pts.At(nb.Index).Sub(p)
		ordered = append(ordered, polarEntry{idx: nb.Index, ang: math.Atan2(d.Dot(v), d.Dot(u))})
	}
	sortPolar(ordered)

	var sum geom.Vec3
	for i := range ordered {
		a := pts.At(ordered[i].idx).Sub(p)
		b := pts.At(ordered[(i+1)%len(ordered)].idx).Sub(p)
		sum = sum.Add(a.Cross(b))
	}
	n := sum.Normalize()
	if n.Norm() == 0 {
		return prov
	}
	// Keep the same hemisphere as the provisional normal so orientation
	// fixing behaves identically for both methods.
	if n.Dot(prov) < 0 {
		n = n.Neg()
	}
	return n
}

// polarEntry pairs a point index with its azimuth in a tangent plane.
type polarEntry struct {
	idx int
	ang float64
}

func sortPolar(p []polarEntry) {
	// Insertion sort: neighborhoods are small (tens of points), and this
	// avoids pulling in sort for an inner loop.
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j].ang < p[j-1].ang; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}
