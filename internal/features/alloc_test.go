package features

import (
	"testing"
)

// TestFeatureTreeNearestBatchSteadyStateAllocs extends the hot-path
// AllocsPerRun coverage to the KPCE feature tree: with the pooled match
// slab, a fully recycled NearestBatch must settle to (near) zero
// allocations per call — the last per-pair allocation proportional to
// the key-point count (the PR 4 follow-up).
func TestFeatureTreeNearestBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under -race")
	}
	const dim, n = 33, 200
	d := &Descriptors{Dim: dim, Data: make([]float64, dim*n)}
	for i := range d.Data {
		d.Data[i] = float64(i%97) * 0.13
	}
	tree := NewFeatureTree(d)
	qs := make([][]float64, n)
	for i := range qs {
		qs[i] = d.Row((i * 7) % n)
	}

	// Warm the slab pool.
	for i := 0; i < 3; i++ {
		RecycleMatches(tree.NearestBatch(qs, 1))
	}
	allocs := testing.AllocsPerRun(50, func() {
		RecycleMatches(tree.NearestBatch(qs, 1))
	})
	// Tolerated residue: the two worker-pool closures and the pooled-slab
	// pointer round trip — fixed per-call costs, nothing proportional to
	// the query count (which used to cost one len(qs)-sized slice per
	// call).
	if allocs > 4 {
		t.Errorf("NearestBatch allocates %.1f times per call steady-state, want <= 4", allocs)
	}
}
