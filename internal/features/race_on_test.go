//go:build race

package features

// See race_off_test.go.
const raceEnabled = true
