package features

import (
	"math"
	"sort"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/linalg"
	"tigris/internal/par"
	"tigris/internal/search"
)

// DescriptorMethod selects the feature descriptor (Tbl. 1, Descriptor
// Calculation row).
type DescriptorMethod int

const (
	// FPFH is the 33-bin Fast Point Feature Histogram [56].
	FPFH DescriptorMethod = iota
	// SHOT is the Signature of Histograms of Orientations [64]
	// (32 spatial sectors × 11 cosine bins = 352 dims).
	SHOT
	// SC3D is the 3D Shape Context [20] over a log-radial spherical grid.
	SC3D
)

// String implements fmt.Stringer.
func (m DescriptorMethod) String() string {
	switch m {
	case FPFH:
		return "FPFH"
	case SHOT:
		return "SHOT"
	case SC3D:
		return "3DSC"
	default:
		return "UnknownDescriptorMethod"
	}
}

// Dim returns the descriptor dimensionality.
func (m DescriptorMethod) Dim() int {
	switch m {
	case FPFH:
		return 33
	case SHOT:
		return shotSpatialBins * shotCosineBins
	case SC3D:
		return scAzimuthBins * scElevationBins * scRadialBins
	default:
		return 0
	}
}

// DescriptorConfig parameterizes descriptor computation. SearchRadius is
// the Tbl. 1 knob.
type DescriptorConfig struct {
	Method DescriptorMethod
	// SearchRadius is the descriptor support radius in meters (default 1.0).
	SearchRadius float64
}

func (c *DescriptorConfig) defaults() {
	if c.SearchRadius == 0 {
		c.SearchRadius = 1.0
	}
}

// Descriptors is a dense row-major matrix of per-key-point feature
// vectors.
type Descriptors struct {
	Dim  int
	Data []float64 // len = Dim * count
}

// Count returns the number of descriptors.
func (d *Descriptors) Count() int {
	if d.Dim == 0 {
		return 0
	}
	return len(d.Data) / d.Dim
}

// Row returns the i-th descriptor vector (a view, not a copy).
func (d *Descriptors) Row(i int) []float64 {
	return d.Data[i*d.Dim : (i+1)*d.Dim]
}

// ComputeDescriptors computes the configured descriptor for each key-point
// index. The cloud must have normals. Neighbor lookups go through s so the
// pipeline's search instrumentation sees this stage's traffic (it is one
// of the three dominant stages of Fig. 4a).
//
// The stage is batched: one RadiusBatch fetches every key-point support
// region, then the pure per-key-point histogram math fans out over
// internal/par. FPFH needs a second level — the SPFHs of every support
// point — which is gathered as its own batch over the deduplicated
// support set, replacing the sequential memoization cache with a
// precomputed table (same values, computed once each, in parallel).
func ComputeDescriptors(c *cloud.Slab, s search.Searcher, keypoints []int, cfg DescriptorConfig) *Descriptors {
	cfg.defaults()
	dim := cfg.Method.Dim()
	out := &Descriptors{Dim: dim, Data: newDescriptorData(dim * len(keypoints))}
	kpPts := make([]geom.Vec3, len(keypoints))
	for ki, pi := range keypoints {
		kpPts[ki] = c.At(pi)
	}
	kpNbs := s.RadiusBatch(kpPts, cfg.SearchRadius)
	workers := s.Parallelism()
	switch cfg.Method {
	case SHOT:
		par.For(len(keypoints), workers, func(_, ki int) {
			shotDescriptor(c, keypoints[ki], cfg.SearchRadius, kpNbs[ki], out.Data[ki*dim:(ki+1)*dim])
		})
	case SC3D:
		par.For(len(keypoints), workers, func(_, ki int) {
			shapeContextDescriptor(c, keypoints[ki], cfg.SearchRadius, kpNbs[ki], out.Data[ki*dim:(ki+1)*dim])
		})
	default:
		spfhTable := computeSPFHTable(c, s, keypoints, kpNbs, cfg.SearchRadius)
		par.For(len(keypoints), workers, func(_, ki int) {
			fpfhDescriptor(c, keypoints[ki], kpNbs[ki], out.Data[ki*dim:(ki+1)*dim], spfhTable)
		})
	}
	// The support regions are fully consumed; hand their slabs back so
	// the next frame's radius batches reuse them.
	search.RecycleBatch(kpNbs)
	return out
}

// computeSPFHTable returns the SPFH of every point an FPFH row will read:
// each key-point itself plus every neighbor its weighting loop touches.
// Key-point SPFHs reuse the neighborhoods the caller already fetched
// (kpNbs is their exact radius result); the remaining support points are
// deduplicated and sorted so their batch is issued in a deterministic
// order, and every SPFH is computed exactly once (the sequential
// implementation memoized the same values in a cache keyed by index).
func computeSPFHTable(c *cloud.Slab, s search.Searcher, keypoints []int, kpNbs [][]kdtree.Neighbor, radius float64) map[int][]float64 {
	kpSet := make(map[int]struct{}, len(keypoints))
	for _, pi := range keypoints {
		kpSet[pi] = struct{}{}
	}
	needSet := make(map[int]struct{}, len(keypoints)*8)
	for ki, pi := range keypoints {
		for _, nb := range kpNbs[ki] {
			if nb.Index == pi || nb.Dist2 < 1e-12 {
				continue
			}
			if _, isKP := kpSet[nb.Index]; isKP {
				continue
			}
			needSet[nb.Index] = struct{}{}
		}
	}
	need := make([]int, 0, len(needSet))
	for idx := range needSet {
		need = append(need, idx)
	}
	sort.Ints(need)

	kpRows := make([][]float64, len(keypoints))
	par.For(len(keypoints), s.Parallelism(), func(_, ki int) {
		kpRows[ki] = spfh(c, keypoints[ki], kpNbs[ki])
	})

	pts := make([]geom.Vec3, len(need))
	for i, idx := range need {
		pts[i] = c.At(idx)
	}
	// The support set can approach the whole cloud when key-points are
	// dense, so stream it in bounded blocks like the full-cloud stages:
	// only the SPFH rows persist, each block's neighbor lists are
	// released after its sweep.
	rows := make([][]float64, len(need))
	forRadiusPointBlocks(s, pts, radius, func(_, i int, nbs []kdtree.Neighbor) {
		rows[i] = spfh(c, need[i], nbs)
	})
	table := make(map[int][]float64, len(keypoints)+len(need))
	for ki, pi := range keypoints {
		table[pi] = kpRows[ki]
	}
	for i, idx := range need {
		table[idx] = rows[i]
	}
	return table
}

// --- FPFH ---------------------------------------------------------------

const fpfhBinsPerAngle = 11

// darbouxAngles computes the three FPFH pair features (α, φ, θ) between a
// source point/normal and a target point/normal, following Rusu et al.
func darbouxAngles(ps, ns, pt, nt geom.Vec3) (alpha, phi, theta float64, ok bool) {
	d := pt.Sub(ps)
	dist := d.Norm()
	if dist < 1e-12 {
		return 0, 0, 0, false
	}
	dn := d.Scale(1 / dist)
	u := ns
	v := dn.Cross(u)
	if v.Norm() < 1e-12 {
		return 0, 0, 0, false
	}
	v = v.Normalize()
	w := u.Cross(v)
	alpha = v.Dot(nt)                        // ∈ [-1, 1]
	phi = u.Dot(dn)                          // ∈ [-1, 1]
	theta = math.Atan2(w.Dot(nt), u.Dot(nt)) // ∈ [-π, π]
	return alpha, phi, theta, true
}

// spfh computes the Simplified Point Feature Histogram of point pi over
// the prefetched radius neighborhood nbs: the concatenated (α, φ, θ)
// histograms.
func spfh(c *cloud.Slab, pi int, nbs []kdtree.Neighbor) []float64 {
	h := make([]float64, 3*fpfhBinsPerAngle)
	p := c.At(pi)
	n := c.NormalAt(pi)
	count := 0
	for _, nb := range nbs {
		if nb.Index == pi {
			continue
		}
		alpha, phi, theta, ok := darbouxAngles(p, n, c.At(nb.Index), c.NormalAt(nb.Index))
		if !ok {
			continue
		}
		h[binUnit(alpha)]++
		h[fpfhBinsPerAngle+binUnit(phi)]++
		h[2*fpfhBinsPerAngle+binAngle(theta)]++
		count++
	}
	if count > 0 {
		inv := 100 / float64(count) // percentage normalization, as in PCL
		for i := range h {
			h[i] *= inv
		}
	}
	return h
}

// binUnit maps [-1, 1] to one of the 11 bins.
func binUnit(v float64) int {
	b := int((v + 1) / 2 * fpfhBinsPerAngle)
	if b < 0 {
		b = 0
	}
	if b >= fpfhBinsPerAngle {
		b = fpfhBinsPerAngle - 1
	}
	return b
}

// binAngle maps [-π, π] to one of the 11 bins.
func binAngle(v float64) int {
	b := int((v + math.Pi) / (2 * math.Pi) * fpfhBinsPerAngle)
	if b < 0 {
		b = 0
	}
	if b >= fpfhBinsPerAngle {
		b = fpfhBinsPerAngle - 1
	}
	return b
}

// fpfhDescriptor computes FPFH(p) = SPFH(p) + Σ_k SPFH(k)/ω_k over the
// prefetched neighborhood, with ω_k the distance weight. spfhTable holds
// the SPFH of every index the loop reads (see computeSPFHTable).
func fpfhDescriptor(c *cloud.Slab, pi int, nbs []kdtree.Neighbor, row []float64, spfhTable map[int][]float64) {
	copy(row, spfhTable[pi])
	var wsum float64
	acc := make([]float64, len(row))
	for _, nb := range nbs {
		if nb.Index == pi || nb.Dist2 < 1e-12 {
			continue
		}
		w := 1 / math.Sqrt(nb.Dist2)
		h := spfhTable[nb.Index]
		for i := range acc {
			acc[i] += w * h[i]
		}
		wsum += w
	}
	if wsum > 0 {
		for i := range row {
			row[i] += acc[i] / wsum
		}
	}
}

// --- SHOT ---------------------------------------------------------------

const (
	shotAzimuthBins   = 8
	shotElevationBins = 2
	shotRadialBins    = 2
	shotSpatialBins   = shotAzimuthBins * shotElevationBins * shotRadialBins // 32
	shotCosineBins    = 11
)

// shotLRF builds the repeatable local reference frame of SHOT over the
// prefetched radius neighborhood: the eigenvectors of the
// distance-weighted covariance with sign disambiguation toward the
// majority of neighbors.
func shotLRF(c *cloud.Slab, pi int, radius float64, nbs []searchNeighbor) (x, y, z geom.Vec3) {
	p := c.At(pi)
	var cov geom.Mat3
	var wsum float64
	for _, nb := range nbs {
		d := c.At(nb.Index).Sub(p)
		w := radius - math.Sqrt(nb.Dist2)
		if w <= 0 {
			continue
		}
		cov = cov.Add(geom.OuterProduct(d, d).Scale(w))
		wsum += w
	}
	if wsum <= 0 {
		return geom.Vec3{X: 1}, geom.Vec3{Y: 1}, geom.Vec3{Z: 1}
	}
	cov = cov.Scale(1 / wsum)
	eig := linalg.EigenSym3(cov)
	// Largest eigenvalue first for x, smallest for z.
	x = eig.Vectors[2]
	z = eig.Vectors[0]
	// Sign disambiguation: point each axis toward the majority side.
	var sx, sz int
	for _, nb := range nbs {
		d := c.At(nb.Index).Sub(p)
		if d.Dot(x) >= 0 {
			sx++
		} else {
			sx--
		}
		if d.Dot(z) >= 0 {
			sz++
		} else {
			sz--
		}
	}
	if sx < 0 {
		x = x.Neg()
	}
	if sz < 0 {
		z = z.Neg()
	}
	y = z.Cross(x)
	return x, y, z
}

// shotDescriptor fills row with the SHOT signature over the prefetched
// neighborhood: the support sphere is split into azimuth × elevation ×
// radial sectors; each sector holds an 11-bin histogram of cos(angle
// between the neighbor normal and the key-point normal).
func shotDescriptor(c *cloud.Slab, pi int, radius float64, nbs []searchNeighbor, row []float64) {
	x, y, z := shotLRF(c, pi, radius, nbs)
	p := c.At(pi)
	n := c.NormalAt(pi)
	total := 0.0
	for _, nb := range nbs {
		if nb.Index == pi {
			continue
		}
		d := c.At(nb.Index).Sub(p)
		r := d.Norm()
		if r < 1e-12 || r > radius {
			continue
		}
		lx, ly, lz := d.Dot(x), d.Dot(y), d.Dot(z)
		az := math.Atan2(ly, lx) // [-π, π]
		azBin := int((az + math.Pi) / (2 * math.Pi) * shotAzimuthBins)
		if azBin >= shotAzimuthBins {
			azBin = shotAzimuthBins - 1
		}
		elBin := 0
		if lz >= 0 {
			elBin = 1
		}
		radBin := 0
		if r > radius/2 {
			radBin = 1
		}
		spatial := (radBin*shotElevationBins+elBin)*shotAzimuthBins + azBin
		cosAngle := c.NormalAt(nb.Index).Dot(n)
		cosBin := binUnitN(cosAngle, shotCosineBins)
		row[spatial*shotCosineBins+cosBin]++
		total++
	}
	if total > 0 {
		// L2 normalization (SHOT normalizes the whole signature).
		var norm float64
		for _, v := range row {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		for i := range row {
			row[i] /= norm
		}
	}
}

// binUnitN maps [-1, 1] into one of nbins bins.
func binUnitN(v float64, nbins int) int {
	b := int((v + 1) / 2 * float64(nbins))
	if b < 0 {
		b = 0
	}
	if b >= nbins {
		b = nbins - 1
	}
	return b
}

// --- 3DSC ---------------------------------------------------------------

const (
	scAzimuthBins   = 8
	scElevationBins = 4
	scRadialBins    = 5
)

// shapeContextDescriptor fills row with the 3D Shape Context over the
// prefetched neighborhood: a log-radial spherical histogram of neighbor
// positions in a normal-aligned frame, each contribution weighted by the
// inverse local density as in Frome et al.
func shapeContextDescriptor(c *cloud.Slab, pi int, radius float64, nbs []searchNeighbor, row []float64) {
	p := c.At(pi)
	n := c.NormalAt(pi)
	u, v := n.OrthoBasis()
	rmin := radius / 20
	logSpan := math.Log(radius / rmin)
	total := 0.0
	for _, nb := range nbs {
		if nb.Index == pi {
			continue
		}
		d := c.At(nb.Index).Sub(p)
		r := d.Norm()
		if r < 1e-12 || r > radius {
			continue
		}
		// Radial bin on a log scale (inner sphere collapses to bin 0).
		radBin := 0
		if r > rmin {
			radBin = int(math.Log(r/rmin) / logSpan * scRadialBins)
			if radBin >= scRadialBins {
				radBin = scRadialBins - 1
			}
		}
		lz := d.Dot(n)
		lx := d.Dot(u)
		ly := d.Dot(v)
		az := math.Atan2(ly, lx)
		azBin := int((az + math.Pi) / (2 * math.Pi) * scAzimuthBins)
		if azBin >= scAzimuthBins {
			azBin = scAzimuthBins - 1
		}
		el := math.Acos(clamp(lz/r, -1, 1)) // [0, π]
		elBin := int(el / math.Pi * scElevationBins)
		if elBin >= scElevationBins {
			elBin = scElevationBins - 1
		}
		idx := (radBin*scElevationBins+elBin)*scAzimuthBins + azBin
		// Weight by shell volume so outer (larger) shells don't dominate.
		w := 1 / (1 + r*r)
		row[idx] += w
		total += w
	}
	if total > 0 {
		for i := range row {
			row[i] /= total
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// searchNeighbor aliases the KD-tree result type for readability in this
// file's signatures.
type searchNeighbor = kdtree.Neighbor
