package posegraph

import (
	"math"
	"testing"

	"tigris/internal/geom"
)

// driftedChain builds a ground-truth circular trajectory of n poses plus
// a drifted odometry estimate of it: every true step is corrupted by a
// fixed yaw bias and translation scale, the classic accumulating-drift
// model.
func driftedChain(n int, yawBias, scale float64) (truth, deltas []geom.Transform) {
	truth = make([]geom.Transform, n)
	truth[0] = geom.IdentityTransform()
	step := geom.Transform{R: geom.RotZ(2 * math.Pi / float64(n-1)), T: geom.Vec3{X: 0.5}}
	for k := 1; k < n; k++ {
		truth[k] = truth[k-1].Compose(step)
	}
	bias := geom.Transform{R: geom.RotZ(yawBias), T: geom.Vec3{}}
	for k := 0; k+1 < n; k++ {
		d := truth[k].Inverse().Compose(truth[k+1])
		d.T = d.T.Scale(scale)
		deltas = append(deltas, bias.Compose(d))
	}
	return truth, deltas
}

func TestOptimizeClosesDriftedLoop(t *testing.T) {
	truth, deltas := driftedChain(40, 0.004, 1.03)
	g := FromOdometry(geom.IdentityTransform(), deltas)
	// The loop edge: the true relative pose between the last and first
	// frames (what a verified loop closure supplies), weighted above the
	// odometry edges.
	loopZ := truth[0].Inverse().Compose(truth[len(truth)-1])
	g.AddEdge(Edge{I: 0, J: len(truth) - 1, Z: loopZ, TransWeight: 20, RotWeight: 20, Robust: true})

	before := ATE(g.Poses, truth)
	opt, res, err := g.Optimize(Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	after := ATE(opt, truth)
	if res.FinalCost >= res.InitialCost {
		t.Errorf("cost did not decrease: %g -> %g", res.InitialCost, res.FinalCost)
	}
	if after.RMSE >= 0.6*before.RMSE {
		t.Errorf("ATE RMSE %.4f m -> %.4f m: want at least a 40%% reduction", before.RMSE, after.RMSE)
	}
	if res.FinalCost > 1e-2*res.InitialCost {
		t.Errorf("cost %g -> %g: expected near-complete convergence", res.InitialCost, res.FinalCost)
	}
	// The anchor must not move.
	if opt[0] != g.Poses[0] {
		t.Errorf("node 0 moved: %v", opt[0])
	}
	// Local consistency must survive: optimized RPE within a small factor
	// of the odometry RPE (the optimizer redistributes error, it does not
	// shred the chain).
	rpeBefore := RPE(g.Poses, truth)
	rpeAfter := RPE(opt, truth)
	if rpeAfter.TransRMSE > 3*rpeBefore.TransRMSE+1e-9 {
		t.Errorf("RPE degraded: %.5f -> %.5f", rpeBefore.TransRMSE, rpeAfter.TransRMSE)
	}
}

// TestOptimizeGoldenDeterminism asserts the bit-identity contract: the
// optimized trajectory is the same, float for float, across repeated
// runs and across every Parallelism setting.
func TestOptimizeGoldenDeterminism(t *testing.T) {
	truth, deltas := driftedChain(25, 0.006, 1.05)
	build := func() *Graph {
		g := FromOdometry(geom.IdentityTransform(), deltas)
		loopZ := truth[0].Inverse().Compose(truth[len(truth)-1])
		g.AddEdge(Edge{I: 0, J: len(truth) - 1, Z: loopZ, TransWeight: 10, RotWeight: 10, Robust: true})
		// A mid-trajectory loop too, so the sparsity pattern is non-trivial.
		midZ := truth[5].Inverse().Compose(truth[20])
		g.AddEdge(Edge{I: 5, J: 20, Z: midZ, TransWeight: 10, RotWeight: 10, Robust: true})
		return g
	}

	golden, goldenRes, err := build().Optimize(Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 8, 0} {
		got, gotRes, err := build().Optimize(Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if gotRes.FinalCost != goldenRes.FinalCost || gotRes.Iterations != goldenRes.Iterations {
			t.Fatalf("parallelism %d: run stats diverged: %+v vs %+v", p, gotRes, goldenRes)
		}
		for k := range golden {
			if got[k] != golden[k] {
				t.Fatalf("parallelism %d: pose %d differs:\n got %v\nwant %v", p, k, got[k], golden[k])
			}
		}
	}
}

func TestOptimizeLeavesConsistentGraphAlone(t *testing.T) {
	truth, _ := driftedChain(12, 0, 1)
	deltas := make([]geom.Transform, len(truth)-1)
	for k := range deltas {
		deltas[k] = truth[k].Inverse().Compose(truth[k+1])
	}
	g := FromOdometry(geom.IdentityTransform(), deltas)
	g.AddEdge(Edge{I: 0, J: len(truth) - 1, Z: truth[0].Inverse().Compose(truth[len(truth)-1])})
	opt, res, err := g.Optimize(Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialCost > 1e-12 {
		t.Fatalf("consistent graph has initial cost %g", res.InitialCost)
	}
	for k := range opt {
		if !opt[k].NearlyEqual(g.Poses[k], 1e-9) {
			t.Fatalf("pose %d moved on a consistent graph", k)
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	g := NewGraph([]geom.Transform{geom.IdentityTransform(), geom.IdentityTransform()})
	g.AddEdge(Edge{I: 0, J: 5, Z: geom.IdentityTransform()})
	if _, _, err := g.Optimize(Options{}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	empty := NewGraph(nil)
	if _, _, err := empty.Optimize(Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	single := NewGraph([]geom.Transform{geom.IdentityTransform()})
	if _, _, err := single.Optimize(Options{}); err != nil {
		t.Fatalf("single node: %v", err)
	}
}

func TestATEAndRPE(t *testing.T) {
	truth, _ := driftedChain(10, 0, 1)
	// Identical trajectories: zero errors.
	ate := ATE(truth, truth)
	if ate.RMSE != 0 || ate.Max != 0 || ate.Frames != 10 {
		t.Fatalf("self ATE = %+v", ate)
	}
	rpe := RPE(truth, truth)
	if rpe.TransRMSE != 0 || rpe.RotRMSE != 0 {
		t.Fatalf("self RPE = %+v", rpe)
	}
	// A constant offset on every pose vanishes under first-pose anchoring.
	shifted := make([]geom.Transform, len(truth))
	off := geom.Transform{R: geom.RotZ(0.3), T: geom.Vec3{X: 5, Y: -2}}
	for k := range truth {
		shifted[k] = off.Compose(truth[k])
	}
	if got := ATE(shifted, truth).RMSE; got > 1e-9 {
		t.Fatalf("anchored ATE of shifted trajectory = %g", got)
	}
}
