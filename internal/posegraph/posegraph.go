// Package posegraph turns the pipeline's pairwise registrations into a
// globally consistent trajectory: the SLAM back-end on top of the
// paper's front-end. Nodes are absolute SE(3) poses, edges are relative
// pose measurements — the odometry deltas a streaming session
// accumulates plus the loop-closure constraints internal/loop verifies —
// and Optimize runs damped Gauss–Newton (Levenberg–Marquardt) over the
// node poses so the loop edges pull the drifted odometry chain back onto
// itself.
//
// # Determinism
//
// The optimizer is bit-identical across runs and across any Parallelism
// setting: per-edge residuals and Jacobians are computed in parallel but
// written positionally into per-edge slots, and the normal equations are
// accumulated from those slots serially in edge order. Combined with the
// exact search backends' parallelism-invariance, this makes the whole
// SLAM stack — odometry, loop closure, optimization — reproducible at
// any worker count, which the stream-layer tests assert end to end.
//
// The solve is dense (internal/linalg.SolveDense on the 6(N−1) normal
// equations), which is exact and plenty for sessions up to a few hundred
// frames; a sparse/Schur solver is the scaling follow-up.
package posegraph

import (
	"errors"
	"fmt"
	"math"
	"time"

	"tigris/internal/geom"
	"tigris/internal/linalg"
	"tigris/internal/par"
)

// Edge is one relative-pose constraint between nodes I and J (I < J for
// odometry, I ≠ J generally): the measurement Z predicts
// X_I⁻¹ ∘ X_J = Z. An odometry step Delta registering frame J onto frame
// I (Pose[J] = Pose[I] ∘ Delta) is exactly Z = Delta, and so is a
// verified loop closure's transform.
type Edge struct {
	I, J int
	Z    geom.Transform
	// TransWeight / RotWeight scale the translational (m) and rotational
	// (rad) residual components; zero values select 1. Loop edges are
	// typically weighted above odometry edges (one accurate global
	// constraint against many locally consistent drifting ones).
	TransWeight float64
	RotWeight   float64
	// Robust applies Huber down-weighting to this edge, so one bad loop
	// closure cannot drag the whole trajectory (odometry edges are
	// normally left quadratic).
	Robust bool
}

// Graph is a pose graph under construction: initial node poses plus the
// edge list. The zero node is the gauge anchor and is never moved.
type Graph struct {
	// Poses are the initial absolute node poses (e.g. the odometry
	// chain). Optimize does not modify them.
	Poses []geom.Transform
	// Edges are the relative-pose constraints, in insertion order (the
	// optimizer's accumulation order — keep it deterministic).
	Edges []Edge
}

// NewGraph starts a graph from initial absolute poses (copied).
func NewGraph(poses []geom.Transform) *Graph {
	return &Graph{Poses: append([]geom.Transform(nil), poses...)}
}

// AddEdge appends a constraint X_I⁻¹ ∘ X_J = Z.
func (g *Graph) AddEdge(e Edge) {
	g.Edges = append(g.Edges, e)
}

// AddOdometry appends the chain edges of consecutive-frame deltas:
// deltas[k] registers frame k+1 onto frame k.
func (g *Graph) AddOdometry(deltas []geom.Transform) {
	for k, d := range deltas {
		g.AddEdge(Edge{I: k, J: k + 1, Z: d})
	}
}

// FromOdometry builds a graph whose initial poses are the composed
// odometry chain starting at origin, with one odometry edge per step.
func FromOdometry(origin geom.Transform, deltas []geom.Transform) *Graph {
	poses := make([]geom.Transform, len(deltas)+1)
	poses[0] = origin
	for k, d := range deltas {
		poses[k+1] = poses[k].Compose(d)
	}
	g := NewGraph(poses)
	g.AddOdometry(deltas)
	return g
}

// Options configures Optimize. Zero values select the documented
// defaults.
type Options struct {
	// MaxIterations bounds outer LM iterations (default 30).
	MaxIterations int
	// InitialLambda is the starting LM damping (default 1e-4).
	InitialLambda float64
	// CostTol stops when the relative cost improvement of an accepted
	// step falls below it (default 1e-9).
	CostTol float64
	// HuberDelta is the robust-kernel threshold on a Robust edge's
	// weighted residual norm (default 1.0).
	HuberDelta float64
	// Parallelism is the per-edge linearization worker count (<= 0
	// selects NumCPU, 1 forces the sequential path). Results are
	// bit-identical at any setting.
	Parallelism int
}

func (o *Options) defaults() {
	if o.MaxIterations == 0 {
		o.MaxIterations = 30
	}
	if o.InitialLambda == 0 {
		o.InitialLambda = 1e-4
	}
	if o.CostTol == 0 {
		o.CostTol = 1e-9
	}
	if o.HuberDelta == 0 {
		o.HuberDelta = 1.0
	}
}

// Result reports an optimization run.
type Result struct {
	// InitialCost / FinalCost are 0.5·Σ‖r‖² before and after.
	InitialCost, FinalCost float64
	// Iterations counts outer LM iterations executed.
	Iterations int
	// Converged is true when the run stopped on CostTol or a zero
	// gradient. It is false when the iteration cap ran out AND when the
	// damping loop stalled (no cost-improving step at any damping level
	// — an ill-conditioned graph), so callers can tell an optimized
	// trajectory from an untouched one.
	Converged bool
	// SolveTime is the optimization's wall time — the solve is a heavy
	// stage like any pipeline stage, so services record it through the
	// same latency histograms (the obs.StagePoseGraph series).
	SolveTime time.Duration
}

// ErrGraph is returned for structurally invalid graphs.
var ErrGraph = errors.New("posegraph: invalid graph")

// residualDim is the per-edge residual size: 3 rotation + 3 translation.
const residualDim = 6

// jacStep is the central-difference step for the per-edge Jacobians. The
// state is a local perturbation around zero every iteration, so a fixed
// step is well-scaled.
const jacStep = 1e-6

// Optimize runs damped Gauss–Newton over all node poses but the first
// and returns the optimized poses (g is not modified). Every edge
// contributes the SE(3) residual r = [wr·Log(R_err), wt·T_err] of
// E = Z⁻¹ ∘ (X_I⁻¹ ∘ X_J), optionally Huber-weighted; the normal
// equations are assembled in edge order from positionally stored
// per-edge blocks, so the result is bit-identical at any Parallelism.
func (g *Graph) Optimize(opts Options) ([]geom.Transform, Result, error) {
	opts.defaults()
	n := len(g.Poses)
	var res Result
	if n == 0 {
		return nil, res, fmt.Errorf("%w: no nodes", ErrGraph)
	}
	for _, e := range g.Edges {
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n || e.I == e.J {
			return nil, res, fmt.Errorf("%w: edge %d-%d outside %d nodes", ErrGraph, e.I, e.J, n)
		}
	}
	solveStart := time.Now()
	poses := append([]geom.Transform(nil), g.Poses...)
	if n == 1 || len(g.Edges) == 0 {
		return poses, Result{Converged: true, SolveTime: time.Since(solveStart)}, nil
	}

	ne := len(g.Edges)
	workers := par.Workers(opts.Parallelism)
	dim := 6 * (n - 1) // node 0 is the gauge anchor

	// Per-edge slots, written positionally by the parallel linearization
	// and folded serially in edge order.
	resids := make([][residualDim]float64, ne)
	jacs := make([][residualDim * 12]float64, ne) // d r / d [δI, δJ]
	trialResids := make([][residualDim]float64, ne)
	scales := make([]float64, ne)
	scaled := make([][residualDim]float64, ne)

	h := make([]float64, dim*dim)
	b := make([]float64, dim)
	damped := make([]float64, dim*dim) // reused across damping attempts
	trial := make([]geom.Transform, n)
	delta := make([]float64, dim)

	g.evalResiduals(poses, resids, workers)
	lambda := opts.InitialLambda
	var cost float64

	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		// IRLS: freeze each robust edge's Huber weight at this iteration's
		// linearization point — re-deriving it inside the perturbed
		// residuals would flatten the gradient exactly where the kernel is
		// active and stall the descent.
		g.huberScales(resids, scales, opts.HuberDelta)
		cost = scaledCost(resids, scales)
		if iter == 0 {
			res.InitialCost = cost
			res.FinalCost = cost
		}
		g.linearize(poses, scales, jacs, workers)

		// Assemble H = ΣJᵀJ, b = −ΣJᵀr serially in edge order.
		for i := range h {
			h[i] = 0
		}
		for i := range b {
			b[i] = 0
		}
		for ei := range g.Edges {
			for k := 0; k < residualDim; k++ {
				scaled[ei][k] = scales[ei] * resids[ei][k]
			}
			g.accumulate(ei, &scaled[ei], &jacs[ei], h, b, n)
		}

		maxGrad := 0.0
		for _, v := range b {
			if a := math.Abs(v); a > maxGrad {
				maxGrad = a
			}
		}
		if maxGrad < 1e-12 {
			res.Converged = true
			break
		}

		improved := false
		for attempt := 0; attempt < 12; attempt++ {
			// Damped copy: H + λ·diag(H) (Marquardt scaling).
			copy(damped, h)
			for i := 0; i < dim; i++ {
				d := h[i*dim+i]
				if d == 0 {
					d = 1
				}
				damped[i*dim+i] += lambda * d
			}
			step, err := linalg.SolveDense(damped, b)
			if err != nil {
				lambda *= 10
				continue
			}
			copy(delta, step)
			applyDelta(poses, delta, trial)
			g.evalResiduals(trial, trialResids, workers)
			trialCost := scaledCost(trialResids, scales)
			if trialCost < cost {
				copy(poses, trial)
				for ei := range trialResids {
					resids[ei] = trialResids[ei]
				}
				if cost-trialCost <= opts.CostTol*(1+cost) {
					res.Converged = true
				}
				cost = trialCost
				lambda = math.Max(lambda*0.3, 1e-12)
				improved = true
				break
			}
			lambda *= 10
			if lambda > 1e14 {
				break
			}
		}
		res.FinalCost = cost
		if !improved {
			// Stalled: no damping level produced an improving step. After
			// real progress that is the numeric floor of a local minimum —
			// terminal convergence; stalling with the initial cost
			// untouched means the solve failed, and is reported as such
			// (a consistent graph never lands here: its zero gradient
			// converges above before any step is attempted).
			res.Converged = cost < res.InitialCost
			break
		}
		if res.Converged {
			break
		}
	}
	res.FinalCost = cost
	res.SolveTime = time.Since(solveStart)
	return poses, res, nil
}

// evalResiduals fills the per-edge raw (weighted, un-robustified)
// residual slots for the given poses, positionally on the worker pool.
func (g *Graph) evalResiduals(poses []geom.Transform, out [][residualDim]float64, workers int) {
	par.For(len(g.Edges), workers, func(_, ei int) {
		e := &g.Edges[ei]
		edgeResidual(e, poses[e.I], poses[e.J], &out[ei])
	})
}

// huberScales derives each edge's frozen IRLS scale from its current
// residual: 1 for quadratic edges, sqrt(δ/‖r‖) where the Huber kernel is
// active on Robust edges.
func (g *Graph) huberScales(resids [][residualDim]float64, scales []float64, huber float64) {
	for ei := range g.Edges {
		scales[ei] = 1
		if !g.Edges[ei].Robust || huber <= 0 {
			continue
		}
		var s2 float64
		for _, v := range resids[ei] {
			s2 += v * v
		}
		if s := math.Sqrt(s2); s > huber {
			scales[ei] = math.Sqrt(huber / s)
		}
	}
}

// scaledCost is 0.5·Σ‖scale·r‖², summed serially in edge order.
func scaledCost(resids [][residualDim]float64, scales []float64) float64 {
	var cost float64
	for ei := range resids {
		s2 := scales[ei] * scales[ei]
		for _, v := range resids[ei] {
			cost += s2 * v * v
		}
	}
	return 0.5 * cost
}

// linearize fills the per-edge Jacobian slots by central differences on
// the 12 local perturbation parameters of each edge's two nodes, with
// the edge's frozen robust scale folded in.
func (g *Graph) linearize(poses []geom.Transform, scales []float64, jacs [][residualDim * 12]float64, workers int) {
	par.For(len(g.Edges), workers, func(_, ei int) {
		e := &g.Edges[ei]
		var plus, minus [residualDim]float64
		for p := 0; p < 12; p++ {
			xi, xj := poses[e.I], poses[e.J]
			if p < 6 {
				xi = perturb(xi, p, jacStep)
			} else {
				xj = perturb(xj, p-6, jacStep)
			}
			edgeResidual(e, xi, xj, &plus)
			xi, xj = poses[e.I], poses[e.J]
			if p < 6 {
				xi = perturb(xi, p, -jacStep)
			} else {
				xj = perturb(xj, p-6, -jacStep)
			}
			edgeResidual(e, xi, xj, &minus)
			inv := scales[ei] / (2 * jacStep)
			for r := 0; r < residualDim; r++ {
				jacs[ei][r*12+p] = (plus[r] - minus[r]) * inv
			}
		}
	})
}

// perturb applies the p-th local perturbation of size eps to a pose:
// p 0–2 translate along the axes, p 3–5 left-multiply an axis rotation.
func perturb(x geom.Transform, p int, eps float64) geom.Transform {
	switch p {
	case 0:
		x.T.X += eps
	case 1:
		x.T.Y += eps
	case 2:
		x.T.Z += eps
	default:
		var w geom.Vec3
		switch p {
		case 3:
			w.X = eps
		case 4:
			w.Y = eps
		default:
			w.Z = eps
		}
		x.R = geom.ExpRotation(w).Mul(x.R)
	}
	return x
}

// edgeResidual writes the weighted 6-dim residual of edge e at node
// poses xi, xj (robust scaling is applied by the caller per IRLS
// iteration).
func edgeResidual(e *Edge, xi, xj geom.Transform, out *[residualDim]float64) {
	// E = Z⁻¹ ∘ (X_I⁻¹ ∘ X_J): identity when the measurement is satisfied.
	err := e.Z.Inverse().Compose(xi.Inverse().Compose(xj))
	rot := geom.LogRotation(err.R)
	wt, wr := e.TransWeight, e.RotWeight
	if wt == 0 {
		wt = 1
	}
	if wr == 0 {
		wr = 1
	}
	out[0] = wr * rot.X
	out[1] = wr * rot.Y
	out[2] = wr * rot.Z
	out[3] = wt * err.T.X
	out[4] = wt * err.T.Y
	out[5] = wt * err.T.Z
}

// accumulate folds one edge's JᵀJ and −Jᵀr contribution into the global
// normal equations. Node 0 has no state columns; its block is skipped.
func (g *Graph) accumulate(ei int, r *[residualDim]float64, jac *[residualDim * 12]float64, h, b []float64, n int) {
	e := &g.Edges[ei]
	dim := 6 * (n - 1)
	// Global column of each of the edge's 12 local params (-1 = fixed).
	var cols [12]int
	for p := 0; p < 12; p++ {
		node := e.I
		local := p
		if p >= 6 {
			node = e.J
			local = p - 6
		}
		if node == 0 {
			cols[p] = -1
			continue
		}
		cols[p] = 6*(node-1) + local
	}
	for a := 0; a < 12; a++ {
		ca := cols[a]
		if ca < 0 {
			continue
		}
		var jtr float64
		for k := 0; k < residualDim; k++ {
			jtr += jac[k*12+a] * r[k]
		}
		b[ca] -= jtr
		for bb := 0; bb < 12; bb++ {
			cb := cols[bb]
			if cb < 0 {
				continue
			}
			var s float64
			for k := 0; k < residualDim; k++ {
				s += jac[k*12+a] * jac[k*12+bb]
			}
			h[ca*dim+cb] += s
		}
	}
}

// applyDelta writes poses ∘ local updates into out: node k>0 moves by
// the 6 params at delta[6(k−1):], node 0 stays fixed.
func applyDelta(poses []geom.Transform, delta []float64, out []geom.Transform) {
	out[0] = poses[0]
	for k := 1; k < len(poses); k++ {
		d := delta[6*(k-1) : 6*k]
		x := poses[k]
		x.T.X += d[0]
		x.T.Y += d[1]
		x.T.Z += d[2]
		x.R = geom.ExpRotation(geom.Vec3{X: d[3], Y: d[4], Z: d[5]}).Mul(x.R)
		out[k] = x
	}
}
