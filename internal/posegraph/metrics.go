package posegraph

import (
	"math"

	"tigris/internal/geom"
)

// Trajectory-level accuracy metrics, the SLAM counterparts of the
// KITTI-style per-pair errors in internal/registration: ATE measures
// global consistency (what loop closure + optimization improve), RPE
// measures local odometry quality (which optimization should preserve).

// ATEResult summarizes absolute trajectory error.
type ATEResult struct {
	// RMSE / Mean / Max of the per-frame translational error in meters.
	RMSE, Mean, Max float64
	// Frames compared.
	Frames int
}

// ATE computes the absolute trajectory error of est against ref after
// anchoring both at their first pose (P'_k = P_0⁻¹ ∘ P_k), the standard
// evaluation for trajectories that share their origin by construction.
// The slices must have equal length ≥ 1.
func ATE(est, ref []geom.Transform) ATEResult {
	n := len(est)
	if len(ref) < n {
		n = len(ref)
	}
	var out ATEResult
	if n == 0 {
		return out
	}
	e0 := est[0].Inverse()
	r0 := ref[0].Inverse()
	var sum, sum2 float64
	for k := 0; k < n; k++ {
		ep := e0.Compose(est[k])
		rp := r0.Compose(ref[k])
		d := math.Sqrt(ep.T.Sub(rp.T).Norm2())
		sum += d
		sum2 += d * d
		if d > out.Max {
			out.Max = d
		}
	}
	out.Frames = n
	out.Mean = sum / float64(n)
	out.RMSE = math.Sqrt(sum2 / float64(n))
	return out
}

// RPEResult summarizes relative pose error over consecutive frames.
type RPEResult struct {
	// TransRMSE is the per-step translational error RMSE in meters.
	TransRMSE float64
	// RotRMSE is the per-step rotational error RMSE in radians.
	RotRMSE float64
	// Steps compared.
	Steps int
}

// RPE computes the relative pose error of est against ref over every
// consecutive frame pair: E_k = (R_k⁻¹R_{k+1})⁻¹ ∘ (Ê_k⁻¹Ê_{k+1}).
func RPE(est, ref []geom.Transform) RPEResult {
	n := len(est)
	if len(ref) < n {
		n = len(ref)
	}
	var out RPEResult
	if n < 2 {
		return out
	}
	var st, sr float64
	for k := 0; k+1 < n; k++ {
		de := est[k].Inverse().Compose(est[k+1])
		dr := ref[k].Inverse().Compose(ref[k+1])
		e := dr.Inverse().Compose(de)
		st += e.T.Norm2()
		a := e.RotationAngle()
		sr += a * a
	}
	out.Steps = n - 1
	out.TransRMSE = math.Sqrt(st / float64(out.Steps))
	out.RotRMSE = math.Sqrt(sr / float64(out.Steps))
	return out
}
