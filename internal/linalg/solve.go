package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// SolveDense solves the n×n system A·x = b in place using Gaussian
// elimination with partial pivoting. A is given row-major as a flat slice of
// length n*n. The inputs are not modified. The Levenberg–Marquardt solver
// uses this for its (J'J + λI)δ = J'r normal equations (6×6 for ICP).
func SolveDense(a []float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n*n {
		return nil, fmt.Errorf("linalg: matrix size %d does not match vector size %d", len(a), n)
	}
	// Working copies.
	m := make([]float64, len(a))
	copy(m, a)
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivoting: find the largest remaining entry in this column.
		pivot := col
		maxAbs := math.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m[r*n+col]); abs > maxAbs {
				maxAbs = abs
				pivot = r
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				m[col*n+c], m[pivot*n+c] = m[pivot*n+c], m[col*n+c]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below the pivot.
		inv := 1 / m[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r*n+c] -= f * m[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m[r*n+c] * x[c]
		}
		x[r] = s / m[r*n+r]
	}
	return x, nil
}

// MatVec computes y = A·x for a row-major n×m matrix A (n = len(y),
// m = len(x)).
func MatVec(a []float64, x []float64, y []float64) {
	m := len(x)
	for r := range y {
		var s float64
		row := a[r*m : (r+1)*m]
		for c, v := range row {
			s += v * x[c]
		}
		y[r] = s
	}
}
