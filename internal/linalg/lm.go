package linalg

import (
	"errors"
	"math"
)

// ResidualFunc evaluates the residual vector r(params) into out. The number
// of residuals is fixed by the caller (len(out) on every call).
type ResidualFunc func(params []float64, out []float64)

// LMOptions configures the Levenberg–Marquardt solver. Zero values select
// the documented defaults.
type LMOptions struct {
	// MaxIterations bounds outer LM iterations (default 50).
	MaxIterations int
	// InitialLambda is the starting damping factor (default 1e-3).
	InitialLambda float64
	// GradientTol stops when the max-abs gradient entry falls below it
	// (default 1e-10).
	GradientTol float64
	// StepTol stops when the parameter update norm falls below it
	// (default 1e-12).
	StepTol float64
	// JacobianStep is the central-difference step for the numeric Jacobian
	// (default 1e-6).
	JacobianStep float64
}

func (o *LMOptions) defaults() {
	if o.MaxIterations == 0 {
		o.MaxIterations = 50
	}
	if o.InitialLambda == 0 {
		o.InitialLambda = 1e-3
	}
	if o.GradientTol == 0 {
		o.GradientTol = 1e-10
	}
	if o.StepTol == 0 {
		o.StepTol = 1e-12
	}
	if o.JacobianStep == 0 {
		o.JacobianStep = 1e-6
	}
}

// LMResult reports the outcome of a Levenberg–Marquardt run.
type LMResult struct {
	Params     []float64
	Cost       float64 // final 0.5·‖r‖²
	Iterations int
	Converged  bool
}

// ErrLMDimensions is returned when the residual count is smaller than the
// parameter count.
var ErrLMDimensions = errors.New("linalg: fewer residuals than parameters")

// LevenbergMarquardt minimizes 0.5·‖r(p)‖² over p starting from initial,
// with nResiduals residual terms, using a numerically differentiated
// Jacobian. This is the paper's optional ICP solver choice (Tbl. 1,
// "Solver": Levenberg-Marquardt [45]); the point-to-plane error metric uses
// it to optimize the 6-DoF twist.
func LevenbergMarquardt(f ResidualFunc, initial []float64, nResiduals int, opts LMOptions) (LMResult, error) {
	opts.defaults()
	nParams := len(initial)
	if nResiduals < nParams {
		return LMResult{}, ErrLMDimensions
	}

	params := make([]float64, nParams)
	copy(params, initial)

	r := make([]float64, nResiduals)
	rTrial := make([]float64, nResiduals)
	jac := make([]float64, nResiduals*nParams) // row-major, row = residual
	jtj := make([]float64, nParams*nParams)
	jtr := make([]float64, nParams)
	trial := make([]float64, nParams)

	f(params, r)
	cost := halfNorm2(r)
	lambda := opts.InitialLambda

	res := LMResult{Params: params, Cost: cost}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		numericJacobian(f, params, r, jac, rTrial, opts.JacobianStep)

		// Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = -Jᵀr  (Marquardt scaling).
		for i := 0; i < nParams; i++ {
			jtr[i] = 0
			for j := 0; j < nParams; j++ {
				var s float64
				for k := 0; k < nResiduals; k++ {
					s += jac[k*nParams+i] * jac[k*nParams+j]
				}
				jtj[i*nParams+j] = s
			}
			for k := 0; k < nResiduals; k++ {
				jtr[i] += jac[k*nParams+i] * r[k]
			}
		}

		// Gradient convergence check.
		maxGrad := 0.0
		for _, g := range jtr {
			if a := math.Abs(g); a > maxGrad {
				maxGrad = a
			}
		}
		if maxGrad < opts.GradientTol {
			res.Converged = true
			break
		}

		improved := false
		for attempt := 0; attempt < 20; attempt++ {
			// Damped system.
			a := make([]float64, len(jtj))
			copy(a, jtj)
			for i := 0; i < nParams; i++ {
				d := jtj[i*nParams+i]
				if d == 0 {
					d = 1
				}
				a[i*nParams+i] += lambda * d
			}
			neg := make([]float64, nParams)
			for i, g := range jtr {
				neg[i] = -g
			}
			delta, err := SolveDense(a, neg)
			if err != nil {
				lambda *= 10
				continue
			}
			for i := range trial {
				trial[i] = params[i] + delta[i]
			}
			f(trial, rTrial)
			trialCost := halfNorm2(rTrial)
			if trialCost < cost {
				copy(params, trial)
				copy(r, rTrial)
				cost = trialCost
				lambda = math.Max(lambda*0.3, 1e-12)
				improved = true
				if norm2(delta) < opts.StepTol*opts.StepTol {
					res.Converged = true
				}
				break
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
		res.Cost = cost
		if !improved || res.Converged {
			if !improved {
				res.Converged = true // stuck in a (local) minimum
			}
			break
		}
	}
	res.Params = params
	res.Cost = cost
	return res, nil
}

// numericJacobian fills jac (row-major, nResiduals×nParams) with central
// differences. r0 is the residual at params (used only for sizing); scratch
// must have len(r0).
func numericJacobian(f ResidualFunc, params, r0, jac, scratch []float64, step float64) {
	nParams := len(params)
	nRes := len(r0)
	plus := make([]float64, nRes)
	for j := 0; j < nParams; j++ {
		h := step * math.Max(1, math.Abs(params[j]))
		orig := params[j]
		params[j] = orig + h
		f(params, plus)
		params[j] = orig - h
		f(params, scratch)
		params[j] = orig
		inv := 1 / (2 * h)
		for i := 0; i < nRes; i++ {
			jac[i*nParams+j] = (plus[i] - scratch[i]) * inv
		}
	}
}

func halfNorm2(v []float64) float64 { return 0.5 * norm2(v) }

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}
