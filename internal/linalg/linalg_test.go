package linalg

import (
	"math"
	"math/rand"
	"testing"

	"tigris/internal/geom"
)

func randSym(r *rand.Rand) geom.Mat3 {
	var m geom.Mat3
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			v := r.Float64()*10 - 5
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func randMat(r *rand.Rand) geom.Mat3 {
	var m geom.Mat3
	for i := range m {
		m[i] = r.Float64()*10 - 5
	}
	return m
}

func mat3Approx(a, b geom.Mat3, tol float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestEigenSym3Reconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		m := randSym(r)
		e := EigenSym3(m)
		// Reconstruct M = Σ λᵢ·vᵢvᵢᵀ.
		var rec geom.Mat3
		for k := 0; k < 3; k++ {
			rec = rec.Add(geom.OuterProduct(e.Vectors[k], e.Vectors[k]).Scale(e.Values[k]))
		}
		if !mat3Approx(m, rec, 1e-8) {
			t.Fatalf("eigen reconstruction failed:\nm=%v\nrec=%v", m, rec)
		}
	}
}

func TestEigenSym3Sorted(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		e := EigenSym3(randSym(r))
		if e.Values[0] > e.Values[1] || e.Values[1] > e.Values[2] {
			t.Fatalf("eigenvalues not sorted: %v", e.Values)
		}
	}
}

func TestEigenSym3VectorsOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		e := EigenSym3(randSym(r))
		for a := 0; a < 3; a++ {
			if n := e.Vectors[a].Norm(); math.Abs(n-1) > 1e-9 {
				t.Fatalf("eigenvector %d not unit: %v", a, n)
			}
			for b := a + 1; b < 3; b++ {
				if d := e.Vectors[a].Dot(e.Vectors[b]); math.Abs(d) > 1e-8 {
					t.Fatalf("eigenvectors %d,%d not orthogonal: %v", a, b, d)
				}
			}
		}
	}
}

func TestEigenSym3SatisfiesDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		m := randSym(r)
		e := EigenSym3(m)
		for k := 0; k < 3; k++ {
			mv := m.MulVec(e.Vectors[k])
			lv := e.Vectors[k].Scale(e.Values[k])
			if mv.Sub(lv).Norm() > 1e-7*(1+math.Abs(e.Values[k])) {
				t.Fatalf("M·v != λ·v for pair %d: %v vs %v", k, mv, lv)
			}
		}
	}
}

func TestEigenSym3Diagonal(t *testing.T) {
	m := geom.Mat3{3, 0, 0, 0, -1, 0, 0, 0, 2}
	e := EigenSym3(m)
	want := [3]float64{-1, 2, 3}
	for i := range want {
		if math.Abs(e.Values[i]-want[i]) > 1e-12 {
			t.Errorf("eigenvalue %d = %v, want %v", i, e.Values[i], want[i])
		}
	}
}

func TestSVD3Reconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a := randMat(r)
		d := ComputeSVD3(a)
		if !mat3Approx(a, d.Reconstruct(), 1e-7) {
			t.Fatalf("SVD reconstruction failed:\na=%v\nrec=%v\nS=%v", a, d.Reconstruct(), d.S)
		}
	}
}

func TestSVD3Orthogonality(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	id := geom.Identity3()
	for i := 0; i < 200; i++ {
		d := ComputeSVD3(randMat(r))
		if !mat3Approx(d.U.Transpose().Mul(d.U), id, 1e-8) {
			t.Fatal("U not orthogonal")
		}
		if !mat3Approx(d.V.Transpose().Mul(d.V), id, 1e-8) {
			t.Fatal("V not orthogonal")
		}
	}
}

func TestSVD3SortedNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		d := ComputeSVD3(randMat(r))
		if d.S[0] < d.S[1] || d.S[1] < d.S[2] || d.S[2] < 0 {
			t.Fatalf("singular values not sorted/non-negative: %v", d.S)
		}
	}
}

func TestSVD3RankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := geom.OuterProduct(geom.Vec3{X: 1, Y: 2, Z: 3}, geom.Vec3{X: 4, Y: 5, Z: 6})
	d := ComputeSVD3(a)
	if !mat3Approx(a, d.Reconstruct(), 1e-8) {
		t.Fatalf("rank-1 SVD reconstruction failed")
	}
	if d.S[1] > 1e-8 || d.S[2] > 1e-8 {
		t.Fatalf("rank-1 matrix should have one nonzero singular value: %v", d.S)
	}
	// Zero matrix.
	var z geom.Mat3
	dz := ComputeSVD3(z)
	for _, s := range dz.S {
		if s != 0 {
			t.Fatalf("zero matrix singular values: %v", dz.S)
		}
	}
}

func TestSVD3OfRotation(t *testing.T) {
	rot := geom.AxisAngle(geom.Vec3{X: 1, Y: 1, Z: 0}, 0.7)
	d := ComputeSVD3(rot)
	for _, s := range d.S {
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("rotation singular values should be 1: %v", d.S)
		}
	}
}

func TestSolveDenseKnown(t *testing.T) {
	// 2x + y = 5; x - y = 1 → x=2, y=1.
	x, err := SolveDense([]float64{2, 1, 1, -1}, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("solution = %v", x)
	}
}

func TestSolveDenseRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(7) // up to 8×8, covers the 6×6 LM case
		a := make([]float64, n*n)
		for i := range a {
			a[i] = r.Float64()*4 - 2
		}
		// Diagonal dominance keeps the random systems well-conditioned.
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) * 3
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.Float64()*10 - 5
		}
		b := make([]float64, n)
		MatVec(a, want, b)
		got, err := SolveDense(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("solve mismatch at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestSolveDenseSingular(t *testing.T) {
	_, err := SolveDense([]float64{1, 2, 2, 4}, []float64{1, 2})
	if err == nil {
		t.Fatal("expected error for singular system")
	}
}

func TestSolveDenseDimensionMismatch(t *testing.T) {
	if _, err := SolveDense([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSolveDenseNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	x, err := SolveDense([]float64{0, 1, 1, 0}, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solution = %v", x)
	}
}

func TestLMQuadraticBowl(t *testing.T) {
	// Minimize (p0-3)² + (p1+2)²: residuals are the two terms directly.
	f := func(p []float64, out []float64) {
		out[0] = p[0] - 3
		out[1] = p[1] + 2
	}
	res, err := LevenbergMarquardt(f, []float64{0, 0}, 2, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-3) > 1e-6 || math.Abs(res.Params[1]+2) > 1e-6 {
		t.Fatalf("LM solution = %v", res.Params)
	}
	if !res.Converged {
		t.Error("LM should report convergence")
	}
}

func TestLMRosenbrock(t *testing.T) {
	// Rosenbrock as least squares: r1 = 10(y - x²), r2 = 1 - x.
	f := func(p []float64, out []float64) {
		out[0] = 10 * (p[1] - p[0]*p[0])
		out[1] = 1 - p[0]
	}
	res, err := LevenbergMarquardt(f, []float64{-1.2, 1}, 2, LMOptions{MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-1) > 1e-4 || math.Abs(res.Params[1]-1) > 1e-4 {
		t.Fatalf("Rosenbrock solution = %v (cost %v)", res.Params, res.Cost)
	}
}

func TestLMCurveFit(t *testing.T) {
	// Fit a + b·x to noisy-free samples of 2 + 0.5·x.
	xs := []float64{0, 1, 2, 3, 4, 5}
	f := func(p []float64, out []float64) {
		for i, x := range xs {
			out[i] = p[0] + p[1]*x - (2 + 0.5*x)
		}
	}
	res, err := LevenbergMarquardt(f, []float64{0, 0}, len(xs), LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-2) > 1e-6 || math.Abs(res.Params[1]-0.5) > 1e-6 {
		t.Fatalf("fit = %v", res.Params)
	}
	if res.Cost > 1e-12 {
		t.Fatalf("residual cost = %v", res.Cost)
	}
}

func TestLMUnderdetermined(t *testing.T) {
	f := func(p []float64, out []float64) { out[0] = p[0] + p[1] }
	if _, err := LevenbergMarquardt(f, []float64{0, 0}, 1, LMOptions{}); err == nil {
		t.Fatal("expected error for underdetermined problem")
	}
}

func TestMatVec(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2×3
	x := []float64{1, 0, -1}
	y := make([]float64, 2)
	MatVec(a, x, y)
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MatVec = %v", y)
	}
}
