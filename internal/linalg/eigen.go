// Package linalg implements the small-matrix numeric kernels the Tigris
// pipeline depends on: a cyclic-Jacobi symmetric eigensolver, a 3×3 singular
// value decomposition, dense Gaussian elimination for the normal equations,
// and a Levenberg–Marquardt solver (the fine-tuning phase's optional ICP
// solver, paper Tbl. 1).
//
// Everything here is written for 3–6 dimensional problems; clarity and
// numerical robustness are favored over asymptotic tricks.
package linalg

import (
	"math"

	"tigris/internal/geom"
)

// SymEigen3 holds the eigendecomposition of a symmetric 3×3 matrix.
// Eigenvalues are sorted ascending; Vectors[i] is the unit eigenvector for
// Values[i]. Normal estimation uses the eigenvector of the smallest
// eigenvalue of the neighborhood covariance as the surface normal
// (PlaneSVD, paper Tbl. 1), and Harris3D uses the full spectrum.
type SymEigen3 struct {
	Values  [3]float64
	Vectors [3]geom.Vec3
}

// EigenSym3 computes the eigendecomposition of a symmetric 3×3 matrix using
// the cyclic Jacobi method. Only the lower/upper symmetric part is assumed
// consistent; the matrix is not modified.
func EigenSym3(m geom.Mat3) SymEigen3 {
	// Work on copies: a is driven to diagonal form, v accumulates rotations.
	a := m
	v := geom.Identity3()

	const maxSweeps = 50
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Sum of squares of off-diagonal elements.
		off := a.At(0, 1)*a.At(0, 1) + a.At(0, 2)*a.At(0, 2) + a.At(1, 2)*a.At(1, 2)
		if off < 1e-30 {
			break
		}
		for p := 0; p < 2; p++ {
			for q := p + 1; q < 3; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := a.At(p, p)
				aqq := a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				// Stable tangent of the rotation angle.
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// Apply the Givens rotation G(p,q,θ) on both sides of a and
				// accumulate it into v.
				for k := 0; k < 3; k++ {
					akp := a.At(k, p)
					akq := a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < 3; k++ {
					apk := a.At(p, k)
					aqk := a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < 3; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	res := SymEigen3{
		Values: [3]float64{a.At(0, 0), a.At(1, 1), a.At(2, 2)},
		Vectors: [3]geom.Vec3{
			{X: v.At(0, 0), Y: v.At(1, 0), Z: v.At(2, 0)},
			{X: v.At(0, 1), Y: v.At(1, 1), Z: v.At(2, 1)},
			{X: v.At(0, 2), Y: v.At(1, 2), Z: v.At(2, 2)},
		},
	}
	res.sort()
	return res
}

// sort orders eigenpairs by ascending eigenvalue.
func (e *SymEigen3) sort() {
	for i := 0; i < 2; i++ {
		for j := i + 1; j < 3; j++ {
			if e.Values[j] < e.Values[i] {
				e.Values[i], e.Values[j] = e.Values[j], e.Values[i]
				e.Vectors[i], e.Vectors[j] = e.Vectors[j], e.Vectors[i]
			}
		}
	}
}

// SVD3 holds the singular value decomposition A = U·diag(S)·Vᵀ of a 3×3
// matrix. Singular values are sorted descending and non-negative; U and V
// are orthogonal. The Umeyama transform estimator (registration) consumes
// this decomposition.
type SVD3 struct {
	U geom.Mat3
	S [3]float64
	V geom.Mat3
}

// ComputeSVD3 computes the SVD of a 3×3 matrix via the eigendecomposition
// of AᵀA (for V and the singular values), recovering U = A·V·S⁻¹ with a
// null-space completion for rank-deficient inputs.
func ComputeSVD3(a geom.Mat3) SVD3 {
	ata := a.Transpose().Mul(a)
	eig := EigenSym3(ata)

	// Descending order of singular values.
	var s [3]float64
	var vcols [3]geom.Vec3
	for i := 0; i < 3; i++ {
		ev := eig.Values[2-i]
		if ev < 0 {
			ev = 0 // numerical noise on a PSD matrix
		}
		s[i] = math.Sqrt(ev)
		vcols[i] = eig.Vectors[2-i]
	}

	// Make V a proper orthonormal basis (EigenSym3 already gives orthonormal
	// vectors up to sign; enforce right-handedness for stability of the
	// cross-product completion below).
	if vcols[0].Cross(vcols[1]).Dot(vcols[2]) < 0 {
		vcols[2] = vcols[2].Neg()
	}

	var ucols [3]geom.Vec3
	// Eigenvalues of AᵀA carry O(ε·‖A‖²) numerical noise, so singular values
	// below √ε relative to the largest are indistinguishable from zero.
	// Treat them as exact zeros and complete U orthogonally instead of
	// dividing by noise.
	tiny := math.Max(1e-300, 1e-7*s[0])
	for i := 0; i < 3; i++ {
		if s[i] > tiny {
			ucols[i] = a.MulVec(vcols[i]).Scale(1 / s[i])
		} else {
			s[i] = 0
			// Complete U orthogonally. For i==0 the matrix is ~zero; pick an
			// arbitrary basis. Otherwise use the cross product of previous
			// columns (i is at most 2 when previous two exist).
			switch i {
			case 0:
				ucols[0] = geom.Vec3{X: 1}
			case 1:
				b1, _ := ucols[0].OrthoBasis()
				ucols[1] = b1
			default:
				ucols[2] = ucols[0].Cross(ucols[1]).Normalize()
			}
		}
	}
	// Re-orthonormalize U columns (Gram-Schmidt) to suppress drift when
	// singular values are close.
	ucols[0] = ucols[0].Normalize()
	ucols[1] = ucols[1].Sub(ucols[0].Scale(ucols[0].Dot(ucols[1]))).Normalize()
	if ucols[1].Norm() == 0 {
		ucols[1], _ = ucols[0].OrthoBasis()
	}
	ucols[2] = ucols[2].
		Sub(ucols[0].Scale(ucols[0].Dot(ucols[2]))).
		Sub(ucols[1].Scale(ucols[1].Dot(ucols[2]))).
		Normalize()
	if ucols[2].Norm() == 0 {
		ucols[2] = ucols[0].Cross(ucols[1])
	}

	return SVD3{
		U: matFromCols(ucols),
		S: s,
		V: matFromCols(vcols),
	}
}

// matFromCols assembles a matrix whose columns are the given vectors.
func matFromCols(c [3]geom.Vec3) geom.Mat3 {
	return geom.Mat3{
		c[0].X, c[1].X, c[2].X,
		c[0].Y, c[1].Y, c[2].Y,
		c[0].Z, c[1].Z, c[2].Z,
	}
}

// Reconstruct returns U·diag(S)·Vᵀ, useful for verifying the decomposition.
func (d SVD3) Reconstruct() geom.Mat3 {
	ds := geom.Mat3{
		d.S[0], 0, 0,
		0, d.S[1], 0,
		0, 0, d.S[2],
	}
	return d.U.Mul(ds).Mul(d.V.Transpose())
}
