package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
)

// Trace layer: structured span trees on top of the histogram recorder.
//
// A TraceID names one logical request stream (one serving session, one
// bench run); SpanEvents are completed intervals inside it, linked by
// span/parent ids into a tree (frame spans parent the per-stage spans
// the registration pipeline already times). Events land in a
// FlightRecorder — a bounded, sharded ring that is always on and
// allocation-free on the record path, so it rides the same hot paths as
// the histograms without disturbing the pipeline's determinism or its
// per-frame allocation budgets. Slowest-K exemplar buffers per stage
// retain the span trees behind the current tail even after the ring
// wraps past them.

// TraceID is a 16-byte W3C-trace-context-compatible trace identifier.
// The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether t is the absent trace id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex characters (the W3C
// trace-id field, and the X-Tigris-Trace header value).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// NewTraceID mints a random trace id. Randomness here is fine — ids
// only name traces, they never influence pipeline computation.
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		// Entropy failure: fall back to a counter so ids stay unique
		// within the process rather than panicking a serving path.
		n := fallbackTraceCtr.Add(1)
		for i := 0; i < 8; i++ {
			t[15-i] = byte(n >> (8 * i))
		}
		t[0] = 0xfb
	}
	return t
}

var fallbackTraceCtr atomic.Uint64

// ParseTraceID parses 32 hex characters into a TraceID. The all-zero
// id is rejected, per the W3C trace-context spec.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	if t.IsZero() {
		return t, false
	}
	return t, true
}

// ParseTraceParent extracts the trace id from a W3C traceparent header
// (`00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>`). Only the
// trace id is used — tigris spans form their own tree under it.
func ParseTraceParent(s string) (TraceID, bool) {
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceID{}, false
	}
	if s[0] != '0' || s[1] != '0' {
		return TraceID{}, false
	}
	return ParseTraceID(s[3:35])
}

// FormatTraceParent renders a traceparent header for outbound
// propagation. span is the caller's current span id (0 is rendered as
// a synthetic non-zero parent, since the spec forbids all-zero).
func FormatTraceParent(t TraceID, span uint64) string {
	if span == 0 {
		span = 1
	}
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], t[:])
	b[35] = '-'
	var sp [8]byte
	for i := 0; i < 8; i++ {
		sp[i] = byte(span >> (8 * (7 - i)))
	}
	hex.Encode(b[36:52], sp[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// SpanEvent is one completed span: a (stage, duration) observation
// annotated with its position in a trace's tree. Plain value type, no
// heap references beyond the stage-name string (call sites pass the
// obs.Stage* constants), so ring writes are a fixed-size copy.
type SpanEvent struct {
	Trace  TraceID
	Span   uint64 // this span's id (unique within the recorder)
	Parent uint64 // parent span id; 0 = root (a whole-frame span)
	Frame  int32  // frame index the span belongs to; -1 if frameless
	Stage  string // obs.Stage* vocabulary
	Start  int64  // wall-clock start, UnixNano
	Dur    int64  // nanoseconds
}

// Exemplar is one retained slowest-K entry for a stage: the span plus,
// for root (whole-frame) spans, a copy of its subtree taken at
// admission time — so the trees behind the tail survive ring wrap.
type Exemplar struct {
	Trace  TraceID
	Span   uint64
	Frame  int32
	Start  int64
	Dur    int64
	Events []SpanEvent // root-first subtree snapshot; nil for leaf spans
}

// flightShards stripes the ring across independent segments picked by
// the same per-goroutine stack hint the histograms use, so pipeline
// stages recording concurrently do not serialize on one mutex.
const flightShards = 4

type flightShard struct {
	mu   sync.Mutex
	pos  uint64 // total events written to this shard
	ring []SpanEvent
	_    [64]byte
}

// FlightRecorder is a bounded in-memory span sink: a sharded ring
// buffer holding the most recent ~capacity span events, plus per-stage
// slowest-K exemplar buffers. All methods are safe on a nil receiver
// and for concurrent use. Record never allocates in steady state (a
// shard-local mutex guards a fixed-slot copy; exemplar admission
// allocates only when a new tail-beating sample arrives).
type FlightRecorder struct {
	spanCtr   atomic.Uint64
	total     atomic.Uint64
	shards    [flightShards]flightShard
	exemplars sync.Map // stage name -> *exemplarBuf
	slowestK  int
}

// exemplarSpanBase keeps counter-allocated span ids disjoint from the
// deterministic small ids the stream engine assigns to frame spans.
const exemplarSpanBase = 1 << 32

// NewFlightRecorder returns a recorder retaining roughly `capacity`
// events (rounded up to a multiple of the shard count; min 64) and
// `slowestK` exemplars per stage (min 1).
func NewFlightRecorder(capacity, slowestK int) *FlightRecorder {
	if capacity < 64 {
		capacity = 64
	}
	if slowestK < 1 {
		slowestK = 1
	}
	per := (capacity + flightShards - 1) / flightShards
	f := &FlightRecorder{slowestK: slowestK}
	f.spanCtr.Store(exemplarSpanBase)
	for i := range f.shards {
		f.shards[i].ring = make([]SpanEvent, per)
	}
	return f
}

// NextSpanID allocates a process-unique span id.
func (f *FlightRecorder) NextSpanID() uint64 {
	if f == nil {
		return 0
	}
	return f.spanCtr.Add(1)
}

// Record appends one completed span to the ring (overwriting the
// oldest event in its shard once full) and runs slowest-K admission
// for the span's stage. ev.Span == 0 gets a fresh id. Nil-safe.
func (f *FlightRecorder) Record(ev SpanEvent) {
	if f == nil {
		return
	}
	if ev.Span == 0 {
		ev.Span = f.spanCtr.Add(1)
	}
	s := &f.shards[shardHint()&(flightShards-1)]
	s.mu.Lock()
	s.ring[s.pos%uint64(len(s.ring))] = ev
	s.pos++
	s.mu.Unlock()
	f.total.Add(1)
	f.admit(ev)
}

// TotalRecorded returns the number of events ever recorded (including
// those the ring has since overwritten).
func (f *FlightRecorder) TotalRecorded() uint64 {
	if f == nil {
		return 0
	}
	return f.total.Load()
}

// Events returns a merged snapshot of the ring, oldest first (sorted
// by start time). Export path — allocates freely.
func (f *FlightRecorder) Events() []SpanEvent {
	if f == nil {
		return nil
	}
	var out []SpanEvent
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		n := s.pos
		cap64 := uint64(len(s.ring))
		start := uint64(0)
		if n > cap64 {
			start = n - cap64
		}
		for p := start; p < n; p++ {
			out = append(out, s.ring[p%cap64])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// exemplarBuf holds one stage's slowest-K entries.
type exemplarBuf struct {
	mu      sync.Mutex
	entries []Exemplar // len <= K; unordered, min found by scan (K is small)
}

func (f *FlightRecorder) stageBuf(stage string) *exemplarBuf {
	if b, ok := f.exemplars.Load(stage); ok {
		return b.(*exemplarBuf)
	}
	b := &exemplarBuf{entries: make([]Exemplar, 0, f.slowestK)}
	if actual, loaded := f.exemplars.LoadOrStore(stage, b); loaded {
		return actual.(*exemplarBuf)
	}
	return b
}

// admit runs slowest-K admission: keep ev if the stage's buffer has
// room or ev outlasts the current minimum. Steady-state samples that
// do not beat the retained tail cost one lock and a K-element scan —
// no allocation.
func (f *FlightRecorder) admit(ev SpanEvent) {
	b := f.stageBuf(ev.Stage)
	b.mu.Lock()
	slot := -1
	if len(b.entries) < cap(b.entries) {
		b.entries = b.entries[:len(b.entries)+1]
		slot = len(b.entries) - 1
	} else {
		min := 0
		for i := 1; i < len(b.entries); i++ {
			if b.entries[i].Dur < b.entries[min].Dur {
				min = i
			}
		}
		if ev.Dur > b.entries[min].Dur {
			slot = min
		}
	}
	if slot < 0 {
		b.mu.Unlock()
		return
	}
	ex := Exemplar{Trace: ev.Trace, Span: ev.Span, Frame: ev.Frame, Start: ev.Start, Dur: ev.Dur}
	if ev.Parent == 0 {
		// Root span: copy its subtree out of the ring now, before the
		// ring wraps past the children. Admission is rare after warmup,
		// so the allocation and scan stay off the steady-state budget.
		ex.Events = f.collectTree(ev)
	}
	b.entries[slot] = ex
	b.mu.Unlock()
}

// collectTree snapshots root and every ring event reachable from it
// through parent links (the stage spans of one frame), root first.
// The span forest is at most three levels deep (frame → stage →
// sub-stage), so two expansion passes suffice.
func (f *FlightRecorder) collectTree(root SpanEvent) []SpanEvent {
	all := f.Events()
	in := map[uint64]bool{root.Span: true}
	tree := []SpanEvent{root}
	for pass := 0; pass < 2; pass++ {
		for _, ev := range all {
			if ev.Trace == root.Trace && in[ev.Parent] && !in[ev.Span] {
				in[ev.Span] = true
				tree = append(tree, ev)
			}
		}
	}
	sort.Slice(tree[1:], func(i, j int) bool { return tree[i+1].Start < tree[j+1].Start })
	return tree
}

// Slowest returns each stage's retained exemplars, slowest first.
func (f *FlightRecorder) Slowest() map[string][]Exemplar {
	if f == nil {
		return nil
	}
	out := make(map[string][]Exemplar)
	f.exemplars.Range(func(k, v any) bool {
		b := v.(*exemplarBuf)
		b.mu.Lock()
		es := make([]Exemplar, len(b.entries))
		for i := range b.entries {
			es[i] = b.entries[i]
			if b.entries[i].Events != nil {
				es[i].Events = append([]SpanEvent(nil), b.entries[i].Events...)
			}
		}
		b.mu.Unlock()
		sort.Slice(es, func(i, j int) bool { return es[i].Dur > es[j].Dur })
		out[k.(string)] = es
		return true
	})
	return out
}

// Export is a consistent read-side view of a flight recorder: the ring
// snapshot plus the exemplar buffers (whose copied subtrees may reach
// further back than the ring itself).
type Export struct {
	Events  []SpanEvent
	Slowest map[string][]Exemplar
}

// Export snapshots the recorder for serialization. Nil-safe.
func (f *FlightRecorder) Export() Export {
	if f == nil {
		return Export{}
	}
	return Export{Events: f.Events(), Slowest: f.Slowest()}
}
