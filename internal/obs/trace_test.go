package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero id")
	}
	s := id.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("String() = %q, want 32 lowercase hex chars", s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", s, back, ok)
	}
	if id2 := NewTraceID(); id2 == id {
		t.Fatal("two NewTraceID calls collided")
	}

	for _, bad := range []string{
		"",
		"0102",
		strings.Repeat("0", 32), // all-zero forbidden
		strings.Repeat("g", 32), // not hex
		strings.Repeat("a", 31), // short
		strings.Repeat("a", 33), // long
	} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	id := NewTraceID()
	for _, span := range []uint64{0, 1, 0xdeadbeef} {
		hdr := FormatTraceParent(id, span)
		if len(hdr) != 55 {
			t.Fatalf("FormatTraceParent len = %d, want 55 (%q)", len(hdr), hdr)
		}
		back, ok := ParseTraceParent(hdr)
		if !ok || back != id {
			t.Fatalf("ParseTraceParent(%q) = %v, %v", hdr, back, ok)
		}
	}

	for _, bad := range []string{
		"",
		"00-" + strings.Repeat("0", 32) + "-0000000000000001-01", // all-zero trace id
		"01-" + NewTraceID().String() + "-0000000000000001-01",   // unknown version
		"00-" + NewTraceID().String() + "-0000000000000001",      // truncated
		strings.Repeat("x", 55),                                  // right length, wrong shape
	} {
		if _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted", bad)
		}
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	const capacity = 64
	fr := NewFlightRecorder(capacity, 1)
	trace := NewTraceID()
	const n = 1000
	for i := 0; i < n; i++ {
		fr.Record(SpanEvent{
			Trace: trace,
			Span:  uint64(i) + 1,
			Frame: int32(i),
			Stage: "wrap_stage",
			Start: int64(i),
			Dur:   1,
		})
	}
	if got := fr.TotalRecorded(); got != n {
		t.Fatalf("TotalRecorded = %d, want %d", got, n)
	}
	evs := fr.Events()
	if len(evs) == 0 || len(evs) > capacity {
		t.Fatalf("ring snapshot has %d events, want 1..%d", len(evs), capacity)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatalf("events not sorted by start: [%d]=%d after %d", i, evs[i].Start, evs[i-1].Start)
		}
	}
	// Recency: the newest event always survives a wrap (each shard ring
	// keeps its own newest; the last write is by definition among them).
	found := false
	for _, ev := range evs {
		if ev.Start == n-1 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("newest event missing after wrap (retained %d of %d)", len(evs), n)
	}
}

// TestSlowestKSurvivesWrap pins the exemplar contract: the slowest K
// root spans of a stage keep their full subtree snapshots even after
// the ring has wrapped far past the events they refer to.
func TestSlowestKSurvivesWrap(t *testing.T) {
	const k = 2
	fr := NewFlightRecorder(64, k)
	trace := NewTraceID()

	// 100 frames, each a root span with two stage children recorded
	// first (as the pipeline does). Root durations ascend, so the
	// slowest K are the last two frames.
	for i := 0; i < 100; i++ {
		root := uint64(i)*10 + 1
		base := int64(i * 1000)
		fr.Record(SpanEvent{Trace: trace, Span: root + 1, Parent: root, Frame: int32(i), Stage: "prep", Start: base, Dur: 5})
		fr.Record(SpanEvent{Trace: trace, Span: root + 2, Parent: root, Frame: int32(i), Stage: "align", Start: base + 5, Dur: 5})
		fr.Record(SpanEvent{Trace: trace, Span: root, Parent: 0, Frame: int32(i), Stage: "frame", Start: base, Dur: int64(i + 1)})
	}

	slow := fr.Slowest()["frame"]
	if len(slow) != k {
		t.Fatalf("retained %d frame exemplars, want %d", len(slow), k)
	}
	if slow[0].Dur < slow[1].Dur {
		t.Fatalf("exemplars not slowest-first: %d then %d", slow[0].Dur, slow[1].Dur)
	}
	if slow[0].Frame != 99 || slow[1].Frame != 98 {
		t.Fatalf("retained frames %d, %d; want 99, 98", slow[0].Frame, slow[1].Frame)
	}
	for _, ex := range slow {
		if len(ex.Events) != 3 {
			t.Fatalf("frame %d subtree has %d events, want root + 2 children", ex.Frame, len(ex.Events))
		}
		if ex.Events[0].Span != ex.Span || ex.Events[0].Parent != 0 {
			t.Fatalf("subtree not root-first: %+v", ex.Events[0])
		}
		for _, child := range ex.Events[1:] {
			if child.Parent != ex.Span {
				t.Fatalf("child %+v not parented to root %d", child, ex.Span)
			}
		}
		if ex.Events[1].Start > ex.Events[2].Start {
			t.Fatal("children not sorted by start")
		}
	}

	// The children of frame 98/99 are long gone from the 64-slot ring —
	// prove the exemplar copies are what preserved them.
	evs := fr.Events()
	oldest := evs[0].Start
	if oldest <= 98*1000 {
		t.Skipf("ring unexpectedly still holds old events (oldest start %d)", oldest)
	}
}

func TestFlightRecorderConcurrentRecord(t *testing.T) {
	fr := NewFlightRecorder(256, 4)
	trace := NewTraceID()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fr.Record(SpanEvent{Trace: trace, Frame: int32(i), Stage: "conc", Start: int64(i), Dur: int64(g*1000 + i)})
				if i%100 == 0 {
					_ = fr.Events()
					_ = fr.Slowest()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := fr.TotalRecorded(); got != 8*500 {
		t.Fatalf("TotalRecorded = %d, want %d", got, 8*500)
	}
	// Auto-assigned span ids must be unique across goroutines.
	seen := map[uint64]bool{}
	for _, ev := range fr.Events() {
		if ev.Span == 0 || seen[ev.Span] {
			t.Fatalf("duplicate or zero span id %d", ev.Span)
		}
		seen[ev.Span] = true
	}
}

// TestTracedObserveZeroAlloc holds the traced Observe path to the same
// steady-state allocation contract as the bare histogram path: once the
// stage's exemplar buffer is warm, recording a span allocates nothing.
func TestTracedObserveZeroAlloc(t *testing.T) {
	fr := NewFlightRecorder(1024, 2)
	rec := NewRecorder().Traced(fr, NewTraceID())
	rec.SetScope(7, 3)
	// Warm: fill the histogram shard and the slowest-K buffer so the
	// measured runs take the replace-or-reject path only.
	for i := 0; i < 4; i++ {
		rec.Observe("traced_stage", 2*time.Millisecond)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rec.Observe("traced_stage", time.Millisecond) // never beats the retained 2ms tail
	})
	if allocs != 0 {
		t.Fatalf("traced Observe allocates %.2f per op in steady state, want 0", allocs)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(SpanEvent{Stage: "x"})
	if fr.TotalRecorded() != 0 || fr.Events() != nil || fr.Slowest() != nil || fr.NextSpanID() != 0 {
		t.Fatal("nil FlightRecorder not inert")
	}
	exp := fr.Export()
	if exp.Events != nil || exp.Slowest != nil {
		t.Fatal("nil Export not empty")
	}
}
