package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; recording (Inc/Add) is lock-free and allocation-free,
// so counters can sit on hot paths and be read by a concurrent scraper
// or stats poller without any external locking.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error but not checked — the
// scrape surface treats counters as monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically set/read instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics with Prometheus text
// exposition. Metric names may carry a label set inline, e.g.
// `tigris_http_requests_total{route="/healthz",code="200"}`; series
// sharing the name before '{' form one family and are emitted under a
// single # TYPE header. Get-or-create accessors make call sites
// self-registering; creation takes the registry lock, subsequent
// lookups only a read lock, and the returned handles record without
// any locking at all.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a computed gauge: fn is evaluated at scrape time.
// Use it for values owned elsewhere (limiter occupancy, queue depths,
// live session counts) so the scrape always reports current state.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram()
	r.hists[name] = h
	return h
}

// promBounds is the exposition bucket ladder in seconds. The internal
// histograms keep ~12.5%-wide buckets for exact percentile extraction;
// the scrape surface coarsens to this fixed ladder so a scrape stays a
// few hundred lines however many stages exist.
var promBounds = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05,
	.1, .25, .5, 1, 2.5, 5, 10, 30, 60,
}

// splitName separates an inline label set from a metric name:
// `fam{a="b"}` → (`fam`, `a="b"`). No labels → (name, "").
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// withLabel appends one more label to a (possibly empty) label set.
func withLabel(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus emits the registry in Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`. Output is sorted by name, so scrapes are deterministic and
// diffable.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs))
	for n, g := range r.gauges {
		gauges[n] = float64(g.Value())
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for n, fn := range r.gaugeFuncs {
		funcs[n] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()
	// Computed gauges run without the lock: they may themselves take
	// locks (session tables, engine state).
	for n, fn := range funcs {
		gauges[n] = fn()
	}

	emit := func(names []string, typ string, value func(string) string) {
		sort.Strings(names)
		lastFam := ""
		for _, n := range names {
			fam, _ := splitName(n)
			if fam != lastFam {
				fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
				lastFam = fam
			}
			fmt.Fprintf(w, "%s %s\n", n, value(n))
		}
	}

	cnames := make([]string, 0, len(counters))
	for n := range counters {
		cnames = append(cnames, n)
	}
	emit(cnames, "counter", func(n string) string {
		return fmt.Sprintf("%d", counters[n])
	})

	gnames := make([]string, 0, len(gauges))
	for n := range gauges {
		gnames = append(gnames, n)
	}
	emit(gnames, "gauge", func(n string) string {
		return formatFloat(gauges[n])
	})

	hnames := make([]string, 0, len(hists))
	for n := range hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	lastFam := ""
	for _, n := range hnames {
		fam, labels := splitName(n)
		if fam != lastFam {
			fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
			lastFam = fam
		}
		snap := hists[n].Snapshot()
		// Cumulative counts over the coarse ladder from the fine buckets.
		var cum uint64
		b := 0
		for _, le := range promBounds {
			leNs := int64(le * 1e9)
			for b < histBuckets && bucketUpperNs(b) <= leNs {
				cum += snap.Counts[b]
				b++
			}
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, withLabel(labels, fmt.Sprintf("le=%q", formatFloat(le))), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, withLabel(labels, `le="+Inf"`), snap.Count)
		if labels == "" {
			fmt.Fprintf(w, "%s_sum %s\n", fam, formatFloat(float64(snap.SumNs)/1e9))
			fmt.Fprintf(w, "%s_count %d\n", fam, snap.Count)
		} else {
			fmt.Fprintf(w, "%s_sum{%s} %s\n", fam, labels, formatFloat(float64(snap.SumNs)/1e9))
			fmt.Fprintf(w, "%s_count{%s} %d\n", fam, labels, snap.Count)
		}
	}
}

// formatFloat renders a float the way Prometheus expects: no exponent
// for common magnitudes, no trailing zeros.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
