package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event export: renders a flight-recorder snapshot in the
// Chrome trace-event JSON object format, which Perfetto and
// chrome://tracing load directly. Every span becomes a complete ("X")
// event with microsecond ts/dur; tid is the frame index, so each
// frame's stage tree occupies one track and pipeline overlap between
// consecutive frames is visible as overlapping rows. Extra top-level
// keys (session metadata, exemplars, routing decisions) are legal in
// the object format and ignored by viewers.

// ChromeEvent is one trace-event entry.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args"`
}

// ChromeTrace is the serializable export document.
type ChromeTrace struct {
	DisplayTimeUnit string                   `json:"displayTimeUnit"`
	TraceEvents     []ChromeEvent            `json:"traceEvents"`
	Slowest         map[string][]ExemplarDoc `json:"slowest,omitempty"`
	Meta            map[string]any           `json:"otherData,omitempty"`
}

// ExemplarDoc is the JSON shape of one slowest-K entry.
type ExemplarDoc struct {
	TraceID string  `json:"trace_id"`
	Span    uint64  `json:"span"`
	Frame   int32   `json:"frame"`
	DurMs   float64 `json:"dur_ms"`
	Spans   int     `json:"spans"` // subtree size retained (1 = leaf)
}

// chromeEvent converts one span event. pid distinguishes sources when
// several recorders are merged into one timeline (bench modes,
// pre/post-migration workers); single-source exports pass pid 1.
func chromeEvent(ev SpanEvent, pid int) ChromeEvent {
	tid := int64(ev.Frame)
	if tid < 0 {
		tid = 0
	}
	return ChromeEvent{
		Name: ev.Stage,
		Cat:  "tigris",
		Ph:   "X",
		Ts:   float64(ev.Start) / 1e3,
		Dur:  float64(ev.Dur) / 1e3,
		Pid:  pid,
		Tid:  tid,
		Args: map[string]any{
			"trace_id": ev.Trace.String(),
			"span":     ev.Span,
			"parent":   ev.Parent,
			"frame":    ev.Frame,
		},
	}
}

// BuildChromeTrace assembles the export document from a flight
// snapshot: ring events plus any exemplar-retained subtree events the
// ring has already wrapped past, deduplicated by span id and sorted by
// ts (jq-checkable monotone order).
func BuildChromeTrace(exp Export, pid int, meta map[string]any) ChromeTrace {
	seen := make(map[uint64]bool, len(exp.Events))
	events := make([]ChromeEvent, 0, len(exp.Events))
	add := func(ev SpanEvent) {
		if ev.Span == 0 || seen[ev.Span] {
			return
		}
		seen[ev.Span] = true
		events = append(events, chromeEvent(ev, pid))
	}
	for _, ev := range exp.Events {
		add(ev)
	}
	doc := ChromeTrace{DisplayTimeUnit: "ms", Meta: meta}
	if len(exp.Slowest) > 0 {
		doc.Slowest = make(map[string][]ExemplarDoc, len(exp.Slowest))
		for stage, exs := range exp.Slowest {
			ds := make([]ExemplarDoc, 0, len(exs))
			for _, ex := range exs {
				spans := len(ex.Events)
				if spans == 0 {
					spans = 1
				}
				ds = append(ds, ExemplarDoc{
					TraceID: ex.Trace.String(),
					Span:    ex.Span,
					Frame:   ex.Frame,
					DurMs:   float64(ex.Dur) / 1e6,
					Spans:   spans,
				})
				for _, ev := range ex.Events {
					add(ev)
				}
			}
			doc.Slowest[stage] = ds
		}
	}
	sortChromeEvents(events)
	doc.TraceEvents = events
	return doc
}

// sortChromeEvents orders events by ts, then span id for determinism
// among equal timestamps.
func sortChromeEvents(events []ChromeEvent) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		si, _ := events[i].Args["span"].(uint64)
		sj, _ := events[j].Args["span"].(uint64)
		return si < sj
	})
}

// WriteChromeTrace serializes a flight snapshot as Chrome trace-event
// JSON to w.
func WriteChromeTrace(w io.Writer, exp Export, meta map[string]any) error {
	enc := json.NewEncoder(w)
	return enc.Encode(BuildChromeTrace(exp, 1, meta))
}
