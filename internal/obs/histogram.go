// Package obs is the always-on telemetry core: atomic counters, gauges,
// and log-bucketed latency histograms with exact-count percentile
// extraction, plus the span/recorder API the registration pipeline
// threads its per-stage attribution through and a Prometheus text
// registry the serving layer scrapes.
//
// The design constraint is that recording must be safe on the hot path:
// Record/Add/Observe never allocate and never take a lock. Histograms
// stripe their buckets across cache-line-padded shards selected by a
// per-goroutine hint, so concurrent pipeline stages recording into the
// same histogram do not contend on one cache line; shards are summed
// only at read time. The existing AllocsPerRun budgets in kdtree and
// registration therefore hold unchanged with metrics enabled, and a nil
// *Recorder is a complete no-op, so telemetry is strictly opt-in for
// library users.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// Histogram bucket layout: log-linear (HDR-style) over nanoseconds.
// Values 0..7 ns get their own bucket (the linear region); above that,
// every power-of-two octave is split into 8 sub-buckets, so a bucket's
// width is at most 12.5% of its value — tight enough that a bucketed
// p99 is within ~12% of the exact order statistic while the bucket
// index is pure bit arithmetic (no search, no floating point).
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // sub-buckets per octave
	// Highest representable msb is 62 (values up to ~2^63-1 ns, ~292
	// years); larger values clamp into the last bucket.
	histBuckets = (62-histSubBits)*histSub + 2*histSub
)

// histShards stripes recording across this many independent bucket
// arrays. Recording picks a shard from a per-goroutine stack hint, so
// the handful of pipeline workers that share one histogram land on
// different cache lines; reads merge all shards. Must be a power of two.
const histShards = 4

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	v := uint64(ns)
	if v < histSub {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	if msb > 62 {
		msb = 62
		v = 1<<63 - 1
	}
	shift := uint(msb - histSubBits)
	sub := (v >> shift) & (histSub - 1)
	return (msb-histSubBits)*histSub + int(sub) + histSub
}

// bucketUpperNs returns the largest nanosecond value bucket idx holds —
// the value Quantile reports for ranks that land in the bucket, so the
// reported percentile is an exact upper bound on the true order
// statistic (and within one bucket width of it).
func bucketUpperNs(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	block := uint((idx - histSub) >> histSubBits)
	sub := uint64((idx-histSub)&(histSub-1)) + histSub
	return int64((sub+1)<<block - 1)
}

// histShard is one stripe of a histogram. The pad keeps adjacent shards
// off each other's cache lines for the fields updated on every record
// (count, sum, max); the bucket array is large enough that cross-shard
// false sharing there is negligible.
type histShard struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
	_      [64]byte
}

// Histogram is a fixed-size log-bucketed latency histogram. The zero
// value is NOT ready to use; create instances with NewHistogram (the
// shard array is large, so histograms are shared by pointer).
//
// Record is lock-free, allocation-free, and safe for any number of
// concurrent writers; Snapshot/Quantile/Summary may run concurrently
// with writers and observe each shard's counters independently (a read
// racing a record may miss that one sample — monitoring reads, not
// barriers).
type Histogram struct {
	shards [histShards]histShard
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// shardHint derives a stripe index from the caller's stack address: a
// goroutine's stack is stable across the few nanoseconds of a record
// and distinct goroutines live on distinct stacks, so concurrent
// recorders spread across shards without any runtime support. The
// multiplicative mix spreads whichever address bits actually differ.
// Any distribution is correct — shards are summed at read time — this
// only reduces contention.
func shardHint() uint64 {
	var marker byte
	a := uint64(uintptr(unsafe.Pointer(&marker)))
	return (a * 0x9E3779B97F4A7C15) >> 32
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	s := &h.shards[shardHint()&(histShards-1)]
	s.counts[bucketIndex(ns)].Add(1)
	s.count.Add(1)
	s.sumNs.Add(ns)
	for {
		cur := s.maxNs.Load()
		if ns <= cur || s.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Snapshot is a merged, point-in-time view of a histogram's counts.
type Snapshot struct {
	Counts [histBuckets]uint64
	Count  int64
	SumNs  int64
	MaxNs  int64
}

// Snapshot merges all shards into one view. The merge is deterministic:
// whatever shard each sample landed on, the summed counts (and
// therefore every quantile) depend only on the recorded multiset.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Count += sh.count.Load()
		s.SumNs += sh.sumNs.Load()
		if m := sh.maxNs.Load(); m > s.MaxNs {
			s.MaxNs = m
		}
	}
	return s
}

// Quantile returns the value at quantile q in [0,1] as a duration: the
// upper bound of the bucket holding the ceil(q·count)-th smallest
// sample. The rank arithmetic is exact (integer counts); only the value
// is bucketed, to at most one sub-bucket width (≤12.5%). q ≥ 1 returns
// the exact maximum; an empty snapshot returns 0.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(s.MaxNs)
	}
	if q < 0 {
		q = 0
	}
	rank := int64(q*float64(s.Count) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := range s.Counts {
		cum += int64(s.Counts[b])
		if cum >= rank {
			up := bucketUpperNs(b)
			if up > s.MaxNs {
				up = s.MaxNs // the top occupied bucket never reports past the true max
			}
			return time.Duration(up)
		}
	}
	return time.Duration(s.MaxNs)
}

// Summary is the fixed percentile digest every surface reports: the
// stats JSON's latency_ms object, the BENCH latency_percentiles
// columns, and the README's reading guide all carry exactly these
// fields.
type Summary struct {
	Count int64
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// Summary extracts the digest from a snapshot.
func (s *Snapshot) Summary() Summary {
	sum := Summary{
		Count: s.Count,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Max:   time.Duration(s.MaxNs),
	}
	if s.Count > 0 {
		sum.Mean = time.Duration(s.SumNs / s.Count)
	}
	return sum
}

// Summary is shorthand for Snapshot().Summary().
func (h *Histogram) Summary() Summary {
	s := h.Snapshot()
	return s.Summary()
}
