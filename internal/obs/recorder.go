package obs

import (
	"sort"
	"sync"
	"time"
)

// Canonical stage names the pipeline records under. One shared
// vocabulary keeps the per-session stats JSON, the /metrics stage
// labels, and the BENCH latency_percentiles columns mutually
// comparable: the same name means the same span everywhere.
const (
	// Per-frame front-end (registration.PrepareFrame) and its sub-stages.
	StagePrep        = "prep"
	StageNormals     = "normal_estimation"
	StageKeypoints   = "keypoint_detection"
	StageDescriptors = "descriptor_calculation"
	// Pair-level back end (registration.Align) and its sub-stages.
	StageAlign     = "align"
	StageKPCE      = "kpce"
	StageRejection = "rejection"
	StageRPCE      = "rpce"
	StageSolve     = "error_minimization"
	// Whole-frame latency: front-end plus alignment, the number a serving
	// SLO is written against.
	StageFrame = "frame"
	// Pipeline hand-off waits (stream.Engine): time a pushed cloud sat in
	// the input queue before its front-end started, and time a prepared
	// frame waited for the alignment stage. Non-trivial values mean the
	// pipeline is stalling on a stage, not on compute.
	StageQueueWaitPrep  = "queue_wait_prep"
	StageQueueWaitAlign = "queue_wait_align"
	// Loop-closure stage: signature aggregation + candidate ranking
	// (cheap, every frame) and candidate verification (expensive, rare).
	StageLoopObserve = "loop_observe"
	StageLoopVerify  = "loop_verify"
	// Pose-graph optimization (the SLAM back end solve).
	StagePoseGraph = "posegraph_solve"
)

// Recorder is the pipeline-facing telemetry handle: a set of named
// per-stage latency histograms. A nil *Recorder is valid and records
// nothing — the default for library users, and the reason observability
// is deterministically inert: every call site works identically with
// recording on or off.
//
// Observe on an existing stage is lock-free and allocation-free (one
// sync.Map load plus a sharded histogram record); a stage's histogram
// is created once on first use. Recorders can be chained with Tee so a
// per-session recorder also feeds a server-global one, and published
// into a Registry so the same histograms appear on /metrics.
type Recorder struct {
	reg    *Registry // nil for standalone recorders
	family string    // Prometheus family name when published
	next   *Recorder // optional tee target

	hists sync.Map // stage name -> *Histogram

	mu     sync.Mutex
	stages []string // creation-ordered stage names, for Summaries
}

// NewRecorder returns a standalone recorder (histograms not exposed on
// any registry — read them back with Summaries).
func NewRecorder() *Recorder { return &Recorder{} }

// NewPublishedRecorder returns a recorder whose stage histograms are
// registered in reg under family{stage="<name>"}, so everything the
// pipeline records is scrapeable as Prometheus series.
func NewPublishedRecorder(reg *Registry, family string) *Recorder {
	return &Recorder{reg: reg, family: family}
}

// Tee chains next after r: every Observe records into both r and next
// (and next's own tee, recursively). Returns r for construction
// chaining. Must be called before the recorder is shared.
func (r *Recorder) Tee(next *Recorder) *Recorder {
	r.next = next
	return r
}

// histogram returns the stage's histogram, creating it on first use.
func (r *Recorder) histogram(stage string) *Histogram {
	if h, ok := r.hists.Load(stage); ok {
		return h.(*Histogram)
	}
	var h *Histogram
	if r.reg != nil {
		h = r.reg.Histogram(r.family + `{stage="` + stage + `"}`)
	} else {
		h = NewHistogram()
	}
	if actual, loaded := r.hists.LoadOrStore(stage, h); loaded {
		return actual.(*Histogram)
	}
	r.mu.Lock()
	r.stages = append(r.stages, stage)
	r.mu.Unlock()
	return h
}

// Observe records one duration sample for a stage. Safe on a nil
// receiver (no-op) and for concurrent use.
func (r *Recorder) Observe(stage string, d time.Duration) {
	if r == nil {
		return
	}
	r.histogram(stage).Record(d)
	r.next.Observe(stage, d)
}

// Span is an open interval started by Start. The zero value (from a nil
// recorder) is valid: End is a no-op returning 0.
type Span struct {
	r     *Recorder
	stage string
	t0    time.Time
}

// Start opens a span for a stage. On a nil recorder the returned span
// does nothing — call sites need no branches.
func (r *Recorder) Start(stage string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, stage: stage, t0: time.Now()}
}

// End closes the span, records its duration, and returns it.
func (s Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.r.Observe(s.stage, d)
	return d
}

// Summaries returns every recorded stage's percentile digest, keyed by
// stage name. Safe on a nil receiver (returns nil).
func (r *Recorder) Summaries() map[string]Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	stages := append([]string(nil), r.stages...)
	r.mu.Unlock()
	out := make(map[string]Summary, len(stages))
	for _, st := range stages {
		if h, ok := r.hists.Load(st); ok {
			out[st] = h.(*Histogram).Summary()
		}
	}
	return out
}

// Stages returns the recorded stage names, sorted, for deterministic
// iteration over Summaries. Safe on a nil receiver.
func (r *Recorder) Stages() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	stages := append([]string(nil), r.stages...)
	r.mu.Unlock()
	sort.Strings(stages)
	return stages
}
