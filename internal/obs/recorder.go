package obs

import (
	"sort"
	"sync"
	"time"
)

// Canonical stage names the pipeline records under. One shared
// vocabulary keeps the per-session stats JSON, the /metrics stage
// labels, and the BENCH latency_percentiles columns mutually
// comparable: the same name means the same span everywhere.
const (
	// Per-frame front-end (registration.PrepareFrame) and its sub-stages.
	StagePrep        = "prep"
	StageNormals     = "normal_estimation"
	StageKeypoints   = "keypoint_detection"
	StageDescriptors = "descriptor_calculation"
	// Pair-level back end (registration.Align) and its sub-stages.
	StageAlign     = "align"
	StageKPCE      = "kpce"
	StageRejection = "rejection"
	StageRPCE      = "rpce"
	StageSolve     = "error_minimization"
	// Whole-frame latency: front-end plus alignment, the number a serving
	// SLO is written against.
	StageFrame = "frame"
	// Pipeline hand-off waits (stream.Engine): time a pushed cloud sat in
	// the input queue before its front-end started, and time a prepared
	// frame waited for the alignment stage. Non-trivial values mean the
	// pipeline is stalling on a stage, not on compute.
	StageQueueWaitPrep  = "queue_wait_prep"
	StageQueueWaitAlign = "queue_wait_align"
	// Loop-closure stage: signature aggregation + candidate ranking
	// (cheap, every frame) and candidate verification (expensive, rare).
	StageLoopObserve = "loop_observe"
	StageLoopVerify  = "loop_verify"
	// Pose-graph optimization (the SLAM back end solve).
	StagePoseGraph = "posegraph_solve"
)

// recorderCore is the histogram storage a recorder and all its traced
// derivatives share: one set of per-stage histograms however many
// scoped handles record into them.
type recorderCore struct {
	reg    *Registry // nil for standalone recorders
	family string    // Prometheus family name when published

	hists sync.Map // stage name -> *Histogram

	mu     sync.Mutex
	stages []string // creation-ordered stage names, for Summaries
}

// Recorder is the pipeline-facing telemetry handle: a set of named
// per-stage latency histograms. A nil *Recorder is valid and records
// nothing — the default for library users, and the reason observability
// is deterministically inert: every call site works identically with
// recording on or off.
//
// Observe on an existing stage is lock-free and allocation-free (one
// sync.Map load plus a sharded histogram record); a stage's histogram
// is created once on first use. Recorders can be chained with Tee so a
// per-session recorder also feeds a server-global one, and published
// into a Registry so the same histograms appear on /metrics.
//
// A recorder may additionally carry a trace scope (Traced): every
// observation is then also recorded as a SpanEvent into a
// FlightRecorder, under an ambient (parent span, frame) set with
// SetScope. Traced handles share the parent's histograms and tee
// chain, so the aggregate numbers are identical with tracing on or
// off.
type Recorder struct {
	core *recorderCore
	next *Recorder // optional tee target

	// Trace scope. flight == nil means histograms only. The scope
	// fields are mutated by SetScope without synchronization: a traced
	// handle belongs to exactly one goroutine (the stream engine keeps
	// one per pipeline stage).
	flight *FlightRecorder
	trace  TraceID
	parent uint64
	frame  int32
}

// NewRecorder returns a standalone recorder (histograms not exposed on
// any registry — read them back with Summaries).
func NewRecorder() *Recorder { return &Recorder{core: &recorderCore{}} }

// NewPublishedRecorder returns a recorder whose stage histograms are
// registered in reg under family{stage="<name>"}, so everything the
// pipeline records is scrapeable as Prometheus series.
func NewPublishedRecorder(reg *Registry, family string) *Recorder {
	return &Recorder{core: &recorderCore{reg: reg, family: family}}
}

// Tee chains next after r: every Observe records into both r and next
// (and next's own tee, recursively). Returns r for construction
// chaining. Must be called before the recorder is shared.
func (r *Recorder) Tee(next *Recorder) *Recorder {
	r.next = next
	return r
}

// Traced returns a handle sharing r's histograms and tee chain that
// additionally records every observation as a span event into fr,
// tagged with the given trace id. The returned handle is intended for
// a single goroutine: set its span context with SetScope before each
// unit of work. Nil r or fr returns r unchanged.
func (r *Recorder) Traced(fr *FlightRecorder, trace TraceID) *Recorder {
	if r == nil || fr == nil {
		return r
	}
	return &Recorder{core: r.core, next: r.next, flight: fr, trace: trace, frame: -1}
}

// SetScope sets the ambient parent span id and frame index stamped on
// subsequent observations. Only meaningful on a Traced handle; must
// not race with Observe on the same handle (one goroutine owns it).
func (r *Recorder) SetScope(parent uint64, frame int) {
	if r == nil {
		return
	}
	r.parent = parent
	r.frame = int32(frame)
}

// histogram returns the stage's histogram, creating it on first use.
func (r *Recorder) histogram(stage string) *Histogram {
	c := r.core
	if h, ok := c.hists.Load(stage); ok {
		return h.(*Histogram)
	}
	var h *Histogram
	if c.reg != nil {
		h = c.reg.Histogram(c.family + `{stage="` + stage + `"}`)
	} else {
		h = NewHistogram()
	}
	if actual, loaded := c.hists.LoadOrStore(stage, h); loaded {
		return actual.(*Histogram)
	}
	c.mu.Lock()
	c.stages = append(c.stages, stage)
	c.mu.Unlock()
	return h
}

// Observe records one duration sample for a stage. Safe on a nil
// receiver (no-op) and for concurrent use. On a traced handle the
// sample is also appended to the flight recorder as a span ending now.
func (r *Recorder) Observe(stage string, d time.Duration) {
	if r == nil {
		return
	}
	r.histogram(stage).Record(d)
	if r.flight != nil {
		r.flight.Record(SpanEvent{
			Trace:  r.trace,
			Parent: r.parent,
			Frame:  r.frame,
			Stage:  stage,
			Start:  time.Now().Add(-d).UnixNano(),
			Dur:    int64(d),
		})
	}
	r.next.Observe(stage, d)
}

// Span is an open interval started by Start. The zero value (from a nil
// recorder) is valid: End is a no-op returning 0.
type Span struct {
	r     *Recorder
	stage string
	t0    time.Time
}

// Start opens a span for a stage. On a nil recorder the returned span
// does nothing — call sites need no branches.
func (r *Recorder) Start(stage string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, stage: stage, t0: time.Now()}
}

// End closes the span, records its duration, and returns it.
func (s Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.r.Observe(s.stage, d)
	return d
}

// Summaries returns every recorded stage's percentile digest, keyed by
// stage name. Safe on a nil receiver (returns nil).
func (r *Recorder) Summaries() map[string]Summary {
	if r == nil {
		return nil
	}
	c := r.core
	c.mu.Lock()
	stages := append([]string(nil), c.stages...)
	c.mu.Unlock()
	out := make(map[string]Summary, len(stages))
	for _, st := range stages {
		if h, ok := c.hists.Load(st); ok {
			out[st] = h.(*Histogram).Summary()
		}
	}
	return out
}

// Stages returns the recorded stage names, sorted, for deterministic
// iteration over Summaries. Safe on a nil receiver.
func (r *Recorder) Stages() []string {
	if r == nil {
		return nil
	}
	c := r.core
	c.mu.Lock()
	stages := append([]string(nil), c.stages...)
	c.mu.Unlock()
	sort.Strings(stages)
	return stages
}
