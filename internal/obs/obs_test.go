package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// oracleQuantile is the sorted-slice reference: the ceil(q·n)-th
// smallest sample.
func oracleQuantile(sorted []int64, q float64) int64 {
	rank := int(q*float64(len(sorted)) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestQuantileExactCountVsOracle checks the histogram's percentile
// extraction against a sorted-slice oracle: the rank arithmetic must be
// exact, so the reported value must be precisely the upper bound of the
// bucket holding the oracle's order statistic — across the linear
// region, octave boundaries, and a broad random spread.
func TestQuantileExactCountVsOracle(t *testing.T) {
	cases := []struct {
		name string
		vals []int64 // nanoseconds
	}{
		{"linear_region", []int64{0, 1, 2, 3, 4, 5, 6, 7}},
		{"bucket_boundaries", []int64{7, 8, 9, 15, 16, 17, 31, 32, 33, 1023, 1024, 1025}},
		{"octave_edges", []int64{1<<20 - 1, 1 << 20, 1<<20 + 1, 1<<30 - 1, 1 << 30, 1<<30 + 1}},
		{"skewed", []int64{100, 100, 100, 100, 100, 100, 100, 100, 100, 5_000_000}},
	}
	rng := rand.New(rand.NewSource(7))
	broad := make([]int64, 10_000)
	for i := range broad {
		broad[i] = int64(rng.Intn(1_000_000_000))
	}
	cases = append(cases, struct {
		name string
		vals []int64
	}{"random_broad", broad})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram()
			for _, v := range tc.vals {
				h.Record(time.Duration(v))
			}
			sorted := append([]int64(nil), tc.vals...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			snap := h.Snapshot()
			if snap.Count != int64(len(tc.vals)) {
				t.Fatalf("count = %d, want %d", snap.Count, len(tc.vals))
			}
			if snap.MaxNs != sorted[len(sorted)-1] {
				t.Fatalf("max = %d, want %d (exact)", snap.MaxNs, sorted[len(sorted)-1])
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
				got := int64(snap.Quantile(q))
				want := oracleQuantile(sorted, q)
				wantBucketed := bucketUpperNs(bucketIndex(want))
				if wantBucketed > snap.MaxNs {
					wantBucketed = snap.MaxNs
				}
				if q >= 1 {
					wantBucketed = sorted[len(sorted)-1] // max is exact
				}
				if got != wantBucketed {
					t.Errorf("q=%v: got %d, want bucket-upper(%d) = %d", q, got, want, wantBucketed)
				}
				// The bucketed value can never under-report the oracle, and
				// never over-report by more than one sub-bucket width.
				if got < want {
					t.Errorf("q=%v: reported %d under-reports oracle %d", q, got, want)
				}
				if want >= histSub && float64(got) > float64(want)*1.125+1 {
					t.Errorf("q=%v: reported %d over-reports oracle %d by more than a bucket", q, got, want)
				}
			}
		})
	}
}

// TestBucketRoundTrip pins the bucket function's invariants for every
// bucket: upper bounds are strictly increasing and every value maps to
// a bucket whose range contains it.
func TestBucketRoundTrip(t *testing.T) {
	prev := int64(-1)
	for b := 0; b < histBuckets; b++ {
		up := bucketUpperNs(b)
		if up <= prev {
			t.Fatalf("bucket %d upper %d not increasing past %d", b, up, prev)
		}
		if got := bucketIndex(up); got != b {
			t.Fatalf("bucketIndex(upper(%d)=%d) = %d", b, up, got)
		}
		if up > 0 {
			if got := bucketIndex(prev + 1); got != b {
				t.Fatalf("bucketIndex(lower(%d)=%d) = %d", b, prev+1, got)
			}
		}
		prev = up
	}
}

// TestShardMergeDeterminism records the same multiset from many
// goroutines (scattering samples across shards) and checks the merged
// snapshot equals a single-goroutine recording of the same values:
// shard placement must be invisible in every read-side quantity.
func TestShardMergeDeterminism(t *testing.T) {
	vals := make([]int64, 5000)
	rng := rand.New(rand.NewSource(42))
	for i := range vals {
		vals[i] = int64(rng.Intn(50_000_000))
	}

	serial := NewHistogram()
	for _, v := range vals {
		serial.Record(time.Duration(v))
	}

	concurrent := NewHistogram()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(vals); i += workers {
				concurrent.Record(time.Duration(vals[i]))
			}
		}(w)
	}
	wg.Wait()

	a, b := serial.Snapshot(), concurrent.Snapshot()
	if a != b {
		t.Fatalf("concurrent snapshot differs from serial:\nserial count=%d sum=%d max=%d\nconc   count=%d sum=%d max=%d",
			a.Count, a.SumNs, a.MaxNs, b.Count, b.SumNs, b.MaxNs)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("q=%v differs: %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

// TestRecordZeroAllocs pins the hot-path contract: recording into a
// histogram, a counter, and a warm recorder stage allocates nothing.
// This is what lets the pipeline keep its AllocsPerRun budgets with
// metrics enabled.
func TestRecordZeroAllocs(t *testing.T) {
	h := NewHistogram()
	if allocs := testing.AllocsPerRun(200, func() { h.Record(12345 * time.Nanosecond) }); allocs != 0 {
		t.Errorf("Histogram.Record allocates %.1f times, want 0", allocs)
	}
	var c Counter
	if allocs := testing.AllocsPerRun(200, func() { c.Inc() }); allocs != 0 {
		t.Errorf("Counter.Inc allocates %.1f times, want 0", allocs)
	}
	rec := NewRecorder().Tee(NewRecorder())
	rec.Observe(StageAlign, time.Millisecond) // create the stage once
	if allocs := testing.AllocsPerRun(200, func() { rec.Observe(StageAlign, time.Millisecond) }); allocs != 0 {
		t.Errorf("Recorder.Observe (warm, teed) allocates %.1f times, want 0", allocs)
	}
	var nilRec *Recorder
	if allocs := testing.AllocsPerRun(200, func() { nilRec.Observe(StageAlign, time.Millisecond) }); allocs != 0 {
		t.Errorf("nil Recorder.Observe allocates %.1f times, want 0", allocs)
	}
}

// TestConcurrentRecordRead hammers one histogram and one recorder with
// concurrent writers and readers; under -race this is the data-race
// proof for the whole record/snapshot surface.
func TestConcurrentRecordRead(t *testing.T) {
	h := NewHistogram()
	rec := NewRecorder()
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				d := time.Duration(rng.Intn(1_000_000))
				h.Record(d)
				rec.Observe(StagePrep, d)
				rec.Observe(StageAlign, d)
			}
		}(int64(w))
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			_ = snap.Quantile(0.95)
			_ = rec.Summaries()
			_ = rec.Stages()
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	sum := rec.Summaries()
	if sum[StagePrep].Count != 8000 || sum[StageAlign].Count != 8000 {
		t.Fatalf("recorder counts = %+v, want 8000 each", sum)
	}
}

// TestRecorderTeeAndPublish checks the fan-out paths: a teed recorder
// feeds both itself and its parent, and a published recorder's stages
// appear in the registry as labeled Prometheus series.
func TestRecorderTeeAndPublish(t *testing.T) {
	reg := NewRegistry()
	global := NewPublishedRecorder(reg, "tigris_stage_latency_seconds")
	session := NewRecorder().Tee(global)

	session.Observe(StageAlign, 2*time.Millisecond)
	session.Observe(StageAlign, 4*time.Millisecond)
	session.Observe(StagePrep, time.Millisecond)

	if got := session.Summaries()[StageAlign].Count; got != 2 {
		t.Fatalf("session align count = %d, want 2", got)
	}
	if got := global.Summaries()[StageAlign].Count; got != 2 {
		t.Fatalf("teed global align count = %d, want 2", got)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE tigris_stage_latency_seconds histogram",
		`tigris_stage_latency_seconds_bucket{stage="align",le="+Inf"} 2`,
		`tigris_stage_latency_seconds_count{stage="align"} 2`,
		`tigris_stage_latency_seconds_count{stage="prep"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryExposition covers counters, gauges, and computed gauges.
func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`tigris_http_requests_total{route="/healthz",code="200"}`).Add(3)
	reg.Counter(`tigris_http_requests_total{route="/metrics",code="200"}`).Inc()
	reg.Gauge("tigris_limiter_capacity").Set(8)
	reg.GaugeFunc("tigris_sessions_active", func() float64 { return 2 })

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE tigris_http_requests_total counter",
		`tigris_http_requests_total{route="/healthz",code="200"} 3`,
		`tigris_http_requests_total{route="/metrics",code="200"} 1`,
		"# TYPE tigris_limiter_capacity gauge",
		"tigris_limiter_capacity 8",
		"tigris_sessions_active 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with several series.
	if strings.Count(out, "# TYPE tigris_http_requests_total counter") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

// TestNilRecorderSurface proves the nil recorder is a complete no-op
// across the whole API — the library-user default.
func TestNilRecorderSurface(t *testing.T) {
	var r *Recorder
	r.Observe(StagePrep, time.Second)
	sp := r.Start(StagePrep)
	if d := sp.End(); d != 0 {
		t.Errorf("nil span End = %v, want 0", d)
	}
	if s := r.Summaries(); s != nil {
		t.Errorf("nil Summaries = %v, want nil", s)
	}
	if s := r.Stages(); s != nil {
		t.Errorf("nil Stages = %v, want nil", s)
	}
}

// TestSpan records through the span API.
func TestSpan(t *testing.T) {
	rec := NewRecorder()
	sp := rec.Start(StageLoopVerify)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration = %v, want > 0", d)
	}
	s := rec.Summaries()[StageLoopVerify]
	if s.Count != 1 || s.Max <= 0 {
		t.Fatalf("span summary = %+v", s)
	}
}
