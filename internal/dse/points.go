package dse

import (
	"tigris/internal/features"
	"tigris/internal/geom"
	"tigris/internal/registration"
	"tigris/internal/search"
	"tigris/internal/sim"
	"tigris/internal/synth"
)

// baseConfig is the pipeline skeleton all design points share; the knobs
// of Tbl. 1 are varied on top of it. The search backend is named
// explicitly (registry selection, not the legacy enum) so design points
// carry their backend choice visibly and cmds can swap it by name.
func baseConfig() registration.PipelineConfig {
	return registration.PipelineConfig{
		VoxelLeaf: 0.3,
		Searcher:  registration.SearcherConfig{Backend: search.BackendCanonical},
		Normal:    features.NormalConfig{Method: features.PlaneSVD, SearchRadius: 0.5},
		Keypoint: features.KeypointConfig{
			Method:           features.Harris3D,
			Radius:           1.0,
			ResponseQuantile: 0.9,
			MaxKeypoints:     300,
		},
		Descriptor: features.DescriptorConfig{Method: features.FPFH, SearchRadius: 1.2},
		Rejection:  registration.RejectionConfig{Method: registration.RejectRANSAC, Seed: 7},
		ICP: registration.ICPConfig{
			Metric:                  registration.PointToPlane,
			MaxIterations:           30,
			SourceStride:            2,
			EuclideanFitnessEpsilon: 1e-8,
		},
	}
}

// NamedDesignPoints returns the eight Pareto-optimal design points DP1–DP8
// the paper evaluates (Fig. 4). Each makes a distinct accuracy/performance
// trade following Tbl. 1's knobs; the §6.3 anchors are honored: DP4 is
// performance-oriented with NE radius 0.30 m and tight criteria, DP7 is
// accuracy-oriented with NE radius 0.75 m and relaxed criteria.
func NamedDesignPoints() []DesignPoint {
	dps := make([]DesignPoint, 0, 8)

	// DP1: accuracy-leaning, SHOT descriptor, reciprocal KPCE.
	dp1 := baseConfig()
	dp1.Normal.SearchRadius = 0.6
	dp1.Descriptor.Method = features.SHOT
	dp1.KPCE.Reciprocal = true
	dp1.ICP.SourceStride = 1
	dps = append(dps, DesignPoint{Name: "DP1", Config: dp1})

	// DP2: accuracy-leaning, SIFT key-points, point-to-point ICP.
	dp2 := baseConfig()
	dp2.Normal.SearchRadius = 0.6
	dp2.Keypoint.Method = features.SIFT3D
	dp2.Keypoint.Scale = 0.4
	dp2.ICP.Metric = registration.PointToPoint
	dp2.ICP.SourceStride = 1
	dps = append(dps, DesignPoint{Name: "DP2", Config: dp2})

	// DP3: balanced, 3DSC descriptor, threshold rejection.
	dp3 := baseConfig()
	dp3.Descriptor.Method = features.SC3D
	dp3.Rejection.Method = registration.RejectThreshold
	dps = append(dps, DesignPoint{Name: "DP3", Config: dp3})

	// DP4: performance-oriented (§6.3): tight NE radius 0.30 m, coarse
	// voxel, strided ICP, early convergence.
	dp4 := baseConfig()
	dp4.VoxelLeaf = 0.45
	dp4.Normal.SearchRadius = 0.30
	dp4.Descriptor.SearchRadius = 0.9
	dp4.ICP.SourceStride = 4
	dp4.ICP.MaxIterations = 15
	dp4.ICP.EuclideanFitnessEpsilon = 1e-6
	dps = append(dps, DesignPoint{Name: "DP4", Config: dp4})

	// DP5: balanced, area-weighted normals.
	dp5 := baseConfig()
	dp5.Normal.Method = features.AreaWeighted
	dp5.ICP.SourceStride = 3
	dps = append(dps, DesignPoint{Name: "DP5", Config: dp5})

	// DP6: balanced, SIFT + SHOT.
	dp6 := baseConfig()
	dp6.Keypoint.Method = features.SIFT3D
	dp6.Keypoint.Scale = 0.5
	dp6.Descriptor.Method = features.SHOT
	dps = append(dps, DesignPoint{Name: "DP6", Config: dp6})

	// DP7: accuracy-oriented (§6.3): relaxed NE radius 0.75 m, dense ICP,
	// reciprocal matching.
	dp7 := baseConfig()
	dp7.VoxelLeaf = 0.25
	dp7.Normal.SearchRadius = 0.75
	dp7.Descriptor.SearchRadius = 1.5
	dp7.KPCE.Reciprocal = true
	dp7.ICP.SourceStride = 1
	dp7.ICP.MaxIterations = 40
	dps = append(dps, DesignPoint{Name: "DP7", Config: dp7})

	// DP8: normal-estimation-heavy (the paper notes NE is ~80% of DP8):
	// very wide NE radius on a dense cloud, cheap everything else.
	dp8 := baseConfig()
	dp8.VoxelLeaf = 0.2
	dp8.Normal.SearchRadius = 1.0
	dp8.Keypoint.MaxKeypoints = 100
	dp8.ICP.SourceStride = 6
	dp8.ICP.MaxIterations = 10
	dps = append(dps, DesignPoint{Name: "DP8", Config: dp8})

	return dps
}

// DP4 returns the performance-oriented anchor point.
func DP4() DesignPoint { return NamedDesignPoints()[3] }

// DP7 returns the accuracy-oriented anchor point.
func DP7() DesignPoint { return NamedDesignPoints()[6] }

// Grid enumerates a bounded sweep over Tbl. 1's knobs for the Fig. 3
// design-space exploration: normal method × NE radius × key-point method ×
// descriptor × rejection × ICP metric × stride. The full cross product is
// pruned to a representative ~48-point grid to keep the DSE tractable.
func Grid() []DesignPoint {
	var out []DesignPoint
	id := 0
	for _, neRadius := range []float64{0.3, 0.5, 0.75} {
		for _, kp := range []features.KeypointMethod{features.Harris3D, features.SIFT3D} {
			for _, desc := range []features.DescriptorMethod{features.FPFH, features.SHOT} {
				for _, stride := range []int{1, 4} {
					for _, metric := range []registration.ErrorMetric{registration.PointToPlane, registration.PointToPoint} {
						cfg := baseConfig()
						cfg.Normal.SearchRadius = neRadius
						cfg.Keypoint.Method = kp
						cfg.Descriptor.Method = desc
						cfg.ICP.SourceStride = stride
						cfg.ICP.Metric = metric
						id++
						out = append(out, DesignPoint{
							Name:   gridName(id, neRadius, kp, desc, stride, metric),
							Config: cfg,
						})
					}
				}
			}
		}
	}
	return out
}

func gridName(id int, r float64, kp features.KeypointMethod, d features.DescriptorMethod, stride int, m registration.ErrorMetric) string {
	return "G" + itoa(id) + "-r" + ftoa(r) + "-" + kp.String() + "-" + d.String() + "-s" + itoa(stride) + "-" + m.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func ftoa(v float64) string {
	// Two decimal places are all the knob values need.
	whole := int(v)
	frac := int(v*100+0.5) - whole*100
	return itoa(whole) + "." + string([]byte{byte('0' + frac/10), byte('0' + frac%10)})
}

// StageWorkloads extracts the KD-tree search workloads one frame pair of
// the sequence would issue under the design point: the Normal Estimation
// radius workload over the downsampled target cloud, and the RPCE NN
// workload of the first fine-tuning iteration. These drive the
// accelerator experiments (Fig. 11–15), which evaluate KD-tree search in
// isolation on the design points' search mixes (§6.3).
func StageWorkloads(seq *synth.Sequence, dp DesignPoint) (workloads []sim.Workload) {
	cfg := dp.Config
	target := seq.Frames[0]
	source := seq.Frames[1]
	// NE: every raw point radius-searches its neighborhood. The paper's
	// Fig. 2 pipeline estimates normals on the full cloud (voxel
	// downsampling is this repo's optional front-end optimization, not
	// part of the paper's pipeline), and it is exactly this full-density
	// radius workload that makes the back-end dominant (Fig. 6b).
	workloads = append(workloads, sim.Workload{
		Kind:    sim.RadiusSearch,
		Queries: target.Points,
		Radius:  cfg.Normal.SearchRadius,
	})
	// RPCE: every (strided) raw source point NN-searches the raw target.
	stride := cfg.ICP.SourceStride
	if stride < 1 {
		stride = 1
	}
	queries := make([]geom.Vec3, 0, source.Len()/stride+1)
	for i := 0; i < source.Len(); i += stride {
		queries = append(queries, source.Points[i])
	}
	workloads = append(workloads, sim.Workload{
		Kind:    sim.NNSearch,
		Queries: queries,
	})
	return workloads
}
