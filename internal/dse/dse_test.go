package dse

import (
	"testing"
	"time"

	"tigris/internal/registration"
	"tigris/internal/sim"
	"tigris/internal/synth"
)

func TestNamedDesignPointsAnchors(t *testing.T) {
	dps := NamedDesignPoints()
	if len(dps) != 8 {
		t.Fatalf("expected 8 design points, got %d", len(dps))
	}
	names := map[string]bool{}
	for _, dp := range dps {
		if names[dp.Name] {
			t.Errorf("duplicate design point name %s", dp.Name)
		}
		names[dp.Name] = true
	}
	// §6.3 anchors.
	if r := DP4().Config.Normal.SearchRadius; r != 0.30 {
		t.Errorf("DP4 NE radius = %v, paper uses 0.30", r)
	}
	if r := DP7().Config.Normal.SearchRadius; r != 0.75 {
		t.Errorf("DP7 NE radius = %v, paper uses 0.75", r)
	}
}

func TestGridCoversKnobs(t *testing.T) {
	grid := Grid()
	if len(grid) != 48 {
		t.Fatalf("grid size = %d, want 48", len(grid))
	}
	radii := map[float64]bool{}
	metrics := map[registration.ErrorMetric]bool{}
	for _, dp := range grid {
		radii[dp.Config.Normal.SearchRadius] = true
		metrics[dp.Config.ICP.Metric] = true
	}
	if len(radii) != 3 || len(metrics) != 2 {
		t.Errorf("grid does not cover knobs: %d radii, %d metrics", len(radii), len(metrics))
	}
	seen := map[string]bool{}
	for _, dp := range grid {
		if seen[dp.Name] {
			t.Fatalf("duplicate grid name %s", dp.Name)
		}
		seen[dp.Name] = true
	}
}

func TestParetoFront(t *testing.T) {
	mk := func(name string, err float64, ms int) Evaluated {
		return Evaluated{
			Point:    DesignPoint{Name: name},
			Error:    registration.SequenceError{MeanTranslationalPct: err},
			MeanTime: time.Duration(ms) * time.Millisecond,
		}
	}
	evals := []Evaluated{
		mk("fast-bad", 10, 10),
		mk("slow-good", 1, 100),
		mk("dominated", 11, 50), // worse than fast-bad in both
		mk("mid", 5, 40),        // on the frontier
		mk("dominated2", 6, 41), // mid beats it in both
	}
	front := ParetoFront(evals, TranslationalError)
	got := map[string]bool{}
	for _, e := range front {
		got[e.Point.Name] = true
	}
	for _, want := range []string{"fast-bad", "slow-good", "mid"} {
		if !got[want] {
			t.Errorf("%s missing from Pareto front", want)
		}
	}
	if got["dominated"] || got["dominated2"] {
		t.Error("dominated points on the front")
	}
	if len(front) != 3 {
		t.Errorf("front size = %d", len(front))
	}
}

func TestEvaluateProducesBreakdown(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 31))
	dp := DP4()
	ev := Evaluate(seq, dp)
	if ev.MeanTime <= 0 {
		t.Fatal("no time recorded")
	}
	if ev.KDSearch <= 0 {
		t.Error("no KD search time recorded")
	}
	if ev.Stage.Total() <= 0 {
		t.Error("no stage breakdown recorded")
	}
	if ev.Error.Frames != 1 {
		t.Errorf("frames = %d", ev.Error.Frames)
	}
	if f := ev.KDSearchFrac(); f <= 0 || f >= 1 {
		t.Errorf("KD search fraction %v implausible", f)
	}
}

func TestEvaluateEmptySequence(t *testing.T) {
	seq := &synth.Sequence{}
	ev := Evaluate(seq, DP4())
	if ev.MeanTime != 0 {
		t.Error("empty sequence should produce zero evaluation")
	}
}

func TestStageWorkloads(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 32))
	ws := StageWorkloads(seq, DP7())
	if len(ws) != 2 {
		t.Fatalf("expected 2 workloads, got %d", len(ws))
	}
	if ws[0].Kind != sim.RadiusSearch || ws[0].Radius != 0.75 {
		t.Errorf("NE workload wrong: %+v", ws[0])
	}
	if ws[1].Kind != sim.NNSearch {
		t.Errorf("RPCE workload wrong kind")
	}
	if len(ws[0].Queries) == 0 || len(ws[1].Queries) == 0 {
		t.Error("empty workloads")
	}
	// DP4 strides its RPCE queries; DP7 does not.
	ws4 := StageWorkloads(seq, DP4())
	if len(ws4[1].Queries) >= len(ws[1].Queries) {
		t.Error("DP4's strided RPCE should issue fewer queries than DP7")
	}
}

func TestKDTreeSearchDominates(t *testing.T) {
	// The paper's central §3.2 claim: KD-tree search is 50-85% of
	// registration time across design points. Check the accuracy-oriented
	// anchor on a real frame pair.
	seq := synth.GenerateSequence(synth.EvalSequenceConfig(2, 33))
	ev := Evaluate(seq, DP7())
	if f := ev.KDSearchFrac(); f < 0.35 {
		t.Errorf("KD search fraction %.2f; paper reports 0.50-0.85", f)
	}
}
