// Package dse implements the paper's §3 design-space exploration: a grid
// over the registration pipeline's algorithmic and parametric knobs
// (Tbl. 1), per-design-point evaluation on a synthetic sequence, Pareto
// frontier extraction (Fig. 3), and the stage/KD-tree time breakdowns
// (Fig. 4). It also defines the eight named Pareto-optimal design points
// DP1–DP8 the paper carries through its evaluation, with the §6.3 anchors:
// DP4 is performance-oriented (NE radius 0.30 m), DP7 accuracy-oriented
// (NE radius 0.75 m).
package dse

import (
	"time"

	"tigris/internal/registration"
	"tigris/internal/synth"
)

// DesignPoint names one pipeline configuration.
type DesignPoint struct {
	Name   string
	Config registration.PipelineConfig
}

// Evaluated is one design point's measured outcome over a sequence.
type Evaluated struct {
	Point DesignPoint
	// Error aggregates KITTI-style frame errors.
	Error registration.SequenceError
	// MeanTime is the mean end-to-end registration time per frame pair.
	MeanTime time.Duration
	// Stage is the mean per-stage time (Fig. 4a).
	Stage registration.StageTimes
	// KDSearch / KDBuild are the mean Fig. 4b components; Other is the
	// remainder.
	KDSearch, KDBuild, Other time.Duration
	// NodesVisited is the mean 3D-search node visits per frame pair.
	NodesVisited int64
}

// KDSearchFrac returns the Fig. 4b KD-search share of total time.
func (e *Evaluated) KDSearchFrac() float64 {
	total := e.KDSearch + e.KDBuild + e.Other
	if total == 0 {
		return 0
	}
	return float64(e.KDSearch) / float64(total)
}

// Evaluate runs the design point on every consecutive frame pair of the
// sequence and aggregates errors and timings.
func Evaluate(seq *synth.Sequence, dp DesignPoint) Evaluated {
	var out Evaluated
	out.Point = dp
	var errs []registration.FrameError
	pairs := seq.Len() - 1
	if pairs <= 0 {
		return out
	}
	var totalTime, searchT, buildT, otherT time.Duration
	var stage registration.StageTimes
	var visits int64
	for i := 0; i < pairs; i++ {
		res := registration.Register(seq.Frames[i+1], seq.Frames[i], dp.Config)
		errs = append(errs, registration.EvaluatePair(res.Transform, seq.GroundTruthDelta(i)))
		totalTime += res.Total
		searchT += res.KDSearchTime
		buildT += res.KDBuildTime
		otherT += res.OtherTime()
		visits += res.NodesVisited
		stage.NormalEstimation += res.Stage.NormalEstimation
		stage.KeypointDetection += res.Stage.KeypointDetection
		stage.DescriptorCalculation += res.Stage.DescriptorCalculation
		stage.KPCE += res.Stage.KPCE
		stage.Rejection += res.Stage.Rejection
		stage.RPCE += res.Stage.RPCE
		stage.ErrorMinimization += res.Stage.ErrorMinimization
	}
	n := time.Duration(pairs)
	out.Error = registration.Aggregate(errs)
	out.MeanTime = totalTime / n
	out.KDSearch = searchT / n
	out.KDBuild = buildT / n
	out.Other = otherT / n
	out.NodesVisited = visits / int64(pairs)
	out.Stage = registration.StageTimes{
		NormalEstimation:      stage.NormalEstimation / n,
		KeypointDetection:     stage.KeypointDetection / n,
		DescriptorCalculation: stage.DescriptorCalculation / n,
		KPCE:                  stage.KPCE / n,
		Rejection:             stage.Rejection / n,
		RPCE:                  stage.RPCE / n,
		ErrorMinimization:     stage.ErrorMinimization / n,
	}
	return out
}

// ParetoFront returns the subset of evaluations not dominated in the
// (error, time) plane: a point is dominated when another point is no
// worse in both dimensions and strictly better in one. errOf selects the
// error dimension (translational for Fig. 3a, rotational for Fig. 3b).
func ParetoFront(evals []Evaluated, errOf func(*Evaluated) float64) []Evaluated {
	var front []Evaluated
	for i := range evals {
		dominated := false
		ei, ti := errOf(&evals[i]), evals[i].MeanTime
		for j := range evals {
			if i == j {
				continue
			}
			ej, tj := errOf(&evals[j]), evals[j].MeanTime
			if ej <= ei && tj <= ti && (ej < ei || tj < ti) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, evals[i])
		}
	}
	return front
}

// TranslationalError selects Fig. 3a's error dimension.
func TranslationalError(e *Evaluated) float64 { return e.Error.MeanTranslationalPct }

// RotationalError selects Fig. 3b's error dimension.
func RotationalError(e *Evaluated) float64 { return e.Error.MeanRotationalDegPerM }
