package stream

import (
	"sync"
	"testing"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/registration"
	"tigris/internal/synth"
)

// testSeq generates a small synthetic drive shared by the tests.
func testSeq(t testing.TB, frames int, seed int64) *synth.Sequence {
	t.Helper()
	return synth.GenerateSequence(synth.QuickSequenceConfig(frames, seed))
}

// testConfig is a front-end-on-raw configuration (no voxel leaf) so each
// frame needs exactly one search index.
func testConfig(kind registration.SearcherKind) registration.PipelineConfig {
	cfg := registration.PipelineConfig{}
	cfg.Searcher.Kind = kind
	if kind != registration.SearchCanonical {
		cfg.Searcher.TopHeight = -1
	}
	cfg.Rejection.Method = registration.RejectRANSAC
	cfg.Rejection.Seed = 7
	cfg.ICP.MaxIterations = 12
	return cfg
}

// cloneFrames deep-copies a sequence's clouds: both the engine and
// Register write Normals into their inputs, so equivalence runs must not
// share backing arrays.
func cloneFrames(seq *synth.Sequence) []*cloud.Cloud {
	out := make([]*cloud.Cloud, len(seq.Frames))
	for i, f := range seq.Frames {
		out[i] = f.Clone()
	}
	return out
}

// runStream pushes every frame through a fresh engine and returns the
// final trajectory and stats.
func runStream(frames []*cloud.Cloud, cfg Config) (Trajectory, Stats) {
	eng := New(cfg)
	for _, f := range frames {
		if _, err := eng.Push(f); err != nil {
			panic(err)
		}
	}
	eng.Close()
	return eng.Trajectory(), eng.Stats()
}

// TestStreamMatchesPerPairExact is the tentpole acceptance test: for the
// exact backends, a streamed session's deltas and poses are bit-identical
// to the sequential per-pair Register loop, pipelined or not.
func TestStreamMatchesPerPairExact(t *testing.T) {
	const frames = 4
	seq := testSeq(t, frames, 21)
	for _, kind := range []registration.SearcherKind{registration.SearchCanonical, registration.SearchTwoStage} {
		cfg := testConfig(kind)

		// Reference: the classic per-pair loop.
		ref := cloneFrames(seq)
		wantDeltas := make([]geom.Transform, 0, frames-1)
		for i := 0; i+1 < frames; i++ {
			res := registration.Register(ref[i+1], ref[i], cfg)
			wantDeltas = append(wantDeltas, res.Transform)
		}

		for _, pipelined := range []bool{false, true} {
			traj, _ := runStream(cloneFrames(seq), Config{Pipeline: cfg, Pipelined: pipelined})
			if traj.Len() != frames {
				t.Fatalf("%v pipelined=%v: trajectory has %d frames, want %d", kind, pipelined, traj.Len(), frames)
			}
			pose := geom.IdentityTransform()
			for i, fr := range traj.Frames {
				if i == 0 {
					if fr.Delta != geom.IdentityTransform() {
						t.Fatalf("%v: frame 0 delta not identity", kind)
					}
				} else if fr.Delta != wantDeltas[i-1] {
					t.Fatalf("%v pipelined=%v: frame %d delta differs from per-pair Register", kind, pipelined, i)
				}
				pose = poseOrCompose(pose, fr, i)
				if traj.Poses[i] != pose {
					t.Fatalf("%v pipelined=%v: frame %d pose not the composed deltas", kind, pipelined, i)
				}
			}
		}
	}
}

func poseOrCompose(prev geom.Transform, fr FrameResult, i int) geom.Transform {
	if i == 0 {
		return geom.IdentityTransform()
	}
	return prev.Compose(fr.Delta)
}

// TestStreamBuildOnceStats asserts the reuse contract: N pushed frames
// cost exactly N front-end preparations, N descriptor builds, and N tree
// builds (no voxel leaf ⇒ one index per frame) — where the per-pair loop
// prepares 2(N−1) clouds.
func TestStreamBuildOnceStats(t *testing.T) {
	const frames = 5
	seq := testSeq(t, frames, 22)
	_, stats := runStream(cloneFrames(seq), Config{Pipeline: testConfig(registration.SearchCanonical), Pipelined: true})
	if stats.FramesPushed != frames || stats.FramesPrepared != frames {
		t.Fatalf("pushed/prepared = %d/%d, want %d/%d", stats.FramesPushed, stats.FramesPrepared, frames, frames)
	}
	if stats.DescriptorBuilds != frames {
		t.Fatalf("descriptor builds = %d, want %d (per-pair would be %d)", stats.DescriptorBuilds, frames, 2*(frames-1))
	}
	if stats.TreeBuilds != frames {
		t.Fatalf("tree builds = %d, want %d", stats.TreeBuilds, frames)
	}
	if stats.PairsAligned != frames-1 {
		t.Fatalf("pairs aligned = %d, want %d", stats.PairsAligned, frames-1)
	}
	if stats.Search.Queries == 0 || stats.Search.BuildTime <= 0 {
		t.Fatal("released-frame search metrics not folded into session stats")
	}
}

// TestStreamDownsampledFineIndex covers the voxel-leaf path: each target
// frame lazily builds one extra raw-cloud index, and the trajectory still
// matches the per-pair loop bit for bit.
func TestStreamDownsampledFineIndex(t *testing.T) {
	const frames = 3
	seq := testSeq(t, frames, 23)
	cfg := testConfig(registration.SearchCanonical)
	cfg.VoxelLeaf = 0.4

	ref := cloneFrames(seq)
	var wantDeltas []geom.Transform
	for i := 0; i+1 < frames; i++ {
		wantDeltas = append(wantDeltas, registration.Register(ref[i+1], ref[i], cfg).Transform)
	}

	traj, stats := runStream(cloneFrames(seq), Config{Pipeline: cfg, Pipelined: true})
	for i := 1; i < frames; i++ {
		if traj.Frames[i].Delta != wantDeltas[i-1] {
			t.Fatalf("frame %d delta differs under downsampling", i)
		}
	}
	// One front-end index per frame + one fine index per *target* frame
	// (the last frame is never a target).
	want := int64(frames + frames - 1)
	if stats.TreeBuilds != want {
		t.Fatalf("tree builds = %d, want %d", stats.TreeBuilds, want)
	}
}

// TestStreamApproxDeterministic runs the approximate backend twice and
// expects identical trajectories (chunk-determinism carries over to the
// session), pipelined and not.
func TestStreamApproxDeterministic(t *testing.T) {
	const frames = 3
	seq := testSeq(t, frames, 24)
	cfg := testConfig(registration.SearchTwoStageApprox)
	a, _ := runStream(cloneFrames(seq), Config{Pipeline: cfg, Pipelined: true})
	b, _ := runStream(cloneFrames(seq), Config{Pipeline: cfg, Pipelined: false})
	for i := range a.Poses {
		if a.Poses[i] != b.Poses[i] {
			t.Fatalf("approximate backend diverged at frame %d", i)
		}
	}
}

// TestStreamConcurrentSessions exercises the server shape under the race
// detector: several engines share one Limiter, each fed from its own
// goroutine, with trajectory snapshots read mid-flight.
func TestStreamConcurrentSessions(t *testing.T) {
	const sessions = 3
	const frames = 3
	lim := NewLimiter(2)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			seq := testSeq(t, frames, seed)
			eng := New(Config{Pipeline: testConfig(registration.SearchCanonical), Pipelined: true, Limiter: lim})
			for _, f := range cloneFrames(seq) {
				if _, err := eng.Push(f); err != nil {
					t.Error(err)
					return
				}
				_ = eng.Trajectory() // snapshot while streaming
			}
			eng.Drain()
			if got := eng.Trajectory().Len(); got != frames {
				t.Errorf("session drained with %d frames, want %d", got, frames)
			}
			eng.Close()
			if _, err := eng.Push(cloud.New(0)); err != ErrClosed {
				t.Errorf("push after close: err = %v, want ErrClosed", err)
			}
		}(int64(30 + s))
	}
	wg.Wait()
}

// TestStreamOrigin anchors the first frame at a non-identity origin.
func TestStreamOrigin(t *testing.T) {
	seq := testSeq(t, 2, 25)
	origin := geom.Transform{R: geom.RotZ(0.3), T: geom.V3(4, 5, 6)}
	traj, _ := runStream(cloneFrames(seq), Config{Pipeline: testConfig(registration.SearchCanonical), Origin: &origin})
	if traj.Poses[0] != origin {
		t.Fatalf("pose 0 = %+v, want origin", traj.Poses[0])
	}
	if traj.Poses[1] != origin.Compose(traj.Frames[1].Delta) {
		t.Fatal("pose 1 not composed from origin")
	}
}

// TestPending: the uncommitted-frame counter servers use to tell idle
// sessions from busy ones. A saturated limiter holds the front-end
// before it starts, so the pushed frame stays pending deterministically.
func TestPending(t *testing.T) {
	lim := NewLimiter(1)
	lim <- struct{}{} // occupy the only slot: prepare cannot start
	eng := New(Config{Pipeline: testConfig(registration.SearchCanonical), Pipelined: true, Limiter: lim})
	seq := testSeq(t, 1, 70)
	if eng.Pending() != 0 {
		t.Fatalf("fresh engine Pending = %d", eng.Pending())
	}
	if _, err := eng.Push(seq.Frames[0].Clone()); err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 1 {
		t.Fatalf("Pending = %d with a queued frame", eng.Pending())
	}
	<-lim // release the stage slot
	eng.Drain()
	if eng.Pending() != 0 {
		t.Fatalf("Pending = %d after Drain", eng.Pending())
	}
	eng.Close()
}

// TestAdaptiveSplitRebalances drives the EWMA/split machinery directly:
// observing a fine-tuning stage that is much heavier than the front-end
// must shift the worker apportionment toward alignment (and vice versa),
// while both stages always keep at least one worker and — with a pool
// wide enough — exactly exhaust the budget.
func TestAdaptiveSplitRebalances(t *testing.T) {
	cfg := testConfig(registration.SearchCanonical)
	cfg.Searcher.Parallelism = 8
	e := New(Config{Pipeline: cfg, Pipelined: true})
	defer e.Close()

	if e.stageWorkers[stagePrep]+e.stageWorkers[stageAlign] != 8 {
		t.Fatalf("initial split %d+%d, want the full 8-worker budget",
			e.stageWorkers[stagePrep], e.stageWorkers[stageAlign])
	}

	// Front-end 3× heavier: prep should get the larger share.
	for i := 0; i < 6; i++ {
		e.observeStage(stagePrep, 90*time.Millisecond, e.stageWorkers[stagePrep])
		e.observeStage(stageAlign, 30*time.Millisecond, e.stageWorkers[stageAlign])
	}
	if e.stageWorkers[stagePrep] <= e.stageWorkers[stageAlign] {
		t.Fatalf("prep-heavy load split %d+%d, want prep > align",
			e.stageWorkers[stagePrep], e.stageWorkers[stageAlign])
	}
	if e.stageWorkers[stagePrep]+e.stageWorkers[stageAlign] != 8 || e.stageWorkers[stageAlign] < 1 {
		t.Fatalf("split %d+%d violates the budget", e.stageWorkers[stagePrep], e.stageWorkers[stageAlign])
	}

	// The load inverts; the EWMA must follow it across.
	for i := 0; i < 12; i++ {
		e.observeStage(stagePrep, 10*time.Millisecond, e.stageWorkers[stagePrep])
		e.observeStage(stageAlign, 120*time.Millisecond, e.stageWorkers[stageAlign])
	}
	if e.stageWorkers[stageAlign] <= e.stageWorkers[stagePrep] {
		t.Fatalf("align-heavy load split %d+%d, want align > prep",
			e.stageWorkers[stagePrep], e.stageWorkers[stageAlign])
	}

	// The stage configs hand each stage exactly its share.
	prepCfg, pw := e.stageConfig(stagePrep)
	alignCfg, aw := e.stageConfig(stageAlign)
	if pw != e.stageWorkers[stagePrep] || aw != e.stageWorkers[stageAlign] {
		t.Fatalf("stageConfig workers %d/%d, split %d/%d", pw, aw, e.stageWorkers[stagePrep], e.stageWorkers[stageAlign])
	}
	if prepCfg.Searcher.EffectiveParallelism() != pw || alignCfg.Searcher.EffectiveParallelism() != aw {
		t.Fatal("stage configs do not pin their share as the effective parallelism")
	}
}

// TestAdaptiveSplitNarrowPool: a 1-worker session cannot split; both
// stages must run with the configured width unchanged.
func TestAdaptiveSplitNarrowPool(t *testing.T) {
	cfg := testConfig(registration.SearchCanonical)
	cfg.Searcher.Parallelism = 1
	e := New(Config{Pipeline: cfg, Pipelined: true})
	defer e.Close()
	got, w := e.stageConfig(stagePrep)
	if w != 1 || got.Searcher.Parallelism != 1 {
		t.Fatalf("narrow pool stage got %d workers", w)
	}
	e.observeStage(stagePrep, time.Second, 1) // must be a no-op, not a panic
}

// TestStreamPipelinedAdaptiveMatchesRegister: the adaptive split changes
// only worker counts, and exact backends are parallelism-invariant, so a
// pipelined session rebalancing itself must still be bit-identical to the
// per-pair Register loop.
func TestStreamPipelinedAdaptiveMatchesRegister(t *testing.T) {
	seq := testSeq(t, 4, 41)
	cfg := testConfig(registration.SearchCanonical)
	cfg.Searcher.Parallelism = 4

	ref := cloneFrames(seq)
	var want []geom.Transform
	for i := 0; i+1 < len(ref); i++ {
		res := registration.Register(ref[i+1], ref[i], cfg)
		want = append(want, res.Transform)
	}

	traj, _ := runStream(cloneFrames(seq), Config{Pipeline: cfg, Pipelined: true})
	for i, w := range want {
		if got := traj.Frames[i+1].Delta; got != w {
			t.Fatalf("pair %d: adaptive pipelined delta differs from Register:\n%v\nvs\n%v", i, got, w)
		}
	}
}
