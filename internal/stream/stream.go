// Package stream implements the streaming odometry engine: a
// long-running registration session that consumes LiDAR frames one at a
// time and accumulates a trajectory, the paper's §2.2 continuous-perception
// use case run as a service instead of per-pair batch calls.
//
// The engine's two wins over calling registration.Register per pair:
//
//   - Front-end reuse. Register re-runs the whole front-end (downsample,
//     normals, key-points, descriptors, search-index construction) for
//     BOTH clouds of every pair, so a frame in the middle of a stream is
//     processed twice — once as a pair's source and once as the next
//     pair's target. The engine prepares each frame exactly once
//     (registration.PrepareFrame) and reuses the state for both roles,
//     halving steady-state front-end work.
//
//   - Frame-level pipelining. With Config.Pipelined, frame N's front-end
//     overlaps frame N−1's pair alignment (KPCE, rejection, ICP
//     fine-tuning) on a two-stage channel pipeline — the ROADMAP's
//     "overlap frame N's front-end with frame N−1's fine-tuning". Both
//     stages internally fan out over the internal/par worker pools.
//
// For the exact search backends the resulting trajectory is bit-identical
// to the sequential per-pair Register loop at any pipelining or
// parallelism setting, because every stage is a deterministic function of
// its input clouds and the config; the approximate backend is
// deterministic (two identical sessions produce identical trajectories).
package stream

import (
	"errors"
	"sync"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/par"
	"tigris/internal/registration"
	"tigris/internal/search"
)

// Limiter caps concurrent heavy stages (frame preparation and pair
// alignment) across any number of engines. A server hosting many
// sessions shares one Limiter so total CPU fan-out stays bounded no
// matter how many users stream at once; a nil Limiter imposes no cap.
type Limiter chan struct{}

// NewLimiter returns a Limiter admitting up to n concurrent stages
// (n <= 0 returns nil: unlimited).
func NewLimiter(n int) Limiter {
	if n <= 0 {
		return nil
	}
	return make(Limiter, n)
}

func (l Limiter) acquire() {
	if l != nil {
		l <- struct{}{}
	}
}

func (l Limiter) release() {
	if l != nil {
		<-l
	}
}

// Config parameterizes a streaming session.
type Config struct {
	// Pipeline is the registration configuration every pair runs with.
	Pipeline registration.PipelineConfig
	// Pipelined overlaps frame N's front-end with frame N−1's alignment.
	// Off, each Push runs both stages synchronously before returning —
	// same trajectory, no overlap.
	Pipelined bool
	// QueueDepth bounds how many pushed frames may wait for the front-end
	// in pipelined mode before Push blocks (default 1). Bounding the
	// queue bounds session memory: at most QueueDepth raw frames plus
	// three prepared frames are alive at once.
	QueueDepth int
	// Origin is the pose assigned to the first frame (zero value:
	// identity).
	Origin *geom.Transform
	// Limiter, when non-nil, gates every prepare/align stage (shared
	// across engines by the registration server).
	Limiter Limiter
}

// FrameResult records one frame's outcome in the trajectory.
type FrameResult struct {
	// Index is the frame's position in the session (0-based).
	Index int
	// Delta registers this frame onto the previous one (identity for
	// frame 0) — the odometry step, Register's Transform.
	Delta geom.Transform
	// Pose is the accumulated absolute pose: Pose[N] = Pose[N−1]∘Delta.
	Pose geom.Transform
	// PrepTime is the frame's front-end wall time (once per frame —
	// compare with Register, which pays it twice per pair).
	PrepTime time.Duration
	// AlignTime is the pair-level back-end wall time (zero for frame 0).
	AlignTime time.Duration
	// Reg is the pair's registration result (zero value for frame 0).
	// Its front-end stage times cover only this frame's preparation,
	// since the target's front-end ran a frame earlier.
	Reg registration.Result
}

// Trajectory is a snapshot of the session's accumulated output.
type Trajectory struct {
	// Poses are the absolute per-frame poses (Poses[0] = Origin).
	Poses []geom.Transform
	// Frames are the per-frame records, aligned with Poses.
	Frames []FrameResult
}

// Len returns the number of frames in the trajectory.
func (t Trajectory) Len() int { return len(t.Poses) }

// Stats counts the work a session has performed. The front-end counters
// are the reuse proof: after N frames, FramesPrepared and
// DescriptorBuilds are N (a per-pair loop would have prepared 2(N−1)
// clouds), and TreeBuilds is N plus one fine-tuning index per target
// frame when downsampling is active.
type Stats struct {
	FramesPushed     int64
	FramesPrepared   int64
	PairsAligned     int64
	TreeBuilds       int64
	DescriptorBuilds int64
	// Search aggregates the released frames' searcher metrics (query
	// counts, node visits, build/search wall time).
	Search search.Metrics
}

// Engine is a streaming odometry session. Frames enter through Push;
// the accumulated trajectory is read with Trajectory. An Engine's
// methods are safe for concurrent use, but frames are processed in Push
// order regardless of caller interleaving.
type Engine struct {
	cfg Config

	// pushMu serializes Push so frame indices match arrival order even
	// with concurrent callers (the HTTP server pushes from handler
	// goroutines).
	pushMu sync.Mutex

	// mu guards everything below.
	mu     sync.Mutex
	cond   *sync.Cond
	traj   Trajectory
	stats  Stats
	pushed int
	done   int
	closed bool

	// Pipelined mode.
	in chan *cloud.Cloud
	wg sync.WaitGroup

	// Adaptive stage split (pipelined mode). The two concurrent stages
	// would otherwise each size their batches to the full Parallelism and
	// fight over the machine — the PR 2 defect where pipelining only won
	// with a hand-capped knob. pool is the session's total worker budget;
	// prepWork/alignWork are EWMAs of each stage's observed serial work
	// (latency × workers), and prepWorkers/alignWorkers the current
	// apportionment. Exact backends are bit-identical at any parallelism,
	// so rebalancing never changes the trajectory.
	splitMu      sync.Mutex
	pool         *par.Pool
	prepWork     float64
	alignWork    float64
	prepWorkers  int
	alignWorkers int

	// Sequential mode: the previous frame's prepared state.
	prev *registration.PreparedFrame
}

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("stream: engine closed")

// New creates an engine and, in pipelined mode, starts its two stage
// workers. Callers must Close the engine to stop them.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg}
	e.cond = sync.NewCond(&e.mu)
	if cfg.Pipelined {
		depth := cfg.QueueDepth
		if depth < 1 {
			depth = 1
		}
		// Start from an even split of the configured worker budget; the
		// EWMAs take over once both stages have been observed.
		e.pool = par.NewPool(cfg.Pipeline.Searcher.EffectiveParallelism())
		subs := e.pool.Split(1, 1)
		e.prepWorkers, e.alignWorkers = subs[0].Workers(), subs[1].Workers()
		e.in = make(chan *cloud.Cloud, depth)
		// Capacity 1 is the pipeline register between the two stages:
		// the front-end worker may run one frame ahead of alignment.
		preparedCh := make(chan *registration.PreparedFrame, 1)
		e.wg.Add(2)
		go e.prepWorker(preparedCh)
		go e.alignWorker(preparedCh)
	}
	return e
}

// Push submits the next frame of the stream and returns its index. The
// engine takes ownership of c (its Normals are filled in place, exactly
// as Register does to its arguments). In pipelined mode Push returns as
// soon as the frame is queued; otherwise it returns after the frame's
// pose is committed. Use Drain to wait for all pushed frames.
func (e *Engine) Push(c *cloud.Cloud) (int, error) {
	e.pushMu.Lock()
	defer e.pushMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	idx := e.pushed
	e.pushed++
	e.stats.FramesPushed++
	e.mu.Unlock()

	if e.cfg.Pipelined {
		e.in <- c
		return idx, nil
	}
	e.process(c)
	return idx, nil
}

// process runs both stages synchronously (sequential mode).
func (e *Engine) process(c *cloud.Cloud) {
	pf := e.prepare(c)
	prev := e.prev
	e.prev = pf
	e.commit(pf, prev)
}

// splitAlpha is the EWMA weight of the latest per-stage work sample:
// heavy enough to track scene-density drift within a few frames, light
// enough that one slow frame (a GC pause, a cold cache) cannot whipsaw
// the apportionment.
const splitAlpha = 0.4

// stageConfig resolves the pipeline configuration one stage should run
// with: its current share of the split pool in pipelined mode, the
// unmodified configuration otherwise (splitting a 1-worker budget is
// meaningless). prep selects the front-end share, else fine-tuning's.
func (e *Engine) stageConfig(prep bool) (registration.PipelineConfig, int) {
	cfg := e.cfg.Pipeline
	if !e.cfg.Pipelined || e.pool.Workers() < 2 {
		return cfg, par.Workers(cfg.Searcher.EffectiveParallelism())
	}
	e.splitMu.Lock()
	w := e.prepWorkers
	if !prep {
		w = e.alignWorkers
	}
	e.splitMu.Unlock()
	cfg.Searcher = cfg.Searcher.WithParallelism(w)
	return cfg, w
}

// observeStage folds one stage execution (wall time d on `workers`
// workers) into the stage's work EWMA and re-apportions the pool. Work —
// latency × workers — estimates the stage's serial cost, so splitting the
// pool proportionally to it equalizes the two stage latencies, which is
// what maximizes two-stage pipeline throughput.
func (e *Engine) observeStage(prep bool, d time.Duration, workers int) {
	if !e.cfg.Pipelined || e.pool.Workers() < 2 {
		return
	}
	work := d.Seconds() * float64(workers)
	e.splitMu.Lock()
	defer e.splitMu.Unlock()
	tgt := &e.prepWork
	if !prep {
		tgt = &e.alignWork
	}
	if *tgt <= 0 {
		*tgt = work
	} else {
		*tgt += splitAlpha * (work - *tgt)
	}
	if e.prepWork > 0 && e.alignWork > 0 {
		subs := e.pool.Split(e.prepWork, e.alignWork)
		e.prepWorkers, e.alignWorkers = subs[0].Workers(), subs[1].Workers()
	}
}

// prepare runs the front-end stage under the limiter. The build-once
// counters are bumped here — at the site that actually builds — so the
// stats assert real work, not commits.
func (e *Engine) prepare(c *cloud.Cloud) *registration.PreparedFrame {
	e.cfg.Limiter.acquire()
	defer e.cfg.Limiter.release()
	cfg, workers := e.stageConfig(true)
	pf := registration.PrepareFrame(c, cfg)
	e.observeStage(true, pf.PrepTotal, workers)
	e.mu.Lock()
	e.stats.FramesPrepared++
	e.stats.DescriptorBuilds++
	e.mu.Unlock()
	return pf
}

// commit aligns pf against prev (nil for the first frame), appends the
// frame's trajectory record, releases prev, and wakes Drain waiters.
func (e *Engine) commit(pf, prev *registration.PreparedFrame) {
	fr := FrameResult{PrepTime: pf.PrepTotal, Delta: geom.IdentityTransform()}
	if prev != nil {
		e.cfg.Limiter.acquire()
		cfg, workers := e.stageConfig(false)
		start := time.Now()
		fr.Reg = registration.Align(pf, prev, cfg)
		fr.AlignTime = time.Since(start)
		e.observeStage(false, fr.AlignTime, workers)
		e.cfg.Limiter.release()
		fr.Delta = fr.Reg.Transform
		// Surface this frame's front-end shares in the pair result so
		// per-frame records read like Register's (the target's shares
		// belong to the previous frame's record).
		fr.Reg.Stage.NormalEstimation = pf.NormalTime
		fr.Reg.Stage.KeypointDetection = pf.KeypointTime
		fr.Reg.Stage.DescriptorCalculation = pf.DescriptorTime
	}

	e.mu.Lock()
	fr.Index = len(e.traj.Poses)
	if fr.Index == 0 {
		if e.cfg.Origin != nil {
			fr.Pose = *e.cfg.Origin
		} else {
			fr.Pose = geom.IdentityTransform()
		}
	} else {
		fr.Pose = e.traj.Poses[fr.Index-1].Compose(fr.Delta)
	}
	e.traj.Poses = append(e.traj.Poses, fr.Pose)
	e.traj.Frames = append(e.traj.Frames, fr)
	if prev != nil {
		e.stats.PairsAligned++
	}
	e.mu.Unlock()

	if prev != nil {
		e.release(prev)
	}

	e.mu.Lock()
	e.done++
	e.cond.Broadcast()
	e.mu.Unlock()
}

// release retires a frame that has played both of its roles: its search
// metrics fold into the session stats and its pooled buffers go back for
// the frames still to come.
func (e *Engine) release(f *registration.PreparedFrame) {
	m := f.SearchMetrics()
	e.mu.Lock()
	e.stats.Search.Merge(m)
	e.stats.TreeBuilds += int64(f.Builds)
	e.mu.Unlock()
	f.Release()
}

// prepWorker is pipeline stage 1: the per-frame front-end.
func (e *Engine) prepWorker(out chan<- *registration.PreparedFrame) {
	defer e.wg.Done()
	defer close(out)
	for c := range e.in {
		out <- e.prepare(c)
	}
}

// alignWorker is pipeline stage 2: pair alignment and trajectory
// accumulation. While it aligns frame N against N−1, prepWorker is
// already deep in frame N+1 — the two-stage overlap.
func (e *Engine) alignWorker(in <-chan *registration.PreparedFrame) {
	defer e.wg.Done()
	var prev *registration.PreparedFrame
	for pf := range in {
		e.commit(pf, prev)
		prev = pf
	}
	if prev != nil {
		e.release(prev)
	}
}

// Pending reports how many pushed frames have not been committed to the
// trajectory yet. A server uses this to tell an idle session apart from
// one still chewing through queued frames (which must not be evicted).
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pushed - e.done
}

// Drain blocks until every frame pushed so far has been committed to the
// trajectory.
func (e *Engine) Drain() {
	e.mu.Lock()
	target := e.pushed
	for e.done < target {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Close drains the session, stops the pipeline workers, and releases the
// last frame's state. Push returns ErrClosed afterwards; Trajectory and
// Stats remain readable.
func (e *Engine) Close() {
	// Serialize with Push: a frame mid-submission finishes (or its send
	// lands) before the input channel closes.
	e.pushMu.Lock()
	defer e.pushMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()

	if e.cfg.Pipelined {
		close(e.in)
		e.wg.Wait()
	} else if e.prev != nil {
		e.release(e.prev)
		e.prev = nil
	}
}

// Frame returns one committed frame's record, or ok=false when frame i
// has not been committed yet. Unlike Trajectory it copies a single
// record, so per-push polling stays O(1) over the session's life.
func (e *Engine) Frame(i int) (FrameResult, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= len(e.traj.Frames) {
		return FrameResult{}, false
	}
	return e.traj.Frames[i], true
}

// Trajectory returns a snapshot of the trajectory accumulated so far
// (copied headers; safe to use while the session keeps running).
func (e *Engine) Trajectory() Trajectory {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Trajectory{
		Poses:  append([]geom.Transform(nil), e.traj.Poses...),
		Frames: append([]FrameResult(nil), e.traj.Frames...),
	}
}

// Stats returns a snapshot of the session counters. Searcher metrics and
// tree-build counts are folded in when frames retire, so they trail the
// trajectory by up to two in-flight frames until Close.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
