// Package stream implements the streaming odometry engine: a
// long-running registration session that consumes LiDAR frames one at a
// time and accumulates a trajectory, the paper's §2.2 continuous-perception
// use case run as a service instead of per-pair batch calls.
//
// The engine's two wins over calling registration.Register per pair:
//
//   - Front-end reuse. Register re-runs the whole front-end (downsample,
//     normals, key-points, descriptors, search-index construction) for
//     BOTH clouds of every pair, so a frame in the middle of a stream is
//     processed twice — once as a pair's source and once as the next
//     pair's target. The engine prepares each frame exactly once
//     (registration.PrepareFrame) and reuses the state for both roles,
//     halving steady-state front-end work.
//
//   - Frame-level pipelining. With Config.Pipelined, frame N's front-end
//     overlaps frame N−1's pair alignment (KPCE, rejection, ICP
//     fine-tuning) on a two-stage channel pipeline — the ROADMAP's
//     "overlap frame N's front-end with frame N−1's fine-tuning". Both
//     stages internally fan out over the internal/par worker pools.
//
// For the exact search backends the resulting trajectory is bit-identical
// to the sequential per-pair Register loop at any pipelining or
// parallelism setting, because every stage is a deterministic function of
// its input clouds and the config; the approximate backend is
// deterministic (two identical sessions produce identical trajectories).
package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/loop"
	"tigris/internal/obs"
	"tigris/internal/par"
	"tigris/internal/posegraph"
	"tigris/internal/registration"
	"tigris/internal/search"
)

// Limiter caps concurrent heavy stages (frame preparation and pair
// alignment) across any number of engines. A server hosting many
// sessions shares one Limiter so total CPU fan-out stays bounded no
// matter how many users stream at once; a nil Limiter imposes no cap.
type Limiter chan struct{}

// NewLimiter returns a Limiter admitting up to n concurrent stages
// (n <= 0 returns nil: unlimited).
func NewLimiter(n int) Limiter {
	if n <= 0 {
		return nil
	}
	return make(Limiter, n)
}

func (l Limiter) acquire() {
	if l != nil {
		l <- struct{}{}
	}
}

func (l Limiter) release() {
	if l != nil {
		<-l
	}
}

// Acquire blocks until the limiter admits another heavy stage (a no-op
// for a nil limiter). Exported so the serving layer can gate its own
// heavy work — pose-graph optimization — under the same budget as the
// pipeline stages.
func (l Limiter) Acquire() { l.acquire() }

// Release returns a slot taken by Acquire (no-op for a nil limiter).
func (l Limiter) Release() { l.release() }

// Config parameterizes a streaming session.
type Config struct {
	// Pipeline is the registration configuration every pair runs with.
	Pipeline registration.PipelineConfig
	// Pipelined overlaps frame N's front-end with frame N−1's alignment.
	// Off, each Push runs both stages synchronously before returning —
	// same trajectory, no overlap.
	Pipelined bool
	// QueueDepth bounds how many pushed frames may wait for the front-end
	// in pipelined mode before Push blocks (default 1). Bounding the
	// queue bounds session memory: at most QueueDepth raw frames plus
	// three prepared frames are alive at once.
	QueueDepth int
	// Origin is the pose assigned to the first frame (zero value:
	// identity).
	Origin *geom.Transform
	// Limiter, when non-nil, gates every prepare/align stage (shared
	// across engines by the registration server).
	Limiter Limiter
	// Loop, when non-nil, enables the loop-closure stage: every committed
	// frame's descriptors are aggregated into a place signature
	// (internal/loop), candidates proposed by the signature index are
	// verified with the full registration pipeline, and accepted closures
	// accumulate for pose-graph optimization (OptimizedPoses). In
	// pipelined mode verification runs on its own worker goroutine with
	// its own share of the adaptively split pool, overlapping both other
	// stages. Enabling the stage retains every pushed frame's cloud for
	// the session's life (verification needs the raw points), so bound
	// session length accordingly. The config must name a valid search
	// backend (validate with loop.Config.Validate at the boundary); New
	// panics otherwise, like the registration layer does on invalid
	// searcher configs.
	Loop *loop.Config
	// LoopEdgeWeight scales verified loop edges relative to odometry
	// edges in the optimized pose graph (default 10): one globally
	// accurate constraint against many locally consistent drifting ones.
	LoopEdgeWeight float64
	// Obs, when non-nil, receives the session's latency telemetry
	// (internal/obs): every registration stage (threaded through the
	// pipeline config), whole-frame latency (obs.StageFrame), the
	// pipeline hand-off waits (obs.StageQueueWaitPrep /
	// obs.StageQueueWaitAlign — non-trivial values mean the pipeline is
	// stalling, not computing), the loop-closure stage's observe/verify
	// spans, and the pose-graph solve. Recording is allocation-free and
	// deterministically inert: trajectories, closures, and optimized
	// poses are bit-identical with Obs set or nil.
	Obs *obs.Recorder
	// Flight, when non-nil, additionally records every observation as a
	// structured span event: each frame gets a whole-frame root span
	// (deterministic span id, wall-clock interval from front-end start
	// to commit) and every stage/queue-wait observation becomes a child
	// span, forming the per-frame tree the /debug/trace surface and the
	// slowest-K exemplars expose. Same inertness contract as Obs: the
	// trajectory, closures, and optimized poses are bit-identical with
	// the flight recorder attached or not, in both pipelining modes.
	// Note the frame root span measures the wall interval (including
	// pipeline hand-off waits), while the obs.StageFrame histogram keeps
	// its compute-only PrepTime+AlignTime semantic.
	Flight *obs.FlightRecorder
	// Trace is the trace id stamped on every span (a session's identity
	// end to end). Zero with Flight set mints a fresh id; read it back
	// with TraceID.
	Trace obs.TraceID
}

// FrameResult records one frame's outcome in the trajectory.
type FrameResult struct {
	// Index is the frame's position in the session (0-based).
	Index int
	// Delta registers this frame onto the previous one (identity for
	// frame 0) — the odometry step, Register's Transform.
	Delta geom.Transform
	// Pose is the accumulated absolute pose: Pose[N] = Pose[N−1]∘Delta.
	Pose geom.Transform
	// PrepTime is the frame's front-end wall time (once per frame —
	// compare with Register, which pays it twice per pair).
	PrepTime time.Duration
	// AlignTime is the pair-level back-end wall time (zero for frame 0).
	AlignTime time.Duration
	// Reg is the pair's registration result (zero value for frame 0).
	// Its front-end stage times cover only this frame's preparation,
	// since the target's front-end ran a frame earlier.
	Reg registration.Result
}

// Trajectory is a snapshot of the session's accumulated output.
type Trajectory struct {
	// Poses are the absolute per-frame poses (Poses[0] = Origin).
	Poses []geom.Transform
	// Frames are the per-frame records, aligned with Poses.
	Frames []FrameResult
}

// Len returns the number of frames in the trajectory.
func (t Trajectory) Len() int { return len(t.Poses) }

// Stats counts the work a session has performed. The front-end counters
// are the reuse proof: after N frames, FramesPrepared and
// DescriptorBuilds are N (a per-pair loop would have prepared 2(N−1)
// clouds), and TreeBuilds is N plus one fine-tuning index per target
// frame when downsampling is active. The scalar counters are maintained
// on lock-free atomics (internal/obs), so a server polling Stats
// concurrently with running stages reads them without contending on the
// engine mutex.
type Stats struct {
	FramesPushed     int64
	FramesPrepared   int64
	PairsAligned     int64
	TreeBuilds       int64
	DescriptorBuilds int64
	// Search aggregates the released frames' searcher metrics (query
	// counts, node visits, build/search wall time).
	Search search.Metrics
	// Loop counts the loop-closure stage's work (zero value when the
	// stage is disabled).
	Loop loop.Stats
	// LoopTime is wall time spent verifying loop candidates.
	LoopTime time.Duration
}

// Engine is a streaming odometry session. Frames enter through Push;
// the accumulated trajectory is read with Trajectory. An Engine's
// methods are safe for concurrent use, but frames are processed in Push
// order regardless of caller interleaving.
type Engine struct {
	cfg Config

	// pushMu serializes Push so frame indices match arrival order even
	// with concurrent callers (the HTTP server pushes from handler
	// goroutines).
	pushMu sync.Mutex

	// rec is the session's telemetry sink (Config.Obs; nil records
	// nothing). It is also threaded into the pipeline config handed to
	// every stage, so registration's per-stage taps land here.
	rec *obs.Recorder

	// Tracing (Config.Flight). stageRecs holds one traced handle per
	// pipeline stage, each owned by exactly one goroutine (prep worker,
	// align worker, loop worker — or the serialized Push path in
	// sequential mode), so rescoping them per frame with SetScope is
	// race-free and allocation-free. loopObsRec is the detector's
	// handle, rescoped in observeLoop on the commit goroutine.
	flight     *obs.FlightRecorder
	trace      obs.TraceID
	stageRecs  [3]*obs.Recorder
	loopObsRec *obs.Recorder

	// Work counters, on lock-free atomics so Stats can be polled
	// concurrently with running stages (the /stats endpoint does) without
	// touching the engine mutex. searchStats (a struct of durations)
	// stays under mu: it is merged only when frames retire.
	cFramesPushed     obs.Counter
	cFramesPrepared   obs.Counter
	cPairsAligned     obs.Counter
	cTreeBuilds       obs.Counter
	cDescriptorBuilds obs.Counter
	cLoopTimeNs       obs.Counter

	// mu guards everything below.
	mu          sync.Mutex
	cond        *sync.Cond
	traj        Trajectory
	searchStats search.Metrics
	pushed      int
	done        int
	closed      bool

	// Pipelined mode.
	in chan queuedCloud
	wg sync.WaitGroup

	// Adaptive stage split (pipelined mode). The concurrent stages would
	// otherwise each size their batches to the full Parallelism and fight
	// over the machine — the PR 2 defect where pipelining only won with a
	// hand-capped knob. pool is the session's total worker budget;
	// stageWork are EWMAs of each stage's observed serial work (latency ×
	// workers), and stageWorkers the current apportionment — two entries
	// normally, three when the loop-closure stage runs its verifications
	// concurrently. Exact backends are bit-identical at any parallelism,
	// so rebalancing never changes the trajectory.
	splitMu      sync.Mutex
	pool         *par.Pool
	stageWork    [3]float64
	stageWorkers [3]int
	stages       int

	// Loop-closure stage (enabled by Config.Loop).
	det         *loop.Detector
	closures    []loop.Closure // guarded by mu
	loopPending int            // frames with queued verifications, guarded by mu
	loopCh      chan loopTask
	loopWg      sync.WaitGroup

	// Sequential mode: the previous frame's prepared state.
	prev *registration.PreparedFrame
}

// Pipeline stage indices for the adaptive pool split.
const (
	stagePrep = iota
	stageAlign
	stageLoop
)

// loopTask is one committed frame's proposed loop candidates, awaiting
// verification on the loop worker.
type loopTask struct {
	cands []loop.Candidate
}

// queuedCloud is a raw frame in flight to the front-end worker, stamped
// at enqueue so the hand-off wait (obs.StageQueueWaitPrep) is visible.
// idx is the frame's Push-order index, threaded through the pipeline so
// every stage can scope its spans to the right frame before the frame
// is committed.
type queuedCloud struct {
	c   *cloud.Cloud
	idx int
	enq time.Time
}

// queuedFrame is a prepared frame in flight to the alignment worker,
// stamped at enqueue (obs.StageQueueWaitAlign). prepStart anchors the
// frame's wall-clock root span.
type queuedFrame struct {
	pf        *registration.PreparedFrame
	idx       int
	prepStart time.Time
	enq       time.Time
}

// frameSpanID is the deterministic span id of frame idx's whole-frame
// root span: stable across the prep/align/loop stages (which parent
// their spans to it before the frame span itself is recorded at
// commit) and disjoint from the flight recorder's counter-allocated
// stage-span ids.
func frameSpanID(idx int) uint64 { return uint64(idx) + 1 }

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("stream: engine closed")

// New creates an engine and, in pipelined mode, starts its stage
// workers (two, or three with the loop-closure stage). Callers must
// Close the engine to stop them. An invalid Config.Loop (unknown
// backend, bad options) panics — validate at the boundary with
// loop.Config.Validate, exactly as SearcherConfig.Validate guards the
// searcher selection.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg, stages: 2}
	e.cond = sync.NewCond(&e.mu)
	e.rec = cfg.Obs
	// Thread the recorder into every registration stage's config so the
	// per-stage taps (normals, keypoints, KPCE, ICP, ...) land in the
	// session's histograms.
	e.cfg.Pipeline.Obs = cfg.Obs
	if cfg.Flight != nil {
		e.flight = cfg.Flight
		e.trace = cfg.Trace
		if e.trace.IsZero() {
			e.trace = obs.NewTraceID()
		}
		// Tracing without a histogram recorder still needs a core for
		// the traced handles to share.
		if e.rec == nil {
			e.rec = obs.NewRecorder()
			e.cfg.Pipeline.Obs = e.rec
		}
		for s := range e.stageRecs {
			e.stageRecs[s] = e.rec.Traced(e.flight, e.trace)
		}
		e.loopObsRec = e.rec.Traced(e.flight, e.trace)
	}
	if cfg.Loop != nil {
		lc := *cfg.Loop
		lc.Obs = e.cfg.Pipeline.Obs
		if e.loopObsRec != nil {
			lc.Obs = e.loopObsRec
		}
		det, err := loop.NewDetector(lc)
		if err != nil {
			panic(fmt.Sprintf("stream: %v (validate loop configs at the boundary with loop.Config.Validate)", err))
		}
		e.det = det
		e.stages = 3
	}
	if cfg.Pipelined {
		depth := cfg.QueueDepth
		if depth < 1 {
			depth = 1
		}
		// Start from an even split of the configured worker budget; the
		// EWMAs take over once the stages have been observed.
		e.pool = par.NewPool(cfg.Pipeline.Searcher.EffectiveParallelism())
		e.resplitLocked()
		e.in = make(chan queuedCloud, depth)
		// Capacity 1 is the pipeline register between the two stages:
		// the front-end worker may run one frame ahead of alignment.
		preparedCh := make(chan queuedFrame, 1)
		e.wg.Add(2)
		go e.prepWorker(preparedCh)
		go e.alignWorker(preparedCh)
		if e.det != nil {
			// The loop stage rarely has queued work (candidates are gated
			// and cooled down), so a small queue suffices; commit never
			// blocks on it because the channel is drained by a dedicated
			// worker.
			e.loopCh = make(chan loopTask, 8)
			e.loopWg.Add(1)
			go e.loopWorker()
		}
	}
	return e
}

// resplitLocked re-apportions the pool between the active stages from
// their work EWMAs. The split stays even until both steady stages
// (front-end and alignment) have been observed; the loop stage's weight
// may stay zero for long stretches (candidates are gated and cooled
// down), in which case Split's one-worker floor keeps it alive without
// starving the steady stages. Callers hold splitMu, except during
// construction.
func (e *Engine) resplitLocked() {
	ws := make([]float64, e.stages)
	if e.stageWork[stagePrep] <= 0 || e.stageWork[stageAlign] <= 0 {
		for s := range ws {
			ws[s] = 1
		}
	} else {
		for s := 0; s < e.stages; s++ {
			ws[s] = e.stageWork[s]
		}
	}
	subs := e.pool.Split(ws...)
	for s, sub := range subs {
		e.stageWorkers[s] = sub.Workers()
	}
}

// Push submits the next frame of the stream and returns its index. The
// engine takes ownership of c (its Normals are filled in place, exactly
// as Register does to its arguments). In pipelined mode Push returns as
// soon as the frame is queued; otherwise it returns after the frame's
// pose is committed. Use Drain to wait for all pushed frames.
func (e *Engine) Push(c *cloud.Cloud) (int, error) {
	e.pushMu.Lock()
	defer e.pushMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	idx := e.pushed
	e.pushed++
	e.mu.Unlock()
	e.cFramesPushed.Inc()

	if e.cfg.Pipelined {
		e.in <- queuedCloud{c: c, idx: idx, enq: time.Now()}
		return idx, nil
	}
	e.process(c, idx)
	return idx, nil
}

// process runs both stages synchronously (sequential mode).
func (e *Engine) process(c *cloud.Cloud, idx int) {
	prepStart := time.Now()
	pf := e.prepare(c, idx)
	prev := e.prev
	e.prev = pf
	e.commit(pf, prev, idx, prepStart)
}

// traceRec returns the stage's traced recorder handle rescoped to
// frame idx, or nil when tracing is off. Each handle is owned by the
// one goroutine that runs the stage, so the rescope is race-free.
func (e *Engine) traceRec(stage, idx int) *obs.Recorder {
	sr := e.stageRecs[stage]
	if sr == nil {
		return nil
	}
	sr.SetScope(frameSpanID(idx), idx)
	return sr
}

// splitAlpha is the EWMA weight of the latest per-stage work sample:
// heavy enough to track scene-density drift within a few frames, light
// enough that one slow frame (a GC pause, a cold cache) cannot whipsaw
// the apportionment.
const splitAlpha = 0.4

// stageConfig resolves the pipeline configuration one stage should run
// with: its current share of the split pool in pipelined mode, the
// unmodified configuration otherwise (splitting a 1-worker budget is
// meaningless).
func (e *Engine) stageConfig(stage int) (registration.PipelineConfig, int) {
	cfg := e.cfg.Pipeline
	if !e.cfg.Pipelined || e.pool.Workers() < 2 {
		return cfg, par.Workers(cfg.Searcher.EffectiveParallelism())
	}
	e.splitMu.Lock()
	w := e.stageWorkers[stage]
	e.splitMu.Unlock()
	cfg.Searcher = cfg.Searcher.WithParallelism(w)
	return cfg, w
}

// observeStage folds one stage execution (wall time d on `workers`
// workers) into the stage's work EWMA and re-apportions the pool. Work —
// latency × workers — estimates the stage's serial cost, so splitting the
// pool proportionally to it equalizes the stage latencies, which is what
// maximizes pipeline throughput.
func (e *Engine) observeStage(stage int, d time.Duration, workers int) {
	if !e.cfg.Pipelined || e.pool.Workers() < 2 {
		return
	}
	work := d.Seconds() * float64(workers)
	e.splitMu.Lock()
	defer e.splitMu.Unlock()
	tgt := &e.stageWork[stage]
	if *tgt <= 0 {
		*tgt = work
	} else {
		*tgt += splitAlpha * (work - *tgt)
	}
	// The loop stage is bursty: verifications arrive in gated, cooled-down
	// clumps. Decay its weight on every aligned frame so an idle loop
	// stage slides back to Split's one-worker floor instead of holding a
	// burst-sized share forever.
	if stage == stageAlign && e.stages > stageLoop {
		e.stageWork[stageLoop] *= 1 - splitAlpha
		if e.stageWork[stageLoop] < 1e-12 {
			e.stageWork[stageLoop] = 0
		}
	}
	e.resplitLocked()
}

// prepare runs the front-end stage under the limiter. The build-once
// counters are bumped here — at the site that actually builds — so the
// stats assert real work, not commits.
func (e *Engine) prepare(c *cloud.Cloud, idx int) *registration.PreparedFrame {
	e.cfg.Limiter.acquire()
	defer e.cfg.Limiter.release()
	cfg, workers := e.stageConfig(stagePrep)
	if sr := e.traceRec(stagePrep, idx); sr != nil {
		cfg.Obs = sr
	}
	pf := registration.PrepareFrame(c, cfg)
	e.observeStage(stagePrep, pf.PrepTotal, workers)
	e.cFramesPrepared.Inc()
	e.cDescriptorBuilds.Inc()
	return pf
}

// commit aligns pf against prev (nil for the first frame), appends the
// frame's trajectory record, releases prev, and wakes Drain waiters.
func (e *Engine) commit(pf, prev *registration.PreparedFrame, idx int, prepStart time.Time) {
	fr := FrameResult{PrepTime: pf.PrepTotal, Delta: geom.IdentityTransform()}
	if prev != nil {
		e.cfg.Limiter.acquire()
		cfg, workers := e.stageConfig(stageAlign)
		if sr := e.traceRec(stageAlign, idx); sr != nil {
			cfg.Obs = sr
		}
		start := time.Now()
		fr.Reg = registration.Align(pf, prev, cfg)
		fr.AlignTime = time.Since(start)
		e.observeStage(stageAlign, fr.AlignTime, workers)
		e.cfg.Limiter.release()
		fr.Delta = fr.Reg.Transform
		// Surface this frame's front-end shares in the pair result so
		// per-frame records read like Register's (the target's shares
		// belong to the previous frame's record).
		fr.Reg.Stage.NormalEstimation = pf.NormalTime
		fr.Reg.Stage.KeypointDetection = pf.KeypointTime
		fr.Reg.Stage.DescriptorCalculation = pf.DescriptorTime
	}

	e.mu.Lock()
	fr.Index = len(e.traj.Poses)
	if fr.Index == 0 {
		if e.cfg.Origin != nil {
			fr.Pose = *e.cfg.Origin
		} else {
			fr.Pose = geom.IdentityTransform()
		}
	} else {
		fr.Pose = e.traj.Poses[fr.Index-1].Compose(fr.Delta)
	}
	e.traj.Poses = append(e.traj.Poses, fr.Pose)
	e.traj.Frames = append(e.traj.Frames, fr)
	e.mu.Unlock()
	if prev != nil {
		e.cPairsAligned.Inc()
	}
	e.rec.Observe(obs.StageFrame, fr.PrepTime+fr.AlignTime)
	if e.flight != nil {
		// The whole-frame root span: the wall interval from front-end
		// start to commit, under the frame's deterministic span id so the
		// stage spans recorded earlier already point at it.
		e.flight.Record(obs.SpanEvent{
			Trace: e.trace, Span: frameSpanID(idx), Parent: 0,
			Frame: int32(idx), Stage: obs.StageFrame,
			Start: prepStart.UnixNano(), Dur: int64(time.Since(prepStart)),
		})
	}

	e.observeLoop(fr.Index, pf)

	if prev != nil {
		e.release(prev)
	}

	e.mu.Lock()
	e.done++
	e.cond.Broadcast()
	e.mu.Unlock()
}

// release retires a frame that has played both of its roles: its search
// metrics fold into the session stats and its pooled buffers go back for
// the frames still to come.
func (e *Engine) release(f *registration.PreparedFrame) {
	m := f.SearchMetrics()
	e.mu.Lock()
	e.searchStats.Merge(m)
	e.mu.Unlock()
	e.cTreeBuilds.Add(int64(f.Builds))
	f.Release()
}

// observeLoop runs the loop-closure stage's cheap half for a committed
// frame: signature aggregation and candidate proposal. Candidate
// verification is expensive and runs inline in sequential mode, or on
// the loop worker (with its own pool share) in pipelined mode.
//
// Determinism: proposals depend on the detector's cooldown state, which
// verification outcomes advance — so in pipelined mode Observe waits
// for any still-queued verifications of earlier frames first. Candidates
// are rare (gated and cooled down), so the wait is almost always free;
// verification itself still overlaps the next frame's front-end and
// alignment compute. This keeps the closure set, and therefore the
// optimized trajectory, bit-identical across pipelining and Parallelism.
func (e *Engine) observeLoop(index int, pf *registration.PreparedFrame) {
	if e.det == nil {
		return
	}
	if e.cfg.Pipelined {
		e.mu.Lock()
		for e.loopPending > 0 {
			e.cond.Wait()
		}
		e.mu.Unlock()
	}
	// The detector retains the cloud for later verification; hand it a
	// private clone, because the pipeline keeps mutating pf.Raw after
	// this commit (the next pair's FineTarget writes its normals in
	// place, which would race with a concurrent verification's read).
	// Cloning at observe time also pins the retained content to the same
	// snapshot in pipelined and sequential modes.
	e.loopObsRec.SetScope(frameSpanID(index), index)
	cands := e.det.Observe(index, pf.Desc, pf.Raw.Clone())
	if len(cands) == 0 {
		return
	}
	if e.cfg.Pipelined {
		e.mu.Lock()
		e.loopPending++
		e.mu.Unlock()
		e.loopCh <- loopTask{cands: cands}
		return
	}
	e.verifyLoop(cands)
}

// verifyLoop verifies proposed candidates in order, stopping at the
// first accepted closure (the cooldown then suppresses the frames right
// behind it). Runs under the limiter like every heavy stage.
func (e *Engine) verifyLoop(cands []loop.Candidate) {
	e.cfg.Limiter.acquire()
	cfg, workers := e.stageConfig(stageLoop)
	// Verification reruns the registration pipeline internally; detach the
	// recorder so its KPCE/ICP sub-stages don't pollute the odometry
	// per-stage histograms. The whole verification lands in one
	// obs.StageLoopVerify sample below instead.
	cfg.Obs = nil
	start := time.Now()
	var accepted *loop.Closure
	for _, cand := range cands {
		if cl, ok := e.det.Verify(cand, cfg); ok {
			accepted = &cl
			break
		}
	}
	elapsed := time.Since(start)
	e.observeStage(stageLoop, elapsed, workers)
	e.cfg.Limiter.release()
	e.cLoopTimeNs.Add(int64(elapsed))
	// The verification span hangs off the proposing frame's root span.
	vrec := e.rec
	if sr := e.traceRec(stageLoop, cands[0].From); sr != nil {
		vrec = sr
	}
	vrec.Observe(obs.StageLoopVerify, elapsed)

	if accepted != nil {
		e.mu.Lock()
		e.closures = append(e.closures, *accepted)
		e.mu.Unlock()
	}
}

// loopWorker is pipeline stage 3: loop-candidate verification.
func (e *Engine) loopWorker() {
	defer e.loopWg.Done()
	for task := range e.loopCh {
		e.verifyLoop(task.cands)
		e.mu.Lock()
		e.loopPending--
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// prepWorker is pipeline stage 1: the per-frame front-end. The recorded
// queue wait — enqueue at Push to receive here — is the input backlog: it
// grows when the caller outruns the front-end.
func (e *Engine) prepWorker(out chan<- queuedFrame) {
	defer e.wg.Done()
	defer close(out)
	for qc := range e.in {
		wrec := e.rec
		if sr := e.traceRec(stagePrep, qc.idx); sr != nil {
			wrec = sr
		}
		wrec.Observe(obs.StageQueueWaitPrep, time.Since(qc.enq))
		prepStart := time.Now()
		out <- queuedFrame{pf: e.prepare(qc.c, qc.idx), idx: qc.idx, prepStart: prepStart, enq: time.Now()}
	}
}

// alignWorker is pipeline stage 2: pair alignment and trajectory
// accumulation. While it aligns frame N against N−1, prepWorker is
// already deep in frame N+1 — the two-stage overlap. The recorded queue
// wait — prepared-frame enqueue to receive here — is the hand-off stall:
// it grows when alignment is the bottleneck stage.
func (e *Engine) alignWorker(in <-chan queuedFrame) {
	defer e.wg.Done()
	var prev *registration.PreparedFrame
	for qf := range in {
		wrec := e.rec
		if sr := e.traceRec(stageAlign, qf.idx); sr != nil {
			wrec = sr
		}
		wrec.Observe(obs.StageQueueWaitAlign, time.Since(qf.enq))
		e.commit(qf.pf, prev, qf.idx, qf.prepStart)
		prev = qf.pf
	}
	if prev != nil {
		e.release(prev)
	}
}

// Pending reports how many pushed frames have not been fully processed
// yet (committed to the trajectory, plus any queued loop-closure
// verifications). A server uses this to tell an idle session apart from
// one still chewing through queued work (which must not be evicted).
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pushed - e.done + e.loopPending
}

// Drain blocks until every frame pushed so far has been committed to the
// trajectory and its loop-closure candidates (if any) verified.
func (e *Engine) Drain() {
	e.mu.Lock()
	target := e.pushed
	for e.done < target || e.loopPending > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Close drains the session, stops the pipeline workers, and releases the
// last frame's state. Push returns ErrClosed afterwards; Trajectory and
// Stats remain readable.
func (e *Engine) Close() {
	// Serialize with Push: a frame mid-submission finishes (or its send
	// lands) before the input channel closes.
	e.pushMu.Lock()
	defer e.pushMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()

	if e.cfg.Pipelined {
		close(e.in)
		e.wg.Wait()
		if e.loopCh != nil {
			// The align worker has exited, so no further loop tasks can be
			// enqueued; drain the verification queue and stop the worker.
			close(e.loopCh)
			e.loopWg.Wait()
		}
	} else if e.prev != nil {
		e.release(e.prev)
		e.prev = nil
	}
}

// Frame returns one committed frame's record, or ok=false when frame i
// has not been committed yet. Unlike Trajectory it copies a single
// record, so per-push polling stays O(1) over the session's life.
func (e *Engine) Frame(i int) (FrameResult, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= len(e.traj.Frames) {
		return FrameResult{}, false
	}
	return e.traj.Frames[i], true
}

// Trajectory returns a snapshot of the trajectory accumulated so far
// (copied headers; safe to use while the session keeps running).
func (e *Engine) Trajectory() Trajectory {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Trajectory{
		Poses:  append([]geom.Transform(nil), e.traj.Poses...),
		Frames: append([]FrameResult(nil), e.traj.Frames...),
	}
}

// Stats returns a snapshot of the session counters. Searcher metrics and
// tree-build counts are folded in when frames retire, so they trail the
// trajectory by up to two in-flight frames until Close.
func (e *Engine) Stats() Stats {
	st := Stats{
		FramesPushed:     e.cFramesPushed.Value(),
		FramesPrepared:   e.cFramesPrepared.Value(),
		PairsAligned:     e.cPairsAligned.Value(),
		TreeBuilds:       e.cTreeBuilds.Value(),
		DescriptorBuilds: e.cDescriptorBuilds.Value(),
		LoopTime:         time.Duration(e.cLoopTimeNs.Value()),
	}
	e.mu.Lock()
	st.Search = e.searchStats
	e.mu.Unlock()
	if e.det != nil {
		st.Loop = e.det.Stats()
	}
	return st
}

// Closures snapshots the verified loop closures accepted so far, in
// frame order (empty without Config.Loop). The set is deterministic:
// proposals, verification order, and acceptance are all independent of
// pipelining and Parallelism.
func (e *Engine) Closures() []loop.Closure {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]loop.Closure(nil), e.closures...)
}

// OptimizedPoses builds the session's pose graph — the odometry chain as
// consecutive edges plus one weighted robust edge per verified loop
// closure — and optimizes it (internal/posegraph), returning the
// globally consistent trajectory. Callers should Drain first so every
// pushed frame and queued verification is reflected. The zero Options
// value selects the optimizer defaults; the result is bit-identical at
// any Options.Parallelism. Without loop closures the graph is exactly
// consistent and the odometry poses come back unchanged.
func (e *Engine) OptimizedPoses(opts posegraph.Options) ([]geom.Transform, posegraph.Result, error) {
	e.mu.Lock()
	if len(e.traj.Poses) == 0 {
		e.mu.Unlock()
		return nil, posegraph.Result{Converged: true}, nil
	}
	deltas := make([]geom.Transform, 0, len(e.traj.Frames))
	for _, fr := range e.traj.Frames {
		if fr.Index == 0 {
			continue
		}
		deltas = append(deltas, fr.Delta)
	}
	origin := e.traj.Poses[0]
	closures := append([]loop.Closure(nil), e.closures...)
	e.mu.Unlock()

	g := posegraph.FromOdometry(origin, deltas)
	w := e.cfg.LoopEdgeWeight
	if w == 0 {
		w = 10
	}
	for _, cl := range closures {
		g.AddEdge(posegraph.Edge{
			I: cl.To, J: cl.From, Z: cl.Delta,
			TransWeight: w, RotWeight: w, Robust: true,
		})
	}
	poses, res, err := g.Optimize(opts)
	e.rec.Observe(obs.StagePoseGraph, res.SolveTime)
	if e.flight != nil {
		// Frameless root span: the back-end solve belongs to the session,
		// not to any one frame.
		e.flight.Record(obs.SpanEvent{
			Trace: e.trace, Parent: 0, Frame: -1, Stage: obs.StagePoseGraph,
			Start: time.Now().Add(-res.SolveTime).UnixNano(), Dur: int64(res.SolveTime),
		})
	}
	return poses, res, err
}

// TraceID returns the trace id stamped on the session's spans (zero
// when no flight recorder is attached).
func (e *Engine) TraceID() obs.TraceID { return e.trace }
