//go:build !race

package stream

// raceEnabled reports whether the race detector is active: the
// full-pipeline SLAM test runs dozens of registrations and would take
// minutes under the detector's slowdown, so it skips itself; a smaller
// dedicated test exercises the loop stage's concurrency under -race.
const raceEnabled = false
