package stream

import (
	"testing"

	"tigris/internal/dse"
	"tigris/internal/geom"
	"tigris/internal/loop"
	"tigris/internal/posegraph"
	"tigris/internal/synth"
)

// The SLAM acceptance tests: on a synthetic circuit with a ground-truth
// loop, the engine's loop-closure stage must detect the revisit, and
// pose-graph optimization must pull a drifted odometry chain measurably
// back toward the truth — with the whole stack bit-identical at any
// Parallelism and pipelining setting.

const slamPerLap = 40

// slamSequence renders one lap plus a few revisit frames of the closed
// circuit at the quick scale.
func slamSequence(frames int) *synth.Sequence {
	cfg := synth.QuickSequenceConfig(frames, 77)
	cfg.Trajectory = synth.CircuitTrajectory{Radius: 3, FramesPerLap: slamPerLap}
	return synth.GenerateSequence(cfg)
}

// slamEngineConfig is the accuracy-oriented design point (DP7): the
// quick synthetic frames are too sparse for the performance points to
// register a turning trajectory.
func slamEngineConfig(parallelism int, pipelined bool) Config {
	cfg := dse.NamedDesignPoints()[6].Config // DP7
	cfg.Searcher.Parallelism = parallelism
	return Config{
		Pipeline:  cfg,
		Pipelined: pipelined,
		Loop: &loop.Config{
			Backend:       "twostage",
			MinSeparation: slamPerLap - 2,
			MaxCandidates: 2,
			Cooldown:      1,
		},
	}
}

// runSLAM streams the sequence through an engine and returns the raw
// trajectory, the verified closures, and the optimized poses.
func runSLAM(t *testing.T, seq *synth.Sequence, parallelism int, pipelined bool) (Trajectory, []loop.Closure, []geom.Transform) {
	t.Helper()
	eng := New(slamEngineConfig(parallelism, pipelined))
	defer eng.Close()
	for _, f := range seq.Frames {
		if _, err := eng.Push(f.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	traj := eng.Trajectory()
	closures := eng.Closures()
	opt, res, err := eng.OptimizedPoses(posegraph.Options{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("pose-graph optimization did not converge: %+v", res)
	}
	return traj, closures, opt
}

func TestSLAMLoopClosureEndToEnd(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("full-pipeline SLAM run")
	}
	seq := slamSequence(slamPerLap + 6)
	traj, closures, opt := runSLAM(t, seq, 1, false)

	// (1) The loop is detected: at least one verified closure connecting
	// a revisit frame to the lap start, temporally gated, with a relative
	// transform matching ground truth.
	if len(closures) == 0 {
		t.Fatal("no loop closure detected on a closed circuit")
	}
	for _, cl := range closures {
		if cl.From-cl.To < slamPerLap-2 {
			t.Fatalf("closure %d->%d violates the temporal gate", cl.From, cl.To)
		}
		truth := seq.Poses[cl.To].Inverse().Compose(seq.Poses[cl.From])
		if e := cl.Delta.Inverse().Compose(truth).TranslationNorm(); e > 0.1 {
			t.Errorf("closure %d->%d delta is %.3f m from ground truth", cl.From, cl.To, e)
		}
	}

	// (2) Optimizing the engine's own (low-drift) odometry must not make
	// the trajectory worse.
	ateOdom := posegraph.ATE(traj.Poses, seq.Poses)
	ateOpt := posegraph.ATE(opt, seq.Poses)
	if ateOpt.RMSE > ateOdom.RMSE*1.05 {
		t.Errorf("optimization degraded ATE: %.4f -> %.4f m", ateOdom.RMSE, ateOpt.RMSE)
	}

	// (3) The headline margin, on the synthetic drift model: corrupt the
	// measured odometry with a deterministic calibration-style bias
	// (yaw + scale), rebuild the pose graph with the verified loop edges,
	// and optimization must reduce ATE by a solid measured margin.
	deltas := make([]geom.Transform, 0, traj.Len()-1)
	for _, fr := range traj.Frames[1:] {
		deltas = append(deltas, fr.Delta)
	}
	drifted := synth.DriftDeltas(deltas, 0.01, 1.06)
	g := posegraph.FromOdometry(geom.IdentityTransform(), drifted)
	for _, cl := range closures {
		g.AddEdge(posegraph.Edge{I: cl.To, J: cl.From, Z: cl.Delta, TransWeight: 10, RotWeight: 10, Robust: true})
	}
	before := posegraph.ATE(g.Poses, seq.Poses)
	optPoses, res, err := g.Optimize(posegraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := posegraph.ATE(optPoses, seq.Poses)
	if !res.Converged || res.FinalCost >= res.InitialCost {
		t.Fatalf("drifted graph did not optimize: %+v", res)
	}
	if after.RMSE >= 0.75*before.RMSE {
		t.Errorf("drifted ATE %.4f -> %.4f m: want at least a 25%% reduction", before.RMSE, after.RMSE)
	}
	t.Logf("closures=%d  engine ATE %.4f -> %.4f  drifted ATE %.4f -> %.4f",
		len(closures), ateOdom.RMSE, ateOpt.RMSE, before.RMSE, after.RMSE)
}

// TestSLAMBitIdenticalAcrossParallelism is the determinism acceptance:
// trajectory, closure set, and optimized poses must match float for
// float at any Parallelism, pipelined or not.
func TestSLAMBitIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("full-pipeline SLAM run")
	}
	seq := slamSequence(slamPerLap + 4)
	trajG, clG, optG := runSLAM(t, seq, 1, false)
	if len(clG) == 0 {
		t.Fatal("golden run found no closure")
	}
	for _, v := range []struct {
		p         int
		pipelined bool
	}{{4, false}, {2, true}} {
		traj, cl, opt := runSLAM(t, seq, v.p, v.pipelined)
		if len(cl) != len(clG) {
			t.Fatalf("p=%d pipelined=%v: %d closures, want %d", v.p, v.pipelined, len(cl), len(clG))
		}
		for i := range cl {
			if cl[i] != clG[i] {
				t.Fatalf("p=%d pipelined=%v: closure %d differs: %+v vs %+v", v.p, v.pipelined, i, cl[i], clG[i])
			}
		}
		for i := range traj.Poses {
			if traj.Poses[i] != trajG.Poses[i] {
				t.Fatalf("p=%d pipelined=%v: trajectory pose %d differs", v.p, v.pipelined, i)
			}
		}
		for i := range opt {
			if opt[i] != optG[i] {
				t.Fatalf("p=%d pipelined=%v: optimized pose %d differs", v.p, v.pipelined, i)
			}
		}
	}
}

// TestLoopStageConcurrency exercises the pipelined loop stage's
// goroutine handoffs on a small sequence (run under -race in CI). The
// scenario is too small to accept closures; the point is the Observe /
// verify / drain choreography.
func TestLoopStageConcurrency(t *testing.T) {
	cfg := dse.NamedDesignPoints()[3].Config // DP4: cheap
	cfg.Searcher.Parallelism = 2
	seq := slamSequence(14)
	eng := New(Config{
		Pipeline:  cfg,
		Pipelined: true,
		Loop:      &loop.Config{MinSeparation: 6, MaxCandidates: 2, Cooldown: 1},
	})
	for _, f := range seq.Frames {
		if _, err := eng.Push(f.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	if eng.Pending() != 0 {
		t.Fatalf("Pending = %d after Drain", eng.Pending())
	}
	st := eng.Stats()
	if st.Loop.Observed != int64(seq.Len()) {
		t.Fatalf("loop stage observed %d of %d frames", st.Loop.Observed, seq.Len())
	}
	if _, _, err := eng.OptimizedPoses(posegraph.Options{}); err != nil {
		t.Fatal(err)
	}
	eng.Close()
}

// TestOptimizedPosesWithoutLoopStage: no loop stage means a consistent
// graph; the optimized poses are the odometry poses.
func TestOptimizedPosesWithoutLoopStage(t *testing.T) {
	cfg := dse.NamedDesignPoints()[3].Config
	cfg.Searcher.Parallelism = 1
	seq := slamSequence(4)
	eng := New(Config{Pipeline: cfg})
	for _, f := range seq.Frames {
		if _, err := eng.Push(f.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	if got := eng.Closures(); len(got) != 0 {
		t.Fatalf("closures without a loop stage: %v", got)
	}
	traj := eng.Trajectory()
	opt, _, err := eng.OptimizedPoses(posegraph.Options{})
	eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i := range opt {
		if !opt[i].NearlyEqual(traj.Poses[i], 1e-9) {
			t.Fatalf("pose %d moved without loop edges", i)
		}
	}
}

// TestLoopConfigValidationPanics: an invalid loop backend must fail
// loudly at construction, matching the searcher-config contract.
func TestLoopConfigValidationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid loop backend")
		}
	}()
	New(Config{
		Pipeline: dse.NamedDesignPoints()[3].Config,
		Loop:     &loop.Config{Backend: "no-such-backend"},
	})
}
