package stream

import (
	"testing"

	"tigris/internal/obs"
	"tigris/internal/registration"
)

// TestTracingInert extends the recording-determinism contract to the
// flight recorder: a session with span tracing on must produce a
// bit-identical trajectory to one with it off, in both pipelining
// modes — tracing only records durations the pipeline already measured.
// It also pins the span-tree shape: one root span per frame with the
// deterministic id idx+1, and every stage span parented to its frame's
// root under the session's one trace id.
func TestTracingInert(t *testing.T) {
	const frames = 4
	seq := testSeq(t, frames, 53)
	cfg := testConfig(registration.SearchCanonical)
	for _, pipelined := range []bool{false, true} {
		off, _ := runStream(cloneFrames(seq), Config{Pipeline: cfg, Pipelined: pipelined})

		fr := obs.NewFlightRecorder(4096, 2)
		trace := obs.NewTraceID()
		on, _ := runStream(cloneFrames(seq), Config{Pipeline: cfg, Pipelined: pipelined, Flight: fr, Trace: trace})

		if on.Len() != off.Len() {
			t.Fatalf("pipelined=%v: %d frames with tracing, %d without", pipelined, on.Len(), off.Len())
		}
		for i := range off.Poses {
			if on.Poses[i] != off.Poses[i] {
				t.Fatalf("pipelined=%v: pose %d differs with tracing on", pipelined, i)
			}
			if on.Frames[i].Delta != off.Frames[i].Delta {
				t.Fatalf("pipelined=%v: delta %d differs with tracing on", pipelined, i)
			}
		}

		evs := fr.Events()
		if len(evs) == 0 {
			t.Fatalf("pipelined=%v: flight recorder saw nothing", pipelined)
		}
		roots := map[uint64]int32{} // frame span id -> frame index
		for _, ev := range evs {
			if ev.Trace != trace {
				t.Fatalf("pipelined=%v: span %q carries trace %s, want %s", pipelined, ev.Stage, ev.Trace, trace)
			}
			if ev.Stage == obs.StageFrame {
				if ev.Parent != 0 {
					t.Fatalf("frame span has parent %d, want root", ev.Parent)
				}
				if want := uint64(ev.Frame) + 1; ev.Span != want {
					t.Fatalf("frame %d span id = %d, want deterministic %d", ev.Frame, ev.Span, want)
				}
				roots[ev.Span] = ev.Frame
			}
		}
		if len(roots) != frames {
			t.Fatalf("pipelined=%v: %d frame root spans, want %d", pipelined, len(roots), frames)
		}
		for _, ev := range evs {
			if ev.Stage == obs.StageFrame || ev.Stage == obs.StagePoseGraph {
				continue
			}
			frame, ok := roots[ev.Parent]
			if !ok {
				t.Fatalf("pipelined=%v: %q span parented to unknown span %d", pipelined, ev.Stage, ev.Parent)
			}
			if frame != ev.Frame {
				t.Fatalf("pipelined=%v: %q span tagged frame %d but parented to frame %d's root",
					pipelined, ev.Stage, ev.Frame, frame)
			}
		}

		// Slowest-K exemplars for the whole-frame stage retain subtrees.
		slow := fr.Slowest()[obs.StageFrame]
		if len(slow) == 0 {
			t.Fatalf("pipelined=%v: no frame exemplars retained", pipelined)
		}
		for _, ex := range slow {
			if len(ex.Events) < 2 {
				t.Fatalf("pipelined=%v: frame %d exemplar subtree has %d events, want root plus stage children",
					pipelined, ex.Frame, len(ex.Events))
			}
		}
	}
}

// TestTracingDefaultsTraceID pins that an engine given a flight
// recorder but no trace id mints one and exposes it via TraceID().
func TestTracingDefaultsTraceID(t *testing.T) {
	seq := testSeq(t, 2, 54)
	fr := obs.NewFlightRecorder(256, 1)
	eng := New(Config{Pipeline: testConfig(registration.SearchCanonical), Flight: fr})
	if eng.TraceID().IsZero() {
		t.Fatal("engine with a flight recorder minted no trace id")
	}
	for _, f := range cloneFrames(seq) {
		if _, err := eng.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	for _, ev := range fr.Events() {
		if ev.Trace != eng.TraceID() {
			t.Fatalf("span %q trace %s != engine trace %s", ev.Stage, ev.Trace, eng.TraceID())
		}
	}
}
