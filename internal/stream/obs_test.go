package stream

import (
	"sync"
	"testing"

	"tigris/internal/obs"
	"tigris/internal/registration"
)

// TestRecordingInert is the tentpole's determinism contract: telemetry
// only taps durations the pipeline already measured, so an identical
// session with a recorder attached must produce a bit-identical
// trajectory — poses AND deltas — to one recording nothing. Covers both
// pipelining modes, since the recorder also sits on the pipeline
// hand-off paths there.
func TestRecordingInert(t *testing.T) {
	const frames = 4
	seq := testSeq(t, frames, 51)
	cfg := testConfig(registration.SearchCanonical)
	for _, pipelined := range []bool{false, true} {
		off, _ := runStream(cloneFrames(seq), Config{Pipeline: cfg, Pipelined: pipelined})

		rec := obs.NewRecorder()
		on, _ := runStream(cloneFrames(seq), Config{Pipeline: cfg, Pipelined: pipelined, Obs: rec})

		if on.Len() != off.Len() {
			t.Fatalf("pipelined=%v: %d frames with recording, %d without", pipelined, on.Len(), off.Len())
		}
		for i := range off.Poses {
			if on.Poses[i] != off.Poses[i] {
				t.Fatalf("pipelined=%v: pose %d differs with recording on", pipelined, i)
			}
			if on.Frames[i].Delta != off.Frames[i].Delta {
				t.Fatalf("pipelined=%v: delta %d differs with recording on", pipelined, i)
			}
		}

		// And the recorder actually saw the pipeline: per-stage and
		// whole-frame histograms must hold the expected sample counts.
		sums := rec.Summaries()
		if got := sums[obs.StageFrame].Count; got != frames {
			t.Fatalf("pipelined=%v: %d frame samples, want %d", pipelined, got, frames)
		}
		if got := sums[obs.StagePrep].Count; got != frames {
			t.Fatalf("pipelined=%v: %d prep samples, want %d", pipelined, got, frames)
		}
		if got := sums[obs.StageAlign].Count; got != frames-1 {
			t.Fatalf("pipelined=%v: %d align samples, want %d", pipelined, got, frames-1)
		}
		if pipelined {
			if got := sums[obs.StageQueueWaitPrep].Count; got != frames {
				t.Fatalf("%d queue_wait_prep samples, want %d", got, frames)
			}
			if got := sums[obs.StageQueueWaitAlign].Count; got != frames {
				t.Fatalf("%d queue_wait_align samples, want %d", got, frames)
			}
		} else if _, ok := sums[obs.StageQueueWaitPrep]; ok {
			t.Fatal("sequential mode recorded a queue-wait span")
		}
	}
}

// TestStatsConcurrentPolling hammers Stats and Pending from pollers
// while a pipelined session streams — the /stats endpoint's access
// pattern. The counters are atomics, so under -race this asserts the
// snapshot path really is synchronization-clean, and afterwards the
// drained session's counts must be exact.
func TestStatsConcurrentPolling(t *testing.T) {
	const frames = 4
	seq := testSeq(t, frames, 52)
	eng := New(Config{Pipeline: testConfig(registration.SearchCanonical), Pipelined: true, Obs: obs.NewRecorder()})

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 3; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st := eng.Stats()
					if st.FramesPrepared > frames {
						t.Errorf("FramesPrepared = %d, beyond the %d pushed", st.FramesPrepared, frames)
						return
					}
					_ = eng.Pending()
				}
			}
		}()
	}

	for _, f := range cloneFrames(seq) {
		if _, err := eng.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	close(stop)
	pollers.Wait()
	eng.Close()

	st := eng.Stats()
	if st.FramesPushed != frames || st.FramesPrepared != frames || st.PairsAligned != frames-1 {
		t.Fatalf("drained counts pushed/prepared/aligned = %d/%d/%d, want %d/%d/%d",
			st.FramesPushed, st.FramesPrepared, st.PairsAligned, frames, frames, frames-1)
	}
	if st.TreeBuilds != frames {
		t.Fatalf("tree builds = %d, want %d", st.TreeBuilds, frames)
	}
}
