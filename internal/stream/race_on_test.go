//go:build race

package stream

// See race_off_test.go.
const raceEnabled = true
