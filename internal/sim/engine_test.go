package sim

import (
	"math/rand"
	"testing"

	"tigris/internal/twostage"
)

func TestSuFIFO(t *testing.T) {
	var q suFIFO
	if q.len() != 0 {
		t.Fatal("fresh FIFO not empty")
	}
	for i := 0; i < 10; i++ {
		q.push(suQueueItem{qid: int32(i)})
	}
	if q.len() != 10 {
		t.Fatalf("len = %d", q.len())
	}
	q.head = 6
	if q.len() != 4 {
		t.Fatalf("len after head advance = %d", q.len())
	}
	// Compact only triggers when the consumed prefix dominates a large
	// backing array; simulate that.
	big := suFIFO{}
	for i := 0; i < 4000; i++ {
		big.push(suQueueItem{qid: int32(i)})
	}
	big.head = 3000
	big.compact()
	if big.head != 0 || big.len() != 1000 {
		t.Fatalf("compact: head=%d len=%d", big.head, big.len())
	}
	if big.items[0].qid != 3000 {
		t.Fatalf("compact lost order: first qid = %d", big.items[0].qid)
	}
}

func TestBQBWindowLimitsBatchSearch(t *testing.T) {
	// With a window of 1, batching degenerates to FIFO order: every batch
	// has exactly one query, costing more cycles than the full window.
	r := rand.New(rand.NewSource(31))
	tree := twostage.BuildWithLeafSize(randPoints(r, 4000), 128)
	queries := clusteredQueries(r, tree.Points(), 800)
	w := Workload{Kind: RadiusSearch, Queries: queries, Radius: 2}

	narrow := DefaultConfig()
	narrow.BQBCapacity = 1
	a, err := Run(tree, w, narrow)
	if err != nil {
		t.Fatal(err)
	}
	wide := DefaultConfig()
	wide.BQBCapacity = 128
	b, err := Run(tree, w, wide)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles <= b.Cycles {
		t.Errorf("window=1 (%d cycles) should be slower than window=128 (%d)", a.Cycles, b.Cycles)
	}
	// Functional results must be identical regardless of the window.
	for i := range a.RadiusResults {
		if len(a.RadiusResults[i]) != len(b.RadiusResults[i]) {
			t.Fatal("scheduling window changed functional results")
		}
	}
}

func TestSingleRUSingleSUStillCompletes(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	tree := twostage.Build(randPoints(r, 1000), 4)
	queries := clusteredQueries(r, tree.Points(), 300)
	cfg := DefaultConfig()
	cfg.NumRU = 1
	cfg.NumSU = 1
	cfg.PEsPerSU = 1
	rep, err := Run(tree, Workload{Kind: NNSearch, Queries: queries}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NNResults) != len(queries) {
		t.Fatal("results missing")
	}
	for i, q := range queries {
		want, _ := tree.Nearest(q, nil)
		if rep.NNResults[i].Index != want.Index {
			t.Fatalf("minimal config diverged at query %d", i)
		}
	}
	// A minimal configuration must be slower than the default.
	def, err := Run(tree, Workload{Kind: NNSearch, Queries: queries}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles <= def.Cycles {
		t.Errorf("1/1/1 config (%d cycles) not slower than default (%d)", rep.Cycles, def.Cycles)
	}
}

func TestEventOrderingDeterministicTieBreak(t *testing.T) {
	// Events at equal timestamps must pop in insertion order.
	var h eventHeap
	e := &engine{}
	e.events = h
	for i := 0; i < 5; i++ {
		e.push(event{time: 7, kind: evSUCheck, su: int32(i)})
	}
	for i := 0; i < 5; i++ {
		ev := popEvent(e)
		if ev.su != int32(i) {
			t.Fatalf("tie-break order violated: got su %d at pop %d", ev.su, i)
		}
	}
}

func popEvent(e *engine) event {
	ev := e.events[0]
	last := len(e.events) - 1
	e.events[0] = e.events[last]
	e.events = e.events[:last]
	if last > 0 {
		e.events.siftDownForTest()
	}
	return ev
}

// siftDownForTest re-heapifies from the root (mirror of container/heap's
// behavior for the test helper).
func (h eventHeap) siftDownForTest() {
	i := 0
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.Less(l, smallest) {
			smallest = l
		}
		if r < n && h.Less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.Swap(i, smallest)
		i = smallest
	}
}
