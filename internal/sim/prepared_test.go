package sim

import (
	"math/rand"
	"testing"

	"tigris/internal/twostage"
)

func TestPreparedReuseMatchesRun(t *testing.T) {
	// Simulating a prepared trace must give exactly the same report as a
	// direct Run with the same config.
	r := rand.New(rand.NewSource(20))
	tree := twostage.BuildWithLeafSize(randPoints(r, 4000), 128)
	queries := clusteredQueries(r, tree.Points(), 400)
	w := Workload{Kind: NNSearch, Queries: queries}

	cfg := DefaultConfig()
	p, err := Prepare(tree, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(tree, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaPrepared, err := p.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cycles != viaPrepared.Cycles || direct.Traffic != viaPrepared.Traffic {
		t.Error("prepared simulation diverged from direct Run")
	}
}

func TestPreparedSweepIsConsistent(t *testing.T) {
	// The Fig. 14 usage pattern: one trace, many unit-count configs. Each
	// swept config must match what a fresh Run would produce.
	r := rand.New(rand.NewSource(21))
	tree := twostage.BuildWithLeafSize(randPoints(r, 3000), 64)
	queries := clusteredQueries(r, tree.Points(), 300)
	w := Workload{Kind: RadiusSearch, Queries: queries, Radius: 2}

	base := DefaultConfig()
	p, err := Prepare(tree, w, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, ru := range []int{8, 32, 128} {
		cfg := base
		cfg.NumRU = ru
		swept, err := p.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(tree, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if swept.Cycles != fresh.Cycles {
			t.Errorf("RU=%d: swept %d cycles, fresh %d", ru, swept.Cycles, fresh.Cycles)
		}
	}
}

func TestPreparedRejectsApproxMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	tree := twostage.Build(randPoints(r, 500), 4)
	w := Workload{Kind: NNSearch, Queries: clusteredQueries(r, tree.Points(), 50)}
	cfg := DefaultConfig()
	p, err := Prepare(tree, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Approx = 1.2
	if _, err := p.Simulate(bad); err == nil {
		t.Error("approximation mismatch accepted")
	}
	bad2 := cfg
	bad2.LeaderCap = 8
	if _, err := p.Simulate(bad2); err == nil {
		t.Error("leader-cap mismatch accepted")
	}
}

func TestPreparedEmptyWorkload(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	tree := twostage.Build(randPoints(r, 100), 3)
	p, err := Prepare(tree, Workload{Kind: NNSearch}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Simulate(DefaultConfig())
	if err != nil || rep.Cycles != 0 {
		t.Error("empty prepared workload should be a no-op")
	}
}

func TestLeaderCapAccuracyTradeoff(t *testing.T) {
	// §5.3: "capping the Leader Buffer improves accuracy because more
	// queries will be searched exactly". A smaller cap must not reduce the
	// number of exact (precise-path) queries.
	r := rand.New(rand.NewSource(24))
	tree := twostage.BuildWithLeafSize(surfacePoints(r, 8000), 128)
	queries := tree.Points()[:3000]

	followerCount := func(cap int) int {
		cfg := DefaultConfig()
		cfg.Approx = 1.0
		cfg.LeaderCap = cap
		traces, _ := traceNN(tree, queries, &cfg)
		n := 0
		for _, tr := range traces {
			for _, s := range tr.segments {
				if s.follower {
					n++
				}
			}
		}
		return n
	}
	small := followerCount(4)
	large := followerCount(64)
	if small > large {
		t.Errorf("smaller cap produced more followers: cap4=%d cap64=%d", small, large)
	}
	if large == 0 {
		t.Error("no followers at generous cap; test workload ineffective")
	}
}
