// Package sim is the Tigris accelerator model (paper §5): a cycle-level
// simulator of the front-end Recursion Units (RU) that traverse the
// two-stage KD-tree's top-tree, and the back-end Search Units (SU) whose
// Processing Element (PE) arrays exhaustively scan leaf node-sets. The
// simulator executes real search workloads over a real twostage.Tree —
// results are bit-identical to the software search — while accounting
// cycles, buffer traffic, and energy the way the paper's synthesis-
// parameterized simulator does (§6.1).
//
// Modeled mechanisms, each mapped to its paper section:
//
//   - RU six-stage pipeline FQ/RS/RN/CD/PI/CL with the PI→RS stall, node
//     forwarding, and node bypassing (§5.2, Fig. 9).
//   - Query-level parallelism across RUs and SU PEs; node-level
//     parallelism by streaming node-sets through the PE pipeline (§5.1).
//   - MQSN vs MQMN issue, hierarchical SUs, the query distribution
//     network's low-order-bit leaf→SU mapping (§5.3).
//   - The FIFO node cache in front of the Input Point Buffer (§5.3).
//   - Approximate search with capped per-leaf Leader Buffers, with
//     follower queries fetching their leader's results from the Result
//     Buffer (§4.3, §5.3).
//   - BE→FE query reinsertion: a query whose leaf scan finishes resumes
//     its top-tree traversal with the tightened current-best distance
//     (Fig. 8).
package sim

import "fmt"

// IssuePolicy selects how SUs issue queries to their PEs (§5.3).
type IssuePolicy int

const (
	// MQSN (Multiple Query Single NodeSet) forces all PEs of an SU to
	// process queries from the same leaf so one node-set stream feeds the
	// whole array. The design the paper adopts.
	MQSN IssuePolicy = iota
	// MQMN (Multiple Query Multiple NodeSet) lets every PE process any
	// query at the cost of per-PE node-set streams (≈2× speed, ≈4× power
	// in Fig. 12).
	MQMN
)

// String implements fmt.Stringer.
func (p IssuePolicy) String() string {
	if p == MQMN {
		return "MQMN"
	}
	return "MQSN"
}

// Config describes one accelerator instance. The zero value is invalid;
// use DefaultConfig for the paper's shipping configuration.
type Config struct {
	// NumRU is the number of front-end recursion units (paper: 64).
	NumRU int
	// NumSU is the number of back-end search units (paper: 32).
	NumSU int
	// PEsPerSU is the PE array width per SU (paper: 32).
	PEsPerSU int
	// ClockMHz is the datapath clock (paper: 500 MHz in 16 nm).
	ClockMHz float64

	// Forwarding enables node forwarding in the RU pipeline (§5.2).
	Forwarding bool
	// Bypassing enables pruned-node bypassing in the RU pipeline (§5.2).
	Bypassing bool
	// Issue selects MQSN or MQMN.
	Issue IssuePolicy
	// NodeCacheSets is the total number of node-set entries in the node
	// cache, divided evenly among the SUs (0 disables). The paper's
	// 128 KB cache holds 64 sets of 128 16-byte points; that is the
	// default.
	NodeCacheSets int

	// Approx enables the leader/follower approximate search with the given
	// discriminator threshold (meters); 0 disables. For radius workloads
	// the effective threshold is ApproxRadiusFrac × radius when that field
	// is positive.
	Approx           float64
	ApproxRadiusFrac float64
	// LeaderCap bounds each leaf's leader buffer (paper: 16).
	LeaderCap int

	// BQBCapacity is the per-SU back-end query buffer capacity in queries
	// (paper: 128). The FE stalls distribution to a full BQB.
	BQBCapacity int
}

// DefaultConfig returns the paper's evaluated configuration (§6.2): 64
// RUs, 32 SUs, 32 PEs/SU, 500 MHz, both RU optimizations, MQSN issue, the
// node cache, and a 16-entry leader cap.
func DefaultConfig() Config {
	return Config{
		NumRU:         64,
		NumSU:         32,
		PEsPerSU:      32,
		ClockMHz:      500,
		Forwarding:    true,
		Bypassing:     true,
		Issue:         MQSN,
		NodeCacheSets: 64,
		LeaderCap:     16,
		BQBCapacity:   128,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.NumRU <= 0:
		return fmt.Errorf("sim: NumRU must be positive, got %d", c.NumRU)
	case c.NumSU <= 0:
		return fmt.Errorf("sim: NumSU must be positive, got %d", c.NumSU)
	case c.PEsPerSU <= 0:
		return fmt.Errorf("sim: PEsPerSU must be positive, got %d", c.PEsPerSU)
	case c.ClockMHz <= 0:
		return fmt.Errorf("sim: ClockMHz must be positive, got %v", c.ClockMHz)
	}
	return nil
}

func (c *Config) defaults() {
	if c.LeaderCap == 0 {
		c.LeaderCap = 16
	}
	if c.BQBCapacity == 0 {
		c.BQBCapacity = 128
	}
}

// Area is the §6.2 area model, in mm² at 16 nm. Constants are fit to the
// paper's totals: 8.38 mm² of SRAM for ≈8.86 MB of buffers
// (0.946 mm²/MB) and 7.19 mm² of logic for 64 RUs + 1024 PEs
// (6.61e-3 mm² per distance-compute unit).
type Area struct {
	SRAMmm2   float64
	LogicMm2  float64
	SRAMBytes int64
}

// Total returns the total area in mm².
func (a Area) Total() float64 { return a.SRAMmm2 + a.LogicMm2 }

// SRAM sizing mirrors §6.2: Input Point Buffer 1.5 MB, Query Buffer
// 1.5 MB, Query Stack Buffer 1.2 MB, FE Query Queue 1.5 MB, Result Buffer
// 3 MB (double-buffered), 1 KB BQB per SU, 128 KB node cache scaled by the
// configured set count.
const (
	inputPointBufBytes = 1_500 << 10
	queryBufBytes      = 1_500 << 10
	queryStackBufBytes = 1_200 << 10
	feQueryQueueBytes  = 1_500 << 10
	resultBufBytes     = 3_000 << 10
	bqbBytesPerSU      = 1 << 10
	nodeCacheBytesPer  = 2 << 10 // one 128-point set of 16-byte points
)

const (
	mm2PerMByte = 0.968
	mm2PerUnit  = 0.00661
)

// EstimateArea returns the area of this configuration.
func (c *Config) EstimateArea() Area {
	sramBytes := int64(inputPointBufBytes + queryBufBytes + queryStackBufBytes +
		feQueryQueueBytes + resultBufBytes)
	sramBytes += int64(c.NumSU) * bqbBytesPerSU
	sramBytes += int64(c.NodeCacheSets) * nodeCacheBytesPer
	units := c.NumRU + c.NumSU*c.PEsPerSU
	return Area{
		SRAMmm2:   mm2PerMByte * float64(sramBytes) / (1 << 20),
		LogicMm2:  mm2PerUnit * float64(units),
		SRAMBytes: sramBytes,
	}
}
