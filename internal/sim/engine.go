package sim

import (
	"container/heap"
)

// The engine schedules query traces over the modeled hardware:
//
//	FQQ → RU (FE burst) → query distribution network → SU BQB → PE batch
//	 ↑                                                            │
//	 └──────────────── reinsertion (Fig. 8) ──────────────────────┘
//
// Per-iteration RU costs (§5.2, Fig. 9): the PI→RS stack dependency
// stalls the baseline pipeline 3 cycles between consecutive nodes, so a
// fully processed node costs 4 cycles; node forwarding removes the stalls
// (1 cycle/node); a pruned node exits at RN — 2 cycles with bypassing,
// a full slot otherwise.
//
// SU batch costs (§5.3, Fig. 10): an MQSN batch streams one node set of
// size S through the PE pipeline: fill (3) + S cycles + systolic skew
// (batch−1) + 1 cycle of amortized associative search. Followers instead
// stream their leader's result list (and pay the leader-distance checks,
// which reuse the PEs). MQMN gives each PE its own stream: same latency
// shape per query, but node-set traffic is paid per query, not per batch.

// ruBurstCycles returns the FE cost of one burst.
func ruBurstCycles(fullNodes, prunedNodes int32, cfg *Config) uint64 {
	var perFull, perPruned uint64
	switch {
	case cfg.Forwarding && cfg.Bypassing:
		perFull, perPruned = 1, 1
	case cfg.Forwarding:
		perFull, perPruned = 1, 1
	case cfg.Bypassing:
		perFull, perPruned = 4, 2
	default:
		perFull, perPruned = 4, 4
	}
	// +2: FQ at burst start plus the CL issue slot. Consecutive bursts on
	// one RU overlap in the pipeline, so drain is not charged per burst.
	return uint64(fullNodes)*perFull + uint64(prunedNodes)*perPruned + 2
}

// suScanCycles returns the BE cost of scanning one leaf visit for a batch
// whose longest stream is maxScan points, with maxLeader leader checks.
// Leader checks reuse the PE array (§5.3), so they run pes-wide in
// parallel plus a short min-reduction.
func suScanCycles(maxScan, maxLeader int32, batch, pes int) uint64 {
	cycles := uint64(3) + uint64(maxScan) + uint64(batch-1) + 1
	if maxLeader > 0 {
		cycles += uint64((int(maxLeader)+pes-1)/pes) + 2
	}
	return cycles
}

// event kinds for the DES heap.
type eventKind int8

const (
	evFQQArrival eventKind = iota
	evSUCheck
)

type event struct {
	time uint64
	kind eventKind
	// qid/seg for FQQ arrivals; su for SU checks.
	qid, seg, su int32
	// order breaks ties deterministically (FIFO within equal timestamps).
	order uint64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].order < h[j].order
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// pendingQuery is one FQQ entry: a query positioned at a segment.
type pendingQuery struct {
	qid, seg int32
}

// suQueueItem is a BQB entry.
type suQueueItem struct {
	qid, seg int32
	leaf     int32
	follower bool
}

// suFIFO is a head-indexed queue so servicing never copies the tail.
type suFIFO struct {
	items []suQueueItem
	head  int
}

func (q *suFIFO) len() int { return len(q.items) - q.head }

func (q *suFIFO) push(it suQueueItem) { q.items = append(q.items, it) }

// compact reclaims the consumed prefix once it dominates the backing
// array.
func (q *suFIFO) compact() {
	if q.head > 1024 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
}

// engine executes the traces and accumulates the Report counters.
type engine struct {
	cfg    *Config
	traces []queryTrace

	events eventHeap
	order  uint64

	ruFree    []uint64 // per-RU next-free cycle
	fqq       []pendingQuery
	suQueue   []suFIFO   // per-SU BQB (arrived items)
	suBusy    []uint64   // per-SU busy-until (MQSN batch semantics)
	suCheckAt []uint64   // latest scheduled SU-check time (dedupes checks)
	peFree    [][]uint64 // per-SU per-PE next-free (MQMN)
	leafToSU  []int32

	now       uint64
	completed int
	lastDone  uint64

	// Busy-cycle accumulators for utilization reporting.
	ruBusyCycles uint64
	suBusyCycles uint64

	traffic Traffic
	counts  OpCounts

	nodeCache []fifoCache
}

// fifoCache models the per-SU node cache: a FIFO of leaf IDs whose node
// sets are resident (§5.3: entries are whole node sets, accessed as FIFOs).
type fifoCache struct {
	sets []int32
	cap  int
}

func (c *fifoCache) lookup(leaf int32) bool {
	for _, s := range c.sets {
		if s == leaf {
			return true
		}
	}
	return false
}

func (c *fifoCache) insert(leaf int32) {
	if c.cap == 0 {
		return
	}
	if len(c.sets) >= c.cap {
		c.sets = c.sets[1:]
	}
	c.sets = append(c.sets, leaf)
}

// Traffic counts buffer accesses (Fig. 13's categories).
type Traffic struct {
	FEQueryQueue int64
	QueryBuf     int64
	QueryStacks  int64
	ResultBuf    int64
	BEQueryQueue int64
	NodeCache    int64
	PointsBuf    int64
}

// Total sums all buffer accesses.
func (t Traffic) Total() int64 {
	return t.FEQueryQueue + t.QueryBuf + t.QueryStacks + t.ResultBuf +
		t.BEQueryQueue + t.NodeCache + t.PointsBuf
}

// OpCounts tallies compute events for the energy model.
type OpCounts struct {
	PEDistanceOps int64 // leaf scans + leader checks + RU CD ops
	SRAMReads     int64
	SRAMWrites    int64
	DRAMAccesses  int64
}

func newEngine(cfg *Config, traces []queryTrace, numLeaves int) *engine {
	e := &engine{
		cfg:       cfg,
		traces:    traces,
		ruFree:    make([]uint64, cfg.NumRU),
		suQueue:   make([]suFIFO, cfg.NumSU),
		suBusy:    make([]uint64, cfg.NumSU),
		suCheckAt: make([]uint64, cfg.NumSU),
		peFree:    make([][]uint64, cfg.NumSU),
		leafToSU:  make([]int32, numLeaves),
	}
	for i := range e.peFree {
		e.peFree[i] = make([]uint64, cfg.PEsPerSU)
	}
	// Query distribution network: low-order bits of the leaf ID select the
	// SU (§5.3).
	for leaf := range e.leafToSU {
		e.leafToSU[leaf] = int32(leaf % cfg.NumSU)
	}
	if cfg.NodeCacheSets > 0 {
		perSU := cfg.NodeCacheSets / cfg.NumSU
		if perSU < 1 {
			perSU = 1
		}
		e.nodeCache = make([]fifoCache, cfg.NumSU)
		for i := range e.nodeCache {
			e.nodeCache[i].cap = perSU
		}
	}
	return e
}

func (e *engine) push(ev event) {
	ev.order = e.order
	e.order++
	heap.Push(&e.events, ev)
}

// scheduleSUCheck schedules a service check for the SU at time t unless a
// not-yet-fired check already exists at or before t. Without deduplication
// every arrival to a busy SU would re-poll at every subsequent batch
// boundary, inflating the event count quadratically; the pending-check
// marker is cleared when a check fires (see run), so same-cycle arrivals
// after a fired check still get their own.
func (e *engine) scheduleSUCheck(su int32, t uint64) {
	if pending := e.suCheckAt[su]; pending != 0 && pending <= t {
		return
	}
	e.suCheckAt[su] = t
	e.push(event{time: t, kind: evSUCheck, su: su})
}

// run executes all traces and returns the total cycle count.
func (e *engine) run() uint64 {
	// All queries arrive at cycle 0 in the FQQ.
	for qid := range e.traces {
		e.push(event{time: 0, kind: evFQQArrival, qid: int32(qid), seg: 0})
	}
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.time
		switch ev.kind {
		case evFQQArrival:
			e.traffic.FEQueryQueue += 2 // push + later pop
			e.fqq = append(e.fqq, pendingQuery{qid: ev.qid, seg: ev.seg})
			e.dispatchFE()
		case evSUCheck:
			if e.suCheckAt[ev.su] == ev.time {
				e.suCheckAt[ev.su] = 0
			}
			e.serviceSU(int(ev.su))
		}
	}
	return e.lastDone
}

// dispatchFE assigns pending FQQ entries to RUs.
func (e *engine) dispatchFE() {
	for len(e.fqq) > 0 {
		// Earliest-free RU.
		ru := 0
		for i := 1; i < len(e.ruFree); i++ {
			if e.ruFree[i] < e.ruFree[ru] {
				ru = i
			}
		}
		item := e.fqq[0]
		e.fqq = e.fqq[1:]

		start := e.ruFree[ru]
		if e.now > start {
			start = e.now
		}
		seg := &e.traces[item.qid].segments[item.seg]
		cycles := ruBurstCycles(seg.fullNodes, seg.prunedNodes, e.cfg)
		end := start + cycles
		e.ruFree[ru] = end
		e.ruBusyCycles += cycles

		// FE traffic: query fetch, stack pops/pushes, node reads, result
		// inserts for top-node hits.
		e.traffic.QueryBuf++
		pops := int64(seg.fullNodes + seg.prunedNodes)
		e.traffic.QueryStacks += pops + 2*int64(seg.fullNodes) // pops + child pushes
		e.traffic.PointsBuf += int64(seg.fullNodes)            // RN reads node data
		e.counts.PEDistanceOps += int64(seg.fullNodes)         // CD stage compute
		e.counts.SRAMReads += pops + int64(seg.fullNodes) + 1
		e.counts.SRAMWrites += 2 * int64(seg.fullNodes)

		if seg.leafID >= 0 {
			su := e.leafToSU[seg.leafID]
			e.traffic.BEQueryQueue += 2
			e.counts.SRAMWrites++
			e.suQueue[su].push(suQueueItem{
				qid: item.qid, seg: item.seg, leaf: seg.leafID, follower: seg.follower,
			})
			t := end
			if e.cfg.Issue == MQSN && e.suBusy[su] > t {
				t = e.suBusy[su]
			}
			e.scheduleSUCheck(su, t)
		} else {
			// Query complete.
			e.completed++
			if end > e.lastDone {
				e.lastDone = end
			}
		}
	}
}

// serviceSU issues one batch (MQSN) or fills PEs (MQMN) if the SU is free.
func (e *engine) serviceSU(su int) {
	if e.suQueue[su].len() == 0 {
		return
	}
	if e.cfg.Issue == MQMN {
		e.serviceMQMN(su)
		return
	}
	if e.suBusy[su] > e.now {
		// Busy: make sure a check fires when the batch completes.
		e.scheduleSUCheck(int32(su), e.suBusy[su])
		return
	}
	// MQSN: the issue logic uses the first query in the BQB as the search
	// key and associatively gathers same-leaf, same-mode queries up to the
	// PE count. The scheduling window is the BQB capacity (128 queries,
	// §5.3) — the hierarchical-SU design exists precisely to keep this
	// window small and the issue logic complexity-effective. The in-place
	// partition keeps servicing O(window) even when the modeled queue runs
	// deep.
	q := &e.suQueue[su]
	window := q.head + e.cfg.BQBCapacity
	if window > len(q.items) {
		window = len(q.items)
	}
	key := q.items[q.head]
	write := q.head
	for i := q.head; i < window && write-q.head < e.cfg.PEsPerSU; i++ {
		it := q.items[i]
		if it.leaf == key.leaf && it.follower == key.follower {
			q.items[i] = q.items[write]
			q.items[write] = it
			write++
		}
	}
	batch := make([]suQueueItem, write-q.head)
	copy(batch, q.items[q.head:write])
	q.head = write
	q.compact()

	var maxScan, maxLeader int32
	for _, it := range batch {
		seg := &e.traces[it.qid].segments[it.seg]
		if seg.scanned > maxScan {
			maxScan = seg.scanned
		}
		if seg.leaderChecks > maxLeader {
			maxLeader = seg.leaderChecks
		}
	}
	cycles := suScanCycles(maxScan, maxLeader, len(batch), e.cfg.PEsPerSU)
	end := e.now + cycles
	e.suBusy[su] = end
	e.suBusyCycles += cycles * uint64(len(batch))
	e.accountScan(su, batch, key.follower, true)
	for _, it := range batch {
		e.push(event{time: end, kind: evFQQArrival, qid: it.qid, seg: it.seg + 1})
	}
	if e.suQueue[su].len() > 0 {
		e.scheduleSUCheck(int32(su), end)
	}
}

// serviceMQMN dispatches every pending query to the earliest-free PE.
func (e *engine) serviceMQMN(su int) {
	q := &e.suQueue[su]
	for _, it := range q.items[q.head:] {
		pe := 0
		for i := 1; i < len(e.peFree[su]); i++ {
			if e.peFree[su][i] < e.peFree[su][pe] {
				pe = i
			}
		}
		start := e.peFree[su][pe]
		if e.now > start {
			start = e.now
		}
		seg := &e.traces[it.qid].segments[it.seg]
		cycles := suScanCycles(seg.scanned, seg.leaderChecks, 1, e.cfg.PEsPerSU)
		end := start + cycles
		e.peFree[su][pe] = end
		e.suBusyCycles += cycles
		e.accountScan(su, []suQueueItem{it}, it.follower, false)
		e.push(event{time: end, kind: evFQQArrival, qid: it.qid, seg: it.seg + 1})
	}
	q.items = q.items[:0]
	q.head = 0
}

// accountScan books traffic and ops for one scan batch. shared indicates
// the node-set stream is read once for the whole batch (MQSN).
func (e *engine) accountScan(su int, batch []suQueueItem, follower bool, shared bool) {
	var streamReads int64
	for bi, it := range batch {
		seg := &e.traces[it.qid].segments[it.seg]
		e.traffic.QueryBuf++ // PE-local query point load
		e.counts.SRAMReads++
		e.counts.PEDistanceOps += int64(seg.scanned) + int64(seg.leaderChecks)
		e.traffic.ResultBuf += int64(seg.resWrites)
		e.counts.SRAMWrites += int64(seg.resWrites)
		if follower {
			// Followers stream their leader's results from the Result
			// Buffer (§5.3) — never shareable.
			e.traffic.ResultBuf += int64(seg.scanned)
			e.counts.SRAMReads += int64(seg.scanned) + int64(seg.leaderChecks)
		} else if !shared || bi == 0 {
			streamReads += int64(seg.scanned)
		}
	}
	if follower || streamReads == 0 {
		return
	}
	// Precise scans stream the node set; the node cache intercepts the
	// Input Point Buffer traffic on a hit.
	leaf := batch[0].leaf
	if e.nodeCache != nil {
		if e.nodeCache[su].lookup(leaf) {
			e.traffic.NodeCache += streamReads
			e.counts.SRAMReads += streamReads
			return
		}
		e.nodeCache[su].insert(leaf)
		// Miss: read from the points buffer and fill the cache.
		e.traffic.PointsBuf += streamReads
		e.traffic.NodeCache += streamReads // fill writes
		e.counts.SRAMReads += streamReads
		e.counts.SRAMWrites += streamReads
		return
	}
	e.traffic.PointsBuf += streamReads
	e.counts.SRAMReads += streamReads
}
