package sim

import "tigris/internal/search"

// WorkloadsFromTrace converts a trace-backend capture (the "trace"
// search backend recording a real pipeline run) into accelerator
// workloads, one Workload per recorded stage batch — the unit the
// accelerator is invoked on. NN batches map to NNSearch and radius
// batches to RadiusSearch; exact k-NN batches have no datapath
// counterpart (the modeled accelerator serves NN and radius search, §5)
// and are skipped. The query slices are shared with the trace, not
// copied.
//
// This is the ROADMAP's "feed sim.Workload batches straight from the
// stage query logs": capture once with the trace backend, then replay the
// exact query stream through Run/Prepare/Simulate or the baseline
// Profile* models instead of re-walking the pipeline.
func WorkloadsFromTrace(batches []search.TraceBatch) []Workload {
	out := make([]Workload, 0, len(batches))
	for _, b := range batches {
		switch b.Kind {
		case search.TraceNearest:
			out = append(out, Workload{Kind: NNSearch, Queries: b.Queries, Stage: b.Stage})
		case search.TraceRadius:
			out = append(out, Workload{Kind: RadiusSearch, Queries: b.Queries, Radius: b.Radius, Stage: b.Stage})
		}
	}
	return out
}

// StageQueryCounts sums a capture's queries per pipeline stage — the
// Fig. 6-style weights a co-sim run scales its per-stage results with.
// Batches the pipeline never tagged fall under the "" key.
func StageQueryCounts(batches []search.TraceBatch) map[string]int64 {
	out := make(map[string]int64)
	for _, b := range batches {
		out[b.Stage] += int64(len(b.Queries))
	}
	return out
}
