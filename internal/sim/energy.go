package sim

import "time"

// Energy model (DESIGN.md substitution 3). Per-event energies are
// documented constants for a 16 nm process, chosen so the shipping
// configuration reproduces the paper's §6.3 DP4 energy breakdown
// (PE ≈ 53.7%, SRAM read ≈ 34.8%, SRAM write ≈ 8.0%, leakage ≈ 3.3%,
// DRAM ≈ 0.2%). The absolute joule numbers are model outputs, not
// silicon measurements; every experiment reports ratios.
const (
	// pePJ is the fully loaded energy of one PE distance operation: the
	// 3-component fp32 subtract/multiply/accumulate tree and compare,
	// plus the pipeline registers, issue/control logic, and clock-tree
	// share attributed to the operation (the raw arithmetic alone is
	// ~15-20 pJ at 16 nm; control and clocking dominate).
	pePJ = 110.0
	// sramReadPJ is the fully loaded per-access (16-byte word) read
	// energy averaged over the buffer population; reads mostly hit the
	// megabyte-class buffers (Input Point Buffer, Query Buffer).
	sramReadPJ = 70.0
	// sramWritePJ is lower than the read energy because writes
	// concentrate on the small, banked structures (query stacks, BQBs,
	// node-cache fills) rather than the megabyte buffers.
	sramWritePJ = 17.0
	// dramPJ is the energy of one 64-byte burst of host<->accelerator DMA
	// (LPDDR4-class). Only the per-query result summaries cross the DRAM
	// interface per invocation: the point cloud, the two-stage tree, and
	// the query set are frame-resident in the global buffer and reused
	// across all of a frame's pipeline-stage invocations and ICP
	// iterations, which is how the paper's 0.2% DRAM share arises.
	dramPJ = 1_000.0
	// leakageWatts is the static power of the whole datapath + SRAM.
	leakageWatts = 0.35
)

// Energy is the per-component energy breakdown in joules.
type Energy struct {
	PE        float64
	SRAMRead  float64
	SRAMWrite float64
	Leakage   float64
	DRAM      float64
}

// Total returns the summed energy in joules.
func (e Energy) Total() float64 {
	return e.PE + e.SRAMRead + e.SRAMWrite + e.Leakage + e.DRAM
}

// computeEnergy converts op counts and runtime into the energy breakdown.
func computeEnergy(counts OpCounts, cycles uint64, clockMHz float64) Energy {
	seconds := float64(cycles) / (clockMHz * 1e6)
	return Energy{
		PE:        float64(counts.PEDistanceOps) * pePJ * 1e-12,
		SRAMRead:  float64(counts.SRAMReads) * sramReadPJ * 1e-12,
		SRAMWrite: float64(counts.SRAMWrites) * sramWritePJ * 1e-12,
		Leakage:   leakageWatts * seconds,
		DRAM:      float64(counts.DRAMAccesses) * dramPJ * 1e-12,
	}
}

// cyclesToDuration converts a cycle count at the configured clock into
// wall time.
func cyclesToDuration(cycles uint64, clockMHz float64) time.Duration {
	ns := float64(cycles) / (clockMHz * 1e6) * 1e9
	return time.Duration(ns)
}
