package sim

import (
	"math"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/twostage"
)

// SearchKind is the workload's search type (paper §4.1: point cloud
// registration issues radius searches and NN searches).
type SearchKind int

const (
	// NNSearch finds the nearest neighbor of each query.
	NNSearch SearchKind = iota
	// RadiusSearch finds all points within Radius of each query.
	RadiusSearch
)

// String implements fmt.Stringer.
func (k SearchKind) String() string {
	if k == RadiusSearch {
		return "Radius"
	}
	return "NN"
}

// Workload is a batch of same-kind queries, the unit the accelerator is
// invoked on (one pipeline stage issues one batch).
type Workload struct {
	Kind    SearchKind
	Queries []geom.Vec3
	Radius  float64 // used by RadiusSearch
	// Stage labels the pipeline stage that issued the batch when the
	// workload came from a trace capture (one of the search.Stage*
	// labels; empty for synthesized workloads). It lets co-sim runs
	// weight per-stage contributions the way Fig. 6 does.
	Stage string
}

// segment is one FE burst optionally followed by one BE leaf visit. A
// query's execution is a sequence of segments; the final segment has
// leafID < 0 (the top-tree stack drained without reaching another leaf).
type segment struct {
	fullNodes    int32 // top-tree nodes fully processed (5-stage)
	prunedNodes  int32 // nodes popped and discarded (bypass path)
	leafID       int32 // leaf visited after the burst; -1 = query done
	leaderChecks int32 // leader-distance computations before the scan
	scanned      int32 // points streamed through the PEs in the scan
	resWrites    int32 // result-buffer writes during this segment
	follower     bool  // scan reads the leader's results, not the node set
}

// queryTrace is the full execution trace of one query.
type queryTrace struct {
	segments []segment
}

// stackEntry mirrors a hardware query-stack slot: a child link plus the
// bound distance² computed at the parent's CD stage, used for the pop-time
// prune (bypass) test.
type stackEntry struct {
	child   twostage.Child
	boundD2 float64
}

// traceNN generates traces and functional results for an NN workload.
// Queries are processed in order so leader/follower behavior matches the
// software ApproxSession semantics exactly.
func traceNN(tree *twostage.Tree, queries []geom.Vec3, cfg *Config) ([]queryTrace, []kdtree.Neighbor) {
	pts := tree.Points()
	nodes := tree.Nodes()
	leaves := tree.Leaves()
	type nnLeader struct {
		q   geom.Vec3
		res kdtree.Neighbor
	}
	leaders := make([][]nnLeader, len(leaves))

	traces := make([]queryTrace, len(queries))
	results := make([]kdtree.Neighbor, len(queries))
	var stack []stackEntry
	for qi, q := range queries {
		best := kdtree.Neighbor{Index: -1, Dist2: math.MaxFloat64}
		stack = stack[:0]
		if tree.Root() != twostage.ChildNone {
			stack = append(stack, stackEntry{child: tree.Root()})
		}
		seg := segment{leafID: -1}
		tr := queryTrace{}
		for len(stack) > 0 {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if e.boundD2 >= 0 && e.boundD2 >= best.Dist2 {
				seg.prunedNodes++
				continue
			}
			if e.child.IsLeaf() {
				id := e.child.LeafID()
				set := leaves[id]
				if len(set) == 0 {
					continue
				}
				seg.leafID = int32(id)
				// BE leaf visit: leader check, then follower or precise scan.
				approx := cfg.Approx > 0
				if approx && len(leaders[id]) > 0 {
					seg.leaderChecks = int32(len(leaders[id]))
					closest := -1
					closestD2 := math.MaxFloat64
					for li := range leaders[id] {
						if d2 := q.Dist2(leaders[id][li].q); d2 < closestD2 {
							closestD2 = d2
							closest = li
						}
					}
					if math.Sqrt(closestD2) < cfg.Approx {
						ld := leaders[id][closest]
						seg.follower = true
						if ld.res.Index >= 0 {
							seg.scanned = 1
							if d2 := q.Dist2(pts[ld.res.Index]); d2 < best.Dist2 {
								best = kdtree.Neighbor{Index: ld.res.Index, Dist2: d2}
								seg.resWrites++
							}
						}
						tr.segments = append(tr.segments, seg)
						seg = segment{leafID: -1}
						continue
					}
				}
				seg.scanned = int32(len(set))
				local := kdtree.Neighbor{Index: -1, Dist2: math.MaxFloat64}
				for _, pi := range set {
					d2 := q.Dist2(pts[pi])
					if d2 < local.Dist2 {
						local = kdtree.Neighbor{Index: int(pi), Dist2: d2}
					}
					if d2 < best.Dist2 {
						best = kdtree.Neighbor{Index: int(pi), Dist2: d2}
						seg.resWrites++
					}
				}
				if approx && len(leaders[id]) < cfg.LeaderCap {
					leaders[id] = append(leaders[id], nnLeader{q: q, res: local})
				}
				tr.segments = append(tr.segments, seg)
				seg = segment{leafID: -1}
				continue
			}
			// Internal top-tree node: full five-stage processing.
			n := &nodes[e.child]
			seg.fullNodes++
			if d2 := q.Dist2(pts[n.Point]); d2 < best.Dist2 {
				best = kdtree.Neighbor{Index: int(n.Point), Dist2: d2}
				seg.resWrites++
			}
			diff := q.Component(int(n.Axis)) - n.Split
			near, far := n.Left, n.Right
			if diff > 0 {
				near, far = far, near
			}
			// Push far first so near is processed before the far prune test
			// fires with the tightened bound (paper §5.2: PI pushes both
			// children; whichever is pushed later pops next).
			if far != twostage.ChildNone {
				stack = append(stack, stackEntry{child: far, boundD2: diff * diff})
			}
			if near != twostage.ChildNone {
				stack = append(stack, stackEntry{child: near, boundD2: -1})
			}
		}
		tr.segments = append(tr.segments, seg) // final burst, leafID -1
		traces[qi] = tr
		results[qi] = best
	}
	return traces, results
}

// traceRadius generates traces and functional results for a radius
// workload.
func traceRadius(tree *twostage.Tree, queries []geom.Vec3, radius float64, cfg *Config) ([]queryTrace, [][]kdtree.Neighbor) {
	pts := tree.Points()
	nodes := tree.Nodes()
	leaves := tree.Leaves()
	r2 := radius * radius
	thd := cfg.Approx
	if cfg.ApproxRadiusFrac > 0 {
		thd = cfg.ApproxRadiusFrac * radius
	}
	type radLeader struct {
		q   geom.Vec3
		res []kdtree.Neighbor
	}
	leaders := make([][]radLeader, len(leaves))

	traces := make([]queryTrace, len(queries))
	results := make([][]kdtree.Neighbor, len(queries))
	var stack []stackEntry
	for qi, q := range queries {
		var res []kdtree.Neighbor
		stack = stack[:0]
		if tree.Root() != twostage.ChildNone {
			stack = append(stack, stackEntry{child: tree.Root()})
		}
		seg := segment{leafID: -1}
		tr := queryTrace{}
		for len(stack) > 0 {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if e.boundD2 > r2 {
				seg.prunedNodes++
				continue
			}
			if e.child.IsLeaf() {
				id := e.child.LeafID()
				set := leaves[id]
				if len(set) == 0 {
					continue
				}
				seg.leafID = int32(id)
				approx := cfg.Approx > 0 || cfg.ApproxRadiusFrac > 0
				if approx && len(leaders[id]) > 0 {
					seg.leaderChecks = int32(len(leaders[id]))
					closest := -1
					closestD2 := math.MaxFloat64
					for li := range leaders[id] {
						if d2 := q.Dist2(leaders[id][li].q); d2 < closestD2 {
							closestD2 = d2
							closest = li
						}
					}
					if math.Sqrt(closestD2) < thd {
						ld := leaders[id][closest]
						seg.follower = true
						seg.scanned = int32(len(ld.res))
						for _, nb := range ld.res {
							if d2 := q.Dist2(pts[nb.Index]); d2 <= r2 {
								res = append(res, kdtree.Neighbor{Index: nb.Index, Dist2: d2})
								seg.resWrites++
							}
						}
						tr.segments = append(tr.segments, seg)
						seg = segment{leafID: -1}
						continue
					}
				}
				seg.scanned = int32(len(set))
				var local []kdtree.Neighbor
				for _, pi := range set {
					if d2 := q.Dist2(pts[pi]); d2 <= r2 {
						nb := kdtree.Neighbor{Index: int(pi), Dist2: d2}
						local = append(local, nb)
						res = append(res, nb)
						seg.resWrites++
					}
				}
				if approx && len(leaders[id]) < cfg.LeaderCap {
					leaders[id] = append(leaders[id], radLeader{q: q, res: local})
				}
				tr.segments = append(tr.segments, seg)
				seg = segment{leafID: -1}
				continue
			}
			n := &nodes[e.child]
			seg.fullNodes++
			if d2 := q.Dist2(pts[n.Point]); d2 <= r2 {
				res = append(res, kdtree.Neighbor{Index: int(n.Point), Dist2: d2})
				seg.resWrites++
			}
			diff := q.Component(int(n.Axis)) - n.Split
			near, far := n.Left, n.Right
			if diff > 0 {
				near, far = far, near
			}
			if far != twostage.ChildNone {
				// Radius pruning is inclusive (<= r) to mirror the software
				// search; encode by shrinking the bound epsilon-free: use
				// boundD2 slightly below exact by comparing > r2 at pop.
				stack = append(stack, stackEntry{child: far, boundD2: diff * diff})
			}
			if near != twostage.ChildNone {
				stack = append(stack, stackEntry{child: near, boundD2: -1})
			}
		}
		tr.segments = append(tr.segments, seg)
		traces[qi] = tr
		results[qi] = res
	}
	return traces, results
}
