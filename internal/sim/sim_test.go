package sim

import (
	"math"
	"math/rand"
	"testing"

	"tigris/internal/geom"
	"tigris/internal/twostage"
)

func randPoints(r *rand.Rand, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.Vec3{
			X: r.Float64()*80 - 40,
			Y: r.Float64()*80 - 40,
			Z: r.Float64()*8 - 4,
		}
	}
	return pts
}

// clusteredQueries samples queries near tree points so approximate search
// gets realistic follower rates.
func clusteredQueries(r *rand.Rand, pts []geom.Vec3, n int) []geom.Vec3 {
	qs := make([]geom.Vec3, n)
	for i := range qs {
		base := pts[r.Intn(len(pts))]
		qs[i] = base.Add(geom.Vec3{
			X: r.Float64()*0.6 - 0.3,
			Y: r.Float64()*0.6 - 0.3,
			Z: r.Float64()*0.6 - 0.3,
		})
	}
	return qs
}

func testTree(r *rand.Rand, n, height int) *twostage.Tree {
	return twostage.Build(randPoints(r, n), height)
}

func TestSimNNMatchesSoftware(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tree := testTree(r, 3000, 5)
	queries := clusteredQueries(r, tree.Points(), 300)
	rep, err := Run(tree, Workload{Kind: NNSearch, Queries: queries}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, _ := tree.Nearest(q, nil)
		if math.Abs(rep.NNResults[i].Dist2-want.Dist2) > 1e-12 {
			t.Fatalf("query %d: sim %v, software %v", i, rep.NNResults[i], want)
		}
	}
	if rep.Cycles == 0 || rep.Time <= 0 {
		t.Error("no cycles accounted")
	}
}

func TestSimRadiusMatchesSoftware(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tree := testTree(r, 3000, 6)
	queries := clusteredQueries(r, tree.Points(), 200)
	const radius = 3.0
	rep, err := Run(tree, Workload{Kind: RadiusSearch, Queries: queries, Radius: radius}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want := tree.Radius(q, radius, nil)
		got := rep.RadiusResults[i]
		if len(got) != len(want) {
			t.Fatalf("query %d: sim %d results, software %d", i, len(got), len(want))
		}
		gotSet := make(map[int]bool, len(got))
		for _, nb := range got {
			gotSet[nb.Index] = true
		}
		for _, nb := range want {
			if !gotSet[nb.Index] {
				t.Fatalf("query %d: sim missing %d", i, nb.Index)
			}
		}
	}
}

func TestSimApproxMatchesApproxSession(t *testing.T) {
	// With approximation enabled, the simulator must produce exactly the
	// results of the software ApproxSession processing queries in order.
	r := rand.New(rand.NewSource(3))
	tree := testTree(r, 4000, 5)
	queries := clusteredQueries(r, tree.Points(), 500)

	cfg := DefaultConfig()
	cfg.Approx = 1.2
	rep, err := Run(tree, Workload{Kind: NNSearch, Queries: queries}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := tree.NearestBatchApprox(queries, twostage.ApproxOptions{Threshold: 1.2, MaxLeaders: 16}, nil)
	for i := range queries {
		if rep.NNResults[i].Index != want[i].Index {
			t.Fatalf("query %d: sim %v, session %v", i, rep.NNResults[i], want[i])
		}
	}
}

func TestSimApproxRadiusMatchesSession(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tree := testTree(r, 3000, 5)
	queries := clusteredQueries(r, tree.Points(), 300)
	const radius = 2.5

	cfg := DefaultConfig()
	cfg.Approx = 1 // overridden by ApproxRadiusFrac below
	cfg.ApproxRadiusFrac = 0.4
	rep, err := Run(tree, Workload{Kind: RadiusSearch, Queries: queries, Radius: radius}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := tree.RadiusBatchApprox(queries, radius,
		twostage.ApproxOptions{Threshold: 1, RadiusThresholdFrac: 0.4, MaxLeaders: 16}, nil)
	for i := range queries {
		if len(rep.RadiusResults[i]) != len(want[i]) {
			t.Fatalf("query %d: sim %d results, session %d", i, len(rep.RadiusResults[i]), len(want[i]))
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tree := testTree(r, 2000, 5)
	queries := clusteredQueries(r, tree.Points(), 200)
	w := Workload{Kind: NNSearch, Queries: queries}
	a, err := Run(tree, w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tree, w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Traffic != b.Traffic || a.Counts != b.Counts {
		t.Error("simulation is not deterministic")
	}
}

func TestForwardingAndBypassingReduceCycles(t *testing.T) {
	// Fig. 12: No-Opt < Bypass < +Forward in performance.
	r := rand.New(rand.NewSource(6))
	tree := testTree(r, 4000, 8)
	queries := clusteredQueries(r, tree.Points(), 400)
	w := Workload{Kind: NNSearch, Queries: queries}

	run := func(fwd, byp bool) uint64 {
		cfg := DefaultConfig()
		cfg.Forwarding = fwd
		cfg.Bypassing = byp
		rep, err := Run(tree, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles
	}
	noOpt := run(false, false)
	bypass := run(false, true)
	forward := run(true, true)
	if !(forward <= bypass && bypass <= noOpt) {
		t.Errorf("cycles not monotone: noOpt=%d bypass=%d forward=%d", noOpt, bypass, forward)
	}
	if forward == noOpt {
		t.Error("optimizations had no effect")
	}
}

func TestMQMNFasterButMoreTraffic(t *testing.T) {
	// Fig. 12: MQMN roughly doubles performance but multiplies node-set
	// traffic (→ power).
	r := rand.New(rand.NewSource(7))
	tree := twostage.BuildWithLeafSize(randPoints(r, 8000), 128)
	queries := clusteredQueries(r, tree.Points(), 600)
	w := Workload{Kind: RadiusSearch, Queries: queries, Radius: 2.0}

	mqsnCfg := DefaultConfig()
	mqsn, err := Run(tree, w, mqsnCfg)
	if err != nil {
		t.Fatal(err)
	}
	mqmnCfg := DefaultConfig()
	mqmnCfg.Issue = MQMN
	mqmn, err := Run(tree, w, mqmnCfg)
	if err != nil {
		t.Fatal(err)
	}
	if mqmn.Cycles >= mqsn.Cycles {
		t.Errorf("MQMN (%d cycles) not faster than MQSN (%d)", mqmn.Cycles, mqsn.Cycles)
	}
	mqsnStream := mqsn.Traffic.PointsBuf + mqsn.Traffic.NodeCache
	mqmnStream := mqmn.Traffic.PointsBuf + mqmn.Traffic.NodeCache
	if mqmnStream <= mqsnStream {
		t.Errorf("MQMN stream traffic %d not above MQSN %d", mqmnStream, mqsnStream)
	}
}

func TestNodeCacheReducesPointsBufTraffic(t *testing.T) {
	// Fig. 13: the node cache absorbs a large share of Points Buffer
	// reads.
	r := rand.New(rand.NewSource(8))
	tree := twostage.BuildWithLeafSize(randPoints(r, 8000), 128)
	queries := clusteredQueries(r, tree.Points(), 600)
	w := Workload{Kind: RadiusSearch, Queries: queries, Radius: 2.0}

	withCache := DefaultConfig()
	a, err := Run(tree, w, withCache)
	if err != nil {
		t.Fatal(err)
	}
	noCache := DefaultConfig()
	noCache.NodeCacheSets = 0
	b, err := Run(tree, w, noCache)
	if err != nil {
		t.Fatal(err)
	}
	if a.Traffic.PointsBuf >= b.Traffic.PointsBuf {
		t.Errorf("cache did not reduce PointsBuf traffic: %d vs %d", a.Traffic.PointsBuf, b.Traffic.PointsBuf)
	}
	if a.Traffic.NodeCache == 0 {
		t.Error("node cache saw no traffic")
	}
}

// surfacePoints samples a jittered plane patch: LiDAR clouds are 2D
// manifolds embedded in 3D, which is the density regime where the
// leader/follower trade (scan a leader's result list instead of the whole
// leaf set) actually wins — with volumetric density the result list grows
// as fast as the leaf does.
func surfacePoints(r *rand.Rand, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.Vec3{
			X: r.Float64()*30 - 15,
			Y: r.Float64()*30 - 15,
			Z: r.NormFloat64() * 0.05,
		}
	}
	return pts
}

func TestApproxReducesCyclesAndOps(t *testing.T) {
	// §6.3: approximate search cuts node visits substantially (the paper
	// reports 72.8%), and on the BE-heavy radius workloads (Fig. 6b) that
	// translates into real cycle savings. Queries are the cloud points
	// themselves, as in the Normal Estimation stage.
	r := rand.New(rand.NewSource(9))
	tree := twostage.BuildWithLeafSize(surfacePoints(r, 12000), 128)
	queries := tree.Points()
	w := Workload{Kind: RadiusSearch, Queries: queries, Radius: 1.0}

	exact, err := Run(tree, w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	approxCfg := DefaultConfig()
	approxCfg.Approx = 1 // superseded by the radius fraction
	approxCfg.ApproxRadiusFrac = 0.4
	approx, err := Run(tree, w, approxCfg)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Counts.PEDistanceOps >= exact.Counts.PEDistanceOps {
		t.Errorf("approx ops %d not below exact %d", approx.Counts.PEDistanceOps, exact.Counts.PEDistanceOps)
	}
	if approx.Cycles >= exact.Cycles {
		t.Errorf("approx cycles %d not below exact %d", approx.Cycles, exact.Cycles)
	}
}

func TestUtilizationBounds(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	tree := twostage.BuildWithLeafSize(randPoints(r, 5000), 128)
	queries := clusteredQueries(r, tree.Points(), 500)
	rep, err := Run(tree, Workload{Kind: NNSearch, Queries: queries}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RUUtilization < 0 || rep.RUUtilization > 1 {
		t.Errorf("RU utilization %v out of bounds", rep.RUUtilization)
	}
	if rep.SUUtilization < 0 || rep.SUUtilization > 1 {
		t.Errorf("SU utilization %v out of bounds", rep.SUUtilization)
	}
}

func TestEnergyPositiveAndPowerSane(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tree := twostage.BuildWithLeafSize(randPoints(r, 5000), 128)
	queries := clusteredQueries(r, tree.Points(), 500)
	rep, err := Run(tree, Workload{Kind: RadiusSearch, Queries: queries, Radius: 2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := rep.Energy
	if e.PE <= 0 || e.SRAMRead <= 0 || e.SRAMWrite <= 0 || e.Leakage <= 0 || e.DRAM <= 0 {
		t.Errorf("energy components must be positive: %+v", e)
	}
	if rep.PowerWatts <= 0 || rep.PowerWatts > 500 {
		t.Errorf("power %v W implausible", rep.PowerWatts)
	}
}

func TestMoreRUsHelpTallTrees(t *testing.T) {
	// Fig. 14: with few RUs the FE bottlenecks tall top-trees.
	r := rand.New(rand.NewSource(12))
	tree := testTree(r, 8000, 12)
	queries := clusteredQueries(r, tree.Points(), 2000)
	w := Workload{Kind: NNSearch, Queries: queries}

	small := DefaultConfig()
	small.NumRU = 4
	a, err := Run(tree, w, small)
	if err != nil {
		t.Fatal(err)
	}
	big := DefaultConfig()
	big.NumRU = 64
	b, err := Run(tree, w, big)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cycles >= a.Cycles {
		t.Errorf("64 RUs (%d cycles) not faster than 4 RUs (%d)", b.Cycles, a.Cycles)
	}
}

func TestTopTreeHeightTradeoff(t *testing.T) {
	// Fig. 15: very short top-trees are slow (huge redundant leaf scans);
	// performance improves with height before flattening out.
	r := rand.New(rand.NewSource(13))
	pts := randPoints(r, 16000)
	queries := clusteredQueries(r, pts, 800)
	w := Workload{Kind: NNSearch, Queries: queries}

	cycles := func(h int) uint64 {
		tree := twostage.Build(pts, h)
		rep, err := Run(tree, w, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles
	}
	short := cycles(2)
	mid := cycles(7)
	if mid >= short {
		t.Errorf("height 7 (%d cycles) not faster than height 2 (%d)", mid, short)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Config{}
	if _, err := Run(nil, Workload{Kind: NNSearch, Queries: []geom.Vec3{{}}}, bad); err == nil {
		t.Error("invalid config accepted")
	}
	cfg := DefaultConfig()
	r := rand.New(rand.NewSource(14))
	tree := testTree(r, 100, 3)
	if _, err := Run(tree, Workload{Kind: RadiusSearch, Queries: []geom.Vec3{{}}}, cfg); err == nil {
		t.Error("radius workload without radius accepted")
	}
	rep, err := Run(tree, Workload{Kind: NNSearch}, cfg)
	if err != nil || rep.Cycles != 0 {
		t.Error("empty workload should be a no-op")
	}
}

func TestAreaModelMatchesPaper(t *testing.T) {
	// §6.2: SRAM ≈ 8.38 mm², logic ≈ 7.19 mm², 53.8%/46.2% split.
	cfg0 := DefaultConfig()
	area := cfg0.EstimateArea()
	if math.Abs(area.SRAMmm2-8.38) > 0.6 {
		t.Errorf("SRAM area %.2f mm², paper 8.38", area.SRAMmm2)
	}
	if math.Abs(area.LogicMm2-7.19) > 0.6 {
		t.Errorf("logic area %.2f mm², paper 7.19", area.LogicMm2)
	}
	frac := area.SRAMmm2 / area.Total()
	if math.Abs(frac-0.538) > 0.05 {
		t.Errorf("SRAM fraction %.3f, paper 0.538", frac)
	}
	// Area grows with more PEs.
	big := DefaultConfig()
	big.PEsPerSU = 128
	if big.EstimateArea().LogicMm2 <= area.LogicMm2 {
		t.Error("logic area did not grow with PE count")
	}
}

func TestFifoCache(t *testing.T) {
	c := fifoCache{cap: 2}
	if c.lookup(1) {
		t.Error("empty cache hit")
	}
	c.insert(1)
	c.insert(2)
	if !c.lookup(1) || !c.lookup(2) {
		t.Error("cache should hold both entries")
	}
	c.insert(3) // evicts 1
	if c.lookup(1) {
		t.Error("FIFO eviction failed")
	}
	if !c.lookup(2) || !c.lookup(3) {
		t.Error("wrong entry evicted")
	}
}

func TestRuBurstCycles(t *testing.T) {
	cfg := &Config{Forwarding: false, Bypassing: false}
	if got := ruBurstCycles(10, 5, cfg); got != 10*4+5*4+2 {
		t.Errorf("no-opt burst = %d", got)
	}
	cfg = &Config{Bypassing: true}
	if got := ruBurstCycles(10, 5, cfg); got != 10*4+5*2+2 {
		t.Errorf("bypass burst = %d", got)
	}
	cfg = &Config{Forwarding: true, Bypassing: true}
	if got := ruBurstCycles(10, 5, cfg); got != 10+5+2 {
		t.Errorf("forward burst = %d", got)
	}
}

func BenchmarkSimNN(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tree := twostage.BuildWithLeafSize(randPoints(r, 20000), 128)
	queries := clusteredQueries(r, tree.Points(), 5000)
	w := Workload{Kind: NNSearch, Queries: queries}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tree, w, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimPreparedSweep(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	tree := twostage.BuildWithLeafSize(randPoints(r, 20000), 128)
	queries := clusteredQueries(r, tree.Points(), 5000)
	p, err := Prepare(tree, Workload{Kind: NNSearch, Queries: queries}, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.NumRU = 16 << (i % 3)
		if _, err := p.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAllQueriesComplete(t *testing.T) {
	// Scheduling must never drop a query: every trace's final segment has
	// to execute, across tree shapes and issue policies.
	r := rand.New(rand.NewSource(30))
	for _, leaf := range []int{1, 16, 128} {
		tree := twostage.BuildWithLeafSize(randPoints(r, 5000), leaf)
		queries := clusteredQueries(r, tree.Points(), 1200)
		for _, issue := range []IssuePolicy{MQSN, MQMN} {
			cfg := DefaultConfig()
			cfg.Issue = issue
			traces, _ := traceRadius(tree, queries, 1.5, &cfg)
			eng := newEngine(&cfg, traces, max(len(tree.Leaves()), 1))
			eng.run()
			if eng.completed != len(queries) {
				t.Fatalf("leaf=%d issue=%v: %d of %d queries completed", leaf, issue, eng.completed, len(queries))
			}
		}
	}
}
