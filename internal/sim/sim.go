package sim

import (
	"fmt"
	"time"

	"tigris/internal/kdtree"
	"tigris/internal/twostage"
)

// Report is the outcome of one accelerator run.
type Report struct {
	// Cycles is the makespan in datapath cycles.
	Cycles uint64
	// Time is the makespan at the configured clock.
	Time time.Duration
	// Energy is the per-component energy breakdown.
	Energy Energy
	// PowerWatts is Energy.Total() / Time.
	PowerWatts float64
	// Traffic is the per-buffer access breakdown (Fig. 13).
	Traffic Traffic
	// Counts are the raw compute/memory event tallies.
	Counts OpCounts
	// RUUtilization / SUUtilization are busy-cycle fractions of the
	// respective unit pools.
	RUUtilization, SUUtilization float64

	// NNResults holds per-query nearest neighbors for NN workloads
	// (functional output, bit-identical to the software search).
	NNResults []kdtree.Neighbor
	// RadiusResults holds per-query neighbor lists for radius workloads.
	RadiusResults [][]kdtree.Neighbor
	// Queries is the workload size.
	Queries int
}

// Prepared is a traced workload ready for repeated timing runs. The trace
// (which nodes each query visits, which leaves it scans, the functional
// results) depends only on the tree, the workload, and the approximation
// settings — not on the unit counts or pipeline options — so parameter
// sweeps like Fig. 14 prepare once and simulate many configurations.
type Prepared struct {
	tree          *twostage.Tree
	w             Workload
	traces        []queryTrace
	nnResults     []kdtree.Neighbor
	radiusResults [][]kdtree.Neighbor
	approx        float64
	approxFrac    float64
	leaderCap     int
}

// Prepare traces the workload under cfg's approximation settings.
func Prepare(tree *twostage.Tree, w Workload, cfg Config) (*Prepared, error) {
	cfg.defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w.Kind == RadiusSearch && w.Radius <= 0 && len(w.Queries) > 0 {
		return nil, fmt.Errorf("sim: radius workload needs a positive radius, got %v", w.Radius)
	}
	p := &Prepared{
		tree:       tree,
		w:          w,
		approx:     cfg.Approx,
		approxFrac: cfg.ApproxRadiusFrac,
		leaderCap:  cfg.LeaderCap,
	}
	if len(w.Queries) == 0 {
		return p, nil
	}
	switch w.Kind {
	case RadiusSearch:
		p.traces, p.radiusResults = traceRadius(tree, w.Queries, w.Radius, &cfg)
	default:
		p.traces, p.nnResults = traceNN(tree, w.Queries, &cfg)
	}
	return p, nil
}

// Run executes the workload on the modeled accelerator over the given
// two-stage tree. It returns both performance/energy numbers and the
// functional search results.
func Run(tree *twostage.Tree, w Workload, cfg Config) (*Report, error) {
	p, err := Prepare(tree, w, cfg)
	if err != nil {
		return nil, err
	}
	return p.Simulate(cfg)
}

// Simulate times the prepared workload under cfg. The approximation
// settings and leader cap must match the ones used at Prepare time (they
// shape the trace); mismatches are rejected.
func (p *Prepared) Simulate(cfg Config) (*Report, error) {
	cfg.defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Approx != p.approx || cfg.ApproxRadiusFrac != p.approxFrac || cfg.LeaderCap != p.leaderCap {
		return nil, fmt.Errorf("sim: approximation settings differ from Prepare time")
	}
	if len(p.w.Queries) == 0 {
		return &Report{}, nil
	}
	rep := &Report{
		Queries:       len(p.w.Queries),
		NNResults:     p.nnResults,
		RadiusResults: p.radiusResults,
	}
	w := p.w
	tree := p.tree
	traces := p.traces

	numLeaves := len(tree.Leaves())
	if numLeaves == 0 {
		numLeaves = 1
	}
	eng := newEngine(&cfg, traces, numLeaves)

	// DRAM: per-query compressed result summaries stream back to the host
	// (4 bytes each, 64-byte bursts). The cloud, the tree, and the query
	// set are frame-resident in the global buffers and reused across all
	// of a frame's stage invocations and ICP iterations (see energy.go).
	eng.counts.DRAMAccesses += (int64(len(w.Queries))*4 + 63) / 64

	cycles := eng.run()

	rep.Cycles = cycles
	rep.Time = cyclesToDuration(cycles, cfg.ClockMHz)
	rep.Energy = computeEnergy(eng.counts, cycles, cfg.ClockMHz)
	if rep.Time > 0 {
		rep.PowerWatts = rep.Energy.Total() / rep.Time.Seconds()
	}
	rep.Traffic = eng.traffic
	rep.Counts = eng.counts
	if cycles > 0 {
		rep.RUUtilization = float64(eng.ruBusyCycles) / float64(cycles*uint64(cfg.NumRU))
		rep.SUUtilization = float64(eng.suBusyCycles) / float64(cycles*uint64(cfg.NumSU*cfg.PEsPerSU))
	}
	return rep, nil
}
