package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecApprox(a, b Vec3, tol float64) bool {
	return approx(a.X, b.X, tol) && approx(a.Y, b.Y, tol) && approx(a.Z, b.Z, tol)
}

// randVec returns a bounded random vector suitable for quick checks where
// unbounded float64s would overflow intermediate products.
func randVec(r *rand.Rand) Vec3 {
	return Vec3{r.Float64()*20 - 10, r.Float64()*20 - 10, r.Float64()*20 - 10}
}

func TestVecAddSubRoundTrip(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		got := a.Add(b).Sub(b)
		return vecApprox(got, a, 1e-6*(1+a.Norm()+b.Norm()))
	}
	cfg := &quick.Config{MaxCount: 200, Values: boundedVecPair}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// boundedVecPair generates six bounded float64s for the two-vector checks.
func boundedVecPair(vals []reflect.Value, r *rand.Rand) {
	for i := range vals {
		vals[i] = reflect.ValueOf(r.Float64()*200 - 100)
	}
}

func TestDotCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		c := a.Cross(b)
		scale := 1 + a.Norm()*b.Norm()
		return approx(c.Dot(a), 0, 1e-6*scale) && approx(c.Dot(b), 0, 1e-6*scale)
	}
	cfg := &quick.Config{MaxCount: 200, Values: boundedVecPair}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCrossAnticommutative(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if !vecApprox(a.Cross(b), b.Cross(a).Neg(), eps) {
		t.Errorf("a×b != -(b×a): %v vs %v", a.Cross(b), b.Cross(a).Neg())
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		d := a.Dist(b)
		return approx(d*d, a.Dist2(b), 1e-6*(1+d*d))
	}
	cfg := &quick.Config{MaxCount: 200, Values: boundedVecPair}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec3{3, 4, 0}
	n := v.Normalize()
	if !approx(n.Norm(), 1, eps) {
		t.Errorf("normalized norm = %v, want 1", n.Norm())
	}
	if !vecApprox(n, Vec3{0.6, 0.8, 0}, eps) {
		t.Errorf("normalize = %v", n)
	}
	zero := Vec3{}
	if got := zero.Normalize(); got != zero {
		t.Errorf("zero normalize = %v, want zero", got)
	}
}

func TestComponentAccessors(t *testing.T) {
	v := Vec3{1, 2, 3}
	for axis, want := range []float64{1, 2, 3} {
		if got := v.Component(axis); got != want {
			t.Errorf("Component(%d) = %v, want %v", axis, got, want)
		}
	}
	w := v.WithComponent(1, 9)
	if w.Y != 9 || w.X != 1 || w.Z != 3 {
		t.Errorf("WithComponent = %v", w)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if !vecApprox(a.Lerp(b, 0), a, eps) || !vecApprox(a.Lerp(b, 1), b, eps) {
		t.Error("lerp endpoints mismatch")
	}
	mid := a.Lerp(b, 0.5)
	if !vecApprox(mid, Vec3{2.5, -1.5, 4.5}, eps) {
		t.Errorf("lerp midpoint = %v", mid)
	}
}

func TestOrthoBasis(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		v := randVec(r)
		if v.Norm() < 1e-6 {
			continue
		}
		u, w := v.OrthoBasis()
		n := v.Normalize()
		if !approx(u.Norm(), 1, 1e-9) || !approx(w.Norm(), 1, 1e-9) {
			t.Fatalf("basis vectors not unit: |u|=%v |w|=%v", u.Norm(), w.Norm())
		}
		if !approx(u.Dot(n), 0, 1e-9) || !approx(w.Dot(n), 0, 1e-9) || !approx(u.Dot(w), 0, 1e-9) {
			t.Fatalf("basis not orthogonal for v=%v", v)
		}
		// Right-handedness: u × w should align with -n or n consistently.
		h := n.Cross(u)
		if !vecApprox(h, w, 1e-9) {
			t.Fatalf("basis not right-handed: n×u=%v, w=%v", h, w)
		}
	}
}

func TestAngleBetween(t *testing.T) {
	if got := (Vec3{1, 0, 0}).AngleBetween(Vec3{0, 1, 0}); !approx(got, math.Pi/2, eps) {
		t.Errorf("angle = %v, want π/2", got)
	}
	if got := (Vec3{1, 1, 0}).AngleBetween(Vec3{2, 2, 0}); !approx(got, 0, 1e-6) {
		t.Errorf("angle = %v, want 0", got)
	}
	if got := (Vec3{1, 0, 0}).AngleBetween(Vec3{-3, 0, 0}); !approx(got, math.Pi, eps) {
		t.Errorf("angle = %v, want π", got)
	}
}

func TestAabbExtendContains(t *testing.T) {
	b := EmptyAabb()
	if !b.IsEmpty() {
		t.Fatal("fresh box should be empty")
	}
	pts := []Vec3{{1, 2, 3}, {-1, 5, 0}, {0, 0, 10}}
	for _, p := range pts {
		b.Extend(p)
	}
	if b.IsEmpty() {
		t.Fatal("extended box should not be empty")
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	if b.Contains(Vec3{100, 0, 0}) {
		t.Error("box should not contain far point")
	}
	if got, want := b.Min, (Vec3{-1, 0, 0}); !vecApprox(got, want, eps) {
		t.Errorf("Min = %v, want %v", got, want)
	}
	if got, want := b.Max, (Vec3{1, 5, 10}); !vecApprox(got, want, eps) {
		t.Errorf("Max = %v, want %v", got, want)
	}
}

func TestAabbDist2(t *testing.T) {
	b := Aabb{Min: Vec3{0, 0, 0}, Max: Vec3{1, 1, 1}}
	cases := []struct {
		p    Vec3
		want float64
	}{
		{Vec3{0.5, 0.5, 0.5}, 0},        // inside
		{Vec3{2, 0.5, 0.5}, 1},          // 1 unit past +X face
		{Vec3{-1, -1, 0.5}, 2},          // corner-ish distance
		{Vec3{2, 2, 2}, 3},              // corner distance sqrt(3)²
		{Vec3{0.5, 0.5, -0.25}, 0.0625}, // 0.25² below the -Z face
	}
	for _, c := range cases {
		if got := b.Dist2(c.p); !approx(got, c.want, eps) {
			t.Errorf("Dist2(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestAabbDist2IsLowerBound(t *testing.T) {
	// Property: for any point q and any point p inside the box,
	// Dist2(q, box) <= Dist2(q, p). This is exactly the soundness condition
	// KD-tree pruning relies on.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		b := EmptyAabb()
		for j := 0; j < 5; j++ {
			b.Extend(randVec(r))
		}
		q := randVec(r).Scale(3)
		inside := Vec3{
			b.Min.X + r.Float64()*(b.Max.X-b.Min.X),
			b.Min.Y + r.Float64()*(b.Max.Y-b.Min.Y),
			b.Min.Z + r.Float64()*(b.Max.Z-b.Min.Z),
		}
		if b.Dist2(q) > q.Dist2(inside)+eps {
			t.Fatalf("box dist %v exceeds dist to inside point %v", b.Dist2(q), q.Dist2(inside))
		}
	}
}

func TestAabbCenterSize(t *testing.T) {
	b := Aabb{Min: Vec3{-1, 0, 2}, Max: Vec3{3, 4, 6}}
	if !vecApprox(b.Center(), Vec3{1, 2, 4}, eps) {
		t.Errorf("Center = %v", b.Center())
	}
	if !vecApprox(b.Size(), Vec3{4, 4, 4}, eps) {
		t.Errorf("Size = %v", b.Size())
	}
}
