package geom

import (
	"fmt"
	"math"
)

// Transform is a rigid-body transform: the rotation R and translation T of
// the paper's Eq. 1. Applying it to a point X yields X' = R·X + T, which is
// the action of the homogeneous matrix [R T; 0 1].
type Transform struct {
	R Mat3
	T Vec3
}

// IdentityTransform returns the identity rigid transform.
func IdentityTransform() Transform {
	return Transform{R: Identity3()}
}

// Apply transforms a point: R·p + T.
func (t Transform) Apply(p Vec3) Vec3 {
	return t.R.MulVec(p).Add(t.T)
}

// ApplyDirection rotates a direction vector without translating it, as is
// appropriate for surface normals.
func (t Transform) ApplyDirection(d Vec3) Vec3 {
	return t.R.MulVec(d)
}

// Compose returns the transform equivalent to applying u first and then t:
// (t∘u)(p) = t(u(p)).
func (t Transform) Compose(u Transform) Transform {
	return Transform{
		R: t.R.Mul(u.R),
		T: t.R.MulVec(u.T).Add(t.T),
	}
}

// Inverse returns the transform that undoes t. For rigid transforms
// R⁻¹ = Rᵀ, so the inverse is (Rᵀ, -Rᵀ·T).
func (t Transform) Inverse() Transform {
	rt := t.R.Transpose()
	return Transform{R: rt, T: rt.MulVec(t.T).Neg()}
}

// Mat4 returns the homogeneous 4×4 matrix form [R T; 0 1] (paper Eq. 1).
func (t Transform) Mat4() Mat4 {
	return Mat4{
		t.R[0], t.R[1], t.R[2], t.T.X,
		t.R[3], t.R[4], t.R[5], t.T.Y,
		t.R[6], t.R[7], t.R[8], t.T.Z,
		0, 0, 0, 1,
	}
}

// TransformFromMat4 extracts the rigid transform from a homogeneous matrix.
// The bottom row is assumed to be [0 0 0 1]; no re-orthonormalization is
// performed.
func TransformFromMat4(m Mat4) Transform {
	return Transform{
		R: Mat3{m[0], m[1], m[2], m[4], m[5], m[6], m[8], m[9], m[10]},
		T: Vec3{m[3], m[7], m[11]},
	}
}

// RotationAngle returns the magnitude of the rotation in radians.
func (t Transform) RotationAngle() float64 { return t.R.RotationAngle() }

// TranslationNorm returns the length of the translation component.
func (t Transform) TranslationNorm() float64 { return t.T.Norm() }

// NearlyEqual reports whether two transforms agree within tol on every
// rotation entry and translation component.
func (t Transform) NearlyEqual(u Transform, tol float64) bool {
	for i := range t.R {
		if math.Abs(t.R[i]-u.R[i]) > tol {
			return false
		}
	}
	return math.Abs(t.T.X-u.T.X) <= tol &&
		math.Abs(t.T.Y-u.T.Y) <= tol &&
		math.Abs(t.T.Z-u.T.Z) <= tol
}

// String implements fmt.Stringer.
func (t Transform) String() string {
	return fmt.Sprintf("Transform{R: %v, T: %v}", t.R, t.T)
}

// Quat is a unit quaternion (w + xi + yj + zk) used for smooth trajectory
// interpolation in the synthetic LiDAR simulator and as a compact rotation
// parameterization.
type Quat struct {
	W, X, Y, Z float64
}

// IdentityQuat returns the identity rotation quaternion.
func IdentityQuat() Quat { return Quat{W: 1} }

// QuatFromAxisAngle returns the quaternion rotating by angle a (radians)
// about unit axis u.
func QuatFromAxisAngle(u Vec3, a float64) Quat {
	u = u.Normalize()
	s := math.Sin(a / 2)
	return Quat{W: math.Cos(a / 2), X: u.X * s, Y: u.Y * s, Z: u.Z * s}
}

// QuatFromMat3 converts a rotation matrix to a unit quaternion using
// Shepperd's method (branch on the largest diagonal term for stability).
func QuatFromMat3(m Mat3) Quat {
	tr := m.Trace()
	var q Quat
	switch {
	case tr > 0:
		s := math.Sqrt(tr+1) * 2
		q = Quat{
			W: s / 4,
			X: (m.At(2, 1) - m.At(1, 2)) / s,
			Y: (m.At(0, 2) - m.At(2, 0)) / s,
			Z: (m.At(1, 0) - m.At(0, 1)) / s,
		}
	case m.At(0, 0) > m.At(1, 1) && m.At(0, 0) > m.At(2, 2):
		s := math.Sqrt(1+m.At(0, 0)-m.At(1, 1)-m.At(2, 2)) * 2
		q = Quat{
			W: (m.At(2, 1) - m.At(1, 2)) / s,
			X: s / 4,
			Y: (m.At(0, 1) + m.At(1, 0)) / s,
			Z: (m.At(0, 2) + m.At(2, 0)) / s,
		}
	case m.At(1, 1) > m.At(2, 2):
		s := math.Sqrt(1+m.At(1, 1)-m.At(0, 0)-m.At(2, 2)) * 2
		q = Quat{
			W: (m.At(0, 2) - m.At(2, 0)) / s,
			X: (m.At(0, 1) + m.At(1, 0)) / s,
			Y: s / 4,
			Z: (m.At(1, 2) + m.At(2, 1)) / s,
		}
	default:
		s := math.Sqrt(1+m.At(2, 2)-m.At(0, 0)-m.At(1, 1)) * 2
		q = Quat{
			W: (m.At(1, 0) - m.At(0, 1)) / s,
			X: (m.At(0, 2) + m.At(2, 0)) / s,
			Y: (m.At(1, 2) + m.At(2, 1)) / s,
			Z: s / 4,
		}
	}
	return q.Normalize()
}

// Mat3 converts the quaternion to a rotation matrix.
func (q Quat) Mat3() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
}

// Mul returns the Hamilton product q·r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conjugate returns the quaternion conjugate, the inverse for unit
// quaternions.
func (q Quat) Conjugate() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns the unit quaternion with the same direction. The zero
// quaternion normalizes to the identity.
func (q Quat) Normalize() Quat {
	n := q.Norm()
	if n == 0 {
		return IdentityQuat()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Slerp spherically interpolates from q to r by fraction t ∈ [0,1].
func (q Quat) Slerp(r Quat, t float64) Quat {
	q = q.Normalize()
	r = r.Normalize()
	dot := q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z
	// Take the short arc.
	if dot < 0 {
		r = Quat{-r.W, -r.X, -r.Y, -r.Z}
		dot = -dot
	}
	if dot > 0.9995 {
		// Nearly parallel: fall back to normalized linear interpolation.
		return Quat{
			W: q.W + t*(r.W-q.W),
			X: q.X + t*(r.X-q.X),
			Y: q.Y + t*(r.Y-q.Y),
			Z: q.Z + t*(r.Z-q.Z),
		}.Normalize()
	}
	theta := math.Acos(clamp(dot, -1, 1))
	sinTheta := math.Sin(theta)
	a := math.Sin((1-t)*theta) / sinTheta
	b := math.Sin(t*theta) / sinTheta
	return Quat{
		W: a*q.W + b*r.W,
		X: a*q.X + b*r.X,
		Y: a*q.Y + b*r.Y,
		Z: a*q.Z + b*r.Z,
	}.Normalize()
}

// Rotate applies the quaternion rotation to a vector.
func (q Quat) Rotate(v Vec3) Vec3 {
	p := Quat{0, v.X, v.Y, v.Z}
	out := q.Mul(p).Mul(q.Conjugate())
	return Vec3{out.X, out.Y, out.Z}
}
