package geom

import (
	"fmt"
	"math"
)

// Mat3 is a 3×3 matrix in row-major order. It represents rotations and the
// covariance matrices used by normal estimation and Harris key-point
// detection.
type Mat3 [9]float64

// Identity3 returns the 3×3 identity matrix.
func Identity3() Mat3 {
	return Mat3{
		1, 0, 0,
		0, 1, 0,
		0, 0, 1,
	}
}

// At returns the element at row r, column c.
func (m Mat3) At(r, c int) float64 { return m[3*r+c] }

// Set assigns the element at row r, column c.
func (m *Mat3) Set(r, c int, v float64) { m[3*r+c] = v }

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += m.At(r, k) * n.At(k, c)
			}
			out.Set(r, c, s)
		}
	}
	return out
}

// MulVec returns m·v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	return Mat3{
		m[0], m[3], m[6],
		m[1], m[4], m[7],
		m[2], m[5], m[8],
	}
}

// Add returns m + n element-wise.
func (m Mat3) Add(n Mat3) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = m[i] + n[i]
	}
	return out
}

// Scale returns s·m element-wise.
func (m Mat3) Scale(s float64) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = s * m[i]
	}
	return out
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Trace returns the sum of the diagonal elements.
func (m Mat3) Trace() float64 { return m[0] + m[4] + m[8] }

// OuterProduct returns v·wᵀ, the building block of covariance accumulation.
func OuterProduct(v, w Vec3) Mat3 {
	return Mat3{
		v.X * w.X, v.X * w.Y, v.X * w.Z,
		v.Y * w.X, v.Y * w.Y, v.Y * w.Z,
		v.Z * w.X, v.Z * w.Y, v.Z * w.Z,
	}
}

// IsRotation reports whether m is a proper rotation matrix within tol:
// orthonormal (mᵀm = I) with determinant +1.
func (m Mat3) IsRotation(tol float64) bool {
	mtm := m.Transpose().Mul(m)
	id := Identity3()
	for i := range mtm {
		if math.Abs(mtm[i]-id[i]) > tol {
			return false
		}
	}
	return math.Abs(m.Det()-1) <= tol
}

// RotationAngle returns the rotation angle in radians encoded by a rotation
// matrix, via trace(R) = 1 + 2cosθ. Used by the KITTI rotational error
// metric (paper §6.1, degrees/meter).
func (m Mat3) RotationAngle() float64 {
	c := (m.Trace() - 1) / 2
	return math.Acos(clamp(c, -1, 1))
}

// RotX returns the rotation by angle a (radians) about the X axis.
func RotX(a float64) Mat3 {
	s, c := math.Sin(a), math.Cos(a)
	return Mat3{
		1, 0, 0,
		0, c, -s,
		0, s, c,
	}
}

// RotY returns the rotation by angle a (radians) about the Y axis.
func RotY(a float64) Mat3 {
	s, c := math.Sin(a), math.Cos(a)
	return Mat3{
		c, 0, s,
		0, 1, 0,
		-s, 0, c,
	}
}

// RotZ returns the rotation by angle a (radians) about the Z axis.
func RotZ(a float64) Mat3 {
	s, c := math.Sin(a), math.Cos(a)
	return Mat3{
		c, -s, 0,
		s, c, 0,
		0, 0, 1,
	}
}

// ExpRotation is the SO(3) exponential map: the rotation matrix of the
// rotation vector w (axis = w normalized, angle = |w|), via Rodrigues'
// formula. The zero vector maps to the identity. Together with
// LogRotation it is the parameterization the pose-graph optimizer
// perturbs rotations in.
func ExpRotation(w Vec3) Mat3 {
	a := w.Norm()
	if a < 1e-12 {
		// First-order expansion keeps Exp smooth through zero (and exact
		// enough for the optimizer's numeric-difference steps).
		return Mat3{
			1, -w.Z, w.Y,
			w.Z, 1, -w.X,
			-w.Y, w.X, 1,
		}
	}
	return AxisAngle(w.Scale(1/a), a)
}

// LogRotation is the SO(3) logarithm: the rotation vector of m (the
// inverse of ExpRotation). Angles at or near π are recovered through the
// matrix diagonal so the axis stays numerically stable where sin(angle)
// vanishes.
func LogRotation(m Mat3) Vec3 {
	angle := m.RotationAngle()
	skew := Vec3{
		X: (m.At(2, 1) - m.At(1, 2)) / 2,
		Y: (m.At(0, 2) - m.At(2, 0)) / 2,
		Z: (m.At(1, 0) - m.At(0, 1)) / 2,
	}
	if angle < 1e-12 {
		// Small angle: the skew part IS the rotation vector to first order.
		return skew
	}
	// The generic branch scales the skew part by angle/sin(angle), whose
	// relative error grows like ε/(π−angle)² (acos's conditioning near
	// −1 amplified through sin), so hand angles within 1e-4 of π to the
	// diagonal recovery below, which stays accurate all the way to π.
	if math.Pi-angle > 1e-4 {
		return skew.Scale(angle / math.Sin(angle))
	}
	// Near π the skew part degenerates; recover the axis from the
	// diagonal of R + I, whose entries give |u_i|.
	axis := Vec3{
		X: math.Sqrt(math.Max(0, (m.At(0, 0)+1)/2)),
		Y: math.Sqrt(math.Max(0, (m.At(1, 1)+1)/2)),
		Z: math.Sqrt(math.Max(0, (m.At(2, 2)+1)/2)),
	}
	// Fix relative signs from the off-diagonal sums, anchored on the
	// largest component.
	switch {
	case axis.X >= axis.Y && axis.X >= axis.Z:
		if m.At(0, 1)+m.At(1, 0) < 0 {
			axis.Y = -axis.Y
		}
		if m.At(0, 2)+m.At(2, 0) < 0 {
			axis.Z = -axis.Z
		}
	case axis.Y >= axis.Z:
		if m.At(0, 1)+m.At(1, 0) < 0 {
			axis.X = -axis.X
		}
		if m.At(1, 2)+m.At(2, 1) < 0 {
			axis.Z = -axis.Z
		}
	default:
		if m.At(0, 2)+m.At(2, 0) < 0 {
			axis.X = -axis.X
		}
		if m.At(1, 2)+m.At(2, 1) < 0 {
			axis.Y = -axis.Y
		}
	}
	// The diagonal fixes the axis only up to global sign. Short of
	// exactly π the skew part, however tiny, still points along the true
	// axis — align with it so the log map stays continuous across the
	// branch (at exactly π the sign is genuinely a free choice).
	if skew.Dot(axis) < 0 {
		axis = axis.Neg()
	}
	return axis.Normalize().Scale(angle)
}

// AxisAngle returns the rotation of angle a (radians) about unit axis u
// (Rodrigues' formula).
func AxisAngle(u Vec3, a float64) Mat3 {
	u = u.Normalize()
	s, c := math.Sin(a), math.Cos(a)
	omc := 1 - c
	return Mat3{
		c + u.X*u.X*omc, u.X*u.Y*omc - u.Z*s, u.X*u.Z*omc + u.Y*s,
		u.Y*u.X*omc + u.Z*s, c + u.Y*u.Y*omc, u.Y*u.Z*omc - u.X*s,
		u.Z*u.X*omc - u.Y*s, u.Z*u.Y*omc + u.X*s, c + u.Z*u.Z*omc,
	}
}

// String implements fmt.Stringer.
func (m Mat3) String() string {
	return fmt.Sprintf("[%.4g %.4g %.4g; %.4g %.4g %.4g; %.4g %.4g %.4g]",
		m[0], m[1], m[2], m[3], m[4], m[5], m[6], m[7], m[8])
}

// Mat4 is a 4×4 homogeneous matrix in row-major order. The registration
// pipeline's output (Eq. 1 in the paper) is a Mat4 combining rotation and
// translation.
type Mat4 [16]float64

// Identity4 returns the 4×4 identity matrix.
func Identity4() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// At returns the element at row r, column c.
func (m Mat4) At(r, c int) float64 { return m[4*r+c] }

// Set assigns the element at row r, column c.
func (m *Mat4) Set(r, c int, v float64) { m[4*r+c] = v }

// Mul returns the matrix product m·n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += m.At(r, k) * n.At(k, c)
			}
			out.Set(r, c, s)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (m Mat4) String() string {
	return fmt.Sprintf("[%.4g %.4g %.4g %.4g; %.4g %.4g %.4g %.4g; %.4g %.4g %.4g %.4g; %.4g %.4g %.4g %.4g]",
		m[0], m[1], m[2], m[3], m[4], m[5], m[6], m[7],
		m[8], m[9], m[10], m[11], m[12], m[13], m[14], m[15])
}
