package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randTransform(r *rand.Rand) Transform {
	return Transform{R: randRotation(r), T: randVec(r)}
}

func TestTransformInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		tr := randTransform(r)
		inv := tr.Inverse()
		p := randVec(r)
		if got := inv.Apply(tr.Apply(p)); !vecApprox(got, p, 1e-8) {
			t.Fatalf("inverse round trip: %v -> %v", p, got)
		}
		if !tr.Compose(inv).NearlyEqual(IdentityTransform(), 1e-9) {
			t.Fatal("t∘t⁻¹ != identity")
		}
		if !inv.Compose(tr).NearlyEqual(IdentityTransform(), 1e-9) {
			t.Fatal("t⁻¹∘t != identity")
		}
	}
}

func TestTransformComposeOrder(t *testing.T) {
	// Compose(u) applies u first: (t∘u)(p) = t(u(p)).
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		t1 := randTransform(r)
		t2 := randTransform(r)
		p := randVec(r)
		lhs := t1.Compose(t2).Apply(p)
		rhs := t1.Apply(t2.Apply(p))
		if !vecApprox(lhs, rhs, 1e-8) {
			t.Fatalf("compose order mismatch: %v vs %v", lhs, rhs)
		}
	}
}

func TestTransformMat4RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		tr := randTransform(r)
		back := TransformFromMat4(tr.Mat4())
		if !tr.NearlyEqual(back, 1e-12) {
			t.Fatalf("Mat4 round trip changed transform")
		}
	}
}

func TestApplyDirectionIgnoresTranslation(t *testing.T) {
	tr := Transform{R: RotZ(math.Pi / 4), T: Vec3{100, 200, 300}}
	d := Vec3{1, 0, 0}
	got := tr.ApplyDirection(d)
	want := RotZ(math.Pi / 4).MulVec(d)
	if !vecApprox(got, want, eps) {
		t.Errorf("ApplyDirection = %v, want %v", got, want)
	}
}

func TestRigidTransformPreservesDistances(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		tr := randTransform(r)
		a := randVec(r)
		b := randVec(r)
		if !approx(tr.Apply(a).Dist(tr.Apply(b)), a.Dist(b), 1e-8) {
			t.Fatal("rigid transform changed a pairwise distance")
		}
	}
}

func TestQuatMat3RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 300; i++ {
		rot := randRotation(r)
		back := QuatFromMat3(rot).Mat3()
		if !mat3Approx(rot, back, 1e-9) {
			t.Fatalf("quat round trip failed:\n%v\n%v", rot, back)
		}
	}
}

func TestQuatRotateMatchesMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 200; i++ {
		axis := randVec(r)
		if axis.Norm() < 1e-9 {
			continue
		}
		angle := r.Float64() * 2 * math.Pi
		q := QuatFromAxisAngle(axis, angle)
		m := AxisAngle(axis, angle)
		v := randVec(r)
		if !vecApprox(q.Rotate(v), m.MulVec(v), 1e-8) {
			t.Fatalf("quat rotate != matrix rotate")
		}
	}
}

func TestQuatMulComposition(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for i := 0; i < 100; i++ {
		q1 := QuatFromMat3(randRotation(r))
		q2 := QuatFromMat3(randRotation(r))
		lhs := q1.Mul(q2).Mat3()
		rhs := q1.Mat3().Mul(q2.Mat3())
		if !mat3Approx(lhs, rhs, 1e-9) {
			t.Fatal("quaternion product does not match matrix product")
		}
	}
}

func TestSlerpEndpoints(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		q1 := QuatFromMat3(randRotation(r))
		q2 := QuatFromMat3(randRotation(r))
		if !mat3Approx(q1.Slerp(q2, 0).Mat3(), q1.Mat3(), 1e-8) {
			t.Fatal("slerp(0) != q1")
		}
		if !mat3Approx(q1.Slerp(q2, 1).Mat3(), q2.Mat3(), 1e-8) {
			t.Fatal("slerp(1) != q2")
		}
	}
}

func TestSlerpStaysUnit(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	for i := 0; i < 100; i++ {
		q1 := QuatFromMat3(randRotation(r))
		q2 := QuatFromMat3(randRotation(r))
		for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			if n := q1.Slerp(q2, frac).Norm(); !approx(n, 1, 1e-9) {
				t.Fatalf("slerp norm = %v", n)
			}
		}
	}
}

func TestSlerpHalfwaySymmetric(t *testing.T) {
	// Interpolating halfway between identity and a rotation by θ about an
	// axis should give the rotation by θ/2.
	axis := Vec3{0, 0, 1}
	q1 := IdentityQuat()
	q2 := QuatFromAxisAngle(axis, math.Pi/2)
	mid := q1.Slerp(q2, 0.5)
	want := QuatFromAxisAngle(axis, math.Pi/4)
	if !mat3Approx(mid.Mat3(), want.Mat3(), 1e-9) {
		t.Errorf("slerp midpoint mismatch: %v vs %v", mid, want)
	}
}

func TestTransformRotationAngleAndNorm(t *testing.T) {
	tr := Transform{R: RotY(0.3), T: Vec3{3, 4, 0}}
	if !approx(tr.RotationAngle(), 0.3, 1e-9) {
		t.Errorf("RotationAngle = %v", tr.RotationAngle())
	}
	if !approx(tr.TranslationNorm(), 5, 1e-9) {
		t.Errorf("TranslationNorm = %v", tr.TranslationNorm())
	}
}
