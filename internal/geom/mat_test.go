package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randRotation(r *rand.Rand) Mat3 {
	axis := randVec(r)
	if axis.Norm() < 1e-9 {
		axis = Vec3{0, 0, 1}
	}
	return AxisAngle(axis, r.Float64()*2*math.Pi)
}

func mat3Approx(a, b Mat3, tol float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestMat3Identity(t *testing.T) {
	id := Identity3()
	m := Mat3{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !mat3Approx(id.Mul(m), m, eps) || !mat3Approx(m.Mul(id), m, eps) {
		t.Error("identity multiplication changed matrix")
	}
}

func TestMat3MulAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		var a, b, c Mat3
		for j := range a {
			a[j] = r.Float64()*2 - 1
			b[j] = r.Float64()*2 - 1
			c[j] = r.Float64()*2 - 1
		}
		if !mat3Approx(a.Mul(b).Mul(c), a.Mul(b.Mul(c)), 1e-9) {
			t.Fatal("matrix multiplication not associative")
		}
	}
}

func TestMat3MulVecDistributes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		m := randRotation(r)
		n := randRotation(r)
		v := randVec(r)
		lhs := m.Mul(n).MulVec(v)
		rhs := m.MulVec(n.MulVec(v))
		if !vecApprox(lhs, rhs, 1e-9) {
			t.Fatalf("(MN)v != M(Nv): %v vs %v", lhs, rhs)
		}
	}
}

func TestMat3TransposeInvolution(t *testing.T) {
	m := Mat3{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if m.Transpose().Transpose() != m {
		t.Error("double transpose changed matrix")
	}
	if m.Transpose().At(0, 1) != m.At(1, 0) {
		t.Error("transpose element mismatch")
	}
}

func TestRotationProperties(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		rot := randRotation(r)
		if !rot.IsRotation(1e-9) {
			t.Fatalf("AxisAngle produced non-rotation: det=%v", rot.Det())
		}
		// Rotations preserve lengths and dot products.
		a := randVec(r)
		b := randVec(r)
		if !approx(rot.MulVec(a).Norm(), a.Norm(), 1e-9*(1+a.Norm())) {
			t.Fatal("rotation changed vector length")
		}
		if !approx(rot.MulVec(a).Dot(rot.MulVec(b)), a.Dot(b), 1e-7*(1+a.Norm()*b.Norm())) {
			t.Fatal("rotation changed dot product")
		}
	}
}

func TestRotationAngleRecovery(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		angle := r.Float64() * math.Pi // RotationAngle returns [0, π]
		axis := randVec(r)
		if axis.Norm() < 1e-9 {
			continue
		}
		rot := AxisAngle(axis, angle)
		if got := rot.RotationAngle(); !approx(got, angle, 1e-6) {
			t.Fatalf("RotationAngle = %v, want %v", got, angle)
		}
	}
}

func TestAxisRotations(t *testing.T) {
	// RotZ(90°) maps +X to +Y.
	got := RotZ(math.Pi / 2).MulVec(Vec3{1, 0, 0})
	if !vecApprox(got, Vec3{0, 1, 0}, 1e-12) {
		t.Errorf("RotZ(π/2)·x = %v, want +Y", got)
	}
	// RotX(90°) maps +Y to +Z.
	got = RotX(math.Pi / 2).MulVec(Vec3{0, 1, 0})
	if !vecApprox(got, Vec3{0, 0, 1}, 1e-12) {
		t.Errorf("RotX(π/2)·y = %v, want +Z", got)
	}
	// RotY(90°) maps +Z to +X.
	got = RotY(math.Pi / 2).MulVec(Vec3{0, 0, 1})
	if !vecApprox(got, Vec3{1, 0, 0}, 1e-12) {
		t.Errorf("RotY(π/2)·z = %v, want +X", got)
	}
}

func TestDetOfRotationIsOne(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if d := randRotation(r).Det(); !approx(d, 1, 1e-9) {
			t.Fatalf("rotation det = %v", d)
		}
	}
}

func TestOuterProduct(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	op := OuterProduct(v, w)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := v.Component(r) * w.Component(c)
			if got := op.At(r, c); !approx(got, want, eps) {
				t.Errorf("outer(%d,%d) = %v, want %v", r, c, got, want)
			}
		}
	}
	if !approx(op.Trace(), v.Dot(w), eps) {
		t.Error("trace of outer product should equal dot product")
	}
}

func TestMat4Mul(t *testing.T) {
	id := Identity4()
	var m Mat4
	for i := range m {
		m[i] = float64(i)
	}
	if id.Mul(m) != m || m.Mul(id) != m {
		t.Error("Mat4 identity multiplication changed matrix")
	}
}

func TestMat4MatchesTransformCompose(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		t1 := Transform{R: randRotation(r), T: randVec(r)}
		t2 := Transform{R: randRotation(r), T: randVec(r)}
		viaTransforms := t1.Compose(t2).Mat4()
		viaMatrices := t1.Mat4().Mul(t2.Mat4())
		for j := range viaTransforms {
			if !approx(viaTransforms[j], viaMatrices[j], 1e-9) {
				t.Fatalf("Mat4 compose mismatch at %d: %v vs %v", j, viaTransforms[j], viaMatrices[j])
			}
		}
	}
}

func TestExpLogRotationRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Random rotations, including angles all the way up to (near) π where
	// the log map switches to its diagonal branch.
	for i := 0; i < 200; i++ {
		m := randRotation(r)
		w := LogRotation(m)
		back := ExpRotation(w)
		for j := range m {
			if !approx(m[j], back[j], 1e-8) {
				t.Fatalf("roundtrip mismatch at %d: angle %.4f\n m=%v\n b=%v", j, w.Norm(), m, back)
			}
		}
	}
	// Targeted angles: zero, tiny, and within a hair of π about every axis.
	axes := []Vec3{{X: 1}, {Y: 1}, {Z: 1}, Vec3{X: 1, Y: -2, Z: 0.5}.Normalize()}
	for _, u := range axes {
		for _, a := range []float64{0, 1e-9, 1e-4, 1.0, 3.0, math.Pi - 1e-9, math.Pi} {
			m := AxisAngle(u, a)
			back := ExpRotation(LogRotation(m))
			for j := range m {
				if !approx(m[j], back[j], 1e-6) {
					t.Fatalf("axis %v angle %v: roundtrip mismatch at %d", u, a, j)
				}
			}
		}
	}
	if ExpRotation(Vec3{}) != Identity3() {
		t.Fatal("Exp(0) != I")
	}
}

// TestLogRotationNearPiSign pins the global-sign recovery of the log
// map's near-π branch: short of exactly π the tiny skew part still
// carries the axis sign, so the roundtrip must be exact (not just
// within the loose branch tolerance) and continuous across the branch
// switch.
func TestLogRotationNearPiSign(t *testing.T) {
	axes := []Vec3{
		Vec3{X: -1, Y: 0.2, Z: 0.1}.Normalize(),
		Vec3{X: 0.3, Y: -1, Z: -0.4}.Normalize(),
		Vec3{X: -0.2, Y: -0.3, Z: 1}.Normalize(),
	}
	for _, u := range axes {
		for _, a := range []float64{math.Pi - 5e-7, math.Pi - 2e-6, math.Pi - 1e-5, math.Pi - 9e-5, math.Pi - 2e-4, math.Pi - 1e-8} {
			m := AxisAngle(u, a)
			w := LogRotation(m)
			if w.Dot(u) < 0 {
				t.Fatalf("axis %v angle %v: log axis flipped: %v", u, a, w)
			}
			back := ExpRotation(w)
			// Both branches keep the roundtrip far below the ~1e-5 error
			// the sin branch used to produce this close to π; the
			// diagonal branch's own floor is ~(π−angle)²/4.
			for j := range m {
				if !approx(m[j], back[j], 1e-7) {
					t.Fatalf("axis %v angle %v: roundtrip error %g at %d", u, a, m[j]-back[j], j)
				}
			}
		}
	}
}
