// Package geom provides the 3D geometric primitives used throughout Tigris:
// vectors, 3×3 and 4×4 matrices, quaternions, and rigid-body transforms.
//
// Point cloud registration (paper §2.2) estimates a 4×4 homogeneous
// transformation matrix M = [R t; 0 1] with a 3×3 rotation R and a 3×1
// translation t; this package supplies those types and the operations the
// pipeline needs (composition, inversion, application to points, and
// rotation-angle extraction for the KITTI error metrics).
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3D Cartesian space.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w. KD-tree
// search compares squared distances to avoid square roots on the hot path.
func (v Vec3) Dist2(w Vec3) float64 {
	dx, dy, dz := v.X-w.X, v.Y-w.Y, v.Z-w.Z
	return dx*dx + dy*dy + dz*dz
}

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged so callers need not special-case degenerate inputs.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Component returns the axis-indexed coordinate: 0→X, 1→Y, 2→Z.
// KD-tree construction cycles through split axes by index.
func (v Vec3) Component(axis int) float64 {
	switch axis {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// WithComponent returns a copy of v with the axis-indexed coordinate set.
func (v Vec3) WithComponent(axis int, val float64) Vec3 {
	switch axis {
	case 0:
		v.X = val
	case 1:
		v.Y = val
	default:
		v.Z = val
	}
	return v
}

// Quantize32 rounds each component through float32 and back, producing
// the exact value an SoA float32 slab (internal/cloud.Slab) would store
// and dequantize. Search structures quantize their points on ingest, so
// oracles and golden tests snap their inputs with this to stay
// bit-identical with the trees.
func (v Vec3) Quantize32() Vec3 {
	return Vec3{
		X: float64(float32(v.X)),
		Y: float64(float32(v.Y)),
		Z: float64(float32(v.Z)),
	}
}

// Lerp linearly interpolates between v and w: (1-t)·v + t·w.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return v.Scale(1 - t).Add(w.Scale(t))
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.4g, %.4g, %.4g)", v.X, v.Y, v.Z)
}

// AngleBetween returns the angle in radians between v and w, in [0, π].
func (v Vec3) AngleBetween(w Vec3) float64 {
	d := v.Normalize().Dot(w.Normalize())
	return math.Acos(clamp(d, -1, 1))
}

// OrthoBasis returns two unit vectors u, t such that {v̂, u, t} form a
// right-handed orthonormal basis. Used by the descriptor calculations to
// build local reference frames (SHOT, 3DSC).
func (v Vec3) OrthoBasis() (Vec3, Vec3) {
	n := v.Normalize()
	// Pick the axis least aligned with n to avoid degeneracy.
	ref := Vec3{1, 0, 0}
	if math.Abs(n.X) > math.Abs(n.Y) {
		ref = Vec3{0, 1, 0}
	}
	u := n.Cross(ref).Normalize()
	t := n.Cross(u)
	return u, t
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Aabb is an axis-aligned bounding box. Each non-leaf KD-tree node
// corresponds to one (paper §4.1); pruning tests a query hypersphere
// against it.
type Aabb struct {
	Min, Max Vec3
}

// EmptyAabb returns an inverted box that Extend can grow from.
func EmptyAabb() Aabb {
	inf := math.Inf(1)
	return Aabb{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Extend grows the box to contain p.
func (b *Aabb) Extend(p Vec3) {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Min.Z = math.Min(b.Min.Z, p.Z)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
	b.Max.Z = math.Max(b.Max.Z, p.Z)
}

// Contains reports whether p lies inside the closed box.
func (b Aabb) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Dist2 returns the squared distance from p to the box (0 if inside).
// This is the pruning test from paper §4.1: a sub-tree can be skipped when
// its bounding box lies entirely outside the query's current hypersphere,
// i.e. when Dist2(query) > currentNearestDist².
func (b Aabb) Dist2(p Vec3) float64 {
	var d2 float64
	for axis := 0; axis < 3; axis++ {
		v := p.Component(axis)
		lo := b.Min.Component(axis)
		hi := b.Max.Component(axis)
		if v < lo {
			d := lo - v
			d2 += d * d
		} else if v > hi {
			d := v - hi
			d2 += d * d
		}
	}
	return d2
}

// Center returns the box center.
func (b Aabb) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box extent along each axis.
func (b Aabb) Size() Vec3 { return b.Max.Sub(b.Min) }

// IsEmpty reports whether the box contains no volume (inverted or never
// extended).
func (b Aabb) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}
