package twostage

import (
	"math"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
)

// ApproxOptions configures the leader/follower approximate search
// (Algorithm 1 of the paper).
type ApproxOptions struct {
	// Threshold is the discriminator thd: a query whose distance to its
	// closest leader exceeds it becomes a leader itself. Zero or negative
	// disables approximation (every query takes the precise path).
	//
	// The paper's empirical settings (§6.3): 1.2 m for NN search, and 40%
	// of the search radius for radius search.
	Threshold float64
	// RadiusThresholdFrac, when positive, overrides Threshold for radius
	// searches with frac × r (the paper's 40%-of-radius rule). Zero keeps
	// the absolute Threshold for both search kinds.
	RadiusThresholdFrac float64
	// MaxLeaders caps the per-leaf leader group. The accelerator's Leader
	// Buffer holds 16 entries (§5.3); capping "improves accuracy because
	// more queries will be searched exactly". Zero selects 16.
	MaxLeaders int
}

func (o *ApproxOptions) defaults() {
	if o.MaxLeaders == 0 {
		o.MaxLeaders = 16
	}
}

// DefaultNNThreshold is the paper's empirically chosen NN discriminator.
const DefaultNNThreshold = 1.2

// DefaultRadiusThresholdFrac is the paper's radius-search discriminator as
// a fraction of the search radius.
const DefaultRadiusThresholdFrac = 0.4

// nnLeader caches one leader query and its best match within one leaf.
type nnLeader struct {
	q   geom.Vec3
	res kdtree.Neighbor // leaf-local nearest (Index < 0 if leaf was empty)
}

// radLeader caches one leader query and its leaf-local radius result.
type radLeader struct {
	q   geom.Vec3
	res []kdtree.Neighbor
}

// NearestBatchApprox answers NN queries as a batch with the approximate
// leader/follower algorithm. Results are positionally aligned with
// queries; a result with Index < 0 means the tree was empty.
func (t *Tree) NearestBatchApprox(queries []geom.Vec3, opts ApproxOptions, stats *Stats) []kdtree.Neighbor {
	opts.defaults()
	leaders := make([][]nnLeader, len(t.leaves))
	out := make([]kdtree.Neighbor, len(queries))
	for qi, q := range queries {
		if stats != nil {
			stats.Queries++
		}
		best := kdtree.Neighbor{Index: -1, Dist2: math.MaxFloat64}
		t.nearestApprox(t.root, q, &best, leaders, opts, stats)
		out[qi] = best
	}
	return out
}

// nearestApprox mirrors nearestChild but applies Algorithm 1 at leaves.
func (t *Tree) nearestApprox(c Child, q geom.Vec3, best *kdtree.Neighbor, leaders [][]nnLeader, opts ApproxOptions, stats *Stats) {
	switch {
	case c == ChildNone:
		return
	case c.IsLeaf():
		id := c.LeafID()
		set := t.leaves[id]
		if len(set) == 0 {
			return
		}
		if opts.Threshold > 0 && len(leaders[id]) > 0 {
			// Find the closest leader for q (paper: getMinDist).
			closest := -1
			closestD2 := math.MaxFloat64
			for li := range leaders[id] {
				if stats != nil {
					stats.LeaderChecks++
				}
				if d2 := q.Dist2(leaders[id][li].q); d2 < closestD2 {
					closestD2 = d2
					closest = li
				}
			}
			if math.Sqrt(closestD2) < opts.Threshold {
				// Approximate path: search in the leader's results.
				if stats != nil {
					stats.FollowerHits++
				}
				ld := leaders[id][closest]
				if ld.res.Index >= 0 {
					if stats != nil {
						stats.LeafPointsViewed++
					}
					if d2 := t.dist2(q, int32(ld.res.Index)); d2 < best.Dist2 {
						*best = kdtree.Neighbor{Index: ld.res.Index, Dist2: d2}
					}
				}
				return
			}
		}
		// Precise path: exhaustive scan of the leaf set.
		if stats != nil {
			stats.LeafPointsViewed += int64(len(set))
		}
		local := kdtree.Neighbor{Index: -1, Dist2: math.MaxFloat64}
		for _, pi := range set {
			d2 := t.dist2(q, pi)
			if d2 < local.Dist2 {
				local = kdtree.Neighbor{Index: int(pi), Dist2: d2}
			}
			if d2 < best.Dist2 {
				*best = kdtree.Neighbor{Index: int(pi), Dist2: d2}
			}
		}
		if opts.Threshold > 0 && len(leaders[id]) < opts.MaxLeaders {
			leaders[id] = append(leaders[id], nnLeader{q: q, res: local})
			if stats != nil {
				stats.LeaderInserts++
			}
		}
	default:
		n := &t.nodes[c]
		if stats != nil {
			stats.TopNodesVisited++
		}
		if d2 := t.dist2(q, n.Point); d2 < best.Dist2 {
			*best = kdtree.Neighbor{Index: int(n.Point), Dist2: d2}
		}
		diff := q.Component(int(n.Axis)) - n.Split
		near, far := n.Left, n.Right
		if diff > 0 {
			near, far = far, near
		}
		t.nearestApprox(near, q, best, leaders, opts, stats)
		if far != ChildNone {
			if diff*diff < best.Dist2 {
				t.nearestApprox(far, q, best, leaders, opts, stats)
			} else if stats != nil {
				stats.TopNodesPruned++
			}
		}
	}
}

// RadiusBatchApprox answers radius queries as a batch with the approximate
// leader/follower algorithm. Results are positionally aligned with queries
// and sorted by ascending distance.
func (t *Tree) RadiusBatchApprox(queries []geom.Vec3, r float64, opts ApproxOptions, stats *Stats) [][]kdtree.Neighbor {
	opts.defaults()
	if opts.RadiusThresholdFrac > 0 {
		opts.Threshold = opts.RadiusThresholdFrac * r
	}
	leaders := make([][]radLeader, len(t.leaves))
	out := make([][]kdtree.Neighbor, len(queries))
	r2 := r * r
	for qi, q := range queries {
		if stats != nil {
			stats.Queries++
		}
		var res []kdtree.Neighbor
		t.radiusApprox(t.root, q, r2, &res, leaders, opts, stats)
		sortNeighbors(res)
		out[qi] = res
	}
	return out
}

func (t *Tree) radiusApprox(c Child, q geom.Vec3, r2 float64, res *[]kdtree.Neighbor, leaders [][]radLeader, opts ApproxOptions, stats *Stats) {
	switch {
	case c == ChildNone:
		return
	case c.IsLeaf():
		id := c.LeafID()
		set := t.leaves[id]
		if len(set) == 0 {
			return
		}
		if opts.Threshold > 0 && len(leaders[id]) > 0 {
			closest := -1
			closestD2 := math.MaxFloat64
			for li := range leaders[id] {
				if stats != nil {
					stats.LeaderChecks++
				}
				if d2 := q.Dist2(leaders[id][li].q); d2 < closestD2 {
					closestD2 = d2
					closest = li
				}
			}
			if math.Sqrt(closestD2) < opts.Threshold {
				if stats != nil {
					stats.FollowerHits++
				}
				// Approximate path: re-filter the leader's result set with
				// this query's center.
				ld := leaders[id][closest]
				if stats != nil {
					stats.LeafPointsViewed += int64(len(ld.res))
				}
				for _, nb := range ld.res {
					if d2 := t.dist2(q, int32(nb.Index)); d2 <= r2 {
						*res = append(*res, kdtree.Neighbor{Index: nb.Index, Dist2: d2})
					}
				}
				return
			}
		}
		// Precise path.
		if stats != nil {
			stats.LeafPointsViewed += int64(len(set))
		}
		var local []kdtree.Neighbor
		for _, pi := range set {
			if d2 := t.dist2(q, pi); d2 <= r2 {
				nb := kdtree.Neighbor{Index: int(pi), Dist2: d2}
				local = append(local, nb)
				*res = append(*res, nb)
			}
		}
		if opts.Threshold > 0 && len(leaders[id]) < opts.MaxLeaders {
			leaders[id] = append(leaders[id], radLeader{q: q, res: local})
			if stats != nil {
				stats.LeaderInserts++
			}
		}
	default:
		n := &t.nodes[c]
		if stats != nil {
			stats.TopNodesVisited++
		}
		if d2 := t.dist2(q, n.Point); d2 <= r2 {
			*res = append(*res, kdtree.Neighbor{Index: int(n.Point), Dist2: d2})
		}
		diff := q.Component(int(n.Axis)) - n.Split
		near, far := n.Left, n.Right
		if diff > 0 {
			near, far = far, near
		}
		t.radiusApprox(near, q, r2, res, leaders, opts, stats)
		if far != ChildNone {
			if diff*diff <= r2 {
				t.radiusApprox(far, q, r2, res, leaders, opts, stats)
			} else if stats != nil {
				stats.TopNodesPruned++
			}
		}
	}
}
