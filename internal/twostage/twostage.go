// Package twostage implements the paper's two-stage KD-tree (§4.1) and the
// approximate leader/follower search algorithm built on it (§4.3,
// Algorithm 1).
//
// The two-stage tree splits a canonical KD-tree at height htop: the top
// half ("top-tree") is identical to the first htop levels of the classic
// tree, but each top-tree leaf organizes all remaining descendant points
// as an *unordered set* that is searched exhaustively. This trades
// redundant distance computations for parallelism: the unordered sets have
// no intra-set dependencies (node-level parallelism), and separate queries
// proceed independently (query-level parallelism), which is exactly what
// the internal/sim accelerator exploits.
//
// The approximate algorithm observes that queries arriving at the same
// leaf are spatially close, so their results are similar. Queries arriving
// at a leaf are split into leaders (searched exhaustively, results cached)
// and followers (searched only against the closest leader's result set).
// A distance discriminator thd decides the split, and the leader set per
// leaf is capped (16 in the accelerator's Leader Buffer, §5.3).
package twostage

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/kdtree"
)

// Child encodes a top-tree child link: an internal node index (>= 0), an
// empty slot (ChildNone), or a leaf-set reference (use LeafID to decode).
type Child int32

// ChildNone marks an absent child.
const ChildNone Child = -1

// leafBase offsets leaf encodings so they never collide with node indices.
const leafBase Child = -2

// IsLeaf reports whether the child link points at a leaf set.
func (c Child) IsLeaf() bool { return c <= leafBase }

// IsNode reports whether the child link points at an internal node.
func (c Child) IsNode() bool { return c >= 0 }

// LeafID returns the leaf-set index encoded in a leaf child link.
func (c Child) LeafID() int { return int(leafBase - c) }

// encodeLeaf builds the child link for leaf set id.
func encodeLeaf(id int) Child { return leafBase - Child(id) }

// Node is one top-tree node. It stores a point (like the canonical tree)
// and a splitting plane. Exported so the accelerator simulator can walk
// the exact structure the hardware would hold in its Input Point Buffer.
type Node struct {
	Point       int32 // index into the point slice
	Left, Right Child
	Axis        int8
	Split       float64
}

// Tree is a two-stage KD-tree over an SoA float32 point slab. Like the
// canonical tree, coordinates are quantized to float32 on ingest and all
// distance arithmetic runs in float64 on the dequantized values, so the
// unordered leaf-set scans stream two-thirds fewer bytes than the AoS
// layout while results stay a deterministic function of slab and query.
type Tree struct {
	slab       *cloud.Slab
	xs, ys, zs []float32
	nodes      []Node
	leaves     [][]int32
	root       Child
	height     int
}

// dist2 is the scan kernel: squared float64 distance from q to point i,
// streamed from the per-axis slabs.
func (t *Tree) dist2(q geom.Vec3, i int32) float64 {
	dx := q.X - float64(t.xs[i])
	dy := q.Y - float64(t.ys[i])
	dz := q.Z - float64(t.zs[i])
	return dx*dx + dy*dy + dz*dz
}

// Build constructs a two-stage tree with the given top-tree height. Height
// 0 degenerates to a single unordered set (pure brute force, paper §4.1);
// larger heights approach the canonical tree.
//
// Construction parallelizes like the canonical tree's: median splits only
// depend on the subset size, so every subtree's node-slot and leaf-slot
// ranges in the preorder layout are computed up front (subtreeSize) and
// sibling subtrees build concurrently into disjoint ranges to a bounded
// spawn depth. The resulting tree is bit-identical to a sequential build.
// Build quantizes pts into a fresh slab; BuildSlab builds zero-copy over
// an existing one.
func Build(pts []geom.Vec3, topHeight int) *Tree {
	return BuildSlab(cloud.SlabFromPoints(pts), topHeight)
}

// BuildSlab constructs a two-stage tree directly over an SoA slab
// without copying the coordinates. The slab must not be mutated
// afterwards.
func BuildSlab(s *cloud.Slab, topHeight int) *Tree {
	if topHeight < 0 {
		topHeight = 0
	}
	t := &Tree{slab: s, xs: s.Xs, ys: s.Ys, zs: s.Zs, height: topHeight, root: ChildNone}
	if s.Len() == 0 {
		return t
	}
	sizes := make(map[sizeKey][2]int32)
	nNodes, nLeaves := subtreeSize(s.Len(), topHeight, sizes)
	if nNodes > 0 {
		t.nodes = make([]Node, nNodes)
	}
	if nLeaves > 0 {
		t.leaves = make([][]int32, nLeaves)
	}
	idx := make([]int32, s.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	if topHeight == 0 {
		t.root = encodeLeaf(0)
	} else {
		t.root = Child(0)
	}
	t.buildAt(idx, 0, 0, 0, sizes, buildSpawnDepth())
	return t
}

// sizeKey memoizes subtreeSize on (points, remaining height).
type sizeKey struct{ n, h int }

// subtreeSize returns the top-tree node count and leaf-set count of the
// subtree over n points with h top-tree levels remaining. Median splits
// depend only on the subset size, so the recursion is exact; memo keeps
// it cheap (each level contributes only a handful of distinct sizes).
// The memo is filled before the parallel build phase and read-only after.
func subtreeSize(n, h int, memo map[sizeKey][2]int32) (nodes, leaves int32) {
	if n == 0 {
		return 0, 0
	}
	if h == 0 {
		return 0, 1
	}
	k := sizeKey{n, h}
	if v, ok := memo[k]; ok {
		return v[0], v[1]
	}
	mid := n / 2
	ln, ll := subtreeSize(mid, h-1, memo)
	rn, rl := subtreeSize(n-mid-1, h-1, memo)
	nodes, leaves = 1+ln+rn, ll+rl
	memo[k] = [2]int32{nodes, leaves}
	return nodes, leaves
}

// buildSpawnMin / buildSpawnDepth mirror the canonical tree's bounded
// construction fan-out.
const buildSpawnMin = 4096

func buildSpawnDepth() int {
	w := runtime.NumCPU()
	d := 0
	for 1<<d < w {
		d++
	}
	return d + 1
}

// buildAt constructs the subtree over idx (non-empty) at depth, writing
// the top-tree nodes into the preorder slot range starting at nodeAt and
// the leaf sets into consecutive slots starting at leafAt.
func (t *Tree) buildAt(idx []int32, depth int, nodeAt, leafAt int32, sizes map[sizeKey][2]int32, spawn int) {
	if depth >= t.height {
		set := make([]int32, len(idx))
		copy(set, idx)
		t.leaves[leafAt] = set
		return
	}
	axis := widestAxis(t.xs, t.ys, t.zs, idx)
	ax := axisSlice(t.xs, t.ys, t.zs, axis)
	sort.Slice(idx, func(a, b int) bool {
		pa := ax[idx[a]]
		pb := ax[idx[b]]
		if pa != pb {
			return pa < pb
		}
		return idx[a] < idx[b]
	})
	mid := len(idx) / 2
	nd := Node{
		Point: idx[mid],
		Axis:  int8(axis),
		Split: float64(ax[idx[mid]]),
		Left:  ChildNone,
		Right: ChildNone,
	}
	rem := t.height - depth - 1 // top levels remaining below this node
	leftN, leftL := subtreeSize(mid, rem, sizes)
	if mid > 0 {
		if rem == 0 {
			nd.Left = encodeLeaf(int(leafAt))
		} else {
			nd.Left = Child(nodeAt + 1)
		}
	}
	if len(idx)-mid-1 > 0 {
		if rem == 0 {
			nd.Right = encodeLeaf(int(leafAt + leftL))
		} else {
			nd.Right = Child(nodeAt + 1 + leftN)
		}
	}
	t.nodes[nodeAt] = nd
	left, right := idx[:mid], idx[mid+1:]
	if spawn > 0 && len(idx) >= buildSpawnMin && nd.Left != ChildNone && nd.Right != ChildNone {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.buildAt(left, depth+1, nodeAt+1, leafAt, sizes, spawn-1)
		}()
		t.buildAt(right, depth+1, nodeAt+1+leftN, leafAt+leftL, sizes, spawn-1)
		wg.Wait()
		return
	}
	if nd.Left != ChildNone {
		t.buildAt(left, depth+1, nodeAt+1, leafAt, sizes, spawn)
	}
	if nd.Right != ChildNone {
		t.buildAt(right, depth+1, nodeAt+1+leftN, leafAt+leftL, sizes, spawn)
	}
}

// BuildWithLeafSize constructs a two-stage tree whose leaf sets hold
// roughly targetLeafSize points, the x-axis parameter of Fig. 6. The
// corresponding top height is ceil(log2(n / targetLeafSize)).
func BuildWithLeafSize(pts []geom.Vec3, targetLeafSize int) *Tree {
	return BuildWithLeafSizeSlab(cloud.SlabFromPoints(pts), targetLeafSize)
}

// BuildWithLeafSizeSlab is BuildWithLeafSize building zero-copy over an
// existing SoA slab.
func BuildWithLeafSizeSlab(s *cloud.Slab, targetLeafSize int) *Tree {
	if targetLeafSize < 1 {
		targetLeafSize = 1
	}
	n := s.Len()
	h := 0
	for size := n; size > targetLeafSize; size = (size - 1) / 2 {
		h++
	}
	return BuildSlab(s, h)
}

// axisSlice selects the per-axis coordinate slab.
func axisSlice(xs, ys, zs []float32, axis int) []float32 {
	switch axis {
	case 0:
		return xs
	case 1:
		return ys
	default:
		return zs
	}
}

// widestAxis mirrors the canonical tree's split-axis policy so that the
// top-tree is "exactly the same as the first htop levels of the classic
// KD-tree" (paper §4.1), scanning each axis slab independently.
func widestAxis(xs, ys, zs []float32, idx []int32) int {
	lox, hix := xs[idx[0]], xs[idx[0]]
	loy, hiy := ys[idx[0]], ys[idx[0]]
	loz, hiz := zs[idx[0]], zs[idx[0]]
	for _, i := range idx[1:] {
		if v := xs[i]; v < lox {
			lox = v
		} else if v > hix {
			hix = v
		}
		if v := ys[i]; v < loy {
			loy = v
		} else if v > hiy {
			hiy = v
		}
		if v := zs[i]; v < loz {
			loz = v
		} else if v > hiz {
			hiz = v
		}
	}
	sx, sy, sz := hix-lox, hiy-loy, hiz-loz
	switch {
	case sx >= sy && sx >= sz:
		return 0
	case sy >= sz:
		return 1
	default:
		return 2
	}
}

// Len returns the number of points.
func (t *Tree) Len() int { return len(t.xs) }

// Slab exposes the backing SoA point slab (read-only by convention).
func (t *Tree) Slab() *cloud.Slab { return t.slab }

// At dequantizes point i.
func (t *Tree) At(i int) geom.Vec3 { return t.slab.At(i) }

// Points materializes the dequantized points as a fresh AoS slice — an
// O(n) copy for diagnostics and tools; hot paths use Slab or At.
func (t *Tree) Points() []geom.Vec3 { return t.slab.Points() }

// Nodes exposes the top-tree nodes (read-only by convention).
func (t *Tree) Nodes() []Node { return t.nodes }

// Leaves exposes the unordered leaf sets (read-only by convention).
func (t *Tree) Leaves() [][]int32 { return t.leaves }

// Root returns the root child link.
func (t *Tree) Root() Child { return t.root }

// TopHeight returns the configured top-tree height.
func (t *Tree) TopHeight() int { return t.height }

// MaxLeafSize returns the size of the largest leaf set (the paper's
// "leaf-set size" knob reported in Fig. 6).
func (t *Tree) MaxLeafSize() int {
	m := 0
	for _, l := range t.leaves {
		if len(l) > m {
			m = len(l)
		}
	}
	return m
}

// Stats instruments two-stage searches. The split between top-tree visits
// and leaf-set visits matters: the paper's Fig. 6 counts both as "nodes
// visited", while the accelerator maps the former onto Recursion Units and
// the latter onto Search Unit PEs.
type Stats struct {
	TopNodesVisited  int64 // top-tree nodes whose distance was computed
	TopNodesPruned   int64 // top-tree sub-trees skipped
	LeafPointsViewed int64 // points scanned in exhaustive leaf searches
	LeaderChecks     int64 // leader-distance computations (approx mode)
	FollowerHits     int64 // queries served via a leader's result set
	LeaderInserts    int64 // queries promoted to leaders
	Queries          int64
}

// TotalVisited returns the Fig. 6 "nodes visited" metric: every point whose
// distance to a query was computed.
func (s *Stats) TotalVisited() int64 {
	return s.TopNodesVisited + s.LeafPointsViewed + s.LeaderChecks
}

// Merge adds other's counters into s.
func (s *Stats) Merge(other Stats) {
	s.TopNodesVisited += other.TopNodesVisited
	s.TopNodesPruned += other.TopNodesPruned
	s.LeafPointsViewed += other.LeafPointsViewed
	s.LeaderChecks += other.LeaderChecks
	s.FollowerHits += other.FollowerHits
	s.LeaderInserts += other.LeaderInserts
	s.Queries += other.Queries
}

// Nearest performs an exact NN search on the two-stage structure.
func (t *Tree) Nearest(q geom.Vec3, stats *Stats) (kdtree.Neighbor, bool) {
	if stats != nil {
		stats.Queries++
	}
	best := kdtree.Neighbor{Index: -1, Dist2: math.MaxFloat64}
	t.nearestChild(t.root, q, &best, stats)
	return best, best.Index >= 0
}

func (t *Tree) nearestChild(c Child, q geom.Vec3, best *kdtree.Neighbor, stats *Stats) {
	switch {
	case c == ChildNone:
		return
	case c.IsLeaf():
		set := t.leaves[c.LeafID()]
		if stats != nil {
			stats.LeafPointsViewed += int64(len(set))
		}
		for _, pi := range set {
			if d2 := t.dist2(q, pi); d2 < best.Dist2 {
				*best = kdtree.Neighbor{Index: int(pi), Dist2: d2}
			}
		}
	default:
		n := &t.nodes[c]
		if stats != nil {
			stats.TopNodesVisited++
		}
		if d2 := t.dist2(q, n.Point); d2 < best.Dist2 {
			*best = kdtree.Neighbor{Index: int(n.Point), Dist2: d2}
		}
		diff := q.Component(int(n.Axis)) - n.Split
		near, far := n.Left, n.Right
		if diff > 0 {
			near, far = far, near
		}
		t.nearestChild(near, q, best, stats)
		if far != ChildNone {
			if diff*diff < best.Dist2 {
				t.nearestChild(far, q, best, stats)
			} else if stats != nil {
				stats.TopNodesPruned++
			}
		}
	}
}

// Radius performs an exact radius search on the two-stage structure,
// returning neighbors in ascending distance order.
func (t *Tree) Radius(q geom.Vec3, r float64, stats *Stats) []kdtree.Neighbor {
	return t.RadiusInto(q, r, nil, stats)
}

// RadiusInto is Radius appending into buf (reset to length 0), so callers
// that recycle result slabs avoid a fresh allocation per query. The
// returned slice may be a regrown replacement for buf; results are
// identical to Radius.
func (t *Tree) RadiusInto(q geom.Vec3, r float64, buf []kdtree.Neighbor, stats *Stats) []kdtree.Neighbor {
	if stats != nil {
		stats.Queries++
	}
	res := buf[:0]
	t.radiusChild(t.root, q, r*r, &res, stats)
	sortNeighbors(res)
	return res
}

func (t *Tree) radiusChild(c Child, q geom.Vec3, r2 float64, res *[]kdtree.Neighbor, stats *Stats) {
	switch {
	case c == ChildNone:
		return
	case c.IsLeaf():
		set := t.leaves[c.LeafID()]
		if stats != nil {
			stats.LeafPointsViewed += int64(len(set))
		}
		for _, pi := range set {
			if d2 := t.dist2(q, pi); d2 <= r2 {
				*res = append(*res, kdtree.Neighbor{Index: int(pi), Dist2: d2})
			}
		}
	default:
		n := &t.nodes[c]
		if stats != nil {
			stats.TopNodesVisited++
		}
		if d2 := t.dist2(q, n.Point); d2 <= r2 {
			*res = append(*res, kdtree.Neighbor{Index: int(n.Point), Dist2: d2})
		}
		diff := q.Component(int(n.Axis)) - n.Split
		near, far := n.Left, n.Right
		if diff > 0 {
			near, far = far, near
		}
		t.radiusChild(near, q, r2, res, stats)
		if far != ChildNone {
			if diff*diff <= r2 {
				t.radiusChild(far, q, r2, res, stats)
			} else if stats != nil {
				stats.TopNodesPruned++
			}
		}
	}
}

// sortNeighbors orders results by ascending (Dist2, Index) through the
// allocation-free kdtree sort (sort.Slice would allocate per query).
func sortNeighbors(res []kdtree.Neighbor) {
	kdtree.SortNeighbors(res)
}
