package twostage

import (
	"math"
	"math/rand"
	"testing"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
)

func randPoints(r *rand.Rand, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.Vec3{
			X: r.Float64()*100 - 50,
			Y: r.Float64()*100 - 50,
			Z: r.Float64()*10 - 5,
		}
	}
	return pts
}

func TestNearestMatchesCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 800)
	canon := kdtree.Build(pts)
	for _, h := range []int{0, 1, 3, 5, 8, 12} {
		tree := Build(pts, h)
		for i := 0; i < 40; i++ {
			q := randPoints(r, 1)[0]
			got, ok := tree.Nearest(q, nil)
			want, _ := canon.Nearest(q, nil)
			if !ok || math.Abs(got.Dist2-want.Dist2) > 1e-12 {
				t.Fatalf("h=%d: two-stage NN %v, canonical %v", h, got, want)
			}
		}
	}
}

func TestRadiusMatchesCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 800)
	canon := kdtree.Build(pts)
	for _, h := range []int{0, 2, 6, 10} {
		tree := Build(pts, h)
		for i := 0; i < 30; i++ {
			q := randPoints(r, 1)[0]
			radius := 2 + r.Float64()*10
			got := tree.Radius(q, radius, nil)
			want := canon.Radius(q, radius, nil)
			if len(got) != len(want) {
				t.Fatalf("h=%d: radius count %d vs %d", h, len(got), len(want))
			}
			for j := range got {
				if got[j].Index != want[j].Index {
					t.Fatalf("h=%d: radius[%d] = %d vs %d", h, j, got[j].Index, want[j].Index)
				}
			}
		}
	}
}

func TestHeightZeroIsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 200)
	tree := Build(pts, 0)
	if len(tree.Nodes()) != 0 {
		t.Fatalf("height-0 tree has %d top nodes", len(tree.Nodes()))
	}
	if len(tree.Leaves()) != 1 || len(tree.Leaves()[0]) != 200 {
		t.Fatalf("height-0 tree should be one full leaf set")
	}
	var stats Stats
	tree.Nearest(geom.Vec3{}, &stats)
	if stats.LeafPointsViewed != 200 {
		t.Errorf("brute-force NN viewed %d points, want 200", stats.LeafPointsViewed)
	}
}

func TestRedundancyIncreasesWithLeafSize(t *testing.T) {
	// Fig. 6a: redundancy (two-stage visits / canonical visits) grows as
	// leaf sets grow.
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 4000)
	canon := kdtree.Build(pts)
	queries := randPoints(r, 100)

	var canonStats kdtree.Stats
	for _, q := range queries {
		canon.Nearest(q, &canonStats)
	}

	prevRatio := 0.0
	for _, leafSize := range []int{2, 8, 32, 128} {
		tree := BuildWithLeafSize(pts, leafSize)
		var stats Stats
		for _, q := range queries {
			tree.Nearest(q, &stats)
		}
		ratio := float64(stats.TotalVisited()) / float64(canonStats.NodesVisited)
		if ratio < prevRatio*0.8 {
			t.Errorf("leafSize=%d: redundancy %0.2f dropped sharply from %0.2f", leafSize, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio < 2 {
		t.Errorf("leaf size 128 should cost at least 2x canonical visits, got %0.2f", prevRatio)
	}
}

func TestBuildWithLeafSizeRespectsTarget(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 1000)
	for _, target := range []int{1, 4, 16, 64} {
		tree := BuildWithLeafSize(pts, target)
		if got := tree.MaxLeafSize(); got > target {
			t.Errorf("target %d: max leaf size %d", target, got)
		}
	}
}

func TestChildEncoding(t *testing.T) {
	for _, id := range []int{0, 1, 7, 100000} {
		c := encodeLeaf(id)
		if !c.IsLeaf() || c.IsNode() {
			t.Fatalf("leaf %d misclassified", id)
		}
		if c.LeafID() != id {
			t.Fatalf("leaf id round trip: %d -> %d", id, c.LeafID())
		}
	}
	if ChildNone.IsLeaf() || ChildNone.IsNode() {
		t.Error("ChildNone misclassified")
	}
	if !Child(5).IsNode() || Child(5).IsLeaf() {
		t.Error("node child misclassified")
	}
}

func TestApproxExactWhenDisabled(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randPoints(r, 500)
	tree := Build(pts, 4)
	queries := randPoints(r, 80)
	res := tree.NearestBatchApprox(queries, ApproxOptions{Threshold: 0}, nil)
	for i, q := range queries {
		want, _ := tree.Nearest(q, nil)
		if math.Abs(res[i].Dist2-want.Dist2) > 1e-12 {
			t.Fatalf("disabled approx diverged at %d", i)
		}
	}
}

func TestApproxNNBoundedError(t *testing.T) {
	// Followers inherit their leader's candidate, so the returned neighbor
	// can be farther than the true NN, but not arbitrarily: the result the
	// follower adopts is within (thd + true-NN-dist + thd) by the triangle
	// inequality through the leader. Check a generous bound and that most
	// answers are exact.
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 3000)
	tree := Build(pts, 5)
	// Clustered queries make followers common.
	queries := make([]geom.Vec3, 400)
	for i := range queries {
		base := pts[r.Intn(len(pts))]
		queries[i] = base.Add(geom.Vec3{X: r.Float64() - 0.5, Y: r.Float64() - 0.5, Z: r.Float64() - 0.5})
	}
	const thd = 1.2
	var stats Stats
	res := tree.NearestBatchApprox(queries, ApproxOptions{Threshold: thd}, &stats)
	if stats.FollowerHits == 0 {
		t.Fatal("expected some follower hits with clustered queries")
	}
	exact := 0
	for i, q := range queries {
		want, _ := tree.Nearest(q, nil)
		gotD := math.Sqrt(res[i].Dist2)
		wantD := math.Sqrt(want.Dist2)
		if gotD > wantD+2*thd+1e-9 {
			t.Fatalf("query %d: approx NN dist %v exceeds bound (true %v)", i, gotD, wantD)
		}
		if math.Abs(gotD-wantD) < 1e-9 {
			exact++
		}
	}
	if frac := float64(exact) / float64(len(queries)); frac < 0.5 {
		t.Errorf("only %.2f of approx NN answers exact; expected mostly-exact behavior", frac)
	}
}

func TestApproxReducesWork(t *testing.T) {
	// The whole point of Algorithm 1 (paper §6.3 reports a 72.8% node
	// visit reduction): followers must make the search cheaper.
	r := rand.New(rand.NewSource(8))
	pts := randPoints(r, 5000)
	tree := BuildWithLeafSize(pts, 128)
	queries := make([]geom.Vec3, 1000)
	for i := range queries {
		base := pts[r.Intn(len(pts))]
		queries[i] = base.Add(geom.Vec3{X: r.Float64()*0.6 - 0.3, Y: r.Float64()*0.6 - 0.3, Z: r.Float64()*0.6 - 0.3})
	}
	var exactStats, approxStats Stats
	tree.NearestBatchApprox(queries, ApproxOptions{Threshold: 0}, &exactStats)
	tree.NearestBatchApprox(queries, ApproxOptions{Threshold: 1.2}, &approxStats)
	if approxStats.TotalVisited() >= exactStats.TotalVisited() {
		t.Errorf("approx visited %d >= exact %d", approxStats.TotalVisited(), exactStats.TotalVisited())
	}
}

func TestApproxRadiusSubsetOfExact(t *testing.T) {
	// Approximate radius results must be a subset of the exact results
	// (followers can miss points, never invent them), and every returned
	// point must genuinely lie within r.
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 2000)
	tree := Build(pts, 5)
	queries := make([]geom.Vec3, 150)
	for i := range queries {
		base := pts[r.Intn(len(pts))]
		queries[i] = base.Add(geom.Vec3{X: r.Float64() - 0.5, Y: r.Float64() - 0.5, Z: r.Float64() - 0.5})
	}
	const radius = 3.0
	var stats Stats
	res := tree.RadiusBatchApprox(queries, radius, ApproxOptions{Threshold: radius * 0.4}, &stats)
	if stats.FollowerHits == 0 {
		t.Fatal("expected follower hits")
	}
	for i, q := range queries {
		exact := tree.Radius(q, radius, nil)
		exactSet := make(map[int]bool, len(exact))
		for _, nb := range exact {
			exactSet[nb.Index] = true
		}
		for _, nb := range res[i] {
			if !exactSet[nb.Index] {
				t.Fatalf("query %d: approx returned %d not in exact set", i, nb.Index)
			}
			if q.Dist(tree.Points()[nb.Index]) > radius+1e-9 {
				t.Fatalf("query %d: returned point outside radius", i)
			}
		}
	}
}

func TestApproxRadiusRecall(t *testing.T) {
	// Fig. 7b's premise: the error from approximate radius search is
	// moderate. Check aggregate recall stays high at the paper's 40%
	// threshold setting.
	r := rand.New(rand.NewSource(10))
	pts := randPoints(r, 3000)
	tree := BuildWithLeafSize(pts, 128)
	queries := make([]geom.Vec3, 300)
	for i := range queries {
		base := pts[r.Intn(len(pts))]
		queries[i] = base.Add(geom.Vec3{X: r.Float64()*0.8 - 0.4, Y: r.Float64()*0.8 - 0.4, Z: r.Float64()*0.8 - 0.4})
	}
	const radius = 4.0
	res := tree.RadiusBatchApprox(queries, radius, ApproxOptions{Threshold: radius * DefaultRadiusThresholdFrac}, nil)
	var found, total int
	for i, q := range queries {
		exact := tree.Radius(q, radius, nil)
		total += len(exact)
		found += len(res[i])
	}
	if recall := float64(found) / float64(total); recall < 0.7 {
		t.Errorf("radius recall %.2f too low", recall)
	}
}

func TestLeaderCap(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts := randPoints(r, 500)
	tree := Build(pts, 2) // few leaves, many queries per leaf
	queries := randPoints(r, 3000)
	var stats Stats
	// A tiny threshold forces nearly every query onto the precise path,
	// which would add a leader every time without the cap.
	tree.NearestBatchApprox(queries, ApproxOptions{Threshold: 1e-9, MaxLeaders: 16}, &stats)
	maxPossible := int64(len(tree.Leaves()) * 16)
	if stats.LeaderInserts > maxPossible {
		t.Errorf("leader inserts %d exceed cap %d", stats.LeaderInserts, maxPossible)
	}
}

func TestStatsTotalAndMerge(t *testing.T) {
	s := Stats{TopNodesVisited: 3, LeafPointsViewed: 10, LeaderChecks: 2}
	if s.TotalVisited() != 15 {
		t.Errorf("TotalVisited = %d", s.TotalVisited())
	}
	other := Stats{TopNodesVisited: 1, TopNodesPruned: 4, LeafPointsViewed: 5, LeaderChecks: 1, FollowerHits: 2, LeaderInserts: 3, Queries: 7}
	s.Merge(other)
	if s.TopNodesVisited != 4 || s.TopNodesPruned != 4 || s.LeafPointsViewed != 15 ||
		s.LeaderChecks != 3 || s.FollowerHits != 2 || s.LeaderInserts != 3 || s.Queries != 7 {
		t.Errorf("merged = %+v", s)
	}
}

func TestEmptyTree(t *testing.T) {
	tree := Build(nil, 3)
	if _, ok := tree.Nearest(geom.Vec3{}, nil); ok {
		t.Error("empty tree returned neighbor")
	}
	if res := tree.Radius(geom.Vec3{}, 1, nil); len(res) != 0 {
		t.Error("empty tree radius returned results")
	}
	res := tree.NearestBatchApprox([]geom.Vec3{{}}, ApproxOptions{Threshold: 1}, nil)
	if res[0].Index >= 0 {
		t.Error("empty tree approx returned neighbor")
	}
}

func BenchmarkTwoStageBuild(b *testing.B) {
	pts := randPoints(rand.New(rand.NewSource(1)), 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildWithLeafSize(pts, 128)
	}
}

func BenchmarkTwoStageNearest(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 50000)
	tree := BuildWithLeafSize(pts, 128)
	queries := randPoints(r, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Nearest(queries[i%len(queries)], nil)
	}
}

func BenchmarkApproxNearestBatch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 20000)
	tree := BuildWithLeafSize(pts, 128)
	queries := make([]geom.Vec3, 2048)
	for i := range queries {
		base := pts[r.Intn(len(pts))]
		queries[i] = base.Add(geom.Vec3{X: r.Float64() - 0.5, Y: r.Float64() - 0.5})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.NearestBatchApprox(queries, ApproxOptions{Threshold: 1.2}, nil)
	}
}
