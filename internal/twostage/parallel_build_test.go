package twostage

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/geom"
)

// seqBuild is the original sequential append-order construction, kept as
// the layout oracle for the offset-addressed parallel builder.
func seqBuild(pts []geom.Vec3, topHeight int) *Tree {
	if topHeight < 0 {
		topHeight = 0
	}
	s := cloud.SlabFromPoints(pts)
	t := &Tree{slab: s, xs: s.Xs, ys: s.Ys, zs: s.Zs, height: topHeight}
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.root = seqBuildRec(t, idx, 0)
	return t
}

func seqBuildRec(t *Tree, idx []int32, depth int) Child {
	if len(idx) == 0 {
		return ChildNone
	}
	if depth >= t.height {
		id := len(t.leaves)
		set := make([]int32, len(idx))
		copy(set, idx)
		t.leaves = append(t.leaves, set)
		return encodeLeaf(id)
	}
	axis := widestAxis(t.xs, t.ys, t.zs, idx)
	ax := axisSlice(t.xs, t.ys, t.zs, axis)
	sort.Slice(idx, func(a, b int) bool {
		pa := ax[idx[a]]
		pb := ax[idx[b]]
		if pa != pb {
			return pa < pb
		}
		return idx[a] < idx[b]
	})
	mid := len(idx) / 2
	self := len(t.nodes)
	t.nodes = append(t.nodes, Node{
		Point: idx[mid],
		Axis:  int8(axis),
		Split: float64(ax[idx[mid]]),
		Left:  ChildNone,
		Right: ChildNone,
	})
	left := seqBuildRec(t, idx[:mid], depth+1)
	right := seqBuildRec(t, idx[mid+1:], depth+1)
	t.nodes[self].Left = left
	t.nodes[self].Right = right
	return Child(self)
}

func randomPts(n int, seed int64) []geom.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V3(rng.Float64()*50, rng.Float64()*50, rng.Float64()*5)
	}
	return pts
}

// TestParallelBuildLayoutIdentical asserts the parallel Build reproduces
// the sequential construction exactly — node slots, child links, leaf
// ids, and leaf-set contents — across sizes and top heights including
// degenerate ones (height 0, height deeper than the point count).
func TestParallelBuildLayoutIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 2, 33, 1000, buildSpawnMin * 4} {
		for _, h := range []int{0, 1, 3, 8, 30} {
			pts := randomPts(n, int64(n*31+h))
			got := Build(pts, h)
			want := seqBuild(append([]geom.Vec3(nil), pts...), h)
			if got.root != want.root {
				t.Fatalf("n=%d h=%d: root %v != %v", n, h, got.root, want.root)
			}
			if !reflect.DeepEqual(got.nodes, want.nodes) {
				t.Fatalf("n=%d h=%d: node layout differs", n, h)
			}
			if len(got.leaves) != len(want.leaves) {
				t.Fatalf("n=%d h=%d: %d leaves != %d", n, h, len(got.leaves), len(want.leaves))
			}
			if !reflect.DeepEqual(got.leaves, want.leaves) {
				t.Fatalf("n=%d h=%d: leaf sets differ", n, h)
			}
		}
	}
}

// TestParallelBuildSearchEquivalence cross-checks searches and their
// instrumentation between parallel- and sequential-built trees.
func TestParallelBuildSearchEquivalence(t *testing.T) {
	pts := randomPts(buildSpawnMin*2, 5)
	queries := randomPts(200, 6)
	par := Build(pts, 6)
	seq := seqBuild(append([]geom.Vec3(nil), pts...), 6)
	var sp, ss Stats
	for _, q := range queries {
		a, _ := par.Nearest(q, &sp)
		b, _ := seq.Nearest(q, &ss)
		if a != b {
			t.Fatalf("nearest mismatch: %+v vs %+v", a, b)
		}
		if !reflect.DeepEqual(par.Radius(q, 1.5, &sp), seq.Radius(q, 1.5, &ss)) {
			t.Fatalf("radius mismatch at %v", q)
		}
	}
	if sp != ss {
		t.Fatalf("stats diverged: %+v vs %+v", sp, ss)
	}
}
