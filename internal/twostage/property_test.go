package twostage

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tigris/internal/geom"
)

// treeCase is a random bounded tree + query scenario for quick checks.
type treeCase struct {
	Pts    []geom.Vec3
	Height int
	Query  geom.Vec3
	R      float64
}

// Generate implements quick.Generator.
func (treeCase) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(300)
	pts := make([]geom.Vec3, n)
	for i := range pts {
		// Pre-snapped to float32 so the tree stores exactly these values
		// and the AoS brute-force oracle stays bit-identical.
		pts[i] = geom.Vec3{
			X: r.Float64()*40 - 20,
			Y: r.Float64()*40 - 20,
			Z: r.Float64()*8 - 4,
		}.Quantize32()
	}
	return reflect.ValueOf(treeCase{
		Pts:    pts,
		Height: r.Intn(12),
		Query:  geom.Vec3{X: r.Float64()*50 - 25, Y: r.Float64()*50 - 25, Z: r.Float64()*10 - 5},
		R:      r.Float64() * 8,
	})
}

func TestQuickTwoStageNNEqualsBrute(t *testing.T) {
	f := func(tc treeCase) bool {
		tree := Build(tc.Pts, tc.Height)
		nb, ok := tree.Nearest(tc.Query, nil)
		if !ok {
			return false
		}
		best := math.MaxFloat64
		for _, p := range tc.Pts {
			if d := tc.Query.Dist2(p); d < best {
				best = d
			}
		}
		return math.Abs(nb.Dist2-best) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickTwoStageRadiusEqualsBrute(t *testing.T) {
	f := func(tc treeCase) bool {
		tree := Build(tc.Pts, tc.Height)
		res := tree.Radius(tc.Query, tc.R, nil)
		want := 0
		r2 := tc.R * tc.R
		for _, p := range tc.Pts {
			if tc.Query.Dist2(p) <= r2 {
				want++
			}
		}
		return len(res) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickPartitionInvariant(t *testing.T) {
	// Structural invariant: top-tree node points plus all leaf-set points
	// partition the input exactly (every index once).
	f := func(tc treeCase) bool {
		tree := Build(tc.Pts, tc.Height)
		seen := make([]bool, len(tc.Pts))
		count := 0
		for _, n := range tree.Nodes() {
			if seen[n.Point] {
				return false
			}
			seen[n.Point] = true
			count++
		}
		for _, leaf := range tree.Leaves() {
			for _, pi := range leaf {
				if seen[pi] {
					return false
				}
				seen[pi] = true
				count++
			}
		}
		return count == len(tc.Pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickSplitPlaneInvariant(t *testing.T) {
	// Every top-tree node's split plane must separate its subtrees: all
	// points reachable on the left have coordinate <= split (ties allowed
	// by the median split), all on the right >= split.
	f := func(tc treeCase) bool {
		tree := Build(tc.Pts, tc.Height)
		ok := true
		var collect func(c Child) []int32
		collect = func(c Child) []int32 {
			switch {
			case c == ChildNone:
				return nil
			case c.IsLeaf():
				return tree.Leaves()[c.LeafID()]
			default:
				n := tree.Nodes()[c]
				out := []int32{n.Point}
				out = append(out, collect(n.Left)...)
				out = append(out, collect(n.Right)...)
				return out
			}
		}
		for _, n := range tree.Nodes() {
			for _, pi := range collect(n.Left) {
				if tc.Pts[pi].Component(int(n.Axis)) > n.Split+1e-12 {
					ok = false
				}
			}
			for _, pi := range collect(n.Right) {
				if tc.Pts[pi].Component(int(n.Axis)) < n.Split-1e-12 {
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickApproxNeverWorseThanLeaderBound(t *testing.T) {
	// For any batch, an approximate NN answer is at most
	// (true NN + 2·thd) away: the follower adopts a candidate its leader
	// found, and leader/query are within thd of each other.
	f := func(tc treeCase) bool {
		if len(tc.Pts) < 10 {
			return true
		}
		tree := Build(tc.Pts, 4)
		queries := tc.Pts[:len(tc.Pts)/2]
		const thd = 1.5
		res := tree.NearestBatchApprox(queries, ApproxOptions{Threshold: thd}, nil)
		for i, q := range queries {
			want, _ := tree.Nearest(q, nil)
			if math.Sqrt(res[i].Dist2) > math.Sqrt(want.Dist2)+2*thd+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
