package twostage

import (
	"math"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
)

// ApproxSession runs approximate searches with leader state that persists
// across calls, the way the accelerator's per-leaf Leader Buffers persist
// across the queries of one pipeline stage (§5.3). Create one session per
// stage invocation; the batch helpers in this package are one-shot
// sessions.
//
// Radius leaders are only meaningful for a fixed radius; if the radius
// changes between calls the radius leader state is reset.
type ApproxSession struct {
	tree *Tree
	opts ApproxOptions
	nn   [][]nnLeader
	rad  [][]radLeader
	radR float64
}

// NewApproxSession creates a session over t.
func (t *Tree) NewApproxSession(opts ApproxOptions) *ApproxSession {
	opts.defaults()
	return &ApproxSession{
		tree: t,
		opts: opts,
		nn:   make([][]nnLeader, len(t.leaves)),
		rad:  make([][]radLeader, len(t.leaves)),
		radR: -1,
	}
}

// Nearest performs one approximate NN query, updating leader state.
func (s *ApproxSession) Nearest(q geom.Vec3, stats *Stats) (kdtree.Neighbor, bool) {
	if stats != nil {
		stats.Queries++
	}
	best := kdtree.Neighbor{Index: -1, Dist2: math.MaxFloat64}
	s.tree.nearestApprox(s.tree.root, q, &best, s.nn, s.opts, stats)
	return best, best.Index >= 0
}

// Radius performs one approximate radius query, updating leader state.
func (s *ApproxSession) Radius(q geom.Vec3, r float64, stats *Stats) []kdtree.Neighbor {
	if stats != nil {
		stats.Queries++
	}
	if r != s.radR {
		s.rad = make([][]radLeader, len(s.tree.leaves))
		s.radR = r
	}
	opts := s.opts
	if opts.RadiusThresholdFrac > 0 {
		opts.Threshold = opts.RadiusThresholdFrac * r
	}
	var res []kdtree.Neighbor
	s.tree.radiusApprox(s.tree.root, q, r*r, &res, s.rad, opts, stats)
	sortNeighbors(res)
	return res
}
