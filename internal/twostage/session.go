package twostage

import (
	"math"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
)

// ApproxSession runs approximate searches with leader state that persists
// across calls, the way the accelerator's per-leaf Leader Buffers persist
// across the queries of one pipeline stage (§5.3). Create one session per
// stage invocation; the batch helpers in this package are one-shot
// sessions.
//
// A session is not safe for concurrent use — its leader buffers mutate on
// every query. The batched search layer (internal/search) therefore gives
// each worker its own session over a fixed-size chunk of the batch, so
// leader state never crosses goroutines and batch results are a
// deterministic function of the query batch alone.
//
// Radius leaders are only meaningful for a fixed radius; if the radius
// changes between calls the radius leader state is reset.
type ApproxSession struct {
	tree *Tree
	opts ApproxOptions
	nn   [][]nnLeader
	rad  [][]radLeader
	radR float64
}

// NewApproxSession creates a session over t.
func (t *Tree) NewApproxSession(opts ApproxOptions) *ApproxSession {
	opts.defaults()
	return &ApproxSession{
		tree: t,
		opts: opts,
		nn:   make([][]nnLeader, len(t.leaves)),
		rad:  make([][]radLeader, len(t.leaves)),
		radR: -1,
	}
}

// Reset clears all leader state in place, retaining the allocated
// per-leaf buffers, so one session can serve successive batch chunks
// without reallocating O(leaves) storage per chunk. A reset session
// behaves exactly like a freshly created one.
func (s *ApproxSession) Reset() {
	for i := range s.nn {
		s.nn[i] = s.nn[i][:0]
	}
	for i := range s.rad {
		s.rad[i] = s.rad[i][:0]
	}
	s.radR = -1
}

// Nearest performs one approximate NN query, updating leader state.
func (s *ApproxSession) Nearest(q geom.Vec3, stats *Stats) (kdtree.Neighbor, bool) {
	if stats != nil {
		stats.Queries++
	}
	best := kdtree.Neighbor{Index: -1, Dist2: math.MaxFloat64}
	s.tree.nearestApprox(s.tree.root, q, &best, s.nn, s.opts, stats)
	return best, best.Index >= 0
}

// Radius performs one approximate radius query, updating leader state.
func (s *ApproxSession) Radius(q geom.Vec3, r float64, stats *Stats) []kdtree.Neighbor {
	if stats != nil {
		stats.Queries++
	}
	if r != s.radR {
		// Truncate in place rather than reallocate: leader capacity is
		// reused across radius changes and session resets.
		for i := range s.rad {
			s.rad[i] = s.rad[i][:0]
		}
		s.radR = r
	}
	opts := s.opts
	if opts.RadiusThresholdFrac > 0 {
		opts.Threshold = opts.RadiusThresholdFrac * r
	}
	var res []kdtree.Neighbor
	s.tree.radiusApprox(s.tree.root, q, r*r, &res, s.rad, opts, stats)
	sortNeighbors(res)
	return res
}
