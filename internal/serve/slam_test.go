package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"tigris/internal/synth"
)

// TestLoopSessionSurface drives a loop-enabled session over HTTP: the
// loops endpoint must report the stage's counters, the trajectory
// endpoint must serve an optimized trajectory, and an invalid loop
// backend must 400 at session creation (not panic the engine).
func TestLoopSessionSurface(t *testing.T) {
	srv := New(Config{Parallelism: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Invalid loop backend: a clean 400.
	var errResp map[string]any
	if code := postJSON(t, client, ts.URL+"/v1/sessions",
		map[string]any{"loop": map[string]any{"enabled": true, "backend": "no-such"}}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("invalid loop backend: status %d (%v)", code, errResp)
	}
	// Negative knobs would disable the temporal gate outright: also 400.
	if code := postJSON(t, client, ts.URL+"/v1/sessions",
		map[string]any{"loop": map[string]any{"enabled": true, "min_separation": -5}}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("negative loop option: status %d (%v)", code, errResp)
	}

	var created struct {
		ID   string `json:"id"`
		Loop bool   `json:"loop"`
	}
	if code := postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{
		"parallelism": 1,
		"pipelined":   false,
		"loop":        map[string]any{"enabled": true, "min_separation": 2, "max_candidates": 1},
	}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if !created.Loop {
		t.Fatal("loop-enabled session reported loop=false")
	}

	seq := synth.GenerateSequence(synth.QuickSequenceConfig(4, 11))
	for _, f := range seq.Frames {
		pushFrame(t, client, ts.URL, created.ID, f, true)
	}

	// Loops endpoint: counters present, observed == frames.
	resp, err := client.Get(fmt.Sprintf("%s/v1/sessions/%s/loops?wait=1", ts.URL, created.ID))
	if err != nil {
		t.Fatal(err)
	}
	var loops struct {
		Closures []map[string]any `json:"closures"`
		Stats    struct {
			Observed int64 `json:"observed"`
			Proposed int64 `json:"proposed"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&loops); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if loops.Stats.Observed != int64(seq.Len()) {
		t.Fatalf("loop stage observed %d of %d frames", loops.Stats.Observed, seq.Len())
	}

	// Optimized trajectory: present, one pose per frame, with solver
	// stats.
	resp, err = client.Get(fmt.Sprintf("%s/v1/sessions/%s/trajectory?wait=1&optimized=1", ts.URL, created.ID))
	if err != nil {
		t.Fatal(err)
	}
	var traj struct {
		Frames       int              `json:"frames"`
		Optimized    []map[string]any `json:"optimized"`
		Optimization struct {
			Converged bool `json:"converged"`
		} `json:"optimization"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traj); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if traj.Frames != seq.Len() || len(traj.Optimized) != seq.Len() {
		t.Fatalf("optimized trajectory has %d poses for %d frames", len(traj.Optimized), traj.Frames)
	}
	if !traj.Optimization.Converged {
		t.Fatal("optimization did not converge on a consistent graph")
	}

	// Stats endpoint carries the loop counters too.
	resp, err = client.Get(fmt.Sprintf("%s/v1/sessions/%s/stats", ts.URL, created.ID))
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, k := range []string{"loops_proposed", "loops_verified", "loops_accepted", "loop_ms"} {
		if _, ok := stats[k]; !ok {
			t.Errorf("stats missing %q", k)
		}
	}
}
