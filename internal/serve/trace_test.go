package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tigris/internal/obs"
	"tigris/internal/synth"
)

// TestTraceAdoptionAndDebugTrace drives a traced session end to end on
// one worker: the inbound W3C traceparent's trace id is adopted, echoed
// on every response as X-Tigris-Trace, and /debug/trace/{id} serves a
// Chrome trace-event document whose spans all carry that id.
func TestTraceAdoptionAndDebugTrace(t *testing.T) {
	srv := New(Config{Parallelism: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	want := obs.NewTraceID()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", bytes.NewReader([]byte(`{"parallelism":1}`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", obs.FormatTraceParent(want, 0))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var created map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Tigris-Trace"); got != want.String() {
		t.Fatalf("create X-Tigris-Trace = %q, want adopted %q", got, want)
	}
	if created["trace"] != want.String() {
		t.Fatalf("create body trace = %v, want %q", created["trace"], want)
	}
	id := created["id"].(string)

	const frames = 3
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(frames, 61))
	for i, f := range seq.Frames {
		out := pushFrame(t, client, ts.URL, id, f, i == frames-1)
		if int(out["frame"].(float64)) != i {
			t.Fatalf("frame %d assigned index %v", i, out["frame"])
		}
	}

	// Every session response echoes the trace id, not just create.
	tr, err := client.Get(ts.URL + "/v1/sessions/" + id + "/trajectory?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if got := tr.Header.Get("X-Tigris-Trace"); got != want.String() {
		t.Fatalf("trajectory X-Tigris-Trace = %q, want %q", got, want)
	}

	resp, err = client.Get(ts.URL + "/debug/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", resp.StatusCode)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Slowest map[string][]map[string]any `json:"slowest"`
		Meta    map[string]any              `json:"otherData"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/trace: bad JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/debug/trace: no span events")
	}
	if doc.Meta["trace_id"] != want.String() {
		t.Fatalf("otherData.trace_id = %v, want %q", doc.Meta["trace_id"], want)
	}
	frameSpans := 0
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d has ph %q, want complete-event X", i, ev.Ph)
		}
		if i > 0 && ev.Ts < doc.TraceEvents[i-1].Ts {
			t.Fatalf("events not sorted by ts at %d", i)
		}
		if ev.Args["trace_id"] != want.String() {
			t.Fatalf("event %q trace_id = %v, want %q", ev.Name, ev.Args["trace_id"], want)
		}
		if ev.Name == obs.StageFrame {
			frameSpans++
		}
	}
	if frameSpans != frames {
		t.Fatalf("%d whole-frame spans, want %d", frameSpans, frames)
	}
	if len(doc.Slowest[obs.StageFrame]) == 0 {
		t.Fatal("no slowest-K frame exemplars in /debug/trace")
	}
}

// TestTraceMintedWithoutTraceparent pins the default path: no inbound
// traceparent still yields a valid session trace id.
func TestTraceMintedWithoutTraceparent(t *testing.T) {
	srv := New(Config{Parallelism: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	got := resp.Header.Get("X-Tigris-Trace")
	if _, ok := obs.ParseTraceID(got); !ok {
		t.Fatalf("minted X-Tigris-Trace %q is not a valid trace id", got)
	}
}
