package serve

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeSelfSigned writes a throwaway self-signed cert/key pair and
// returns their paths.
func writeSelfSigned(t *testing.T) (certFile, keyFile string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "tigris-test"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1)},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

func TestTLSConfigValidate(t *testing.T) {
	certFile, keyFile := writeSelfSigned(t)

	if err := (TLSConfig{}).Validate(); err != nil {
		t.Errorf("plaintext config rejected: %v", err)
	}
	if (TLSConfig{}).Enabled() {
		t.Error("empty config reports enabled")
	}

	ok := TLSConfig{CertFile: certFile, KeyFile: keyFile}
	if !ok.Enabled() {
		t.Error("full config reports disabled")
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid pair rejected: %v", err)
	}

	cases := []struct {
		name string
		cfg  TLSConfig
	}{
		{"cert without key", TLSConfig{CertFile: certFile}},
		{"key without cert", TLSConfig{KeyFile: keyFile}},
		{"missing cert file", TLSConfig{CertFile: filepath.Join(t.TempDir(), "no.pem"), KeyFile: keyFile}},
		{"missing key file", TLSConfig{CertFile: certFile, KeyFile: filepath.Join(t.TempDir(), "no.pem")}},
		{"swapped pair", TLSConfig{CertFile: keyFile, KeyFile: certFile}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
