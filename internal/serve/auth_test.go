package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/synth"
)

// TestAuthTokenGuardsV1 covers the bearer-token check: without (or with
// a wrong) token every /v1/* endpoint is a 401, with the token the
// session lifecycle works, and /healthz stays open for probes.
func TestAuthTokenGuardsV1(t *testing.T) {
	const token = "sesame-1"
	srv := New(Config{Parallelism: 1, AuthToken: token})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Health needs no credentials.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz without token: %d", resp.StatusCode)
	}

	// /v1/* without a token, with a malformed header, and with the wrong
	// token must all be 401.
	for _, auth := range []string{"", "Basic abc", "Bearer wrong"} {
		for _, ep := range []string{"/v1/backends", "/v1/sessions/s1/trajectory"} {
			req, _ := http.NewRequest(http.MethodGet, ts.URL+ep, nil)
			if auth != "" {
				req.Header.Set("Authorization", auth)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("GET %s with auth %q: %d, want 401", ep, auth, resp.StatusCode)
			}
			if resp.Header.Get("WWW-Authenticate") == "" {
				t.Error("401 without a WWW-Authenticate challenge")
			}
		}
	}

	// With the token the full lifecycle works.
	do := func(method, path string, body []byte) (*http.Response, error) {
		req, _ := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+token)
		return client.Do(req)
	}
	resp, err = do(http.MethodPost, "/v1/sessions", []byte(`{"parallelism":1,"pipelined":false}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("authorized create: %d %+v", resp.StatusCode, created)
	}

	seq := synth.GenerateSequence(synth.QuickSequenceConfig(1, 9))
	var buf bytes.Buffer
	if err := cloud.Write(&buf, seq.Frames[0]); err != nil {
		t.Fatal(err)
	}
	resp, err = do(http.MethodPost, fmt.Sprintf("/v1/sessions/%s/frames?wait=1", created.ID), buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("authorized push: %d", resp.StatusCode)
	}
	resp, err = do(http.MethodDelete, "/v1/sessions/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized delete: %d", resp.StatusCode)
	}
}

// TestNoAuthTokenKeepsOpenAccess: the zero config preserves the
// pre-auth behavior.
func TestNoAuthTokenKeepsOpenAccess(t *testing.T) {
	srv := New(Config{Parallelism: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open-access backends: %d", resp.StatusCode)
	}
}
