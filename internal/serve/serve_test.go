package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/registration"
	"tigris/internal/synth"
)

// postJSON posts v as JSON and decodes the response into out.
func postJSON(t *testing.T, client *http.Client, url string, v, out any) int {
	t.Helper()
	body, _ := json.Marshal(v)
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func pushFrame(t *testing.T, client *http.Client, base, id string, c *cloud.Cloud, wait bool) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := cloud.Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/sessions/%s/frames", base, id)
	if wait {
		url += "?wait=1"
	}
	resp, err := client.Post(url, "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("push: status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getTrajectory(t *testing.T, client *http.Client, base, id string) map[string]any {
	t.Helper()
	resp, err := client.Get(fmt.Sprintf("%s/v1/sessions/%s/trajectory?wait=1", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerEndToEnd drives the full session lifecycle over real HTTP
// and checks the served deltas are bit-identical to per-pair Register on
// the same (wire round-tripped) clouds.
func TestServerEndToEnd(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Health.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	// Create a session.
	var created map[string]any
	if code := postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{"searcher": "canonical"}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	id, _ := created["id"].(string)
	if id == "" {
		t.Fatalf("create: no id in %v", created)
	}

	// Push three frames (the wire format is %.9g ASCII, so the reference
	// registration must run on the round-tripped clouds).
	const frames = 3
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(frames, 41))
	wire := make([]*cloud.Cloud, frames)
	for i, f := range seq.Frames {
		var buf bytes.Buffer
		if err := cloud.Write(&buf, f); err != nil {
			t.Fatal(err)
		}
		back, err := cloud.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		wire[i] = back
		out := pushFrame(t, client, ts.URL, id, f, i == frames-1)
		if int(out["frame"].(float64)) != i {
			t.Fatalf("frame %d assigned index %v", i, out["frame"])
		}
	}

	traj := getTrajectory(t, client, ts.URL, id)
	if int(traj["frames"].(float64)) != frames {
		t.Fatalf("trajectory has %v frames, want %d", traj["frames"], frames)
	}
	records := traj["trajectory"].([]any)

	// Reference: per-pair Register over the wire clouds, bit-compared
	// against the served deltas.
	var dpCfg registration.PipelineConfig
	srvCfg, err := srv.pipelineConfig(sessionRequest{Searcher: "canonical"})
	if err != nil {
		t.Fatal(err)
	}
	dpCfg = srvCfg
	for i := 1; i < frames; i++ {
		want := registration.Register(wire[i].Clone(), wire[i-1].Clone(), dpCfg).Transform
		rec := records[i].(map[string]any)
		delta := rec["delta"].(map[string]any)
		rj := delta["r"].([]any)
		tj := delta["t"].([]any)
		for k := 0; k < 9; k++ {
			if rj[k].(float64) != want.R[k] {
				t.Fatalf("frame %d: served rotation[%d] %v != %v", i, k, rj[k], want.R[k])
			}
		}
		wantT := [3]float64{want.T.X, want.T.Y, want.T.Z}
		for k := 0; k < 3; k++ {
			if tj[k].(float64) != wantT[k] {
				t.Fatalf("frame %d: served translation[%d] %v != %v", i, k, tj[k], wantT[k])
			}
		}
	}

	// Stats: one front-end preparation per frame.
	resp, err = client.Get(fmt.Sprintf("%s/v1/sessions/%s/stats", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if int(stats["frames_prepared"].(float64)) != frames {
		t.Fatalf("frames_prepared = %v, want %d", stats["frames_prepared"], frames)
	}

	// Delete the session; further pushes 404.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/sessions/%s", ts.URL, id), nil)
	resp, err = client.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = client.Get(fmt.Sprintf("%s/v1/sessions/%s/trajectory", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session still reachable: %d", resp.StatusCode)
	}
}

// TestServerConcurrentSessions runs several sessions at once — the
// multi-user shape the shared limiter exists for.
func TestServerConcurrentSessions(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	for u := 0; u < 3; u++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client := ts.Client()
			var created map[string]any
			postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{}, &created)
			id := created["id"].(string)
			seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, seed))
			for _, f := range seq.Frames {
				pushFrame(t, client, ts.URL, id, f, false)
			}
			traj := getTrajectory(t, client, ts.URL, id)
			if int(traj["frames"].(float64)) != 2 {
				t.Errorf("session %s: %v frames", id, traj["frames"])
			}
		}(int64(50 + u))
	}
	wg.Wait()
}

// TestServerRejectsBadInput covers the error paths.
func TestServerRejectsBadInput(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{"searcher": "quantum"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad searcher accepted: %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{"design_point": "DP99"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad design point accepted: %d", code)
	}
	resp, err := client.Post(ts.URL+"/v1/sessions/nope/frames", "text/plain", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("push to missing session: %d", resp.StatusCode)
	}
	var created map[string]any
	postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{}, &created)
	resp, err = client.Post(fmt.Sprintf("%s/v1/sessions/%s/frames", ts.URL, created["id"]), "text/plain", bytes.NewReader([]byte("not a cloud")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk frame accepted: %d", resp.StatusCode)
	}
}

// TestBackendsEndpointAndNamedSessions covers the registry surface: the
// backend listing, creating sessions by registry name (with options), and
// the error paths for unknown names and bad options.
func TestBackendsEndpointAndNamedSessions(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		Backends []string `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{"bruteforce", "canonical", "twostage", "twostage-approx"} {
		found := false
		for _, b := range reg.Backends {
			found = found || b == want
		}
		if !found {
			t.Errorf("/v1/backends = %v, missing %q", reg.Backends, want)
		}
	}

	// Named session with backend options, streamed end to end.
	var created map[string]any
	code := postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{
		"backend":         "twostage",
		"backend_options": map[string]any{"top_height": 3},
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("named create: status %d (%v)", code, created)
	}
	if created["backend"] != "twostage" {
		t.Fatalf("create response backend = %v", created["backend"])
	}
	id := created["id"].(string)
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 60))
	for _, f := range seq.Frames {
		pushFrame(t, client, ts.URL, id, f, false)
	}
	if traj := getTrajectory(t, client, ts.URL, id); int(traj["frames"].(float64)) != 2 {
		t.Fatalf("named session trajectory: %v", traj["frames"])
	}

	// Error paths: unknown name, unknown option key, trace without sink.
	for _, body := range []map[string]any{
		{"backend": "no-such-structure"},
		{"backend": "canonical", "backend_options": map[string]any{"tophight": 3}},
		{"backend": "trace"},
	} {
		var out map[string]any
		if code := postJSON(t, client, ts.URL+"/v1/sessions", body, &out); code != http.StatusBadRequest {
			t.Errorf("%v accepted with status %d (%v)", body, code, out)
		}
	}
}

// TestDefaultBackendConfig: the server-level default backend applies to
// sessions that pick nothing, and explicit requests still win.
func TestDefaultBackendConfig(t *testing.T) {
	srv := New(Config{DefaultBackend: "twostage"})
	defer srv.Close()

	cfg, err := srv.pipelineConfig(sessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Searcher.BackendName(); got != "twostage" {
		t.Errorf("default session backend = %q, want twostage", got)
	}
	cfg, err = srv.pipelineConfig(sessionRequest{Searcher: "canonical"})
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Searcher.BackendName(); got != "canonical" {
		t.Errorf("legacy searcher lost to server default: %q", got)
	}
	cfg, err = srv.pipelineConfig(sessionRequest{Backend: "bruteforce"})
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Searcher.BackendName(); got != "bruteforce" {
		t.Errorf("explicit backend lost to server default: %q", got)
	}
}

// TestSessionTTLEviction drives the idle janitor deterministically
// through EvictIdle, then checks the janitor goroutine sweeps on its own.
func TestSessionTTLEviction(t *testing.T) {
	const ttl = 50 * time.Millisecond
	srv := New(Config{SessionTTL: ttl})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	var created map[string]any
	postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{}, &created)
	id := created["id"].(string)

	// Within the TTL nothing is evicted.
	if ids := srv.EvictIdle(time.Now()); len(ids) != 0 {
		t.Fatalf("fresh session evicted: %v", ids)
	}
	// A request bumps the idle clock: sweeping at now+TTL (measured from
	// before the request) must keep the session.
	before := time.Now()
	if resp, err := client.Get(fmt.Sprintf("%s/v1/sessions/%s/stats", ts.URL, id)); err == nil {
		resp.Body.Close()
	}
	if ids := srv.EvictIdle(before.Add(ttl)); len(ids) != 0 {
		t.Fatalf("recently-used session evicted: %v", ids)
	}
	// Far beyond the TTL the session goes.
	ids := srv.EvictIdle(time.Now().Add(10 * ttl))
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("EvictIdle = %v, want [%s]", ids, id)
	}
	resp, err := client.Get(fmt.Sprintf("%s/v1/sessions/%s/stats", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still reachable: %d", resp.StatusCode)
	}

	// The background janitor evicts without manual sweeps. Polling would
	// bump the idle clock (every request does), so go fully idle past the
	// TTL, then check once; retry with longer idles in case the scheduler
	// starved the janitor.
	postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{}, &created)
	id2 := created["id"].(string)
	evicted := false
	for wait := 4 * ttl; wait <= 64*ttl && !evicted; wait *= 2 {
		time.Sleep(wait)
		resp, err := client.Get(fmt.Sprintf("%s/v1/sessions/%s/stats", ts.URL, id2))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		evicted = resp.StatusCode == http.StatusNotFound
	}
	if !evicted {
		t.Fatal("janitor did not evict the idle session")
	}
}

// TestEvictIdleSkipsBusySessions: a session still chewing through queued
// frames is busy on the client's behalf — the janitor must not destroy
// its uncommitted work no matter how stale its last request is. The
// server-level limiter is saturated so the pushed frame deterministically
// stays pending.
func TestEvictIdleSkipsBusySessions(t *testing.T) {
	// A long TTL keeps the background janitor out of the way; the test
	// drives EvictIdle with manual sweep times.
	const ttl = time.Hour
	srv := New(Config{MaxConcurrent: 1, SessionTTL: ttl})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	var created map[string]any
	postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{}, &created)
	id := created["id"].(string)

	srv.limiter <- struct{}{} // hold the only heavy-stage slot
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(1, 71))
	pushFrame(t, client, ts.URL, id, seq.Frames[0], false)

	if ids := srv.EvictIdle(time.Now().Add(100 * ttl)); len(ids) != 0 {
		t.Fatalf("busy session evicted: %v", ids)
	}

	<-srv.limiter // release; the frame commits
	if resp, err := client.Get(fmt.Sprintf("%s/v1/sessions/%s/trajectory?wait=1", ts.URL, id)); err == nil {
		resp.Body.Close()
	}
	ids := srv.EvictIdle(time.Now().Add(100 * ttl))
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("drained idle session not evicted: %v", ids)
	}
}
