package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"tigris/internal/geom"
	"tigris/internal/synth"
)

// TestPushOverloadRejects pins the overload contract the gateway and
// loadgen back off on: with MaxPending exceeded, a push is refused with
// 503, a positive integer Retry-After header, and a JSON body repeating
// the estimate.
func TestPushOverloadRejects(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, Parallelism: 1})
	defer srv.Close()
	// Force the guard: any pending work at all refuses the next push.
	srv.cfg.MaxPending = 1
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var created struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", map[string]any{"parallelism": 1}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 77))

	// Hold the server's only limiter slot so the engine cannot start
	// frame 0's front-end: the backlog deterministically stays at the
	// cap until we release it.
	srv.limiter.Acquire()

	// First push is admitted (nothing pending yet) and queues work.
	out := pushFrame(t, ts.Client(), ts.URL, created.ID, seq.Frames[0], false)
	if out["frame"].(float64) != 0 {
		t.Fatalf("first push got %v", out)
	}

	// With one frame stuck pending the backlog is at the cap of 1, so
	// the next push must be refused with the full overload shape.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+created.ID+"/frames", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("push under overload: status %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want positive integer seconds", ra)
	}
	var body struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("503 body not JSON: %v", err)
	}
	if body.Error == "" || body.RetryAfter != secs {
		t.Fatalf("503 body = %+v, want error text and retry_after_seconds == header %d", body, secs)
	}
	if srv.cOverloadReject.Value() < 1 {
		t.Fatalf("tigris_overload_rejected_total = %d, want >= 1", srv.cOverloadReject.Value())
	}

	// Release the slot: the backlog drains and pushes are admitted again.
	srv.limiter.Release()
	srv.Drain()
	out = pushFrame(t, ts.Client(), ts.URL, created.ID, seq.Frames[1], true)
	if out["frame"].(float64) != 1 {
		t.Fatalf("post-drain push got %v", out)
	}
}

// TestSessionOriginAnchorsTrajectory pins the re-shard anchor: a session
// created with an origin reports its first frame at that pose, and
// subsequent poses compose on top of it.
func TestSessionOriginAnchorsTrajectory(t *testing.T) {
	srv := New(Config{Parallelism: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	origin := geom.Transform{
		R: geom.Mat3{0, -1, 0, 1, 0, 0, 0, 0, 1}, // 90° yaw
		T: geom.Vec3{X: 3, Y: -2, Z: 0.5},
	}
	req := map[string]any{
		"parallelism": 1,
		"origin": map[string]any{
			"r": origin.R,
			"t": [3]float64{origin.T.X, origin.T.Y, origin.T.Z},
		},
	}
	var created struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", req, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 99))
	for _, f := range seq.Frames {
		pushFrame(t, ts.Client(), ts.URL, created.ID, f, true)
	}
	traj := getTrajectory(t, ts.Client(), ts.URL, created.ID)
	frames := traj["trajectory"].([]any)
	if len(frames) != 2 {
		t.Fatalf("trajectory has %d frames, want 2", len(frames))
	}
	pose0 := frames[0].(map[string]any)["pose"].(map[string]any)
	gotT := pose0["t"].([]any)
	for k, want := range []float64{origin.T.X, origin.T.Y, origin.T.Z} {
		if got := gotT[k].(float64); got != want {
			t.Fatalf("frame 0 pose t[%d] = %v, want %v", k, got, want)
		}
	}
	gotR := pose0["r"].([]any)
	for k := range origin.R {
		if got := gotR[k].(float64); got != origin.R[k] {
			t.Fatalf("frame 0 pose r[%d] = %v, want %v", k, got, origin.R[k])
		}
	}
}

// TestDrainWaitsForPending pins Server.Drain: after pushing without
// ?wait, Drain returns only once every frame is committed.
func TestDrainWaitsForPending(t *testing.T) {
	srv := New(Config{Parallelism: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var created struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", map[string]any{"parallelism": 1}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(3, 5))
	for _, f := range seq.Frames {
		pushFrame(t, ts.Client(), ts.URL, created.ID, f, false)
	}
	srv.Drain()
	if n := srv.totalPending(); n != 0 {
		t.Fatalf("pending after Drain = %d, want 0", n)
	}
	traj := getTrajectory(t, ts.Client(), ts.URL, created.ID)
	if got := traj["frames"].(float64); got != 3 {
		t.Fatalf("frames after Drain = %v, want 3", got)
	}
}
