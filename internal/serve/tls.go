package serve

import (
	"crypto/tls"
	"fmt"
	"os"
)

// TLSConfig carries the optional TLS serving material. Both paths must be
// set together: a cert without its key (or vice versa) is a deployment
// mistake worth failing fast on rather than silently serving plaintext.
type TLSConfig struct {
	// CertFile is the PEM server certificate (leaf first, then any
	// intermediates).
	CertFile string
	// KeyFile is the PEM private key matching CertFile.
	KeyFile string
}

// Enabled reports whether TLS serving was requested at all.
func (c TLSConfig) Enabled() bool { return c.CertFile != "" || c.KeyFile != "" }

// Validate checks the configuration without binding a socket: both paths
// present, both files readable, and the pair parseable as a matching
// certificate/key. A nil error with Enabled() false means plaintext.
func (c TLSConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.CertFile == "" {
		return fmt.Errorf("serve: -tls-key given without -tls-cert")
	}
	if c.KeyFile == "" {
		return fmt.Errorf("serve: -tls-cert given without -tls-key")
	}
	for _, f := range []string{c.CertFile, c.KeyFile} {
		if _, err := os.Stat(f); err != nil {
			return fmt.Errorf("serve: tls material: %w", err)
		}
	}
	if _, err := tls.LoadX509KeyPair(c.CertFile, c.KeyFile); err != nil {
		return fmt.Errorf("serve: tls key pair: %w", err)
	}
	return nil
}
