// Package serve implements the multi-user registration service behind
// cmd/tigris-serve: a stdlib net/http server where each session owns one
// streaming odometry engine (internal/stream) and every session shares a
// server-level concurrency limiter, so total CPU fan-out stays bounded
// no matter how many users stream frames at once — the serving idiom of
// long-lived sessions with queued requests and per-session state reuse.
//
// # Endpoints
//
//	GET    /healthz                        liveness probe
//	GET    /metrics                        Prometheus text exposition
//	GET    /debug/trace/{id}               session span tree (Chrome trace JSON)
//	GET    /v1/backends                    registered search-backend names
//	GET    /v1/buildinfo                   binary build/VCS identity (JSON)
//	POST   /v1/sessions                    create a session (JSON config)
//	POST   /v1/sessions/{id}/frames        push one TIGRIS-CLOUD frame
//	GET    /v1/sessions/{id}/trajectory    accumulated trajectory (JSON)
//	GET    /v1/sessions/{id}/loops         verified loop closures (JSON)
//	GET    /v1/sessions/{id}/stats         session work counters (JSON)
//	DELETE /v1/sessions/{id}               close and remove the session
//
// # Observability
//
// Telemetry is always on and allocation-free (internal/obs). Every
// session records per-stage latencies into its own recorder — surfaced
// as latency_ms percentiles on GET /v1/sessions/{id}/stats — teed into a
// server-global recorder published on GET /metrics as the
// tigris_stage_latency_seconds{stage=...} histogram family, alongside
// request/session/frame counters and limiter/queue-depth gauges.
// /metrics and /healthz stay outside the auth gate so probes and
// scrapers need no credentials. With Config.Logger set, every request is
// logged (method, route, session, status, bytes, duration).
//
// Tracing rides the same always-on telemetry: every session carries a
// trace id (minted at create, or adopted from an inbound W3C
// `traceparent` header — the gateway propagates its own) and a bounded
// flight recorder of span events; every session-scoped response echoes
// the id in an `X-Tigris-Trace` header, and GET /debug/trace/{id}
// exports the retained span tree as Chrome trace-event JSON (loadable
// in Perfetto), including the slowest-K exemplar trees per stage.
//
// Frame pushes return the assigned frame index immediately (the engine
// pipelines the heavy work); `?wait=1` on a push or trajectory request
// blocks until every pushed frame is committed. Sessions created with
// `"loop": {"enabled": true}` run the SLAM layer: the streaming engine's
// loop-closure stage verifies place-recognition candidates, and
// `?optimized=1` on the trajectory request returns the pose-graph
// optimized trajectory alongside the raw odometry.
//
// With Config.AuthToken set, every /v1/* endpoint requires
// `Authorization: Bearer <token>`; /healthz stays open for probes.
//
// Sessions hold prepared-frame state and a pair of pipeline goroutines
// for their whole life, so a real deployment must bound abandoned ones:
// with Config.SessionTTL set, a janitor evicts (closes and removes) any
// session that has not served a request for that long.
package serve

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/dse"
	"tigris/internal/geom"
	"tigris/internal/loop"
	"tigris/internal/obs"
	"tigris/internal/par"
	"tigris/internal/posegraph"
	"tigris/internal/registration"
	"tigris/internal/search"
	"tigris/internal/stream"
)

// stageLatencyFamily is the Prometheus family the pipeline's per-stage
// latency histograms publish under (one series per obs stage name).
const stageLatencyFamily = "tigris_stage_latency_seconds"

// maxFrameBytes bounds one uploaded frame (ASCII clouds run ~60 bytes
// per point, so this admits multi-million-point frames).
const maxFrameBytes = 256 << 20

// maxOptimizeFrames bounds the trajectory length ?optimized=1 will
// solve: the pose-graph solver is dense (O(N³) time, O(N²) memory — at
// 1000 frames the normal equations are ~290 MB), so longer sessions are
// refused instead of letting one request stall the limiter for minutes.
// A sparse solver is the lift that removes this cap (see ROADMAP).
const maxOptimizeFrames = 1000

// Config parameterizes the server.
type Config struct {
	// MaxConcurrent caps concurrent heavy stages (frame preparation and
	// pair alignment) across all sessions; <= 0 selects runtime CPUs.
	MaxConcurrent int
	// Parallelism is the default per-stage batch worker count for
	// sessions that do not set their own (0 = all CPUs).
	Parallelism int
	// DefaultBackend is the registry search-backend name for sessions
	// whose request names neither a backend nor a legacy searcher ("" =
	// canonical).
	DefaultBackend string
	// SessionTTL evicts sessions that have served no request for this
	// long (0 disables eviction). Sessions still processing queued
	// frames are never evicted, however long ago their last request was.
	SessionTTL time.Duration
	// AuthToken, when non-empty, requires `Authorization: Bearer <token>`
	// on every /v1/* endpoint (the minimal deployment guard the ROADMAP's
	// "serve lacks auth" follow-up asks for). /healthz stays open so
	// liveness probes need no credentials.
	AuthToken string
	// MaxPending, when > 0, bounds the total uncommitted frames across
	// all sessions: a push arriving with the backlog at the cap is
	// refused with 503 Service Unavailable instead of queueing behind an
	// unbounded wait. The response carries a Retry-After header and a
	// JSON body with the same estimate — derived from the observed
	// whole-frame p50 and the limiter capacity — so gateways and load
	// generators can back off on evidence rather than guesses.
	MaxPending int
	// Logger, when non-nil, receives one structured record per request
	// (method, route pattern, session id, status, bytes, duration). Routes
	// are normalized patterns, not raw paths, so log cardinality stays
	// bounded whatever clients send.
	Logger *slog.Logger
	// TraceCapacity bounds each session's flight-recorder ring (span
	// events retained; 0 selects 1024). Tracing is always on — the
	// recorder is allocation-free on the record path and deterministically
	// inert, so there is no off switch to reason about.
	TraceCapacity int
	// TraceSlowestK is the per-stage slowest-K exemplar retention
	// (0 selects 4).
	TraceSlowestK int
}

// traceCapacity resolves Config.TraceCapacity's default.
func (c Config) traceCapacity() int {
	if c.TraceCapacity > 0 {
		return c.TraceCapacity
	}
	return 1024
}

// traceSlowestK resolves Config.TraceSlowestK's default.
func (c Config) traceSlowestK() int {
	if c.TraceSlowestK > 0 {
		return c.TraceSlowestK
	}
	return 4
}

// session pairs an engine with its idle-eviction bookkeeping. lastUsed is
// guarded by the server mutex and bumped at the start of every request
// that touches the session.
type session struct {
	eng      *stream.Engine
	rec      *obs.Recorder       // per-session stage latencies, teed into the global recorder
	flight   *obs.FlightRecorder // bounded span ring behind /debug/trace/{id}
	trace    obs.TraceID         // the session's identity on every X-Tigris-Trace header
	lastUsed time.Time
}

// Server hosts the sessions. It implements http.Handler.
type Server struct {
	mux     *http.ServeMux
	limiter stream.Limiter
	cfg     Config

	// Telemetry: reg backs GET /metrics; globalRec is the published
	// recorder every session's recorder tees into, so /metrics carries
	// fleet-wide per-stage histograms while per-session percentiles go
	// out through the session's stats JSON.
	reg             *obs.Registry
	globalRec       *obs.Recorder
	cSessionsOpened *obs.Counter
	cSessionsClosed *obs.Counter
	cFramesPushed   *obs.Counter
	cPointsPushed   *obs.Counter
	cOverloadReject *obs.Counter

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int

	stopJanitor chan struct{} // nil when SessionTTL is 0 or after Close
}

// New creates a server with an empty session table and, when
// Config.SessionTTL is set, starts the idle-eviction janitor (stopped by
// Close).
func New(cfg Config) *Server {
	reg := obs.NewRegistry()
	s := &Server{
		mux:             http.NewServeMux(),
		limiter:         stream.NewLimiter(par.Workers(cfg.MaxConcurrent)),
		cfg:             cfg,
		reg:             reg,
		globalRec:       obs.NewPublishedRecorder(reg, stageLatencyFamily),
		cSessionsOpened: reg.Counter("tigris_sessions_created_total"),
		cSessionsClosed: reg.Counter("tigris_sessions_closed_total"),
		cFramesPushed:   reg.Counter("tigris_frames_pushed_total"),
		cPointsPushed:   reg.Counter("tigris_points_pushed_total"),
		cOverloadReject: reg.Counter("tigris_overload_rejected_total"),
		sessions:        make(map[string]*session),
	}
	// Scrape-time gauges: live values owned by the session table and the
	// limiter, computed fresh per scrape instead of mirrored on writes.
	reg.GaugeFunc("tigris_sessions_active", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.sessions))
	})
	reg.GaugeFunc("tigris_frames_pending", func() float64 {
		var n int
		for _, ses := range s.snapshotSessions() {
			n += ses.eng.Pending()
		}
		return float64(n)
	})
	reg.GaugeFunc("tigris_loop_closures_accepted", func() float64 {
		var n int64
		for _, ses := range s.snapshotSessions() {
			n += ses.eng.Stats().Loop.Accepted
		}
		return float64(n)
	})
	reg.GaugeFunc("tigris_limiter_in_use", func() float64 { return float64(len(s.limiter)) })
	reg.GaugeFunc("tigris_limiter_capacity", func() float64 { return float64(cap(s.limiter)) })
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	s.mux.HandleFunc("GET /v1/backends", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"backends": search.Backends()})
	})
	s.mux.HandleFunc("GET /v1/buildinfo", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, BuildInfo())
	})
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("POST /v1/sessions/{id}/frames", s.withSession(s.handlePush))
	s.mux.HandleFunc("GET /v1/sessions/{id}/trajectory", s.withSession(s.handleTrajectory))
	s.mux.HandleFunc("GET /v1/sessions/{id}/loops", s.withSession(s.handleLoops))
	s.mux.HandleFunc("GET /v1/sessions/{id}/stats", s.withSession(s.handleStats))
	s.mux.HandleFunc("GET /debug/trace/{id}", s.withSession(s.handleTrace))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	if cfg.SessionTTL > 0 {
		s.stopJanitor = make(chan struct{})
		go s.janitor(s.stopJanitor)
	}
	return s
}

// snapshotSessions copies the live session pointers so scrape-time
// aggregation can query engines without holding the server mutex.
func (s *Server) snapshotSessions() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		out = append(out, ses)
	}
	return out
}

// Metrics exposes the server's registry (the /metrics backing store) so
// embedding programs can add their own series or scrape in-process.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// BuildInfo reports the running binary's identity from the embedded
// build metadata: module path and version, Go toolchain, and — when the
// binary was built inside a checkout — VCS revision, commit time, and
// dirty flag. Served on GET /v1/buildinfo and printed by `tigris-serve
// -version`.
func BuildInfo() map[string]any {
	out := map[string]any{
		"go": runtime.Version(),
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out["module"] = bi.Main.Path
	if bi.Main.Version != "" {
		out["version"] = bi.Main.Version
	}
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision":
			out["revision"] = st.Value
		case "vcs.time":
			out["vcs_time"] = st.Value
		case "vcs.modified":
			out["dirty"] = st.Value == "true"
		}
	}
	return out
}

// statusWriter captures the response status and body size for the
// request log and the per-route request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// routeLabel normalizes a request path to its route pattern plus the
// session id (empty when the route has none). Patterns — never raw
// paths — feed the request counter's route label and the request log, so
// label cardinality stays bounded whatever clients send.
func routeLabel(path string) (route, sessionID string) {
	switch path {
	case "/healthz", "/metrics", "/v1/backends", "/v1/buildinfo", "/v1/sessions":
		return path, ""
	}
	if rest, ok := strings.CutPrefix(path, "/v1/sessions/"); ok {
		id, sub, _ := strings.Cut(rest, "/")
		switch sub {
		case "":
			return "/v1/sessions/{id}", id
		case "frames", "trajectory", "loops", "stats":
			return "/v1/sessions/{id}/" + sub, id
		}
	}
	if id, ok := strings.CutPrefix(path, "/debug/trace/"); ok && !strings.Contains(id, "/") {
		return "/debug/trace/{id}", id
	}
	return "other", ""
}

// ServeHTTP implements http.Handler: bearer-token auth on the /v1/*
// surface when Config.AuthToken is set (with /healthz and /metrics left
// open for probes and scrapers), a per-route/status request counter on
// the metrics registry, and one structured log record per request when
// Config.Logger is set.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.serveAuthed(sw, r)
	route, sid := routeLabel(r.URL.Path)
	s.reg.Counter(`tigris_http_requests_total{route="` + route + `",code="` + strconv.Itoa(sw.status) + `"}`).Inc()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("request",
			"method", r.Method,
			"route", route,
			"session", sid,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(time.Since(start).Microseconds())/1e3,
		)
	}
}

// serveAuthed enforces the bearer-token gate, then routes.
func (s *Server) serveAuthed(w http.ResponseWriter, r *http.Request) {
	if s.cfg.AuthToken != "" && strings.HasPrefix(r.URL.Path, "/v1/") {
		token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(token), []byte(s.cfg.AuthToken)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="tigris"`)
			httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

// Drain blocks until every live session has committed all pushed frames
// (and finished any queued loop-closure verifications). Graceful
// shutdown calls it after the HTTP listener stops accepting requests, so
// in-flight work lands in trajectories before Close tears the engines
// down — the worker half of the gateway's drain/re-shard story.
func (s *Server) Drain() {
	for _, ses := range s.snapshotSessions() {
		ses.eng.Drain()
	}
}

// Close stops the janitor and shuts every session down (used by tests and
// graceful shutdown).
func (s *Server) Close() {
	s.mu.Lock()
	if s.stopJanitor != nil {
		close(s.stopJanitor)
		s.stopJanitor = nil
	}
	engines := make([]*stream.Engine, 0, len(s.sessions))
	for _, ses := range s.sessions {
		engines = append(engines, ses.eng)
	}
	s.sessions = make(map[string]*session)
	s.mu.Unlock()
	for _, e := range engines {
		e.Close()
	}
}

// janitor periodically evicts idle sessions until Close.
func (s *Server) janitor(stop <-chan struct{}) {
	interval := s.cfg.SessionTTL / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			s.EvictIdle(now)
		}
	}
}

// EvictIdle closes and removes every session whose last request predates
// now − SessionTTL, returning the evicted ids. A session still working
// through queued frames is busy on the client's behalf, not idle —
// pipelined pushes return before the work is done — so sessions with
// uncommitted frames are skipped (this also keeps the sweep from
// blocking on a mid-drain Close). A no-op when SessionTTL is 0. Exposed
// so deployments (and tests) can force a sweep.
func (s *Server) EvictIdle(now time.Time) []string {
	if s.cfg.SessionTTL <= 0 {
		return nil
	}
	cutoff := now.Add(-s.cfg.SessionTTL)
	s.mu.Lock()
	var ids []string
	var engines []*stream.Engine
	for id, ses := range s.sessions {
		if ses.lastUsed.Before(cutoff) && ses.eng.Pending() == 0 {
			ids = append(ids, id)
			engines = append(engines, ses.eng)
			delete(s.sessions, id)
		}
	}
	s.mu.Unlock()
	for _, e := range engines {
		e.Close()
		s.cSessionsClosed.Inc()
	}
	return ids
}

// sessionRequest is the JSON body of POST /v1/sessions. All fields are
// optional; the zero value yields the balanced DP5 design point on the
// server's default backend with pipelining on.
type sessionRequest struct {
	// Backend is a registry search-backend name (GET /v1/backends lists
	// them). Wins over the legacy Searcher field.
	Backend string `json:"backend"`
	// BackendOptions carries backend-specific options (e.g.
	// {"top_height": 8, "nn_threshold": 1.0}); unknown keys are a 400.
	BackendOptions map[string]any `json:"backend_options"`
	// Searcher is the deprecated alias: "canonical", "twostage", or
	// "approx" (→ "twostage-approx").
	Searcher string `json:"searcher"`
	// DesignPoint picks a base configuration, "DP1".."DP8" (default DP5).
	DesignPoint string `json:"design_point"`
	// Parallelism pins the per-stage batch worker count (0 = server
	// default, 1 = sequential).
	Parallelism int `json:"parallelism"`
	// Pipelined overlaps a frame's front-end with the previous pair's
	// fine-tuning (default true; explicit false disables).
	Pipelined *bool `json:"pipelined"`
	// VoxelLeaf overrides the front-end downsampling leaf (< 0 disables
	// downsampling; 0 keeps the design point's value).
	VoxelLeaf *float64 `json:"voxel_leaf"`
	// Loop enables and tunes the SLAM layer's loop-closure stage.
	Loop *loopRequest `json:"loop"`
	// Origin, when set, anchors the session's first frame at the given
	// absolute pose instead of identity. The fleet gateway uses this to
	// re-shard a session under drain: the replacement session on the new
	// worker is created with origin = the last committed pose of its
	// predecessor, so the stitched trajectory stays continuous.
	Origin *wireTransform `json:"origin"`
}

// loopRequest is the JSON shape of the session's loop-closure options.
// Zero fields select the internal/loop defaults. Note that an enabled
// loop stage retains every pushed frame's cloud for verification, so
// session memory grows with stream length.
type loopRequest struct {
	Enabled bool `json:"enabled"`
	// Backend names the signature-index search backend ("" = canonical).
	Backend string `json:"backend"`
	// MinSeparation is the temporal gate in frames.
	MinSeparation int `json:"min_separation"`
	// MaxCandidates bounds proposals per frame.
	MaxCandidates int `json:"max_candidates"`
	// Cooldown suppresses proposals after an accepted closure.
	Cooldown int `json:"cooldown"`
	// EdgeWeight scales loop edges against odometry edges in the
	// optimized pose graph.
	EdgeWeight float64 `json:"edge_weight"`
}

// loopConfig resolves the request to the engine's loop configuration,
// validating the backend selection at the boundary (stream.New panics on
// invalid loop configs by contract).
func (lr *loopRequest) loopConfig() (*loop.Config, float64, error) {
	if lr == nil || !lr.Enabled {
		return nil, 0, nil
	}
	// The detector's defaults only replace zero values, so negative
	// knobs would disable the temporal gate/cooldown outright (every
	// frame verified against its predecessor); reject them here.
	if lr.MinSeparation < 0 || lr.MaxCandidates < 0 || lr.Cooldown < 0 || lr.EdgeWeight < 0 {
		return nil, 0, fmt.Errorf("loop options must be non-negative")
	}
	cfg := &loop.Config{
		Backend:       lr.Backend,
		MinSeparation: lr.MinSeparation,
		MaxCandidates: lr.MaxCandidates,
		Cooldown:      lr.Cooldown,
	}
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	return cfg, lr.EdgeWeight, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if r.Body != nil {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && err.Error() != "EOF" {
			httpError(w, http.StatusBadRequest, "bad session config: %v", err)
			return
		}
	}
	cfg, err := s.pipelineConfig(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pipelined := req.Pipelined == nil || *req.Pipelined
	loopCfg, loopWeight, err := req.Loop.loopConfig()
	if err != nil {
		httpError(w, http.StatusBadRequest, "loop config: %v", err)
		return
	}
	// The session records stage latencies into its own recorder (read
	// back as latency_ms on the stats endpoint) teed into the global
	// published recorder, so /metrics aggregates across sessions without
	// per-session label cardinality.
	var origin *geom.Transform
	if req.Origin != nil {
		tr := req.Origin.transform()
		origin = &tr
	}
	rec := obs.NewRecorder().Tee(s.globalRec)
	// The session's trace id: adopted from an inbound W3C traceparent
	// (the gateway propagates one per g-session) or minted fresh, stamped
	// on every span the flight recorder retains and echoed on every
	// response's X-Tigris-Trace header.
	trace, ok := obs.ParseTraceParent(r.Header.Get("traceparent"))
	if !ok {
		trace = obs.NewTraceID()
	}
	flight := obs.NewFlightRecorder(s.cfg.traceCapacity(), s.cfg.traceSlowestK())
	eng := stream.New(stream.Config{
		Pipeline:       cfg,
		Pipelined:      pipelined,
		Limiter:        s.limiter,
		Origin:         origin,
		Loop:           loopCfg,
		LoopEdgeWeight: loopWeight,
		Obs:            rec,
		Flight:         flight,
		Trace:          trace,
	})

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.sessions[id] = &session{eng: eng, rec: rec, flight: flight, trace: trace, lastUsed: time.Now()}
	s.mu.Unlock()
	s.cSessionsOpened.Inc()

	w.Header().Set("X-Tigris-Trace", trace.String())
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":        id,
		"pipelined": pipelined,
		"backend":   cfg.Searcher.BackendName(),
		"loop":      loopCfg != nil,
		"trace":     trace.String(),
	})
}

// backendName resolves the request's backend selection to a registry
// name: explicit Backend first, then the deprecated searcher aliases,
// then the server default.
func (s *Server) backendName(req sessionRequest) (string, error) {
	if req.Backend != "" {
		return req.Backend, nil
	}
	if req.Searcher == "" {
		if s.cfg.DefaultBackend != "" {
			return s.cfg.DefaultBackend, nil
		}
		return search.BackendCanonical, nil
	}
	if name, ok := registration.LegacySearcherName(req.Searcher); ok {
		return name, nil
	}
	return "", fmt.Errorf("unknown searcher %q (want canonical, twostage, or approx; or select by name with \"backend\")", req.Searcher)
}

// pipelineConfig resolves a session request to a registration config.
func (s *Server) pipelineConfig(req sessionRequest) (registration.PipelineConfig, error) {
	name := req.DesignPoint
	if name == "" {
		name = "DP5"
	}
	var cfg registration.PipelineConfig
	found := false
	for _, dp := range dse.NamedDesignPoints() {
		if dp.Name == name {
			cfg = dp.Config
			found = true
			break
		}
	}
	if !found {
		return cfg, fmt.Errorf("unknown design point %q (want DP1..DP8)", name)
	}
	backend, err := s.backendName(req)
	if err != nil {
		return cfg, err
	}
	cfg.Searcher.Backend = backend
	// Sessions index full frames: size two-stage leaf sets to ~128 points
	// unless the request pins a height through backend_options.
	cfg.Searcher.TopHeight = -1
	if req.BackendOptions != nil {
		cfg.Searcher.Options = search.Options(req.BackendOptions)
	}
	if req.Parallelism != 0 {
		cfg.Searcher.Parallelism = req.Parallelism
	} else if s.cfg.Parallelism != 0 {
		cfg.Searcher.Parallelism = s.cfg.Parallelism
	}
	if err := cfg.Searcher.Validate(); err != nil {
		return cfg, err
	}
	if req.VoxelLeaf != nil {
		if *req.VoxelLeaf < 0 {
			cfg.VoxelLeaf = 0
		} else if *req.VoxelLeaf > 0 {
			cfg.VoxelLeaf = *req.VoxelLeaf
		}
	}
	return cfg, nil
}

// withSession resolves the {id} path segment to its session, bumping the
// session's idle-eviction clock.
func (s *Server) withSession(fn func(http.ResponseWriter, *http.Request, *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ses, ok := s.sessions[r.PathValue("id")]
		if ok {
			ses.lastUsed = time.Now()
		}
		s.mu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
			return
		}
		// Every session-scoped response carries the session's trace id, so
		// any client (loadgen, the gateway, a curl) can jump from a slow
		// response to its span tree on /debug/trace/{id}.
		w.Header().Set("X-Tigris-Trace", ses.trace.String())
		fn(w, r, ses)
	}
}

// totalPending sums uncommitted frames across every live session.
func (s *Server) totalPending() int {
	var n int
	for _, ses := range s.snapshotSessions() {
		n += ses.eng.Pending()
	}
	return n
}

// retryAfterSeconds estimates how long a refused client should wait
// before retrying: the time for the limiter to work the backlog down to
// half the cap at the observed whole-frame p50 (1 s when no frame has
// been measured yet), clamped to [1 s, 60 s].
func (s *Server) retryAfterSeconds(pending int) int {
	capacity := cap(s.limiter)
	if capacity < 1 {
		capacity = 1
	}
	p50 := time.Second
	if sum, ok := s.globalRec.Summaries()[obs.StageFrame]; ok && sum.P50 > 0 {
		p50 = sum.P50
	}
	excess := pending - s.cfg.MaxPending/2
	if excess < 1 {
		excess = 1
	}
	secs := int(math.Ceil(p50.Seconds() * float64(excess) / float64(capacity)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// writeOverload emits the shared overload-rejection shape: a Retry-After
// header plus a JSON body repeating the estimate, so gateway retry and
// loadgen backoff can be driven by the server's own backlog model. The
// gateway's admission 429s mirror this shape.
func writeOverload(w http.ResponseWriter, status, retrySecs int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retrySecs))
	writeJSON(w, status, map[string]any{
		"error":               fmt.Sprintf(format, args...),
		"retry_after_seconds": retrySecs,
	})
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request, ses *session) {
	eng := ses.eng
	if s.cfg.MaxPending > 0 {
		if pending := s.totalPending(); pending >= s.cfg.MaxPending {
			s.cOverloadReject.Inc()
			writeOverload(w, http.StatusServiceUnavailable, s.retryAfterSeconds(pending),
				"server overloaded: %d frames pending (cap %d)", pending, s.cfg.MaxPending)
			return
		}
	}
	c, err := cloud.Read(http.MaxBytesReader(w, r.Body, maxFrameBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad frame: %v", err)
		return
	}
	start := time.Now()
	idx, err := eng.Push(c)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	s.cFramesPushed.Inc()
	s.cPointsPushed.Add(int64(c.Len()))
	resp := map[string]any{"frame": idx, "points": c.Len()}
	if wantWait(r) {
		eng.Drain()
		if fr, ok := eng.Frame(idx); ok {
			resp["pose"] = wireTransformOf(fr.Pose)
			resp["delta"] = wireTransformOf(fr.Delta)
		}
		resp["wall_ms"] = float64(time.Since(start).Microseconds()) / 1e3
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request, ses *session) {
	eng := ses.eng
	if wantWait(r) {
		eng.Drain()
	}
	traj := eng.Trajectory()
	resp := trajectoryResponse(traj)
	if optimized, _ := strconv.ParseBool(r.URL.Query().Get("optimized")); optimized {
		if traj.Len() > maxOptimizeFrames {
			httpError(w, http.StatusUnprocessableEntity,
				"session has %d frames; the dense pose-graph solver is capped at %d", traj.Len(), maxOptimizeFrames)
			return
		}
		// Pose-graph optimization over the session's odometry chain plus
		// its verified loop edges. Cheap for the no-closure case (the
		// graph is consistent); callers wanting every queued frame
		// reflected combine with ?wait=1. The solve is a heavy stage like
		// any other — it runs under the shared limiter with the server's
		// parallelism so -max-concurrent and -parallel govern it too.
		s.limiter.Acquire()
		poses, res, err := eng.OptimizedPoses(posegraph.Options{Parallelism: par.Workers(s.cfg.Parallelism)})
		s.limiter.Release()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "optimize: %v", err)
			return
		}
		opt := make([]wireTransform, len(poses))
		for i, p := range poses {
			opt[i] = wireTransformOf(p)
		}
		resp["optimized"] = opt
		resp["optimization"] = map[string]any{
			"initial_cost": res.InitialCost,
			"final_cost":   res.FinalCost,
			"iterations":   res.Iterations,
			"converged":    res.Converged,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// wireClosure is one verified loop closure in the loops response.
type wireClosure struct {
	From            int           `json:"from"`
	To              int           `json:"to"`
	Delta           wireTransform `json:"delta"`
	Inliers         int           `json:"inliers"`
	Correspondences int           `json:"correspondences"`
	RMSE            float64       `json:"rmse"`
	SignatureDist   float64       `json:"signature_dist"`
}

func (s *Server) handleLoops(w http.ResponseWriter, r *http.Request, ses *session) {
	eng := ses.eng
	if wantWait(r) {
		eng.Drain()
	}
	closures := eng.Closures()
	out := make([]wireClosure, len(closures))
	for i, cl := range closures {
		out[i] = wireClosure{
			From:            cl.From,
			To:              cl.To,
			Delta:           wireTransformOf(cl.Delta),
			Inliers:         cl.Inliers,
			Correspondences: cl.Correspondences,
			RMSE:            cl.RMSE,
			SignatureDist:   cl.SigDist,
		}
	}
	st := eng.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"closures": out,
		"stats": map[string]any{
			"observed": st.Loop.Observed,
			"proposed": st.Loop.Proposed,
			"verified": st.Loop.Verified,
			"accepted": st.Loop.Accepted,
			"loop_ms":  float64(st.LoopTime.Microseconds()) / 1e3,
		},
	})
}

// wireLatency is one stage's latency digest in the stats response.
type wireLatency struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// latencyDigest renders a recorder's per-stage summaries as
// milliseconds, keyed by obs stage name.
func latencyDigest(rec *obs.Recorder) map[string]wireLatency {
	sums := rec.Summaries()
	out := make(map[string]wireLatency, len(sums))
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	for stage, sum := range sums {
		out[stage] = wireLatency{
			Count: sum.Count,
			P50:   ms(sum.P50),
			P95:   ms(sum.P95),
			P99:   ms(sum.P99),
			Max:   ms(sum.Max),
		}
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, ses *session) {
	st := ses.eng.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"frames_pushed":     st.FramesPushed,
		"frames_prepared":   st.FramesPrepared,
		"pairs_aligned":     st.PairsAligned,
		"tree_builds":       st.TreeBuilds,
		"descriptor_builds": st.DescriptorBuilds,
		"search_queries":    st.Search.Queries,
		"nodes_visited":     st.Search.NodesVisited,
		"search_ms":         float64(st.Search.SearchTime.Microseconds()) / 1e3,
		"build_ms":          float64(st.Search.BuildTime.Microseconds()) / 1e3,
		"loops_proposed":    st.Loop.Proposed,
		"loops_verified":    st.Loop.Verified,
		"loops_accepted":    st.Loop.Accepted,
		"loop_ms":           float64(st.LoopTime.Microseconds()) / 1e3,
		"latency_ms":        latencyDigest(ses.rec),
	})
}

// handleTrace exports the session's retained span tree as Chrome
// trace-event JSON: the flight-recorder ring plus the slowest-K
// exemplar subtrees (which survive ring wrap), sorted by timestamp.
// Load the document in Perfetto (ui.perfetto.dev → "Open trace file")
// or chrome://tracing to see each frame's stage tree on its own track.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request, ses *session) {
	w.Header().Set("Content-Type", "application/json")
	meta := map[string]any{
		"session":  r.PathValue("id"),
		"trace_id": ses.trace.String(),
		"frames":   ses.eng.Trajectory().Len(),
	}
	_ = obs.WriteChromeTrace(w, ses.flight.Export(), meta)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ses, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	ses.eng.Close()
	s.cSessionsClosed.Inc()
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "frames": ses.eng.Trajectory().Len()})
}

// --- wire types ---------------------------------------------------------

// wireTransform is the JSON shape of a rigid transform: row-major 3×3
// rotation plus translation.
type wireTransform struct {
	R [9]float64 `json:"r"`
	T [3]float64 `json:"t"`
}

func wireTransformOf(tr geom.Transform) wireTransform {
	return wireTransform{R: [9]float64(tr.R), T: [3]float64{tr.T.X, tr.T.Y, tr.T.Z}}
}

// transform converts the wire shape back to a geom.Transform (the
// inverse of wireTransformOf; used by the session-origin field).
func (wt wireTransform) transform() geom.Transform {
	return geom.Transform{R: geom.Mat3(wt.R), T: geom.Vec3{X: wt.T[0], Y: wt.T[1], Z: wt.T[2]}}
}

// wireFrame is one frame's record in the trajectory response.
type wireFrame struct {
	Index   int           `json:"index"`
	Delta   wireTransform `json:"delta"`
	Pose    wireTransform `json:"pose"`
	PrepMs  float64       `json:"prep_ms"`
	AlignMs float64       `json:"align_ms"`
	// ICP convergence of the pair that produced Delta (frame 0: zeros).
	Iterations int     `json:"icp_iterations"`
	RMSE       float64 `json:"icp_rmse"`
}

func trajectoryResponse(traj stream.Trajectory) map[string]any {
	frames := make([]wireFrame, len(traj.Frames))
	for i, fr := range traj.Frames {
		frames[i] = wireFrame{
			Index:      fr.Index,
			Delta:      wireTransformOf(fr.Delta),
			Pose:       wireTransformOf(fr.Pose),
			PrepMs:     float64(fr.PrepTime.Microseconds()) / 1e3,
			AlignMs:    float64(fr.AlignTime.Microseconds()) / 1e3,
			Iterations: fr.Reg.ICP.Iterations,
			RMSE:       fr.Reg.ICP.FinalRMSE,
		}
	}
	return map[string]any{"frames": len(frames), "trajectory": frames}
}

func wantWait(r *http.Request) bool {
	v, _ := strconv.ParseBool(r.URL.Query().Get("wait"))
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
