package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tigris/internal/synth"
)

// fetch GETs a URL and returns the status and body.
func fetch(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint drives a session through the HTTP surface and
// asserts the scrape carries the activity: lifecycle counters, the
// per-route request counter, scrape-time gauges, and the per-stage
// latency histograms the session recorded.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	var created map[string]any
	if code := postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{"searcher": "canonical"}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	id := created["id"].(string)

	const frames = 2
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(frames, 61))
	for i, f := range seq.Frames {
		pushFrame(t, client, ts.URL, id, f, i == frames-1)
	}

	code, body := fetch(t, client, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE tigris_frames_pushed_total counter",
		"tigris_frames_pushed_total 2",
		"tigris_sessions_created_total 1",
		"tigris_sessions_active 1",
		"tigris_frames_pending 0",
		"tigris_limiter_capacity",
		`tigris_http_requests_total{route="/v1/sessions",code="201"} 1`,
		`tigris_http_requests_total{route="/v1/sessions/{id}/frames",code="202"} 2`,
		"# TYPE tigris_stage_latency_seconds histogram",
		`tigris_stage_latency_seconds_bucket{stage="frame",le="+Inf"} 2`,
		`tigris_stage_latency_seconds_count{stage="prep"} 2`,
		`tigris_stage_latency_seconds_count{stage="align"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}

	// Closing the session moves created -> closed and empties the gauge.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, body = fetch(t, client, ts.URL+"/metrics")
	for _, want := range []string{"tigris_sessions_closed_total 1", "tigris_sessions_active 0"} {
		if !strings.Contains(body, want) {
			t.Errorf("post-delete scrape missing %q", want)
		}
	}
}

// TestMetricsOpenUnderAuth: /metrics (like /healthz) must stay scrapeable
// without credentials when the /v1/* surface is token-gated.
func TestMetricsOpenUnderAuth(t *testing.T) {
	srv := New(Config{AuthToken: "hunter2"})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if code, _ := fetch(t, ts.Client(), ts.URL+"/metrics"); code != http.StatusOK {
		t.Fatalf("unauthenticated /metrics: status %d, want 200", code)
	}
	if code, _ := fetch(t, ts.Client(), ts.URL+"/v1/backends"); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/backends: status %d, want 401", code)
	}
}

// TestStatsLatencyDigest: the per-session stats JSON must carry the
// latency_ms percentiles for every pipeline stage the session ran.
func TestStatsLatencyDigest(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	var created map[string]any
	postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{"searcher": "canonical"}, &created)
	id := created["id"].(string)
	const frames = 3
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(frames, 62))
	for i, f := range seq.Frames {
		pushFrame(t, client, ts.URL, id, f, i == frames-1)
	}

	_, body := fetch(t, client, ts.URL+"/v1/sessions/"+id+"/stats")
	var stats struct {
		Latency map[string]struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
			P95   float64 `json:"p95"`
			P99   float64 `json:"p99"`
			Max   float64 `json:"max"`
		} `json:"latency_ms"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	for stage, wantCount := range map[string]int64{
		"frame": frames, "prep": frames, "align": frames - 1,
		"normal_estimation": frames, "kpce": frames - 1,
	} {
		d, ok := stats.Latency[stage]
		if !ok {
			t.Fatalf("latency_ms missing stage %q (got %v)", stage, stats.Latency)
		}
		if d.Count != wantCount {
			t.Errorf("stage %q count = %d, want %d", stage, d.Count, wantCount)
		}
		if d.P50 < 0 || d.P95 < d.P50 || d.P99 < d.P95 || d.Max < 0 {
			t.Errorf("stage %q digest not monotone: %+v", stage, d)
		}
	}
}

// TestBuildinfoEndpoint: build identity must be served as JSON with at
// least the Go toolchain filled in (VCS stamps depend on how the test
// binary was built).
func TestBuildinfoEndpoint(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	_, body := fetch(t, ts.Client(), ts.URL+"/v1/buildinfo")
	var bi struct {
		Go string `json:"go"`
	}
	if err := json.Unmarshal([]byte(body), &bi); err != nil {
		t.Fatal(err)
	}
	if bi.Go == "" {
		t.Fatalf("buildinfo has no go toolchain: %s", body)
	}
}

// TestRouteLabel pins the normalizer: every served path maps to a
// bounded route pattern, and junk never mints new labels.
func TestRouteLabel(t *testing.T) {
	cases := []struct {
		path, route, session string
	}{
		{"/healthz", "/healthz", ""},
		{"/metrics", "/metrics", ""},
		{"/v1/backends", "/v1/backends", ""},
		{"/v1/buildinfo", "/v1/buildinfo", ""},
		{"/v1/sessions", "/v1/sessions", ""},
		{"/v1/sessions/s7", "/v1/sessions/{id}", "s7"},
		{"/v1/sessions/s7/frames", "/v1/sessions/{id}/frames", "s7"},
		{"/v1/sessions/s7/trajectory", "/v1/sessions/{id}/trajectory", "s7"},
		{"/v1/sessions/s7/loops", "/v1/sessions/{id}/loops", "s7"},
		{"/v1/sessions/s7/stats", "/v1/sessions/{id}/stats", "s7"},
		{"/v1/sessions/s7/exfiltrate", "other", ""},
		{"/v1/sessions/s7/stats/deeper", "other", ""},
		{"/totally/unknown", "other", ""},
	}
	for _, c := range cases {
		route, session := routeLabel(c.path)
		if route != c.route || session != c.session {
			t.Errorf("routeLabel(%q) = (%q, %q), want (%q, %q)", c.path, route, session, c.route, c.session)
		}
	}
}

// TestRequestLogging: with a Logger configured, each request emits one
// structured record carrying the normalized route and outcome.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	locked := slog.New(slog.NewJSONHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), nil))
	srv := New(Config{Logger: locked})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	fetch(t, ts.Client(), ts.URL+"/healthz")
	fetch(t, ts.Client(), ts.URL+"/v1/sessions/nope/stats")

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("got %d log records, want 2:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	var rec struct {
		Msg     string  `json:"msg"`
		Method  string  `json:"method"`
		Route   string  `json:"route"`
		Session string  `json:"session"`
		Status  int     `json:"status"`
		Bytes   int     `json:"bytes"`
		Dur     float64 `json:"duration_ms"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Msg != "request" || rec.Method != "GET" || rec.Route != "/v1/sessions/{id}/stats" ||
		rec.Session != "nope" || rec.Status != http.StatusNotFound || rec.Bytes == 0 {
		t.Fatalf("log record %+v does not describe the 404 stats request", rec)
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestStatsPollingRace hammers the stats and metrics endpoints while
// frames stream in — the deployment pattern that used to read engine
// counters without synchronization. Meaningful under -race.
func TestStatsPollingRace(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	var created map[string]any
	postJSON(t, client, ts.URL+"/v1/sessions", map[string]any{"searcher": "canonical"}, &created)
	id := created["id"].(string)

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 2; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fetch(t, client, ts.URL+"/v1/sessions/"+id+"/stats")
					fetch(t, client, ts.URL+"/metrics")
				}
			}
		}()
	}

	const frames = 3
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(frames, 63))
	for i, f := range seq.Frames {
		pushFrame(t, client, ts.URL, id, f, i == frames-1)
	}
	close(stop)
	pollers.Wait()

	_, body := fetch(t, client, ts.URL+"/v1/sessions/"+id+"/stats")
	var stats struct {
		FramesPushed int64 `json:"frames_pushed"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.FramesPushed != frames {
		t.Fatalf("frames_pushed = %d, want %d", stats.FramesPushed, frames)
	}
}
