package synth

import (
	"math"

	"tigris/internal/cloud"
	"tigris/internal/geom"
)

// LidarConfig describes the spinning multi-beam sensor. Defaults model a
// Velodyne HDL-64E (the KITTI sensor, paper §6.1): 64 beams spanning +2°
// to -24.8° vertically, 360° azimuth sweep, ~120 m range, centimeter-level
// range noise.
type LidarConfig struct {
	// Beams is the number of vertical channels (default 64).
	Beams int
	// AzimuthSteps is the number of horizontal samples per revolution
	// (default 900, i.e. 0.4° resolution; the real sensor is ~0.17°, but
	// the default keeps frames around 35k points so tests and examples run
	// quickly. Raise it to ~2000 for full 130k-point frames).
	AzimuthSteps int
	// VertFOVUp and VertFOVDown are the beam elevation limits in degrees
	// (defaults +2.0 and -24.8).
	VertFOVUp, VertFOVDown float64
	// MaxRange in meters (default 120).
	MaxRange float64
	// RangeNoiseStd is the 1σ Gaussian range noise in meters (default 0.02).
	RangeNoiseStd float64
	// MountHeight is the sensor height above the vehicle origin in meters
	// (default 1.73, the HDL-64E mount height on the KITTI car).
	MountHeight float64
	// Seed drives the per-frame noise stream.
	Seed int64
}

func (c *LidarConfig) defaults() {
	if c.Beams == 0 {
		c.Beams = 64
	}
	if c.AzimuthSteps == 0 {
		c.AzimuthSteps = 900
	}
	if c.VertFOVUp == 0 && c.VertFOVDown == 0 {
		c.VertFOVUp = 2.0
		c.VertFOVDown = -24.8
	}
	if c.MaxRange == 0 {
		c.MaxRange = 120
	}
	if c.RangeNoiseStd == 0 {
		c.RangeNoiseStd = 0.02
	}
	if c.MountHeight == 0 {
		c.MountHeight = 1.73
	}
}

// Lidar scans a Scene from arbitrary poses.
type Lidar struct {
	cfg   LidarConfig
	scene *Scene
}

// NewLidar binds a sensor configuration to a scene.
func NewLidar(scene *Scene, cfg LidarConfig) *Lidar {
	cfg.defaults()
	return &Lidar{cfg: cfg, scene: scene}
}

// Config returns the effective (defaulted) configuration.
func (l *Lidar) Config() LidarConfig { return l.cfg }

// Scan captures one revolution from the given vehicle pose (vehicle → world
// transform) and returns the point cloud in the sensor frame, which is how
// real LiDAR drivers and KITTI deliver data. frameIndex decorrelates the
// noise stream between frames.
func (l *Lidar) Scan(pose geom.Transform, frameIndex int) *cloud.Cloud {
	cfg := l.cfg
	rng := newSplitMix(uint64(cfg.Seed)*0x9e3779b9 + uint64(frameIndex)*0x85ebca6b + 7)

	sensorOrigin := pose.Apply(geom.Vec3{Z: cfg.MountHeight})
	out := cloud.New(cfg.Beams * cfg.AzimuthSteps / 2)

	invPose := pose.Inverse()
	for beam := 0; beam < cfg.Beams; beam++ {
		frac := 0.0
		if cfg.Beams > 1 {
			frac = float64(beam) / float64(cfg.Beams-1)
		}
		elevDeg := cfg.VertFOVUp + frac*(cfg.VertFOVDown-cfg.VertFOVUp)
		elev := elevDeg * math.Pi / 180
		cosE, sinE := math.Cos(elev), math.Sin(elev)
		for step := 0; step < cfg.AzimuthSteps; step++ {
			az := 2 * math.Pi * float64(step) / float64(cfg.AzimuthSteps)
			// Direction in the vehicle frame, rotated to world by the pose.
			dirVehicle := geom.Vec3{
				X: cosE * math.Cos(az),
				Y: cosE * math.Sin(az),
				Z: sinE,
			}
			dirWorld := pose.ApplyDirection(dirVehicle)
			dist, ok := l.scene.Raycast(sensorOrigin, dirWorld, cfg.MaxRange)
			if !ok {
				continue
			}
			dist += rng.gaussian() * cfg.RangeNoiseStd
			if dist <= 0.5 { // discard self-returns
				continue
			}
			hitWorld := sensorOrigin.Add(dirWorld.Scale(dist))
			// Deliver in the vehicle/sensor frame.
			out.Points = append(out.Points, invPose.Apply(hitWorld))
		}
	}
	return out
}
