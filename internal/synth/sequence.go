package synth

import (
	"math"

	"tigris/internal/cloud"
	"tigris/internal/geom"
)

// Trajectory produces the vehicle pose (vehicle → world) at frame index i.
// Implementations must be deterministic.
type Trajectory interface {
	Pose(i int) geom.Transform
}

// DrivingTrajectory is a smooth forward drive down the street corridor with
// a gentle sinusoidal lane weave and yaw. It mimics the dominant motion
// pattern of the KITTI odometry car: mostly-forward translation around
// 0.5–1.5 m/frame with small rotations.
type DrivingTrajectory struct {
	// Speed is meters per frame along +X (default 1.0, i.e. ~36 km/h at
	// 10 Hz).
	Speed float64
	// WeaveAmplitude is lateral weave amplitude in meters (default 0.8).
	WeaveAmplitude float64
	// WeavePeriod is the weave period in frames (default 60).
	WeavePeriod float64
}

func (d DrivingTrajectory) params() (speed, amp, period float64) {
	speed = d.Speed
	if speed == 0 {
		speed = 1.0
	}
	amp = d.WeaveAmplitude
	if amp == 0 {
		amp = 0.8
	}
	period = d.WeavePeriod
	if period == 0 {
		period = 60
	}
	return speed, amp, period
}

// Pose implements Trajectory.
func (d DrivingTrajectory) Pose(i int) geom.Transform {
	speed, amp, period := d.params()
	t := float64(i)
	x := speed * t
	y := amp * math.Sin(2*math.Pi*t/period)
	// Heading follows the path tangent: dy/dx = amp·(2π/period)·cos(...) / speed.
	yaw := math.Atan2(amp*2*math.Pi/period*math.Cos(2*math.Pi*t/period), speed)
	return geom.Transform{
		R: geom.RotZ(yaw),
		T: geom.Vec3{X: x, Y: y, Z: 0},
	}
}

// CircuitTrajectory is a closed circular circuit inside the street: the
// vehicle drives one (or more) full laps and returns to its starting
// pose with the same heading, which is exactly the geometry a
// loop-closure detector needs — late frames are true revisits of early
// ones. The circle stays inside the facade lines for the default scene
// width, so every frame scans real structure.
type CircuitTrajectory struct {
	// Radius of the circuit in meters (default 4; keep below the scene's
	// HalfWidth/2 so the vehicle stays on the street).
	Radius float64
	// FramesPerLap is the number of frames per full revolution (default
	// 40).
	FramesPerLap int
	// CenterX shifts the circuit along the street (default 0: the lap
	// starts at the origin heading +X and curls left).
	CenterX float64
}

func (c CircuitTrajectory) params() (r float64, perLap int, cx float64) {
	r = c.Radius
	if r == 0 {
		r = 4
	}
	perLap = c.FramesPerLap
	if perLap == 0 {
		perLap = 40
	}
	// CenterX needs no default: zero means the lap starts at the origin.
	return r, perLap, c.CenterX
}

// Pose implements Trajectory: frame i sits at angle 2π·i/FramesPerLap
// around the circle, heading along the tangent. Pose(FramesPerLap) is
// exactly Pose(0) — the ground-truth loop.
func (c CircuitTrajectory) Pose(i int) geom.Transform {
	r, perLap, cx := c.params()
	theta := 2 * math.Pi * float64(i) / float64(perLap)
	return geom.Transform{
		R: geom.RotZ(theta),
		T: geom.Vec3{X: cx + r*math.Sin(theta), Y: r - r*math.Cos(theta), Z: 0},
	}
}

// DriftDeltas applies a deterministic drift model to a sequence of
// odometry deltas, simulating the calibration-style error that
// accumulates unboundedly in pairwise odometry (the failure mode loop
// closure + pose-graph optimization exist to fix): every step's
// translation is scaled by scale and its rotation is pre-multiplied by a
// yaw bias of yawRad radians. The input is not modified.
func DriftDeltas(deltas []geom.Transform, yawRad, scale float64) []geom.Transform {
	if scale == 0 {
		scale = 1
	}
	bias := geom.RotZ(yawRad)
	out := make([]geom.Transform, len(deltas))
	for i, d := range deltas {
		out[i] = geom.Transform{R: bias.Mul(d.R), T: d.T.Scale(scale)}
	}
	return out
}

// Sequence is a generated dataset: frames in sensor coordinates plus
// ground-truth poses, mirroring the KITTI odometry layout.
type Sequence struct {
	Frames []*cloud.Cloud
	Poses  []geom.Transform
}

// SequenceConfig bundles everything needed to generate a sequence.
type SequenceConfig struct {
	Scene      SceneConfig
	Lidar      LidarConfig
	Trajectory Trajectory
	NumFrames  int
}

// GenerateSequence renders NumFrames LiDAR frames along the trajectory.
// A nil Trajectory defaults to DrivingTrajectory{}.
func GenerateSequence(cfg SequenceConfig) *Sequence {
	if cfg.NumFrames <= 0 {
		cfg.NumFrames = 2
	}
	if cfg.Trajectory == nil {
		cfg.Trajectory = DrivingTrajectory{}
	}
	scene := GenerateScene(cfg.Scene)
	lidar := NewLidar(scene, cfg.Lidar)

	seq := &Sequence{
		Frames: make([]*cloud.Cloud, cfg.NumFrames),
		Poses:  make([]geom.Transform, cfg.NumFrames),
	}
	for i := 0; i < cfg.NumFrames; i++ {
		pose := cfg.Trajectory.Pose(i)
		seq.Poses[i] = pose
		seq.Frames[i] = lidar.Scan(pose, i)
	}
	return seq
}

// GroundTruthDelta returns the true transform that registers frame i+1's
// sensor frame onto frame i's sensor frame. With registration output M, a
// point X in frame i+1 maps to M·X in frame i; this is the matrix the
// pipeline is supposed to estimate (paper §2.2: registering consecutive
// frames yields the odometry step).
func (s *Sequence) GroundTruthDelta(i int) geom.Transform {
	return s.Poses[i].Inverse().Compose(s.Poses[i+1])
}

// Len returns the number of frames in the sequence.
func (s *Sequence) Len() int { return len(s.Frames) }

// EvalSequenceConfig returns the configuration the experiment drivers use:
// a 32-beam sensor at 0.6° azimuth resolution (~18k points/frame). Dense
// enough that voxel downsampling breaks the sensor-anchored ring pattern
// (as it does on real 64-beam KITTI frames) while keeping full-pipeline
// runs to well under a second per frame pair.
func EvalSequenceConfig(frames int, seed int64) SequenceConfig {
	return SequenceConfig{
		Scene: SceneConfig{Seed: seed, Length: 120},
		Lidar: LidarConfig{
			Beams:        32,
			AzimuthSteps: 600,
			Seed:         seed,
		},
		NumFrames: frames,
	}
}

// QuickSequenceConfig returns a configuration sized for fast tests and
// examples: a 16-beam, low-azimuth-resolution sensor over a short street,
// producing a few thousand points per frame. The structural mix (ground,
// facades, poles, cars) matches the full-size default.
func QuickSequenceConfig(frames int, seed int64) SequenceConfig {
	return SequenceConfig{
		Scene: SceneConfig{Seed: seed, Length: 120},
		Lidar: LidarConfig{
			Beams:        16,
			AzimuthSteps: 300,
			Seed:         seed,
		},
		NumFrames: frames,
	}
}
