// Package synth is the dataset substrate: a procedural urban scene plus a
// spinning multi-beam LiDAR model that together substitute for the KITTI
// Odometry dataset used by the paper (§6.1).
//
// KITTI frames come from a Velodyne HDL-64E: 64 laser beams spinning at
// 10 Hz, ~130k points per revolution, dominated by a ground plane, building
// facades, poles, and parked vehicles, with range noise of a few
// centimeters. This package ray-casts exactly that structure against a
// procedurally generated street scene and returns frames in the sensor
// coordinate system together with ground-truth poses, so the KITTI-style
// translational (%) and rotational (deg/m) error metrics are computable.
// See DESIGN.md, substitution 1.
package synth

import (
	"math"

	"tigris/internal/geom"
)

// primitive is anything a LiDAR ray can hit.
type primitive interface {
	// intersect returns the smallest t > 0 with origin + t·dir on the
	// surface, and whether such t exists. dir is unit length.
	intersect(origin, dir geom.Vec3) (float64, bool)
}

// groundPlane is the z = Height plane (infinite extent).
type groundPlane struct {
	Height float64
}

func (g groundPlane) intersect(origin, dir geom.Vec3) (float64, bool) {
	if math.Abs(dir.Z) < 1e-12 {
		return 0, false
	}
	t := (g.Height - origin.Z) / dir.Z
	if t <= 1e-9 {
		return 0, false
	}
	return t, true
}

// box is an axis-aligned solid; rays hit its surface (slab method).
type box struct {
	B geom.Aabb
}

func (b box) intersect(origin, dir geom.Vec3) (float64, bool) {
	tmin := math.Inf(-1)
	tmax := math.Inf(1)
	for axis := 0; axis < 3; axis++ {
		o := origin.Component(axis)
		d := dir.Component(axis)
		lo := b.B.Min.Component(axis)
		hi := b.B.Max.Component(axis)
		if math.Abs(d) < 1e-12 {
			if o < lo || o > hi {
				return 0, false
			}
			continue
		}
		t1 := (lo - o) / d
		t2 := (hi - o) / d
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tmin {
			tmin = t1
		}
		if t2 < tmax {
			tmax = t2
		}
		if tmin > tmax {
			return 0, false
		}
	}
	if tmax <= 1e-9 {
		return 0, false
	}
	if tmin > 1e-9 {
		return tmin, true
	}
	// Origin inside the box: report the exit point.
	return tmax, true
}

// cylinder is a vertical capped cylinder (poles, tree trunks).
type cylinder struct {
	Center geom.Vec3 // center of the base
	Radius float64
	Height float64
}

func (c cylinder) intersect(origin, dir geom.Vec3) (float64, bool) {
	// Project to the XY plane: |o + t·d - c|² = r².
	ox := origin.X - c.Center.X
	oy := origin.Y - c.Center.Y
	a := dir.X*dir.X + dir.Y*dir.Y
	if a < 1e-15 {
		return 0, false // vertical ray; ignore cap hits for simplicity
	}
	b := 2 * (ox*dir.X + oy*dir.Y)
	cc := ox*ox + oy*oy - c.Radius*c.Radius
	disc := b*b - 4*a*cc
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	for _, t := range [2]float64{(-b - sq) / (2 * a), (-b + sq) / (2 * a)} {
		if t <= 1e-9 {
			continue
		}
		z := origin.Z + t*dir.Z
		if z >= c.Center.Z && z <= c.Center.Z+c.Height {
			return t, true
		}
	}
	return 0, false
}

// Scene is a collection of primitives a LiDAR can scan. Scenes are
// generated deterministically from a seed so every experiment is
// reproducible.
type Scene struct {
	prims []primitive
}

// NumPrimitives returns the number of objects in the scene (including the
// ground plane).
func (s *Scene) NumPrimitives() int { return len(s.prims) }

// Raycast finds the nearest surface along the ray within maxRange.
func (s *Scene) Raycast(origin, dir geom.Vec3, maxRange float64) (float64, bool) {
	best := maxRange
	hit := false
	for _, p := range s.prims {
		if t, ok := p.intersect(origin, dir); ok && t < best {
			best = t
			hit = true
		}
	}
	return best, hit
}

// SceneConfig controls procedural street generation.
type SceneConfig struct {
	Seed int64
	// Length of the street corridor along +X in meters (default 240).
	Length float64
	// HalfWidth is the distance from the street center line to the
	// building facades (default 12 m).
	HalfWidth float64
	// BuildingDensity in buildings per 10 m of street per side (default 0.8).
	BuildingDensity float64
	// PoleSpacing between street-side poles in meters (default 18).
	PoleSpacing float64
	// CarDensity in parked cars per 10 m per side (default 0.35).
	CarDensity float64
}

func (c *SceneConfig) defaults() {
	if c.Length == 0 {
		c.Length = 240
	}
	if c.HalfWidth == 0 {
		c.HalfWidth = 12
	}
	if c.BuildingDensity == 0 {
		c.BuildingDensity = 0.8
	}
	if c.PoleSpacing == 0 {
		c.PoleSpacing = 18
	}
	if c.CarDensity == 0 {
		c.CarDensity = 0.35
	}
}

// GenerateScene builds a deterministic street scene: ground plane, building
// facades lining both sides, poles, and parked cars. The mix mirrors what a
// KITTI residential/road sequence contains, which is what gives LiDAR
// clouds their characteristic structure: a huge dense ground region plus
// vertical structure at mid ranges.
func GenerateScene(cfg SceneConfig) *Scene {
	cfg.defaults()
	rng := newSplitMix(uint64(cfg.Seed)*2654435761 + 12345)

	s := &Scene{}
	s.prims = append(s.prims, groundPlane{Height: 0})

	// Buildings: axis-aligned boxes hugging both facade lines, with random
	// footprints, gaps, and heights. The corridor extends a bit behind the
	// start so early frames see structure in every direction.
	for side := 0; side < 2; side++ {
		ysign := 1.0
		if side == 1 {
			ysign = -1.0
		}
		x := -40.0
		for x < cfg.Length {
			gap := 2 + rng.float()*10/(cfg.BuildingDensity+0.01)
			width := 8 + rng.float()*18
			depth := 6 + rng.float()*10
			height := 5 + rng.float()*18
			setback := rng.float() * 3
			yNear := (cfg.HalfWidth + setback) * ysign
			yFar := yNear + depth*ysign
			lo := geom.Vec3{X: x, Y: math.Min(yNear, yFar), Z: 0}
			hi := geom.Vec3{X: x + width, Y: math.Max(yNear, yFar), Z: height}
			s.prims = append(s.prims, box{B: geom.Aabb{Min: lo, Max: hi}})
			x += width + gap
		}
	}

	// Poles: thin cylinders just inside the facade line.
	for side := 0; side < 2; side++ {
		ysign := 1.0
		if side == 1 {
			ysign = -1.0
		}
		for x := -30.0; x < cfg.Length; x += cfg.PoleSpacing {
			jitter := (rng.float() - 0.5) * 4
			s.prims = append(s.prims, cylinder{
				Center: geom.Vec3{X: x + jitter, Y: (cfg.HalfWidth - 1.5) * ysign, Z: 0},
				Radius: 0.12 + rng.float()*0.1,
				Height: 5 + rng.float()*3,
			})
		}
	}

	// Parked cars: boxes roughly 4.2×1.8×1.5 near the curbs.
	for side := 0; side < 2; side++ {
		ysign := 1.0
		if side == 1 {
			ysign = -1.0
		}
		x := -30.0
		for x < cfg.Length {
			gap := 3 + rng.float()*10/(cfg.CarDensity+0.01)
			if rng.float() < 0.7 {
				cx := x
				cy := (cfg.HalfWidth - 3.2) * ysign
				lo := geom.Vec3{X: cx, Y: cy - 0.9, Z: 0.15}
				hi := geom.Vec3{X: cx + 4.2, Y: cy + 0.9, Z: 1.6}
				s.prims = append(s.prims, box{B: geom.Aabb{Min: lo, Max: hi}})
			}
			x += 4.2 + gap
		}
	}

	return s
}

// splitMix is a tiny deterministic PRNG (SplitMix64) used for scene
// generation and sensor noise so that frames are reproducible across
// platforms without importing math/rand state semantics.
type splitMix struct {
	state uint64
}

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (s *splitMix) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// gaussian returns a standard normal sample (Box–Muller).
func (s *splitMix) gaussian() float64 {
	u1 := s.float()
	for u1 == 0 {
		u1 = s.float()
	}
	u2 := s.float()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
