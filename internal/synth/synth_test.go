package synth

import (
	"math"
	"sort"
	"testing"

	"tigris/internal/geom"
)

func TestGroundPlaneIntersect(t *testing.T) {
	g := groundPlane{Height: 0}
	// Ray from (0,0,2) pointing down at 45° in XZ.
	dir := geom.Vec3{X: 1, Z: -1}.Normalize()
	d, ok := g.intersect(geom.Vec3{Z: 2}, dir)
	if !ok {
		t.Fatal("expected hit")
	}
	if math.Abs(d-2*math.Sqrt2) > 1e-9 {
		t.Errorf("distance = %v", d)
	}
	// Horizontal ray misses.
	if _, ok := g.intersect(geom.Vec3{Z: 2}, geom.Vec3{X: 1}); ok {
		t.Error("horizontal ray should miss plane")
	}
	// Upward ray misses.
	if _, ok := g.intersect(geom.Vec3{Z: 2}, geom.Vec3{Z: 1}); ok {
		t.Error("upward ray should miss ground")
	}
}

func TestBoxIntersect(t *testing.T) {
	b := box{B: geom.Aabb{Min: geom.Vec3{X: 2, Y: -1, Z: 0}, Max: geom.Vec3{X: 4, Y: 1, Z: 2}}}
	d, ok := b.intersect(geom.Vec3{Z: 1}, geom.Vec3{X: 1})
	if !ok || math.Abs(d-2) > 1e-9 {
		t.Fatalf("front face hit = %v, %v", d, ok)
	}
	// Miss above.
	if _, ok := b.intersect(geom.Vec3{Z: 5}, geom.Vec3{X: 1}); ok {
		t.Error("ray above box should miss")
	}
	// Ray pointing away.
	if _, ok := b.intersect(geom.Vec3{Z: 1}, geom.Vec3{X: -1}); ok {
		t.Error("ray pointing away should miss")
	}
	// Origin inside: reports exit.
	d, ok = b.intersect(geom.Vec3{X: 3, Y: 0, Z: 1}, geom.Vec3{X: 1})
	if !ok || math.Abs(d-1) > 1e-9 {
		t.Errorf("inside-box exit = %v, %v", d, ok)
	}
}

func TestCylinderIntersect(t *testing.T) {
	c := cylinder{Center: geom.Vec3{X: 5}, Radius: 1, Height: 4}
	d, ok := c.intersect(geom.Vec3{Z: 1}, geom.Vec3{X: 1})
	if !ok || math.Abs(d-4) > 1e-9 {
		t.Fatalf("cylinder hit = %v, %v", d, ok)
	}
	// Above the cap: miss.
	if _, ok := c.intersect(geom.Vec3{Z: 10}, geom.Vec3{X: 1}); ok {
		t.Error("ray above cylinder should miss")
	}
	// Tangent-ish offset ray misses.
	if _, ok := c.intersect(geom.Vec3{Y: 3, Z: 1}, geom.Vec3{X: 1}); ok {
		t.Error("offset ray should miss")
	}
	// Vertical ray is ignored by design.
	if _, ok := c.intersect(geom.Vec3{X: 5, Z: 10}, geom.Vec3{Z: -1}); ok {
		t.Error("vertical ray should be ignored")
	}
}

func TestSceneDeterminism(t *testing.T) {
	a := GenerateScene(SceneConfig{Seed: 42})
	b := GenerateScene(SceneConfig{Seed: 42})
	if a.NumPrimitives() != b.NumPrimitives() {
		t.Fatalf("same seed produced %d vs %d primitives", a.NumPrimitives(), b.NumPrimitives())
	}
	c := GenerateScene(SceneConfig{Seed: 43})
	// Different seeds should (overwhelmingly) differ somewhere; compare a
	// raycast fingerprint.
	origin := geom.Vec3{Z: 1.7}
	same := true
	for az := 0.0; az < 2*math.Pi; az += 0.1 {
		dir := geom.Vec3{X: math.Cos(az), Y: math.Sin(az), Z: -0.05}.Normalize()
		da, oka := a.Raycast(origin, dir, 120)
		dc, okc := c.Raycast(origin, dir, 120)
		if oka != okc || math.Abs(da-dc) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical raycast fingerprints")
	}
}

func TestSceneRaycastHitsGround(t *testing.T) {
	s := GenerateScene(SceneConfig{Seed: 1})
	// Steep downward ray must hit the ground (or something nearer).
	d, ok := s.Raycast(geom.Vec3{Z: 1.7}, geom.Vec3{X: 0.1, Z: -1}.Normalize(), 120)
	if !ok {
		t.Fatal("downward ray should hit")
	}
	if d > 3 {
		t.Errorf("downward hit at %v m, expected under 3 m", d)
	}
}

func TestLidarScanProducesPlausibleFrame(t *testing.T) {
	scene := GenerateScene(SceneConfig{Seed: 7, Length: 120})
	lidar := NewLidar(scene, LidarConfig{Beams: 16, AzimuthSteps: 300, Seed: 7})
	frame := lidar.Scan(geom.IdentityTransform(), 0)
	if frame.Len() < 1000 {
		t.Fatalf("frame too sparse: %d points", frame.Len())
	}
	if err := frame.Validate(); err != nil {
		t.Fatal(err)
	}
	// All points within max range of the sensor (at the mount height).
	sensor := geom.Vec3{Z: lidar.Config().MountHeight}
	for _, p := range frame.Points {
		if p.Dist(sensor) > lidar.Config().MaxRange+1 {
			t.Fatalf("point %v beyond max range", p)
		}
	}
	// The ground should dominate: a large fraction of points near z ≈
	// -MountHeight in the sensor frame... but points are in vehicle frame
	// with ground at z=0. Count points near the ground plane.
	ground := 0
	for _, p := range frame.Points {
		if math.Abs(p.Z) < 0.15 {
			ground++
		}
	}
	if frac := float64(ground) / float64(frame.Len()); frac < 0.2 {
		t.Errorf("ground fraction = %.2f, expected LiDAR frames to be ground-dominated", frac)
	}
}

func TestLidarDeterministicPerFrameIndex(t *testing.T) {
	scene := GenerateScene(SceneConfig{Seed: 3})
	lidar := NewLidar(scene, LidarConfig{Beams: 8, AzimuthSteps: 100, Seed: 3})
	a := lidar.Scan(geom.IdentityTransform(), 5)
	b := lidar.Scan(geom.IdentityTransform(), 5)
	if a.Len() != b.Len() {
		t.Fatal("same frame index produced different point counts")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("same frame index produced different points")
		}
	}
	c := lidar.Scan(geom.IdentityTransform(), 6)
	if a.Len() == c.Len() {
		identical := true
		for i := range a.Points {
			if a.Points[i] != c.Points[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different frame indices produced identical noise")
		}
	}
}

func TestDrivingTrajectorySmooth(t *testing.T) {
	tr := DrivingTrajectory{}
	for i := 0; i < 100; i++ {
		p0 := tr.Pose(i)
		p1 := tr.Pose(i + 1)
		delta := p0.Inverse().Compose(p1)
		step := delta.TranslationNorm()
		if step < 0.5 || step > 2.0 {
			t.Fatalf("frame %d: step %v m out of plausible range", i, step)
		}
		if delta.RotationAngle() > 0.2 {
			t.Fatalf("frame %d: rotation %v rad too large", i, delta.RotationAngle())
		}
	}
}

func TestGroundTruthDeltaConsistency(t *testing.T) {
	seq := GenerateSequence(QuickSequenceConfig(3, 11))
	if seq.Len() != 3 {
		t.Fatalf("Len = %d", seq.Len())
	}
	// Composing pose(i) with the delta must give pose(i+1).
	for i := 0; i < 2; i++ {
		composed := seq.Poses[i].Compose(seq.GroundTruthDelta(i))
		if !composed.NearlyEqual(seq.Poses[i+1], 1e-9) {
			t.Fatalf("delta composition mismatch at frame %d", i)
		}
	}
}

func TestGroundTruthDeltaAlignsFrames(t *testing.T) {
	// Key property used by every registration experiment: applying the
	// ground-truth delta to frame i+1's points expresses them in frame i's
	// coordinate system, i.e. a noiseless static scene would overlap.
	cfg := QuickSequenceConfig(2, 5)
	cfg.Lidar.RangeNoiseStd = 1e-9 // effectively noise-free
	seq := GenerateSequence(cfg)
	delta := seq.GroundTruthDelta(0)
	moved := seq.Frames[1].Transform(delta)

	// The ground plane and the street-parallel facades slide along
	// themselves under forward motion, so unaligned frames trivially
	// overlap there. Check the alignment on *structure* points (above the
	// ground, near the sensor) where residuals are informative, and verify
	// that a deliberately wrong transform scores much worse.
	medianNN := func(pts []geom.Vec3) float64 {
		var ds []float64
		for i := 0; i < len(pts); i += 17 {
			p := pts[i]
			if p.Norm() > 25 || math.Abs(p.Z) < 0.3 {
				continue
			}
			best := math.Inf(1)
			for _, q := range seq.Frames[0].Points {
				if d := p.Dist2(q); d < best {
					best = d
				}
			}
			ds = append(ds, math.Sqrt(best))
		}
		sort.Float64s(ds)
		return ds[len(ds)/2]
	}
	aligned := medianNN(moved.Points)
	if aligned > 0.3 {
		t.Errorf("median aligned structure residual = %.3f m, expected near-overlap", aligned)
	}
	wrongDelta := geom.Transform{R: delta.R, T: delta.T.Add(geom.Vec3{Y: 2})}
	misaligned := medianNN(seq.Frames[1].Transform(wrongDelta).Points)
	if misaligned < aligned*2 {
		t.Errorf("wrong transform should score much worse: aligned %.3f vs wrong %.3f", aligned, misaligned)
	}
}

func TestSplitMixDistribution(t *testing.T) {
	rng := newSplitMix(99)
	var sum, sum2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		g := rng.gaussian()
		sum += g
		sum2 += g * g
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("gaussian mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("gaussian variance = %v", variance)
	}
	// Uniform sanity.
	rng2 := newSplitMix(7)
	for i := 0; i < 1000; i++ {
		f := rng2.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
	}
}

func TestSceneConfigKnobs(t *testing.T) {
	base := GenerateScene(SceneConfig{Seed: 1})
	dense := GenerateScene(SceneConfig{Seed: 1, CarDensity: 3, PoleSpacing: 6, BuildingDensity: 2})
	if dense.NumPrimitives() <= base.NumPrimitives() {
		t.Errorf("denser knobs produced %d primitives vs base %d", dense.NumPrimitives(), base.NumPrimitives())
	}
	long := GenerateScene(SceneConfig{Seed: 1, Length: 500})
	if long.NumPrimitives() <= base.NumPrimitives() {
		t.Error("longer street should have more primitives")
	}
}

func TestEvalSequenceConfigScale(t *testing.T) {
	seq := GenerateSequence(EvalSequenceConfig(2, 77))
	if seq.Frames[0].Len() < 10000 {
		t.Errorf("eval frames too sparse: %d points", seq.Frames[0].Len())
	}
	if err := seq.Frames[0].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLidarBeamGeometry(t *testing.T) {
	// Beam elevations must span the configured FOV: the top beam looks
	// slightly up (hits tall facades), the bottom steeply down (hits
	// ground near the vehicle).
	scene := GenerateScene(SceneConfig{Seed: 2})
	lidar := NewLidar(scene, LidarConfig{Beams: 4, AzimuthSteps: 90, Seed: 2, RangeNoiseStd: 1e-9})
	frame := lidar.Scan(geom.IdentityTransform(), 0)
	var minZ, maxZ float64
	for i, p := range frame.Points {
		if i == 0 {
			minZ, maxZ = p.Z, p.Z
			continue
		}
		minZ = math.Min(minZ, p.Z)
		maxZ = math.Max(maxZ, p.Z)
	}
	if minZ > 0.2 {
		t.Errorf("no near-ground returns: minZ = %v", minZ)
	}
	if maxZ < 2 {
		t.Errorf("no elevated returns: maxZ = %v", maxZ)
	}
}

func TestTrajectoryCustomSpeed(t *testing.T) {
	fast := DrivingTrajectory{Speed: 2.5}
	d := fast.Pose(0).Inverse().Compose(fast.Pose(1))
	if math.Abs(d.TranslationNorm()-2.5) > 0.3 {
		t.Errorf("speed 2.5 produced step %v", d.TranslationNorm())
	}
}
