package baseline

import (
	"math/rand"
	"testing"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/sim"
	"tigris/internal/twostage"
)

// surfacePoints mirrors LiDAR's 2D-manifold density.
func surfacePoints(r *rand.Rand, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.Vec3{
			X: r.Float64()*40 - 20,
			Y: r.Float64()*40 - 20,
			Z: r.NormFloat64() * 0.05,
		}
	}
	return pts
}

func nnWorkload(pts []geom.Vec3, r *rand.Rand, n int) sim.Workload {
	qs := make([]geom.Vec3, n)
	for i := range qs {
		base := pts[r.Intn(len(pts))]
		qs[i] = base.Add(geom.Vec3{X: r.Float64() - 0.5, Y: r.Float64() - 0.5})
	}
	return sim.Workload{Kind: sim.NNSearch, Queries: qs}
}

func TestGPUFasterThanCPU(t *testing.T) {
	// §6.1: "KD-tree search on the GPU is about 8–20× faster than on the
	// CPU."
	// Frame-scale query counts: at tiny workloads the kernel-launch
	// overhead hides the GPU's throughput advantage (as it does on real
	// hardware).
	r := rand.New(rand.NewSource(1))
	pts := surfacePoints(r, 20000)
	tree := kdtree.Build(pts)
	w := nnWorkload(pts, r, 20000)
	p := ProfileCanonical(tree, w)
	gpu := RTX2080Ti.Time(p)
	cpu := Xeon4110.Time(p)
	ratio := cpu.Seconds() / gpu.Seconds()
	if ratio < 5 || ratio > 25 {
		t.Errorf("GPU/CPU speedup %0.1f outside the paper's 8-20x band (with slack)", ratio)
	}
}

func TestTwoStageHelpsGPU(t *testing.T) {
	// §6.3: Base-2SKD is ~28% faster than Base-KD on the GPU because the
	// brute-force visits coalesce. Verify the direction on a
	// paper-representative workload (top height 10, ~128-point leaves).
	r := rand.New(rand.NewSource(2))
	pts := surfacePoints(r, 50000)
	canon := kdtree.Build(pts)
	two := twostage.BuildWithLeafSize(pts, 128)
	w := nnWorkload(pts, r, 10000)

	pKD := ProfileCanonical(canon, w)
	p2S := ProfileTwoStage(two, w)
	tKD := RTX2080Ti.Time(pKD)
	t2S := RTX2080Ti.Time(p2S)
	if t2S >= tKD {
		t.Errorf("Base-2SKD (%v) not faster than Base-KD (%v) on GPU", t2S, tKD)
	}
	// On the CPU the extra brute-force work is NOT free: the two-stage
	// layout should not be dramatically better there (it exists for
	// parallel hardware).
	cKD := Xeon4110.Time(pKD)
	c2S := Xeon4110.Time(p2S)
	if c2S < cKD/2 {
		t.Errorf("two-stage should not halve CPU time: %v vs %v", c2S, cKD)
	}
}

func TestProfileCounts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := surfacePoints(r, 2000)
	two := twostage.Build(pts, 4)
	w := nnWorkload(pts, r, 100)
	p := ProfileTwoStage(two, w)
	if p.Queries != 100 {
		t.Errorf("queries = %d", p.Queries)
	}
	if p.TreeVisits <= 0 || p.BruteVisits <= 0 {
		t.Errorf("profile empty: %+v", p)
	}
	// Radius workloads must profile too.
	wr := sim.Workload{Kind: sim.RadiusSearch, Queries: w.Queries, Radius: 2}
	pr := ProfileTwoStage(two, wr)
	if pr.BruteVisits <= 0 {
		t.Errorf("radius profile empty: %+v", pr)
	}
	canon := kdtree.Build(pts)
	pc := ProfileCanonical(canon, wr)
	if pc.TreeVisits <= 0 || pc.BruteVisits != 0 {
		t.Errorf("canonical profile wrong: %+v", pc)
	}
}

func TestProfileAdd(t *testing.T) {
	a := Profile{TreeVisits: 1, BruteVisits: 2, Queries: 3}
	b := Profile{TreeVisits: 10, BruteVisits: 20, Queries: 30}
	c := a.Add(b)
	if c.TreeVisits != 11 || c.BruteVisits != 22 || c.Queries != 33 {
		t.Errorf("add = %+v", c)
	}
}

func TestTimeMonotoneInWork(t *testing.T) {
	small := Profile{TreeVisits: 1000, BruteVisits: 1000}
	large := Profile{TreeVisits: 100000, BruteVisits: 100000}
	for _, m := range []Model{RTX2080Ti, Xeon4110} {
		if m.Time(large) <= m.Time(small) {
			t.Errorf("%s: time not monotone in work", m.Name)
		}
		if m.Energy(large) <= 0 {
			t.Errorf("%s: energy not positive", m.Name)
		}
	}
}

func TestParallelProfileMatchesSequential(t *testing.T) {
	// The worker-pool replay shards stats per worker and merges; the
	// resulting profile must be identical to the sequential replay for
	// both trees and both search kinds.
	r := rand.New(rand.NewSource(99))
	pts := surfacePoints(r, 3000)
	wn := nnWorkload(pts, r, 500)
	wr := sim.Workload{Kind: sim.RadiusSearch, Radius: 0.8, Queries: wn.Queries}
	canon := kdtree.Build(pts)
	two := twostage.BuildWithLeafSize(pts, 64)

	for _, w := range []sim.Workload{wn, wr} {
		seqC := ProfileCanonical(canon, w)
		for _, p := range []int{2, 8} {
			if got := ProfileCanonicalParallel(canon, w, p); got != seqC {
				t.Errorf("canonical kind=%v p=%d: %+v, want %+v", w.Kind, p, got, seqC)
			}
		}
		seqT := ProfileTwoStage(two, w)
		for _, p := range []int{2, 8} {
			if got := ProfileTwoStageParallel(two, w, p); got != seqT {
				t.Errorf("twostage kind=%v p=%d: %+v, want %+v", w.Kind, p, got, seqT)
			}
		}
	}
}
