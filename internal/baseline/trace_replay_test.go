package baseline

import (
	"testing"

	"tigris/internal/registration"
	"tigris/internal/search"
	"tigris/internal/sim"
	"tigris/internal/synth"
	"tigris/internal/twostage"
)

// TestTraceReplayMatchesPipelineQueries is the co-simulation acceptance
// test: an end-to-end registration runs with the trace backend, the
// captured batches convert to sim.Workloads, and replaying them through
// the two-stage baseline profiler accounts for exactly the query stream
// the pipeline issued (Result.SearchQueries counts the same 3D searches
// the trace decorator saw).
func TestTraceReplayMatchesPipelineQueries(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 2019))

	sink := &search.TraceLog{}
	var cfg registration.PipelineConfig
	cfg.Searcher = registration.SearcherConfig{
		Backend: search.BackendTrace,
		Options: search.Options{
			search.OptTraceInner: search.BackendTwoStage,
			search.OptTraceSink:  sink,
			search.OptTopHeight:  -1,
		},
	}
	cfg.Rejection.Method = registration.RejectRANSAC
	cfg.Rejection.Seed = 7
	cfg.ICP.MaxIterations = 10
	res := registration.Register(seq.Frames[1].Clone(), seq.Frames[0].Clone(), cfg)
	if res.SearchQueries == 0 {
		t.Fatal("pipeline issued no searches")
	}
	if got := sink.QueryCount(); got != res.SearchQueries {
		t.Fatalf("trace captured %d queries, pipeline metrics counted %d", got, res.SearchQueries)
	}

	workloads := sim.WorkloadsFromTrace(sink.Batches())
	if len(workloads) == 0 {
		t.Fatal("no workloads converted from the trace")
	}
	tree := twostage.BuildWithLeafSize(seq.Frames[0].Points, 128)
	var replayed int64
	for _, w := range workloads {
		p := ProfileTwoStage(tree, w)
		if p.Queries != int64(len(w.Queries)) {
			t.Fatalf("replay answered %d of %d queries", p.Queries, len(w.Queries))
		}
		replayed += p.Queries
	}
	if replayed != res.SearchQueries {
		t.Fatalf("replayed %d queries through ProfileTwoStage, pipeline issued %d", replayed, res.SearchQueries)
	}

	// The same workloads drive the cycle-level simulator (the ROADMAP's
	// batch API for the co-simulation path): smoke one NN batch through.
	for _, w := range workloads {
		if w.Kind != sim.NNSearch {
			continue
		}
		rep, err := sim.Run(tree, w, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Queries != len(w.Queries) || rep.Cycles == 0 {
			t.Fatalf("simulated %d queries in %d cycles", rep.Queries, rep.Cycles)
		}
		break
	}
}
