// Package baseline models the evaluation baselines of paper §6.1: KD-tree
// search running on a CPU (Xeon Silver 4110) and on a GPU (RTX 2080 Ti
// with the FLANN CUDA implementation). See DESIGN.md substitution 2.
//
// The models replay the *same instrumented search workload* the Tigris
// accelerator executes and convert the observed node-visit counts into
// time through documented throughput constants:
//
//   - Tree-traversal visits are irregular: data-dependent branches and
//     pointer chasing. On the GPU they suffer warp divergence and
//     uncoalesced loads; throughput is low.
//   - Brute-force (leaf-set) visits stream sequentially: they vectorize
//     on the CPU and coalesce on the GPU; throughput is high. This
//     asymmetry is why the two-stage layout helps the GPU too (paper:
//     Base-2SKD is 28.3% faster than Base-KD).
//
// Constants are calibrated to the paper's anchor points: GPU ≈ 8–20×
// CPU on KD-tree search (§6.1), Base-2SKD ≈ 1.3× Base-KD (§6.3), and the
// measured device powers (nvidia-smi / RAPL). Absolute times are model
// outputs; the experiments report ratios.
package baseline

import (
	"time"

	"tigris/internal/kdtree"
	"tigris/internal/par"
	"tigris/internal/sim"
	"tigris/internal/twostage"
)

// Model is a throughput/power model of one baseline device.
type Model struct {
	Name string
	// TreeVisitRate is sustained tree-traversal node visits per second.
	TreeVisitRate float64
	// BruteVisitRate is sustained brute-force distance evaluations per
	// second.
	BruteVisitRate float64
	// LaunchOverhead is charged once per workload (kernel launch, host
	// sync). Zero for the CPU.
	LaunchOverhead time.Duration
	// PowerWatts is the measured device power while running the kernel.
	PowerWatts float64
}

// RTX2080Ti models the paper's GPU baseline running FLANN's CUDA KD-tree.
// 4352 CUDA cores at ~1.5 GHz give a theoretical ~6.5e12 flop/s; KD
// traversal sustains a tiny fraction of that (divergence, gather loads)
// while brute-force leaf scans coalesce well.
var RTX2080Ti = Model{
	Name:           "RTX 2080 Ti (FLANN CUDA)",
	TreeVisitRate:  5.0e9,
	BruteVisitRate: 1.5e11,
	LaunchOverhead: 30 * time.Microsecond,
	PowerWatts:     157,
}

// Xeon4110 models the paper's CPU baseline (PCL/FLANN, single search
// thread as in the reference pipelines).
var Xeon4110 = Model{
	Name:           "Xeon Silver 4110 (PCL/FLANN)",
	TreeVisitRate:  5.5e8,
	BruteVisitRate: 2.2e9,
	PowerWatts:     80,
}

// Profile summarizes a search workload as visit counts, the quantity the
// throughput models consume.
type Profile struct {
	// TreeVisits counts node visits during recursive traversal (canonical
	// tree nodes, or two-stage top-tree nodes).
	TreeVisits int64
	// BruteVisits counts brute-force distance evaluations (two-stage leaf
	// scans and leader checks).
	BruteVisits int64
	// Queries is the workload size.
	Queries int64
}

// Add merges two profiles.
func (p Profile) Add(q Profile) Profile {
	return Profile{
		TreeVisits:  p.TreeVisits + q.TreeVisits,
		BruteVisits: p.BruteVisits + q.BruteVisits,
		Queries:     p.Queries + q.Queries,
	}
}

// Time converts a profile into modeled execution time.
func (m Model) Time(p Profile) time.Duration {
	secs := float64(p.TreeVisits)/m.TreeVisitRate + float64(p.BruteVisits)/m.BruteVisitRate
	return m.LaunchOverhead + time.Duration(secs*1e9)
}

// Energy returns the modeled energy in joules.
func (m Model) Energy(p Profile) float64 {
	return m.Time(p).Seconds() * m.PowerWatts
}

// ProfileCanonical replays the workload on a canonical KD-tree and
// returns its visit profile (the paper's Base-KD configuration). The
// replay is sequential; use ProfileCanonicalParallel to spread it over a
// worker pool (the profile is identical either way).
func ProfileCanonical(tree *kdtree.Tree, w sim.Workload) Profile {
	return ProfileCanonicalParallel(tree, w, 1)
}

// ProfileCanonicalParallel replays the workload on a canonical KD-tree
// over parallelism workers (<= 0 selects NumCPU). Each worker records
// into its own stats shard and the shards are merged, so the returned
// visit counts are identical to the sequential replay — only the
// wall time changes.
func ProfileCanonicalParallel(tree *kdtree.Tree, w sim.Workload, parallelism int) Profile {
	var stats kdtree.Stats
	par.Sharded(len(w.Queries), par.Workers(parallelism),
		func(shard *kdtree.Stats, i int) {
			if w.Kind == sim.RadiusSearch {
				tree.Radius(w.Queries[i], w.Radius, shard)
			} else {
				tree.Nearest(w.Queries[i], shard)
			}
		},
		func(shard *kdtree.Stats) { stats.Merge(*shard) })
	return Profile{
		TreeVisits: stats.NodesVisited,
		Queries:    stats.Queries,
	}
}

// ProfileTwoStage replays the workload on a two-stage tree and returns
// its visit profile (the paper's Base-2SKD configuration). Top-tree
// visits are traversal-shaped; leaf scans are brute-force-shaped. The
// replay is sequential; use ProfileTwoStageParallel for the worker-pool
// variant with an identical profile.
func ProfileTwoStage(tree *twostage.Tree, w sim.Workload) Profile {
	return ProfileTwoStageParallel(tree, w, 1)
}

// ProfileTwoStageParallel replays the workload on a two-stage tree over
// parallelism workers (<= 0 selects NumCPU), with per-worker stats shards
// merged into one profile.
func ProfileTwoStageParallel(tree *twostage.Tree, w sim.Workload, parallelism int) Profile {
	var stats twostage.Stats
	par.Sharded(len(w.Queries), par.Workers(parallelism),
		func(shard *twostage.Stats, i int) {
			if w.Kind == sim.RadiusSearch {
				tree.Radius(w.Queries[i], w.Radius, shard)
			} else {
				tree.Nearest(w.Queries[i], shard)
			}
		},
		func(shard *twostage.Stats) { stats.Merge(*shard) })
	return Profile{
		TreeVisits:  stats.TopNodesVisited,
		BruteVisits: stats.LeafPointsViewed + stats.LeaderChecks,
		Queries:     stats.Queries,
	}
}
