package registration

import (
	"math"

	"tigris/internal/geom"
	"tigris/internal/linalg"
)

// EstimateRigidTransform solves the point-to-point least-squares alignment
// problem: find the rigid T minimizing Σ‖T(srcᵢ) − dstᵢ‖² for paired
// points, via the SVD method of Umeyama/Arun (the paper's "SVD [25]"
// solver choice in Tbl. 1). Returns ok=false when fewer than 3 pairs are
// given or the configuration is degenerate.
func EstimateRigidTransform(src, dst []geom.Vec3) (geom.Transform, bool) {
	if len(src) != len(dst) || len(src) < 3 {
		return geom.IdentityTransform(), false
	}
	n := float64(len(src))
	var cs, cd geom.Vec3
	for i := range src {
		cs = cs.Add(src[i])
		cd = cd.Add(dst[i])
	}
	cs = cs.Scale(1 / n)
	cd = cd.Scale(1 / n)

	// Cross-covariance H = Σ (srcᵢ−c̄s)(dstᵢ−c̄d)ᵀ.
	var h geom.Mat3
	for i := range src {
		h = h.Add(geom.OuterProduct(src[i].Sub(cs), dst[i].Sub(cd)))
	}
	svd := linalg.ComputeSVD3(h)
	// R = V·D·Uᵀ with D correcting for reflections.
	d := geom.Identity3()
	if svd.V.Mul(svd.U.Transpose()).Det() < 0 {
		d.Set(2, 2, -1)
	}
	r := svd.V.Mul(d).Mul(svd.U.Transpose())
	if !r.IsRotation(1e-6) {
		return geom.IdentityTransform(), false
	}
	t := cd.Sub(r.MulVec(cs))
	return geom.Transform{R: r, T: t}, true
}

// ErrorMetric selects the ICP error formulation (Tbl. 1, Transformation
// Estimation row).
type ErrorMetric int

const (
	// PointToPoint minimizes Σ‖T(s)−t‖² (Besl & McKay [9], solved in
	// closed form by SVD).
	PointToPoint ErrorMetric = iota
	// PointToPlane minimizes Σ((T(s)−t)·n_t)² (Chen & Medioni [12],
	// solved iteratively, here by Levenberg–Marquardt [45]).
	PointToPlane
)

// String implements fmt.Stringer.
func (m ErrorMetric) String() string {
	switch m {
	case PointToPoint:
		return "PointToPoint"
	case PointToPlane:
		return "PointToPlane"
	default:
		return "UnknownErrorMetric"
	}
}

// EstimatePointToPlane solves the point-to-plane alignment: find the rigid
// T minimizing Σ((T(srcᵢ)−dstᵢ)·nᵢ)², with nᵢ the target surface normal.
// It runs Levenberg–Marquardt over a 6-DoF twist (rx, ry, rz, tx, ty, tz)
// with the analytic Jacobian of the linearized residual: for the residual
// r = (R·s + t − d)·n, ∂r/∂ξ = [ (R·s)×n ; n ] at the current estimate —
// the standard ICP linearization (Low 2004) the paper's LM solver [45]
// choice corresponds to.
func EstimatePointToPlane(src, dst, normals []geom.Vec3) (geom.Transform, bool) {
	if len(src) != len(dst) || len(src) != len(normals) || len(src) < 6 {
		return geom.IdentityTransform(), false
	}
	cur := geom.IdentityTransform()
	lambda := 1e-4
	cost := pointToPlaneCost(cur, src, dst, normals)
	var jtj [36]float64
	var jtr [6]float64
	// A handful of damped Gauss-Newton steps suffices: the outer ICP loop
	// re-linearizes anyway.
	for iter := 0; iter < 6; iter++ {
		// Accumulate the 6×6 normal equations in one pass.
		for i := range jtj {
			jtj[i] = 0
		}
		for i := range jtr {
			jtr[i] = 0
		}
		for i := range src {
			s := cur.Apply(src[i])
			n := normals[i]
			r := s.Sub(dst[i]).Dot(n)
			c := s.Cross(n)
			row := [6]float64{c.X, c.Y, c.Z, n.X, n.Y, n.Z}
			for a := 0; a < 6; a++ {
				jtr[a] += row[a] * r
				for b := a; b < 6; b++ {
					jtj[a*6+b] += row[a] * row[b]
				}
			}
		}
		for a := 0; a < 6; a++ {
			for b := 0; b < a; b++ {
				jtj[a*6+b] = jtj[b*6+a]
			}
		}
		improved := false
		for attempt := 0; attempt < 8; attempt++ {
			damped := jtj
			for a := 0; a < 6; a++ {
				d := jtj[a*6+a]
				if d == 0 {
					d = 1
				}
				damped[a*6+a] += lambda * d
			}
			neg := make([]float64, 6)
			for a := 0; a < 6; a++ {
				neg[a] = -jtr[a]
			}
			delta, err := linalg.SolveDense(damped[:], neg)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := twistToTransform(delta).Compose(cur)
			trialCost := pointToPlaneCost(trial, src, dst, normals)
			if trialCost < cost {
				cur = trial
				cost = trialCost
				lambda = math.Max(lambda*0.3, 1e-12)
				improved = true
				if vecNorm6(delta) < 1e-10 {
					return cur, true
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			break
		}
	}
	return cur, true
}

func pointToPlaneCost(t geom.Transform, src, dst, normals []geom.Vec3) float64 {
	var s float64
	for i := range src {
		r := t.Apply(src[i]).Sub(dst[i]).Dot(normals[i])
		s += r * r
	}
	return s
}

func vecNorm6(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// twistToTransform converts a 6-vector (rx, ry, rz, tx, ty, tz) into a
// rigid transform using the exponential map (Rodrigues).
func twistToTransform(p []float64) geom.Transform {
	w := geom.Vec3{X: p[0], Y: p[1], Z: p[2]}
	angle := w.Norm()
	var r geom.Mat3
	if angle < 1e-12 {
		r = geom.Identity3()
	} else {
		r = geom.AxisAngle(w.Scale(1/angle), angle)
	}
	return geom.Transform{R: r, T: geom.Vec3{X: p[3], Y: p[4], Z: p[5]}}
}

// AlignmentRMSE returns the root-mean-square point-to-point error of the
// transform over the pairs; the ICP convergence criterion watches it.
func AlignmentRMSE(tr geom.Transform, src, dst []geom.Vec3) float64 {
	if len(src) == 0 {
		return 0
	}
	var s float64
	for i := range src {
		s += tr.Apply(src[i]).Dist2(dst[i])
	}
	return math.Sqrt(s / float64(len(src)))
}
