package registration

import (
	"math"

	"tigris/internal/geom"
	"tigris/internal/linalg"
	"tigris/internal/par"
)

// accumChunk is the fixed block size of every parallel error/statistics
// reduction in this file. Chunk boundaries depend only on the pair count
// — never on the worker count — and chunk partials are folded in chunk
// order, so the floating-point summation order (and therefore every bit
// of the result) is invariant under the Parallelism knob: one worker
// walking the chunks sequentially produces exactly what sixteen workers
// produce. Inputs at or below one chunk take the plain sequential loop,
// preserving the historical summation order for small solves (RANSAC's
// 3-point hypotheses, test-scale clouds).
const accumChunk = 4096

// reduceChunks evaluates eval over the fixed-size chunks of [0, n) on up
// to `workers` goroutines and folds the chunk partials in chunk order.
// See accumChunk for why this is deterministic at any worker count.
func reduceChunks[P any](n, workers int, eval func(lo, hi int) P, fold func(acc, p P) P) P {
	if n <= accumChunk {
		return eval(0, n)
	}
	workers = par.Workers(workers)
	chunks := (n + accumChunk - 1) / accumChunk
	parts := make([]P, chunks)
	par.ForChunks(n, workers, accumChunk, func(_, lo, hi int) {
		parts[lo/accumChunk] = eval(lo, hi)
	})
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = fold(acc, p)
	}
	return acc
}

// EstimateRigidTransform solves the point-to-point least-squares alignment
// problem: find the rigid T minimizing Σ‖T(srcᵢ) − dstᵢ‖² for paired
// points, via the SVD method of Umeyama/Arun (the paper's "SVD [25]"
// solver choice in Tbl. 1). Returns ok=false when fewer than 3 pairs are
// given or the configuration is degenerate.
func EstimateRigidTransform(src, dst []geom.Vec3) (geom.Transform, bool) {
	return EstimateRigidTransformPar(src, dst, 1)
}

// centroidPart is one chunk's running point sums.
type centroidPart struct{ cs, cd geom.Vec3 }

// EstimateRigidTransformPar is EstimateRigidTransform with the per-point
// accumulation (centroids and cross-covariance) spread over up to
// `workers` goroutines (<= 0 selects NumCPU). Results are bit-identical
// at any worker count (see accumChunk). Inputs at or below one chunk
// dispatch to a closure-free sequential kernel, which keeps the RANSAC
// hypothesis loop (3-point solves, thousands per pair) allocation-free:
// the chunked reducers' closures would otherwise force every sample
// array to the heap.
func EstimateRigidTransformPar(src, dst []geom.Vec3, workers int) (geom.Transform, bool) {
	if len(src) != len(dst) || len(src) < 3 {
		return geom.IdentityTransform(), false
	}
	if len(src) <= accumChunk {
		return estimateRigidSeq(src, dst)
	}
	return estimateRigidChunked(src, dst, workers)
}

// estimateRigidSeq is the sequential accumulation kernel — byte for byte
// the single-chunk specialization of estimateRigidChunked.
func estimateRigidSeq(src, dst []geom.Vec3) (geom.Transform, bool) {
	n := float64(len(src))
	var cp centroidPart
	for i := range src {
		cp.cs = cp.cs.Add(src[i])
		cp.cd = cp.cd.Add(dst[i])
	}
	cs := cp.cs.Scale(1 / n)
	cd := cp.cd.Scale(1 / n)
	var h geom.Mat3
	for i := range src {
		h = h.Add(geom.OuterProduct(src[i].Sub(cs), dst[i].Sub(cd)))
	}
	return rigidFromStats(h, cs, cd)
}

func estimateRigidChunked(src, dst []geom.Vec3, workers int) (geom.Transform, bool) {
	n := float64(len(src))
	cp := reduceChunks(len(src), workers,
		func(lo, hi int) centroidPart {
			var p centroidPart
			for i := lo; i < hi; i++ {
				p.cs = p.cs.Add(src[i])
				p.cd = p.cd.Add(dst[i])
			}
			return p
		},
		func(a, b centroidPart) centroidPart {
			a.cs = a.cs.Add(b.cs)
			a.cd = a.cd.Add(b.cd)
			return a
		})
	cs := cp.cs.Scale(1 / n)
	cd := cp.cd.Scale(1 / n)

	// Cross-covariance H = Σ (srcᵢ−c̄s)(dstᵢ−c̄d)ᵀ.
	h := reduceChunks(len(src), workers,
		func(lo, hi int) geom.Mat3 {
			var hp geom.Mat3
			for i := lo; i < hi; i++ {
				hp = hp.Add(geom.OuterProduct(src[i].Sub(cs), dst[i].Sub(cd)))
			}
			return hp
		},
		geom.Mat3.Add)
	return rigidFromStats(h, cs, cd)
}

// rigidFromStats finishes the Umeyama solve from the accumulated
// cross-covariance and centroids.
func rigidFromStats(h geom.Mat3, cs, cd geom.Vec3) (geom.Transform, bool) {
	svd := linalg.ComputeSVD3(h)
	// R = V·D·Uᵀ with D correcting for reflections.
	d := geom.Identity3()
	if svd.V.Mul(svd.U.Transpose()).Det() < 0 {
		d.Set(2, 2, -1)
	}
	r := svd.V.Mul(d).Mul(svd.U.Transpose())
	if !r.IsRotation(1e-6) {
		return geom.IdentityTransform(), false
	}
	t := cd.Sub(r.MulVec(cs))
	return geom.Transform{R: r, T: t}, true
}

// ErrorMetric selects the ICP error formulation (Tbl. 1, Transformation
// Estimation row).
type ErrorMetric int

const (
	// PointToPoint minimizes Σ‖T(s)−t‖² (Besl & McKay [9], solved in
	// closed form by SVD).
	PointToPoint ErrorMetric = iota
	// PointToPlane minimizes Σ((T(s)−t)·n_t)² (Chen & Medioni [12],
	// solved iteratively, here by Levenberg–Marquardt [45]).
	PointToPlane
)

// String implements fmt.Stringer.
func (m ErrorMetric) String() string {
	switch m {
	case PointToPoint:
		return "PointToPoint"
	case PointToPlane:
		return "PointToPlane"
	default:
		return "UnknownErrorMetric"
	}
}

// EstimatePointToPlane solves the point-to-plane alignment: find the rigid
// T minimizing Σ((T(srcᵢ)−dstᵢ)·nᵢ)², with nᵢ the target surface normal.
// It runs Levenberg–Marquardt over a 6-DoF twist (rx, ry, rz, tx, ty, tz)
// with the analytic Jacobian of the linearized residual: for the residual
// r = (R·s + t − d)·n, ∂r/∂ξ = [ (R·s)×n ; n ] at the current estimate —
// the standard ICP linearization (Low 2004) the paper's LM solver [45]
// choice corresponds to.
func EstimatePointToPlane(src, dst, normals []geom.Vec3) (geom.Transform, bool) {
	return EstimatePointToPlanePar(src, dst, normals, 1)
}

// normalEqPart is one chunk's share of the 6×6 normal equations.
type normalEqPart struct {
	jtj [36]float64
	jtr [6]float64
}

func (p normalEqPart) add(o normalEqPart) normalEqPart {
	for i := range p.jtj {
		p.jtj[i] += o.jtj[i]
	}
	for i := range p.jtr {
		p.jtr[i] += o.jtr[i]
	}
	return p
}

// EstimatePointToPlanePar is EstimatePointToPlane with the per-point
// accumulation (the JᵀJ/Jᵀr normal equations and the cost evaluations)
// spread over up to `workers` goroutines (<= 0 selects NumCPU). Results
// are bit-identical at any worker count (see accumChunk).
func EstimatePointToPlanePar(src, dst, normals []geom.Vec3, workers int) (geom.Transform, bool) {
	if len(src) != len(dst) || len(src) != len(normals) || len(src) < 6 {
		return geom.IdentityTransform(), false
	}
	cur := geom.IdentityTransform()
	lambda := 1e-4
	cost := pointToPlaneCost(cur, src, dst, normals, workers)
	// A handful of damped Gauss-Newton steps suffices: the outer ICP loop
	// re-linearizes anyway.
	for iter := 0; iter < 6; iter++ {
		// Accumulate the 6×6 normal equations in one pass.
		eq := reduceChunks(len(src), workers,
			func(lo, hi int) normalEqPart {
				var p normalEqPart
				for i := lo; i < hi; i++ {
					s := cur.Apply(src[i])
					n := normals[i]
					r := s.Sub(dst[i]).Dot(n)
					c := s.Cross(n)
					row := [6]float64{c.X, c.Y, c.Z, n.X, n.Y, n.Z}
					for a := 0; a < 6; a++ {
						p.jtr[a] += row[a] * r
						for b := a; b < 6; b++ {
							p.jtj[a*6+b] += row[a] * row[b]
						}
					}
				}
				return p
			},
			normalEqPart.add)
		jtj, jtr := eq.jtj, eq.jtr
		for a := 0; a < 6; a++ {
			for b := 0; b < a; b++ {
				jtj[a*6+b] = jtj[b*6+a]
			}
		}
		improved := false
		for attempt := 0; attempt < 8; attempt++ {
			damped := jtj
			for a := 0; a < 6; a++ {
				d := jtj[a*6+a]
				if d == 0 {
					d = 1
				}
				damped[a*6+a] += lambda * d
			}
			neg := make([]float64, 6)
			for a := 0; a < 6; a++ {
				neg[a] = -jtr[a]
			}
			delta, err := linalg.SolveDense(damped[:], neg)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := twistToTransform(delta).Compose(cur)
			trialCost := pointToPlaneCost(trial, src, dst, normals, workers)
			if trialCost < cost {
				cur = trial
				cost = trialCost
				lambda = math.Max(lambda*0.3, 1e-12)
				improved = true
				if vecNorm6(delta) < 1e-10 {
					return cur, true
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			break
		}
	}
	return cur, true
}

func pointToPlaneCost(t geom.Transform, src, dst, normals []geom.Vec3, workers int) float64 {
	return reduceChunks(len(src), workers,
		func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				r := t.Apply(src[i]).Sub(dst[i]).Dot(normals[i])
				s += r * r
			}
			return s
		},
		func(a, b float64) float64 { return a + b })
}

func vecNorm6(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// twistToTransform converts a 6-vector (rx, ry, rz, tx, ty, tz) into a
// rigid transform using the exponential map (Rodrigues).
func twistToTransform(p []float64) geom.Transform {
	w := geom.Vec3{X: p[0], Y: p[1], Z: p[2]}
	angle := w.Norm()
	var r geom.Mat3
	if angle < 1e-12 {
		r = geom.Identity3()
	} else {
		r = geom.AxisAngle(w.Scale(1/angle), angle)
	}
	return geom.Transform{R: r, T: geom.Vec3{X: p[3], Y: p[4], Z: p[5]}}
}

// AlignmentRMSE returns the root-mean-square point-to-point error of the
// transform over the pairs; the ICP convergence criterion watches it.
func AlignmentRMSE(tr geom.Transform, src, dst []geom.Vec3) float64 {
	return AlignmentRMSEPar(tr, src, dst, 1)
}

// AlignmentRMSEPar is AlignmentRMSE with the squared-error accumulation
// spread over up to `workers` goroutines (<= 0 selects NumCPU). Results
// are bit-identical at any worker count (see accumChunk); small inputs
// take a closure-free sequential kernel like EstimateRigidTransformPar.
func AlignmentRMSEPar(tr geom.Transform, src, dst []geom.Vec3, workers int) float64 {
	if len(src) == 0 {
		return 0
	}
	var s float64
	if len(src) <= accumChunk {
		s = sqErrSeq(tr, src, dst, 0, len(src))
	} else {
		s = reduceChunks(len(src), workers,
			func(lo, hi int) float64 { return sqErrSeq(tr, src, dst, lo, hi) },
			func(a, b float64) float64 { return a + b })
	}
	return math.Sqrt(s / float64(len(src)))
}

func sqErrSeq(tr geom.Transform, src, dst []geom.Vec3, lo, hi int) float64 {
	var p float64
	for i := lo; i < hi; i++ {
		p += tr.Apply(src[i]).Dist2(dst[i])
	}
	return p
}
