package registration

import (
	"sync"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/search"
)

// ICPConfig parameterizes the fine-tuning phase (paper Fig. 2, right):
// Raw-Point Correspondence Estimation alternating with transformation
// estimation until convergence. The convergence criteria are the Tbl. 1
// knobs the paper highlights as impacting both accuracy and compute time.
type ICPConfig struct {
	// Metric selects point-to-point (SVD) or point-to-plane (LM).
	Metric ErrorMetric
	// MaxIterations bounds ICP iterations (default 30).
	MaxIterations int
	// MaxCorrespondenceDist drops pairs farther than this during RPCE, in
	// meters (default 2.0).
	MaxCorrespondenceDist float64
	// TransformEpsilon stops when an iteration's incremental translation
	// falls below it (default 1e-4 m).
	TransformEpsilon float64
	// EuclideanFitnessEpsilon stops when the RMSE improvement between
	// iterations falls below it (default 1e-5).
	EuclideanFitnessEpsilon float64
	// Reciprocal requires source→target and target→source NN agreement
	// during RPCE (Tbl. 1 knob). It roughly doubles search cost.
	Reciprocal bool
	// SourceStride subsamples source points during RPCE (1 = use all; the
	// performance-oriented design points use larger strides).
	SourceStride int
	// Parallelism is the worker count for the per-point error
	// accumulation inside transform estimation and the convergence RMSE
	// (<= 0 selects NumCPU, 1 forces the sequential path). The pipeline
	// propagates its searcher parallelism here when the field is left
	// zero. Results are bit-identical at any setting (fixed-chunk
	// deterministic reductions, see transform.go).
	Parallelism int
}

func (c *ICPConfig) defaults() {
	if c.MaxIterations == 0 {
		c.MaxIterations = 30
	}
	if c.MaxCorrespondenceDist == 0 {
		c.MaxCorrespondenceDist = 2.0
	}
	if c.TransformEpsilon == 0 {
		c.TransformEpsilon = 1e-4
	}
	if c.EuclideanFitnessEpsilon == 0 {
		c.EuclideanFitnessEpsilon = 1e-5
	}
	if c.SourceStride == 0 {
		c.SourceStride = 1
	}
}

// ICPResult reports the fine-tuning outcome.
type ICPResult struct {
	// Transform maps source-frame points into the target frame, including
	// the initial guess.
	Transform geom.Transform
	// Iterations actually executed.
	Iterations int
	// FinalRMSE is the last iteration's correspondence RMSE.
	FinalRMSE float64
	// Converged is false when MaxIterations was exhausted.
	Converged bool
	// RPCETime is the wall time spent in correspondence search.
	RPCETime time.Duration
	// SolveTime is the wall time spent in transform estimation.
	SolveTime time.Duration
}

// icpScratch holds every buffer one ICP call cycles through its
// iterations: the moved source copy, the strided query set, the
// nearest-neighbor results, and the gated correspondence slabs. Pooled
// across calls so a streaming session's fine-tuning runs with near-zero
// steady-state allocations. The correspondence pairs live in SoA float32
// slabs (srcS/dstS) — half the bytes of the historical AoS gather — and
// every downstream reduction dequantizes to float64 (see
// transform_slab.go).
type icpScratch struct {
	cur    []geom.Vec3
	qIdx   []int
	qs     []geom.Vec3
	nbs    []kdtree.Neighbor
	candQ  []int
	backQs []geom.Vec3
	srcS   cloud.Slab
	dstS   cloud.Slab
}

var icpScratchPool = sync.Pool{New: func() any { return new(icpScratch) }}

// ICP runs iterative closest point from the initial guess. target is the
// searcher indexing the target cloud; its slab must carry the target
// normals when the point-to-plane metric is selected. Each iteration's
// RPCE runs as one NearestBatch against the target (and, for reciprocal
// RPCE, a second batch of back-queries against a fresh source index), so
// the dominant per-iteration cost parallelizes across the searcher's
// worker pool while the correspondence list keeps its sequential order;
// the per-point error accumulation inside transform estimation fans out
// over cfg.Parallelism workers with bit-identical results at any setting.
func ICP(src *cloud.Slab, target search.Searcher, initial geom.Transform, cfg ICPConfig) ICPResult {
	cfg.defaults()
	res := ICPResult{Transform: initial}
	tslab := target.Slab()

	sc := icpScratchPool.Get().(*icpScratch)
	defer icpScratchPool.Put(sc)

	// The moved source copy: only the positions matter to RPCE, so a bare
	// float64 point slice carries the iteratively-updated positions (the
	// accumulated transforms would drift if re-quantized every iteration).
	cur := sc.cur[:0]
	for i := 0; i < src.Len(); i++ {
		cur = append(cur, initial.Apply(src.At(i)))
	}
	sc.cur = cur

	// The strided query index set is fixed across iterations; the query
	// positions change as cur moves.
	qIdx := sc.qIdx[:0]
	for i := 0; i < len(cur); i += cfg.SourceStride {
		qIdx = append(qIdx, i)
	}
	sc.qIdx = qIdx
	if cap(sc.qs) < len(qIdx) {
		sc.qs = make([]geom.Vec3, len(qIdx))
	}
	qs := sc.qs[:len(qIdx)]

	usePlane := cfg.Metric == PointToPlane && tslab.HasNormals()

	prevRMSE := -1.0
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		res.Iterations = iter + 1

		// RPCE: for every point in the (moved) source cloud, find its
		// nearest neighbor in the target (paper Fig. 2).
		start := time.Now()
		var srcSearch search.Searcher
		if cfg.Reciprocal {
			srcSearch = search.NewKDSearcher(cur)
			srcSearch.SetParallelism(target.Parallelism())
		}
		maxD2 := cfg.MaxCorrespondenceDist * cfg.MaxCorrespondenceDist
		for qi, i := range qIdx {
			qs[qi] = cur[i]
		}
		nbs := search.BatchNearestInto(target, qs, sc.nbs[:0])
		sc.nbs = nbs

		// Candidates that pass the distance gate, in query order.
		candQ := sc.candQ[:0]
		for qi := range qIdx {
			if nbs[qi].Index >= 0 && nbs[qi].Dist2 <= maxD2 {
				candQ = append(candQ, qi)
			}
		}
		sc.candQ = candQ
		// Reciprocal gate: batch the back-queries for the candidates only
		// (the same queries the sequential loop would issue).
		var backs []kdtree.Neighbor
		if cfg.Reciprocal {
			if cap(sc.backQs) < len(candQ) {
				sc.backQs = make([]geom.Vec3, len(candQ))
			}
			backQs := sc.backQs[:len(candQ)]
			for ci, qi := range candQ {
				backQs[ci] = tslab.At(nbs[qi].Index)
			}
			backs = srcSearch.NearestBatch(backQs)
		}
		// Gather surviving correspondences into the SoA scratch slabs the
		// solvers stream: moved source positions quantize to float32 here
		// (the slab layout's one-time precision step), target positions are
		// already float32-exact.
		srcS, dstS := &sc.srcS, &sc.dstS
		srcS.Reset()
		dstS.Reset()
		if usePlane {
			dstS.EnsureNormals()
		}
		for ci, qi := range candQ {
			if cfg.Reciprocal && backs[ci].Index != qIdx[qi] {
				continue
			}
			ti := nbs[qi].Index
			srcS.Append(qs[qi])
			dstS.Append(tslab.At(ti))
			if usePlane {
				dstS.AppendNormal(tslab.NormalAt(ti))
			}
		}
		res.RPCETime += time.Since(start)
		if srcS.Len() < 6 {
			return res // too little overlap to continue
		}

		// Transformation estimation (paper Fig. 2, "Error Minimization").
		start = time.Now()
		var delta geom.Transform
		var ok bool
		if usePlane {
			delta, ok = EstimatePointToPlaneSlabPar(srcS, dstS, cfg.Parallelism)
		} else {
			delta, ok = EstimateRigidTransformSlabPar(srcS, dstS, cfg.Parallelism)
		}
		res.SolveTime += time.Since(start)
		if !ok {
			return res
		}

		res.Transform = delta.Compose(res.Transform)
		for i := range cur {
			cur[i] = delta.Apply(cur[i])
		}

		rmse := AlignmentRMSESlabPar(delta, srcS, dstS, cfg.Parallelism)
		res.FinalRMSE = rmse

		// Convergence criteria (Tbl. 1): small incremental motion or small
		// fitness improvement.
		if delta.TranslationNorm() < cfg.TransformEpsilon && delta.RotationAngle() < cfg.TransformEpsilon {
			res.Converged = true
			return res
		}
		if prevRMSE >= 0 && prevRMSE-rmse < cfg.EuclideanFitnessEpsilon && rmse <= prevRMSE {
			res.Converged = true
			return res
		}
		prevRMSE = rmse
	}
	return res
}
