package registration

import (
	"math"
	"math/rand"
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/features"
	"tigris/internal/geom"
	"tigris/internal/search"
	"tigris/internal/synth"
)

func randTransformSmall(r *rand.Rand) geom.Transform {
	axis := geom.Vec3{X: r.Float64() - 0.5, Y: r.Float64() - 0.5, Z: r.Float64() - 0.5}
	if axis.Norm() < 1e-9 {
		axis = geom.Vec3{Z: 1}
	}
	return geom.Transform{
		R: geom.AxisAngle(axis, (r.Float64()-0.5)*0.2),
		T: geom.Vec3{X: r.Float64() - 0.5, Y: r.Float64() - 0.5, Z: (r.Float64() - 0.5) * 0.2},
	}
}

// structuredCloud builds a small scene with enough 3D structure for
// registration to be well-posed (ground + two walls + a box).
func structuredCloud(r *rand.Rand, n int) *cloud.Slab {
	pts := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0: // ground
			pts = append(pts, geom.Vec3{X: r.Float64()*20 - 10, Y: r.Float64()*20 - 10, Z: 0})
		case 1: // wall x=8
			pts = append(pts, geom.Vec3{X: 8, Y: r.Float64()*20 - 10, Z: r.Float64() * 4})
		case 2: // wall y=-6
			pts = append(pts, geom.Vec3{X: r.Float64()*20 - 10, Y: -6, Z: r.Float64() * 4})
		default: // box
			pts = append(pts, geom.Vec3{X: 2 + r.Float64(), Y: 1 + r.Float64(), Z: r.Float64() * 1.5})
		}
	}
	return cloud.SlabFromPoints(pts)
}

func TestEstimateRigidTransformRecovers(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.Intn(50)
		src := make([]geom.Vec3, n)
		for i := range src {
			src[i] = geom.Vec3{X: r.Float64()*10 - 5, Y: r.Float64()*10 - 5, Z: r.Float64()*10 - 5}
		}
		truth := randTransformSmall(r)
		dst := make([]geom.Vec3, n)
		for i := range dst {
			dst[i] = truth.Apply(src[i])
		}
		got, ok := EstimateRigidTransform(src, dst)
		if !ok {
			// Nearly collinear triples can be degenerate; only tiny n.
			if n > 4 {
				t.Fatalf("estimation failed with n=%d", n)
			}
			continue
		}
		if !got.NearlyEqual(truth, 1e-6) {
			t.Fatalf("recovered %v, want %v", got, truth)
		}
	}
}

func TestEstimateRigidTransformDegenerate(t *testing.T) {
	if _, ok := EstimateRigidTransform(nil, nil); ok {
		t.Error("empty input accepted")
	}
	src := []geom.Vec3{{X: 1}, {X: 2}}
	if _, ok := EstimateRigidTransform(src, src); ok {
		t.Error("two points accepted")
	}
	mismatch := []geom.Vec3{{X: 1}, {X: 2}, {X: 3}}
	if _, ok := EstimateRigidTransform(mismatch, mismatch[:2]); ok {
		t.Error("length mismatch accepted")
	}
}

func TestEstimateRigidTransformWithNoise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	src := make([]geom.Vec3, 200)
	for i := range src {
		src[i] = geom.Vec3{X: r.Float64() * 10, Y: r.Float64() * 10, Z: r.Float64() * 10}
	}
	truth := randTransformSmall(r)
	dst := make([]geom.Vec3, len(src))
	for i := range dst {
		dst[i] = truth.Apply(src[i]).Add(geom.Vec3{
			X: r.NormFloat64() * 0.01, Y: r.NormFloat64() * 0.01, Z: r.NormFloat64() * 0.01,
		})
	}
	got, ok := EstimateRigidTransform(src, dst)
	if !ok {
		t.Fatal("estimation failed")
	}
	if got.T.Dist(truth.T) > 0.01 || got.R.Mul(truth.R.Transpose()).RotationAngle() > 0.01 {
		t.Fatalf("noisy recovery too far off: %v vs %v", got, truth)
	}
}

func TestEstimatePointToPlaneRecovers(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Points on three non-parallel planes fully constrain the transform.
	c := structuredCloud(r, 600)
	s := search.NewKDSearcherSlab(c)
	features.EstimateNormals(c, s, features.NormalConfig{SearchRadius: 1.5})
	truth := randTransformSmall(r)
	inv := truth.Inverse()
	src := make([]geom.Vec3, c.Len())
	for i := range src {
		src[i] = inv.Apply(c.At(i)) // so truth maps src back onto c
	}
	cc := c.ToCloud()
	got, ok := EstimatePointToPlane(src, cc.Points, cc.Normals)
	if !ok {
		t.Fatal("point-to-plane failed")
	}
	if got.T.Dist(truth.T) > 0.02 || got.R.Mul(truth.R.Transpose()).RotationAngle() > 0.02 {
		t.Fatalf("point-to-plane recovery off: %v vs %v", got, truth)
	}
}

func TestICPConvergesOnStructuredCloud(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	dst := structuredCloud(r, 3000)
	truth := randTransformSmall(r)
	inv := truth.Inverse()
	srcPts := make([]geom.Vec3, 0, dst.Len())
	for i := 0; i < dst.Len(); i++ {
		srcPts = append(srcPts, inv.Apply(dst.At(i)))
	}
	src := cloud.SlabFromPoints(srcPts)
	target := search.NewKDSearcherSlab(dst)

	for _, metric := range []ErrorMetric{PointToPoint, PointToPlane} {
		if metric == PointToPlane {
			// Normals land in the shared target slab, flipping ICP's
			// point-to-plane path on.
			features.EstimateNormals(dst, target, features.NormalConfig{SearchRadius: 1.5})
		}
		res := ICP(src, target, geom.IdentityTransform(), ICPConfig{
			Metric:        metric,
			MaxIterations: 50,
		})
		errPair := EvaluatePair(res.Transform, truth)
		if res.Transform.T.Dist(truth.T) > 0.05 {
			t.Errorf("%v: ICP translation off by %v", metric, res.Transform.T.Dist(truth.T))
		}
		if errPair.RotationalDegPerM > 5 {
			t.Errorf("%v: ICP rotation error %v deg/m", metric, errPair.RotationalDegPerM)
		}
	}
}

func TestICPStrideReducesWork(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	dst := structuredCloud(r, 2000)
	src := dst.Clone()
	target := search.NewKDSearcherSlab(dst)
	before := target.Metrics().Queries
	ICP(src, target, geom.IdentityTransform(), ICPConfig{SourceStride: 4, MaxIterations: 2})
	afterStride := target.Metrics().Queries - before
	ICP(src, target, geom.IdentityTransform(), ICPConfig{SourceStride: 1, MaxIterations: 2})
	afterFull := target.Metrics().Queries - before - afterStride
	if afterStride >= afterFull {
		t.Errorf("stride 4 issued %d queries, full %d", afterStride, afterFull)
	}
}

func TestKPCEAndRejection(t *testing.T) {
	// Build descriptors where correspondences are unambiguous, then check
	// KPCE matching, reciprocity, and both rejectors.
	dim := 8
	mk := func(rows ...[]float64) *features.Descriptors {
		d := &features.Descriptors{Dim: dim}
		for _, r := range rows {
			d.Data = append(d.Data, r...)
		}
		return d
	}
	v := func(seed float64) []float64 {
		row := make([]float64, dim)
		for i := range row {
			row[i] = seed + float64(i)*0.1
		}
		return row
	}
	src := mk(v(0), v(10), v(20))
	dst := mk(v(20.01), v(0.01), v(10.01))
	corr := EstimateKeypointCorrespondences(src, dst, KPCEConfig{})
	if len(corr) != 3 {
		t.Fatalf("expected 3 correspondences, got %d", len(corr))
	}
	want := map[int]int{0: 1, 1: 2, 2: 0}
	for _, c := range corr {
		if want[c.Source] != c.Target {
			t.Fatalf("correspondence %d -> %d, want %d", c.Source, c.Target, want[c.Source])
		}
	}
	recip := EstimateKeypointCorrespondences(src, dst, KPCEConfig{Reciprocal: true})
	if len(recip) != 3 {
		t.Fatalf("reciprocal dropped valid matches: %d", len(recip))
	}
}

func TestThresholdRejection(t *testing.T) {
	corr := []Correspondence{
		{Source: 0, Target: 0, Dist2: 1},
		{Source: 1, Target: 1, Dist2: 1.2},
		{Source: 2, Target: 2, Dist2: 0.9},
		{Source: 3, Target: 3, Dist2: 400}, // outlier
	}
	out := RejectCorrespondences(corr, nil, nil, RejectionConfig{Method: RejectThreshold, DistanceRatio: 2})
	if len(out) != 3 {
		t.Fatalf("threshold kept %d, want 3", len(out))
	}
	for _, c := range out {
		if c.Source == 3 {
			t.Fatal("outlier survived threshold rejection")
		}
	}
}

func TestRANSACRejectsOutliers(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	truth := randTransformSmall(r)
	n := 40
	srcPts := make([]geom.Vec3, n)
	dstPts := make([]geom.Vec3, n)
	corr := make([]Correspondence, n)
	for i := 0; i < n; i++ {
		srcPts[i] = geom.Vec3{X: r.Float64() * 10, Y: r.Float64() * 10, Z: r.Float64() * 3}
		if i < 30 {
			dstPts[i] = truth.Apply(srcPts[i])
		} else {
			// Gross outliers.
			dstPts[i] = geom.Vec3{X: r.Float64()*100 - 50, Y: r.Float64()*100 - 50, Z: r.Float64() * 50}
		}
		corr[i] = Correspondence{Source: i, Target: i}
	}
	out := RejectCorrespondences(corr, srcPts, dstPts, RejectionConfig{Method: RejectRANSAC, Seed: 9})
	if len(out) < 25 || len(out) > 32 {
		t.Fatalf("RANSAC kept %d, want ~30 inliers", len(out))
	}
	for _, c := range out {
		if c.Source >= 30 {
			t.Fatalf("RANSAC kept outlier %d", c.Source)
		}
	}
}

func TestRANSACDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	truth := randTransformSmall(r)
	srcPts := make([]geom.Vec3, 20)
	dstPts := make([]geom.Vec3, 20)
	corr := make([]Correspondence, 20)
	for i := range srcPts {
		srcPts[i] = geom.Vec3{X: r.Float64() * 10, Y: r.Float64() * 10, Z: r.Float64()}
		dstPts[i] = truth.Apply(srcPts[i])
		corr[i] = Correspondence{Source: i, Target: i}
	}
	a := RejectCorrespondences(corr, srcPts, dstPts, RejectionConfig{Method: RejectRANSAC, Seed: 5})
	b := RejectCorrespondences(corr, srcPts, dstPts, RejectionConfig{Method: RejectRANSAC, Seed: 5})
	if len(a) != len(b) {
		t.Fatal("same seed produced different inlier counts")
	}
}

func TestEvaluatePair(t *testing.T) {
	truth := geom.Transform{R: geom.RotZ(0.1), T: geom.Vec3{X: 2}}
	perfect := EvaluatePair(truth, truth)
	if perfect.TranslationalPct > 1e-9 || perfect.RotationalDegPerM > 1e-9 {
		t.Errorf("perfect estimate has error %+v", perfect)
	}
	// 10 cm translation error over a 2 m step = 5%.
	off := geom.Transform{R: truth.R, T: truth.T.Add(geom.Vec3{Y: 0.1})}
	e := EvaluatePair(off, truth)
	if math.Abs(e.TranslationalPct-5) > 0.2 {
		t.Errorf("translational error = %v%%, want ~5%%", e.TranslationalPct)
	}
}

func TestAggregate(t *testing.T) {
	errs := []FrameError{
		{TranslationalPct: 1, RotationalDegPerM: 0.1},
		{TranslationalPct: 3, RotationalDegPerM: 0.3},
	}
	agg := Aggregate(errs)
	if math.Abs(agg.MeanTranslationalPct-2) > 1e-12 || agg.Frames != 2 {
		t.Errorf("aggregate = %+v", agg)
	}
	if math.Abs(agg.StdevTranslationalPct-1) > 1e-12 {
		t.Errorf("stdev = %v", agg.StdevTranslationalPct)
	}
	if Aggregate(nil).Frames != 0 {
		t.Error("empty aggregate should have 0 frames")
	}
}

// pipelineTestConfig returns a config sized for test speed.
func pipelineTestConfig() PipelineConfig {
	return PipelineConfig{
		VoxelLeaf:  0.4,
		Normal:     features.NormalConfig{SearchRadius: 0.8},
		Keypoint:   features.KeypointConfig{Method: features.Harris3D, Radius: 1.0, ResponseQuantile: 0.9, MaxKeypoints: 150},
		Descriptor: features.DescriptorConfig{Method: features.FPFH, SearchRadius: 1.2},
		Rejection:  RejectionConfig{Method: RejectRANSAC, Seed: 1},
		// Point-to-plane: on LiDAR street scenes the sensor-centric ground
		// rings pull point-to-point ICP toward zero motion, while the
		// point-to-plane residual lets the ground slide freely and the
		// vertical structure determine the translation.
		ICP: ICPConfig{
			Metric:                  PointToPlane,
			MaxIterations:           40,
			SourceStride:            2,
			EuclideanFitnessEpsilon: 1e-8,
		},
	}
}

func TestRegisterEndToEndOnSyntheticFrames(t *testing.T) {
	seq := synth.GenerateSequence(synth.EvalSequenceConfig(2, 21))
	truth := seq.GroundTruthDelta(0)
	res := Register(seq.Frames[1], seq.Frames[0], pipelineTestConfig())
	e := EvaluatePair(res.Transform, truth)
	// The paper's Fig. 3 design points land between 2.1% and 3.6%
	// translational error on KITTI; allow headroom for the synthetic
	// substrate.
	if e.TranslationalPct > 10 {
		t.Errorf("translational error %.1f%% too high", e.TranslationalPct)
	}
	if e.RotationalDegPerM > 0.2 {
		t.Errorf("rotational error %.3f deg/m too high", e.RotationalDegPerM)
	}
	if res.Total <= 0 || res.Stage.Total() <= 0 {
		t.Error("timings not recorded")
	}
	if res.KDSearchTime <= 0 {
		t.Error("KD search time not recorded")
	}
	if res.SrcKeypoints == 0 || res.Correspondences == 0 {
		t.Errorf("front-end produced no features: %+v", res)
	}
}

func TestRegisterSearcherVariantsAgree(t *testing.T) {
	// The two-stage exact searcher must produce identical geometry to the
	// canonical searcher; the approximate variant must stay close.
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 22))
	truth := seq.GroundTruthDelta(0)

	base := pipelineTestConfig()
	var errs []float64
	for _, kind := range []SearcherKind{SearchCanonical, SearchTwoStage, SearchTwoStageApprox} {
		cfg := base
		cfg.Searcher = SearcherConfig{Kind: kind, TopHeight: 6}
		res := Register(seq.Frames[1], seq.Frames[0], cfg)
		e := EvaluatePair(res.Transform, truth)
		errs = append(errs, e.TranslationalPct)
	}
	if math.Abs(errs[0]-errs[1]) > 3 {
		t.Errorf("exact two-stage diverged: %.2f%% vs %.2f%%", errs[0], errs[1])
	}
	// The approximate searcher is allowed modest degradation (the paper
	// reports near-zero translational impact; we allow slack for the small
	// test frames).
	if errs[2] > errs[0]+10 {
		t.Errorf("approximate searcher degraded too far: %.2f%% vs %.2f%%", errs[2], errs[0])
	}
}

func TestErrorInjectionDenseVsSparse(t *testing.T) {
	// Fig. 7a's qualitative claim: k-th NN injection into dense RPCE is
	// tolerable, while the same injection into sparse KPCE hurts much
	// more. Check the directional relationship on one frame pair.
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 23))
	truth := seq.GroundTruthDelta(0)

	run := func(inject Injection) float64 {
		cfg := pipelineTestConfig()
		cfg.Inject = inject
		res := Register(seq.Frames[1], seq.Frames[0], cfg)
		return EvaluatePair(res.Transform, truth).TranslationalPct
	}
	clean := run(Injection{})
	denseK3 := run(Injection{RPCEKthNN: 3})
	if denseK3 > clean+20 {
		t.Errorf("dense injection k=3 degraded too much: %.1f%% vs %.1f%%", denseK3, clean)
	}
}

func TestRegisterShellInjectionRuns(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 24))
	cfg := pipelineTestConfig()
	shell := [2]float64{0.3, 1.0}
	cfg.Inject = Injection{NEShell: &shell}
	res := Register(seq.Frames[1], seq.Frames[0], cfg)
	if res.Total <= 0 {
		t.Error("shell-injected pipeline did not run")
	}
}
