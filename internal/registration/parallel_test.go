package registration

import (
	"testing"

	"tigris/internal/synth"
)

// parallelEquivCases enumerates the searcher kinds whose end-to-end
// pipeline output must be bit-identical between the sequential path
// (Parallelism 1) and the worker-pool path.
var parallelEquivCases = []struct {
	name string
	kind SearcherKind
}{
	{"canonical", SearchCanonical},
	{"twostage-exact", SearchTwoStage},
}

// TestRegisterParallelMatchesSequential: the full two-phase pipeline must
// produce the exact same transform (and population counts) whether the
// neighbor searches run sequentially or on a worker pool — the tentpole
// guarantee that batching changes wall time, never results.
func TestRegisterParallelMatchesSequential(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 77))
	for _, tc := range parallelEquivCases {
		base := pipelineTestConfig()
		base.Searcher.Kind = tc.kind
		base.Searcher.TopHeight = -1

		serial := base
		serial.Searcher.Parallelism = 1
		parallel := base
		parallel.Searcher.Parallelism = 4

		resS := Register(seq.Frames[1], seq.Frames[0], serial)
		resP := Register(seq.Frames[1], seq.Frames[0], parallel)

		if resS.Transform != resP.Transform {
			t.Errorf("%s: parallel transform differs from sequential:\n%v\nvs\n%v",
				tc.name, resP.Transform, resS.Transform)
		}
		if resS.Initial != resP.Initial {
			t.Errorf("%s: initial estimates differ", tc.name)
		}
		if resS.SrcKeypoints != resP.SrcKeypoints || resS.DstKeypoints != resP.DstKeypoints {
			t.Errorf("%s: keypoint counts differ: %d/%d vs %d/%d", tc.name,
				resS.SrcKeypoints, resS.DstKeypoints, resP.SrcKeypoints, resP.DstKeypoints)
		}
		if resS.Correspondences != resP.Correspondences || resS.Inliers != resP.Inliers {
			t.Errorf("%s: correspondence counts differ", tc.name)
		}
		if resS.NodesVisited != resP.NodesVisited || resS.SearchQueries != resP.SearchQueries {
			t.Errorf("%s: merged search metrics differ: %d/%d vs %d/%d", tc.name,
				resS.NodesVisited, resS.SearchQueries, resP.NodesVisited, resP.SearchQueries)
		}
		if resS.ICP.Iterations != resP.ICP.Iterations || resS.ICP.FinalRMSE != resP.ICP.FinalRMSE {
			t.Errorf("%s: ICP outcomes differ", tc.name)
		}
	}
}

// TestRegisterParallelWithInjectionMatchesSequential: the error-injection
// wrappers must stay bit-identical under the worker pool too (the §4.2
// study must not depend on the execution schedule).
func TestRegisterParallelWithInjectionMatchesSequential(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 78))
	base := pipelineTestConfig()
	base.Inject.RPCEKthNN = 3
	shell := [2]float64{0.2, base.Normal.SearchRadius + 0.2}
	base.Inject.NEShell = &shell

	serial := base
	serial.Searcher.Parallelism = 1
	parallel := base
	parallel.Searcher.Parallelism = 4

	resS := Register(seq.Frames[1], seq.Frames[0], serial)
	resP := Register(seq.Frames[1], seq.Frames[0], parallel)
	if resS.Transform != resP.Transform {
		t.Errorf("injected pipeline: parallel transform differs from sequential")
	}
}

// TestRegisterApproxParallelismInvariant: the approximate backend is not
// bit-identical to the old shared-session sequential walk, but its batch
// chunking makes the whole pipeline a deterministic function of the
// input — the Parallelism knob must not change the result.
func TestRegisterApproxParallelismInvariant(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 79))
	base := pipelineTestConfig()
	base.Searcher.Kind = SearchTwoStageApprox
	base.Searcher.TopHeight = -1

	var first Result
	for i, p := range []int{1, 2, 8} {
		cfg := base
		cfg.Searcher.Parallelism = p
		res := Register(seq.Frames[1], seq.Frames[0], cfg)
		if i == 0 {
			first = res
			continue
		}
		if res.Transform != first.Transform {
			t.Errorf("parallelism %d: approx transform differs from parallelism 1", p)
		}
		if res.NodesVisited != first.NodesVisited {
			t.Errorf("parallelism %d: approx visit counts differ (%d vs %d)",
				p, res.NodesVisited, first.NodesVisited)
		}
	}
}

// TestICPReciprocalParallelMatchesSequential exercises the reciprocal
// RPCE path, whose back-queries run as a second batch per iteration.
func TestICPReciprocalParallelMatchesSequential(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 80))
	base := pipelineTestConfig()
	base.ICP.Reciprocal = true

	serial := base
	serial.Searcher.Parallelism = 1
	parallel := base
	parallel.Searcher.Parallelism = 4

	resS := Register(seq.Frames[1], seq.Frames[0], serial)
	resP := Register(seq.Frames[1], seq.Frames[0], parallel)
	if resS.Transform != resP.Transform {
		t.Errorf("reciprocal RPCE: parallel transform differs from sequential")
	}
	if resS.ICP.Iterations != resP.ICP.Iterations {
		t.Errorf("reciprocal RPCE: iteration counts differ (%d vs %d)",
			resS.ICP.Iterations, resP.ICP.Iterations)
	}
}
