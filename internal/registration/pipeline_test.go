package registration

import (
	"math"
	"testing"

	"tigris/internal/features"
	"tigris/internal/geom"
	"tigris/internal/synth"
)

// featDescriptors aliases the features type for test brevity.
type featDescriptors = features.Descriptors

func TestMotionPriorRejectsFlippedInitial(t *testing.T) {
	// The street scene is roughly 180°-rotation symmetric, so feature
	// matching can produce a *consistent* flipped hypothesis. The motion
	// prior must reject it (consecutive 10 Hz frames cannot flip).
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 40))
	cfg := pipelineTestConfig()
	res := Register(seq.Frames[1], seq.Frames[0], cfg)
	if res.Initial.RotationAngle() > 0.6+1e-9 {
		t.Errorf("initial rotation %v rad escaped the motion prior", res.Initial.RotationAngle())
	}
	if res.Initial.TranslationNorm() > 5+1e-9 {
		t.Errorf("initial translation %v m escaped the motion prior", res.Initial.TranslationNorm())
	}
}

func TestMotionPriorDisable(t *testing.T) {
	// Negative bounds disable the prior; the pipeline must still run.
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 41))
	cfg := pipelineTestConfig()
	cfg.MaxInitialTranslation = -1
	cfg.MaxInitialRotation = -1
	res := Register(seq.Frames[1], seq.Frames[0], cfg)
	if res.Total <= 0 {
		t.Error("pipeline with disabled prior did not run")
	}
}

func TestOtherTimeNonNegative(t *testing.T) {
	r := Result{}
	if r.OtherTime() != 0 {
		t.Error("zero result should have zero other time")
	}
	r.Total = 100
	r.KDSearchTime = 70
	r.KDBuildTime = 50 // over-attribution must clamp, not go negative
	if r.OtherTime() != 0 {
		t.Errorf("OtherTime = %v, want clamped 0", r.OtherTime())
	}
	r.KDBuildTime = 10
	if r.OtherTime() != 20 {
		t.Errorf("OtherTime = %v, want 20", r.OtherTime())
	}
}

func TestStageTimesTotal(t *testing.T) {
	s := StageTimes{
		NormalEstimation:      1,
		KeypointDetection:     2,
		DescriptorCalculation: 3,
		KPCE:                  4,
		Rejection:             5,
		RPCE:                  6,
		ErrorMinimization:     7,
	}
	if s.Total() != 28 {
		t.Errorf("Total = %v", s.Total())
	}
}

func TestRegisterWithTwoStageApproxKeepsAccuracy(t *testing.T) {
	// §6.3: the approximate thresholds have no impact on translational
	// error and negligible rotational impact. Verify on an eval-scale pair
	// (slow test, but it is the paper's headline accuracy claim).
	if testing.Short() {
		t.Skip("eval-scale registration in -short mode")
	}
	seq := synth.GenerateSequence(synth.EvalSequenceConfig(2, 44))
	truth := seq.GroundTruthDelta(0)

	exact := pipelineTestConfig()
	exact.Searcher = SearcherConfig{Kind: SearchTwoStage, TopHeight: -1}
	eExact := EvaluatePair(Register(seq.Frames[1], seq.Frames[0], exact).Transform, truth)

	approx := pipelineTestConfig()
	approx.Searcher = SearcherConfig{Kind: SearchTwoStageApprox, TopHeight: -1}
	eApprox := EvaluatePair(Register(seq.Frames[1], seq.Frames[0], approx).Transform, truth)

	if eApprox.TranslationalPct > eExact.TranslationalPct+3 {
		t.Errorf("approximate search cost %.2f%% translational accuracy (exact %.2f%%)",
			eApprox.TranslationalPct-eExact.TranslationalPct, eExact.TranslationalPct)
	}
	if math.Abs(eApprox.RotationalDegPerM-eExact.RotationalDegPerM) > 0.1 {
		t.Errorf("approximate search changed rotational error: %.4f vs %.4f",
			eApprox.RotationalDegPerM, eExact.RotationalDegPerM)
	}
}

func TestSearcherKindStrings(t *testing.T) {
	for kind, want := range map[SearcherKind]string{
		SearchCanonical:      "Canonical",
		SearchTwoStage:       "TwoStage",
		SearchTwoStageApprox: "TwoStageApprox",
		SearcherKind(99):     "UnknownSearcher",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", kind, got, want)
		}
	}
}

func TestRejectionAndMetricStrings(t *testing.T) {
	if RejectThreshold.String() != "Threshold" || RejectRANSAC.String() != "RANSAC" {
		t.Error("rejection method strings wrong")
	}
	if PointToPoint.String() != "PointToPoint" || PointToPlane.String() != "PointToPlane" {
		t.Error("error metric strings wrong")
	}
	if ErrorMetric(9).String() != "UnknownErrorMetric" || RejectionMethod(9).String() != "UnknownRejection" {
		t.Error("unknown enum strings wrong")
	}
}

func TestBruteKthFeatureFallback(t *testing.T) {
	d := descriptorsFromRows(2, [][]float64{{0, 0}, {3, 4}})
	row, d2, ok := bruteKthFeature(d, []float64{0, 0}, 5)
	if !ok || row != 1 || math.Abs(d2-25) > 1e-12 {
		t.Errorf("fallback = row %d d2 %v ok %v", row, d2, ok)
	}
	if _, _, ok := bruteKthFeature(descriptorsFromRows(2, nil), []float64{0, 0}, 1); ok {
		t.Error("empty descriptor set should not match")
	}
}

func TestInitialGuardLowRatio(t *testing.T) {
	// A tiny inlier set must trigger the identity fallback even when the
	// transform itself is plausible.
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 45))
	cfg := pipelineTestConfig()
	// Absurd RANSAC inlier distance forces near-zero inliers.
	cfg.Rejection.RANSACInlierDist = 1e-9
	res := Register(seq.Frames[1], seq.Frames[0], cfg)
	if !res.Initial.NearlyEqual(geom.IdentityTransform(), 1e-12) {
		t.Errorf("expected identity fallback, got %v", res.Initial)
	}
}

// descriptorsFromRows builds a Descriptors matrix for tests.
func descriptorsFromRows(dim int, rows [][]float64) *featDescriptors {
	d := &featDescriptors{Dim: dim}
	for _, r := range rows {
		d.Data = append(d.Data, r...)
	}
	return d
}
