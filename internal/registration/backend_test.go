package registration

import (
	"strings"
	"testing"

	"tigris/internal/search"
	"tigris/internal/synth"
)

// TestLegacyKindMapsToBackendName pins the deprecated enum → registry
// name mapping.
func TestLegacyKindMapsToBackendName(t *testing.T) {
	for kind, want := range map[SearcherKind]string{
		SearchCanonical:      search.BackendCanonical,
		SearchTwoStage:       search.BackendTwoStage,
		SearchTwoStageApprox: search.BackendTwoStageApprox,
	} {
		if got := (SearcherConfig{Kind: kind}).BackendName(); got != want {
			t.Errorf("Kind %v → %q, want %q", kind, got, want)
		}
	}
	// An explicit name wins over the enum.
	c := SearcherConfig{Backend: search.BackendBruteForce, Kind: SearchTwoStage}
	if got := c.BackendName(); got != search.BackendBruteForce {
		t.Errorf("explicit Backend lost to Kind: %q", got)
	}
}

// TestLegacyKindBitIdentical is the compatibility acceptance test: a
// pipeline selected through the deprecated enum must produce the same
// registration result, bit for bit, as the same backend selected by
// registry name.
func TestLegacyKindBitIdentical(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 46))
	for kind, name := range map[SearcherKind]string{
		SearchCanonical:      search.BackendCanonical,
		SearchTwoStage:       search.BackendTwoStage,
		SearchTwoStageApprox: search.BackendTwoStageApprox,
	} {
		legacy := pipelineTestConfig()
		legacy.Searcher = SearcherConfig{Kind: kind, TopHeight: -1}
		named := pipelineTestConfig()
		named.Searcher = SearcherConfig{Backend: name, TopHeight: -1}

		a := Register(seq.Frames[1].Clone(), seq.Frames[0].Clone(), legacy)
		b := Register(seq.Frames[1].Clone(), seq.Frames[0].Clone(), named)
		if a.Transform != b.Transform {
			t.Errorf("%s: enum-selected transform %v != name-selected %v", name, a.Transform, b.Transform)
		}
		if a.SearchQueries != b.SearchQueries || a.NodesVisited != b.NodesVisited {
			t.Errorf("%s: search metrics diverged: %d/%d queries, %d/%d visits",
				name, a.SearchQueries, b.SearchQueries, a.NodesVisited, b.NodesVisited)
		}
	}
}

// TestRegisterWithBruteForceBackend: the oracle backend must run the full
// pipeline and agree with the canonical tree exactly (both are exact
// structures over the same points).
func TestRegisterWithBruteForceBackend(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 47))
	canonical := pipelineTestConfig()
	canonical.Searcher = SearcherConfig{Backend: search.BackendCanonical}
	brute := pipelineTestConfig()
	brute.Searcher = SearcherConfig{Backend: search.BackendBruteForce}

	a := Register(seq.Frames[1].Clone(), seq.Frames[0].Clone(), canonical)
	b := Register(seq.Frames[1].Clone(), seq.Frames[0].Clone(), brute)
	if a.Transform != b.Transform {
		t.Errorf("bruteforce transform %v != canonical %v", b.Transform, a.Transform)
	}
}

// TestSearcherConfigValidate covers the boundary checks.
func TestSearcherConfigValidate(t *testing.T) {
	if err := (SearcherConfig{Backend: "no-such"}).Validate(); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend Validate = %v", err)
	}
	if err := (SearcherConfig{Backend: search.BackendTrace}).Validate(); err == nil {
		t.Error("trace without a sink must fail validation")
	}
	if err := (SearcherConfig{
		Backend: search.BackendTrace,
		Options: search.Options{search.OptTraceSink: &search.TraceLog{}, search.OptTraceInner: search.BackendTwoStage},
	}).Validate(); err != nil {
		t.Errorf("valid trace config rejected: %v", err)
	}
	if err := (SearcherConfig{Kind: SearchTwoStageApprox, TopHeight: -1}).Validate(); err != nil {
		t.Errorf("legacy config rejected: %v", err)
	}
	// Options overlay: a typed knob must lose to the free-form bag — and
	// a bad overlay value must fail.
	bad := SearcherConfig{Backend: search.BackendTwoStage, TopHeight: -1,
		Options: search.Options{search.OptTopHeight: "tall"}}
	if err := bad.Validate(); err == nil {
		t.Error("bad option type must fail validation")
	}
	overlay := SearcherConfig{Backend: search.BackendTwoStage, TopHeight: -1,
		Options: search.Options{search.OptTopHeight: 3}}
	if got, err := overlay.BackendOptions().Int(search.OptTopHeight, 0); err != nil || got != 3 {
		t.Errorf("Options overlay lost: top_height = %d, %v", got, err)
	}
}

// TestEffectiveParallelism: the Options bag's parallelism must govern
// the KPCE feature-tree stage exactly as it governs the searcher (an
// Options entry wins over the typed field; JSON numbers coerce).
func TestEffectiveParallelism(t *testing.T) {
	if got := (SearcherConfig{Parallelism: 3}).EffectiveParallelism(); got != 3 {
		t.Errorf("typed field: %d, want 3", got)
	}
	c := SearcherConfig{Parallelism: 3, Options: search.Options{search.OptParallelism: float64(1)}}
	if got := c.EffectiveParallelism(); got != 1 {
		t.Errorf("Options overlay: %d, want 1", got)
	}
	bad := SearcherConfig{Parallelism: 2, Options: search.Options{search.OptParallelism: "x"}}
	if got := bad.EffectiveParallelism(); got != 2 {
		t.Errorf("uncoercible option should fall back to typed field: %d", got)
	}
}

// TestNewSearcherPanicsOnBadConfig: deep in the pipeline a bad config is
// a panic (boundaries are expected to Validate).
func TestNewSearcherPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("newSearcher with an unknown backend must panic")
		}
	}()
	newSearcher(nil, SearcherConfig{Backend: "no-such"})
}

// TestTraceStageAttribution: a traced Register run must label every
// recorded batch with the pipeline stage that issued it, and the
// co-sim's stage weighting must see those labels (the Fig. 6 breakdown).
func TestTraceStageAttribution(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 48))
	log := &search.TraceLog{}
	cfg := pipelineTestConfig()
	cfg.Searcher = SearcherConfig{
		Backend: search.BackendTrace,
		Options: search.Options{search.OptTraceSink: log, search.OptTraceInner: search.BackendCanonical},
	}
	Register(seq.Frames[1].Clone(), seq.Frames[0].Clone(), cfg)

	counts := map[string]int64{}
	for _, b := range log.Batches() {
		counts[b.Stage] += int64(len(b.Queries))
	}
	for _, stage := range []string{search.StageNormals, search.StageKeypoints, search.StageDescriptors, search.StageRPCE} {
		if counts[stage] == 0 {
			t.Errorf("no queries attributed to stage %q (got %v)", stage, counts)
		}
	}
	if counts[""] != 0 {
		t.Errorf("%d queries left unattributed", counts[""])
	}
	// RPCE must be NN-shaped, normals radius-shaped.
	for _, b := range log.Batches() {
		if b.Stage == search.StageRPCE && b.Kind != search.TraceNearest {
			t.Errorf("RPCE batch recorded as %v", b.Kind)
		}
		if b.Stage == search.StageNormals && b.Kind != search.TraceRadius {
			t.Errorf("normal-estimation batch recorded as %v", b.Kind)
		}
	}
}
