package registration

import (
	"math"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/linalg"
)

// This file holds the SoA float32 variants of the error-minimization
// reductions: the same Umeyama / point-to-plane LM / RMSE math as
// transform.go, but streaming correspondence slabs (cloud.Slab) instead
// of AoS []geom.Vec3. ICP gathers its correspondences directly into
// pooled slabs (12 B/point instead of 24), so each solver iteration
// walks half the bytes; every accumulation dequantizes to float64 and
// folds in accumChunk order, keeping results bit-identical at any
// Parallelism for the same (float32) inputs.

// EstimateRigidTransformSlab solves the point-to-point alignment over
// paired correspondence slabs (see EstimateRigidTransform).
func EstimateRigidTransformSlab(src, dst *cloud.Slab) (geom.Transform, bool) {
	return EstimateRigidTransformSlabPar(src, dst, 1)
}

// EstimateRigidTransformSlabPar is EstimateRigidTransformSlab with the
// centroid and cross-covariance accumulation spread over up to `workers`
// goroutines; results are bit-identical at any worker count (see
// accumChunk).
func EstimateRigidTransformSlabPar(src, dst *cloud.Slab, workers int) (geom.Transform, bool) {
	if src.Len() != dst.Len() || src.Len() < 3 {
		return geom.IdentityTransform(), false
	}
	n := float64(src.Len())
	cp := reduceChunks(src.Len(), workers,
		func(lo, hi int) centroidPart {
			var p centroidPart
			for i := lo; i < hi; i++ {
				p.cs = p.cs.Add(src.At(i))
				p.cd = p.cd.Add(dst.At(i))
			}
			return p
		},
		func(a, b centroidPart) centroidPart {
			a.cs = a.cs.Add(b.cs)
			a.cd = a.cd.Add(b.cd)
			return a
		})
	cs := cp.cs.Scale(1 / n)
	cd := cp.cd.Scale(1 / n)

	h := reduceChunks(src.Len(), workers,
		func(lo, hi int) geom.Mat3 {
			var hp geom.Mat3
			for i := lo; i < hi; i++ {
				hp = hp.Add(geom.OuterProduct(src.At(i).Sub(cs), dst.At(i).Sub(cd)))
			}
			return hp
		},
		geom.Mat3.Add)
	return rigidFromStats(h, cs, cd)
}

// EstimatePointToPlaneSlab solves the point-to-plane alignment over
// correspondence slabs; dst must carry the target surface normals (see
// EstimatePointToPlane).
func EstimatePointToPlaneSlab(src, dst *cloud.Slab) (geom.Transform, bool) {
	return EstimatePointToPlaneSlabPar(src, dst, 1)
}

// EstimatePointToPlaneSlabPar is EstimatePointToPlaneSlab with the
// normal-equation and cost accumulations spread over up to `workers`
// goroutines; results are bit-identical at any worker count.
func EstimatePointToPlaneSlabPar(src, dst *cloud.Slab, workers int) (geom.Transform, bool) {
	if src.Len() != dst.Len() || !dst.HasNormals() || src.Len() < 6 {
		return geom.IdentityTransform(), false
	}
	cur := geom.IdentityTransform()
	lambda := 1e-4
	cost := pointToPlaneCostSlab(cur, src, dst, workers)
	// A handful of damped Gauss-Newton steps suffices: the outer ICP loop
	// re-linearizes anyway.
	for iter := 0; iter < 6; iter++ {
		eq := reduceChunks(src.Len(), workers,
			func(lo, hi int) normalEqPart {
				var p normalEqPart
				for i := lo; i < hi; i++ {
					s := cur.Apply(src.At(i))
					n := dst.NormalAt(i)
					r := s.Sub(dst.At(i)).Dot(n)
					c := s.Cross(n)
					row := [6]float64{c.X, c.Y, c.Z, n.X, n.Y, n.Z}
					for a := 0; a < 6; a++ {
						p.jtr[a] += row[a] * r
						for b := a; b < 6; b++ {
							p.jtj[a*6+b] += row[a] * row[b]
						}
					}
				}
				return p
			},
			normalEqPart.add)
		jtj, jtr := eq.jtj, eq.jtr
		for a := 0; a < 6; a++ {
			for b := 0; b < a; b++ {
				jtj[a*6+b] = jtj[b*6+a]
			}
		}
		improved := false
		for attempt := 0; attempt < 8; attempt++ {
			damped := jtj
			for a := 0; a < 6; a++ {
				d := jtj[a*6+a]
				if d == 0 {
					d = 1
				}
				damped[a*6+a] += lambda * d
			}
			neg := make([]float64, 6)
			for a := 0; a < 6; a++ {
				neg[a] = -jtr[a]
			}
			delta, err := linalg.SolveDense(damped[:], neg)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := twistToTransform(delta).Compose(cur)
			trialCost := pointToPlaneCostSlab(trial, src, dst, workers)
			if trialCost < cost {
				cur = trial
				cost = trialCost
				lambda = math.Max(lambda*0.3, 1e-12)
				improved = true
				if vecNorm6(delta) < 1e-10 {
					return cur, true
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			break
		}
	}
	return cur, true
}

func pointToPlaneCostSlab(t geom.Transform, src, dst *cloud.Slab, workers int) float64 {
	return reduceChunks(src.Len(), workers,
		func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				r := t.Apply(src.At(i)).Sub(dst.At(i)).Dot(dst.NormalAt(i))
				s += r * r
			}
			return s
		},
		func(a, b float64) float64 { return a + b })
}

// AlignmentRMSESlab is AlignmentRMSE over correspondence slabs.
func AlignmentRMSESlab(tr geom.Transform, src, dst *cloud.Slab) float64 {
	return AlignmentRMSESlabPar(tr, src, dst, 1)
}

// AlignmentRMSESlabPar is AlignmentRMSESlab with the squared-error
// accumulation spread over up to `workers` goroutines; results are
// bit-identical at any worker count.
func AlignmentRMSESlabPar(tr geom.Transform, src, dst *cloud.Slab, workers int) float64 {
	if src.Len() == 0 {
		return 0
	}
	s := reduceChunks(src.Len(), workers,
		func(lo, hi int) float64 {
			var p float64
			for i := lo; i < hi; i++ {
				p += tr.Apply(src.At(i)).Dist2(dst.At(i))
			}
			return p
		},
		func(a, b float64) float64 { return a + b })
	return math.Sqrt(s / float64(src.Len()))
}
