package registration

import (
	"time"

	"tigris/internal/cloud"
	"tigris/internal/features"
	"tigris/internal/geom"
	"tigris/internal/obs"
	"tigris/internal/search"
)

// PreparedFrame holds every per-cloud product of the registration
// front-end: the (optionally downsampled) front-end cloud with its
// normals, the search index over it, the detected key-points and their
// descriptors, and — built lazily, because only a pair's *target* needs
// it — the fine-tuning index over the raw cloud.
//
// The type exists so callers that register a *stream* of frames can
// compute this state once per frame and reuse it when the frame flips
// roles from a pair's source to the next pair's target, instead of
// re-running the whole front-end the way per-pair Register does. All of
// the contained computations are deterministic functions of the cloud
// and the config, so reuse is bit-identical to recomputation for the
// exact search backends.
//
// A PreparedFrame is not safe for concurrent use: its searchers carry
// per-instance metrics, and FineTarget mutates lazily-built state.
type PreparedFrame struct {
	// Raw is the frame's SoA float32 slab (the cloud as given, quantized
	// once on ingest); fine-tuning RPCE always refines with these points.
	Raw *cloud.Slab
	// FE is the front-end slab (== Raw unless VoxelLeaf downsampling is
	// active). Its normal slabs are filled by PrepareFrame.
	FE *cloud.Slab
	// FESearch indexes FE zero-copy; every front-end stage queried it.
	FESearch search.Searcher
	// Keypoints are indices into FE, ordered by response.
	Keypoints []int
	// KeypointPts are the key-point positions (aligned with Keypoints and
	// the descriptor rows).
	KeypointPts []geom.Vec3
	// Desc are the key-point descriptors.
	Desc *features.Descriptors

	// NormalTime / KeypointTime / DescriptorTime are this cloud's shares
	// of the Fig. 4a front-end stages; PrepTotal is the whole front-end
	// wall time including downsampling and index construction.
	NormalTime     time.Duration
	KeypointTime   time.Duration
	DescriptorTime time.Duration
	PrepTotal      time.Duration

	// Builds counts search-index constructions for this frame: 1 after
	// PrepareFrame, 2 once FineTarget has built the raw-cloud index. The
	// streaming engine asserts through this counter that each frame's
	// trees are built exactly once per session.
	Builds int

	fineSearch      search.Searcher
	fineNormalsDone bool
}

// PrepareFrame runs the per-cloud half of the registration front-end
// (downsample → index → normals → key-points → descriptors) and returns
// the reusable frame state. Register calls it once per cloud; a
// streaming session calls it once per *frame* and reuses the result for
// both roles the frame plays.
func PrepareFrame(c *cloud.Cloud, cfg PipelineConfig) *PreparedFrame {
	return PrepareFrameSlab(cloud.SlabFromCloud(c), cfg)
}

// PrepareFrameSlab is PrepareFrame for callers that already hold the
// frame as an SoA slab (the streaming engine, the loop detector's
// verification clones): no further quantization or copying happens — the
// search indexes are built zero-copy over the slab, and the slab's normal
// arrays receive the normal-estimation output. The detector takes
// ownership of s (its normals are written in place).
func PrepareFrameSlab(s *cloud.Slab, cfg PipelineConfig) *PreparedFrame {
	start := time.Now()
	f := &PreparedFrame{Raw: s, FE: s}
	if cfg.VoxelLeaf > 0 && !cfg.FrontEndOnRaw {
		f.FE = cloud.VoxelDownsampleSlab(s, cfg.VoxelLeaf)
	}
	f.FESearch = newSearcher(f.FE, cfg.Searcher)
	f.Builds++

	// Normal estimation, optionally with shell error injection (§4.2).
	// Each stage tags the searcher first so a trace backend attributes
	// its batches per stage (Fig. 6-style weighting in the co-sim).
	ne := f.FESearch
	if cfg.Inject.NEShell != nil {
		ne = &search.ShellSearcher{Inner: f.FESearch, R1: cfg.Inject.NEShell[0], R2: cfg.Inject.NEShell[1]}
	}
	search.TagStage(ne, search.StageNormals)
	t0 := time.Now()
	features.EstimateNormals(f.FE, ne, cfg.Normal)
	f.NormalTime = time.Since(t0)

	search.TagStage(f.FESearch, search.StageKeypoints)
	t0 = time.Now()
	f.Keypoints = features.DetectKeypoints(f.FE, f.FESearch, cfg.Keypoint)
	f.KeypointTime = time.Since(t0)

	search.TagStage(f.FESearch, search.StageDescriptors)
	t0 = time.Now()
	f.Desc = features.ComputeDescriptors(f.FE, f.FESearch, f.Keypoints, cfg.Descriptor)
	f.DescriptorTime = time.Since(t0)

	f.KeypointPts = selectSlabPoints(f.FE, f.Keypoints)
	f.PrepTotal = time.Since(start)
	// Telemetry tap: the stage durations above were measured regardless;
	// with a recorder configured they also become latency samples. A nil
	// recorder makes all four calls no-ops.
	cfg.Obs.Observe(obs.StageNormals, f.NormalTime)
	cfg.Obs.Observe(obs.StageKeypoints, f.KeypointTime)
	cfg.Obs.Observe(obs.StageDescriptors, f.DescriptorTime)
	cfg.Obs.Observe(obs.StagePrep, f.PrepTotal)
	return f
}

// FineTarget returns the searcher and cloud RPCE queries when this frame
// is a pair's target. When the front-end ran on the raw cloud the
// front-end index is reused; otherwise a raw-cloud index is built on
// first use and cached for every later pair that targets this frame.
// Point-to-plane fine-tuning additionally needs raw-cloud normals, which
// are likewise estimated once.
func (f *PreparedFrame) FineTarget(cfg PipelineConfig) (search.Searcher, *cloud.Slab) {
	if f.FE == f.Raw {
		return f.FESearch, f.FE
	}
	if f.fineSearch == nil {
		f.fineSearch = newSearcher(f.Raw, cfg.Searcher)
		f.Builds++
	}
	if cfg.ICP.Metric == PointToPlane && !f.fineNormalsDone {
		search.TagStage(f.fineSearch, search.StageNormals)
		features.EstimateNormals(f.Raw, f.fineSearch, cfg.Normal)
		f.fineNormalsDone = true
	}
	return f.fineSearch, f.Raw
}

// StorageBytes returns the frame's point-storage footprint: the raw
// slab plus, when downsampling produced a distinct front-end cloud, the
// front-end slab. The search indexes alias these slabs (zero-copy
// builds), so this is the frame's whole coordinate payload; the bench
// reports it as point-storage bytes/frame.
func (f *PreparedFrame) StorageBytes() int64 {
	if f.Raw == nil {
		return 0
	}
	b := f.Raw.Bytes()
	if f.FE != nil && f.FE != f.Raw {
		b += f.FE.Bytes()
	}
	return b
}

// AosStorageBytes returns what the same frame state would cost in the
// pre-slab AoS float64 layout — the denominator of the bench's
// layout-reduction ratio.
func (f *PreparedFrame) AosStorageBytes() int64 {
	if f.Raw == nil {
		return 0
	}
	b := f.Raw.AosBytes()
	if f.FE != nil && f.FE != f.Raw {
		b += f.FE.AosBytes()
	}
	return b
}

// Searchers returns every search index this frame has built so far (the
// front-end index, plus the fine-tuning index once FineTarget created
// it), for metrics roll-up.
func (f *PreparedFrame) Searchers() []search.Searcher {
	s := []search.Searcher{f.FESearch}
	if f.fineSearch != nil {
		s = append(s, f.fineSearch)
	}
	return s
}

// SearchMetrics sums the accumulated metrics of this frame's searchers.
func (f *PreparedFrame) SearchMetrics() search.Metrics {
	var m search.Metrics
	for _, s := range f.Searchers() {
		m.Merge(*s.Metrics())
	}
	return m
}

// Release returns the frame's pooled buffers (currently the descriptor
// slab) for reuse and drops the references that keep the front-end
// products alive. Call it when the frame has played its last role in a
// session; the frame must not be used afterwards.
func (f *PreparedFrame) Release() {
	features.RecycleDescriptors(f.Desc)
	f.Desc = nil
	f.FESearch = nil
	f.fineSearch = nil
	f.Keypoints = nil
	f.KeypointPts = nil
	f.FE = nil
	f.Raw = nil
}

// Align runs the pair-level back half of the pipeline on two prepared
// frames: KPCE in feature space, correspondence rejection, the initial
// estimate with its robustness guards, and ICP fine-tuning against the
// target's raw cloud. It fills every Result field except the per-cloud
// front-end stage times, which the caller composes from the frames'
// prep timings (Register does exactly that).
func Align(src, dst *PreparedFrame, cfg PipelineConfig) Result {
	start := time.Now()
	var res Result
	res.SrcKeypoints = len(src.Keypoints)
	res.DstKeypoints = len(dst.Keypoints)

	// (4) KPCE in feature space.
	t0 := time.Now()
	var corr []Correspondence
	var featSearchTime, featBuildTime time.Duration
	if cfg.Inject.KPCEKthNN > 1 {
		corr = kpceKthNN(src.Desc, dst.Desc, cfg.Inject.KPCEKthNN)
	} else {
		kpceCfg := cfg.KPCE
		if kpceCfg.Parallelism == 0 {
			kpceCfg.Parallelism = cfg.Searcher.EffectiveParallelism()
		}
		corr, featSearchTime, featBuildTime = kpceTimed(src.Desc, dst.Desc, kpceCfg)
	}
	res.Stage.KPCE = time.Since(t0)
	res.Correspondences = len(corr)

	// (5) Rejection + initial transform. Rejection inherits the searcher
	// parallelism (like KPCE) so -parallel governs RANSAC hypothesis
	// scoring too; results are bit-identical at any setting.
	t0 = time.Now()
	rejCfg := cfg.Rejection
	if rejCfg.Parallelism == 0 {
		rejCfg.Parallelism = cfg.Searcher.EffectiveParallelism()
	}
	inliers := RejectCorrespondences(corr, src.KeypointPts, dst.KeypointPts, rejCfg)
	res.Inliers = len(inliers)
	initial, ok := estimateFromCorr(inliers, src.KeypointPts, dst.KeypointPts)
	// Guard against a junk initial estimate: a tiny or low-ratio consensus
	// means the front-end found no reliable matches (e.g. feature-poor
	// scenes), and a wrong initialization is worse for ICP than none —
	// exactly the local-minimum trap the paper's two-phase design exists
	// to avoid (§3.1).
	if !ok || len(inliers) < 6 || (len(corr) > 0 && float64(len(inliers)) < 0.2*float64(len(corr))) {
		initial = geom.IdentityTransform()
	}
	maxT, maxR := cfg.MaxInitialTranslation, cfg.MaxInitialRotation
	if maxT == 0 {
		maxT = 5
	}
	if maxR == 0 {
		maxR = 0.6
	}
	if (maxT > 0 && initial.TranslationNorm() > maxT) || (maxR > 0 && initial.RotationAngle() > maxR) {
		initial = geom.IdentityTransform()
	}
	res.Stage.Rejection = time.Since(t0)
	res.Initial = initial
	// Both correspondence lists are fully consumed; their slabs go back
	// to the pool for the next pair.
	recycleCorr(corr, inliers)

	// --- Fine-tuning phase (paper Fig. 2, right) ---
	icpTarget, _ := dst.FineTarget(cfg)
	// The target index may have been built by the other pipeline stage
	// under a different worker share (front-end reuse in a pipelined
	// stream splits the pool between stages); re-pin its batch width to
	// THIS stage's share so the adaptive split governs the RPCE batches
	// too. Exact backends are parallelism-invariant, so this never
	// changes results.
	icpTarget.SetParallelism(cfg.Searcher.EffectiveParallelism())
	search.TagStage(icpTarget, search.StageRPCE)
	var rpceSearch search.Searcher = icpTarget
	if cfg.Inject.RPCEKthNN > 1 {
		rpceSearch = &search.KthNNSearcher{Inner: icpTarget, K: cfg.Inject.RPCEKthNN}
	}
	// Fine-tuning always refines with the raw source points; the error
	// accumulation inherits the searcher parallelism like every other
	// stage.
	icpCfg := cfg.ICP
	if icpCfg.Parallelism == 0 {
		icpCfg.Parallelism = cfg.Searcher.EffectiveParallelism()
	}
	icpRes := ICP(src.Raw, rpceSearch, initial, icpCfg)
	res.ICP = icpRes
	res.Stage.RPCE = icpRes.RPCETime
	res.Stage.ErrorMinimization = icpRes.SolveTime
	res.Transform = icpRes.Transform

	// KPCE's feature trees count toward KD-tree time (Fig. 2 shading);
	// the 3D searchers' roll-up is the caller's job because their metrics
	// span the front-end too.
	res.KDSearchTime = featSearchTime
	res.KDBuildTime = featBuildTime
	res.Total = time.Since(start)
	// Telemetry tap for the pair stages and the ICP sub-spans (no-ops on
	// a nil recorder).
	cfg.Obs.Observe(obs.StageKPCE, res.Stage.KPCE)
	cfg.Obs.Observe(obs.StageRejection, res.Stage.Rejection)
	cfg.Obs.Observe(obs.StageRPCE, icpRes.RPCETime)
	cfg.Obs.Observe(obs.StageSolve, icpRes.SolveTime)
	cfg.Obs.Observe(obs.StageAlign, res.Total)
	return res
}
