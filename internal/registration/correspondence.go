// Package registration implements the paper's configurable two-phase point
// cloud registration pipeline (Fig. 2): an initial-estimation front-end
// (normals → key-points → descriptors → KPCE → rejection → transform) and
// an ICP fine-tuning phase (RPCE → transform estimation, iterated to
// convergence), together with the KITTI-style accuracy metrics and the
// error-injection experiment harness of §4.2.
package registration

import (
	"sort"
	"sync"

	"tigris/internal/features"
	"tigris/internal/geom"
	"tigris/internal/par"
)

// Correspondence pairs a source point index with a target point index.
type Correspondence struct {
	Source, Target int
	// Dist2 is the squared distance in whatever space the correspondence
	// was estimated (feature space for KPCE, 3D for RPCE).
	Dist2 float64
}

// corrSlabs pools correspondence slices. KPCE emits one correspondence
// list and rejection one inlier list per pair, forever, in a streaming
// session; both are fully consumed inside Align, so the slabs cycle
// through this pool instead of churning the heap. Slabs converge to the
// largest list seen.
var corrSlabs = sync.Pool{
	New: func() any {
		s := make([]Correspondence, 0, 256)
		return &s
	},
}

func getCorrSlab() []Correspondence {
	return (*corrSlabs.Get().(*[]Correspondence))[:0]
}

func putCorrSlab(s []Correspondence) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	corrSlabs.Put(&s)
}

// recycleCorr returns the correspondence list and its rejected subset to
// the slab pool once Align has consumed both. The two may share a backing
// array (rejection falls back to the unfiltered set on degenerate data),
// in which case the storage is recycled once.
func recycleCorr(corr, inliers []Correspondence) {
	shared := cap(corr) > 0 && cap(inliers) > 0 && &corr[:1][0] == &inliers[:1][0]
	putCorrSlab(corr)
	if !shared {
		putCorrSlab(inliers)
	}
}

// KPCEConfig configures Key-Point Correspondence Estimation. The
// reciprocity knob is the Tbl. 1 parameter.
type KPCEConfig struct {
	// Reciprocal keeps only pairs that are mutually nearest in feature
	// space.
	Reciprocal bool
	// Parallelism is the feature-tree batch worker count (<= 0 selects
	// NumCPU). The pipeline propagates its searcher parallelism here when
	// the field is left zero.
	Parallelism int
}

// EstimateKeypointCorrespondences matches source key-point descriptors to
// target key-point descriptors by feature-space nearest neighbor (paper
// Fig. 2, KPCE). Returned indices are positions in the key-point lists,
// not raw cloud indices.
func EstimateKeypointCorrespondences(src, dst *features.Descriptors, cfg KPCEConfig) []Correspondence {
	out, _, _ := kpceMatch(src, dst, cfg)
	return out
}

// kpceScratch pools the per-call KPCE query-row staging (the row views
// handed to the batched feature trees). References to descriptor rows are
// cleared before the scratch returns to the pool so a parked scratch
// cannot pin retired descriptor slabs.
type kpceScratch struct {
	rows, backRows [][]float64
	cand           []int
}

var kpceScratchPool = sync.Pool{New: func() any { return new(kpceScratch) }}

func (sc *kpceScratch) release() {
	clear(sc.rows)
	clear(sc.backRows)
	kpceScratchPool.Put(sc)
}

// kpceMatch is the shared KPCE kernel: forward (and optionally backward)
// feature-space NN matching through batched feature-tree queries. The
// trees are returned so callers can roll their build/search times into
// the pipeline's KD-tree accounting. The correspondence list is assembled
// in source order, bit-identical to per-query sequential matching; it
// lives in a pooled slab (see recycleCorr).
func kpceMatch(src, dst *features.Descriptors, cfg KPCEConfig) ([]Correspondence, *features.FeatureTree, *features.FeatureTree) {
	if src.Count() == 0 || dst.Count() == 0 {
		return nil, nil, nil
	}
	dstTree := features.NewFeatureTree(dst)
	var srcTree *features.FeatureTree
	if cfg.Reciprocal {
		srcTree = features.NewFeatureTree(src)
	}
	n := src.Count()
	sc := kpceScratchPool.Get().(*kpceScratch)
	defer sc.release()
	if cap(sc.rows) < n {
		sc.rows = make([][]float64, n)
	}
	rows := sc.rows[:n]
	for i := range rows {
		rows[i] = src.Row(i)
	}
	matches := dstTree.NearestBatch(rows, cfg.Parallelism)

	var backs []features.FeatureMatch
	if cfg.Reciprocal {
		// Back-query only the rows whose forward query matched — the same
		// queries the sequential loop issued. (A forward miss is possible
		// despite dst being non-empty, e.g. a NaN descriptor row.)
		cand := sc.cand[:0]
		for i, m := range matches {
			if m.Row >= 0 {
				cand = append(cand, i)
			}
		}
		sc.cand = cand
		if cap(sc.backRows) < len(cand) {
			sc.backRows = make([][]float64, len(cand))
		}
		backRows := sc.backRows[:len(cand)]
		for ci, i := range cand {
			backRows[ci] = dst.Row(matches[i].Row)
		}
		backs = srcTree.NearestBatch(backRows, cfg.Parallelism)
	}

	out := getCorrSlab()
	ci := 0
	for i, m := range matches {
		if m.Row < 0 {
			continue
		}
		if cfg.Reciprocal {
			back := backs[ci]
			ci++
			if back.Row != i {
				continue
			}
		}
		out = append(out, Correspondence{Source: i, Target: m.Row, Dist2: m.Dist2})
	}
	// Both match batches are fully consumed; their slabs go back to the
	// feature-tree pool for the next pair.
	features.RecycleMatches(matches)
	if backs != nil {
		features.RecycleMatches(backs)
	}
	return out, dstTree, srcTree
}

// RejectionMethod selects the correspondence rejection algorithm (Tbl. 1).
type RejectionMethod int

const (
	// RejectThreshold drops correspondences whose feature distance exceeds
	// a multiple of the median distance.
	RejectThreshold RejectionMethod = iota
	// RejectRANSAC keeps the largest consensus set under a rigid-transform
	// hypothesis (Fischler & Bolles [19]).
	RejectRANSAC
)

// String implements fmt.Stringer.
func (m RejectionMethod) String() string {
	switch m {
	case RejectThreshold:
		return "Threshold"
	case RejectRANSAC:
		return "RANSAC"
	default:
		return "UnknownRejection"
	}
}

// RejectionConfig parameterizes correspondence rejection.
type RejectionConfig struct {
	Method RejectionMethod
	// DistanceRatio for RejectThreshold: keep pairs with feature distance
	// below DistanceRatio × median (default 2.0).
	DistanceRatio float64
	// RANSACIterations (default 400).
	RANSACIterations int
	// RANSACInlierDist is the 3D inlier distance in meters (default 0.5).
	RANSACInlierDist float64
	// Seed makes RANSAC deterministic.
	Seed int64
	// Parallelism is the RANSAC hypothesis-scoring worker count (<= 0
	// selects NumCPU, 1 forces the sequential path). The pipeline
	// propagates its searcher parallelism here when the field is left
	// zero. Results are bit-identical at any setting: samples are drawn
	// sequentially from the deterministic PCG before scoring fans out,
	// and the best consensus is reduced with a deterministic tie-break.
	Parallelism int
}

func (c *RejectionConfig) defaults() {
	if c.DistanceRatio == 0 {
		c.DistanceRatio = 2.0
	}
	if c.RANSACIterations == 0 {
		c.RANSACIterations = 400
	}
	if c.RANSACInlierDist == 0 {
		c.RANSACInlierDist = 0.5
	}
}

// RejectCorrespondences filters the key-point correspondences. srcPts and
// dstPts are the 3D key-point positions aligned with the descriptor rows.
func RejectCorrespondences(corr []Correspondence, srcPts, dstPts []geom.Vec3, cfg RejectionConfig) []Correspondence {
	cfg.defaults()
	if len(corr) == 0 {
		return nil
	}
	switch cfg.Method {
	case RejectRANSAC:
		return ransacReject(corr, srcPts, dstPts, cfg)
	default:
		return thresholdReject(corr, cfg)
	}
}

// thresholdReject keeps correspondences whose feature distance is below
// DistanceRatio × median feature distance.
func thresholdReject(corr []Correspondence, cfg RejectionConfig) []Correspondence {
	ds := make([]float64, len(corr))
	for i, c := range corr {
		ds[i] = c.Dist2
	}
	sort.Float64s(ds)
	median := ds[len(ds)/2]
	limit := median * cfg.DistanceRatio * cfg.DistanceRatio // distances are squared
	out := getCorrSlab()
	for _, c := range corr {
		if c.Dist2 <= limit {
			out = append(out, c)
		}
	}
	return out
}

// ransacScratch holds one rejection call's pre-drawn hypothesis samples,
// pooled so steady-state RANSAC allocates nothing but its result slab.
type ransacScratch struct {
	triples [][3]int32
}

var ransacScratchPool = sync.Pool{New: func() any { return new(ransacScratch) }}

// hypoScore is one worker's running best consensus. count is stored +1 so
// the zero value means "no hypothesis scored yet" (a real hypothesis can
// have consensus 0 on degenerate data).
type hypoScore struct {
	countPlus1 int
	hyp        int
}

// better reports whether (count, hyp) beats s under the deterministic
// reduction order: larger consensus wins, ties go to the lower hypothesis
// index — exactly the first-best-wins rule of the sequential loop.
func (s *hypoScore) better(countPlus1, hyp int) bool {
	return countPlus1 > s.countPlus1 || (countPlus1 == s.countPlus1 && hyp < s.hyp)
}

// ransacReject runs RANSAC over 3-point rigid-transform hypotheses and
// returns the inliers of the best hypothesis (in a pooled slab; see
// recycleCorr).
//
// The hypothesis loop is parallel (the paper-adjacent ROADMAP item): all
// RANSACIterations 3-point samples are drawn sequentially from the
// deterministic PCG first — so the random stream never depends on the
// schedule — then hypotheses are estimated and scored on the worker pool,
// each worker reducing its own best consensus, and the per-worker bests
// are merged with the (count, lowest-hypothesis-index) tie-break. The
// selected hypothesis, and therefore the returned inlier set, is
// bit-identical to the sequential loop at any Parallelism.
func ransacReject(corr []Correspondence, srcPts, dstPts []geom.Vec3, cfg RejectionConfig) []Correspondence {
	if len(corr) < 3 {
		return corr
	}
	rng := newPCG(uint64(cfg.Seed)*6364136223846793005 + 1442695040888963407)
	inlierD2 := cfg.RANSACInlierDist * cfg.RANSACInlierDist
	iters := cfg.RANSACIterations

	// Phase 1: draw every hypothesis' 3 correspondence indices up front.
	// Degenerate draws (repeated indices) burn their PCG outputs exactly
	// like the sequential loop did and are marked invalid.
	sc := ransacScratchPool.Get().(*ransacScratch)
	defer ransacScratchPool.Put(sc)
	if cap(sc.triples) < iters {
		sc.triples = make([][3]int32, iters)
	}
	triples := sc.triples[:iters]
	for h := range triples {
		i0 := int32(rng.next() % uint64(len(corr)))
		i1 := int32(rng.next() % uint64(len(corr)))
		i2 := int32(rng.next() % uint64(len(corr)))
		if i0 == i1 || i1 == i2 || i0 == i2 {
			triples[h] = [3]int32{-1, -1, -1}
			continue
		}
		triples[h] = [3]int32{i0, i1, i2}
	}

	// Phase 2: estimate and score hypotheses on the worker pool.
	score := func(h int) (int, bool) {
		t3 := triples[h]
		if t3[0] < 0 {
			return 0, false
		}
		tr, ok := estimateFromTriple(t3, corr, srcPts, dstPts)
		if !ok {
			return 0, false
		}
		count := 0
		for _, c := range corr {
			if tr.Apply(srcPts[c.Source]).Dist2(dstPts[c.Target]) <= inlierD2 {
				count++
			}
		}
		return count, true
	}
	var best hypoScore
	par.Sharded(iters, par.Workers(cfg.Parallelism),
		func(shard *hypoScore, h int) {
			if count, ok := score(h); ok && shard.better(count+1, h) {
				*shard = hypoScore{countPlus1: count + 1, hyp: h}
			}
		},
		func(shard *hypoScore) {
			if shard.countPlus1 > 0 && best.better(shard.countPlus1, shard.hyp) {
				best = *shard
			}
		})

	// Phase 3: re-estimate the winning hypothesis and collect its inliers
	// in correspondence order.
	if best.countPlus1 == 0 {
		return corr // no valid hypothesis: keep the unfiltered set
	}
	tr, _ := estimateFromTriple(triples[best.hyp], corr, srcPts, dstPts)
	inliers := getCorrSlab()
	for _, c := range corr {
		if tr.Apply(srcPts[c.Source]).Dist2(dstPts[c.Target]) <= inlierD2 {
			inliers = append(inliers, c)
		}
	}
	if len(inliers) < 3 {
		// Degenerate data: fall back to the unfiltered set rather than
		// returning an unusable correspondence list.
		putCorrSlab(inliers)
		return corr
	}
	return inliers
}

// estimateFromTriple estimates the rigid transform of one 3-sample
// hypothesis without allocating. It calls the sequential accumulation
// kernel directly — the same kernel EstimateRigidTransform dispatches 3
// points to — because routing through the Par wrapper would mark the
// sample arrays as escaping (its chunked branch captures the slices in
// goroutine closures) and heap-allocate every hypothesis.
func estimateFromTriple(t3 [3]int32, corr []Correspondence, srcPts, dstPts []geom.Vec3) (geom.Transform, bool) {
	var src, dst [3]geom.Vec3
	for j, ci := range t3 {
		c := corr[ci]
		src[j] = srcPts[c.Source]
		dst[j] = dstPts[c.Target]
	}
	return estimateRigidSeq(src[:], dst[:])
}

// estimateFromCorr estimates the rigid transform aligning the source side
// of the correspondences onto the target side (Umeyama, see transform.go).
func estimateFromCorr(corr []Correspondence, srcPts, dstPts []geom.Vec3) (geom.Transform, bool) {
	src := make([]geom.Vec3, len(corr))
	dst := make([]geom.Vec3, len(corr))
	for i, c := range corr {
		src[i] = srcPts[c.Source]
		dst[i] = dstPts[c.Target]
	}
	return EstimateRigidTransform(src, dst)
}

// pcg is a tiny PCG-XSH-RR deterministic PRNG for RANSAC sampling.
type pcg struct {
	state uint64
}

func newPCG(seed uint64) *pcg { return &pcg{state: seed | 1} }

func (p *pcg) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	x := p.state
	count := x >> 59
	x ^= x >> 18
	x = (x >> 27) & 0xffffffff
	return (x >> count) | (x << ((32 - count) & 31))
}
