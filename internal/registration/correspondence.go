// Package registration implements the paper's configurable two-phase point
// cloud registration pipeline (Fig. 2): an initial-estimation front-end
// (normals → key-points → descriptors → KPCE → rejection → transform) and
// an ICP fine-tuning phase (RPCE → transform estimation, iterated to
// convergence), together with the KITTI-style accuracy metrics and the
// error-injection experiment harness of §4.2.
package registration

import (
	"sort"

	"tigris/internal/features"
	"tigris/internal/geom"
)

// Correspondence pairs a source point index with a target point index.
type Correspondence struct {
	Source, Target int
	// Dist2 is the squared distance in whatever space the correspondence
	// was estimated (feature space for KPCE, 3D for RPCE).
	Dist2 float64
}

// KPCEConfig configures Key-Point Correspondence Estimation. The
// reciprocity knob is the Tbl. 1 parameter.
type KPCEConfig struct {
	// Reciprocal keeps only pairs that are mutually nearest in feature
	// space.
	Reciprocal bool
	// Parallelism is the feature-tree batch worker count (<= 0 selects
	// NumCPU). The pipeline propagates its searcher parallelism here when
	// the field is left zero.
	Parallelism int
}

// EstimateKeypointCorrespondences matches source key-point descriptors to
// target key-point descriptors by feature-space nearest neighbor (paper
// Fig. 2, KPCE). Returned indices are positions in the key-point lists,
// not raw cloud indices.
func EstimateKeypointCorrespondences(src, dst *features.Descriptors, cfg KPCEConfig) []Correspondence {
	out, _, _ := kpceMatch(src, dst, cfg)
	return out
}

// kpceMatch is the shared KPCE kernel: forward (and optionally backward)
// feature-space NN matching through batched feature-tree queries. The
// trees are returned so callers can roll their build/search times into
// the pipeline's KD-tree accounting. The correspondence list is assembled
// in source order, bit-identical to per-query sequential matching.
func kpceMatch(src, dst *features.Descriptors, cfg KPCEConfig) ([]Correspondence, *features.FeatureTree, *features.FeatureTree) {
	if src.Count() == 0 || dst.Count() == 0 {
		return nil, nil, nil
	}
	dstTree := features.NewFeatureTree(dst)
	var srcTree *features.FeatureTree
	if cfg.Reciprocal {
		srcTree = features.NewFeatureTree(src)
	}
	n := src.Count()
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = src.Row(i)
	}
	matches := dstTree.NearestBatch(rows, cfg.Parallelism)

	var backs []features.FeatureMatch
	if cfg.Reciprocal {
		// Back-query only the rows whose forward query matched — the same
		// queries the sequential loop issued. (A forward miss is possible
		// despite dst being non-empty, e.g. a NaN descriptor row.)
		cand := make([]int, 0, n)
		for i, m := range matches {
			if m.Row >= 0 {
				cand = append(cand, i)
			}
		}
		backRows := make([][]float64, len(cand))
		for ci, i := range cand {
			backRows[ci] = dst.Row(matches[i].Row)
		}
		backs = srcTree.NearestBatch(backRows, cfg.Parallelism)
	}

	var out []Correspondence
	ci := 0
	for i, m := range matches {
		if m.Row < 0 {
			continue
		}
		if cfg.Reciprocal {
			back := backs[ci]
			ci++
			if back.Row != i {
				continue
			}
		}
		out = append(out, Correspondence{Source: i, Target: m.Row, Dist2: m.Dist2})
	}
	return out, dstTree, srcTree
}

// RejectionMethod selects the correspondence rejection algorithm (Tbl. 1).
type RejectionMethod int

const (
	// RejectThreshold drops correspondences whose feature distance exceeds
	// a multiple of the median distance.
	RejectThreshold RejectionMethod = iota
	// RejectRANSAC keeps the largest consensus set under a rigid-transform
	// hypothesis (Fischler & Bolles [19]).
	RejectRANSAC
)

// String implements fmt.Stringer.
func (m RejectionMethod) String() string {
	switch m {
	case RejectThreshold:
		return "Threshold"
	case RejectRANSAC:
		return "RANSAC"
	default:
		return "UnknownRejection"
	}
}

// RejectionConfig parameterizes correspondence rejection.
type RejectionConfig struct {
	Method RejectionMethod
	// DistanceRatio for RejectThreshold: keep pairs with feature distance
	// below DistanceRatio × median (default 2.0).
	DistanceRatio float64
	// RANSACIterations (default 400).
	RANSACIterations int
	// RANSACInlierDist is the 3D inlier distance in meters (default 0.5).
	RANSACInlierDist float64
	// Seed makes RANSAC deterministic.
	Seed int64
}

func (c *RejectionConfig) defaults() {
	if c.DistanceRatio == 0 {
		c.DistanceRatio = 2.0
	}
	if c.RANSACIterations == 0 {
		c.RANSACIterations = 400
	}
	if c.RANSACInlierDist == 0 {
		c.RANSACInlierDist = 0.5
	}
}

// RejectCorrespondences filters the key-point correspondences. srcPts and
// dstPts are the 3D key-point positions aligned with the descriptor rows.
func RejectCorrespondences(corr []Correspondence, srcPts, dstPts []geom.Vec3, cfg RejectionConfig) []Correspondence {
	cfg.defaults()
	if len(corr) == 0 {
		return nil
	}
	switch cfg.Method {
	case RejectRANSAC:
		return ransacReject(corr, srcPts, dstPts, cfg)
	default:
		return thresholdReject(corr, cfg)
	}
}

// thresholdReject keeps correspondences whose feature distance is below
// DistanceRatio × median feature distance.
func thresholdReject(corr []Correspondence, cfg RejectionConfig) []Correspondence {
	ds := make([]float64, len(corr))
	for i, c := range corr {
		ds[i] = c.Dist2
	}
	sort.Float64s(ds)
	median := ds[len(ds)/2]
	limit := median * cfg.DistanceRatio * cfg.DistanceRatio // distances are squared
	out := corr[:0:0]
	for _, c := range corr {
		if c.Dist2 <= limit {
			out = append(out, c)
		}
	}
	return out
}

// ransacReject runs RANSAC over 3-point rigid-transform hypotheses and
// returns the inliers of the best hypothesis.
func ransacReject(corr []Correspondence, srcPts, dstPts []geom.Vec3, cfg RejectionConfig) []Correspondence {
	if len(corr) < 3 {
		return corr
	}
	rng := newPCG(uint64(cfg.Seed)*6364136223846793005 + 1442695040888963407)
	inlierD2 := cfg.RANSACInlierDist * cfg.RANSACInlierDist

	bestCount := -1
	var bestInliers []Correspondence
	sample := make([]Correspondence, 3)
	for iter := 0; iter < cfg.RANSACIterations; iter++ {
		// Draw 3 distinct correspondences.
		i0 := int(rng.next() % uint64(len(corr)))
		i1 := int(rng.next() % uint64(len(corr)))
		i2 := int(rng.next() % uint64(len(corr)))
		if i0 == i1 || i1 == i2 || i0 == i2 {
			continue
		}
		sample[0], sample[1], sample[2] = corr[i0], corr[i1], corr[i2]
		tr, ok := estimateFromCorr(sample, srcPts, dstPts)
		if !ok {
			continue
		}
		count := 0
		for _, c := range corr {
			if tr.Apply(srcPts[c.Source]).Dist2(dstPts[c.Target]) <= inlierD2 {
				count++
			}
		}
		if count > bestCount {
			bestCount = count
			bestInliers = bestInliers[:0]
			for _, c := range corr {
				if tr.Apply(srcPts[c.Source]).Dist2(dstPts[c.Target]) <= inlierD2 {
					bestInliers = append(bestInliers, c)
				}
			}
		}
	}
	if len(bestInliers) < 3 {
		// Degenerate data: fall back to the unfiltered set rather than
		// returning an unusable correspondence list.
		return corr
	}
	return bestInliers
}

// estimateFromCorr estimates the rigid transform aligning the source side
// of the correspondences onto the target side (Umeyama, see transform.go).
func estimateFromCorr(corr []Correspondence, srcPts, dstPts []geom.Vec3) (geom.Transform, bool) {
	src := make([]geom.Vec3, len(corr))
	dst := make([]geom.Vec3, len(corr))
	for i, c := range corr {
		src[i] = srcPts[c.Source]
		dst[i] = dstPts[c.Target]
	}
	return EstimateRigidTransform(src, dst)
}

// pcg is a tiny PCG-XSH-RR deterministic PRNG for RANSAC sampling.
type pcg struct {
	state uint64
}

func newPCG(seed uint64) *pcg { return &pcg{state: seed | 1} }

func (p *pcg) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	x := p.state
	count := x >> 59
	x ^= x >> 18
	x = (x >> 27) & 0xffffffff
	return (x >> count) | (x << ((32 - count) & 31))
}
