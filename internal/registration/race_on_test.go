//go:build race

package registration

// raceEnabled: see race_off_test.go.
const raceEnabled = true
