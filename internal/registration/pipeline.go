package registration

import (
	"fmt"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/features"
	"tigris/internal/geom"
	"tigris/internal/obs"
	"tigris/internal/search"
)

// SearcherKind selects the KD-tree variant the pipeline routes every
// neighbor search through.
//
// Deprecated: backends are selected by registry name now
// (SearcherConfig.Backend); the enum is kept as an alias that maps onto
// the names and is consulted only when Backend is empty.
type SearcherKind int

const (
	// SearchCanonical uses the classic KD-tree (the §3 characterization
	// baseline).
	SearchCanonical SearcherKind = iota
	// SearchTwoStage uses the two-stage tree with exact search.
	SearchTwoStage
	// SearchTwoStageApprox uses the two-stage tree with the approximate
	// leader/follower algorithm on the dense stages (NE radius search and
	// RPCE NN search), exactly the stages §4.2 found error-tolerant.
	SearchTwoStageApprox
)

// String implements fmt.Stringer.
func (k SearcherKind) String() string {
	switch k {
	case SearchCanonical:
		return "Canonical"
	case SearchTwoStage:
		return "TwoStage"
	case SearchTwoStageApprox:
		return "TwoStageApprox"
	default:
		return "UnknownSearcher"
	}
}

// LegacySearcherName maps the deprecated user-facing searcher aliases
// ("canonical", "twostage", "approx") onto registry backend names — the
// single definition shared by the CLI -searcher flags and the service's
// "searcher" JSON field, so the deprecated surfaces cannot drift apart.
func LegacySearcherName(alias string) (string, bool) {
	switch alias {
	case "canonical":
		return search.BackendCanonical, true
	case "twostage":
		return search.BackendTwoStage, true
	case "approx":
		return search.BackendTwoStageApprox, true
	}
	return "", false
}

// SearcherConfig bundles the search-backend selection. Backends are
// chosen by registry name (search.RegisterBackend / search.Backends), so
// the pipeline, the streaming engine, the HTTP service, and the DSE
// harness all grow new structures without code changes here; the legacy
// Kind enum remains as a deprecated alias onto the names and produces
// bit-identical results.
type SearcherConfig struct {
	// Backend is the registry name of the search backend ("canonical",
	// "twostage", "twostage-approx", "bruteforce", "trace", or any name
	// registered through search.RegisterBackend). Empty falls back to the
	// deprecated Kind enum (whose zero value selects "canonical").
	Backend string
	// Options is the backend-specific option bag (see the search.Opt*
	// keys), overlaid on the typed knobs below — an Options entry wins
	// over the corresponding typed field. Values may come from JSON, CLI
	// flags, or Go code (e.g. the trace backend's *search.TraceLog sink).
	Options search.Options
	// Kind is the deprecated enum selector, consulted only when Backend
	// is empty: SearchCanonical → "canonical", SearchTwoStage →
	// "twostage", SearchTwoStageApprox → "twostage-approx".
	Kind SearcherKind
	// TopHeight for the two-stage variants (paper default 10; <0 sizes
	// leaf sets to ~128 points).
	TopHeight int
	// NNThreshold is the approximate-search NN discriminator in meters
	// (default twostage.DefaultNNThreshold).
	NNThreshold float64
	// RadiusThresholdFrac is the approximate-search radius discriminator
	// as a fraction of the search radius (default
	// twostage.DefaultRadiusThresholdFrac).
	RadiusThresholdFrac float64
	// Parallelism is the batch worker count every query-dominated stage
	// runs with: 0 (the default) selects runtime.NumCPU(), 1 forces the
	// sequential path, and any other positive value pins the pool size.
	// Exact backends return bit-identical results at any setting.
	Parallelism int
}

// BackendName resolves the effective registry name: Backend when set,
// otherwise the legacy Kind mapping.
func (c SearcherConfig) BackendName() string {
	if c.Backend != "" {
		return c.Backend
	}
	switch c.Kind {
	case SearchTwoStage:
		return search.BackendTwoStage
	case SearchTwoStageApprox:
		return search.BackendTwoStageApprox
	default:
		return search.BackendCanonical
	}
}

// EffectiveParallelism resolves the batch worker count the pipeline's
// non-searcher batch consumers (the KPCE feature trees) should match: an
// Options entry under search.OptParallelism wins over the typed field,
// exactly as it does for the searcher itself via BackendOptions.
func (c SearcherConfig) EffectiveParallelism() int {
	if p, err := c.Options.Int(search.OptParallelism, c.Parallelism); err == nil {
		return p
	}
	return c.Parallelism
}

// WithParallelism returns a copy of c pinned to n batch workers: the
// typed knob is set and any Options override is dropped, so n governs
// every parallelism consumer (searcher construction, KPCE, rejection,
// ICP error accumulation). The streaming engine uses this to hand each
// pipeline stage its share of an adaptively split worker pool; exact
// backends return bit-identical results at any setting, so re-pinning
// never changes output.
func (c SearcherConfig) WithParallelism(n int) SearcherConfig {
	c.Parallelism = n
	if _, ok := c.Options[search.OptParallelism]; ok {
		c.Options = c.Options.Clone()
		delete(c.Options, search.OptParallelism)
	}
	return c
}

// BackendOptions resolves the effective option bag: the typed knobs
// serialized under their search.Opt* keys (only the keys the selected
// backend understands; for the trace decorator that is its inner
// backend), overlaid with the free-form Options.
func (c SearcherConfig) BackendOptions() search.Options {
	opts := search.Options{search.OptParallelism: c.Parallelism}
	structural := c.BackendName()
	if structural == search.BackendTrace {
		if inner, err := c.Options.String(search.OptTraceInner, search.BackendCanonical); err == nil {
			structural = inner
		}
	}
	switch structural {
	case search.BackendTwoStage:
		opts[search.OptTopHeight] = c.TopHeight
	case search.BackendTwoStageApprox:
		opts[search.OptTopHeight] = c.TopHeight
		opts[search.OptNNThreshold] = c.NNThreshold
		opts[search.OptRadiusThresholdFrac] = c.RadiusThresholdFrac
	}
	for k, v := range c.Options {
		opts[k] = v
	}
	return opts
}

// Validate reports whether the configured backend exists and accepts the
// resolved options, by constructing it over an empty point set (cheap for
// every built-in). Boundary code (CLI flags, HTTP session creation) calls
// this so a bad name or option fails fast with an actionable error
// instead of panicking mid-pipeline.
func (c SearcherConfig) Validate() error {
	_, err := search.NewByName(c.BackendName(), nil, c.BackendOptions())
	return err
}

// Injection configures the §4.2 error-injection study; the zero value
// injects nothing.
type Injection struct {
	// RPCEKthNN replaces RPCE's nearest neighbor with the k-th nearest
	// (Fig. 7a "RPCE (dense)"); 0 or 1 disables.
	RPCEKthNN int
	// KPCEKthNN does the same in feature space during KPCE (Fig. 7a
	// "KPCE (sparse)"); 0 or 1 disables.
	KPCEKthNN int
	// NEShell replaces NE's radius-r ball with the shell [R1, R2]
	// (Fig. 7b); nil disables.
	NEShell *[2]float64
}

// PipelineConfig is the full knob set of Fig. 2 / Tbl. 1.
type PipelineConfig struct {
	// VoxelLeaf downsamples both clouds before the front-end (0 disables).
	// The front-end stages run on the downsampled clouds; fine-tuning RPCE
	// runs on the raw clouds as the paper's pipeline does.
	VoxelLeaf float64
	// FrontEndOnRaw forces front-end stages onto the raw clouds even when
	// VoxelLeaf is set (accuracy-oriented design points).
	FrontEndOnRaw bool

	Normal     features.NormalConfig
	Keypoint   features.KeypointConfig
	Descriptor features.DescriptorConfig
	KPCE       KPCEConfig
	Rejection  RejectionConfig
	ICP        ICPConfig
	Searcher   SearcherConfig
	Inject     Injection

	// Obs, when non-nil, receives every stage's wall time as a latency
	// sample (internal/obs): PrepareFrame records the per-cloud front-end
	// stages, Align the pair stages and its ICP sub-spans. Recording is
	// allocation-free and never influences results — trajectories are
	// bit-identical with Obs set or nil — so services leave it on
	// permanently; nil (the default) records nothing.
	Obs *obs.Recorder

	// MaxInitialTranslation / MaxInitialRotation bound the front-end's
	// initial estimate. Consecutive LiDAR frames (10 Hz) cannot move
	// meters or flip around, but scene symmetry (a street looks alike
	// fore and aft) occasionally yields a *consistent* wrong hypothesis
	// that distance-based rejection cannot catch; odometry pipelines
	// guard with exactly this kind of motion prior. Violations fall back
	// to the identity initialization. Zero values select 5 m and 0.6 rad;
	// negative values disable the check.
	MaxInitialTranslation float64
	MaxInitialRotation    float64
}

// StageTimes is the Fig. 4a breakdown: wall time per pipeline stage.
type StageTimes struct {
	NormalEstimation      time.Duration
	KeypointDetection     time.Duration
	DescriptorCalculation time.Duration
	KPCE                  time.Duration
	Rejection             time.Duration
	RPCE                  time.Duration
	ErrorMinimization     time.Duration
}

// Total sums all stages.
func (s StageTimes) Total() time.Duration {
	return s.NormalEstimation + s.KeypointDetection + s.DescriptorCalculation +
		s.KPCE + s.Rejection + s.RPCE + s.ErrorMinimization
}

// Result is the pipeline output plus all instrumentation.
type Result struct {
	// Transform maps source-frame points into the target frame (the
	// paper's M of Eq. 1).
	Transform geom.Transform
	// Initial is the front-end's initial estimate before fine-tuning.
	Initial geom.Transform
	// Stage holds the Fig. 4a per-stage times.
	Stage StageTimes
	// Total is the end-to-end wall time.
	Total time.Duration
	// KDSearchTime / KDBuildTime are the Fig. 4b split; OtherTime is the
	// remainder of Total.
	KDSearchTime time.Duration
	KDBuildTime  time.Duration
	// NodesVisited counts every point/node distance computation in 3D
	// search, feeding the baseline cost models.
	NodesVisited int64
	// SearchQueries counts 3D search calls.
	SearchQueries int64
	// ICP reports fine-tuning details.
	ICP ICPResult
	// Front-end population counts.
	SrcKeypoints, DstKeypoints int
	Correspondences, Inliers   int
}

// OtherTime returns Total − KDSearchTime − KDBuildTime (clamped at 0).
func (r *Result) OtherTime() time.Duration {
	o := r.Total - r.KDSearchTime - r.KDBuildTime
	if o < 0 {
		return 0
	}
	return o
}

// newSearcher builds the configured search backend zero-copy over the
// frame slab through the registry. Construction errors (unknown name,
// bad option) are programming/config errors at this depth — boundary
// code is expected to have run SearcherConfig.Validate — so they panic
// with the underlying message.
func newSearcher(slab *cloud.Slab, cfg SearcherConfig) search.Searcher {
	s, err := search.NewByNameSlab(cfg.BackendName(), slab, cfg.BackendOptions())
	if err != nil {
		panic(fmt.Sprintf("registration: %v (check configs at the boundary with SearcherConfig.Validate)", err))
	}
	return s
}

// Register runs the full two-phase pipeline, estimating the transform that
// maps src onto dst. It is a thin wrapper over the reusable stages: one
// PrepareFrame per cloud (the front-end) and one Align for the pair (KPCE
// through fine-tuning). Streaming callers (internal/stream) drive the same
// stages directly so a frame's front-end runs once even when the frame
// participates in two consecutive pairs; the outputs are identical either
// way because every stage is a deterministic function of its cloud(s) and
// the config.
func Register(src, dst *cloud.Cloud, cfg PipelineConfig) Result {
	start := time.Now()
	ps := PrepareFrame(src, cfg)
	pd := PrepareFrame(dst, cfg)
	res := Align(ps, pd, cfg)

	// Per-cloud front-end stage times (Fig. 4a rows).
	res.Stage.NormalEstimation = ps.NormalTime + pd.NormalTime
	res.Stage.KeypointDetection = ps.KeypointTime + pd.KeypointTime
	res.Stage.DescriptorCalculation = ps.DescriptorTime + pd.DescriptorTime

	// --- Instrumentation roll-up (Fig. 4b split) ---
	// Align already contributed the KPCE feature trees' share; the 3D
	// searchers (front-end indexes plus the lazily-built fine-tuning
	// index) are fresh per Register call, so their cumulative metrics are
	// exactly this pair's.
	for _, s := range append(ps.Searchers(), pd.Searchers()...) {
		m := s.Metrics()
		res.KDSearchTime += m.SearchTime
		res.KDBuildTime += m.BuildTime
		res.NodesVisited += m.NodesVisited
		res.SearchQueries += m.Queries
	}

	res.Total = time.Since(start)
	return res
}

// kpceTimed runs KPCE and reports the feature-tree search/build times so
// they can be attributed to KD-tree time (KPCE is a KD-tree-search stage
// in the paper's accounting, Fig. 2 shading). The matching itself runs
// through the batched feature-tree path, so the reported search time is
// the wall time of the parallel batches.
func kpceTimed(src, dst *features.Descriptors, cfg KPCEConfig) ([]Correspondence, time.Duration, time.Duration) {
	out, dstTree, srcTree := kpceMatch(src, dst, cfg)
	var searchT, buildT time.Duration
	if dstTree != nil {
		searchT = dstTree.SearchTime
		buildT = dstTree.BuildTime
	}
	if srcTree != nil {
		searchT += srcTree.SearchTime
		buildT += srcTree.BuildTime
	}
	return out, searchT, buildT
}

// kpceKthNN is the Fig. 7a sparse-injection variant: each source feature
// is matched to its k-th nearest target feature instead of the nearest.
func kpceKthNN(src, dst *features.Descriptors, k int) []Correspondence {
	if src.Count() == 0 || dst.Count() == 0 {
		return nil
	}
	var out []Correspondence
	for i := 0; i < src.Count(); i++ {
		row, d2, ok := bruteKthFeature(dst, src.Row(i), k)
		if !ok {
			continue
		}
		out = append(out, Correspondence{Source: i, Target: row, Dist2: d2})
	}
	return out
}

// bruteKthFeature returns the k-th nearest descriptor row (1-based k),
// falling back to the farthest available when the set is smaller than k.
func bruteKthFeature(d *features.Descriptors, q []float64, k int) (int, float64, bool) {
	n := d.Count()
	if n == 0 {
		return 0, 0, false
	}
	type cand struct {
		row int
		d2  float64
	}
	cands := make([]cand, n)
	for i := 0; i < n; i++ {
		cands[i] = cand{row: i, d2: l2dist2Rows(q, d.Row(i))}
	}
	// Partial selection of the k smallest.
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < n; j++ {
			if cands[j].d2 < cands[min].d2 {
				min = j
			}
		}
		cands[i], cands[min] = cands[min], cands[i]
	}
	return cands[k-1].row, cands[k-1].d2, true
}

func l2dist2Rows(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

func selectSlabPoints(s *cloud.Slab, idx []int) []geom.Vec3 {
	out := make([]geom.Vec3, len(idx))
	for i, j := range idx {
		out[i] = s.At(j)
	}
	return out
}
