package registration

import (
	"math"

	"tigris/internal/geom"
)

// FrameError is the KITTI odometry error of one registered frame pair
// (paper §6.1: "standard rotational and translational errors [22]").
type FrameError struct {
	// Translational error as a percentage of the distance traveled.
	TranslationalPct float64
	// Rotational error in degrees per meter traveled.
	RotationalDegPerM float64
}

// EvaluatePair compares an estimated frame-to-frame transform against the
// ground truth. Both transforms map frame i+1 coordinates into frame i
// coordinates.
func EvaluatePair(estimated, truth geom.Transform) FrameError {
	pathLen := truth.TranslationNorm()
	if pathLen < 1e-9 {
		pathLen = 1e-9 // static pair: report absolute errors per meter
	}
	errT := estimated.Inverse().Compose(truth)
	return FrameError{
		TranslationalPct:  errT.TranslationNorm() / pathLen * 100,
		RotationalDegPerM: errT.RotationAngle() * 180 / math.Pi / pathLen,
	}
}

// SequenceError aggregates frame errors the way the paper reports them:
// mean across all frames of a sequence, with the standard deviation used
// for Fig. 7's error bars.
type SequenceError struct {
	MeanTranslationalPct   float64
	MeanRotationalDegPerM  float64
	StdevTranslationalPct  float64
	StdevRotationalDegPerM float64
	Frames                 int
}

// Aggregate summarizes per-frame errors.
func Aggregate(errs []FrameError) SequenceError {
	n := len(errs)
	if n == 0 {
		return SequenceError{}
	}
	var st, sr float64
	for _, e := range errs {
		st += e.TranslationalPct
		sr += e.RotationalDegPerM
	}
	mt := st / float64(n)
	mr := sr / float64(n)
	var vt, vr float64
	for _, e := range errs {
		vt += (e.TranslationalPct - mt) * (e.TranslationalPct - mt)
		vr += (e.RotationalDegPerM - mr) * (e.RotationalDegPerM - mr)
	}
	return SequenceError{
		MeanTranslationalPct:   mt,
		MeanRotationalDegPerM:  mr,
		StdevTranslationalPct:  math.Sqrt(vt / float64(n)),
		StdevRotationalDegPerM: math.Sqrt(vr / float64(n)),
		Frames:                 n,
	}
}
