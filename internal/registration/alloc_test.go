package registration

import (
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/search"
	"tigris/internal/synth"
)

// Steady-state allocation budgets for the per-pair hot path. A streaming
// session runs rejection and fine-tuning once per pair forever; with the
// pooled sample/correspondence slabs and the reusable ICP scratch these
// paths must settle to (near) zero allocations per pair. The bounds are
// deliberately tight: a regression that re-introduces per-hypothesis or
// per-iteration slices trips them immediately.

func TestRANSACSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	corr, srcPts, dstPts := ransacFixture(300, 0.3, 21)
	cfg := RejectionConfig{Method: RejectRANSAC, Seed: 21, Parallelism: 1}

	// Warm the sample scratch and correspondence slab pools.
	for i := 0; i < 3; i++ {
		recycleCorr(nil, RejectCorrespondences(corr, srcPts, dstPts, cfg))
	}
	allocs := testing.AllocsPerRun(20, func() {
		inliers := RejectCorrespondences(corr, srcPts, dstPts, cfg)
		recycleCorr(nil, inliers)
	})
	// Tolerated residue: a handful of per-CALL fixed costs (the scoring
	// closures handed to the worker pool and one pooled-slab pointer
	// round trip) — nothing proportional to the hypothesis count. Before
	// the pooled scratch and the stack-allocated 3-point solves this path
	// allocated ~4 slices per hypothesis (≈1600 per call at the default
	// 400 iterations).
	if allocs > 6 {
		t.Errorf("RANSAC rejection allocates %.1f times per call steady-state, want <= 6", allocs)
	}
}

func TestICPSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 22))
	src := cloud.SlabFromCloud(seq.Frames[1])
	dst := cloud.SlabFromCloud(seq.Frames[0])
	target := search.NewKDSearcherSlab(dst)
	target.SetParallelism(1)
	cfg := ICPConfig{MaxIterations: 4, Parallelism: 1}

	// Warm the ICP scratch (and let its buffers grow to this pair's
	// sizes).
	for i := 0; i < 2; i++ {
		ICP(src, target, geom.IdentityTransform(), cfg)
	}
	allocs := testing.AllocsPerRun(10, func() {
		ICP(src, target, geom.IdentityTransform(), cfg)
	})
	// Budget: ~15 word-sized allocations per iteration — the worker-pool
	// closures and chunk-partial arrays of the batched search and the
	// deterministic reductions — and nothing proportional to the point
	// count. The historical path allocated five-plus POINT-COUNT-sized
	// slices per iteration (moved source clone, query buffer, NN result
	// batch, gate index, correspondence arrays): megabytes per call where
	// this budget is a few hundred bytes.
	limit := 15.0 * float64(cfg.MaxIterations)
	if allocs > limit {
		t.Errorf("ICP allocates %.1f times per call steady-state, want <= %.0f", allocs, limit)
	}
}

// skipUnderRace skips allocation-budget tests when the race detector's
// shadow allocations would break AllocsPerRun.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under -race")
	}
}
