package registration

import (
	"math/rand"
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/search"
	"tigris/internal/synth"
)

// ransacFixture builds a correspondence set with a known rigid motion and
// a controllable outlier fraction, the shape RANSAC exists to clean up.
func ransacFixture(n int, outlierFrac float64, seed int64) ([]Correspondence, []geom.Vec3, []geom.Vec3) {
	rng := rand.New(rand.NewSource(seed))
	tr := geom.Transform{R: geom.RotZ(0.2), T: geom.Vec3{X: 1.5, Y: -0.7, Z: 0.1}}
	srcPts := make([]geom.Vec3, n)
	dstPts := make([]geom.Vec3, n)
	corr := make([]Correspondence, n)
	for i := range srcPts {
		srcPts[i] = geom.Vec3{X: rng.Float64() * 30, Y: rng.Float64() * 30, Z: rng.Float64() * 4}
		if rng.Float64() < outlierFrac {
			dstPts[i] = geom.Vec3{X: rng.Float64() * 30, Y: rng.Float64() * 30, Z: rng.Float64() * 4}
		} else {
			noise := geom.Vec3{X: rng.NormFloat64() * 0.02, Y: rng.NormFloat64() * 0.02, Z: rng.NormFloat64() * 0.02}
			dstPts[i] = tr.Apply(srcPts[i]).Add(noise)
		}
		corr[i] = Correspondence{Source: i, Target: i, Dist2: rng.Float64()}
	}
	return corr, srcPts, dstPts
}

// TestRANSACParallelMatchesSerial: parallel hypothesis scoring must pick
// the exact inlier set the sequential loop picks — samples are pre-drawn
// from the same PCG stream and the consensus reduction tie-breaks
// deterministically — at every worker count.
func TestRANSACParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 7, 2019} {
		corr, srcPts, dstPts := ransacFixture(300, 0.35, seed)
		base := RejectionConfig{Method: RejectRANSAC, Seed: seed}

		serial := base
		serial.Parallelism = 1
		want := RejectCorrespondences(corr, srcPts, dstPts, serial)
		if len(want) < 3 || len(want) >= len(corr) {
			t.Fatalf("seed %d: degenerate fixture (%d of %d inliers)", seed, len(want), len(corr))
		}

		for _, p := range []int{2, 3, 4, 8} {
			cfg := base
			cfg.Parallelism = p
			got := RejectCorrespondences(corr, srcPts, dstPts, cfg)
			if len(got) != len(want) {
				t.Fatalf("seed %d parallelism %d: %d inliers, serial found %d",
					seed, p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d parallelism %d: inlier %d differs: %+v vs %+v",
						seed, p, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRANSACDegenerateFallback: all-collinear samples never produce a
// valid hypothesis, and the unfiltered set must come back — identically —
// at any parallelism.
func TestRANSACDegenerateFallback(t *testing.T) {
	n := 20
	srcPts := make([]geom.Vec3, n)
	dstPts := make([]geom.Vec3, n)
	corr := make([]Correspondence, n)
	for i := range srcPts {
		// Collinear points defeat 3-point rigid estimation.
		srcPts[i] = geom.Vec3{X: float64(i)}
		dstPts[i] = geom.Vec3{X: float64(i) + 1}
		corr[i] = Correspondence{Source: i, Target: i}
	}
	for _, p := range []int{1, 4} {
		cfg := RejectionConfig{Method: RejectRANSAC, Seed: 3, Parallelism: p}
		got := RejectCorrespondences(corr, srcPts, dstPts, cfg)
		if len(got) != n {
			t.Fatalf("parallelism %d: degenerate fallback returned %d of %d", p, len(got), n)
		}
	}
}

// TestICPParallelErrorAccumulationMatchesSerial drives ICP alone — large
// enough that the fixed-chunk reductions in transform estimation span
// multiple chunks — and asserts bit-identical results across worker
// counts for both error metrics.
func TestICPParallelErrorAccumulationMatchesSerial(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 81))
	src := cloud.SlabFromCloud(seq.Frames[1])
	dst := cloud.SlabFromCloud(seq.Frames[0])
	if src.Len() <= accumChunk {
		t.Fatalf("fixture too small to span chunks: %d points", src.Len())
	}
	for _, metric := range []ErrorMetric{PointToPoint, PointToPlane} {
		tslab := dst.Clone()
		if metric == PointToPlane {
			// Cheap stand-in normals: the metric only needs a consistent
			// per-target-point direction to exercise the LM accumulation.
			tslab.EnsureNormals()
			for i := 0; i < tslab.Len(); i++ {
				tslab.SetNormal(i, geom.Vec3{Z: 1})
			}
		}
		target := search.NewKDSearcherSlab(tslab)
		target.SetParallelism(1)
		base := ICPConfig{Metric: metric, MaxIterations: 8}

		run := func(p int) ICPResult {
			cfg := base
			cfg.Parallelism = p
			return ICP(src, target, geom.IdentityTransform(), cfg)
		}
		want := run(1)
		for _, p := range []int{2, 4, 8} {
			got := run(p)
			if got.Transform != want.Transform {
				t.Errorf("%v parallelism %d: transform differs from serial\n%v\nvs\n%v",
					metric, p, got.Transform, want.Transform)
			}
			if got.Iterations != want.Iterations || got.FinalRMSE != want.FinalRMSE {
				t.Errorf("%v parallelism %d: convergence differs (%d/%g vs %d/%g)",
					metric, p, got.Iterations, got.FinalRMSE, want.Iterations, want.FinalRMSE)
			}
		}
	}
}

// TestEstimateRigidTransformParInvariant pins the reduction determinism
// at the unit level: multi-chunk inputs must give the same bits at any
// worker count.
func TestEstimateRigidTransformParInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 3*accumChunk + 517
	src := make([]geom.Vec3, n)
	dst := make([]geom.Vec3, n)
	tr := geom.Transform{R: geom.RotZ(0.3), T: geom.Vec3{X: 2}}
	for i := range src {
		src[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		dst[i] = tr.Apply(src[i])
	}
	want, ok := EstimateRigidTransformPar(src, dst, 1)
	if !ok {
		t.Fatal("estimation failed")
	}
	for _, w := range []int{2, 5, 16} {
		got, ok := EstimateRigidTransformPar(src, dst, w)
		if !ok || got != want {
			t.Fatalf("workers %d: transform differs from serial", w)
		}
	}
	rmse1 := AlignmentRMSEPar(tr, src, dst, 1)
	for _, w := range []int{3, 8} {
		if AlignmentRMSEPar(tr, src, dst, w) != rmse1 {
			t.Fatalf("workers %d: RMSE differs from serial", w)
		}
	}
}

// TestAlignRepinsTargetParallelism: a pipelined stream prepares a frame
// under one pool share and aligns against it under another; Align must
// re-pin the reused target index to ITS stage's share (the adaptive
// split is pointless if RPCE batches keep the prepare-time width).
func TestAlignRepinsTargetParallelism(t *testing.T) {
	seq := synth.GenerateSequence(synth.QuickSequenceConfig(2, 83))
	cfg := pipelineTestConfig()
	cfg.VoxelLeaf = 0 // FE == Raw: FineTarget reuses the front-end index

	prepCfg := cfg
	prepCfg.Searcher.Parallelism = 6
	alignCfg := cfg
	alignCfg.Searcher.Parallelism = 2

	src := PrepareFrame(seq.Frames[1], prepCfg)
	dst := PrepareFrame(seq.Frames[0], prepCfg)
	if got := dst.FESearch.Parallelism(); got != 6 {
		t.Fatalf("prepare-time parallelism = %d, want 6", got)
	}
	Align(src, dst, alignCfg)
	if got := dst.FESearch.Parallelism(); got != 2 {
		t.Errorf("align left the reused target index at %d workers, want its stage share 2", got)
	}
}
