package registration

import (
	"math/rand"
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/synth"
)

// The SoA solvers must be bit-identical to the AoS solvers on the same
// (float32-representable) correspondences: both dequantize to float64 and
// fold in the same accumChunk order, so the layout change alone cannot
// move a single bit. These tests pin that equivalence, then check the
// end-to-end trajectory stays within tolerance of ground truth under the
// one-time float32 quantization.

func snappedCorrespondences(r *rand.Rand, n int) (srcPts, dstPts, normals []geom.Vec3) {
	tr := geom.Transform{R: geom.RotZ(0.25).Mul(geom.RotX(0.1)), T: geom.Vec3{X: 1.2, Y: -0.4, Z: 0.2}}
	srcPts = make([]geom.Vec3, n)
	dstPts = make([]geom.Vec3, n)
	normals = make([]geom.Vec3, n)
	for i := range srcPts {
		srcPts[i] = geom.Vec3{
			X: r.Float64()*20 - 10,
			Y: r.Float64()*20 - 10,
			Z: r.Float64() * 4,
		}.Quantize32()
		dstPts[i] = tr.Apply(srcPts[i]).Add(geom.Vec3{
			X: r.NormFloat64() * 0.01,
			Y: r.NormFloat64() * 0.01,
			Z: r.NormFloat64() * 0.01,
		}).Quantize32()
		normals[i] = geom.Vec3{
			X: r.Float64() - 0.5,
			Y: r.Float64() - 0.5,
			Z: 1,
		}.Normalize().Quantize32()
	}
	return srcPts, dstPts, normals
}

func slabsFrom(srcPts, dstPts, normals []geom.Vec3) (src, dst *cloud.Slab) {
	src = cloud.SlabFromPoints(srcPts)
	dst = cloud.SlabFromPoints(dstPts)
	if normals != nil {
		dst.EnsureNormals()
		for i, n := range normals {
			dst.SetNormal(i, n)
		}
	}
	return src, dst
}

func TestSlabSolversBitIdenticalToAoS(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	// Spans multiple accumChunk blocks so the parallel folding is
	// exercised, plus small sizes for the sequential path.
	for _, n := range []int{6, 500, 3*accumChunk + 71} {
		srcPts, dstPts, normals := snappedCorrespondences(r, n)
		src, dst := slabsFrom(srcPts, dstPts, normals)
		for _, workers := range []int{1, 2, 4} {
			aosT, aosOK := EstimateRigidTransformPar(srcPts, dstPts, workers)
			soaT, soaOK := EstimateRigidTransformSlabPar(src, dst, workers)
			if aosOK != soaOK || aosT != soaT {
				t.Fatalf("n=%d p=%d: point-to-point differs\nAoS %v\nSoA %v", n, workers, aosT, soaT)
			}
			aosP, aosOK := EstimatePointToPlanePar(srcPts, dstPts, normals, workers)
			soaP, soaOK := EstimatePointToPlaneSlabPar(src, dst, workers)
			if aosOK != soaOK || aosP != soaP {
				t.Fatalf("n=%d p=%d: point-to-plane differs\nAoS %v\nSoA %v", n, workers, aosP, soaP)
			}
			if a, s := AlignmentRMSE(aosT, srcPts, dstPts), AlignmentRMSESlabPar(aosT, src, dst, workers); a != s {
				t.Fatalf("n=%d p=%d: RMSE differs: %v vs %v", n, workers, a, s)
			}
		}
	}
}

func TestSlabSolverGuards(t *testing.T) {
	empty := cloud.NewSlab(0)
	if _, ok := EstimateRigidTransformSlab(empty, empty); ok {
		t.Error("empty slabs accepted by point-to-point")
	}
	five := cloud.NewSlab(5)
	five.EnsureNormals()
	if _, ok := EstimatePointToPlaneSlab(five, five); ok {
		t.Error("5 correspondences accepted by point-to-plane (needs 6)")
	}
	noNormals := cloud.NewSlab(10)
	if _, ok := EstimatePointToPlaneSlab(noNormals, noNormals); ok {
		t.Error("normal-less target accepted by point-to-plane")
	}
	mismatch := cloud.NewSlab(4)
	if _, ok := EstimateRigidTransformSlab(mismatch, cloud.NewSlab(3)); ok {
		t.Error("length mismatch accepted")
	}
	if AlignmentRMSESlab(geom.IdentityTransform(), empty, empty) != 0 {
		t.Error("empty RMSE not 0")
	}
}

// TestSlabTrajectoryWithinTolerance: the float32 data layout must not
// move the odometry trajectory beyond noise. Per-pair translational error
// against ground truth stays inside the same envelope the AoS pipeline
// met (TestRegisterEndToEndOnSyntheticFrames' bound), and the composed
// multi-frame trajectory lands within centimeters of truth — the
// quantization step (~1e-7 relative) is invisible at trajectory scale.
func TestSlabTrajectoryWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-frame pipeline run")
	}
	const frames = 4
	seq := synth.GenerateSequence(synth.EvalSequenceConfig(frames, 29))
	cfg := pipelineTestConfig()

	pose := geom.IdentityTransform()
	truthPose := geom.IdentityTransform()
	for i := 1; i < frames; i++ {
		res := Register(seq.Frames[i], seq.Frames[i-1], cfg)
		truth := seq.GroundTruthDelta(i - 1)
		e := EvaluatePair(res.Transform, truth)
		if e.TranslationalPct > 10 {
			t.Errorf("pair %d: translational error %.1f%% exceeds AoS envelope", i, e.TranslationalPct)
		}
		pose = pose.Compose(res.Transform)
		truthPose = truthPose.Compose(truth)
	}
	ate := pose.T.Dist(truthPose.T)
	if ate > 0.25 {
		t.Errorf("composed trajectory endpoint %.3f m from truth", ate)
	}
}
