package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestDrainMigratesCommittedState is the re-shard acceptance test: a
// session with committed frames is drained off its worker, keeps its id
// and full trajectory through the gateway, continues at the committed
// pose on the new worker, and survives the old worker being killed.
func TestDrainMigratesCommittedState(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	g, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})

	id, wkr, code := createSession(t, base, map[string]any{"parallelism": 1})
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if wkr != f.urls[0] {
		t.Fatalf("session on %s, want worker 0 %s", wkr, f.urls[0])
	}
	frames := quickFrames(5, 99)
	for _, c := range frames[:3] {
		pushFrame(t, base, id, c, true)
	}
	before, _, _ := getJSON(t, base+"/v1/sessions/"+id+"/trajectory?wait=1")

	// Drain worker 0 over the admin surface.
	resp, err := http.Post(base+"/gateway/drain?worker=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var drained struct {
		Worker   string `json:"worker"`
		Migrated int    `json:"migrated"`
	}
	err = json.NewDecoder(resp.Body).Decode(&drained)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d err %v", resp.StatusCode, err)
	}
	if drained.Migrated != 1 || drained.Worker != f.urls[0] {
		t.Fatalf("drain = %+v, want 1 migration off %s", drained, f.urls[0])
	}

	// The committed trajectory survived the move bit-for-bit, the
	// session reports its migration, and worker 1 now serves it.
	after, code, hdr := getJSON(t, base+"/v1/sessions/"+id+"/trajectory?wait=1")
	if code != http.StatusOK {
		t.Fatalf("trajectory after drain: status %d", code)
	}
	if hdr.Get(workerHeader) != f.urls[1] {
		t.Fatalf("served by %q after drain, want %s", hdr.Get(workerHeader), f.urls[1])
	}
	if m, ok := after["migrations"].(float64); !ok || m != 1 {
		t.Fatalf("migrations = %v, want 1", after["migrations"])
	}
	assertSameTrajectory(t, before, after)

	// The draining worker is fenced from new sessions.
	if !g.workers[0].draining.Load() {
		t.Fatal("worker 0 not marked draining")
	}
	if _, wkr, _ := createSession(t, base, map[string]any{"parallelism": 1}); wkr != f.urls[1] {
		t.Fatalf("new session placed on drained worker (%s)", wkr)
	}

	// Pushes keep flowing under the same id, with globally continuous
	// frame indices across the re-shard boundary.
	for i, c := range frames[3:] {
		out := pushFrame(t, base, id, c, true)
		if fr, ok := out["frame"].(float64); !ok || int(fr) != 3+i {
			t.Fatalf("post-drain push %d: frame = %v, want %d", i, out["frame"], 3+i)
		}
	}

	// Kill the drained worker: nothing committed is lost.
	f.ts[0].Close()
	final, code, _ := getJSON(t, base+"/v1/sessions/"+id+"/trajectory?wait=1")
	if code != http.StatusOK {
		t.Fatalf("trajectory after killing drained worker: status %d", code)
	}
	traj := final["trajectory"].([]any)
	if len(traj) != 5 {
		t.Fatalf("final trajectory has %d frames, want 5", len(traj))
	}
	for i, fr := range traj {
		if idx := fr.(map[string]any)["index"].(float64); int(idx) != i {
			t.Fatalf("frame %d carries index %v", i, idx)
		}
	}

	// Pose continuity: the first post-migration frame is anchored at the
	// last committed pose (serve's origin), byte-for-byte.
	lastCommitted, _ := json.Marshal(traj[2].(map[string]any)["pose"])
	firstAfter, _ := json.Marshal(traj[3].(map[string]any)["pose"])
	if !bytes.Equal(lastCommitted, firstAfter) {
		t.Fatalf("post-migration pose %s does not continue from committed pose %s", firstAfter, lastCommitted)
	}

	// Loops endpoint still answers through the stitched view.
	if _, code, _ := getJSON(t, base+"/v1/sessions/"+id+"/loops"); code != http.StatusOK {
		t.Fatalf("loops after drain: status %d", code)
	}

	// Fleet status reflects the move.
	ws := g.Workers()
	if ws[0].Sessions != 0 || !ws[0].Draining || ws[1].Sessions != 2 {
		t.Fatalf("worker status after drain = %+v", ws)
	}
	if g.cMigrated.Value() != 1 {
		t.Fatalf("migrated counter = %d, want 1", g.cMigrated.Value())
	}

	// DELETE still works against the new worker and clears the mapping.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete after drain: status %d", dresp.StatusCode)
	}
	if g.session(id) != nil {
		t.Fatal("mapping survived delete")
	}
}

// TestDrainEmptyWorkerAndUndrain covers the fence lifecycle without any
// sessions to move.
func TestDrainEmptyWorkerAndUndrain(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	g, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})

	if n, err := g.DrainWorker(f.urls[0]); err != nil || n != 0 {
		t.Fatalf("drain empty worker: n=%d err=%v", n, err)
	}
	for i := 0; i < 2; i++ {
		if _, wkr, _ := createSession(t, base, map[string]any{"parallelism": 1}); wkr != f.urls[1] {
			t.Fatalf("create %d placed on drained worker", i)
		}
	}
	if err := g.Undrain(f.urls[0]); err != nil {
		t.Fatal(err)
	}
	// Round-robin resumes over both workers once re-admitted.
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		_, wkr, _ := createSession(t, base, map[string]any{"parallelism": 1})
		seen[wkr] = true
	}
	if !seen[f.urls[0]] {
		t.Fatal("undrained worker never received a session")
	}
	if _, err := g.DrainWorker("nope"); err == nil {
		t.Fatal("draining an unknown worker succeeded")
	}
}

// TestAdminSurfaceAuth pins the auth split: /gateway/* requires the
// gateway token, /v1/* passes through untouched.
func TestAdminSurfaceAuth(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	_, base := newGateway(t, f, Config{Policy: PolicyRoundRobin, AuthToken: "secret"})

	resp, err := http.Post(base+"/gateway/drain?worker=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated drain: status %d, want 401", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPost, base+"/gateway/drain?worker=0", nil)
	req.Header.Set("Authorization", "Bearer secret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated drain: status %d, want 200", resp.StatusCode)
	}

	// The session surface stays open (workers enforce their own tokens).
	if _, _, code := createSession(t, base, map[string]any{"parallelism": 1}); code != http.StatusCreated {
		t.Fatalf("create with admin auth on: status %d", code)
	}
}

// TestWorkersEndpoint exercises the fleet-status listing over HTTP.
func TestWorkersEndpoint(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	_, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})
	createSession(t, base, map[string]any{"parallelism": 1})

	body, code, _ := getJSON(t, base+"/gateway/workers")
	if code != http.StatusOK {
		t.Fatalf("workers: status %d", code)
	}
	ws := body["workers"].([]any)
	if len(ws) != 2 {
		t.Fatalf("workers listing has %d entries, want 2", len(ws))
	}
	w0 := ws[0].(map[string]any)
	if w0["url"] != f.urls[0] || w0["sessions"].(float64) != 1 || w0["healthy"] != true {
		t.Fatalf("worker 0 row = %v", w0)
	}
}

// TestHealthzAggregates checks the gateway's own liveness verdict.
func TestHealthzAggregates(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	g, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})

	if _, code, _ := getJSON(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	for _, wk := range g.workers {
		wk.healthy.Store(false)
	}
	body, code, _ := getJSON(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead fleet: status %d, want 503", code)
	}
	if fmt.Sprint(body["workers_healthy"]) != "0" {
		t.Fatalf("workers_healthy = %v", body["workers_healthy"])
	}
}
