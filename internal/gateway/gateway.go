// Package gateway implements the fleet tier in front of tigris-serve:
// a reverse proxy that spreads sessions across N worker processes, the
// piece that takes the registration service from one process to a
// horizontally sharded fleet.
//
// A session is created on exactly one worker — chosen by the configured
// routing policy — and every later request for it is proxied to that
// worker, so a session's trajectory is bit-identical to what a single
// worker would have produced. The gateway mints its own session ids
// ("g1", "g2", ...) and rewrites paths on the way through, so worker-
// local ids ("s1" on two different workers) never collide at the front
// door.
//
// # Routing policies
//
//   - round-robin: session creates rotate across available workers.
//   - least-loaded: creates go to the worker with the fewest pending
//     frames (scraped from the worker's /metrics), tie-broken by the
//     gateway's own live session count, then worker index.
//   - affinity: highest-random-weight (rendezvous) hash of the gateway
//     session id over the available workers — a deterministic placement
//     that moves the minimum number of sessions when the worker set
//     changes.
//
// # Admission control
//
// With Config.AdmitRate set, each client (keyed by bearer token, then
// X-Client-ID, then remote IP) gets a token bucket; session creates and
// frame pushes that find the bucket empty are refused with 429, a
// Retry-After header, and a JSON body — the same overload shape the
// workers' own -max-pending 503s use, so client backoff is uniform.
//
// # Health, drain, and re-shard
//
// A background loop (Config.HealthInterval) probes every worker's
// /healthz and scrapes its /metrics for load signals. An unhealthy
// worker receives no new sessions; requests for sessions it holds are
// answered 502 until it recovers (state that was never migrated cannot
// be invented). The graceful path is DrainWorker (POST /gateway/drain):
// the worker is fenced from new sessions, and each session it holds is
// migrated — its committed trajectory is drained (?wait=1) and carried
// over as a prefix, a replacement session is created on another worker
// with origin = the last committed pose, and the old session deleted.
// Clients keep their session id; trajectory responses stitch the prefix
// and the new worker's frames, so killing the drained worker afterwards
// loses nothing that was ever committed.
//
// # Observability
//
// The gateway records through internal/obs like the workers do: GET
// /metrics exposes per-route proxy latency histograms
// (tigris_gateway_proxy_seconds{stage=...}), request counters by route
// and status, admission rejections, migrations, and per-worker health/
// session/routed gauges. Every proxied response carries an
// X-Tigris-Worker header naming the worker that served it, which is how
// the load generator measures the fleet's load split.
//
// # Tracing
//
// Every session carries one trace id end to end: minted at create (or
// adopted from the client's W3C traceparent header), forwarded to the
// worker as traceparent on every proxied call, and echoed back on every
// response as X-Tigris-Trace. The gateway records a routing-decision
// trace per create and migration (policy, every candidate's health and
// load signals, the chosen worker, the tie-break) — GET
// /gateway/decisions lists the global ring, and GET /gateway/trace/{id}
// serves the session's full Chrome-trace span tree stitched across
// migrations together with its decisions. See internal/gateway/trace.go.
package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tigris/internal/obs"
)

// proxyLatencyFamily is the Prometheus family the gateway's per-route
// proxy latency histograms publish under.
const proxyLatencyFamily = "tigris_gateway_proxy_seconds"

// workerHeader names the worker that served a proxied response.
const workerHeader = "X-Tigris-Worker"

// maxCreateBody bounds a buffered session-create request body (it must
// be buffered: creates fail over across workers, and re-shard needs the
// original config to recreate the session).
const maxCreateBody = 1 << 20

// Config parameterizes the gateway.
type Config struct {
	// Workers are the worker base URLs (e.g. http://127.0.0.1:8089).
	// At least one is required.
	Workers []string
	// Policy selects the session-placement policy (default round-robin).
	Policy Policy
	// AdmitRate enables per-client token-bucket admission control:
	// tokens per second granted to each client (0 disables admission).
	AdmitRate float64
	// AdmitBurst is the bucket capacity (default max(1, ceil(AdmitRate))).
	AdmitBurst int
	// HealthInterval is the worker health-check and load-poll period
	// (0 disables the background loop; PollWorkers can still be called).
	HealthInterval time.Duration
	// AuthToken, when non-empty, gates the mutating /gateway/* admin
	// surface (drain). The /v1/* surface is pass-through: the client's
	// Authorization header is forwarded to the worker, which enforces
	// its own token.
	AuthToken string
	// WorkerAuthToken is the bearer token the gateway presents on the
	// upstream calls it originates itself (drain migration traffic).
	// Leave empty when workers run without -auth-token.
	WorkerAuthToken string
	// Client is the upstream HTTP client (nil = http.DefaultTransport
	// with no timeout; pushes with ?wait=1 are long-lived).
	Client *http.Client
	// Logger, when non-nil, receives request and lifecycle records.
	Logger *slog.Logger
}

// worker is one upstream tigris-serve process.
type worker struct {
	url string
	idx int

	healthy  atomic.Bool
	draining atomic.Bool

	// Load signals scraped from the worker's /metrics by PollWorkers.
	polledPending  atomic.Int64
	polledSessions atomic.Int64
	// gwSessions is the gateway's own live count of sessions mapped
	// here — always current, unlike the polled signals.
	gwSessions atomic.Int64

	cRouted *obs.Counter
}

// available reports whether new sessions may be placed on the worker.
func (w *worker) available() bool { return w.healthy.Load() && !w.draining.Load() }

// gwSession is the gateway's record of one client-visible session.
// mu orders proxied requests against migration: handlers hold RLock for
// the duration of their upstream call, migration holds Lock — so a
// migration never runs between a push being accepted by the old worker
// and its commit being visible to the drain's trajectory snapshot.
type gwSession struct {
	id string

	mu         sync.RWMutex
	w          *worker
	remoteID   string
	createBody []byte // original create request (re-shard recreates from it)
	// Committed state carried over from drained workers: trajectory
	// frames (indices already global) and verified loop closures.
	prefix         []map[string]any
	prefixClosures []map[string]any
	migrations     int
	// trace is the session's end-to-end trace id: minted at create (or
	// adopted from the client's traceparent), propagated to every worker
	// the session ever lives on, echoed on every response.
	trace obs.TraceID
	// prefixTrace carries span events captured from drained workers
	// before their session copy was deleted (pid = worker epoch), the
	// trace-side twin of the trajectory prefix. decisions is the
	// session's routing-decision history (create, failovers, migrations).
	prefixTrace []obs.ChromeEvent
	decisions   []Decision
}

// Gateway is the fleet front door. It implements http.Handler.
type Gateway struct {
	mux    *http.ServeMux
	cfg    Config
	client *http.Client
	logger *slog.Logger

	reg            *obs.Registry
	rec            *obs.Recorder
	cAdmitRejected *obs.Counter
	cMigrated      *obs.Counter
	cNoWorker      *obs.Counter

	admit   *admitTable
	workers []*worker
	rr      atomic.Uint64

	mu       sync.Mutex
	sessions map[string]*gwSession
	nextID   int

	// Routing-decision trace: a bounded global ring (see trace.go).
	decSeq    atomic.Int64
	decMu     sync.Mutex
	decisions []Decision

	stopHealth chan struct{}
}

// New creates a gateway fronting the configured workers and, when
// Config.HealthInterval is set, starts the health/load poll loop
// (stopped by Close). Workers start out presumed healthy; the first
// poll corrects that.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("gateway: no workers configured")
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyRoundRobin
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	for _, wu := range cfg.Workers {
		u, err := url.Parse(wu)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("gateway: bad worker URL %q (want http[s]://host:port)", wu)
		}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	reg := obs.NewRegistry()
	g := &Gateway{
		mux:            http.NewServeMux(),
		cfg:            cfg,
		client:         client,
		logger:         cfg.Logger,
		reg:            reg,
		rec:            obs.NewPublishedRecorder(reg, proxyLatencyFamily),
		cAdmitRejected: reg.Counter("tigris_gateway_admission_rejected_total"),
		cMigrated:      reg.Counter("tigris_gateway_sessions_migrated_total"),
		cNoWorker:      reg.Counter("tigris_gateway_no_worker_total"),
		admit:          newAdmitTable(cfg.AdmitRate, cfg.AdmitBurst),
		sessions:       make(map[string]*gwSession),
	}
	for i, wu := range cfg.Workers {
		wu = strings.TrimRight(wu, "/")
		wk := &worker{
			url:     wu,
			idx:     i,
			cRouted: reg.Counter(`tigris_gateway_routed_total{worker="` + wu + `"}`),
		}
		wk.healthy.Store(true)
		g.workers = append(g.workers, wk)
		g.registerWorkerGauges(wk)
	}
	reg.GaugeFunc("tigris_gateway_sessions_active", func() float64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return float64(len(g.sessions))
	})

	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.reg.WritePrometheus(w)
	})
	g.mux.HandleFunc("GET /gateway/workers", g.handleWorkers)
	g.mux.HandleFunc("GET /gateway/buildinfo", g.handleBuildinfo)
	g.mux.HandleFunc("GET /gateway/decisions", g.handleDecisions)
	g.mux.HandleFunc("GET /gateway/trace/{id}", g.withSession(g.handleTrace))
	g.mux.HandleFunc("POST /gateway/drain", g.handleDrain)
	g.mux.HandleFunc("POST /v1/sessions", g.handleCreate)
	g.mux.HandleFunc("GET /v1/backends", g.proxyFleet("/v1/backends"))
	g.mux.HandleFunc("GET /v1/buildinfo", g.proxyFleet("/v1/buildinfo"))
	g.mux.HandleFunc("POST /v1/sessions/{id}/frames", g.withSession(g.handlePush))
	g.mux.HandleFunc("GET /v1/sessions/{id}/trajectory", g.withSession(g.handleTrajectory))
	g.mux.HandleFunc("GET /v1/sessions/{id}/loops", g.withSession(g.handleLoops))
	g.mux.HandleFunc("GET /v1/sessions/{id}/stats", g.withSession(g.handleStats))
	g.mux.HandleFunc("DELETE /v1/sessions/{id}", g.withSession(g.handleDelete))

	if cfg.HealthInterval > 0 {
		g.stopHealth = make(chan struct{})
		go g.healthLoop(g.stopHealth)
	}
	return g, nil
}

// registerWorkerGauges publishes one worker's live state as labeled
// Prometheus gauges.
func (g *Gateway) registerWorkerGauges(wk *worker) {
	label := `{worker="` + wk.url + `"}`
	g.reg.GaugeFunc("tigris_gateway_worker_healthy"+label, func() float64 {
		if wk.healthy.Load() {
			return 1
		}
		return 0
	})
	g.reg.GaugeFunc("tigris_gateway_worker_draining"+label, func() float64 {
		if wk.draining.Load() {
			return 1
		}
		return 0
	})
	g.reg.GaugeFunc("tigris_gateway_worker_sessions"+label, func() float64 {
		return float64(wk.gwSessions.Load())
	})
	g.reg.GaugeFunc("tigris_gateway_worker_pending_frames"+label, func() float64 {
		return float64(wk.polledPending.Load())
	})
}

// Metrics exposes the gateway's registry (the /metrics backing store).
func (g *Gateway) Metrics() *obs.Registry { return g.reg }

// Close stops the health loop. The gateway holds no session state worth
// draining — sessions live on the workers.
func (g *Gateway) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stopHealth != nil {
		close(g.stopHealth)
		g.stopHealth = nil
	}
}

// statusWriter captures status and size for the request counter/log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// routeLabel normalizes a request path to a bounded route pattern.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/metrics", "/v1/backends", "/v1/buildinfo", "/v1/sessions",
		"/gateway/workers", "/gateway/drain", "/gateway/buildinfo", "/gateway/decisions":
		return path
	}
	if rest, ok := strings.CutPrefix(path, "/v1/sessions/"); ok {
		_, sub, _ := strings.Cut(rest, "/")
		switch sub {
		case "":
			return "/v1/sessions/{id}"
		case "frames", "trajectory", "loops", "stats":
			return "/v1/sessions/{id}/" + sub
		}
	}
	if id, ok := strings.CutPrefix(path, "/gateway/trace/"); ok && !strings.Contains(id, "/") {
		return "/gateway/trace/{id}"
	}
	return "other"
}

// ServeHTTP implements http.Handler: admin-surface auth, per-route
// request counting, and request logging.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	g.serveAuthed(sw, r)
	route := routeLabel(r.URL.Path)
	g.reg.Counter(`tigris_gateway_requests_total{route="` + route + `",code="` + strconv.Itoa(sw.status) + `"}`).Inc()
	if g.logger != nil {
		g.logger.Info("request",
			"method", r.Method,
			"route", route,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(time.Since(start).Microseconds())/1e3,
		)
	}
}

// serveAuthed gates the mutating admin surface behind Config.AuthToken,
// then routes. /v1/* passes through untouched — the client's bearer
// token travels with the proxied request and the worker enforces it.
func (g *Gateway) serveAuthed(w http.ResponseWriter, r *http.Request) {
	if g.cfg.AuthToken != "" && strings.HasPrefix(r.URL.Path, "/gateway/") {
		token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || token != g.cfg.AuthToken {
			w.Header().Set("WWW-Authenticate", `Bearer realm="tigris-gateway"`)
			httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
	}
	g.mux.ServeHTTP(w, r)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	for _, wk := range g.workers {
		if wk.healthy.Load() {
			healthy++
		}
	}
	status := http.StatusOK
	if healthy == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"status":          map[bool]string{true: "ok", false: "no healthy workers"}[healthy > 0],
		"workers":         len(g.workers),
		"workers_healthy": healthy,
	})
}

// WorkerStatus is one worker's row in the /gateway/workers listing.
type WorkerStatus struct {
	URL           string `json:"url"`
	Healthy       bool   `json:"healthy"`
	Draining      bool   `json:"draining"`
	Sessions      int64  `json:"sessions"`
	PendingFrames int64  `json:"pending_frames"`
}

// Workers reports each worker's live status (the /gateway/workers body).
func (g *Gateway) Workers() []WorkerStatus {
	out := make([]WorkerStatus, len(g.workers))
	for i, wk := range g.workers {
		out[i] = WorkerStatus{
			URL:           wk.url,
			Healthy:       wk.healthy.Load(),
			Draining:      wk.draining.Load(),
			Sessions:      wk.gwSessions.Load(),
			PendingFrames: wk.polledPending.Load(),
		}
	}
	return out
}

func (g *Gateway) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": g.Workers()})
}

func (g *Gateway) handleDrain(w http.ResponseWriter, r *http.Request) {
	ref := r.URL.Query().Get("worker")
	if ref == "" {
		httpError(w, http.StatusBadRequest, "missing ?worker=<url or index>")
		return
	}
	wk := g.findWorker(ref)
	if wk == nil {
		httpError(w, http.StatusNotFound, "no worker %q", ref)
		return
	}
	migrated, err := g.DrainWorker(ref)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":    err.Error(),
			"worker":   wk.url,
			"migrated": migrated,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"worker": wk.url, "migrated": migrated})
}

// findWorker resolves a worker by URL or decimal index.
func (g *Gateway) findWorker(ref string) *worker {
	for _, wk := range g.workers {
		if wk.url == strings.TrimRight(ref, "/") {
			return wk
		}
	}
	if i, err := strconv.Atoi(ref); err == nil && i >= 0 && i < len(g.workers) {
		return g.workers[i]
	}
	return nil
}

// session resolves a gateway session id.
func (g *Gateway) session(id string) *gwSession {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sessions[id]
}

// dropSession removes a session mapping (worker-side 404 or delete).
func (g *Gateway) dropSession(ses *gwSession) {
	g.mu.Lock()
	if _, ok := g.sessions[ses.id]; ok {
		delete(g.sessions, ses.id)
		ses.w.gwSessions.Add(-1)
	}
	g.mu.Unlock()
}

func (g *Gateway) withSession(fn func(http.ResponseWriter, *http.Request, *gwSession)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ses := g.session(r.PathValue("id"))
		if ses == nil {
			httpError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
			return
		}
		// The session's trace id on every response, whichever worker ends
		// up serving it — the handle a client follows into
		// /gateway/trace/{gid}.
		w.Header().Set("X-Tigris-Trace", ses.trace.String())
		fn(w, r, ses)
	}
}

// doUpstream issues one request to a worker, forwarding auth and
// content-type headers. pathAndQuery must start with "/". A non-zero
// trace id rides along as a W3C traceparent header, so the worker tags
// its spans with the gateway's trace id instead of minting its own.
func (g *Gateway) doUpstream(wk *worker, method, pathAndQuery, auth string, contentType string, trace obs.TraceID, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, wk.url+pathAndQuery, body)
	if err != nil {
		return nil, err
	}
	if auth != "" {
		req.Header.Set("Authorization", auth)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if !trace.IsZero() {
		req.Header.Set("traceparent", obs.FormatTraceParent(trace, 0))
	}
	return g.client.Do(req)
}

// clientAuth returns the Authorization header to present upstream: the
// client's own header when set, else the gateway's worker token.
func (g *Gateway) clientAuth(r *http.Request) string {
	if a := r.Header.Get("Authorization"); a != "" {
		return a
	}
	if g.cfg.WorkerAuthToken != "" {
		return "Bearer " + g.cfg.WorkerAuthToken
	}
	return ""
}

// workerAuth is the Authorization header for gateway-originated calls.
func (g *Gateway) workerAuth() string {
	if g.cfg.WorkerAuthToken != "" {
		return "Bearer " + g.cfg.WorkerAuthToken
	}
	return ""
}

// subPath rebuilds the worker-side path for a session-scoped request.
func subPath(remoteID, sub, rawQuery string) string {
	p := "/v1/sessions/" + remoteID
	if sub != "" {
		p += "/" + sub
	}
	if rawQuery != "" {
		p += "?" + rawQuery
	}
	return p
}

// copyResponse relays an upstream response: status, the headers that
// matter (Content-Type, Retry-After), the worker identity, and body.
func copyResponse(w http.ResponseWriter, resp *http.Response, wk *worker) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(workerHeader, wk.url)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleCreate places a new session on a worker chosen by the routing
// policy, failing over to the next candidate on worker errors.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	if !g.admitOK(w, r) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCreateBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading session config: %v", err)
		return
	}

	g.mu.Lock()
	g.nextID++
	id := fmt.Sprintf("g%d", g.nextID)
	g.mu.Unlock()

	// The session's trace id, minted at the front door (or adopted from
	// the client's own traceparent) and handed to whichever worker wins
	// placement, so gateway decisions and worker spans share one id.
	trace, ok := obs.ParseTraceParent(r.Header.Get("traceparent"))
	if !ok {
		trace = obs.NewTraceID()
	}

	span := g.rec.Start("create")
	wk, remoteID, respBody, status, decs, err := g.createUpstream(id, "create", trace, body, g.clientAuth(r))
	span.End()
	if err != nil {
		g.cNoWorker.Inc()
		writeOverload(w, http.StatusServiceUnavailable, 1, "%v", err)
		return
	}
	if status != http.StatusCreated {
		// Client-side error (bad config): forward the worker's verdict.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(workerHeader, wk.url)
		w.WriteHeader(status)
		_, _ = w.Write(respBody)
		return
	}

	ses := &gwSession{id: id, w: wk, remoteID: remoteID, createBody: body, trace: trace, decisions: decs}
	g.mu.Lock()
	g.sessions[id] = ses
	g.mu.Unlock()
	wk.gwSessions.Add(1)
	wk.cRouted.Inc()

	// Rewrite the worker-local id to the gateway id and surface the
	// placement, so clients (and the load generator) can see the split.
	var created map[string]any
	if err := json.Unmarshal(respBody, &created); err != nil {
		created = map[string]any{}
	}
	created["id"] = id
	created["worker"] = wk.url
	created["trace"] = trace.String()
	w.Header().Set(workerHeader, wk.url)
	w.Header().Set("X-Tigris-Trace", trace.String())
	writeJSON(w, http.StatusCreated, created)
}

// createUpstream tries policy-ordered candidates until one accepts the
// session. Workers that refuse with 5xx or fail to connect are skipped
// (connection failures also mark the worker unhealthy); a 4xx is the
// client's problem and is returned as-is. Every placement attempt is
// recorded as a routing Decision (the first under the given kind —
// "create" or "migrate" — retries under "failover") and the recorded
// decisions are returned for attachment to the session.
func (g *Gateway) createUpstream(id, kind string, trace obs.TraceID, body []byte, auth string) (*worker, string, []byte, int, []Decision, error) {
	tried := make(map[*worker]bool)
	var decs []Decision
	record := func(wk *worker, rows []DecisionCandidate, tieBreak string) {
		d := Decision{
			Session:    id,
			TraceID:    trace.String(),
			Kind:       kind,
			Policy:     string(g.cfg.Policy),
			TieBreak:   tieBreak,
			Candidates: rows,
		}
		if wk != nil {
			d.Chosen = wk.url
		}
		if len(decs) > 0 {
			d.Kind = "failover"
		}
		g.recordDecision(&d)
		decs = append(decs, d)
	}
	for range g.workers {
		wk, rows, tieBreak := g.pickExplain(id, func(c *worker) bool { return tried[c] })
		record(wk, rows, tieBreak)
		if wk == nil {
			break
		}
		tried[wk] = true
		resp, err := g.doUpstream(wk, http.MethodPost, "/v1/sessions", auth, "application/json", trace, strings.NewReader(string(body)))
		if err != nil {
			g.markUnhealthy(wk, err)
			continue
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			continue
		}
		if resp.StatusCode != http.StatusCreated {
			return wk, "", respBody, resp.StatusCode, decs, nil
		}
		var created struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(respBody, &created); err != nil || created.ID == "" {
			continue
		}
		return wk, created.ID, respBody, http.StatusCreated, decs, nil
	}
	return nil, "", nil, 0, decs, fmt.Errorf("no available worker for session create")
}

// handlePush proxies a frame push to the session's worker. The session
// read-lock is held across the upstream call so a concurrent drain
// cannot migrate the session mid-push.
func (g *Gateway) handlePush(w http.ResponseWriter, r *http.Request, ses *gwSession) {
	if !g.admitOK(w, r) {
		return
	}
	ses.mu.RLock()
	defer ses.mu.RUnlock()
	wk, prefixLen := ses.w, len(ses.prefix)
	if !wk.healthy.Load() {
		httpError(w, http.StatusBadGateway, "worker %s holding session %s is down", wk.url, ses.id)
		return
	}
	span := g.rec.Start("frames")
	resp, err := g.doUpstream(wk, http.MethodPost, subPath(ses.remoteID, "frames", r.URL.RawQuery),
		g.clientAuth(r), r.Header.Get("Content-Type"), ses.trace, r.Body)
	span.End()
	if err != nil {
		g.markUnhealthy(wk, err)
		httpError(w, http.StatusBadGateway, "worker %s: %v", wk.url, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		g.forwardEvicted(w, resp, ses, wk)
		return
	}
	if resp.StatusCode == http.StatusAccepted && prefixLen > 0 {
		// Re-sharded session: worker-local frame indices shift by the
		// carried-over prefix.
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err == nil {
			if f, ok := out["frame"].(float64); ok {
				out["frame"] = f + float64(prefixLen)
			}
			w.Header().Set(workerHeader, wk.url)
			writeJSON(w, resp.StatusCode, out)
			return
		}
		httpError(w, http.StatusBadGateway, "worker %s: bad push response", wk.url)
		return
	}
	copyResponse(w, resp, wk)
}

// forwardEvicted relays a worker-side 404 — the session was evicted
// (idle TTL) or otherwise lost on the worker — and drops the gateway
// mapping, so the client sees a clean 404 now and on every later
// request, never a silent re-route onto a fresh session.
func (g *Gateway) forwardEvicted(w http.ResponseWriter, resp *http.Response, ses *gwSession, wk *worker) {
	g.dropSession(ses)
	if g.logger != nil {
		g.logger.Warn("session gone on worker (evicted?); mapping dropped",
			"session", ses.id, "worker", wk.url)
	}
	copyResponse(w, resp, wk)
}

// handleTrajectory proxies a trajectory read, stitching the carried-over
// prefix in front of the current worker's frames for re-sharded
// sessions.
func (g *Gateway) handleTrajectory(w http.ResponseWriter, r *http.Request, ses *gwSession) {
	ses.mu.RLock()
	defer ses.mu.RUnlock()
	wk := ses.w
	if !wk.healthy.Load() {
		httpError(w, http.StatusBadGateway, "worker %s holding session %s is down", wk.url, ses.id)
		return
	}
	span := g.rec.Start("trajectory")
	resp, err := g.doUpstream(wk, http.MethodGet, subPath(ses.remoteID, "trajectory", r.URL.RawQuery),
		g.clientAuth(r), "", ses.trace, nil)
	span.End()
	if err != nil {
		g.markUnhealthy(wk, err)
		httpError(w, http.StatusBadGateway, "worker %s: %v", wk.url, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		g.forwardEvicted(w, resp, ses, wk)
		return
	}
	if resp.StatusCode != http.StatusOK || len(ses.prefix) == 0 {
		copyResponse(w, resp, wk)
		return
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		httpError(w, http.StatusBadGateway, "worker %s: bad trajectory response: %v", wk.url, err)
		return
	}
	suffix, _ := out["trajectory"].([]any)
	stitched := make([]any, 0, len(ses.prefix)+len(suffix))
	for _, fr := range ses.prefix {
		stitched = append(stitched, fr)
	}
	for i, fr := range suffix {
		if m, ok := fr.(map[string]any); ok {
			m["index"] = float64(len(ses.prefix) + i)
		}
		stitched = append(stitched, fr)
	}
	out["trajectory"] = stitched
	out["frames"] = len(stitched)
	out["migrations"] = ses.migrations
	w.Header().Set(workerHeader, wk.url)
	writeJSON(w, http.StatusOK, out)
}

// handleLoops proxies the loop-closure listing, shifting worker-local
// frame indices and prepending closures committed before a re-shard.
func (g *Gateway) handleLoops(w http.ResponseWriter, r *http.Request, ses *gwSession) {
	ses.mu.RLock()
	defer ses.mu.RUnlock()
	wk := ses.w
	if !wk.healthy.Load() {
		httpError(w, http.StatusBadGateway, "worker %s holding session %s is down", wk.url, ses.id)
		return
	}
	span := g.rec.Start("loops")
	resp, err := g.doUpstream(wk, http.MethodGet, subPath(ses.remoteID, "loops", r.URL.RawQuery),
		g.clientAuth(r), "", ses.trace, nil)
	span.End()
	if err != nil {
		g.markUnhealthy(wk, err)
		httpError(w, http.StatusBadGateway, "worker %s: %v", wk.url, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		g.forwardEvicted(w, resp, ses, wk)
		return
	}
	if resp.StatusCode != http.StatusOK || len(ses.prefix) == 0 {
		copyResponse(w, resp, wk)
		return
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		httpError(w, http.StatusBadGateway, "worker %s: bad loops response: %v", wk.url, err)
		return
	}
	suffix, _ := out["closures"].([]any)
	all := make([]any, 0, len(ses.prefixClosures)+len(suffix))
	for _, cl := range ses.prefixClosures {
		all = append(all, cl)
	}
	for _, cl := range suffix {
		if m, ok := cl.(map[string]any); ok {
			for _, k := range []string{"from", "to"} {
				if v, ok := m[k].(float64); ok {
					m[k] = v + float64(len(ses.prefix))
				}
			}
		}
		all = append(all, cl)
	}
	out["closures"] = all
	w.Header().Set(workerHeader, wk.url)
	writeJSON(w, http.StatusOK, out)
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request, ses *gwSession) {
	ses.mu.RLock()
	defer ses.mu.RUnlock()
	wk := ses.w
	if !wk.healthy.Load() {
		httpError(w, http.StatusBadGateway, "worker %s holding session %s is down", wk.url, ses.id)
		return
	}
	span := g.rec.Start("stats")
	resp, err := g.doUpstream(wk, http.MethodGet, subPath(ses.remoteID, "stats", r.URL.RawQuery),
		g.clientAuth(r), "", ses.trace, nil)
	span.End()
	if err != nil {
		g.markUnhealthy(wk, err)
		httpError(w, http.StatusBadGateway, "worker %s: %v", wk.url, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		g.forwardEvicted(w, resp, ses, wk)
		return
	}
	copyResponse(w, resp, wk)
}

func (g *Gateway) handleDelete(w http.ResponseWriter, r *http.Request, ses *gwSession) {
	ses.mu.RLock()
	defer ses.mu.RUnlock()
	wk := ses.w
	g.dropSession(ses)
	span := g.rec.Start("delete")
	resp, err := g.doUpstream(wk, http.MethodDelete, subPath(ses.remoteID, "", ""), g.clientAuth(r), "", ses.trace, nil)
	span.End()
	if err != nil {
		g.markUnhealthy(wk, err)
		httpError(w, http.StatusBadGateway, "worker %s: %v (gateway mapping removed)", wk.url, err)
		return
	}
	defer resp.Body.Close()
	var out map[string]any
	if json.NewDecoder(resp.Body).Decode(&out) == nil {
		out["id"] = ses.id
		w.Header().Set(workerHeader, wk.url)
		writeJSON(w, resp.StatusCode, out)
		return
	}
	copyResponse(w, resp, wk)
}

// proxyFleet proxies a fleet-wide informational endpoint to the first
// healthy worker (they all answer identically).
func (g *Gateway) proxyFleet(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for _, wk := range g.workers {
			if !wk.healthy.Load() {
				continue
			}
			resp, err := g.doUpstream(wk, http.MethodGet, path, g.clientAuth(r), "", obs.TraceID{}, nil)
			if err != nil {
				g.markUnhealthy(wk, err)
				continue
			}
			defer resp.Body.Close()
			copyResponse(w, resp, wk)
			return
		}
		writeOverload(w, http.StatusServiceUnavailable, 1, "no healthy worker")
	}
}

// markUnhealthy records a connection-level failure against a worker.
func (g *Gateway) markUnhealthy(wk *worker, err error) {
	if wk.healthy.Swap(false) && g.logger != nil {
		g.logger.Warn("worker marked unhealthy", "worker", wk.url, "error", err.Error())
	}
}

// --- shared response helpers -------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeOverload mirrors internal/serve's overload-rejection shape:
// Retry-After header plus a JSON body repeating the estimate.
func writeOverload(w http.ResponseWriter, status, retrySecs int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retrySecs))
	writeJSON(w, status, map[string]any{
		"error":               fmt.Sprintf(format, args...),
		"retry_after_seconds": retrySecs,
	})
}
