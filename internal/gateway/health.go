package gateway

import (
	"bufio"
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// healthProbeTimeout bounds one health/load probe so a hung worker
// cannot stall the poll loop.
const healthProbeTimeout = 2 * time.Second

// healthLoop polls worker health and load until Close.
func (g *Gateway) healthLoop(stop <-chan struct{}) {
	ticker := time.NewTicker(g.cfg.HealthInterval)
	defer ticker.Stop()
	g.PollWorkers()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			g.PollWorkers()
		}
	}
}

// PollWorkers probes every worker once, concurrently: /healthz decides
// liveness, and a healthy worker's /metrics is scraped for the load
// signals the least-loaded policy routes on (tigris_frames_pending,
// tigris_sessions_active). Exposed so deployments and tests can force a
// refresh between scheduled polls.
func (g *Gateway) PollWorkers() {
	var wg sync.WaitGroup
	for _, wk := range g.workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			g.pollWorker(wk)
		}(wk)
	}
	wg.Wait()
}

func (g *Gateway) pollWorker(wk *worker) {
	ctx, cancel := context.WithTimeout(context.Background(), healthProbeTimeout)
	defer cancel()
	alive := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.url+"/healthz", nil)
	if err == nil {
		if resp, err := g.client.Do(req); err == nil {
			alive = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
	}
	was := wk.healthy.Swap(alive)
	if was != alive && g.logger != nil {
		if alive {
			g.logger.Info("worker recovered", "worker", wk.url)
		} else {
			g.logger.Warn("worker unhealthy", "worker", wk.url)
		}
	}
	if !alive {
		return
	}
	// Load signals: scrape the worker's own Prometheus exposition.
	req, err = http.NewRequestWithContext(ctx, http.MethodGet, wk.url+"/metrics", nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := metricValue(line, "tigris_frames_pending"); ok {
			wk.polledPending.Store(int64(v))
		}
		if v, ok := metricValue(line, "tigris_sessions_active"); ok {
			wk.polledSessions.Store(int64(v))
		}
	}
}

// metricValue parses one Prometheus text-exposition line if it is an
// unlabeled sample of the named series.
func metricValue(line, name string) (float64, bool) {
	rest, ok := strings.CutPrefix(line, name+" ")
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
