package gateway

import (
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// admitTable implements per-client token-bucket admission control: each
// client key owns a bucket refilled at rate tokens/second up to burst.
// Session creates and frame pushes each cost one token; an empty bucket
// refuses the request with 429 and a Retry-After derived from the
// refill rate — so a well-behaved client converges to its granted rate
// instead of hammering.
type admitTable struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newAdmitTable returns nil (admission off) when rate <= 0. A burst of
// <= 0 defaults to max(1, ceil(rate)).
func newAdmitTable(rate float64, burst int) *admitTable {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &admitTable{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// Allow consumes one token for key at time now. When the bucket is
// empty it reports the whole seconds until a token will be available
// (>= 1). Nil tables admit everything.
func (t *admitTable) Allow(key string, now time.Time) (ok bool, retryAfterSecs int) {
	if t == nil {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bk := t.buckets[key]
	if bk == nil {
		bk = &bucket{tokens: t.burst, last: now}
		t.buckets[key] = bk
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens = math.Min(t.burst, bk.tokens+t.rate*dt)
	}
	bk.last = now
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	secs := int(math.Ceil((1 - bk.tokens) / t.rate))
	if secs < 1 {
		secs = 1
	}
	return false, secs
}

// clientKey identifies the client for admission accounting: the bearer
// token when present (one budget per credential), else an explicit
// X-Client-ID header, else the remote IP.
func clientKey(r *http.Request) string {
	if tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer "); ok && tok != "" {
		return "tok:" + tok
	}
	if cid := r.Header.Get("X-Client-ID"); cid != "" {
		return "cid:" + cid
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "ip:" + host
}

// admitOK runs admission control for a request, answering 429 with the
// shared overload shape (Retry-After header + JSON body) on refusal.
func (g *Gateway) admitOK(w http.ResponseWriter, r *http.Request) bool {
	ok, retry := g.admit.Allow(clientKey(r), time.Now())
	if ok {
		return true
	}
	g.cAdmitRejected.Inc()
	writeOverload(w, http.StatusTooManyRequests, retry,
		"admission: client over rate (%.3g/s, burst %d)", g.cfg.AdmitRate, int(g.admit.burst))
	return false
}
