package gateway

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"tigris/internal/obs"
	"tigris/internal/serve"
)

// Routing-decision tracing and the stitched session trace surface.
//
// Every session create and migration records one Decision per placement
// attempt: the policy consulted, every worker's candidacy (health,
// drain fence, load signals, affinity score), the chosen worker, and
// which tie-break decided it — the BLIS-style decision trace that lets
// a rate-ladder run be explained, not just measured. Decisions live in
// a bounded gateway-global ring (GET /gateway/decisions) and on the
// session they placed (merged into GET /gateway/trace/{gid}).
//
// GET /gateway/trace/{gid} is the fleet-level view of one session's
// trace: the current worker's /debug/trace span tree, stitched behind
// the span trees captured from previous workers at each migration
// (fetched before the old session is deleted, exactly like the
// trajectory prefix), plus the session's routing decisions. One trace
// id — minted at create, or adopted from the client's W3C traceparent —
// spans all of it.

// DecisionCandidate is one worker's row in a routing decision.
type DecisionCandidate struct {
	Worker        string `json:"worker"`
	Healthy       bool   `json:"healthy"`
	Draining      bool   `json:"draining"`
	Tried         bool   `json:"tried,omitempty"` // already attempted during this create's failover
	PendingFrames int64  `json:"pending_frames"`
	Sessions      int64  `json:"sessions"`
	Score         uint64 `json:"score,omitempty"` // affinity: rendezvous-hash weight
	Picked        bool   `json:"picked"`
}

// Decision is one recorded routing choice.
type Decision struct {
	Seq        int64               `json:"seq"`
	At         string              `json:"at"` // RFC3339Nano
	Session    string              `json:"session"`
	TraceID    string              `json:"trace_id,omitempty"`
	Kind       string              `json:"kind"` // "create", "failover", or "migrate"
	Policy     string              `json:"policy"`
	Chosen     string              `json:"chosen,omitempty"` // empty: no worker qualified
	TieBreak   string              `json:"tie_break,omitempty"`
	Candidates []DecisionCandidate `json:"candidates"`
}

// maxGlobalDecisions bounds the gateway-global decision ring.
const maxGlobalDecisions = 1024

// maxSessionDecisions bounds the per-session decision list (creates are
// one-shot; only pathological failover/migration churn approaches this).
const maxSessionDecisions = 64

// recordDecision stamps and appends a decision to the global ring.
func (g *Gateway) recordDecision(d *Decision) {
	d.Seq = g.decSeq.Add(1)
	d.At = time.Now().UTC().Format(time.RFC3339Nano)
	g.decMu.Lock()
	g.decisions = append(g.decisions, *d)
	if len(g.decisions) > maxGlobalDecisions {
		g.decisions = g.decisions[len(g.decisions)-maxGlobalDecisions:]
	}
	g.decMu.Unlock()
}

// Decisions snapshots the global routing-decision ring, oldest first.
func (g *Gateway) Decisions() []Decision {
	g.decMu.Lock()
	defer g.decMu.Unlock()
	return append([]Decision(nil), g.decisions...)
}

func (g *Gateway) handleDecisions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"decisions": g.Decisions()})
}

// handleBuildinfo mirrors the workers' /v1/buildinfo for the gateway
// binary itself (satellite of the -version story: the same identity a
// worker reports, served from the front door).
func (g *Gateway) handleBuildinfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, serve.BuildInfo())
}

// workerTraceDoc is the subset of a worker's /debug/trace document the
// gateway re-serves.
type workerTraceDoc struct {
	TraceEvents []obs.ChromeEvent `json:"traceEvents"`
	Slowest     json.RawMessage   `json:"slowest"`
}

// fetchWorkerTrace pulls one worker's span tree for a session.
func (g *Gateway) fetchWorkerTrace(wk *worker, remoteID string, trace obs.TraceID) (workerTraceDoc, bool) {
	var doc workerTraceDoc
	resp, err := g.doUpstream(wk, http.MethodGet, "/debug/trace/"+remoteID, g.workerAuth(), "", trace, nil)
	if err != nil {
		return doc, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, false
	}
	return doc, true
}

// handleTrace serves the stitched session trace: span trees from every
// worker epoch (pid = epoch ordinal, so each worker's events get their
// own process row in Perfetto), the current worker's slowest-K
// exemplars, and the session's routing decisions. Still valid Chrome
// trace-event JSON — the extra keys are ignored by viewers.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request, ses *gwSession) {
	ses.mu.RLock()
	wk := ses.w
	events := append([]obs.ChromeEvent(nil), ses.prefixTrace...)
	decisions := append([]Decision(nil), ses.decisions...)
	migrations := ses.migrations
	trace := ses.trace
	remoteID := ses.remoteID
	ses.mu.RUnlock()

	var slowest json.RawMessage
	if wk.healthy.Load() {
		// Best-effort: a dead current worker still leaves the carried
		// prefix and the decision trace readable.
		if doc, ok := g.fetchWorkerTrace(wk, remoteID, trace); ok {
			epoch := migrations + 1
			for i := range doc.TraceEvents {
				doc.TraceEvents[i].Pid = epoch
			}
			events = append(events, doc.TraceEvents...)
			slowest = doc.Slowest
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })

	out := map[string]any{
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"session":    ses.id,
			"trace_id":   trace.String(),
			"migrations": migrations,
			"worker":     wk.url,
		},
		"traceEvents": events,
		"decisions":   decisions,
	}
	if len(slowest) > 0 {
		out["slowest"] = slowest
	}
	writeJSON(w, http.StatusOK, out)
}
