package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// DrainWorker gracefully removes a worker (named by URL or index) from
// the fleet: it is fenced from new sessions, then every session it
// holds is migrated to another worker — committed trajectory drained
// and carried over as a prefix, a replacement session created with
// origin = the last committed pose, the old session deleted. Returns
// how many sessions were migrated; on error some sessions may remain on
// the draining worker (they keep working until the worker actually
// dies). The worker stays fenced afterwards, so it can be killed or
// restarted; the health poller re-admits it for routing only after a
// restart flips draining back off via Undrain.
func (g *Gateway) DrainWorker(ref string) (int, error) {
	wk := g.findWorker(ref)
	if wk == nil {
		return 0, fmt.Errorf("no worker %q", ref)
	}
	wk.draining.Store(true)
	if g.logger != nil {
		g.logger.Info("draining worker", "worker", wk.url)
	}

	// Snapshot the sessions currently mapped to the draining worker.
	g.mu.Lock()
	var victims []*gwSession
	for _, ses := range g.sessions {
		victims = append(victims, ses)
	}
	g.mu.Unlock()

	migrated := 0
	var firstErr error
	for _, ses := range victims {
		moved, err := g.migrate(ses, wk)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("session %s: %w", ses.id, err)
		}
		if moved {
			migrated++
		}
	}
	return migrated, firstErr
}

// Undrain re-admits a previously drained worker for new sessions (after
// a restart, say). Health still gates actual routing.
func (g *Gateway) Undrain(ref string) error {
	wk := g.findWorker(ref)
	if wk == nil {
		return fmt.Errorf("no worker %q", ref)
	}
	wk.draining.Store(false)
	return nil
}

// migrate moves one session off a draining worker. It holds the session
// write-lock for the whole move, so concurrent pushes either complete
// before the trajectory snapshot (and are carried over) or land on the
// replacement session afterwards — committed state is never dropped.
// Reports whether the session was moved (false, nil when it was not on
// the draining worker to begin with).
func (g *Gateway) migrate(ses *gwSession, from *worker) (bool, error) {
	ses.mu.Lock()
	defer ses.mu.Unlock()
	if ses.w != from {
		return false, nil
	}

	// Drain the old worker's committed state: ?wait=1 blocks until every
	// pushed frame is committed, so nothing in flight is lost.
	resp, err := g.doUpstream(from, http.MethodGet, subPath(ses.remoteID, "trajectory", "wait=1"), g.workerAuth(), "", ses.trace, nil)
	if err != nil {
		return false, fmt.Errorf("draining trajectory: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("draining trajectory: status %d", resp.StatusCode)
	}
	var traj struct {
		Trajectory []map[string]any `json:"trajectory"`
	}
	if err := json.Unmarshal(body, &traj); err != nil {
		return false, fmt.Errorf("draining trajectory: %w", err)
	}

	// Committed loop closures ride along (best-effort: sessions without
	// the loop stage answer with an empty list).
	var loops struct {
		Closures []map[string]any `json:"closures"`
	}
	if resp, err := g.doUpstream(from, http.MethodGet, subPath(ses.remoteID, "loops", "wait=1"), g.workerAuth(), "", ses.trace, nil); err == nil {
		if resp.StatusCode == http.StatusOK {
			_ = json.NewDecoder(resp.Body).Decode(&loops)
		}
		resp.Body.Close()
	}

	// Recreate the session on another worker from its original config,
	// anchored at the last committed pose so the trajectory continues
	// where it left off.
	createBody := map[string]any{}
	if len(ses.createBody) > 0 {
		if err := json.Unmarshal(ses.createBody, &createBody); err != nil {
			createBody = map[string]any{}
		}
	}
	// Drop a previous migration's origin before re-anchoring.
	delete(createBody, "origin")
	if last := lastPose(ses.prefix, traj.Trajectory); last != nil {
		createBody["origin"] = last
	}
	newBody, err := json.Marshal(createBody)
	if err != nil {
		return false, err
	}
	newWk, newRemoteID, respBody, status, decs, err := g.createUpstream(ses.id, "migrate", ses.trace, newBody, g.workerAuth())
	ses.decisions = append(ses.decisions, decs...)
	if n := len(ses.decisions); n > maxSessionDecisions {
		ses.decisions = ses.decisions[n-maxSessionDecisions:]
	}
	if err != nil {
		return false, fmt.Errorf("recreating session: %w", err)
	}
	if status != http.StatusCreated {
		return false, fmt.Errorf("recreating session: worker %s answered %d: %s", newWk.url, status, respBody)
	}

	// Capture the old worker's span tree before the session (and its
	// flight recorder) disappears: the retiring epoch's events become a
	// trace prefix, stitched into /gateway/trace exactly like the
	// trajectory prefix. Pid = worker epoch so Perfetto shows each
	// worker's frames on its own process row.
	if doc, ok := g.fetchWorkerTrace(from, ses.remoteID, ses.trace); ok {
		epoch := ses.migrations + 1
		for i := range doc.TraceEvents {
			doc.TraceEvents[i].Pid = epoch
		}
		ses.prefixTrace = append(ses.prefixTrace, doc.TraceEvents...)
	}

	// Retire the old session (best-effort: the worker is going away).
	if resp, err := g.doUpstream(from, http.MethodDelete, subPath(ses.remoteID, "", ""), g.workerAuth(), "", ses.trace, nil); err == nil {
		resp.Body.Close()
	}

	// Fold the drained frames into the carried-over prefix with global
	// indices, and re-point the session.
	base := len(ses.prefix)
	for i, fr := range traj.Trajectory {
		fr["index"] = float64(base + i)
		ses.prefix = append(ses.prefix, fr)
	}
	for _, cl := range loops.Closures {
		for _, k := range []string{"from", "to"} {
			if v, ok := cl[k].(float64); ok {
				cl[k] = v + float64(base)
			}
		}
		ses.prefixClosures = append(ses.prefixClosures, cl)
	}
	from.gwSessions.Add(-1)
	newWk.gwSessions.Add(1)
	ses.w = newWk
	ses.remoteID = newRemoteID
	ses.migrations++
	g.cMigrated.Inc()
	if g.logger != nil {
		g.logger.Info("session migrated",
			"session", ses.id, "from", from.url, "to", newWk.url,
			"carried_frames", len(ses.prefix))
	}
	return true, nil
}

// lastPose returns the most recent committed pose across the carried
// prefix and the freshly drained frames (nil when the session never
// committed a frame).
func lastPose(prefix, drained []map[string]any) any {
	if n := len(drained); n > 0 {
		return drained[n-1]["pose"]
	}
	if n := len(prefix); n > 0 {
		return prefix[n-1]["pose"]
	}
	return nil
}
