package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/obs"
)

// gwTraceDoc decodes /gateway/trace/{id} for assertions.
type gwTraceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	Decisions []Decision     `json:"decisions"`
	Meta      map[string]any `json:"otherData"`
}

// TestTraceFollowsSessionAcrossMigration is the tentpole's end-to-end
// acceptance test: one trace id, adopted from the client's traceparent
// at the front door, shows up in the gateway's routing decisions, the
// worker's span tree, and every response header — and survives a
// drain/migration, with /gateway/trace stitching span events from both
// worker epochs under distinct process ids.
func TestTraceFollowsSessionAcrossMigration(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	_, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})

	// Create with a client-supplied traceparent: the gateway must adopt
	// the trace id rather than minting its own.
	want := obs.NewTraceID()
	body, _ := json.Marshal(map[string]any{"parallelism": 1})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/sessions", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", obs.FormatTraceParent(want, 0))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID    string `json:"id"`
		Trace string `json:"trace"`
	}
	err = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d err %v", resp.StatusCode, err)
	}
	if got := resp.Header.Get("X-Tigris-Trace"); got != want.String() {
		t.Fatalf("create X-Tigris-Trace = %q, want adopted %q", got, want)
	}
	if created.Trace != want.String() {
		t.Fatalf("create body trace = %q, want %q", created.Trace, want)
	}
	id := created.ID

	frames := quickFrames(4, 77)
	for _, c := range frames[:2] {
		pushFrame(t, base, id, c, true)
	}

	// Pre-migration: the stitched trace already shows worker epoch 1 and
	// the create decision carrying the same trace id.
	doc := fetchGatewayTrace(t, base, id)
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no span events before migration")
	}
	if len(doc.Decisions) != 1 || doc.Decisions[0].Kind != "create" {
		t.Fatalf("pre-migration decisions = %+v, want one create", doc.Decisions)
	}
	if doc.Decisions[0].TraceID != want.String() {
		t.Fatalf("create decision trace = %q, want %q", doc.Decisions[0].TraceID, want)
	}
	if len(doc.Decisions[0].Candidates) != 2 {
		t.Fatalf("create decision lists %d candidates, want both workers", len(doc.Decisions[0].Candidates))
	}

	// Drain the session's worker, forcing a migration.
	resp, err = http.Post(base+"/gateway/drain?worker=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}

	// Post-migration pushes still answer with the same trace id.
	for _, c := range frames[2:] {
		var buf bytes.Buffer
		if err := cloud.Write(&buf, c); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/sessions/"+id+"/frames?wait=1", "text/plain", &buf)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("post-drain push: status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Tigris-Trace"); got != want.String() {
			t.Fatalf("post-drain X-Tigris-Trace = %q, want %q", got, want)
		}
	}

	doc = fetchGatewayTrace(t, base, id)
	if doc.Meta["trace_id"] != want.String() {
		t.Fatalf("otherData.trace_id = %v, want %q", doc.Meta["trace_id"], want)
	}
	if m, ok := doc.Meta["migrations"].(float64); !ok || m != 1 {
		t.Fatalf("otherData.migrations = %v, want 1", doc.Meta["migrations"])
	}

	// Span events from both worker epochs, stitched and time-ordered,
	// all under the one trace id.
	epochs := map[int]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d ph = %q, want X", i, ev.Ph)
		}
		if i > 0 && ev.Ts < doc.TraceEvents[i-1].Ts {
			t.Fatalf("stitched events not sorted by ts at %d", i)
		}
		if ev.Args["trace_id"] != want.String() {
			t.Fatalf("event %q trace_id = %v, want %q", ev.Name, ev.Args["trace_id"], want)
		}
		epochs[ev.Pid]++
	}
	if epochs[1] == 0 || epochs[2] == 0 {
		t.Fatalf("stitched trace epochs = %v, want events from both worker epochs (pid 1 and 2)", epochs)
	}

	// The migration decision rides on the session, same trace id.
	kinds := map[string]int{}
	for _, d := range doc.Decisions {
		kinds[d.Kind]++
		if d.TraceID != want.String() {
			t.Fatalf("%s decision trace = %q, want %q", d.Kind, d.TraceID, want)
		}
	}
	if kinds["create"] != 1 || kinds["migrate"] != 1 {
		t.Fatalf("decision kinds = %v, want one create and one migrate", kinds)
	}

	// The global decision ring (admin surface) saw both too.
	dec, code, _ := getJSON(t, base+"/gateway/decisions")
	if code != http.StatusOK {
		t.Fatalf("/gateway/decisions: status %d", code)
	}
	if n := len(dec["decisions"].([]any)); n != 2 {
		t.Fatalf("global decision ring has %d entries, want 2", n)
	}

	// Sanity on the policy evidence: the migrate decision must mark the
	// draining worker ineligible and pick the survivor.
	var mig *Decision
	for i := range doc.Decisions {
		if doc.Decisions[i].Kind == "migrate" {
			mig = &doc.Decisions[i]
		}
	}
	if mig.Chosen != f.urls[1] {
		t.Fatalf("migrate chose %q, want surviving worker %s", mig.Chosen, f.urls[1])
	}
	for _, c := range mig.Candidates {
		if c.Worker == f.urls[0] && (!c.Draining || c.Picked) {
			t.Fatalf("draining worker candidacy = %+v, want draining and not picked", c)
		}
	}
}

// TestGatewayBuildinfo pins the front door's build-identity surface.
func TestGatewayBuildinfo(t *testing.T) {
	f := newFleet(t, 1, workerCfg)
	_, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})
	info, code, _ := getJSON(t, base+"/gateway/buildinfo")
	if code != http.StatusOK {
		t.Fatalf("/gateway/buildinfo: status %d", code)
	}
	if info["go"] == "" || info["module"] == "" {
		t.Fatalf("buildinfo = %v, want go and module fields", info)
	}
}

// fetchGatewayTrace GETs and decodes the stitched session trace.
func fetchGatewayTrace(t *testing.T, base, id string) gwTraceDoc {
	t.Helper()
	resp, err := http.Get(base + "/gateway/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/gateway/trace/%s: status %d", id, resp.StatusCode)
	}
	var doc gwTraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/gateway/trace: bad JSON: %v", err)
	}
	return doc
}
