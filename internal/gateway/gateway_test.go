package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/serve"
	"tigris/internal/synth"
)

// fleet is a set of in-process workers behind real HTTP listeners.
type fleet struct {
	servers []*serve.Server
	ts      []*httptest.Server
	urls    []string
}

func newFleet(t *testing.T, n int, cfg serve.Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		s := serve.New(cfg)
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		t.Cleanup(s.Close)
		f.servers = append(f.servers, s)
		f.ts = append(f.ts, ts)
		f.urls = append(f.urls, ts.URL)
	}
	return f
}

// newGateway fronts the fleet with a gateway on a real listener.
func newGateway(t *testing.T, f *fleet, cfg Config) (*Gateway, string) {
	t.Helper()
	cfg.Workers = f.urls
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	return g, ts.URL
}

// createSession creates a session and returns (id, worker URL, status).
func createSession(t *testing.T, base string, body map[string]any) (string, string, int) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID     string `json:"id"`
		Worker string `json:"worker"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out.ID, out.Worker, resp.StatusCode
}

// pushFrame pushes one frame, asserting 202, and returns the response.
func pushFrame(t *testing.T, base, id string, c *cloud.Cloud, wait bool) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := cloud.Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/sessions/%s/frames", base, id)
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("push frame to %s: status %d", id, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// getJSON GETs a URL, returning the decoded body and status.
func getJSON(t *testing.T, url string) (map[string]any, int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode, resp.Header
}

// quickFrames renders a short synthetic sequence once per (frames, seed).
func quickFrames(frames int, seed int64) []*cloud.Cloud {
	return synth.GenerateSequence(synth.QuickSequenceConfig(frames, seed)).Frames
}

// workerCfg keeps worker sessions cheap and deterministic in tests.
var workerCfg = serve.Config{Parallelism: 1}

func TestRoundRobinSplitsSessions(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	_, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})

	var placed []string
	for i := 0; i < 4; i++ {
		id, wkr, code := createSession(t, base, map[string]any{"parallelism": 1})
		if code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		if id != fmt.Sprintf("g%d", i+1) {
			t.Fatalf("create %d: id %q, want g%d", i, id, i+1)
		}
		placed = append(placed, wkr)
	}
	want := []string{f.urls[0], f.urls[1], f.urls[0], f.urls[1]}
	for i := range want {
		if placed[i] != want[i] {
			t.Fatalf("round-robin placement = %v, want %v", placed, want)
		}
	}
}

func TestLeastLoadedFollowsPolledBacklog(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	g, base := newGateway(t, f, Config{Policy: PolicyLeastLoaded})

	// With worker 0 reporting a deep frame backlog, every create must
	// land on worker 1 regardless of session-count tie-breaks.
	g.workers[0].polledPending.Store(100)
	for i := 0; i < 3; i++ {
		_, wkr, code := createSession(t, base, map[string]any{"parallelism": 1})
		if code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
		if wkr != f.urls[1] {
			t.Fatalf("create %d placed on %s, want least-loaded %s", i, wkr, f.urls[1])
		}
	}
	// Backlogs equal again: the session-count tie-break spreads the
	// next creates to worker 0 (0 sessions vs 3).
	g.workers[0].polledPending.Store(0)
	_, wkr, _ := createSession(t, base, map[string]any{"parallelism": 1})
	if wkr != f.urls[0] {
		t.Fatalf("tie-break placed on %s, want %s", wkr, f.urls[0])
	}
}

func TestPollWorkersScrapesLoad(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	g, base := newGateway(t, f, Config{Policy: PolicyLeastLoaded})

	id, _, _ := createSession(t, base, map[string]any{"parallelism": 1})
	for _, c := range quickFrames(2, 31) {
		pushFrame(t, base, id, c, true)
	}
	g.PollWorkers()
	if got := g.workers[0].polledSessions.Load(); got != 1 {
		t.Fatalf("polled sessions on worker 0 = %d, want 1", got)
	}
	if got := g.workers[0].polledPending.Load(); got != 0 {
		t.Fatalf("polled pending after waited pushes = %d, want 0", got)
	}
	for _, wk := range g.workers {
		if !wk.healthy.Load() {
			t.Fatalf("worker %s unexpectedly unhealthy", wk.url)
		}
	}
}

func TestAffinityIsRendezvousHash(t *testing.T) {
	f := newFleet(t, 3, workerCfg)
	g, base := newGateway(t, f, Config{Policy: PolicyAffinity})

	for i := 0; i < 6; i++ {
		id, wkr, code := createSession(t, base, map[string]any{"parallelism": 1})
		if code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
		// Recompute the expected HRW winner independently.
		want, best := "", uint64(0)
		for _, wk := range g.workers {
			if s := hrwScore(id, wk.url); want == "" || s > best {
				want, best = wk.url, s
			}
		}
		if wkr != want {
			t.Fatalf("session %s placed on %s, want HRW winner %s", id, wkr, want)
		}
	}
}

// TestTrajectoryBitIdenticalToSingleWorker is the fleet's correctness
// anchor: the same frames through the gateway (2 workers, each routing
// policy) and through a bare single worker must produce bit-identical
// trajectories.
func TestTrajectoryBitIdenticalToSingleWorker(t *testing.T) {
	frames := quickFrames(3, 42)

	// Reference: a session on a bare worker.
	ref := newFleet(t, 1, workerCfg)
	refID, _, _ := createSession(t, ref.urls[0], map[string]any{"parallelism": 1})
	for _, c := range frames {
		pushFrame(t, ref.urls[0], refID, c, true)
	}
	refTraj, _, _ := getJSON(t, ref.urls[0]+"/v1/sessions/"+refID+"/trajectory?wait=1")

	for _, policy := range []Policy{PolicyRoundRobin, PolicyLeastLoaded, PolicyAffinity} {
		t.Run(string(policy), func(t *testing.T) {
			f := newFleet(t, 2, workerCfg)
			_, base := newGateway(t, f, Config{Policy: policy})
			// Two concurrent sessions so both workers hold state under
			// round-robin.
			var ids []string
			for i := 0; i < 2; i++ {
				id, _, code := createSession(t, base, map[string]any{"parallelism": 1})
				if code != http.StatusCreated {
					t.Fatalf("create: status %d", code)
				}
				ids = append(ids, id)
			}
			for _, c := range frames {
				for _, id := range ids {
					pushFrame(t, base, id, c, true)
				}
			}
			for _, id := range ids {
				traj, code, hdr := getJSON(t, base+"/v1/sessions/"+id+"/trajectory?wait=1")
				if code != http.StatusOK {
					t.Fatalf("trajectory: status %d", code)
				}
				if hdr.Get("X-Tigris-Worker") == "" {
					t.Fatal("trajectory response missing X-Tigris-Worker header")
				}
				assertSameTrajectory(t, refTraj, traj)
			}
		})
	}
}

// assertSameTrajectory compares two trajectory responses frame by frame
// (index, delta, pose) for exact equality.
func assertSameTrajectory(t *testing.T, want, got map[string]any) {
	t.Helper()
	wf := want["trajectory"].([]any)
	gf := got["trajectory"].([]any)
	if len(wf) != len(gf) {
		t.Fatalf("trajectory has %d frames, want %d", len(gf), len(wf))
	}
	for i := range wf {
		wm, gm := wf[i].(map[string]any), gf[i].(map[string]any)
		for _, key := range []string{"index", "delta", "pose"} {
			wj, _ := json.Marshal(wm[key])
			gj, _ := json.Marshal(gm[key])
			if !bytes.Equal(wj, gj) {
				t.Fatalf("frame %d %s = %s, want %s", i, key, gj, wj)
			}
		}
	}
}

// TestEvictedSessionSurfacesAs404 pins the idle-TTL interaction with
// gateway affinity: when the worker evicts a session, the client must
// see a clean 404 through the gateway — and the gateway must drop its
// mapping, not silently re-route onto a fresh session.
func TestEvictedSessionSurfacesAs404(t *testing.T) {
	cfg := workerCfg
	cfg.SessionTTL = time.Hour // janitor armed but never fires in-test
	f := newFleet(t, 2, cfg)
	g, base := newGateway(t, f, Config{Policy: PolicyAffinity})

	id, wkr, code := createSession(t, base, map[string]any{"parallelism": 1})
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	for _, c := range quickFrames(2, 7) {
		pushFrame(t, base, id, c, true)
	}

	// Force worker-side eviction deterministically: from two hours in
	// the future, every idle session is past its TTL.
	evicted := 0
	for _, s := range f.servers {
		evicted += len(s.EvictIdle(time.Now().Add(2 * time.Hour)))
	}
	if evicted != 1 {
		t.Fatalf("evicted %d sessions, want 1", evicted)
	}

	// First access after eviction: worker's 404 passes through, and the
	// gateway mapping goes away with it.
	body, code, hdr := getJSON(t, base+"/v1/sessions/"+id+"/trajectory")
	if code != http.StatusNotFound {
		t.Fatalf("trajectory after eviction: status %d, want 404", code)
	}
	if body["error"] == nil {
		t.Fatalf("404 body = %v, want JSON error", body)
	}
	if hdr.Get("X-Tigris-Worker") != wkr {
		t.Fatalf("404 served by %q, want owning worker %q", hdr.Get("X-Tigris-Worker"), wkr)
	}
	if g.session(id) != nil {
		t.Fatal("gateway kept the mapping for an evicted session")
	}

	// Later accesses 404 at the gateway itself; no fresh session is
	// silently created anywhere.
	_, code, _ = getJSON(t, base+"/v1/sessions/"+id+"/trajectory")
	if code != http.StatusNotFound {
		t.Fatalf("second access: status %d, want 404", code)
	}
	for i, s := range f.servers {
		if n := s.Metrics(); n != nil {
			// Worker-side active sessions must be zero on both workers.
			var buf bytes.Buffer
			n.WritePrometheus(&buf)
			if !bytes.Contains(buf.Bytes(), []byte("tigris_sessions_active 0")) {
				t.Fatalf("worker %d still holds a session:\n%s", i, buf.String())
			}
		}
	}
}

func TestCreateFailsOverDeadWorker(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	_, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})
	f.ts[0].Close() // worker 0 is gone; round-robin would try it first

	id, wkr, code := createSession(t, base, map[string]any{"parallelism": 1})
	if code != http.StatusCreated {
		t.Fatalf("create with dead worker: status %d", code)
	}
	if wkr != f.urls[1] {
		t.Fatalf("create landed on %s, want surviving worker %s", wkr, f.urls[1])
	}
	for _, c := range quickFrames(2, 3) {
		pushFrame(t, base, id, c, true)
	}
}

func TestNoWorkerAnswers503WithRetryAfter(t *testing.T) {
	f := newFleet(t, 1, workerCfg)
	_, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})
	f.ts[0].Close()

	b, _ := json.Marshal(map[string]any{})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
	var body struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" || body.RetryAfter < 1 {
		t.Fatalf("503 body = %+v (err %v), want error + retry_after_seconds", body, err)
	}
}

func TestBadSessionConfigForwardsWorkerVerdict(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	_, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})
	b, _ := json.Marshal(map[string]any{"design_point": "DP99"})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want worker's 400", resp.StatusCode)
	}
}

func TestGatewayMetricsExposition(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	_, base := newGateway(t, f, Config{Policy: PolicyRoundRobin})
	id, _, _ := createSession(t, base, map[string]any{"parallelism": 1})
	for _, c := range quickFrames(2, 11) {
		pushFrame(t, base, id, c, true)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"tigris_gateway_sessions_active 1",
		`tigris_gateway_routed_total{worker="` + f.urls[0] + `"} 1`,
		`tigris_gateway_worker_healthy{worker="` + f.urls[0] + `"} 1`,
		`tigris_gateway_proxy_seconds_bucket{stage="frames",le="+Inf"} 2`,
		`tigris_gateway_requests_total{route="/v1/sessions",code="201"} 1`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestAdmitTableTokenBucket(t *testing.T) {
	tab := newAdmitTable(1, 2) // 1 token/s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := tab.Allow("c", now); !ok {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	ok, retry := tab.Allow("c", now)
	if ok || retry < 1 {
		t.Fatalf("over-burst: ok=%v retry=%d, want refusal with retry >= 1", ok, retry)
	}
	// Other clients have their own bucket.
	if ok, _ := tab.Allow("other", now); !ok {
		t.Fatal("distinct client refused")
	}
	// One second refills one token.
	if ok, _ := tab.Allow("c", now.Add(time.Second)); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := tab.Allow("c", now.Add(time.Second)); ok {
		t.Fatal("empty bucket admitted")
	}
	// Refill never exceeds burst.
	if ok, _ := tab.Allow("c", now.Add(time.Hour)); !ok {
		t.Fatal("long-idle client refused")
	}
	tab.Allow("c", now.Add(time.Hour))
	if ok, _ := tab.Allow("c", now.Add(time.Hour)); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
	// Nil table admits everything.
	var nilTab *admitTable
	if ok, _ := nilTab.Allow("c", now); !ok {
		t.Fatal("nil table refused")
	}
}

func TestAdmissionRejectsWith429(t *testing.T) {
	f := newFleet(t, 2, workerCfg)
	g, base := newGateway(t, f, Config{Policy: PolicyRoundRobin, AdmitRate: 0.001, AdmitBurst: 1})

	if _, _, code := createSession(t, base, map[string]any{"parallelism": 1}); code != http.StatusCreated {
		t.Fatalf("first create: status %d", code)
	}
	b, _ := json.Marshal(map[string]any{})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second create: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	var body struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" || body.RetryAfter < 1 {
		t.Fatalf("429 body = %+v (err %v)", body, err)
	}
	if g.cAdmitRejected.Value() != 1 {
		t.Fatalf("admission_rejected = %d, want 1", g.cAdmitRejected.Value())
	}
}

func TestGatewayConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no workers accepted")
	}
	if _, err := New(Config{Workers: []string{"not-a-url"}}); err == nil {
		t.Fatal("bad worker URL accepted")
	}
	if _, err := New(Config{Workers: []string{"http://localhost:1"}, Policy: "bogus"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := ParsePolicy("least-loaded"); err != nil {
		t.Fatal(err)
	}
}
