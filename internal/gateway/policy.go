package gateway

import (
	"fmt"
	"hash/fnv"
)

// Policy names a session-placement strategy.
type Policy string

const (
	// PolicyRoundRobin rotates session creates across available workers.
	PolicyRoundRobin Policy = "round-robin"
	// PolicyLeastLoaded places each session on the worker with the
	// fewest pending frames (scraped from its /metrics by the health
	// poller), tie-broken by the gateway's own live session count, then
	// by worker index — so placement is deterministic given the polled
	// state.
	PolicyLeastLoaded Policy = "least-loaded"
	// PolicyAffinity hashes the gateway session id over the available
	// workers with highest-random-weight (rendezvous) hashing: the same
	// id always lands on the same worker while the worker set is
	// stable, and a worker-set change moves only the sessions that
	// hashed to the lost worker.
	PolicyAffinity Policy = "affinity"
)

// Policies lists the selectable policy names.
func Policies() []string {
	return []string{string(PolicyRoundRobin), string(PolicyLeastLoaded), string(PolicyAffinity)}
}

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyRoundRobin, PolicyLeastLoaded, PolicyAffinity:
		return Policy(s), nil
	}
	return "", fmt.Errorf("unknown routing policy %q (want one of %v)", s, Policies())
}

// hrwScore is the rendezvous-hash weight of placing a session id on a
// worker: FNV-1a over "id|workerURL". Exported shape (id, url) → uint64
// is pinned by tests so placement stays stable across refactors.
func hrwScore(sessionID, workerURL string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(sessionID))
	_, _ = h.Write([]byte{'|'})
	_, _ = h.Write([]byte(workerURL))
	return h.Sum64()
}

// pick returns the policy's worker choice among available workers not
// excluded by skip (nil = none excluded). Returns nil when no worker
// qualifies.
func (g *Gateway) pick(sessionID string, skip func(*worker) bool) *worker {
	cands := make([]*worker, 0, len(g.workers))
	for _, wk := range g.workers {
		if wk.available() && (skip == nil || !skip(wk)) {
			cands = append(cands, wk)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	switch g.cfg.Policy {
	case PolicyLeastLoaded:
		best := cands[0]
		for _, wk := range cands[1:] {
			bp, wp := best.polledPending.Load(), wk.polledPending.Load()
			bs, ws := best.gwSessions.Load(), wk.gwSessions.Load()
			if wp < bp || (wp == bp && (ws < bs || (ws == bs && wk.idx < best.idx))) {
				best = wk
			}
		}
		return best
	case PolicyAffinity:
		best := cands[0]
		bestScore := hrwScore(sessionID, best.url)
		for _, wk := range cands[1:] {
			if s := hrwScore(sessionID, wk.url); s > bestScore || (s == bestScore && wk.idx < best.idx) {
				best, bestScore = wk, s
			}
		}
		return best
	default: // round-robin
		return cands[int((g.rr.Add(1)-1)%uint64(len(cands)))]
	}
}
