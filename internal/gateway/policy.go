package gateway

import (
	"fmt"
	"hash/fnv"
)

// Policy names a session-placement strategy.
type Policy string

const (
	// PolicyRoundRobin rotates session creates across available workers.
	PolicyRoundRobin Policy = "round-robin"
	// PolicyLeastLoaded places each session on the worker with the
	// fewest pending frames (scraped from its /metrics by the health
	// poller), tie-broken by the gateway's own live session count, then
	// by worker index — so placement is deterministic given the polled
	// state.
	PolicyLeastLoaded Policy = "least-loaded"
	// PolicyAffinity hashes the gateway session id over the available
	// workers with highest-random-weight (rendezvous) hashing: the same
	// id always lands on the same worker while the worker set is
	// stable, and a worker-set change moves only the sessions that
	// hashed to the lost worker.
	PolicyAffinity Policy = "affinity"
)

// Policies lists the selectable policy names.
func Policies() []string {
	return []string{string(PolicyRoundRobin), string(PolicyLeastLoaded), string(PolicyAffinity)}
}

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyRoundRobin, PolicyLeastLoaded, PolicyAffinity:
		return Policy(s), nil
	}
	return "", fmt.Errorf("unknown routing policy %q (want one of %v)", s, Policies())
}

// hrwScore is the rendezvous-hash weight of placing a session id on a
// worker: FNV-1a over "id|workerURL". Exported shape (id, url) → uint64
// is pinned by tests so placement stays stable across refactors.
func hrwScore(sessionID, workerURL string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(sessionID))
	_, _ = h.Write([]byte{'|'})
	_, _ = h.Write([]byte(workerURL))
	return h.Sum64()
}

// pick returns the policy's worker choice among available workers not
// excluded by skip (nil = none excluded). Returns nil when no worker
// qualifies.
func (g *Gateway) pick(sessionID string, skip func(*worker) bool) *worker {
	wk, _, _ := g.pickExplain(sessionID, skip)
	return wk
}

// pickExplain is pick plus its evidence: one DecisionCandidate row per
// configured worker (including the excluded ones, with why), and the
// tie-break criterion that decided among the eligible set — the raw
// material of the routing-decision trace.
func (g *Gateway) pickExplain(sessionID string, skip func(*worker) bool) (*worker, []DecisionCandidate, string) {
	rows := make([]DecisionCandidate, len(g.workers))
	cands := make([]*worker, 0, len(g.workers))
	for i, wk := range g.workers {
		rows[i] = DecisionCandidate{
			Worker:        wk.url,
			Healthy:       wk.healthy.Load(),
			Draining:      wk.draining.Load(),
			Tried:         skip != nil && skip(wk),
			PendingFrames: wk.polledPending.Load(),
			Sessions:      wk.gwSessions.Load(),
		}
		if g.cfg.Policy == PolicyAffinity {
			rows[i].Score = hrwScore(sessionID, wk.url)
		}
		if wk.available() && !rows[i].Tried {
			cands = append(cands, wk)
		}
	}
	if len(cands) == 0 {
		return nil, rows, ""
	}
	var best *worker
	tieBreak := ""
	switch g.cfg.Policy {
	case PolicyLeastLoaded:
		best = cands[0]
		for _, wk := range cands[1:] {
			bp, wp := best.polledPending.Load(), wk.polledPending.Load()
			bs, ws := best.gwSessions.Load(), wk.gwSessions.Load()
			if wp < bp || (wp == bp && (ws < bs || (ws == bs && wk.idx < best.idx))) {
				best = wk
			}
		}
		// Name the criterion that actually separated the winner from the
		// rest of the eligible set.
		tieBreak = "pending_frames"
		pendingTies, sessionTies := 0, 0
		for _, wk := range cands {
			if wk == best {
				continue
			}
			if wk.polledPending.Load() == best.polledPending.Load() {
				pendingTies++
				if wk.gwSessions.Load() == best.gwSessions.Load() {
					sessionTies++
				}
			}
		}
		if pendingTies > 0 {
			tieBreak = "sessions"
			if sessionTies > 0 {
				tieBreak = "index"
			}
		}
	case PolicyAffinity:
		best = cands[0]
		bestScore := hrwScore(sessionID, best.url)
		for _, wk := range cands[1:] {
			if s := hrwScore(sessionID, wk.url); s > bestScore || (s == bestScore && wk.idx < best.idx) {
				best, bestScore = wk, s
			}
		}
		tieBreak = "hrw"
	default: // round-robin
		best = cands[int((g.rr.Add(1)-1)%uint64(len(cands)))]
		tieBreak = "rotation"
	}
	for i := range rows {
		if rows[i].Worker == best.url {
			rows[i].Picked = true
		}
	}
	return best, rows, tieBreak
}
