package loadgen

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tigris/internal/gateway"
	"tigris/internal/obs"
	"tigris/internal/serve"
)

func TestArrivalsDeterministicAndCalibrated(t *testing.T) {
	for _, tc := range []struct {
		kind string
		rate float64
		cv   float64
	}{
		{ArrivalPoisson, 100, 0},
		{ArrivalGamma, 100, 0.5},
		{ArrivalGamma, 100, 2},
	} {
		a1, err := NewArrivals(tc.kind, tc.rate, tc.cv, 7)
		if err != nil {
			t.Fatal(err)
		}
		a2, _ := NewArrivals(tc.kind, tc.rate, tc.cv, 7)
		const n = 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			d1, d2 := a1.Next(), a2.Next()
			if d1 != d2 {
				t.Fatalf("%s: draw %d differs across same-seed processes", tc.kind, i)
			}
			if d1 < 0 {
				t.Fatalf("%s: negative inter-arrival %v", tc.kind, d1)
			}
			s := d1.Seconds()
			sum += s
			sumSq += s * s
		}
		mean := sum / n
		wantMean := 1 / tc.rate
		if math.Abs(mean-wantMean)/wantMean > 0.05 {
			t.Errorf("%s cv=%g: mean inter-arrival %g, want ~%g", tc.kind, tc.cv, mean, wantMean)
		}
		std := math.Sqrt(sumSq/n - mean*mean)
		wantCV := tc.cv
		if tc.kind == ArrivalPoisson {
			wantCV = 1
		}
		if gotCV := std / mean; math.Abs(gotCV-wantCV)/wantCV > 0.1 {
			t.Errorf("%s: CV %g, want ~%g", tc.kind, gotCV, wantCV)
		}
	}

	if _, err := NewArrivals("uniform", 1, 0, 0); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
	if _, err := NewArrivals(ArrivalPoisson, 0, 0, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewArrivals(ArrivalGamma, 1, 0, 0); err == nil {
		t.Fatal("gamma with zero cv accepted")
	}
}

// ciProfile keeps in-test traffic tiny.
var ciProfile = Profile{Name: "tiny", Frames: 2, Beams: 8, AzimuthSteps: 90, Parallelism: 1}

func startFleet(t *testing.T, workers int, policy gateway.Policy, admitRate float64) string {
	t.Helper()
	var urls []string
	for i := 0; i < workers; i++ {
		s := serve.New(serve.Config{Parallelism: 1})
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		t.Cleanup(s.Close)
		urls = append(urls, ts.URL)
	}
	g, err := gateway.New(gateway.Config{Workers: urls, Policy: policy, AdmitRate: admitRate})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestRunAgainstGatewayFleet(t *testing.T) {
	target := startFleet(t, 2, gateway.PolicyRoundRobin, 0)
	res, err := Run(Config{
		Target:   target,
		Sessions: 4,
		Rate:     200,
		Seed:     1,
		Profiles: []Profile{ciProfile},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionsOK != 4 || res.SessionsFailed != 0 || res.Errors != 0 {
		t.Fatalf("result = %+v, want 4 clean sessions", res)
	}
	if res.FramesPushed != 8 {
		t.Fatalf("frames pushed = %d, want 8", res.FramesPushed)
	}
	if res.SessionsPerSec <= 0 {
		t.Fatalf("sessions/sec = %g", res.SessionsPerSec)
	}
	// Round-robin over 2 workers: both appear, split sums to sessions.
	if len(res.PerWorker) != 2 {
		t.Fatalf("per_worker = %v, want both workers", res.PerWorker)
	}
	total := 0
	for _, n := range res.PerWorker {
		total += n
	}
	if total != 4 {
		t.Fatalf("per_worker sums to %d, want 4", total)
	}
	if res.ProfileSessions["tiny"] != 4 {
		t.Fatalf("profile_sessions = %v", res.ProfileSessions)
	}
	// The frame digest covers every push, with a sane percentile ladder.
	fr, ok := res.Latency["frame"]
	if !ok || fr.Count != res.FramesPushed {
		t.Fatalf("frame digest = %+v, want count %d", fr, res.FramesPushed)
	}
	if !(fr.P50Ms > 0 && fr.P50Ms <= fr.P95Ms && fr.P95Ms <= fr.P99Ms && fr.P99Ms <= fr.MaxMs) {
		t.Fatalf("frame percentiles not monotone: %+v", fr)
	}
	for _, stage := range []string{"create", "trajectory"} {
		if d := res.Latency[stage]; d.Count != 4 {
			t.Fatalf("%s digest = %+v, want count 4", stage, d)
		}
	}
	// The record round-trips as the BENCH_serve.json contract expects.
	b, _ := json.Marshal(res)
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back["name"] != Name {
		t.Fatalf("name = %v", back["name"])
	}
	if _, ok := back["latency_percentiles"].(map[string]any)["frame"]; !ok {
		t.Fatal("latency_percentiles.frame missing in JSON")
	}
}

func TestRunAgainstBareWorker(t *testing.T) {
	s := serve.New(serve.Config{Parallelism: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)

	res, err := Run(Config{
		Target:   ts.URL,
		Sessions: 2,
		Rate:     200,
		Arrival:  ArrivalGamma,
		CV:       0.5,
		Seed:     3,
		Profiles: []Profile{ciProfile},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionsOK != 2 || res.FramesPushed != 4 {
		t.Fatalf("result = %+v", res)
	}
	// No gateway in the path: the whole fleet is the one target.
	if res.PerWorker[ts.URL] != 2 || len(res.PerWorker) != 1 {
		t.Fatalf("per_worker = %v", res.PerWorker)
	}
	if res.CV != 0.5 || res.Arrival != ArrivalGamma {
		t.Fatalf("arrival metadata = %s cv %g", res.Arrival, res.CV)
	}
}

// TestRetryAfterHonored pins the backoff contract: a 429 with
// Retry-After is counted, waited out, and retried.
func TestRetryAfterHonored(t *testing.T) {
	worker := serve.New(serve.Config{Parallelism: 1})
	wts := httptest.NewServer(worker)
	t.Cleanup(wts.Close)
	t.Cleanup(worker.Close)

	// Front the worker with a shim that refuses the first create.
	refused := false
	proxy := http.NewServeMux()
	proxy.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/sessions" && !refused {
			refused = true
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"error": "slow down", "retry_after_seconds": 1})
			return
		}
		r2, _ := http.NewRequest(r.Method, wts.URL+r.URL.RequestURI(), r.Body)
		r2.Header = r.Header
		resp, err := http.DefaultTransport.RoundTrip(r2)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	})
	pts := httptest.NewServer(proxy)
	t.Cleanup(pts.Close)

	start := time.Now()
	res, err := Run(Config{
		Target:       pts.URL,
		Sessions:     1,
		Rate:         100,
		Seed:         5,
		Profiles:     []Profile{ciProfile},
		MaxRetryWait: 50 * time.Millisecond, // cap the honored wait for test speed
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected429 != 1 {
		t.Fatalf("rejected_429 = %d, want 1", res.Rejected429)
	}
	if res.SessionsOK != 1 {
		t.Fatalf("sessions_ok = %d, want 1 (retry should have succeeded)", res.SessionsOK)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("run finished in %v; backoff was not honored", elapsed)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{Sessions: 1, Rate: 1}); err == nil {
		t.Fatal("missing target accepted")
	}
	if _, err := Run(Config{Target: "http://x", Rate: 1}); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if _, err := Run(Config{Target: "http://x", Sessions: 1, Rate: 1, Arrival: "bogus"}); err == nil {
		t.Fatal("bad arrival accepted")
	}
}

// TestPerProfileSplitsAndTraceExemplars pins the new digest surfaces:
// a mixed run splits latency by profile, and each top-level digest
// carries slowest-K trace-id exemplars resolvable as W3C trace ids.
func TestPerProfileSplitsAndTraceExemplars(t *testing.T) {
	target := startFleet(t, 2, gateway.PolicyRoundRobin, 0)
	tiny2 := ciProfile
	tiny2.Name = "tiny2"
	res, err := Run(Config{
		Target:   target,
		Sessions: 6,
		Rate:     200,
		Seed:     9,
		Profiles: []Profile{ciProfile, tiny2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionsOK != 6 {
		t.Fatalf("sessions_ok = %d, want 6", res.SessionsOK)
	}

	// Per-profile split: every profile that ran sessions has digests,
	// and the frame counts across profiles sum to the total.
	var frameSum int64
	for name, n := range res.ProfileSessions {
		if n == 0 {
			continue
		}
		split, ok := res.PerProfile[name]
		if !ok {
			t.Fatalf("profile %q ran %d sessions but has no per_profile digests", name, n)
		}
		if split["create"].Count != int64(n) {
			t.Fatalf("profile %q create count = %d, want %d", name, split["create"].Count, n)
		}
		frameSum += split["frame"].Count
	}
	if frameSum != res.FramesPushed {
		t.Fatalf("per-profile frame counts sum to %d, want %d", frameSum, res.FramesPushed)
	}

	// Trace exemplars: present on the frame digest, valid ids, sorted
	// slowest-first, never more than the retention bound.
	exs := res.Latency["frame"].Exemplars
	if len(exs) == 0 || len(exs) > traceExemplarK {
		t.Fatalf("frame digest has %d exemplars, want 1..%d", len(exs), traceExemplarK)
	}
	for i, ex := range exs {
		if _, ok := obs.ParseTraceID(ex.TraceID); !ok {
			t.Fatalf("exemplar %d trace id %q invalid", i, ex.TraceID)
		}
		if ex.Ms <= 0 || ex.Profile == "" {
			t.Fatalf("exemplar %d = %+v, want positive ms and a profile", i, ex)
		}
		if i > 0 && ex.Ms > exs[i-1].Ms {
			t.Fatalf("exemplars not slowest-first at %d", i)
		}
	}
	if ms := res.Latency["frame"].MaxMs; exs[0].Ms != ms {
		t.Fatalf("slowest exemplar %.3fms != digest max %.3fms", exs[0].Ms, ms)
	}
}

// TestRunLadder pins the rate sweep: one Result per step, rates in
// order, everything else held fixed.
func TestRunLadder(t *testing.T) {
	s := serve.New(serve.Config{Parallelism: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)

	rates := []float64{100, 300}
	results, err := RunLadder(Config{
		Target:   ts.URL,
		Sessions: 2,
		Seed:     4,
		Profiles: []Profile{ciProfile},
	}, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(rates) {
		t.Fatalf("%d results, want %d", len(results), len(rates))
	}
	for i, res := range results {
		if res.RatePerSec != rates[i] {
			t.Fatalf("step %d rate = %g, want %g", i, res.RatePerSec, rates[i])
		}
		if res.SessionsOK != 2 || res.Seed != 4 {
			t.Fatalf("step %d = %+v, want 2 clean sessions at seed 4", i, res)
		}
	}

	if _, err := RunLadder(Config{Target: ts.URL, Sessions: 1}, nil); err == nil {
		t.Fatal("empty ladder accepted")
	}
}
