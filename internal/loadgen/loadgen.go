// Package loadgen drives open-loop multi-client traffic against a
// tigris-serve worker or a tigris-gateway fleet and digests the
// observed service into a benchmark record.
//
// Open loop means the session arrival schedule is drawn up front from a
// seeded stochastic process (Poisson or Gamma inter-arrivals) and never
// waits for completions: if the fleet falls behind, latencies grow and
// admission rejections appear in the result instead of the load
// politely backing off — the honest way to measure tail latency.
//
// Each arriving session picks a scenario profile (frame count, cloud
// density, loop closure on or off) by seeded weighted choice, creates a
// session over the /v1 API, pushes its frames with ?wait=1 (so a
// frame's latency spans queueing and the full pipeline), reads the
// trajectory back, and deletes the session. Per-phase latencies are
// recorded through internal/obs histograms, the same digests the
// servers themselves publish.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/obs"
	"tigris/internal/synth"
)

// Name identifies loadgen records in BENCH JSON files.
const Name = "tigris-loadgen"

// Profile is one traffic scenario: how many frames a session pushes,
// how dense its clouds are, and whether loop closure is enabled.
type Profile struct {
	Name string
	// Frames per session (default 4).
	Frames int
	// Beams and AzimuthSteps set the synthetic cloud density
	// (defaults 16 and 300, ~5k points).
	Beams        int
	AzimuthSteps int
	// Loop enables the worker-side loop-closure stage for the session.
	Loop bool
	// Parallelism pins the session's per-stage worker count (0 = server
	// default).
	Parallelism int
	// Weight is the scenario's share of arriving sessions (relative;
	// default 1).
	Weight float64
}

// DefaultProfiles is a mixed fleet workload: mostly short light
// sessions, some dense ones, and a tail of loop-closure sessions.
func DefaultProfiles() []Profile {
	return []Profile{
		{Name: "compact", Frames: 4, Beams: 16, AzimuthSteps: 300, Weight: 5},
		{Name: "dense", Frames: 6, Beams: 32, AzimuthSteps: 600, Weight: 3},
		{Name: "loop", Frames: 8, Beams: 16, AzimuthSteps: 300, Loop: true, Weight: 2},
	}
}

// Config parameterizes one load run.
type Config struct {
	// Target is the base URL of a worker or gateway (required).
	Target string
	// Sessions is the total number of sessions to run (required).
	Sessions int
	// Rate is the mean session arrival rate per second (required).
	Rate float64
	// Arrival selects the inter-arrival process (default poisson).
	Arrival string
	// CV is the gamma process's coefficient of variation (default 1).
	CV float64
	// Seed makes the schedule, profile mix, and synthetic frames
	// deterministic.
	Seed int64
	// Profiles is the scenario mix (default DefaultProfiles).
	Profiles []Profile
	// AuthToken, when set, is presented as a bearer token (it also
	// becomes the admission-control client key).
	AuthToken string
	// Retries bounds per-request retries after a 429/503 (default 2).
	Retries int
	// MaxRetryWait caps how long a Retry-After is honored (default 2s).
	MaxRetryWait time.Duration
	// Client is the HTTP client (default a fresh one, no timeout).
	Client *http.Client
	// Logger, when non-nil, receives per-session records.
	Logger *slog.Logger
}

// Digest is one latency family in the result, in milliseconds. The
// top-level digests additionally carry trace-id exemplars: the slowest
// observations of that family with the X-Tigris-Trace id the server
// answered with, so a tail percentile in a BENCH record can be chased
// straight into /gateway/trace/{id} or /debug/trace/{id}.
type Digest struct {
	Count     int64           `json:"count"`
	P50Ms     float64         `json:"p50_ms"`
	P95Ms     float64         `json:"p95_ms"`
	P99Ms     float64         `json:"p99_ms"`
	MaxMs     float64         `json:"max_ms"`
	MeanMs    float64         `json:"mean_ms"`
	Exemplars []TraceExemplar `json:"trace_exemplars,omitempty"`
}

// TraceExemplar links one slow observation to its distributed trace.
type TraceExemplar struct {
	TraceID string  `json:"trace_id"`
	Profile string  `json:"profile"`
	Ms      float64 `json:"ms"`
}

// traceExemplarK bounds the slowest-exemplar list kept per latency
// family.
const traceExemplarK = 4

// Result is the BENCH_serve.json record of one run.
type Result struct {
	Name            string            `json:"name"`
	Tag             string            `json:"tag,omitempty"`
	Target          string            `json:"target"`
	Arrival         string            `json:"arrival"`
	RatePerSec      float64           `json:"rate_per_sec"`
	CV              float64           `json:"cv,omitempty"`
	Seed            int64             `json:"seed"`
	Sessions        int               `json:"sessions"`
	SessionsOK      int               `json:"sessions_ok"`
	SessionsFailed  int               `json:"sessions_failed"`
	FramesPushed    int64             `json:"frames_pushed"`
	Rejected429     int64             `json:"rejected_429"`
	Rejected503     int64             `json:"rejected_503"`
	Errors          int64             `json:"errors"`
	DurationSeconds float64           `json:"duration_seconds"`
	SessionsPerSec  float64           `json:"sessions_per_sec"`
	PerWorker       map[string]int    `json:"per_worker"`
	ProfileSessions map[string]int    `json:"profile_sessions"`
	Latency         map[string]Digest `json:"latency_percentiles"`
	// PerProfile splits the latency digests by scenario profile, so a
	// mixed run shows which scenario owns the tail instead of blending a
	// dense session's p99 into a compact session's.
	PerProfile map[string]map[string]Digest `json:"per_profile,omitempty"`
}

// runner is the shared state of one Run.
type runner struct {
	cfg      Config
	client   *http.Client
	rec      *obs.Recorder
	profRecs map[string]*obs.Recorder // per-profile latency split

	framesPushed atomic.Int64
	rejected429  atomic.Int64
	rejected503  atomic.Int64
	errs         atomic.Int64

	mu        sync.Mutex
	perWorker map[string]int
	exemplars map[string][]TraceExemplar // stage → slowest traceExemplarK
}

// observe records one latency sample into the run-wide digest, the
// profile's split digest, and (when the server attached a trace id) the
// stage's slowest-K trace exemplars.
func (r *runner) observe(stage, profile, trace string, d time.Duration) {
	r.rec.Observe(stage, d)
	if pr := r.profRecs[profile]; pr != nil {
		pr.Observe(stage, d)
	}
	if trace == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := r.exemplars[stage]
	ex := TraceExemplar{TraceID: trace, Profile: profile, Ms: ms(d)}
	if len(buf) < traceExemplarK {
		r.exemplars[stage] = append(buf, ex)
		return
	}
	min := 0
	for i := 1; i < len(buf); i++ {
		if buf[i].Ms < buf[min].Ms {
			min = i
		}
	}
	if ex.Ms > buf[min].Ms {
		buf[min] = ex
	}
}

// Run executes the load schedule and digests the outcome. It returns a
// Result even when some sessions fail (their failures are counted); an
// error means the configuration itself was unusable.
func Run(cfg Config) (*Result, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("loadgen: no target URL")
	}
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("loadgen: sessions must be > 0, got %d", cfg.Sessions)
	}
	if cfg.Arrival == "" {
		cfg.Arrival = ArrivalPoisson
	}
	if cfg.CV == 0 {
		cfg.CV = 1
	}
	if len(cfg.Profiles) == 0 {
		cfg.Profiles = DefaultProfiles()
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.MaxRetryWait == 0 {
		cfg.MaxRetryWait = 2 * time.Second
	}
	arr, err := NewArrivals(cfg.Arrival, cfg.Rate, cfg.CV, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Draw the whole schedule up front from the seeded processes, so
	// goroutine scheduling cannot perturb the random sequences: session
	// i starts at offsets[i] running profile assign[i].
	mix := rand.New(rand.NewSource(cfg.Seed + 1))
	offsets := make([]time.Duration, cfg.Sessions)
	assign := make([]int, cfg.Sessions)
	var at time.Duration
	for i := range offsets {
		at += arr.Next()
		offsets[i] = at
		assign[i] = pickProfile(cfg.Profiles, mix)
	}

	// Render each profile's synthetic frames once; sessions share the
	// encoded bytes.
	frames := make([][][]byte, len(cfg.Profiles))
	for pi, p := range cfg.Profiles {
		frames[pi], err = renderProfile(p, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("loadgen: profile %s: %w", p.Name, err)
		}
	}

	r := &runner{
		cfg:       cfg,
		client:    cfg.Client,
		rec:       obs.NewRecorder(),
		profRecs:  make(map[string]*obs.Recorder, len(cfg.Profiles)),
		perWorker: make(map[string]int),
		exemplars: make(map[string][]TraceExemplar),
	}
	for _, p := range cfg.Profiles {
		r.profRecs[p.Name] = obs.NewRecorder()
	}
	if r.client == nil {
		r.client = &http.Client{}
	}

	var wg sync.WaitGroup
	okCount := atomic.Int64{}
	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Open loop: wait for the scheduled start, not for anyone
			// else's completion.
			if d := offsets[i] - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			p := cfg.Profiles[assign[i]]
			if err := r.runSession(p, frames[assign[i]]); err != nil {
				r.errs.Add(1)
				if cfg.Logger != nil {
					cfg.Logger.Warn("session failed", "profile", p.Name, "error", err.Error())
				}
				return
			}
			okCount.Add(1)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Name:            Name,
		Target:          cfg.Target,
		Arrival:         cfg.Arrival,
		RatePerSec:      cfg.Rate,
		Seed:            cfg.Seed,
		Sessions:        cfg.Sessions,
		SessionsOK:      int(okCount.Load()),
		SessionsFailed:  cfg.Sessions - int(okCount.Load()),
		FramesPushed:    r.framesPushed.Load(),
		Rejected429:     r.rejected429.Load(),
		Rejected503:     r.rejected503.Load(),
		Errors:          r.errs.Load(),
		DurationSeconds: elapsed.Seconds(),
		SessionsPerSec:  float64(okCount.Load()) / elapsed.Seconds(),
		PerWorker:       r.perWorker,
		ProfileSessions: make(map[string]int),
		Latency:         make(map[string]Digest),
	}
	if cfg.Arrival == ArrivalGamma {
		res.CV = cfg.CV
	}
	for _, pi := range assign {
		res.ProfileSessions[cfg.Profiles[pi].Name]++
	}
	for stage, s := range r.rec.Summaries() {
		d := digestOf(s)
		if exs := r.exemplars[stage]; len(exs) > 0 {
			d.Exemplars = append([]TraceExemplar(nil), exs...)
			sort.Slice(d.Exemplars, func(i, j int) bool { return d.Exemplars[i].Ms > d.Exemplars[j].Ms })
		}
		res.Latency[stage] = d
	}
	for name, pr := range r.profRecs {
		sums := pr.Summaries()
		if len(sums) == 0 {
			continue
		}
		split := make(map[string]Digest, len(sums))
		for stage, s := range sums {
			split[stage] = digestOf(s)
		}
		if res.PerProfile == nil {
			res.PerProfile = make(map[string]map[string]Digest)
		}
		res.PerProfile[name] = split
	}
	return res, nil
}

// RunLadder sweeps Run across ascending arrival rates, one record per
// step, holding everything but the rate fixed — the saturation-curve
// experiment (find the knee where p99 departs) as a single invocation.
// A step whose configuration fails aborts the sweep; per-session
// failures within a step are recorded in that step's Result and do not.
func RunLadder(cfg Config, rates []float64) ([]*Result, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("loadgen: empty rate ladder")
	}
	out := make([]*Result, 0, len(rates))
	for _, rate := range rates {
		step := cfg
		step.Rate = rate
		res, err := Run(step)
		if err != nil {
			return out, fmt.Errorf("ladder step rate=%g: %w", rate, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func digestOf(s obs.Summary) Digest {
	return Digest{
		Count:  s.Count,
		P50Ms:  ms(s.P50),
		P95Ms:  ms(s.P95),
		P99Ms:  ms(s.P99),
		MaxMs:  ms(s.Max),
		MeanMs: ms(s.Mean),
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// pickProfile draws a profile index by weight.
func pickProfile(profiles []Profile, rng *rand.Rand) int {
	total := 0.0
	for _, p := range profiles {
		total += weight(p)
	}
	x := rng.Float64() * total
	for i, p := range profiles {
		x -= weight(p)
		if x < 0 {
			return i
		}
	}
	return len(profiles) - 1
}

func weight(p Profile) float64 {
	if p.Weight <= 0 {
		return 1
	}
	return p.Weight
}

// renderProfile generates and encodes the profile's frame sequence.
func renderProfile(p Profile, seed int64) ([][]byte, error) {
	nframes := p.Frames
	if nframes <= 0 {
		nframes = 4
	}
	beams := p.Beams
	if beams <= 0 {
		beams = 16
	}
	az := p.AzimuthSteps
	if az <= 0 {
		az = 300
	}
	seq := synth.GenerateSequence(synth.SequenceConfig{
		Scene:     synth.SceneConfig{Seed: seed, Length: 120},
		Lidar:     synth.LidarConfig{Beams: beams, AzimuthSteps: az, Seed: seed},
		NumFrames: nframes,
	})
	out := make([][]byte, len(seq.Frames))
	for i, c := range seq.Frames {
		var buf bytes.Buffer
		if err := cloud.Write(&buf, c); err != nil {
			return nil, err
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

// runSession drives one session end to end.
func (r *runner) runSession(p Profile, frames [][]byte) error {
	id, workerName, trace, err := r.createSession(p)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.perWorker[workerName]++
	r.mu.Unlock()

	for fi, frame := range frames {
		if err := r.pushFrame(id, p.Name, trace, frame); err != nil {
			return fmt.Errorf("frame %d: %w", fi, err)
		}
		r.framesPushed.Add(1)
	}

	// Read the trajectory back: the session is only counted as served
	// if every pushed frame committed.
	start := time.Now()
	resp, err := r.do(http.MethodGet, "/v1/sessions/"+id+"/trajectory?wait=1", "", nil)
	if err != nil {
		return fmt.Errorf("trajectory: %w", err)
	}
	r.observe("trajectory", p.Name, trace, time.Since(start))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trajectory: status %d", resp.StatusCode)
	}
	var traj struct {
		Frames int `json:"frames"`
	}
	if err := json.Unmarshal(body, &traj); err != nil {
		return fmt.Errorf("trajectory: %w", err)
	}
	if traj.Frames != len(frames) {
		return fmt.Errorf("trajectory has %d frames, pushed %d", traj.Frames, len(frames))
	}

	// Retire the session (best-effort; eviction also cleans up).
	if resp, err := r.do(http.MethodDelete, "/v1/sessions/"+id, "", nil); err == nil {
		resp.Body.Close()
	}
	return nil
}

// createSession creates one session, retrying per the overload policy,
// and reports the gateway/worker that placed it plus the session's
// distributed-trace id (from X-Tigris-Trace; empty against servers that
// predate tracing).
func (r *runner) createSession(p Profile) (id, workerName, trace string, err error) {
	cfg := map[string]any{}
	if p.Parallelism > 0 {
		cfg["parallelism"] = p.Parallelism
	}
	if p.Loop {
		cfg["loop"] = map[string]any{"enabled": true}
	}
	body, _ := json.Marshal(cfg)

	start := time.Now()
	resp, err := r.doWithRetry(http.MethodPost, "/v1/sessions", "application/json", body)
	if err != nil {
		return "", "", "", fmt.Errorf("create: %w", err)
	}
	trace = resp.Header.Get("X-Tigris-Trace")
	r.observe("create", p.Name, trace, time.Since(start))
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", "", "", fmt.Errorf("create: status %d: %s", resp.StatusCode, respBody)
	}
	var created struct {
		ID     string `json:"id"`
		Worker string `json:"worker"`
	}
	if err := json.Unmarshal(respBody, &created); err != nil || created.ID == "" {
		return "", "", "", fmt.Errorf("create: bad response %s", respBody)
	}
	// Identify the serving worker: the gateway names it in the response
	// body and the X-Tigris-Worker header; a bare worker is itself.
	workerName = created.Worker
	if workerName == "" {
		workerName = resp.Header.Get("X-Tigris-Worker")
	}
	if workerName == "" {
		workerName = r.cfg.Target
	}
	return created.ID, workerName, trace, nil
}

// pushFrame pushes one frame with ?wait=1, so the recorded latency
// covers queueing plus the whole per-frame pipeline.
func (r *runner) pushFrame(id, profile, trace string, frame []byte) error {
	start := time.Now()
	resp, err := r.doWithRetry(http.MethodPost, "/v1/sessions/"+id+"/frames?wait=1", "application/octet-stream", frame)
	if err != nil {
		return err
	}
	r.observe("frame", profile, trace, time.Since(start))
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// do issues one request against the target.
func (r *runner) do(method, pathAndQuery, contentType string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, r.cfg.Target+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if r.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+r.cfg.AuthToken)
	}
	return r.client.Do(req)
}

// doWithRetry issues a request, honoring 429/503 Retry-After backoff
// within the bounded retry budget. Rejections are counted even when a
// retry later succeeds — they are part of the service the client saw.
func (r *runner) doWithRetry(method, pathAndQuery, contentType string, body []byte) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := r.do(method, pathAndQuery, contentType, body)
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			r.rejected429.Add(1)
		case http.StatusServiceUnavailable:
			r.rejected503.Add(1)
		default:
			return resp, nil
		}
		if attempt >= r.cfg.Retries {
			return resp, nil
		}
		wait := retryAfter(resp)
		if wait > r.cfg.MaxRetryWait {
			wait = r.cfg.MaxRetryWait
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(wait)
	}
}

// retryAfter reads an integer-seconds Retry-After header (default 1s).
func retryAfter(resp *http.Response) time.Duration {
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		return time.Duration(s) * time.Second
	}
	return time.Second
}
