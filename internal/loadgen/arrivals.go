package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Arrival process names.
const (
	// ArrivalPoisson draws exponential inter-arrival times (a Poisson
	// process): the memoryless baseline for open-loop load, CV = 1.
	ArrivalPoisson = "poisson"
	// ArrivalGamma draws Gamma inter-arrival times with a configurable
	// coefficient of variation: CV < 1 is smoother than Poisson, CV > 1
	// is burstier. CV = 1 degenerates to the exponential.
	ArrivalGamma = "gamma"
)

// Arrivals generates a deterministic, seeded sequence of inter-arrival
// times with a given mean rate. Open-loop drivers consume it up front
// to build a fixed schedule — session start times never depend on
// completions, which is what makes the measured latencies honest under
// overload.
type Arrivals struct {
	kind string
	rate float64 // arrivals per second
	cv   float64 // gamma only
	rng  *rand.Rand
}

// NewArrivals validates the process and seeds it. rate is arrivals per
// second (> 0). cv is the coefficient of variation for the gamma
// process (> 0; ignored by poisson).
func NewArrivals(kind string, rate, cv float64, seed int64) (*Arrivals, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: arrival rate must be > 0, got %g", rate)
	}
	switch kind {
	case ArrivalPoisson:
	case ArrivalGamma:
		if cv <= 0 {
			return nil, fmt.Errorf("loadgen: gamma arrivals need cv > 0, got %g", cv)
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (want %s or %s)", kind, ArrivalPoisson, ArrivalGamma)
	}
	return &Arrivals{kind: kind, rate: rate, cv: cv, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next draws one inter-arrival time.
func (a *Arrivals) Next() time.Duration {
	mean := 1 / a.rate
	var secs float64
	switch a.kind {
	case ArrivalGamma:
		// Mean m with coefficient of variation c is Gamma with shape
		// k = 1/c² and scale θ = m·c².
		k := 1 / (a.cv * a.cv)
		secs = a.gamma(k) * mean * a.cv * a.cv
	default: // poisson
		secs = a.exp() * mean
	}
	return time.Duration(secs * float64(time.Second))
}

// exp draws a unit-mean exponential by inverse CDF.
func (a *Arrivals) exp() float64 {
	u := a.rng.Float64()
	for u == 0 {
		u = a.rng.Float64()
	}
	return -math.Log(u)
}

// gamma draws Gamma(shape k, scale 1) with the Marsaglia–Tsang
// squeeze method; shapes below 1 use the standard boosting identity
// Gamma(k) = Gamma(k+1) · U^(1/k).
func (a *Arrivals) gamma(k float64) float64 {
	if k < 1 {
		u := a.rng.Float64()
		for u == 0 {
			u = a.rng.Float64()
		}
		return a.gamma(k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := a.rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := a.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
