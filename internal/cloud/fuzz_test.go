package cloud

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the TIGRIS-CLOUD parser with hostile inputs: it must
// never panic, and anything it accepts must survive a write/read round
// trip.
func FuzzRead(f *testing.F) {
	f.Add("TIGRIS-CLOUD v1\nPOINTS 1\nFIELDS xyz\nDATA ascii\n1 2 3\n")
	f.Add("TIGRIS-CLOUD v1\nPOINTS 2\nFIELDS xyznormal\nDATA ascii\n1 2 3 0 0 1\n4 5 6 0 1 0\n")
	f.Add("TIGRIS-CLOUD v1\nPOINTS 0\nFIELDS xyz\nDATA ascii\n")
	f.Add("")
	f.Add("TIGRIS-CLOUD v1\nPOINTS -1\nFIELDS xyz\nDATA ascii\n")
	f.Add("TIGRIS-CLOUD v1\nPOINTS 999999999999\nFIELDS xyz\nDATA ascii\n")
	f.Add("TIGRIS-CLOUD v1\nPOINTS 1\nFIELDS xyz\nDATA ascii\nNaN Inf -Inf\n")
	f.Add("garbage\nmore garbage\n")

	f.Fuzz(func(t *testing.T, input string) {
		c, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted clouds must round-trip.
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("accepted cloud failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != c.Len() {
			t.Fatalf("round trip changed length: %d -> %d", c.Len(), back.Len())
		}
	})
}
