// Package cloud provides the point cloud container and the basic
// manipulations the registration pipeline needs: rigid transformation,
// voxel-grid downsampling, bounding boxes, and a simple ASCII interchange
// format modeled on PCD.
//
// A point cloud (paper §2.1) is a collection of <x,y,z> points in a 3D
// Cartesian frame; normals and other per-point metadata are carried in
// parallel slices so the hot search paths can operate on the bare
// coordinates.
package cloud

import (
	"fmt"
	"math"

	"tigris/internal/geom"
)

// Cloud is a point cloud frame. Points is always populated; Normals is
// either nil or exactly len(Points) long (populated by the Normal
// Estimation stage).
type Cloud struct {
	Points  []geom.Vec3
	Normals []geom.Vec3
}

// New returns an empty cloud with capacity for n points.
func New(n int) *Cloud {
	return &Cloud{Points: make([]geom.Vec3, 0, n)}
}

// FromPoints wraps a point slice in a Cloud without copying.
func FromPoints(pts []geom.Vec3) *Cloud {
	return &Cloud{Points: pts}
}

// Len returns the number of points.
func (c *Cloud) Len() int { return len(c.Points) }

// HasNormals reports whether per-point normals are populated.
func (c *Cloud) HasNormals() bool {
	return c.Normals != nil && len(c.Normals) == len(c.Points)
}

// Clone returns a deep copy of the cloud.
func (c *Cloud) Clone() *Cloud {
	out := &Cloud{Points: make([]geom.Vec3, len(c.Points))}
	copy(out.Points, c.Points)
	if c.Normals != nil {
		out.Normals = make([]geom.Vec3, len(c.Normals))
		copy(out.Normals, c.Normals)
	}
	return out
}

// Transform returns a new cloud with every point moved by t (Eq. 1 of the
// paper: X' = R·X + T) and normals rotated.
func (c *Cloud) Transform(t geom.Transform) *Cloud {
	out := &Cloud{Points: make([]geom.Vec3, len(c.Points))}
	for i, p := range c.Points {
		out.Points[i] = t.Apply(p)
	}
	if c.HasNormals() {
		out.Normals = make([]geom.Vec3, len(c.Normals))
		for i, n := range c.Normals {
			out.Normals[i] = t.ApplyDirection(n)
		}
	}
	return out
}

// TransformInPlace moves every point of c by t without allocating.
func (c *Cloud) TransformInPlace(t geom.Transform) {
	for i, p := range c.Points {
		c.Points[i] = t.Apply(p)
	}
	if c.HasNormals() {
		for i, n := range c.Normals {
			c.Normals[i] = t.ApplyDirection(n)
		}
	}
}

// Bounds returns the axis-aligned bounding box of the cloud.
func (c *Cloud) Bounds() geom.Aabb {
	b := geom.EmptyAabb()
	for _, p := range c.Points {
		b.Extend(p)
	}
	return b
}

// Centroid returns the mean of all points; the zero vector for an empty
// cloud.
func (c *Cloud) Centroid() geom.Vec3 {
	if len(c.Points) == 0 {
		return geom.Vec3{}
	}
	var s geom.Vec3
	for _, p := range c.Points {
		s = s.Add(p)
	}
	return s.Scale(1 / float64(len(c.Points)))
}

// Select returns a new cloud containing the points (and normals, if
// present) at the given indices.
func (c *Cloud) Select(indices []int) *Cloud {
	out := &Cloud{Points: make([]geom.Vec3, len(indices))}
	for i, idx := range indices {
		out.Points[i] = c.Points[idx]
	}
	if c.HasNormals() {
		out.Normals = make([]geom.Vec3, len(indices))
		for i, idx := range indices {
			out.Normals[i] = c.Normals[idx]
		}
	}
	return out
}

// voxelKey identifies one cell of the downsampling grid.
type voxelKey struct {
	X, Y, Z int32
}

// VoxelDownsample returns a new cloud with at most one point per cubic
// voxel of the given edge length: the centroid of the points that fell in
// the cell. Registration front-ends routinely downsample dense LiDAR
// frames before key-point detection; the leaf size is one of the pipeline's
// parametric knobs.
func VoxelDownsample(c *Cloud, leaf float64) *Cloud {
	if leaf <= 0 || c.Len() == 0 {
		return c.Clone()
	}
	type acc struct {
		sum   geom.Vec3
		count int
		first int // index of first point, for deterministic ordering
	}
	cells := make(map[voxelKey]*acc, c.Len()/4+1)
	order := make([]voxelKey, 0, c.Len()/4+1)
	inv := 1 / leaf
	for i, p := range c.Points {
		k := voxelKey{
			X: int32(math.Floor(p.X * inv)),
			Y: int32(math.Floor(p.Y * inv)),
			Z: int32(math.Floor(p.Z * inv)),
		}
		a, ok := cells[k]
		if !ok {
			a = &acc{first: i}
			cells[k] = a
			order = append(order, k)
		}
		a.sum = a.sum.Add(p)
		a.count++
	}
	out := New(len(order))
	for _, k := range order {
		a := cells[k]
		out.Points = append(out.Points, a.sum.Scale(1/float64(a.count)))
	}
	return out
}

// VoxelDownsampleSlab is VoxelDownsample over an SoA slab: cell keys are
// computed from the dequantized coordinates, centroids accumulate in
// float64, and the result is re-quantized into a fresh slab. Normals are
// not carried over (the front-end estimates them on the downsampled
// cloud).
func VoxelDownsampleSlab(s *Slab, leaf float64) *Slab {
	if leaf <= 0 || s.Len() == 0 {
		return s.Clone()
	}
	type acc struct {
		sum   geom.Vec3
		count int
	}
	cells := make(map[voxelKey]*acc, s.Len()/4+1)
	order := make([]voxelKey, 0, s.Len()/4+1)
	inv := 1 / leaf
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		k := voxelKey{
			X: int32(math.Floor(p.X * inv)),
			Y: int32(math.Floor(p.Y * inv)),
			Z: int32(math.Floor(p.Z * inv)),
		}
		a, ok := cells[k]
		if !ok {
			a = &acc{}
			cells[k] = a
			order = append(order, k)
		}
		a.sum = a.sum.Add(p)
		a.count++
	}
	out := &Slab{
		Xs: make([]float32, 0, len(order)),
		Ys: make([]float32, 0, len(order)),
		Zs: make([]float32, 0, len(order)),
	}
	for _, k := range order {
		a := cells[k]
		out.Append(a.sum.Scale(1 / float64(a.count)))
	}
	return out
}

// Validate checks structural invariants: finite coordinates and a normals
// slice that is either nil or parallel to the points.
func (c *Cloud) Validate() error {
	if c.Normals != nil && len(c.Normals) != len(c.Points) {
		return fmt.Errorf("cloud: %d normals for %d points", len(c.Normals), len(c.Points))
	}
	for i, p := range c.Points {
		if !p.IsFinite() {
			return fmt.Errorf("cloud: non-finite point %d: %v", i, p)
		}
	}
	return nil
}
